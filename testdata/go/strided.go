// A stride-2 loop: the frontend renumbers iterations 0..19 and folds
// i = 2*k into the subscripts, so A[i] vs A[i-2] becomes distance 1.
package loops

func strided(a []int) {
	for i := 0; i < 40; i += 2 {
		a[i] = a[i-2] + 3
	}
}
