// Go-source twin of twin_locals.do: an iteration-local scalar threads a
// read between statements.
package loops

func dsl(a, b []int) {
	for i := 1; i <= 40; i++ {
		a[i+2] = i * 10
		t := a[i] + 3
		b[i] = t * 2
	}
}
