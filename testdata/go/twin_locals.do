# Iteration-local scalar threading, twinned by twin_locals.go: the local t
# carries A[I] between statements without becoming a dependence arc.
DO I = 1, 40
  S1: A[I+2] = I*10
  S2: t = A[I] + 3
  S3: B[I] = t*2
END DO
