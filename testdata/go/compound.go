// Compound assignment and increment forms, desugared to plain assignments
// during lowering (b[i] += x reads b[i] like b[i] = b[i] + x would).
package loops

func compound(a, b []int) {
	for i := 1; i <= 30; i++ {
		a[i] = a[i-1] + i
		b[i] += a[i]
		b[i]++
	}
}
