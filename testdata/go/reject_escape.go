// REJECT escaping-reference line=9
package loops

// sum outlives the iterations, carrying a value across them that the
// iteration-local statement semantics cannot model.
func escape(a []int) int {
	sum := 0
	for i := 1; i <= 9; i++ {
		sum += a[i]
	}
	return sum
}
