// REJECT non-affine-subscript line=9
package loops

// The subscript i*j multiplies two loop indices, which is outside the
// affine class the dependence tests can decide.
func nonaffine(a [][]int) {
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			a[i][i*j] = j
		}
	}
}
