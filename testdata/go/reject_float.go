// REJECT non-integer-element line=6
package loops

func floats(a []float64) {
	for i := 1; i <= 9; i++ {
		a[i] = 1
	}
}
