# Example 2 without cost annotations: the Go-source twin (twin_nested.go)
# must lower byte-identically under the cache canon.
DO I = 1, 10
DO J = 1, 8
  S1: A[I,J] = I*100 + J
  S2: B[I,J] = A[I,J-1] + 1
  S3: C[I,J] = B[I-1,J-1]*2
END DO
END DO
