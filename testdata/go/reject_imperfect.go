// REJECT imperfect-nest line=7
package loops

func imperfect(a [][]int) {
	for i := 1; i <= 4; i++ {
		a[i][0] = i
		for j := 1; j <= 4; j++ {
			a[i][j] = a[i][j-1]
		}
	}
}
