// Go-source twin of twin_nested.do (Example 2's multiply-nested Doacross,
// cost-free form).
package loops

func dsl(a, b, c [][]int) {
	for i := 1; i <= 10; i++ {
		for j := 1; j <= 8; j++ {
			a[i][j] = i*100 + j
			b[i][j] = a[i][j-1] + 1
			c[i][j] = b[i-1][j-1] * 2
		}
	}
}
