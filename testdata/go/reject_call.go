// REJECT call-expression line=6
package loops

func calls(a []int) {
	for i := 1; i <= 9; i++ {
		a[i] = helper(i)
	}
}

func helper(v int) int { return v + 1 }
