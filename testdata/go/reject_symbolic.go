// REJECT symbolic-bound line=6
package loops

// The trip count depends on a runtime value; the IR needs constant bounds.
func symbolic(a []int, n int) {
	for i := 0; i < n; i++ {
		a[i] = i
	}
}
