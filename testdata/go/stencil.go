// Example 1's four-point relaxation as a depth-2 nest over a grid.
package loops

func stencil(g [][]int) {
	for i := 2; i <= 12; i++ {
		for j := 2; j <= 12; j++ {
			g[i][j] = g[i-1][j] + g[i][j-1]
		}
	}
}
