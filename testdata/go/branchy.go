// Go-source twin of internal/lang/testdata/branchy.do (Example 3:
// dependence sources inside branches). The function is named dsl so the
// lowered workload is byte-identical to the parsed .do program under the
// cache canon.
package loops

func dsl(a, b, c []int) {
	for i := 1; i <= 50; i++ {
		a[i+1] = i * 3
		if i%2 == 1 {
			b[i+2] = a[i] + 1000
		} else {
			b[i+2] = a[i] - 5
		}
		c[i] = b[i]
	}
}
