module github.com/csrd-repro/datasync

go 1.22
