// Command dsserve runs the simulation-and-verification HTTP service: JSON
// endpoints for single runs (/run), dsvet verdicts (/verify) and parameter
// sweeps with Pareto fronts (/sweep), backed by a bounded worker pool with
// queue backpressure and a content-addressed result cache.
//
//	dsserve -addr :8077 -workers 8 -queue 128
//
// Several dsserve processes form one logical service when started with a
// shared membership: each canonical result key has one owning node (via a
// deterministic consistent-hash ring), any node accepts any request and
// forwards it to the owner, and sweeps fan out cluster-wide with work
// stealing:
//
//	dsserve -addr :8077 -node-id a -advertise http://10.0.0.1:8077 \
//	        -peers b=http://10.0.0.2:8077,c=http://10.0.0.3:8077*2 \
//	        -peer-token secret
//
// Liveness is at GET /healthz (including the node's cluster view),
// Prometheus-style metrics at GET /metrics. On SIGTERM or SIGINT the server
// stops accepting connections, drains queued and in-flight jobs, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/csrd-repro/datasync/internal/cluster"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 4, "simulation worker goroutines")
	queue := flag.Int("queue", 64, "job queue capacity (full queue answers 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-job timeout")
	cacheSize := flag.Int("cache-size", 1024, "result cache capacity in entries")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive stall-class failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open trial")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "shutdown budget for draining in-flight jobs")

	nodeID := flag.String("node-id", "solo", "this node's stable cluster identity")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (default http://127.0.0.1<addr>)")
	peersSpec := flag.String("peers", "", "other cluster members as id=addr[*weight],... (empty: single-node)")
	peerToken := flag.String("peer-token", "", "shared secret authenticating peer-forwarded requests")
	nodeWeight := flag.Int("node-weight", 1, "this node's share of the key space relative to weight-1 peers")
	stealChunk := flag.Int("steal-chunk", 16, "max sweep points per work-stealing sub-grid")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained request rate in req/s (0: no rate limit)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant burst capacity (default ceil(rate))")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant in-flight request cap (0: no cap)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer liveness probe period (0: no active probing, membership changes only on transport errors)")
	suspectAfter := flag.Int("suspect-after", 3, "consecutive probe failures that demote a suspect peer")
	rejoinAfter := flag.Int("rejoin-after", 2, "consecutive probe successes that readmit a demoted peer")
	drainHandoff := flag.Bool("drain-handoff", true, "on shutdown, stream cache entries to their next owners before draining")
	replicas := flag.Int("replicas", 1, "ring-successors each cache fill is replicated to (0: no replication)")
	antiEntropy := flag.Duration("anti-entropy", time.Minute, "periodic anti-entropy scan interval; scans also run on ring transitions (0: disabled)")
	linkFault := flag.String("link-fault", "", "seeded peer-link fault plan, e.g. seed=42,drop=link:0.1,partition=split:a+b/c:1000:5000 (testing only)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	self := cluster.Member{ID: *nodeID, Addr: *advertise, Weight: *nodeWeight}
	if self.Addr == "" {
		a := *addr
		if strings.HasPrefix(a, ":") {
			a = "127.0.0.1" + a
		}
		self.Addr = "http://" + a
	}
	peers, err := cluster.ParsePeers(*peersSpec)
	if err != nil {
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(2)
	}

	// The library uses negative to disable and 0 for the default; the flags'
	// friendlier contract is 0 = off.
	replicaOpt := *replicas
	if replicaOpt <= 0 {
		replicaOpt = -1
	}
	aeOpt := *antiEntropy
	if aeOpt <= 0 {
		aeOpt = -1
	}
	var linkPlan *fault.LinkPlan
	if *linkFault != "" {
		lp, err := fault.ParseLinkSpec(*linkFault)
		if err != nil {
			service.Fatal(os.Stderr, "dsserve", err)
			os.Exit(2)
		}
		linkPlan = &lp
	}
	node, err := cluster.New(cluster.Options{
		Self:       self.ID,
		Members:    append(peers, self),
		PeerToken:  *peerToken,
		StealChunk: *stealChunk,
		Tenant: cluster.TenantPolicy{
			Rate:        *tenantRate,
			Burst:       *tenantBurst,
			MaxInFlight: *tenantInflight,
		},
		ProbeInterval:       *probeInterval,
		SuspectAfter:        *suspectAfter,
		RejoinAfter:         *rejoinAfter,
		Replicas:            replicaOpt,
		AntiEntropyInterval: aeOpt,
		LinkFaults:          linkPlan,
		Logger:              log,
	}, service.Options{
		Workers:          *workers,
		QueueCap:         *queue,
		JobTimeout:       *timeout,
		CacheSize:        *cacheSize,
		RetryAfter:       *retryAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Logger:           log,
	})
	if err != nil {
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(2)
	}
	srv := node.Server()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("dsserve listening", "addr", *addr, "workers", *workers, "queue", *queue,
			"node", self.ID, "ringVersion", node.Ring().Version(), "members", node.Ring().Size())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (shutdown happens in
		// the other branch), so this is a bind error or similar.
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(1)
	}
	if *drainHandoff {
		rep := node.DrainHandoff(shutCtx)
		log.Info("drain handoff", "peers", rep.Peers, "entries", rep.Entries,
			"bytes", rep.Bytes, "batches", rep.Batches, "failedBatches", rep.FailedBatches)
	}
	node.Stop()
	if err := srv.Drain(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(1)
	}
	log.Info("drained; exiting")
}
