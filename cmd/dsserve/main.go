// Command dsserve runs the simulation-and-verification HTTP service: JSON
// endpoints for single runs (/run), dsvet verdicts (/verify) and parameter
// sweeps with Pareto fronts (/sweep), backed by a bounded worker pool with
// queue backpressure and a content-addressed result cache.
//
//	dsserve -addr :8077 -workers 8 -queue 128
//
// Liveness is at GET /healthz, Prometheus-style metrics at GET /metrics.
// On SIGTERM or SIGINT the server stops accepting connections, drains
// queued and in-flight jobs, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/csrd-repro/datasync/internal/service"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 4, "simulation worker goroutines")
	queue := flag.Int("queue", 64, "job queue capacity (full queue answers 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-job timeout")
	cacheSize := flag.Int("cache-size", 1024, "result cache capacity in entries")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive stall-class failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open trial")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "shutdown budget for draining in-flight jobs")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := service.NewServer(service.Options{
		Workers:          *workers,
		QueueCap:         *queue,
		JobTimeout:       *timeout,
		CacheSize:        *cacheSize,
		RetryAfter:       *retryAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Logger:           log,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("dsserve listening", "addr", *addr, "workers", *workers, "queue", *queue)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure here (shutdown happens in
		// the other branch), so this is a bind error or similar.
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(1)
	}
	if err := srv.Drain(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		service.Fatal(os.Stderr, "dsserve", err)
		os.Exit(1)
	}
	log.Info("drained; exiting")
}
