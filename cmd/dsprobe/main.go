// Command dsprobe is a chaos probe for a running dsserve: it drives the
// circuit breaker open with deterministic stall-inducing fault runs,
// verifies the service sheds load with 503 + Retry-After while open, then
// waits out the cooldown and confirms recovery through the retrying client.
//
//	dsserve -addr :8077 -breaker-threshold 3 -breaker-cooldown 2s &
//	dsprobe -addr http://127.0.0.1:8077 -stalls 3 -cooldown 2s
//
// With -halt it instead probes the self-healing path: a halted-processor
// run must be diagnosed as a stall without recovery, the same run with
// recovery armed must complete with recovered:true, and the healed stall
// must leave the breaker closed with the recovery counters visible in
// /metrics.
//
// With -cluster it boots a 3-node in-process cluster (no external server
// needed) and probes the peer protocol: cross-node cache hits through
// forwarding, a node killed mid-/sweep healed by work stealing with the
// merged Pareto front checked against a single-node oracle, and a hot
// tenant shed by admission without opening the circuit breaker.
//
// With -membership it boots the same in-process cluster with active
// failure probing, K-successor replication and drain handoff enabled, and
// verifies the self-healing cycle: a killed owner is demoted and its keys
// served byte-identically from a replica, a restarted node is readmitted
// within the probe window, and a gracefully drained node hands its cache
// to the next owners so the keys stay warm cross-node hits.
//
// With -partition it boots the in-process cluster twice under an identical
// seeded link-fault plan and checks the injected chaos is byte-for-byte
// reproducible, then runs a seeded partition episode on a hand-advanced
// clock: the minority node refuses to coordinate sweeps, the majority's
// sweep matches the single-node oracle, and after the heal anti-entropy
// restores every key to full replication factor before a final
// oracle-identical sweep coordinated by the healed minority node.
//
// Exit status 0 means the probed cycle was observed; any deviation is one
// line on stderr and exit 1. The smoke script runs both modes against a
// short-cooldown server.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/service"
	"github.com/csrd-repro/datasync/internal/sim"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "dsserve base URL")
	stalls := flag.Int("stalls", 3, "stall-inducing runs to send (match the server's -breaker-threshold)")
	cooldown := flag.Duration("cooldown", 2*time.Second, "server's -breaker-cooldown, waited out before the recovery check")
	timeout := flag.Duration("timeout", 60*time.Second, "overall probe budget")
	halt := flag.Bool("halt", false, "probe the self-healing path (halt -> reclaim -> recovered success) instead of the breaker cycle")
	clusterMode := flag.Bool("cluster", false, "probe an in-process 3-node cluster (forwarding, mid-sweep node loss, tenant shedding) instead of the breaker cycle")
	membershipMode := flag.Bool("membership", false, "probe self-healing membership in an in-process 3-node cluster (kill -> replica serve -> rejoin -> drain handoff) instead of the breaker cycle")
	partitionMode := flag.Bool("partition", false, "probe partition tolerance in an in-process 3-node cluster (seeded link chaos reproducibility, minority sweep refusal, heal -> anti-entropy re-replication) instead of the breaker cycle")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *partitionMode {
		probePartition(ctx)
		return
	}
	if *membershipMode {
		probeMembership(ctx)
		return
	}
	if *clusterMode {
		probeCluster(ctx)
		return
	}
	if *halt {
		probeHalt(ctx, *addr)
		return
	}

	// Phase 1: open the breaker with deterministic stalls. Total broadcast
	// drop starves every cross-iteration wait; distinct N defeats the cache.
	for i := 0; i < *stalls; i++ {
		req := service.RunRequest{
			Workload: service.WorkloadSpec{Name: "recurrence", N: int64(20 + i), D: 2},
			Scheme:   service.SchemeSpec{Name: "process", X: 4},
			Config:   service.ConfigSpec{P: 4, Fault: &fault.Plan{Seed: 1, DropProb: 1}},
		}
		code, body := postOnce(ctx, *addr+"/run", req)
		if code != http.StatusBadRequest || !strings.Contains(body, "deadlock") {
			fatalf("stall run %d: status %d body %q, want 400 with a deadlock diagnosis", i, code, body)
		}
	}
	fmt.Printf("dsprobe: %d stall runs diagnosed\n", *stalls)

	// Phase 2: the circuit must now shed even clean traffic.
	clean := service.RunRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 30},
		Scheme:   service.SchemeSpec{Name: "ref"},
		Config:   service.ConfigSpec{P: 4},
	}
	code, _, retryAfter := postOnceHdr(ctx, *addr+"/run", clean)
	if code != http.StatusServiceUnavailable {
		fatalf("open breaker: status %d, want 503", code)
	}
	if retryAfter == "" {
		fatalf("open breaker: 503 missing Retry-After header")
	}
	if !strings.Contains(getText(ctx, *addr+"/metrics"), "dsserve_breaker_state 2") {
		fatalf("metrics do not show the open breaker")
	}
	fmt.Printf("dsprobe: breaker open, shedding with Retry-After %ss\n", retryAfter)

	// Phase 3: wait out the cooldown; the retrying client must get through
	// (its first attempts may land on the tail of the open window — that is
	// exactly what the backoff-and-Retry-After path is for).
	time.Sleep(*cooldown)
	cl := service.Client{Base: *addr, MaxAttempts: 6,
		BaseDelay: 200 * time.Millisecond, MaxDelay: 2 * time.Second,
		OnRetry: func(attempt int, delay time.Duration, cause string) {
			fmt.Printf("dsprobe: retry %d in %v: %s\n", attempt, delay, cause)
		}}
	rr, err := cl.Run(ctx, clean)
	if err != nil {
		fatalf("recovery run failed: %v", err)
	}
	if rr.Cycles <= 0 {
		fatalf("recovery run implausible: %+v", rr)
	}

	// Phase 4: the metrics must record the full episode.
	m := getText(ctx, *addr+"/metrics")
	for _, want := range []string{
		"dsserve_breaker_state 0",
		"dsserve_breaker_opens_total 1",
		fmt.Sprintf("dsserve_watchdog_trips_total %d", *stalls),
	} {
		if !strings.Contains(m, want) {
			fatalf("metrics after recovery missing %q:\n%s", want, m)
		}
	}
	fmt.Println("dsprobe: breaker recovered; open/shed/recover cycle verified")
}

// probeHalt drives the self-healing cycle: the same halted-processor run is
// first diagnosed as an unhealable stall (recovery off), then healed by
// ownership reclamation (recovery armed), and the healed stall must count
// as a success — breaker closed, recovered-run counters exposed.
func probeHalt(ctx context.Context, addr string) {
	req := service.RunRequest{
		Workload: service.WorkloadSpec{Name: "recurrence", N: 26, D: 2},
		Scheme:   service.SchemeSpec{Name: "process", X: 4},
		Config: service.ConfigSpec{P: 4, MaxCycles: 200_000,
			Fault: &fault.Plan{HaltProc: 1, HaltAtCycle: 50}},
	}
	code, body := postOnce(ctx, addr+"/run", req)
	if code != http.StatusBadRequest || !strings.Contains(body, "halted") {
		fatalf("unrecovered halt: status %d body %q, want 400 naming the halted processor", code, body)
	}
	fmt.Println("dsprobe: unrecovered halt diagnosed")

	req.Config.Recover = &sim.Recover{AfterCycles: 40}
	code, body = postOnce(ctx, addr+"/run", req)
	if code != http.StatusOK {
		fatalf("recovery-armed run: status %d body %q, want 200", code, body)
	}
	var rr service.RunResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		fatalf("decode recovered run: %v", err)
	}
	if !rr.Recovered || rr.Recovery == nil {
		fatalf("recovery-armed run did not report recovery: %s", body)
	}
	fmt.Printf("dsprobe: run recovered (%s)\n", rr.Recovery)

	// The healed stall is a served request: breaker closed, counters up.
	// Checks are tolerant of prior probe phases (>=, not exact).
	m := getText(ctx, addr+"/metrics")
	if !strings.Contains(m, "dsserve_breaker_state 0") {
		fatalf("breaker not closed after a healed stall:\n%s", m)
	}
	if n := metricValue(m, "dsserve_recovered_runs_total"); n < 1 {
		fatalf("dsserve_recovered_runs_total = %d, want >= 1:\n%s", n, m)
	}
	if n := metricValue(m, "dsserve_recovery_cost_cycles_total"); n < 1 {
		fatalf("dsserve_recovery_cost_cycles_total = %d, want >= 1:\n%s", n, m)
	}
	fmt.Println("dsprobe: breaker closed, recovery counters visible; halt/reclaim/recover cycle verified")
}

// metricValue extracts one un-labeled counter's value from exposition text
// (-1 when absent).
func metricValue(m, name string) int64 {
	for _, line := range strings.Split(m, "\n") {
		val, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(val, "%d", &n); err == nil {
			return n
		}
	}
	return -1
}

// postOnce posts JSON with no retries and returns status + body text.
func postOnce(ctx context.Context, url string, v any) (int, string) {
	code, body, _ := postOnceHdr(ctx, url, v)
	return code, body
}

func postOnceHdr(ctx context.Context, url string, v any) (int, string, string) {
	b, err := json.Marshal(v)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Retry-After")
}

func getText(ctx context.Context, url string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("read body: %v", err)
	}
	return string(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsprobe: "+format+"\n", args...)
	os.Exit(1)
}
