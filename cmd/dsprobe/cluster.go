package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"github.com/csrd-repro/datasync/internal/cluster"
	"github.com/csrd-repro/datasync/internal/service"
)

// probeCluster boots a 3-node in-process cluster on real TCP ports and
// drives the cluster-specific failure modes end to end:
//
//  1. a request through a non-owner node is forwarded to its owner, and a
//     repeat through a different node hits the owner's cache;
//  2. a node killed mid-/sweep is healed around — its sub-grids are stolen
//     by the survivors and the merged response matches a single-node oracle
//     byte for byte (modulo cache provenance);
//  3. a hot tenant burning through its admission budget is shed with 429 +
//     Retry-After while the circuit breaker stays closed and other tenants
//     keep being served.
func probeCluster(ctx context.Context) {
	const n = 3
	log := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Listeners first: addresses must be known before the membership is.
	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("cluster listen: %v", err)
		}
		listeners[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: "http://" + ln.Addr().String()}
	}
	nodes := make([]*cluster.Node, n)
	servers := make([]*http.Server, n)
	for i := range nodes {
		node, err := cluster.New(cluster.Options{
			Self:       members[i].ID,
			Members:    members,
			PeerToken:  "probe-secret",
			StealChunk: 1, // finest granularity: every point is stealable
			// A dead peer should be detected in tens of milliseconds.
			PeerAttempts:  2,
			PeerBaseDelay: 25 * time.Millisecond,
			Tenant:        cluster.TenantPolicy{Rate: 5, Burst: 5},
			Logger:        log,
		}, service.Options{Workers: 2, Logger: log})
		if err != nil {
			fatalf("cluster node %d: %v", i, err)
		}
		nodes[i] = node
		servers[i] = &http.Server{Handler: node.Handler()}
		go servers[i].Serve(listeners[i])
	}
	defer func() {
		for _, hs := range servers {
			if hs != nil {
				hs.Close()
			}
		}
	}()
	addr := func(i int) string { return members[i].Addr }

	// Phase 1: cross-node forwarding and the cluster-wide cache.
	runReq := service.RunRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 30},
		Scheme:   service.SchemeSpec{Name: "process", X: 4},
		Config:   service.ConfigSpec{P: 4},
	}
	key, err := service.RunKey(runReq)
	if err != nil {
		fatalf("cluster: run key: %v", err)
	}
	owner := nodes[0].Ring().Owner(key).ID
	var edges []int
	for i := range nodes {
		if members[i].ID != owner {
			edges = append(edges, i)
		}
	}
	code, body, hdr := postTenant(ctx, addr(edges[0])+"/run", runReq, "probe")
	if code != http.StatusOK {
		fatalf("cluster: /run via edge %s: %d %s", members[edges[0]].ID, code, body)
	}
	if got := hdr.Get("X-DSServe-Node"); got != owner {
		fatalf("cluster: run served by %q, ring owner is %q", got, owner)
	}
	code, body, _ = postTenant(ctx, addr(edges[1])+"/run", runReq, "probe")
	var rr service.RunResponse
	if code != http.StatusOK || json.Unmarshal([]byte(body), &rr) != nil {
		fatalf("cluster: repeat /run via edge %s: %d %s", members[edges[1]].ID, code, body)
	}
	if !rr.Cached {
		fatalf("cluster: repeat through a second node missed the cluster cache: %s", body)
	}
	forwards := metricValue(getText(ctx, addr(edges[0])+"/metrics"), "dsserve_peer_forwards_total") +
		metricValue(getText(ctx, addr(edges[1])+"/metrics"), "dsserve_peer_forwards_total")
	if forwards < 2 {
		fatalf("cluster: edge nodes report %d forwards, want >= 2", forwards)
	}
	fmt.Printf("dsprobe: cross-node cache hit via owner %s (%d forwards)\n", owner, forwards)

	// Phase 2: kill a node mid-sweep; the merged answer must still equal
	// the single-node oracle. StealChunk 1 over a 128-point grid means one
	// peer dispatch per point with only three sequential workers draining
	// them, so a kill a few milliseconds in lands mid-flight with dispatches
	// to the dead node still pending. N is sized so a single point costs
	// several milliseconds: at kill time every worker must still be early
	// in its queue, or the in-process self worker can steal the dead
	// node's whole queue before its worker ever trips over the corpse.
	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 512},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid: service.SweepGrid{X: []int{2, 4}, P: []int{2, 4, 6, 8},
			Chunk: []int64{1, 2, 3, 4}, BusLatency: []int64{1, 2}},
	}
	type sweepOut struct {
		code int
		body string
	}
	done := make(chan sweepOut, 1)
	go func() {
		code, body, _ := postTenant(ctx, addr(0)+"/sweep", sweep, "probe")
		done <- sweepOut{code, body}
	}()
	time.Sleep(10 * time.Millisecond)
	servers[2].Close()
	servers[2] = nil
	fmt.Println("dsprobe: killed node n2 mid-sweep")
	out := <-done
	if out.code != http.StatusOK {
		fatalf("cluster: sweep after node kill: %d %s", out.code, out.body)
	}
	var got service.SweepResponse
	if err := json.Unmarshal([]byte(out.body), &got); err != nil {
		fatalf("cluster: decode sweep: %v", err)
	}

	oracleSrv := service.NewServer(service.Options{Workers: 4, Logger: log})
	defer oracleSrv.Drain(context.Background())
	oracle, err := oracleSrv.EvalSweep(ctx, sweep)
	if err != nil {
		fatalf("cluster: oracle sweep: %v", err)
	}
	if !sweepEqual(&got, oracle) {
		fatalf("cluster: merged sweep diverges from the single-node oracle\ncluster: %s", out.body)
	}
	if got.Failed != 0 {
		fatalf("cluster: %d points failed after node kill, want 0 (survivors must re-execute)", got.Failed)
	}
	_, steals, peerErrs := nodes[0].Counters()
	if nodes[0].Ring().Has("n2") && peerErrs == 0 {
		fatalf("cluster: killed node still live in the coordinator's ring with no peer errors")
	}
	fmt.Printf("dsprobe: merged Pareto (%d points) matches oracle after node loss (steals=%d peerErrors=%d)\n",
		len(got.Pareto), steals, peerErrs)

	// Phase 3: a hot tenant is shed without touching the breaker.
	okCount, shedCount := 0, 0
	sawRetryAfter := false
	for i := 0; i < 12; i++ {
		code, body, hdr := postTenant(ctx, addr(0)+"/run", runReq, "hot")
		switch code {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			shedCount++
			if hdr.Get("Retry-After") != "" && hdr.Get("Retry-After") != "0" {
				sawRetryAfter = true
			}
		default:
			fatalf("cluster: hot tenant request %d: %d %s", i, code, body)
		}
	}
	if okCount == 0 || shedCount == 0 || !sawRetryAfter {
		fatalf("cluster: hot tenant saw %d OK / %d shed (retry-after: %v), want both with Retry-After", okCount, shedCount, sawRetryAfter)
	}
	code, body, _ = postTenant(ctx, addr(1)+"/run", runReq, "cool")
	if code != http.StatusOK {
		fatalf("cluster: cool tenant during hot shed: %d %s", code, body)
	}
	m := getText(ctx, addr(0)+"/metrics")
	if !bytes.Contains([]byte(m), []byte(`dsserve_tenant_shed_total{tenant="hot"}`)) {
		fatalf("cluster: metrics missing the hot tenant shed counter:\n%s", m)
	}
	if !bytes.Contains([]byte(m), []byte("dsserve_breaker_state 0")) {
		fatalf("cluster: breaker left the closed state during tenant shedding:\n%s", m)
	}
	fmt.Printf("dsprobe: hot tenant shed (%d ok / %d shed) with breaker closed\n", okCount, shedCount)
	fmt.Println("dsprobe: cluster forward/steal/shed cycle verified")
}

// sweepEqual compares two sweep responses point by point and front by
// front, ignoring only cache provenance (which legitimately differs
// between a cluster and a cold single node).
func sweepEqual(a, b *service.SweepResponse) bool {
	norm := func(ps []service.SweepPoint) []service.SweepPoint {
		out := make([]service.SweepPoint, len(ps))
		copy(out, ps)
		for i := range out {
			out[i].Cached = false
		}
		return out
	}
	if a.Workload != b.Workload || len(a.Points) != len(b.Points) || len(a.Pareto) != len(b.Pareto) {
		return false
	}
	ap, bp := norm(a.Points), norm(b.Points)
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	af, bf := norm(a.Pareto), norm(b.Pareto)
	for i := range af {
		if af[i] != bf[i] {
			return false
		}
	}
	return true
}

// postTenant posts JSON with a tenant header and returns status, body and
// response headers.
func postTenant(ctx context.Context, url string, v any, tenant string) (int, string, http.Header) {
	b, err := json.Marshal(v)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-DSServe-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body), resp.Header
}
