package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"github.com/csrd-repro/datasync/internal/cluster"
	"github.com/csrd-repro/datasync/internal/service"
)

// probeMembership boots a 3-node in-process cluster with active probing,
// replication and drain handoff, and drives the self-healing membership
// cycle end to end:
//
//  1. a cache fill on the ring owner is replicated to its successor; the
//     owner is then killed, the survivors' probes demote it, and the key
//     is served from the replica — byte-identical to the owner's cached
//     response, without recomputation;
//  2. the killed node is restarted and the survivors' probes readmit it
//     within the probe window; forwarding resumes to the original owner;
//  3. a node drains gracefully, streaming its cache to the next owners;
//     the handed-off key is a warm cross-node hit on the remaining
//     members, and a post-drain sweep still matches the single-node
//     oracle front.
func probeMembership(ctx context.Context) {
	const n = 3
	log := slog.New(slog.NewTextHandler(io.Discard, nil))

	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("membership listen: %v", err)
		}
		listeners[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: "http://" + ln.Addr().String()}
	}
	nodes := make([]*cluster.Node, n)
	servers := make([]*http.Server, n)
	for i := range nodes {
		node, err := cluster.New(cluster.Options{
			Self:           members[i].ID,
			Members:        members,
			PeerToken:      "probe-secret",
			PeerAttempts:   2,
			PeerBaseDelay:  25 * time.Millisecond,
			ProbeInterval:  50 * time.Millisecond,
			SuspectAfter:   2,
			RejoinAfter:    2,
			DemoteCooldown: -1, // restarts must readmit immediately in this probe
			Replicas:       1,
			Logger:         log,
		}, service.Options{Workers: 2, Logger: log})
		if err != nil {
			fatalf("membership node %d: %v", i, err)
		}
		nodes[i] = node
		servers[i] = &http.Server{Handler: node.Handler()}
		go servers[i].Serve(listeners[i])
	}
	defer func() {
		for i, hs := range servers {
			if hs != nil {
				hs.Close()
			}
			nodes[i].Stop()
		}
	}()
	addr := func(i int) string { return members[i].Addr }
	idx := func(id string) int {
		for i := range members {
			if members[i].ID == id {
				return i
			}
		}
		fatalf("membership: no member %q", id)
		return -1
	}
	waitFor := func(what string, cond func() bool) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				fatalf("membership: timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 1: replica failover. Fill a key on its owner, wait for the
	// replica push to land on the ring successor, kill the owner, and
	// serve the key from the replica without recomputing.
	runReq := service.RunRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 36},
		Scheme:   service.SchemeSpec{Name: "process", X: 4},
		Config:   service.ConfigSpec{P: 4},
	}
	key, err := service.RunKey(runReq)
	if err != nil {
		fatalf("membership: run key: %v", err)
	}
	full := nodes[0].Ring()
	owner := full.Owner(key).ID
	succ := full.Successors(key, 1)[0].ID
	ownerIdx, succIdx := idx(owner), idx(succ)
	var otherIdx int
	for i := range members {
		if i != ownerIdx && i != succIdx {
			otherIdx = i
		}
	}

	if code, body, _ := postTenant(ctx, addr(ownerIdx)+"/run", runReq, "probe"); code != http.StatusOK {
		fatalf("membership: fill /run on owner %s: %d %s", owner, code, body)
	}
	code, cachedBody, _ := postTenant(ctx, addr(ownerIdx)+"/run", runReq, "probe")
	var rr service.RunResponse
	if code != http.StatusOK || json.Unmarshal([]byte(cachedBody), &rr) != nil || !rr.Cached {
		fatalf("membership: cached /run on owner: %d %s", code, cachedBody)
	}
	waitFor("replica push to "+succ, func() bool { return nodes[succIdx].Server().CacheHas(key) })

	servers[ownerIdx].Close()
	servers[ownerIdx] = nil
	fmt.Printf("dsprobe: killed owner %s (replica on %s)\n", owner, succ)
	waitFor("survivors to demote "+owner, func() bool {
		return nodes[succIdx].PeerState(owner) == "demoted" && nodes[otherIdx].PeerState(owner) == "demoted"
	})

	// Post directly to the successor — the node now owning the key in the
	// shrunk live ring — so the replica-hit accounting is observable.
	hitsBefore := nodes[succIdx].Membership().ReplicaHits
	code, got, hdr := postTenant(ctx, addr(succIdx)+"/run", runReq, "probe")
	if code != http.StatusOK {
		fatalf("membership: /run after owner kill: %d %s", code, got)
	}
	if served := hdr.Get("X-DSServe-Node"); served != succ {
		fatalf("membership: degraded /run served by %q, want successor %q", served, succ)
	}
	if !bytes.Equal([]byte(got), []byte(cachedBody)) {
		fatalf("membership: replica-served bytes diverge from the owner's cached response\nowner:   %s\nreplica: %s", cachedBody, got)
	}
	if hits := nodes[succIdx].Membership().ReplicaHits; hits != hitsBefore+1 {
		fatalf("membership: successor replica hits = %d, want %d", hits, hitsBefore+1)
	}
	fmt.Printf("dsprobe: key served from replica on %s, byte-identical, no recompute\n", succ)

	// Phase 2: restart the owner on its original address; probes readmit
	// it and forwarding resumes to the original ring layout.
	hostport := listeners[ownerIdx].Addr().String()
	var ln net.Listener
	waitFor("rebind of "+hostport, func() bool {
		ln, err = net.Listen("tcp", hostport)
		return err == nil
	})
	listeners[ownerIdx] = ln
	servers[ownerIdx] = &http.Server{Handler: nodes[ownerIdx].Handler()}
	go servers[ownerIdx].Serve(ln)
	waitFor("survivors to readmit "+owner, func() bool {
		return nodes[succIdx].PeerState(owner) == "alive" && nodes[otherIdx].PeerState(owner) == "alive"
	})
	waitFor("ring convergence", func() bool {
		v := full.Version()
		return nodes[0].Ring().Version() == v && nodes[1].Ring().Version() == v && nodes[2].Ring().Version() == v
	})
	code, got, hdr = postTenant(ctx, addr(otherIdx)+"/run", runReq, "probe")
	if code != http.StatusOK || hdr.Get("X-DSServe-Node") != owner {
		fatalf("membership: post-rejoin /run: %d served by %q, want 200 from %q", code, hdr.Get("X-DSServe-Node"), owner)
	}
	if !bytes.Equal([]byte(got), []byte(cachedBody)) {
		fatalf("membership: post-rejoin bytes diverge from the pre-kill cached response")
	}
	rejoins := nodes[succIdx].Membership().Rejoins + nodes[otherIdx].Membership().Rejoins
	fmt.Printf("dsprobe: %s rejoined within the probe window (%d rejoins), forwarding restored\n", owner, rejoins)

	// Phase 3: graceful drain with warm handoff. Fill a key owned by the
	// drained node, drain it, and require the handed-off key to be a warm
	// cross-node hit on the remaining members.
	drainIdx := otherIdx
	drainID := members[drainIdx].ID
	drainReq := runReq
	for drainReq.Workload.N = 40; ; drainReq.Workload.N += 4 {
		k, err := service.RunKey(drainReq)
		if err != nil {
			fatalf("membership: drain key: %v", err)
		}
		if full.Owner(k).ID == drainID {
			key = k
			break
		}
	}
	if code, body, _ := postTenant(ctx, addr(drainIdx)+"/run", drainReq, "probe"); code != http.StatusOK {
		fatalf("membership: fill /run on drain node %s: %d %s", drainID, code, body)
	}
	code, drainCached, _ := postTenant(ctx, addr(drainIdx)+"/run", drainReq, "probe")
	if code != http.StatusOK {
		fatalf("membership: cached /run on drain node: %d %s", code, drainCached)
	}
	rep := nodes[drainIdx].DrainHandoff(ctx)
	if rep.Entries == 0 || rep.FailedBatches != 0 {
		fatalf("membership: drain handoff report %+v, want entries > 0 with no failed batches", rep)
	}
	servers[drainIdx].Close()
	servers[drainIdx] = nil
	nodes[drainIdx].Stop()
	waitFor("survivors to drop the drained "+drainID, func() bool {
		return nodes[ownerIdx].PeerState(drainID) == "demoted" && nodes[succIdx].PeerState(drainID) == "demoted"
	})
	code, got, _ = postTenant(ctx, addr(ownerIdx)+"/run", drainReq, "probe")
	if code != http.StatusOK || json.Unmarshal([]byte(got), &rr) != nil || !rr.Cached {
		fatalf("membership: handed-off key was not a warm hit on the survivors: %d %s", code, got)
	}
	recv := nodes[ownerIdx].Membership().HandoffRecvEntries + nodes[succIdx].Membership().HandoffRecvEntries
	if recv < int64(rep.Entries) {
		fatalf("membership: survivors imported %d handoff entries, drained node sent %d", recv, rep.Entries)
	}
	fmt.Printf("dsprobe: %s drained %d entries; handed-off key is a warm cross-node hit\n", drainID, rep.Entries)

	// The shrunk cluster still merges sweeps to the single-node oracle.
	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 48},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid:     service.SweepGrid{X: []int{2, 4}, P: []int{2, 4, 8}, Chunk: []int64{1, 2}},
	}
	code, body, _ := postTenant(ctx, addr(succIdx)+"/sweep", sweep, "probe")
	if code != http.StatusOK {
		fatalf("membership: post-drain sweep: %d %s", code, body)
	}
	var gotSweep service.SweepResponse
	if err := json.Unmarshal([]byte(body), &gotSweep); err != nil {
		fatalf("membership: decode post-drain sweep: %v", err)
	}
	oracleSrv := service.NewServer(service.Options{Workers: 4, Logger: log})
	defer oracleSrv.Drain(context.Background())
	oracle, err := oracleSrv.EvalSweep(ctx, sweep)
	if err != nil {
		fatalf("membership: oracle sweep: %v", err)
	}
	if !sweepEqual(&gotSweep, oracle) || gotSweep.Failed != 0 {
		fatalf("membership: post-drain sweep diverges from the single-node oracle (%d failed)\n%s", gotSweep.Failed, body)
	}
	fmt.Printf("dsprobe: post-drain sweep matches oracle (%d points)\n", len(gotSweep.Points))
	fmt.Println("dsprobe: kill/replica-serve/rejoin/drain-handoff cycle verified")
}
