package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/cluster"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/service"
)

// probeClock is a hand-advanced clock shared by every node's link injector,
// so partition-episode windows open and close exactly when the probe says —
// never on the wall clock's schedule.
type probeClock struct {
	base     time.Time
	offsetMS atomic.Int64
}

func (c *probeClock) now() time.Time {
	return c.base.Add(time.Duration(c.offsetMS.Load()) * time.Millisecond)
}

// probeNodes is one in-process cluster: nodes, their listeners, and the
// teardown that stops everything.
type probeNodes struct {
	members []cluster.Member
	nodes   []*cluster.Node
	servers []*http.Server
}

func startProbeCluster(size int, opts cluster.Options) *probeNodes {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	pc := &probeNodes{}
	listeners := make([]net.Listener, size)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("partition listen: %v", err)
		}
		listeners[i] = ln
		pc.members = append(pc.members, cluster.Member{ID: fmt.Sprintf("n%d", i), Addr: "http://" + ln.Addr().String()})
	}
	for i, ln := range listeners {
		o := opts
		o.Self = pc.members[i].ID
		o.Members = pc.members
		o.Logger = log
		node, err := cluster.New(o, service.Options{Workers: 2, Logger: log})
		if err != nil {
			fatalf("partition node %d: %v", i, err)
		}
		hs := &http.Server{Handler: node.Handler()}
		go hs.Serve(ln)
		pc.nodes = append(pc.nodes, node)
		pc.servers = append(pc.servers, hs)
	}
	return pc
}

func (pc *probeNodes) stop() {
	for i, hs := range pc.servers {
		hs.Close()
		pc.nodes[i].Stop()
	}
}

func (pc *probeNodes) linkTotals() fault.LinkCounts {
	var sum fault.LinkCounts
	for _, n := range pc.nodes {
		sum = sum.Add(n.LinkCounts())
	}
	return sum
}

// probePartition verifies the partition-tolerance story in two phases.
//
// Phase A (reproducibility): the same seeded link-fault plan driven by the
// same sequential request schedule twice, against two fresh clusters, must
// inject exactly the same faults — the per-kind injected counts and every
// response's status and serving node are compared run to run.
//
// Phase B (partition window): a seeded partition episode on a hand-advanced
// clock isolates n2. While the partition holds, the minority node refuses
// to coordinate cluster sweeps (503) and the majority's sweep matches the
// single-node oracle. After the heal, probes readmit everyone, anti-entropy
// pushes the copies the partition starved n2 of until every key is back at
// full replication factor, and a cluster sweep coordinated by the healed
// minority node again matches the oracle.
func probePartition(ctx context.Context) {
	// ---- Phase A: seeded chaos is reproducible run-to-run.
	chaos := &fault.LinkPlan{Seed: 7, DropProb: 0.2, DelayProb: 0.2, DelayMS: 5, DupProb: 0.2}
	leg := func() (fault.LinkCounts, string) {
		pc := startProbeCluster(3, cluster.Options{
			PeerAttempts:        2,
			PeerBaseDelay:       5 * time.Millisecond,
			Replicas:            -1, // only the driver's forwards touch the links
			AntiEntropyInterval: -1,
			LinkFaults:          chaos,
		})
		defer pc.stop()
		var digest strings.Builder
		for i := 0; i < 60; i++ {
			req := service.RunRequest{
				Workload: service.WorkloadSpec{Name: "fig21", N: int64(24 + 2*i)},
				Scheme:   service.SchemeSpec{Name: "process", X: 4},
				Config:   service.ConfigSpec{P: 4},
			}
			code, _, hdr := postTenant(ctx, pc.members[i%3].Addr+"/run", req, "probe")
			fmt.Fprintf(&digest, "%d:%d:%s ", i, code, hdr.Get("X-DSServe-Node"))
		}
		return pc.linkTotals(), digest.String()
	}
	counts1, digest1 := leg()
	counts2, digest2 := leg()
	if counts1 != counts2 {
		fatalf("partition: seeded chaos diverged between identical runs:\nrun 1: %+v\nrun 2: %+v", counts1, counts2)
	}
	if digest1 != digest2 {
		fatalf("partition: response schedule diverged between identical runs:\nrun 1: %s\nrun 2: %s", digest1, digest2)
	}
	if counts1.Total() == 0 {
		fatalf("partition: chaos plan injected nothing (counts %+v)", counts1)
	}
	fmt.Printf("dsprobe: seeded chaos reproducible: %d faults (drop %d, delay %d, dup %d) identical across two runs\n",
		counts1.Total(), counts1.Drops, counts1.Delays, counts1.Dups)

	// ---- Phase B: partition episode on a manual clock.
	clk := &probeClock{base: time.Now()}
	plan := &fault.LinkPlan{
		Seed: 42,
		Partitions: []fault.PartitionEpisode{
			{Name: "split", Islands: [][]string{{"n2"}}, StartMS: 1000, HealMS: 2000},
		},
	}
	pc := startProbeCluster(3, cluster.Options{
		PeerToken:     "probe-secret",
		PeerAttempts:  2,
		PeerBaseDelay: 25 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		SuspectAfter:  2,
		RejoinAfter:   2,
		// After the heal the three nodes readmit at slightly different
		// moments; the cooldown keeps a slow peer's gossip from re-demoting
		// a freshly readmitted one (only probes witness recovery).
		DemoteCooldown:      time.Second,
		Replicas:            1,
		AntiEntropyInterval: 200 * time.Millisecond,
		LinkFaults:          plan,
		LinkClock:           clk.now,
	})
	defer pc.stop()
	addr := func(i int) string { return pc.members[i].Addr }
	waitFor := func(what string, cond func() bool) {
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				fatalf("partition: timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	full := pc.nodes[0].Ring()

	// Pre-partition sanity: the episode has not started, requests flow.
	if code, body, _ := postTenant(ctx, addr(2)+"/run", service.RunRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   service.SchemeSpec{Name: "process", X: 4},
		Config:   service.ConfigSpec{P: 4},
	}, "probe"); code != http.StatusOK {
		fatalf("partition: pre-partition /run via n2: %d %s", code, body)
	}

	// Open the partition window: n2 is cut from {n0, n1} in both directions.
	clk.offsetMS.Store(1500)
	waitFor("both sides to see the partition", func() bool {
		return pc.nodes[0].PeerState("n2") == "demoted" && pc.nodes[1].PeerState("n2") == "demoted" &&
			pc.nodes[2].PeerState("n0") == "demoted" && pc.nodes[2].PeerState("n1") == "demoted"
	})
	fmt.Println("dsprobe: partition open; both sides demoted across the cut")

	// The minority side must refuse to coordinate a cluster sweep.
	sweep := service.SweepRequest{
		Workload: service.WorkloadSpec{Name: "fig21", N: 48},
		Scheme:   service.SchemeSpec{Name: "process"},
		Grid:     service.SweepGrid{X: []int{2, 4}, P: []int{2, 4}, Chunk: []int64{1, 2}},
	}
	code, body, _ := postTenant(ctx, addr(2)+"/sweep", sweep, "probe")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "refuses to coordinate") {
		fatalf("partition: minority /sweep answered %d %s, want a 503 refusal", code, body)
	}
	fmt.Println("dsprobe: minority node refused sweep coordination with 503")

	// The majority's sweep must match the single-node oracle.
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	oracleSrv := service.NewServer(service.Options{Workers: 4, Logger: log})
	defer oracleSrv.Drain(context.Background())
	oracle, err := oracleSrv.EvalSweep(ctx, sweep)
	if err != nil {
		fatalf("partition: oracle sweep: %v", err)
	}
	code, body, _ = postTenant(ctx, addr(0)+"/sweep", sweep, "probe")
	if code != http.StatusOK {
		fatalf("partition: majority /sweep: %d %s", code, body)
	}
	var got service.SweepResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		fatalf("partition: decode majority sweep: %v", err)
	}
	if got.Failed != 0 || !sweepEqual(&got, oracle) {
		fatalf("partition: majority sweep diverges from the oracle (%d failed)\n%s", got.Failed, body)
	}
	fmt.Printf("dsprobe: majority sweep matches oracle during the partition (%d points)\n", len(got.Points))

	// Fill keys on the majority whose full-ring successor is the isolated
	// n2 — the copies the partition is starving it of.
	var repairReqs []service.RunRequest
	var repairKeys []cache.Key
	for n := int64(100); len(repairReqs) < 4; n += 2 {
		req := service.RunRequest{
			Workload: service.WorkloadSpec{Name: "fig21", N: n},
			Scheme:   service.SchemeSpec{Name: "process", X: 4},
			Config:   service.ConfigSpec{P: 4},
		}
		k, err := service.RunKey(req)
		if err != nil {
			fatalf("partition: repair key: %v", err)
		}
		if full.Owner(k).ID != "n2" && full.Successors(k, 1)[0].ID == "n2" {
			repairReqs = append(repairReqs, req)
			repairKeys = append(repairKeys, k)
		}
	}
	for _, req := range repairReqs {
		if code, body, _ := postTenant(ctx, addr(0)+"/run", req, "probe"); code != http.StatusOK {
			fatalf("partition: mid-partition fill: %d %s", code, body)
		}
	}

	// Heal: readmission converges every ring back to the full membership.
	clk.offsetMS.Store(2500)
	waitFor("rings to converge after the heal", func() bool {
		v := full.Version()
		return pc.nodes[0].Ring().Version() == v && pc.nodes[1].Ring().Version() == v &&
			pc.nodes[2].Ring().Version() == v
	})
	fmt.Println("dsprobe: partition healed; all rings converged to the full membership")

	// Anti-entropy must restore the replication factor: every mid-partition
	// key reaches its full-ring successor n2, and the scans settle at zero
	// under-replicated keys on every node.
	waitFor("anti-entropy to push the starved replicas to n2", func() bool {
		for _, k := range repairKeys {
			if !pc.nodes[2].Server().CacheHas(k) {
				return false
			}
		}
		return true
	})
	waitFor("anti-entropy scans to settle at zero under-replicated keys", func() bool {
		for _, n := range pc.nodes {
			if _, _, under := n.AntiEntropyStats(); under != 0 {
				return false
			}
		}
		return true
	})
	var pushes int64
	for _, n := range pc.nodes {
		_, p, _ := n.AntiEntropyStats()
		pushes += p
	}
	if pushes < int64(len(repairKeys)) {
		fatalf("partition: anti-entropy pushed %d replicas, want >= %d", pushes, len(repairKeys))
	}
	fmt.Printf("dsprobe: anti-entropy restored replication factor (%d pushes, 0 under-replicated)\n", pushes)

	// The healed minority node coordinates again, oracle-identical.
	code, body, _ = postTenant(ctx, addr(2)+"/sweep", sweep, "probe")
	if code != http.StatusOK {
		fatalf("partition: post-heal /sweep via n2: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		fatalf("partition: decode post-heal sweep: %v", err)
	}
	if got.Failed != 0 || !sweepEqual(&got, oracle) {
		fatalf("partition: post-heal sweep diverges from the oracle (%d failed)\n%s", got.Failed, body)
	}

	totals := pc.linkTotals()
	if totals.Partition == 0 {
		fatalf("partition: no partition-kind faults were injected (counts %+v)", totals)
	}
	m := getText(ctx, addr(2)+"/metrics")
	if !strings.Contains(m, `dsserve_link_faults_injected_total{kind="partition"}`) {
		fatalf("partition: metrics missing the partition link-fault family:\n%s", m)
	}
	if !strings.Contains(m, "dsserve_underreplicated_keys 0") {
		fatalf("partition: metrics still report under-replicated keys:\n%s", m)
	}
	fmt.Printf("dsprobe: post-heal sweep matches oracle; %d partition cuts injected\n", totals.Partition)
	fmt.Println("dsprobe: partition/refusal/heal/anti-entropy cycle verified")
}
