// Command dssim runs a single Doacross simulation: a workload (built in, or
// a .do file in the lang syntax) under one synchronization scheme on a
// configurable machine, and prints the measurements.
//
//	dssim -workload fig21 -scheme process -p 4 -x 8
//	dssim -workload nested -scheme ref -p 8
//	dssim -file loop.do -scheme statement -p 4 -buslat 2
//	dssim -fault 'drop=bus:0.01,seed=42' -workload recurrence -scheme process
//
// Workloads, schemes and the machine description are resolved through the
// same spec vocabulary the dsserve HTTP service uses, so a name or
// parameter that is invalid here is invalid there, with the same
// diagnostic. Errors are one line on stderr and exit status 1; a run that
// stalls under an injected fault prints the full stall report and exits 3
// (distinguishing "the fault bit" from "the request was bad").
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/service"
	"github.com/csrd-repro/datasync/internal/sim"
)

func main() {
	workload := flag.String("workload", "fig21", "built-in workload: fig21, nested, branchy, recurrence, stencil")
	file := flag.String("file", "", "run a .do file instead of a built-in workload")
	schemeName := flag.String("scheme", "process", "process, process-basic, pipeline, statement, ref, instance")
	n := flag.Int64("n", 200, "iterations (outer extent for nested)")
	m := flag.Int64("m", 20, "inner extent (nested workload)")
	d := flag.Int64("d", 2, "dependence distance (recurrence workload)")
	cost := flag.Int64("cost", 4, "statement cost in cycles")
	p := flag.Int("p", 4, "processors")
	x := flag.Int("x", 8, "process counters (process schemes)")
	k := flag.Int("k", 0, "statement counters (statement scheme; 0 = one per source)")
	g := flag.Int64("g", 1, "inner iterations per sync point (pipeline scheme)")
	busLat := flag.Int64("buslat", 1, "sync bus broadcast latency")
	coverage := flag.Bool("coverage", false, "enable write-coverage optimization")
	memLat := flag.Int64("memlat", 2, "memory module latency")
	modules := flag.Int("modules", 0, "memory modules (0 = one per processor)")
	chunk := flag.Int64("chunk", 0, "iterations per dispatch (>1 selects chunked self-scheduling)")
	faultSpec := flag.String("fault", "", "deterministic fault plan, e.g. 'drop=bus:0.01,delay=bus:0.05:6,seed=42'")
	recoverSpec := flag.String("recover", "", "reclaim halted processors: cycles-until-reclaim, optionally ',max-reclaims' (e.g. '100' or '100,2')")
	trace := flag.Bool("trace", false, "print a per-processor execution timeline")
	traceWidth := flag.Int("tracewidth", 100, "timeline width in characters")
	flag.Parse()

	wspec := service.WorkloadSpec{Name: *workload, N: *n, M: *m, D: *d, Cost: *cost}
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		wspec = service.WorkloadSpec{Source: string(src)}
	}
	w, err := wspec.Build()
	if err != nil {
		fatal(err)
	}

	sch, err := service.SchemeSpec{Name: *schemeName, X: *x, K: *k, G: *g}.Build()
	if err != nil {
		fatal(err)
	}

	cfg := service.ConfigSpec{
		P:          *p,
		BusLatency: busLat,
		Coverage:   *coverage,
		MemLatency: *memLat,
		Modules:    *modules,
		Chunk:      *chunk,
	}.SimConfig()
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		cfg.FaultPlan = plan
	}
	if *recoverSpec != "" {
		rec, err := parseRecover(*recoverSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Recover = rec
	}
	if err := cfg.Check(); err != nil {
		fatal(err)
	}

	var res codegen.Result
	var events []sim.TraceEvent
	if *trace {
		res, events, err = codegen.RunTraced(w, sch, cfg)
	} else {
		res, err = codegen.Run(w, sch, cfg)
	}
	if err != nil {
		var se *sim.StallError
		if errors.As(err, &se) {
			// A diagnosed stall under an active fault plan: print the full
			// report (multi-line) and exit 3 so scripts can tell "the
			// injected fault bit" apart from "the request was bad".
			fmt.Fprintf(os.Stderr, "dssim: run stalled under the fault plan\n%v\n", se)
			os.Exit(3)
		}
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("workload:        %s (%d iterations)\n", w.Name, st.Iterations)
	fmt.Printf("scheme:          %s\n", res.Scheme)
	fmt.Printf("machine:         P=%d busLat=%d coverage=%v memLat=%d modules=%d\n",
		cfg.Processors, cfg.BusLatency, cfg.BusCoverage, cfg.MemLatency, cfg.Modules)
	fmt.Printf("serial cycles:   %d\n", res.SerialCycles)
	fmt.Printf("parallel cycles: %d (speedup %.2f, utilization %.3f)\n",
		st.Cycles, res.Speedup(), st.Utilization())
	fmt.Printf("sync vars:       %d (init ops %d, storage %d words)\n",
		res.Foot.SyncVars, res.Foot.InitOps, res.Foot.StorageWords)
	fmt.Printf("sync ops:        %d (wait cycles %d)\n", st.SyncOps, st.WaitSyncTotal())
	fmt.Printf("bus broadcasts:  %d (saved by coverage %d)\n", st.BusBroadcasts, st.BusSaved)
	fmt.Printf("module accesses: %d (queue wait %d, max backlog %d, polls %d)\n",
		st.ModuleAccesses, st.ModuleQueueWait, st.MaxModuleQueue, st.Polls)
	if cfg.FaultPlan.Enabled() {
		fmt.Printf("injected faults: %s\n", st.Faults.String())
	}
	if rec := st.Recovery; rec != nil && rec.Recovered {
		fmt.Printf("recovered:       true\n")
		fmt.Printf("recovery:        %s\n", rec)
	}
	fmt.Printf("serial-equivalence check: PASS\n")
	if *trace {
		fmt.Println()
		fmt.Print(sim.TraceTimeline(events, cfg.Processors, st.Cycles, *traceWidth))
	}
}

// parseRecover parses the -recover flag: "<afterCycles>" or
// "<afterCycles>,<maxReclaims>". Validity beyond the syntax is checked by
// sim.Config.Check alongside the rest of the machine description.
func parseRecover(s string) (sim.Recover, error) {
	var rec sim.Recover
	after, budget, ok := strings.Cut(s, ",")
	v, err := strconv.ParseInt(strings.TrimSpace(after), 10, 64)
	if err != nil {
		return rec, fmt.Errorf("recover: cycles-until-reclaim %q is not an integer", after)
	}
	rec.AfterCycles = v
	if ok {
		mx, err := strconv.Atoi(strings.TrimSpace(budget))
		if err != nil {
			return rec, fmt.Errorf("recover: max-reclaims %q is not an integer", budget)
		}
		rec.MaxReclaims = mx
	}
	return rec, nil
}

// fatal prints a one-line diagnostic through the renderer shared with
// dsserve and exits non-zero.
func fatal(err error) {
	service.Fatal(os.Stderr, "dssim", err)
	os.Exit(1)
}
