// Command dssim runs a single Doacross simulation: a workload (built in, or
// a .do file in the lang syntax) under one synchronization scheme on a
// configurable machine, and prints the measurements.
//
//	dssim -workload fig21 -scheme process -p 4 -x 8
//	dssim -workload nested -scheme ref -p 8
//	dssim -file loop.do -scheme statement -p 4 -buslat 2
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/lang"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

func main() {
	workload := flag.String("workload", "fig21", "built-in workload: fig21, nested, branchy, recurrence")
	file := flag.String("file", "", "run a .do file instead of a built-in workload")
	schemeName := flag.String("scheme", "process", "process, process-basic, pipeline, statement, ref, instance")
	n := flag.Int64("n", 200, "iterations (outer extent for nested)")
	m := flag.Int64("m", 20, "inner extent (nested workload)")
	d := flag.Int64("d", 2, "dependence distance (recurrence workload)")
	cost := flag.Int64("cost", 4, "statement cost in cycles")
	p := flag.Int("p", 4, "processors")
	x := flag.Int("x", 8, "process counters (process schemes)")
	k := flag.Int("k", 0, "statement counters (statement scheme; 0 = one per source)")
	g := flag.Int64("g", 1, "inner iterations per sync point (pipeline scheme)")
	busLat := flag.Int64("buslat", 1, "sync bus broadcast latency")
	coverage := flag.Bool("coverage", false, "enable write-coverage optimization")
	memLat := flag.Int64("memlat", 2, "memory module latency")
	modules := flag.Int("modules", 0, "memory modules (0 = one per processor)")
	trace := flag.Bool("trace", false, "print a per-processor execution timeline")
	traceWidth := flag.Int("tracewidth", 100, "timeline width in characters")
	flag.Parse()

	var w *codegen.Workload
	var err error
	switch {
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err == nil {
			w, err = lang.Parse(string(src))
		}
	case *workload == "fig21":
		w = workloads.Fig21(*n, *cost)
	case *workload == "nested":
		w = workloads.Nested(*n, *m, *cost)
	case *workload == "branchy":
		w = workloads.Branchy(*n, *cost)
	case *workload == "recurrence":
		w = workloads.Recurrence(*n, *d, *cost)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}

	var sch codegen.Scheme
	switch *schemeName {
	case "process":
		sch = codegen.ProcessOriented{X: *x, Improved: true}
	case "process-basic":
		sch = codegen.ProcessOriented{X: *x, Improved: false}
	case "pipeline":
		sch = codegen.PipelinedOuter{X: *x, G: *g}
	case "statement":
		sch = codegen.StatementOriented{K: *k}
	case "ref":
		sch = codegen.RefBased{}
	case "instance":
		sch = codegen.NewInstanceBased()
	default:
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	mods := *modules
	if mods == 0 {
		mods = *p
	}
	cfg := sim.Config{
		Processors:    *p,
		BusLatency:    *busLat,
		BusCoverage:   *coverage,
		MemLatency:    *memLat,
		Modules:       mods,
		SyncOpCost:    1,
		SchedOverhead: 1,
	}
	var res codegen.Result
	var events []sim.TraceEvent
	var err2 error
	if *trace {
		res, events, err2 = codegen.RunTraced(w, sch, cfg)
	} else {
		res, err2 = codegen.Run(w, sch, cfg)
	}
	if err2 != nil {
		fatal(err2)
	}
	st := res.Stats
	fmt.Printf("workload:        %s (%d iterations)\n", w.Name, st.Iterations)
	fmt.Printf("scheme:          %s\n", res.Scheme)
	fmt.Printf("machine:         P=%d busLat=%d coverage=%v memLat=%d modules=%d\n",
		*p, *busLat, *coverage, *memLat, mods)
	fmt.Printf("serial cycles:   %d\n", res.SerialCycles)
	fmt.Printf("parallel cycles: %d (speedup %.2f, utilization %.3f)\n",
		st.Cycles, res.Speedup(), st.Utilization())
	fmt.Printf("sync vars:       %d (init ops %d, storage %d words)\n",
		res.Foot.SyncVars, res.Foot.InitOps, res.Foot.StorageWords)
	fmt.Printf("sync ops:        %d (wait cycles %d)\n", st.SyncOps, st.WaitSyncTotal())
	fmt.Printf("bus broadcasts:  %d (saved by coverage %d)\n", st.BusBroadcasts, st.BusSaved)
	fmt.Printf("module accesses: %d (queue wait %d, max backlog %d, polls %d)\n",
		st.ModuleAccesses, st.ModuleQueueWait, st.MaxModuleQueue, st.Polls)
	fmt.Printf("serial-equivalence check: PASS\n")
	if *trace {
		fmt.Println()
		fmt.Print(sim.TraceTimeline(events, *p, st.Cycles, *traceWidth))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dssim:", err)
	os.Exit(1)
}
