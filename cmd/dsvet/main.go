// Command dsvet verifies generated synchronization programs. For each
// selected workload x scheme pair it extracts the abstract sync program
// (without running the machine), builds the happens-before relation the
// waits and signals induce over the iteration space, and checks it against
// the nest's dependence set: uncovered arcs are reported as races with a
// concrete iteration-pair witness, wait-for cycles as deadlocks, and
// transitively implied waits as advisory redundancy notes. With -dynamic it
// additionally executes the pair on the simulated machine and replays the
// synchronization trace through a vector-clock race checker.
//
//	dsvet                              # all built-in workloads x all schemes
//	dsvet -workload fig21 -scheme ref  # one pair
//	dsvet -file loop.do -scheme all    # a .do file under every scheme
//	dsvet -source loops.go             # Go loop nests via the static frontend
//	dsvet -dynamic -json               # include trace replay, emit JSON
//
// Exit status: 0 all pairs verified clean (advisory notes allowed), 1 hard
// findings or dynamic races, 2 usage or extraction errors.
//
// The pipelined-outer scheme is out of scope: its processes are outer-loop
// slices rather than coalesced iterations, which the iteration-indexed
// happens-before model does not cover.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/frontend"
	"github.com/csrd-repro/datasync/internal/lang"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
	"github.com/csrd-repro/datasync/internal/workloads"
)

type pairResult struct {
	Workload string            `json:"workload"`
	Scheme   string            `json:"scheme"`
	Static   *verify.Report    `json:"static"`
	Dynamic  *verify.DynReport `json:"dynamic,omitempty"`
	RunError string            `json:"run_error,omitempty"` // -dynamic execution failure
	// Recovered marks a -dynamic execution that completed via ownership
	// reclamation; its trace was replayed like any other.
	Recovered bool `json:"recovered,omitempty"`
}

func main() {
	workload := flag.String("workload", "all", "built-in workload: fig21, nested, branchy, recurrence, stencil, all")
	file := flag.String("file", "", "verify a .do file instead of a built-in workload")
	source := flag.String("source", "", "verify the loop nests of a Go source file (lowered by the static frontend)")
	schemeName := flag.String("scheme", "all", "process, process-basic, statement, ref, instance, all")
	n := flag.Int64("n", 40, "iterations (outer extent for nested, grid size for stencil)")
	m := flag.Int64("m", 8, "inner extent (nested workload)")
	d := flag.Int64("d", 3, "dependence distance (recurrence workload)")
	cost := flag.Int64("cost", 4, "statement cost in cycles")
	x := flag.Int("x", 4, "process counters (process schemes)")
	k := flag.Int("k", 0, "statement counters (statement scheme; 0 = one per source)")
	maxIter := flag.Int64("maxiter", 0, "iteration window cap for static analysis (0 = default 512)")
	dynamic := flag.Bool("dynamic", false, "also execute on the simulated machine and replay the sync trace")
	p := flag.Int("p", 8, "processors for -dynamic execution")
	faultSpec := flag.String("fault", "", "fault plan for -dynamic execution, e.g. 'halt=proc1:50'")
	recoverCycles := flag.Int64("recover", 0, "with -dynamic: reclaim halted processors after this many cycles (0 = off)")
	jsonOut := flag.Bool("json", false, "emit one JSON array of pair results instead of text")
	flag.Parse()

	ws, err := selectWorkloads(*workload, *file, *source, *n, *m, *d, *cost)
	if err != nil {
		usage(err)
	}
	schemes, err := selectSchemes(*schemeName, *x, *k)
	if err != nil {
		usage(err)
	}

	cfg := sim.Config{Processors: *p, BusLatency: 1, MemLatency: 2, Modules: *p,
		SyncOpCost: 1, SchedOverhead: 1}
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			usage(err)
		}
		cfg.FaultPlan = plan
	}
	cfg.Recover = sim.Recover{AfterCycles: *recoverCycles}
	if err := cfg.Check(); err != nil {
		usage(err)
	}
	var results []pairResult
	hard := false
	for _, w := range ws {
		for _, s := range schemes {
			sp, err := codegen.ExtractSyncProgram(w, s.build())
			if err != nil {
				usage(fmt.Errorf("%s/%s: %v", w.Name, s.name, err))
			}
			pr := pairResult{Workload: w.Name, Scheme: sp.Scheme,
				Static: verify.Static(sp, verify.Options{MaxIters: *maxIter})}
			if !pr.Static.OK() {
				hard = true
			}
			if *dynamic {
				// A broken scheme may fail serial equivalence or deadlock;
				// the trace recorded up to that point is still replayed. A
				// recovered run's trace (reclaimed ownership, resumed
				// iteration) goes through the same vector-clock replay: the
				// resumption shares its iteration with the pre-halt prefix,
				// so it is happens-before ordered like any other execution.
				res, events, rerr := codegen.RunSyncTraced(w, s.build(), cfg)
				if rerr != nil {
					pr.RunError = rerr.Error()
					hard = true
				}
				if rec := res.Stats.Recovery; rec != nil && rec.Recovered {
					pr.Recovered = true
				}
				pr.Dynamic = verify.Dynamic(events)
				if !pr.Dynamic.OK() {
					hard = true
				}
			}
			results = append(results, pr)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			usage(err)
		}
	} else {
		for i, pr := range results {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(pr.Static)
			if pr.RunError != "" {
				fmt.Printf("dynamic run FAILED: %s\n", pr.RunError)
			}
			if pr.Recovered {
				fmt.Printf("dynamic run recovered from a halted processor; trace replayed\n")
			}
			if pr.Dynamic != nil {
				fmt.Print(pr.Dynamic)
			}
		}
		fmt.Println()
		if hard {
			fmt.Printf("dsvet: FAIL (%d pair(s) checked)\n", len(results))
		} else {
			fmt.Printf("dsvet: PASS (%d pair(s) checked)\n", len(results))
		}
	}
	if hard {
		os.Exit(1)
	}
}

func selectWorkloads(name, file, source string, n, m, d, cost int64) ([]*codegen.Workload, error) {
	if source != "" {
		// Lowering rejections are not verification findings: they go to
		// stderr as positioned diagnostics, and the accepted loops are
		// verified like any other workload. A file yielding no loops is a
		// usage error (exit 2), matching the extraction-error convention.
		res, err := frontend.LowerFile(source)
		if err != nil {
			return nil, err
		}
		for _, d := range res.Rejected {
			fmt.Fprintln(os.Stderr, d.String())
		}
		if len(res.Loops) == 0 {
			return nil, fmt.Errorf("%s: no lowerable loop nests (%d candidate(s) rejected)", source, len(res.Rejected))
		}
		ws := make([]*codegen.Workload, len(res.Loops))
		for i, lp := range res.Loops {
			ws[i] = lp.Workload
		}
		return ws, nil
	}
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		w, err := lang.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return []*codegen.Workload{w}, nil
	}
	switch name {
	case "fig21":
		return []*codegen.Workload{workloads.Fig21(n, cost)}, nil
	case "nested":
		return []*codegen.Workload{workloads.Nested(n, m, cost)}, nil
	case "branchy":
		return []*codegen.Workload{workloads.Branchy(n, cost)}, nil
	case "recurrence":
		return []*codegen.Workload{workloads.Recurrence(n, d, cost)}, nil
	case "stencil":
		return []*codegen.Workload{workloads.Stencil(n, cost)}, nil
	case "all":
		return []*codegen.Workload{
			workloads.Fig21(40, 4),
			workloads.Nested(10, 8, 4),
			workloads.Branchy(40, 4),
			workloads.Recurrence(60, 3, 4),
			workloads.Stencil(11, 4),
		}, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

type schemeSel struct {
	name string
	// build returns a fresh scheme per use: the instance-based scheme keeps
	// per-run state, and the extraction and -dynamic runs must not share it.
	build func() codegen.Scheme
}

func selectSchemes(name string, x, k int) ([]schemeSel, error) {
	all := []schemeSel{
		{"process", func() codegen.Scheme { return codegen.ProcessOriented{X: x, Improved: true} }},
		{"process-basic", func() codegen.Scheme { return codegen.ProcessOriented{X: x, Improved: false} }},
		{"statement", func() codegen.Scheme { return codegen.StatementOriented{K: k} }},
		{"ref", func() codegen.Scheme { return codegen.RefBased{} }},
		{"instance", func() codegen.Scheme { return codegen.Scheme(codegen.NewInstanceBased()) }},
	}
	if name == "all" {
		return all, nil
	}
	for _, s := range all {
		if s.name == name {
			return []schemeSel{s}, nil
		}
	}
	return nil, fmt.Errorf("unknown scheme %q (pipeline is not statically verifiable; see package doc)", name)
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "dsvet:", err)
	os.Exit(2)
}
