// Command dsgo compiles ordinary Go loop nests into the synchronization
// toolchain. It lowers every canonical counted-loop nest in the given files
// through the static frontend, analyzes the dependence structure, statically
// verifies each synchronization scheme's placement, and measures a simulated
// run — the same engine the dsserve /compile endpoint uses.
//
//	dsgo file.go                       # every scheme, text report
//	dsgo -scheme process file.go       # one scheme
//	dsgo -json file.go other.go        # machine-readable output
//
// Loops the frontend cannot prove lowerable are reported as positioned
// diagnostics with a stable reason code (e.g. non-affine-subscript); arcs
// the dependence test cannot prove are listed as conservative unknowns,
// distinct from proven distance vectors.
//
// Exit status: 0 all loops lowered, verified, and synchronized by at least
// the requested schemes; 1 rejections, verification findings, or a loop no
// scheme could synchronize; 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/csrd-repro/datasync/internal/service"
)

type fileResult struct {
	File string `json:"file"`
	*service.CompileOutcome
}

func main() {
	schemeName := flag.String("scheme", "all", "process, process-basic, pipeline, statement, ref, instance, all")
	x := flag.Int("x", 4, "folded process counters (process schemes)")
	k := flag.Int("k", 0, "statement counters (statement scheme; 0 = one per source)")
	g := flag.Int64("g", 1, "pipeline grouping")
	p := flag.Int("p", 8, "processors")
	jsonOut := flag.Bool("json", false, "emit one JSON array of file results instead of text")
	flag.Parse()

	if flag.NArg() == 0 {
		usage(fmt.Errorf("no input files (usage: dsgo [flags] file.go...)"))
	}
	specs, err := selectSchemes(*schemeName, *x, *k, *g)
	if err != nil {
		usage(err)
	}
	cfg := service.ConfigSpec{P: *p}

	hard := false
	var results []fileResult
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			usage(err)
		}
		out, err := service.CompileSource(file, src, specs, cfg)
		if err != nil {
			usage(err)
		}
		if out.Hard() {
			hard = true
		}
		results = append(results, fileResult{File: file, CompileOutcome: out})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			usage(err)
		}
	} else {
		report(results, hard)
	}
	if hard {
		os.Exit(1)
	}
}

func report(results []fileResult, hard bool) {
	loops, rejected := 0, 0
	for _, fr := range results {
		for _, d := range fr.Rejected {
			rejected++
			fmt.Fprintln(os.Stderr, d.String())
		}
		for _, lp := range fr.Loops {
			loops++
			fmt.Printf("%s: func %s: depth-%d nest, %d iterations\n",
				fr.File, lp.Workload, lp.Depth, lp.Iterations)
			fmt.Print(lp.Graph)
			for _, u := range lp.Unknown {
				fmt.Printf("  unknown: %s\n", u)
			}
			for _, cs := range lp.Schemes {
				if cs.Error != "" {
					fmt.Printf("  %-28s refused: %s\n", cs.Scheme, cs.Error)
					continue
				}
				v := "n/a"
				if cs.VerifyOK != nil {
					if *cs.VerifyOK {
						v = "ok"
					} else {
						v = fmt.Sprintf("FAIL(%d findings)", cs.Findings)
					}
				}
				fmt.Printf("  %-28s verify=%-17s cycles=%-8d speedup=%.2f sync=%d bus=%d\n",
					cs.Scheme, v, cs.Cycles, cs.Speedup, cs.SyncOps, cs.BusTx)
			}
		}
	}
	verdict := "PASS"
	if hard {
		verdict = "FAIL"
	}
	fmt.Printf("dsgo: %s (%d loop(s) lowered, %d candidate(s) rejected)\n", verdict, loops, rejected)
}

func selectSchemes(name string, x, k int, g int64) ([]service.SchemeSpec, error) {
	if name == "all" {
		var specs []service.SchemeSpec
		for _, n := range service.SchemeNames() {
			specs = append(specs, service.SchemeSpec{Name: n, X: x, K: k, G: g})
		}
		return specs, nil
	}
	spec := service.SchemeSpec{Name: name, X: x, K: k, G: g}
	if _, err := spec.Build(); err != nil {
		return nil, err
	}
	return []service.SchemeSpec{spec}, nil
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "dsgo:", err)
	os.Exit(2)
}
