// Command dsgraph parses a DO-loop program in the package lang syntax,
// prints its data dependence graph (all arcs, the loop-independent subset,
// and the minimal enforced set after covering elimination), and shows the
// synchronization code a chosen scheme would generate for one iteration.
//
//	dsgraph loop.do                  # dependence analysis of the file
//	dsgraph -iter 10 loop.do         # also print iteration 10's program
//	dsgraph -scheme statement ...    # statement-oriented instead of process
//	dsgraph -enforced loop.do        # only the minimal enforced arc set
//	dsgraph -dot loop.do | dot -Tsvg # Graphviz: enforced solid, covered dashed
//	echo 'DO I = 1, 9 ...' | dsgraph # read from stdin with "-"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/lang"
	"github.com/csrd-repro/datasync/internal/sim"
)

func main() {
	iter := flag.Int64("iter", 0, "print the generated program for this iteration (0: skip)")
	schemeName := flag.String("scheme", "process", "scheme for -iter: process, process-basic, statement, ref, instance")
	x := flag.Int("x", 4, "number of process counters (process schemes)")
	enfOnly := flag.Bool("enforced", false, "print only the minimal enforced arc set, one arc per line")
	dot := flag.Bool("dot", false, "emit the linearized graph in Graphviz DOT: enforced arcs solid, eliminated dashed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsgraph [flags] <file.do | ->")
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	w, err := lang.Parse(src)
	if err != nil {
		fatal(err)
	}

	if *enfOnly || *dot {
		lin := w.Nest.LinearGraph()
		enforced := lin.Enforced()
		if w.Nest.HasBranches() {
			enforced = lin.Deduped()
		}
		if *dot {
			printDOT(lin, enforced)
		} else {
			for _, a := range enforced {
				fmt.Printf("%s -%s(%d)-> %s\n", lin.Stmts[a.Src].Name, a.Kind, a.Dist[0], lin.Stmts[a.Dst].Name)
			}
		}
		return
	}

	fmt.Printf("loop: %d level(s), %d iterations, %d statements\n\n",
		w.Nest.Depth(), w.Nest.Iterations(), len(w.Nest.Stmts()))

	g := w.Nest.Analyze()
	fmt.Println("dependence graph (distance vectors):")
	fmt.Print(g)

	lin := w.Nest.LinearGraph()
	fmt.Println("\nlinearized (coalesced lpid) cross-iteration arcs:")
	for _, a := range lin.CrossArcs() {
		fmt.Printf("%s -%s(%d)-> %s\n", g.Stmts[a.Src].Name, a.Kind, a.Dist[0], g.Stmts[a.Dst].Name)
	}
	enforced := lin.Enforced()
	if w.Nest.HasBranches() {
		enforced = lin.Deduped()
		fmt.Println("\nenforced set (deduplicated; covering disabled for branching bodies):")
	} else {
		fmt.Println("\nenforced set after covering elimination:")
	}
	for _, a := range enforced {
		fmt.Printf("%s -%s(%d)-> %s\n", g.Stmts[a.Src].Name, a.Kind, a.Dist[0], g.Stmts[a.Dst].Name)
	}
	if unknown := g.UnknownArcs(); len(unknown) > 0 {
		fmt.Println("\nWARNING: dependences without constant distance (not enforceable):")
		for _, a := range unknown {
			fmt.Printf("%s -%s(?%s)-> %s  (%s vs %s: %s)\n",
				g.Stmts[a.Src].Name, a.Kind, a.Reason, g.Stmts[a.Dst].Name,
				a.SrcRef, a.DstRef, a.Reason.Explain())
		}
	}

	if *iter > 0 {
		sch, err := pickScheme(*schemeName, *x)
		if err != nil {
			fatal(err)
		}
		m := sim.New(sim.Config{Processors: 2})
		w.Setup(m.Mem())
		prog, foot, err := sch.Instrument(m, w)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s program for iteration %d (%d sync vars):\n", sch.Name(), *iter, foot.SyncVars)
		for i, op := range prog(*iter) {
			fmt.Printf("%3d. %s\n", i+1, op.Tag)
		}
	}
}

// printDOT renders the linearized dependence graph for Graphviz: the
// minimal enforced arcs solid, covering-eliminated cross arcs dashed, and
// loop-independent arcs dotted (enforced by body order, not by sync).
func printDOT(lin *deps.Graph, enforced []deps.Arc) {
	inEnf := make(map[string]bool, len(enforced))
	for _, a := range enforced {
		inEnf[fmt.Sprintf("%d|%d|%d", a.Src, a.Dst, a.Dist[0])] = true
	}
	fmt.Println("digraph deps {")
	fmt.Println("  rankdir=TB;")
	fmt.Println("  node [shape=box, fontname=\"monospace\"];")
	for _, s := range lin.Stmts {
		fmt.Printf("  %q;\n", s.Name)
	}
	for _, a := range lin.Deduped() {
		attrs := "style=dashed, color=gray50, fontcolor=gray50"
		if inEnf[fmt.Sprintf("%d|%d|%d", a.Src, a.Dst, a.Dist[0])] {
			attrs = "style=solid"
		}
		fmt.Printf("  %q -> %q [label=\"%s(%d)\", %s];\n",
			lin.Stmts[a.Src].Name, lin.Stmts[a.Dst].Name, a.Kind, a.Dist[0], attrs)
	}
	seen := make(map[[2]int]bool)
	for _, a := range lin.Arcs {
		if !a.Known || !a.LoopIndep || a.Src == a.Dst || seen[[2]int{a.Src, a.Dst}] {
			continue
		}
		seen[[2]int{a.Src, a.Dst}] = true
		fmt.Printf("  %q -> %q [label=\"%s(0)\", style=\"dotted\", color=gray30];\n",
			lin.Stmts[a.Src].Name, lin.Stmts[a.Dst].Name, a.Kind)
	}
	fmt.Println("}")
}

func pickScheme(name string, x int) (codegen.Scheme, error) {
	switch name {
	case "process":
		return codegen.ProcessOriented{X: x, Improved: true}, nil
	case "process-basic":
		return codegen.ProcessOriented{X: x, Improved: false}, nil
	case "statement":
		return codegen.StatementOriented{}, nil
	case "ref":
		return codegen.RefBased{}, nil
	case "instance":
		return codegen.NewInstanceBased(), nil
	}
	return nil, fmt.Errorf("unknown scheme %q", name)
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsgraph:", err)
	os.Exit(1)
}
