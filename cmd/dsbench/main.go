// Command dsbench runs the reproduction experiments (DESIGN.md E1..E12) and
// prints their result tables. With no flags it runs everything;
// -run selects experiments by comma-separated id (e.g. -run E4,E9).
//
//	dsbench            # all experiments
//	dsbench -run E6    # just the Example 1 relaxation study
//	dsbench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/csrd-repro/datasync/internal/exper"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	md := flag.Bool("md", false, "render tables as GitHub markdown")
	flag.Parse()

	all := exper.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if *md {
			fmt.Printf("### %s: %s\n\n", e.ID, e.Title)
		} else {
			fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Title)
		}
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			if *md {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
