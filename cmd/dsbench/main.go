// Command dsbench runs the reproduction experiments (DESIGN.md E1..E12) and
// prints their result tables. With no flags it runs everything;
// -run selects experiments by comma-separated id (e.g. -run E4,E9).
//
//	dsbench                 # all experiments
//	dsbench -run E6         # just the Example 1 relaxation study
//	dsbench -list           # list experiment ids and titles
//	dsbench -runtime        # goroutine-runtime waiter metrics (RunStats)
//	dsbench -json out.json  # machine-readable benchmark snapshot
//	dsbench -compare old.json new.json   # per-grid-point delta table
//
// -json measures the canonical workload x scheme grid on the base machine
// and writes a BenchSnapshot ("-" for stdout): every point's deterministic
// simulator measurements plus its best-of-repeats wall time and a host
// calibration figure. -compare diffs two snapshots and prints a
// per-grid-point delta table; with -gate N it exits non-zero when the
// normalized cycle throughput regressed by more than N percent, which is how
// scripts/bench_gate.sh turns the committed BENCH_*.json baseline into a CI
// regression gate.
//
// -runtime executes the Fig 2.1 Doacross on the real concurrent runtime —
// packed and split-field counter sets — with the metrics layer enabled and
// prints each run's RunStats: per-slot spin iterations, ownership
// hand-offs, and the wait-pause histogram. -rtn/-rtx/-rtprocs/-rtchunk
// tune the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/exper"
	"github.com/csrd-repro/datasync/internal/service"
)

// runtimeReport runs the Fig 2.1 loop body on the concurrent runtime with
// metrics enabled and prints the RunStats for both counter-set
// representations, verifying the dataflow against serial execution.
func runtimeReport(n int64, x, procs, chunk int) error {
	variants := []struct {
		name string
		mk   func(x int, o core.Options) core.CounterSet
	}{
		{"packed PCSet (padded, tiered backoff)", nil},
		{"split-field SplitPCSet (§6)", core.SplitCounters},
	}
	for _, v := range variants {
		a := make([]int64, n+5)
		out := make([]int64, n+1)
		r := core.Runner{X: x, Procs: procs, Chunk: chunk, Metrics: true,
			Watchdog: 30 * time.Second, NewSet: v.mk}
		res, err := r.Run(n, func(i int64, p *core.Proc) {
			a[i+3] = 10*i + 3 // S1, step 1
			p.Mark(1)
			p.Wait(2, 1)
			t2 := a[i+1] // S2, step 2
			p.Mark(2)
			p.Wait(1, 1)
			t3 := a[i+2] // S3, step 3
			p.Mark(3)
			p.Wait(1, 2)
			p.Wait(2, 3)
			a[i] = t2 + t3 // S4: last source
			p.Transfer()
			p.Wait(1, 4)
			out[i] = a[i-1] // S5
		})
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		for i := int64(1); i <= n; i++ {
			if want := 10*(i-1) + 3 + 10*(i-2) + 3; i > 2 && a[i] != want {
				return fmt.Errorf("%s: A[%d] = %d, want %d (dependence violated)", v.name, i, a[i], want)
			}
		}
		fmt.Printf("==== runtime: %s ====\n%s\n", v.name, res.Stats)
	}
	return nil
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	md := flag.Bool("md", false, "render tables as GitHub markdown")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark snapshot to this file (\"-\" for stdout) and exit")
	repeats := flag.Int("repeats", 3, "-json: run every grid point this many times and record the best wall time")
	compare := flag.Bool("compare", false, "compare two snapshot files (old.json new.json) and print the per-point delta table")
	gatePct := flag.Float64("gate", 0, "-compare: exit non-zero if normalized cycle throughput regressed by more than this percent (0 = report only)")
	rt := flag.Bool("runtime", false, "run the goroutine runtime with waiter metrics and print RunStats")
	rtn := flag.Int64("rtn", 100_000, "-runtime: iterations")
	rtx := flag.Int("rtx", 8, "-runtime: physical process counters (X)")
	rtprocs := flag.Int("rtprocs", 4, "-runtime: worker goroutines")
	rtchunk := flag.Int("rtchunk", 1, "-runtime: iterations claimed per dispatch")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two snapshot files, got %d args", flag.NArg()))
		}
		if err := compareSnapshots(flag.Arg(0), flag.Arg(1), *gatePct); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonOut != "" {
		if err := writeSnapshot(*jsonOut, *repeats); err != nil {
			fatal(err)
		}
		return
	}

	if *rt {
		if err := runtimeReport(*rtn, *rtx, *rtprocs, *rtchunk); err != nil {
			fatal(fmt.Errorf("runtime report failed: %w", err))
		}
		return
	}

	all := exper.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if *md {
			fmt.Printf("### %s: %s\n\n", e.ID, e.Title)
		} else {
			fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Title)
		}
		tables, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			if *md {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeSnapshot measures the canonical grid and writes the JSON snapshot to
// path ("-" for stdout).
func writeSnapshot(path string, repeats int) error {
	snap, err := exper.SnapshotTimed(repeats)
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "dsbench: wrote %d records to %s\n", len(snap.Records), path)
	}
	return nil
}

// compareSnapshots loads two snapshot files, prints the delta table and,
// when gatePct > 0, fails on a normalized-throughput regression beyond it.
func compareSnapshots(oldPath, newPath string, gatePct float64) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	res := exper.Compare(oldSnap, newSnap)
	fmt.Print(res.Report)
	if gatePct > 0 {
		if err := res.Gate(gatePct); err != nil {
			return err
		}
		fmt.Printf("bench gate: PASS (threshold %.1f%%)\n", gatePct)
	}
	return nil
}

func loadSnapshot(path string) (*exper.BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap exper.BenchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Records) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no records", path)
	}
	return &snap, nil
}

// fatal prints a one-line diagnostic through the renderer shared with
// dsserve/dssim and exits non-zero.
func fatal(err error) {
	service.Fatal(os.Stderr, "dsbench", err)
	os.Exit(1)
}
