#!/usr/bin/env bash
# bench_gate.sh — benchmark regression gate.
#
# Measures a fresh benchmark snapshot of the canonical workload x scheme grid
# and compares it against the committed baseline (the highest-numbered
# BENCH_*.json at the repo root). Fails when normalized cycle throughput —
# simulated cycles per wall second, scaled by the host calibration loop so
# baselines recorded on other machines stay comparable — regresses by more
# than GATE_PCT percent.
#
# Environment:
#   GATE_PCT          regression threshold in percent (default 10)
#   BENCH_GATE_FRESH  path to a pre-measured "fresh" snapshot; skips the
#                     measurement step (used by tests to doctor a regression,
#                     and handy for comparing two saved snapshots)
#   BENCH_GATE_OUT    where to write the delta table (default bench_delta.txt)
set -euo pipefail
cd "$(dirname "$0")/.."

GATE_PCT="${GATE_PCT:-10}"
OUT="${BENCH_GATE_OUT:-bench_delta.txt}"

baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)
if [ -z "$baseline" ]; then
    echo "bench_gate: no committed BENCH_*.json baseline found" >&2
    exit 1
fi
echo "bench_gate: baseline $baseline, threshold ${GATE_PCT}%"

fresh="${BENCH_GATE_FRESH:-}"
if [ -z "$fresh" ]; then
    fresh=$(mktemp "${TMPDIR:-/tmp}/bench_fresh.XXXXXX.json")
    trap 'rm -f "$fresh"' EXIT
    echo "bench_gate: measuring fresh snapshot..."
    go run ./cmd/dsbench -json "$fresh"
fi

go run ./cmd/dsbench -compare -gate "$GATE_PCT" "$baseline" "$fresh" | tee "$OUT"
