#!/usr/bin/env bash
# Chaos smoke: run every synchronization scheme under a fixed, seeded
# drop/delay fault plan and require one of exactly two outcomes — a correct
# result (serial-equivalence PASS, exit 0) or a diagnosed stall report
# (exit 3). Anything else — a hang (caught by timeout), a crash, an
# undiagnosed error — fails the gate. Then check the two determinism
# boundaries: a guaranteed-total drop must always be a diagnosed stall, and
# a step-first torn PC update must be tolerated (the §6 ordering argument)
# while the same tear owner-first must NOT pass silently.
set -euo pipefail

BIN="$(mktemp -d)/dssim"
go build -o "$BIN" ./cmd/dssim

PLAN='drop=bus:0.02,delay=bus:0.05:6,seed=42'

run_chaos() { # $1 = label, remaining = dssim args; allow exit 0 or diagnosed 3
  local label="$1"; shift
  local out rc=0
  out=$(timeout 120 "$BIN" "$@" 2>&1) || rc=$?
  case "$rc" in
    0)
      echo "$out" | grep -q 'serial-equivalence check: PASS' || {
        echo "chaos: $label exited 0 without the equivalence check:" >&2
        echo "$out" >&2; exit 1; }
      echo "chaos: $label survived the plan ($(echo "$out" | grep 'injected faults' || echo 'no faults landed'))"
      ;;
    3)
      echo "$out" | grep -q 'stalled under the fault plan' || {
        echo "chaos: $label exited 3 without a stall report:" >&2
        echo "$out" >&2; exit 1; }
      echo "chaos: $label stalled with a diagnosis (OK)"
      ;;
    124)
      echo "chaos: $label HUNG under the plan (timeout)" >&2; exit 1
      ;;
    *)
      echo "chaos: $label failed with unexpected exit $rc:" >&2
      echo "$out" >&2; exit 1
      ;;
  esac
}

# Every scheme, each on a workload it is defined for, same seeded plan.
for scheme in process process-basic statement ref instance; do
  run_chaos "$scheme/fig21" \
    -workload fig21 -n 120 -scheme "$scheme" -p 4 -x 4 -fault "$PLAN"
done
run_chaos "pipeline/nested" \
  -workload nested -n 16 -m 8 -scheme pipeline -p 4 -x 4 -g 2 -fault "$PLAN"
run_chaos "process/recurrence" \
  -workload recurrence -n 120 -d 2 -scheme process -p 4 -x 4 -fault "$PLAN"

# Self-healing grid: the same seeded halt plan under every scheme, recovery
# armed. A halt is the one fault the machine can heal, so the only allowed
# outcome is a completed run that reports its reclamation — exit 0, the
# recovered marker, and the serial-equivalence PASS. A stall or hang here is
# a recovery bug.
run_recovered() { # $1 = label, remaining = dssim args (recovery already armed)
  local label="$1"; shift
  local out rc=0
  out=$(timeout 120 "$BIN" "$@" 2>&1) || rc=$?
  [ "$rc" = "0" ] || {
    [ "$rc" = "124" ] && { echo "recovery: $label HUNG (timeout)" >&2; exit 1; }
    echo "recovery: $label exited $rc, want recovered success:" >&2
    echo "$out" >&2; exit 1; }
  echo "$out" | grep -q 'recovered:       true' || {
    echo "recovery: $label completed without reclaiming the halted processor:" >&2
    echo "$out" >&2; exit 1; }
  echo "$out" | grep -q 'serial-equivalence check: PASS' || {
    echo "recovery: $label recovered but failed the equivalence check:" >&2
    echo "$out" >&2; exit 1; }
  echo "recovery: $label healed the halt ($(echo "$out" | grep '^recovery:'))"
}

HALT='halt=proc1:50,seed=42'
for scheme in process process-basic statement ref instance; do
  run_recovered "$scheme/fig21" \
    -workload fig21 -n 120 -scheme "$scheme" -p 4 -x 4 -fault "$HALT" -recover 60
done
run_recovered "pipeline/nested" \
  -workload nested -n 16 -m 8 -scheme pipeline -p 4 -x 4 -g 2 -fault "$HALT" -recover 60
run_recovered "process/recurrence" \
  -workload recurrence -n 120 -d 2 -scheme process -p 4 -x 4 -fault "$HALT" -recover 60
run_recovered "process/recurrence-chunked" \
  -workload recurrence -n 120 -d 2 -scheme process -p 4 -x 4 -chunk 4 -fault "$HALT" -recover 60

# Recovery-refusal boundary: reclamation only heals halts. Under a total
# broadcast drop the armed recovery must refuse with a diagnosis naming why
# (nothing reclaimable), and the run still exits 3 with the stall report.
rc=0
out=$(timeout 120 "$BIN" -workload recurrence -n 24 -d 2 -scheme process \
  -p 4 -x 4 -fault 'drop=bus:1,seed=1' -recover 60 2>&1) || rc=$?
[ "$rc" = "3" ] || { echo "armed recovery under total drop gave exit $rc, want 3:" >&2; echo "$out" >&2; exit 1; }
echo "$out" | grep -q 'recovery refused' || {
  echo "refused recovery lost its diagnosis:" >&2; echo "$out" >&2; exit 1; }
echo "chaos: unhealable stall refused with a diagnosis"

# Boundary 1: a total broadcast drop can never complete — it must be a
# diagnosed stall (exit 3 with the report), deterministically.
rc=0
out=$(timeout 120 "$BIN" -workload recurrence -n 24 -d 2 -scheme process \
  -p 4 -x 4 -fault 'drop=bus:1,seed=1' 2>&1) || rc=$?
[ "$rc" = "3" ] || { echo "total drop gave exit $rc, want 3:" >&2; echo "$out" >&2; exit 1; }
echo "$out" | grep -q 'stalled under the fault plan' || {
  echo "total drop stalled without a report:" >&2; echo "$out" >&2; exit 1; }
echo "chaos: total-drop boundary diagnosed"

# Boundary 2 (the §6 ordering argument): tearing every <owner,step> update
# step-first is harmless — the stale owner releases nobody, the write
# completes, the run passes. Owner-first exposes <newOwner, oldStep>, which
# releases a consumer before the new owner has marked the step; chunked
# dispatch keeps that producer lagging, so the premature read corrupts data
# and the serial-equivalence oracle must catch it.
out=$(timeout 120 "$BIN" -workload fig21 -n 120 -scheme process -p 4 -x 2 -chunk 2 \
  -fault 'torn=pc:1:step-first:8,seed=9' 2>&1) || {
  echo "step-first torn updates must be tolerated:" >&2; echo "$out" >&2; exit 1; }
echo "$out" | grep -q 'serial-equivalence check: PASS'
echo "chaos: step-first tear tolerated"

rc=0
out=$(timeout 120 "$BIN" -workload fig21 -n 120 -scheme process -p 4 -x 2 -chunk 2 \
  -fault 'torn=pc:1:owner-first:8,seed=9' 2>&1) || rc=$?
if [ "$rc" = "0" ]; then
  echo "owner-first torn updates passed silently — the §6 hazard went undetected:" >&2
  echo "$out" >&2; exit 1
fi
echo "$out" | grep -q 'serial equivalence' || {
  echo "owner-first tear failed for the wrong reason (exit $rc):" >&2
  echo "$out" >&2; exit 1; }
echo "chaos: owner-first tear corrupted data and was caught (exit $rc)"

echo "chaos smoke: OK"
