#!/usr/bin/env bash
# Smoke-test the dsserve cluster end to end: boot three dsserve processes as
# one logical service, require every node to agree on the ring, prove a
# cross-node cache hit (computed via one node, served cached via another,
# with the forward visible in /metrics), shed a hot tenant with 429s while
# the breaker stays closed, SIGTERM one node and require both a clean drain
# (exit 0) and that the surviving cluster keeps serving.
set -euo pipefail

PORT_BASE="${DSCLUSTER_PORT_BASE:-18081}"
PA=$PORT_BASE PB=$((PORT_BASE + 1)) PC=$((PORT_BASE + 2))
BASE_A="http://127.0.0.1:$PA" BASE_B="http://127.0.0.1:$PB" BASE_C="http://127.0.0.1:$PC"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/dsserve"
TOKEN="smoke-peer-token"

go build -o "$BIN" ./cmd/dsserve

start_node() { # $1=id $2=port $3=peers-spec $4=log
  "$BIN" -addr "127.0.0.1:$2" -node-id "$1" -advertise "http://127.0.0.1:$2" \
    -peers "$3" -peer-token "$TOKEN" -workers 2 \
    -tenant-rate 5 -tenant-burst 5 2>"$4" &
}

LOG_A="$(mktemp)" LOG_B="$(mktemp)" LOG_C="$(mktemp)"
start_node a "$PA" "b=$BASE_B,c=$BASE_C" "$LOG_A"; PID_A=$!
start_node b "$PB" "a=$BASE_A,c=$BASE_C" "$LOG_B"; PID_B=$!
start_node c "$PC" "a=$BASE_A,b=$BASE_B" "$LOG_C"; PID_C=$!
cleanup() {
  kill "$PID_A" "$PID_B" "$PID_C" 2>/dev/null || true
  echo "--- node a log ---" >&2; cat "$LOG_A" >&2 || true
  echo "--- node b log ---" >&2; cat "$LOG_B" >&2 || true
  echo "--- node c log ---" >&2; cat "$LOG_C" >&2 || true
}
trap cleanup EXIT

# Wait for liveness on all three nodes.
for base in "$BASE_A" "$BASE_B" "$BASE_C"; do
  for i in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "$base/healthz" | grep -q '"status": "ok"' || {
    echo "node at $base not healthy" >&2; exit 1; }
done

# Every node must report the same ring version and a 3-member cluster view.
ring_a=$(curl -fsS "$BASE_A/healthz" | grep '"ringVersion"')
for base in "$BASE_B" "$BASE_C"; do
  hz=$(curl -fsS "$base/healthz")
  echo "$hz" | grep -qF "$ring_a" || {
    echo "ring version mismatch: $base reports $hz, node a reports $ring_a" >&2; exit 1; }
  echo "$hz" | grep -q '"ringMembers": 3' || {
    echo "node at $base does not see 3 members: $hz" >&2; exit 1; }
done
echo "cluster smoke: 3 nodes agree on the ring"

# Cross-node cache hit: compute through node a, repeat through node b. The
# key has one owner, so the repeat must be served from the cluster cache
# regardless of which node the client hit.
body='{"workload":{"name":"fig21","n":60},"scheme":{"name":"process","x":4},"config":{"p":4}}'
curl -fsS -X POST "$BASE_A/run" -d "$body" | grep -q '"cached": false' || {
  echo "first cluster /run was already cached?" >&2; exit 1; }
curl -fsS -X POST "$BASE_B/run" -d "$body" | grep -q '"cached": true' || {
  echo "repeat through node b missed the cluster cache" >&2; exit 1; }

# The forward that made that hit possible must be visible in /metrics:
# unless the owner was hit directly both times, somebody forwarded.
forwards=0
for base in "$BASE_A" "$BASE_B" "$BASE_C"; do
  f=$(curl -fsS "$base/metrics" | awk '/^dsserve_peer_forwards_total /{print $2}')
  forwards=$((forwards + f))
done
[ "$forwards" -ge 1 ] || {
  echo "no peer forwards recorded across the cluster (got $forwards)" >&2; exit 1; }
echo "cluster smoke: cross-node cache hit ($forwards forwards)"

# A sweep through one node fans out cluster-wide and still returns the full
# merged answer with its Pareto front.
sweep='{"workload":{"name":"fig21","n":48},"scheme":{"name":"process"},"grid":{"x":[2,4],"p":[2,4],"chunk":[1,2]}}'
out=$(curl -fsS -X POST "$BASE_A/sweep" -d "$sweep")
echo "$out" | grep -q '"pareto"' || { echo "cluster sweep missing pareto: $out" >&2; exit 1; }
echo "$out" | grep -q '"failed": 0' || { echo "cluster sweep had failures: $out" >&2; exit 1; }
echo "cluster smoke: cluster-wide sweep merged"

# Hot tenant: burn the token bucket, expect 429 + Retry-After, the shed
# visible in /metrics, and the breaker still closed (tenant misbehaviour is
# not service unhealth).
shed=0
for i in $(seq 1 12); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE_A/run" \
    -H 'X-DSServe-Tenant: hot' -d "$body")
  [ "$code" = "429" ] && shed=$((shed + 1))
done
[ "$shed" -ge 1 ] || { echo "hot tenant was never shed across 12 rapid requests" >&2; exit 1; }
curl -s -X POST "$BASE_A/run" -H 'X-DSServe-Tenant: hot' -d "$body" \
  -o /dev/null -D - | grep -qi '^Retry-After:' || {
  echo "shed response missing Retry-After" >&2; exit 1; }
m=$(curl -fsS "$BASE_A/metrics")
echo "$m" | grep -q 'dsserve_tenant_shed_total{tenant="hot"}' || {
  echo "metrics missing hot tenant shed counter:" >&2; echo "$m" >&2; exit 1; }
echo "$m" | grep -q 'dsserve_breaker_state 0' || {
  echo "breaker left closed state during tenant shedding" >&2; exit 1; }
curl -fsS -X POST "$BASE_B/run" -H 'X-DSServe-Tenant: cool' -d "$body" >/dev/null || {
  echo "cool tenant rejected during hot tenant shedding" >&2; exit 1; }
echo "cluster smoke: hot tenant shed $shed/12 with breaker closed"

# Kill node c: it must drain cleanly (exit 0) while the survivors keep
# serving — requests previously owned by c are healed onto a and b.
kill -TERM "$PID_C"
rc=0; wait "$PID_C" || rc=$?
[ "$rc" = "0" ] || { echo "node c exited $rc after SIGTERM, want 0" >&2; exit 1; }
for i in $(seq 1 10); do
  # Distinct tenants: this loop tests survival, not the admission budget.
  newbody="{\"workload\":{\"name\":\"fig21\",\"n\":$((60 + i))},\"scheme\":{\"name\":\"process\",\"x\":4},\"config\":{\"p\":4}}"
  curl -fsS -X POST "$BASE_A/run" -H "X-DSServe-Tenant: survivor-$i" -d "$newbody" \
    | grep -q '"cycles"' || {
    echo "survivor cluster failed to serve run $i after node c left" >&2; exit 1; }
done
curl -fsS "$BASE_A/healthz" | grep -q '"status": "ok"' || {
  echo "node a unhealthy after node c left" >&2; exit 1; }
echo "cluster smoke: node c drained (exit 0), survivors kept serving"

# Clean shutdown of the rest.
kill -TERM "$PID_A" "$PID_B"
rc=0; wait "$PID_A" || rc=$?
[ "$rc" = "0" ] || { echo "node a exited $rc after SIGTERM, want 0" >&2; exit 1; }
rc=0; wait "$PID_B" || rc=$?
[ "$rc" = "0" ] || { echo "node b exited $rc after SIGTERM, want 0" >&2; exit 1; }
trap - EXIT
echo "cluster smoke: OK"
