#!/usr/bin/env bash
# Smoke-test the dsserve cluster end to end: boot three dsserve processes as
# one logical service, require every node to agree on the ring, prove a
# cross-node cache hit (computed via one node, served cached via another,
# with the forward visible in /metrics), shed a hot tenant with 429s while
# the breaker stays closed, then roll the cluster: SIGTERM node b (clean
# drain with the cache handoff visible in the survivors' /metrics), hard-kill
# node c (the prober demotes it, healthz flips to degraded, and a replicated
# key is still served from cache), restart node c and require readmission
# within the probe window with healthz back to ok.
set -euo pipefail

PORT_BASE="${DSCLUSTER_PORT_BASE:-18081}"
PA=$PORT_BASE PB=$((PORT_BASE + 1)) PC=$((PORT_BASE + 2))
BASE_A="http://127.0.0.1:$PA" BASE_B="http://127.0.0.1:$PB" BASE_C="http://127.0.0.1:$PC"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/dsserve"
TOKEN="smoke-peer-token"

go build -o "$BIN" ./cmd/dsserve

start_node() { # $1=id $2=port $3=peers-spec $4=log
  # -replicas 2 in a 3-node cluster means every fill lands on every node, so
  # the rolling-restart leg can serve from replicas with one node standing.
  "$BIN" -addr "127.0.0.1:$2" -node-id "$1" -advertise "http://127.0.0.1:$2" \
    -peers "$3" -peer-token "$TOKEN" -workers 2 \
    -tenant-rate 5 -tenant-burst 5 \
    -probe-interval 250ms -suspect-after 2 -rejoin-after 2 -replicas 2 2>"$4" &
}

LOG_A="$(mktemp)" LOG_B="$(mktemp)" LOG_C="$(mktemp)" LOG_C2="$(mktemp)"
start_node a "$PA" "b=$BASE_B,c=$BASE_C" "$LOG_A"; PID_A=$!
start_node b "$PB" "a=$BASE_A,c=$BASE_C" "$LOG_B"; PID_B=$!
start_node c "$PC" "a=$BASE_A,b=$BASE_B" "$LOG_C"; PID_C=$!
cleanup() {
  kill "$PID_A" "$PID_B" "$PID_C" 2>/dev/null || true
  echo "--- node a log ---" >&2; cat "$LOG_A" >&2 || true
  echo "--- node b log ---" >&2; cat "$LOG_B" >&2 || true
  echo "--- node c log ---" >&2; cat "$LOG_C" >&2 || true
  echo "--- node c (restarted) log ---" >&2; cat "$LOG_C2" >&2 || true
}
trap cleanup EXIT

# Wait for liveness on all three nodes.
for base in "$BASE_A" "$BASE_B" "$BASE_C"; do
  for i in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "$base/healthz" | grep -q '"status": "ok"' || {
    echo "node at $base not healthy" >&2; exit 1; }
done

# Every node must report the same ring version and a 3-member cluster view.
ring_a=$(curl -fsS "$BASE_A/healthz" | grep '"ringVersion"')
for base in "$BASE_B" "$BASE_C"; do
  hz=$(curl -fsS "$base/healthz")
  echo "$hz" | grep -qF "$ring_a" || {
    echo "ring version mismatch: $base reports $hz, node a reports $ring_a" >&2; exit 1; }
  echo "$hz" | grep -q '"ringMembers": 3' || {
    echo "node at $base does not see 3 members: $hz" >&2; exit 1; }
done
echo "cluster smoke: 3 nodes agree on the ring"

# Cross-node cache hit: compute through node a, repeat through node b. The
# key has one owner, so the repeat must be served from the cluster cache
# regardless of which node the client hit.
body='{"workload":{"name":"fig21","n":60},"scheme":{"name":"process","x":4},"config":{"p":4}}'
curl -fsS -X POST "$BASE_A/run" -d "$body" | grep -q '"cached": false' || {
  echo "first cluster /run was already cached?" >&2; exit 1; }
curl -fsS -X POST "$BASE_B/run" -d "$body" | grep -q '"cached": true' || {
  echo "repeat through node b missed the cluster cache" >&2; exit 1; }

# The forward that made that hit possible must be visible in /metrics:
# unless the owner was hit directly both times, somebody forwarded.
forwards=0
for base in "$BASE_A" "$BASE_B" "$BASE_C"; do
  f=$(curl -fsS "$base/metrics" | awk '/^dsserve_peer_forwards_total /{print $2}')
  forwards=$((forwards + f))
done
[ "$forwards" -ge 1 ] || {
  echo "no peer forwards recorded across the cluster (got $forwards)" >&2; exit 1; }
echo "cluster smoke: cross-node cache hit ($forwards forwards)"

# A sweep through one node fans out cluster-wide and still returns the full
# merged answer with its Pareto front.
sweep='{"workload":{"name":"fig21","n":48},"scheme":{"name":"process"},"grid":{"x":[2,4],"p":[2,4],"chunk":[1,2]}}'
out=$(curl -fsS -X POST "$BASE_A/sweep" -d "$sweep")
echo "$out" | grep -q '"pareto"' || { echo "cluster sweep missing pareto: $out" >&2; exit 1; }
echo "$out" | grep -q '"failed": 0' || { echo "cluster sweep had failures: $out" >&2; exit 1; }
echo "cluster smoke: cluster-wide sweep merged"

# Hot tenant: burn the token bucket, expect 429 + Retry-After, the shed
# visible in /metrics, and the breaker still closed (tenant misbehaviour is
# not service unhealth).
shed=0
for i in $(seq 1 12); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE_A/run" \
    -H 'X-DSServe-Tenant: hot' -d "$body")
  [ "$code" = "429" ] && shed=$((shed + 1))
done
[ "$shed" -ge 1 ] || { echo "hot tenant was never shed across 12 rapid requests" >&2; exit 1; }
curl -s -X POST "$BASE_A/run" -H 'X-DSServe-Tenant: hot' -d "$body" \
  -o /dev/null -D - | grep -qi '^Retry-After:' || {
  echo "shed response missing Retry-After" >&2; exit 1; }
m=$(curl -fsS "$BASE_A/metrics")
echo "$m" | grep -q 'dsserve_tenant_shed_total{tenant="hot"}' || {
  echo "metrics missing hot tenant shed counter:" >&2; echo "$m" >&2; exit 1; }
echo "$m" | grep -q 'dsserve_breaker_state 0' || {
  echo "breaker left closed state during tenant shedding" >&2; exit 1; }
curl -fsS -X POST "$BASE_B/run" -H 'X-DSServe-Tenant: cool' -d "$body" >/dev/null || {
  echo "cool tenant rejected during hot tenant shedding" >&2; exit 1; }
echo "cluster smoke: hot tenant shed $shed/12 with breaker closed"

# Rolling restart, step 1 — SIGTERM node b: it must drain cleanly (exit 0)
# AND hand its cache entries off to their next owners before leaving, with
# the handoff visible in the survivors' /metrics. The survivors keep
# serving: requests previously owned by b are healed onto a and c.
kill -TERM "$PID_B"
rc=0; wait "$PID_B" || rc=$?
[ "$rc" = "0" ] || { echo "node b exited $rc after SIGTERM, want 0" >&2; exit 1; }
handoff=0
for base in "$BASE_A" "$BASE_C"; do
  h=$(curl -fsS "$base/metrics" | awk '/^dsserve_handoff_entries_received_total /{print $2}')
  handoff=$((handoff + h))
done
[ "$handoff" -ge 1 ] || {
  echo "survivors received no handoff entries from node b's drain (got $handoff)" >&2; exit 1; }
for i in $(seq 1 5); do
  # Distinct tenants: this loop tests survival, not the admission budget.
  newbody="{\"workload\":{\"name\":\"fig21\",\"n\":$((60 + i))},\"scheme\":{\"name\":\"process\",\"x\":4},\"config\":{\"p\":4}}"
  curl -fsS -X POST "$BASE_A/run" -H "X-DSServe-Tenant: survivor-$i" -d "$newbody" \
    | grep -q '"cycles"' || {
    echo "survivor cluster failed to serve run $i after node b left" >&2; exit 1; }
done
echo "cluster smoke: node b drained with handoff ($handoff entries received)"

# Step 2 — hard-kill node c (no drain, no departure announcement): node a's
# failure prober must demote it within the probe window, healthz must flip
# to degraded (a majority of configured peers demoted) with a 503, and a
# key computed before the kill must still be served from a's replica cache
# without recomputation.
kill -9 "$PID_C" 2>/dev/null || true
wait "$PID_C" 2>/dev/null || true
for i in $(seq 1 50); do
  if curl -s "$BASE_A/healthz" | grep -A1 '"id": "c"' | grep -q '"state": "demoted"'; then break; fi
  sleep 0.2
done
curl -s "$BASE_A/healthz" | grep -A1 '"id": "c"' | grep -q '"state": "demoted"' || {
  echo "node a never demoted the hard-killed node c" >&2; exit 1; }
hz_code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE_A/healthz")
[ "$hz_code" = "503" ] || {
  echo "healthz with a majority of peers demoted returned $hz_code, want 503" >&2; exit 1; }
curl -s "$BASE_A/healthz" | grep -q '"status": "degraded"' || {
  echo "healthz body not marked degraded with both peers demoted" >&2; exit 1; }
curl -fsS "$BASE_A/metrics" | grep -q '^dsserve_degraded 1' || {
  echo "metrics missing dsserve_degraded 1 on the last node standing" >&2; exit 1; }
curl -fsS -X POST "$BASE_A/run" -H 'X-DSServe-Tenant: degraded-check' -d "$body" \
  | grep -q '"cached": true' || {
  echo "degraded node a failed to serve a replicated key from cache" >&2; exit 1; }
echo "cluster smoke: degraded node a (503 healthz) still serves from replicas"

# Step 3 — restart node c on its original address: the prober must readmit
# it within the probe window, healthz must return to ok (only b remains
# demoted), and the rejoined node serves traffic again.
start_node c "$PC" "a=$BASE_A,b=$BASE_B" "$LOG_C2"; PID_C=$!
for i in $(seq 1 50); do
  if curl -s "$BASE_A/healthz" | grep -A1 '"id": "c"' | grep -q '"state": "alive"'; then break; fi
  sleep 0.2
done
curl -s "$BASE_A/healthz" | grep -A1 '"id": "c"' | grep -q '"state": "alive"' || {
  echo "restarted node c was not readmitted within the probe window" >&2; exit 1; }
curl -fsS "$BASE_A/healthz" | grep -q '"status": "ok"' || {
  echo "node a healthz not ok after node c rejoined" >&2; exit 1; }
rejoins=$(curl -fsS "$BASE_A/metrics" | awk '/^dsserve_rejoins_total /{print $2}')
[ "$rejoins" -ge 1 ] || { echo "node a recorded no rejoins after c's restart" >&2; exit 1; }
curl -fsS -X POST "$BASE_C/run" -H 'X-DSServe-Tenant: rejoin-check' -d "$body" \
  | grep -q '"cycles"' || {
  echo "rejoined node c failed to serve" >&2; exit 1; }
echo "cluster smoke: node c rejoined within the probe window ($rejoins rejoins on a)"

# Clean shutdown of the rest.
kill -TERM "$PID_A" "$PID_C"
rc=0; wait "$PID_A" || rc=$?
[ "$rc" = "0" ] || { echo "node a exited $rc after SIGTERM, want 0" >&2; exit 1; }
rc=0; wait "$PID_C" || rc=$?
[ "$rc" = "0" ] || { echo "node c exited $rc after SIGTERM, want 0" >&2; exit 1; }
trap - EXIT
echo "cluster smoke: OK"
