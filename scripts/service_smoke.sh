#!/usr/bin/env bash
# Smoke-test the dsserve HTTP service end to end: start it, answer one /run
# per scheme (every scheme on a workload it is defined for), require the
# repeated request to come from the content-addressed cache, check /verify
# and /sweep, drive the circuit breaker through a full open/shed/recover
# cycle with dsprobe, then SIGTERM it and require a clean drain (exit 0).
set -euo pipefail

ADDR="${DSSERVE_ADDR:-127.0.0.1:8077}"
BASE="http://$ADDR"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/dsserve"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/dsserve
go build -o "$BINDIR/dsprobe" ./cmd/dsprobe

"$BIN" -addr "$ADDR" -workers 4 -queue 32 -breaker-threshold 3 -breaker-cooldown 2s 2>"$LOG" &
PID=$!
cleanup() {
  kill "$PID" 2>/dev/null || true
  cat "$LOG" >&2 || true
}
trap cleanup EXIT

# Wait for liveness.
for i in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "dsserve died at startup" >&2; exit 1; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status": "ok"'

run_req() { # $1 = body, $2 = expected-substring
  local out
  out=$(curl -fsS -X POST "$BASE/run" -d "$1")
  echo "$out" | grep -q "$2" || { echo "unexpected /run response for $1: $out" >&2; exit 1; }
}

# One /run per scheme, on a workload each scheme is defined for. First hit
# computes, the identical repeat must be served from the cache.
for scheme in process process-basic statement ref instance; do
  body="{\"workload\":{\"name\":\"fig21\",\"n\":60},\"scheme\":{\"name\":\"$scheme\",\"x\":4},\"config\":{\"p\":4}}"
  run_req "$body" '"cached": false'
  run_req "$body" '"cached": true'
done
# Pipelined-outer only exists for depth-2 loop nests.
body='{"workload":{"name":"nested","n":12,"m":8},"scheme":{"name":"pipeline","x":4,"g":2},"config":{"p":4}}'
run_req "$body" '"cached": false'
run_req "$body" '"cached": true'

# Cache hits must be visible in /metrics.
metrics=$(curl -fsS "$BASE/metrics")
echo "$metrics" | grep -q 'dsserve_cache_hits_total 6' || {
  echo "expected 6 cache hits in /metrics:" >&2; echo "$metrics" >&2; exit 1; }

# /compile: a Go loop nest lowered through the static frontend; the
# identical repeat must come from the compile section of the cache, raising
# the hit counter to 7.
compile_body='{"filename":"kernel.go","source":"package p\nfunc kernel(a, b []int) {\n\tfor i := 1; i < 40; i++ {\n\t\ta[i] = a[i-1] + i\n\t\tb[i] = a[i] * 2\n\t}\n}\n","config":{"p":4}}'
out=$(curl -fsS -X POST "$BASE/compile" -d "$compile_body")
echo "$out" | grep -q '"cached": false' || { echo "unexpected /compile response: $out" >&2; exit 1; }
echo "$out" | grep -q '"workload": "kernel"' || { echo "/compile missing lowered loop: $out" >&2; exit 1; }
out=$(curl -fsS -X POST "$BASE/compile" -d "$compile_body")
echo "$out" | grep -q '"cached": true' || { echo "/compile repeat not cached: $out" >&2; exit 1; }
curl -fsS "$BASE/metrics" | grep -q 'dsserve_cache_hits_total 7' || {
  echo "expected 7 cache hits after /compile repeat" >&2; exit 1; }

# A non-affine loop is a 400 whose error field is a positioned diagnostic
# with a stable reason code.
bad_body='{"filename":"bad.go","source":"package p\nfunc f(a []int) {\n\tfor i := 1; i < 9; i++ {\n\t\ta[i*i] = i\n\t}\n}\n"}'
resp=$(curl -s -w '\n%{http_code}' -X POST "$BASE/compile" -d "$bad_body")
code=$(echo "$resp" | tail -n1)
body=$(echo "$resp" | head -n -1)
[ "$code" = "400" ] || { echo "non-affine compile gave $code, want 400: $body" >&2; exit 1; }
echo "$body" | grep -q 'bad.go:4:' || { echo "diagnostic lacks position: $body" >&2; exit 1; }
echo "$body" | grep -q 'non-affine-subscript' || { echo "diagnostic lacks reason code: $body" >&2; exit 1; }

# /verify: static + dynamic verdict for a clean pair.
curl -fsS -X POST "$BASE/verify" \
  -d '{"workload":{"name":"recurrence","n":30},"scheme":{"name":"ref"},"dynamic":true}' \
  | grep -q '"ok": true'

# /sweep: a small grid returns every point and a Pareto front.
curl -fsS -X POST "$BASE/sweep" \
  -d '{"workload":{"name":"fig21","n":30},"scheme":{"name":"process"},"grid":{"x":[2,4],"p":[2,4]}}' \
  | grep -q '"pareto"'

# Resilience: dsprobe opens the breaker with deterministic stall-fault runs,
# checks the 503 + Retry-After shed (and /metrics), waits out the cooldown,
# and recovers through the retrying client.
"$BINDIR/dsprobe" -addr "$BASE" -stalls 3 -cooldown 2s

# Self-healing: the halt probe proves a halted-processor run is diagnosed
# without recovery, heals with recovery armed (recovered: true), and leaves
# the breaker closed with the recovery counters in /metrics. It runs after
# the breaker probe so the healed stall lands on a closed, settled circuit.
"$BINDIR/dsprobe" -addr "$BASE" -halt

# Snapshot the recovery metrics for the CI artifact.
RECOVERY_METRICS_OUT="${RECOVERY_METRICS_OUT:-$BINDIR/recovery-metrics.txt}"
curl -fsS "$BASE/metrics" | grep -E 'dsserve_(recovered_runs|recovery_cost_cycles|watchdog_trips|breaker)' \
  > "$RECOVERY_METRICS_OUT"
echo "service smoke: recovery metrics snapshot at $RECOVERY_METRICS_OUT"

# A bad request is a 400 with a one-line diagnostic, not a crash.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/run" \
  -d '{"workload":{"name":"no-such"},"scheme":{"name":"process"}}')
[ "$code" = "400" ] || { echo "bad workload gave $code, want 400" >&2; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
[ "$rc" = "0" ] || { echo "dsserve exited $rc after SIGTERM, want 0" >&2; exit 1; }
trap - EXIT
echo "service smoke: OK"
