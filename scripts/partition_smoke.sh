#!/usr/bin/env bash
# Smoke-test partition tolerance end to end with real processes: boot three
# dsserve nodes whose peer links share a seeded fault plan with one named
# partition episode that cuts node c from {a, b} on a timer. Before the
# window opens the cluster works normally; while it holds, the minority
# node refuses to coordinate cluster sweeps (503) and the majority's sweep
# still matches a standalone single-node oracle, with the injected
# partition cuts visible in /metrics. Keys filled on the majority during
# the window are under-replicated toward c; after the heal the probers
# readmit everyone and anti-entropy pushes the starved replicas until the
# under-replication gauge returns to zero, after which the healed minority
# node coordinates an oracle-identical sweep. Every wait below is a bounded
# loop — the script fails rather than hangs.
set -euo pipefail

PORT_BASE="${DSPARTITION_PORT_BASE:-18091}"
PA=$PORT_BASE PB=$((PORT_BASE + 1)) PC=$((PORT_BASE + 2)) PO=$((PORT_BASE + 3))
BASE_A="http://127.0.0.1:$PA" BASE_B="http://127.0.0.1:$PB" BASE_C="http://127.0.0.1:$PC"
BASE_O="http://127.0.0.1:$PO"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/dsserve"
TOKEN="smoke-peer-token"
# The episode is timed from each node's boot: the window must open well
# after the startup checks and close well after the partition-phase checks.
FAULTS="seed=42,partition=split:c:6000:25000"

go build -o "$BIN" ./cmd/dsserve

start_node() { # $1=id $2=port $3=peers-spec $4=log
  # -replicas 2 puts every fill on every node, so under-replication after
  # the partition is exactly the fills node c missed; -anti-entropy 1s
  # repairs it promptly once the ring heals.
  "$BIN" -addr "127.0.0.1:$2" -node-id "$1" -advertise "http://127.0.0.1:$2" \
    -peers "$3" -peer-token "$TOKEN" -workers 2 \
    -probe-interval 250ms -suspect-after 2 -rejoin-after 2 \
    -replicas 2 -anti-entropy 1s -link-fault "$FAULTS" 2>"$4" &
}

LOG_A="$(mktemp)" LOG_B="$(mktemp)" LOG_C="$(mktemp)" LOG_O="$(mktemp)"
start_node a "$PA" "b=$BASE_B,c=$BASE_C" "$LOG_A"; PID_A=$!
start_node b "$PB" "a=$BASE_A,c=$BASE_C" "$LOG_B"; PID_B=$!
start_node c "$PC" "a=$BASE_A,b=$BASE_B" "$LOG_C"; PID_C=$!
# A standalone single-node oracle, outside the cluster and the fault plan.
"$BIN" -addr "127.0.0.1:$PO" -node-id oracle -workers 2 2>"$LOG_O" &
PID_O=$!
cleanup() {
  kill "$PID_A" "$PID_B" "$PID_C" "$PID_O" 2>/dev/null || true
  echo "--- node a log ---" >&2; cat "$LOG_A" >&2 || true
  echo "--- node b log ---" >&2; cat "$LOG_B" >&2 || true
  echo "--- node c log ---" >&2; cat "$LOG_C" >&2 || true
  echo "--- oracle log ---" >&2; cat "$LOG_O" >&2 || true
}
trap cleanup EXIT

peer_state() { # $1=base $2=peer-id -> prints the state, if any
  curl -s "$1/healthz" | grep -A1 "\"id\": \"$2\"" | grep -o '"state": "[a-z]*"' || true
}
metric() { # $1=base $2=exact exposition line prefix (may contain labels)
  curl -s "$1/metrics" | awk -v name="$2" 'index($0, name " ") == 1 {print $2}'
}
# The sweep bodies are compared byte-for-byte modulo cache provenance:
# whether a point was served hot and how many grid cells hit the cache
# legitimately differ between the cluster and the cold oracle.
normalize_sweep() {
  sed -E 's/"cacheHits": [0-9]+/"cacheHits": 0/; s/"cached": true/"cached": false/'
}

# Startup: all four nodes healthy, the cluster agreed on one ring.
for base in "$BASE_A" "$BASE_B" "$BASE_C" "$BASE_O"; do
  for i in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "$base/healthz" | grep -q '"status": "ok"' || {
    echo "node at $base not healthy" >&2; exit 1; }
done
ring_a=$(curl -fsS "$BASE_A/healthz" | grep '"ringVersion"')
for base in "$BASE_B" "$BASE_C"; do
  curl -fsS "$base/healthz" | grep -qF "$ring_a" || {
    echo "pre-partition ring version mismatch at $base" >&2; exit 1; }
done

# Pre-partition traffic flows cross-node: fill via a, hit cached via c.
body='{"workload":{"name":"fig21","n":60},"scheme":{"name":"process","x":4},"config":{"p":4}}'
curl -fsS -X POST "$BASE_A/run" -d "$body" | grep -q '"cached": false' || {
  echo "first pre-partition /run was already cached?" >&2; exit 1; }
curl -fsS -X POST "$BASE_C/run" -d "$body" | grep -q '"cached": true' || {
  echo "pre-partition repeat through c missed the cluster cache" >&2; exit 1; }
echo "partition smoke: pre-partition cluster serves cross-node"

# The oracle answer for the sweep both phases are checked against.
sweep='{"workload":{"name":"fig21","n":48},"scheme":{"name":"process"},"grid":{"x":[2,4],"p":[2,4],"chunk":[1,2]}}'
oracle=$(curl -fsS -X POST "$BASE_O/sweep" -d "$sweep" | normalize_sweep)
echo "$oracle" | grep -q '"failed": 0' || { echo "oracle sweep failed: $oracle" >&2; exit 1; }

# Wait for the episode window: both sides must see the cut.
for i in $(seq 1 80); do
  if peer_state "$BASE_A" c | grep -q demoted && peer_state "$BASE_C" a | grep -q demoted; then
    break
  fi
  sleep 0.25
done
peer_state "$BASE_A" c | grep -q demoted || {
  echo "node a never demoted c inside the partition window" >&2; exit 1; }
peer_state "$BASE_C" a | grep -q demoted || {
  echo "node c never demoted a inside the partition window" >&2; exit 1; }
echo "partition smoke: partition open, both sides demoted across the cut"

# The minority node must refuse to coordinate a cluster sweep.
minority=$(mktemp)
code=$(curl -s -o "$minority" -w '%{http_code}' -X POST "$BASE_C/sweep" -d "$sweep")
[ "$code" = "503" ] || {
  echo "minority /sweep answered $code, want 503: $(cat "$minority")" >&2; exit 1; }
grep -q 'refuses to coordinate' "$minority" || {
  echo "minority 503 body is not the coordination refusal: $(cat "$minority")" >&2; exit 1; }
echo "partition smoke: minority node refused sweep coordination with 503"

# The majority's sweep must equal the oracle modulo cache provenance.
majority=$(curl -fsS -X POST "$BASE_A/sweep" -d "$sweep" | normalize_sweep)
[ "$majority" = "$oracle" ] || {
  echo "majority sweep diverges from the oracle during the partition" >&2
  echo "--- oracle ---" >&2; echo "$oracle" >&2
  echo "--- majority ---" >&2; echo "$majority" >&2; exit 1; }
echo "partition smoke: majority sweep matches the single-node oracle"

# Fill keys on the majority while c is cut off: their replica pushes cannot
# reach c, so they are exactly what anti-entropy must repair after the heal.
for i in $(seq 1 8); do
  fill="{\"workload\":{\"name\":\"fig21\",\"n\":$((70 + 2 * i))},\"scheme\":{\"name\":\"process\",\"x\":4},\"config\":{\"p\":4}}"
  curl -fsS -X POST "$BASE_A/run" -d "$fill" >/dev/null || {
    echo "mid-partition fill $i failed" >&2; exit 1; }
done

# The injected cuts must be visible in /metrics on the nodes doing the
# cutting (every side of the partition sends into the wall).
cuts=0
for base in "$BASE_A" "$BASE_B" "$BASE_C"; do
  v=$(metric "$base" 'dsserve_link_faults_injected_total{kind="partition"}')
  cuts=$((cuts + ${v:-0}))
done
[ "$cuts" -ge 1 ] || {
  echo "no partition-kind link faults recorded across the cluster" >&2; exit 1; }
echo "partition smoke: $cuts partition cuts injected and counted"

# Heal: the window closes on its own; probers must readmit both directions.
for i in $(seq 1 120); do
  if peer_state "$BASE_A" c | grep -q alive && peer_state "$BASE_C" a | grep -q alive &&
     peer_state "$BASE_B" c | grep -q alive && peer_state "$BASE_C" b | grep -q alive; then
    break
  fi
  sleep 0.25
done
peer_state "$BASE_A" c | grep -q alive || {
  echo "node a never readmitted c after the heal" >&2; exit 1; }
peer_state "$BASE_C" a | grep -q alive || {
  echo "node c never readmitted a after the heal" >&2; exit 1; }
echo "partition smoke: partition healed, peers readmitted"

# Anti-entropy must notice the starved replicas and repair them: pushes
# counted, and the under-replication gauge back to zero on every node.
for i in $(seq 1 60); do
  pushes=0 under=0
  for base in "$BASE_A" "$BASE_B" "$BASE_C"; do
    p=$(metric "$base" 'dsserve_antientropy_pushes_total')
    u=$(metric "$base" 'dsserve_underreplicated_keys')
    pushes=$((pushes + ${p:-0})); under=$((under + ${u:-0}))
  done
  if [ "$pushes" -ge 1 ] && [ "$under" -eq 0 ]; then break; fi
  sleep 0.5
done
[ "$pushes" -ge 1 ] || {
  echo "anti-entropy recorded no pushes after the heal" >&2; exit 1; }
[ "$under" -eq 0 ] || {
  echo "under-replicated keys never returned to zero (still $under)" >&2; exit 1; }
echo "partition smoke: anti-entropy repaired the starved replicas ($pushes pushes, 0 under-replicated)"

# The healed minority node coordinates again, oracle-identical.
healed=$(curl -fsS -X POST "$BASE_C/sweep" -d "$sweep" | normalize_sweep)
[ "$healed" = "$oracle" ] || {
  echo "post-heal sweep via c diverges from the oracle" >&2
  echo "--- oracle ---" >&2; echo "$oracle" >&2
  echo "--- healed ---" >&2; echo "$healed" >&2; exit 1; }
echo "partition smoke: post-heal sweep via the healed minority matches the oracle"

# Clean shutdown all around.
kill -TERM "$PID_A" "$PID_B" "$PID_C" "$PID_O"
for pid in "$PID_A" "$PID_B" "$PID_C" "$PID_O"; do
  rc=0; wait "$pid" || rc=$?
  [ "$rc" = "0" ] || { echo "a node exited $rc after SIGTERM, want 0" >&2; exit 1; }
done
trap - EXIT
echo "partition smoke: OK"
