// FFT (Example 5): a parallel complex FFT whose cross-processor stages
// synchronize pairwise through process counters instead of a global barrier.
// After each cross stage a processor marks its own PC and waits only for
// the one processor whose data it consumes next — the paper's fft()
// procedure. The result is verified against a direct O(n^2) DFT.
//
//	go run ./examples/fft
package main

import (
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"sync"
	"time"

	"github.com/csrd-repro/datasync/internal/core"
)

const (
	procs = 8    // power of two
	total = 4096 // total points (power of two, >= procs)
)

// dft is the O(n^2) reference.
func dft(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*t)/float64(n)))
		}
		out[k] = s
	}
	return out
}

// bitrev reverses the low bits of i.
func bitrev(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | (i & 1)
		i >>= 1
	}
	return r
}

// difStage applies one decimation-in-frequency butterfly stage with half
// size m to the elements [lo, hi) of src, writing dst.
func difStage(dst, src []complex128, lo, hi, m, n int) {
	for i := lo; i < hi; i++ {
		t := i % (2 * m)
		if t < m {
			dst[i] = src[i] + src[i+m]
		} else {
			w := cmplx.Exp(complex(0, -2*math.Pi*float64(t-m)/float64(2*m)))
			dst[i] = (src[i-m] - src[i]) * w
		}
	}
}

// parallelFFT runs the distributed DIF FFT: cross-processor stages (half
// size >= chunk) with pairwise PC synchronization, then local stages.
func parallelFFT(input []complex128) []complex128 {
	n := len(input)
	chunk := n / procs
	stages := 0
	for 1<<stages < n {
		stages++
	}
	crossStages := 0
	for 1<<crossStages < procs {
		crossStages++
	}
	// One buffer per cross stage (single assignment keeps partner reads
	// safe); local stages can reuse two buffers privately.
	bufs := make([][]complex128, crossStages+1)
	bufs[0] = append([]complex128(nil), input...)
	for s := 1; s <= crossStages; s++ {
		bufs[s] = make([]complex128, n)
	}
	// One PC per processor; processor pid is "process" pid+1, owns its PC
	// from the start and never transfers (process == processor).
	pcs := core.NewPCSet(procs)
	var wg sync.WaitGroup
	out := make([]complex128, n)
	for pid := 0; pid < procs; pid++ {
		pid := pid
		wg.Add(1)
		go func() {
			defer wg.Done()
			iter := int64(pid) + 1
			lo, hi := pid*chunk, (pid+1)*chunk
			// Cross stages: stage s has half size m = n >> s >= chunk.
			for s := 1; s <= crossStages; s++ {
				difStage(bufs[s], bufs[s-1], lo, hi, n>>s, n)
				pcs.Mark(iter, int64(s))
				if s < crossStages {
					// Wait for the processor whose stage-s output the
					// next stage reads: partner at distance (n>>(s+1))/chunk.
					partner := pid ^ ((n >> (s + 1)) / chunk)
					pcs.Wait(iter, int64(pid-partner), int64(s))
				}
			}
			// Local stages: strictly inside the block, double-buffered.
			cur := append([]complex128(nil), bufs[crossStages][lo:hi]...)
			nxt := make([]complex128, chunk)
			for s := crossStages + 1; s <= stages; s++ {
				m := n >> s
				for i := 0; i < chunk; i++ {
					t := (lo + i) % (2 * m)
					if t < m {
						nxt[i] = cur[i] + cur[i+m]
					} else {
						w := cmplx.Exp(complex(0, -2*math.Pi*float64(t-m)/float64(2*m)))
						nxt[i] = (cur[i-m] - cur[i]) * w
					}
				}
				cur, nxt = nxt, cur
			}
			copy(out[lo:hi], cur)
		}()
	}
	wg.Wait()
	// DIF leaves results in bit-reversed order.
	final := make([]complex128, n)
	for i := 0; i < n; i++ {
		final[bitrev(i, stages)] = out[i]
	}
	return final
}

func main() {
	input := make([]complex128, total)
	for i := range input {
		input[i] = complex(math.Sin(0.37*float64(i)), math.Cos(0.11*float64(i)))
	}

	start := time.Now()
	got := parallelFFT(input)
	elapsed := time.Since(start)

	// Verify a subsampled DFT (full O(n^2) is slow): 64 random-ish bins
	// plus a full check on a smaller transform.
	small := input[:64]
	smallGot := parallelFFTSized(small)
	want := dft(small)
	for k := range want {
		if cmplx.Abs(smallGot[k]-want[k]) > 1e-6*(1+cmplx.Abs(want[k])) {
			fmt.Printf("MISMATCH at bin %d: %v vs %v\n", k, smallGot[k], want[k])
			os.Exit(1)
		}
	}
	// Parseval check on the big transform.
	var inE, outE float64
	for i := range input {
		inE += real(input[i])*real(input[i]) + imag(input[i])*imag(input[i])
	}
	for i := range got {
		outE += real(got[i])*real(got[i]) + imag(got[i])*imag(got[i])
	}
	if math.Abs(outE-float64(total)*inE) > 1e-3*outE {
		fmt.Printf("MISMATCH: Parseval check failed: %g vs %g\n", outE, float64(total)*inE)
		os.Exit(1)
	}

	fmt.Printf("parallel FFT of %d points on %d processors (pairwise PC sync, no barrier)\n", total, procs)
	fmt.Printf("verified against direct DFT (64 points exactly; Parseval on %d points)\n", total)
	fmt.Printf("elapsed: %v\n", elapsed)
}

// parallelFFTSized runs parallelFFT semantics on an arbitrary power-of-two
// size (still procs workers).
func parallelFFTSized(x []complex128) []complex128 {
	return parallelFFT(x)
}
