// Quickstart: execute the paper's Fig 2.1 loop as a Doacross over real
// goroutines using the process-oriented primitives (load_index / mark_PC /
// wait_PC / transfer_PC), exactly as the transformed loop of Fig 4.2b, and
// verify the result against serial execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/csrd-repro/datasync/internal/core"
)

const n = 5000

func serial() ([]int64, []int64) {
	a := make([]int64, n+5)
	out := make([]int64, n+1)
	for i := int64(1); i <= n; i++ {
		a[i+3] = 10*i + 3 // S1
		t2 := a[i+1]      // S2
		t3 := a[i+2]      // S3
		a[i] = t2 + t3    // S4
		out[i] = a[i-1]   // S5
	}
	return a, out
}

func main() {
	a := make([]int64, n+5)
	out := make([]int64, n+1)

	start := time.Now()
	// X process counters folded over N iterations, self-scheduled workers,
	// with the opt-in waiter metrics collected.
	runner := core.Runner{X: 8, Procs: 4, Metrics: true}
	res := runner.MustRun(n, func(i int64, p *core.Proc) {
		a[i+3] = 10*i + 3 // S1: source statement, step 1
		p.Mark(1)
		p.Wait(2, 1) // S2 is the sink of S1 -flow(2)->
		t2 := a[i+1]
		p.Mark(2) // S2: source of the anti dependence S2->S4, step 2
		p.Wait(1, 1)
		t3 := a[i+2] // S3
		p.Mark(3)
		p.Wait(1, 2) // S4 is the sink of S2 -anti(1)->
		p.Wait(2, 3) // ... and of S3 -anti(2)->
		a[i] = t2 + t3
		p.Transfer() // S4 is the last source: pass the PC to process i+X
		p.Wait(1, 4) // S5 is the sink of S4 -flow(1)->
		out[i] = a[i-1]
	})
	elapsed := time.Since(start)

	wantA, wantOut := serial()
	for i := range wantA {
		if a[i] != wantA[i] {
			fmt.Printf("MISMATCH: A[%d] = %d, want %d\n", i, a[i], wantA[i])
			os.Exit(1)
		}
	}
	for i := range wantOut {
		if out[i] != wantOut[i] {
			fmt.Printf("MISMATCH: out[%d] = %d, want %d\n", i, out[i], wantOut[i])
			os.Exit(1)
		}
	}
	set := res.Set
	fmt.Printf("Doacross of the Fig 2.1 loop: %d iterations on %d workers, X=%d PCs\n",
		n, 4, set.X())
	fmt.Printf("all %d array elements match serial execution\n", len(wantA)+len(wantOut))
	fmt.Printf("elapsed: %v\n", elapsed)
	for k := 0; k < set.X(); k++ {
		fmt.Printf("final PC[%d] = %v\n", k, set.Load(k))
	}
	fmt.Printf("\nrun stats:\n%s\n", res.Stats)
}
