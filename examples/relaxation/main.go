// Relaxation (Example 1): run the four-point relaxation
//
//	DO I=2,N; DO J=2,N:  A[I,J] = A[I-1,J] + A[I,J-1]
//
// two ways on real goroutines — as a wavefront with a barrier between
// anti-diagonal fronts (Fig 5.1c), and as an asynchronous pipeline where
// each row is a process synchronizing with its predecessor row every G
// columns through process counters (Fig 5.1b/d) — verify both against
// serial execution and compare wall-clock times.
//
//	go run ./examples/relaxation
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/core"
)

const (
	n       = 600 // grid is (n-1) x (n-1) interior cells
	g       = 8   // columns per synchronization point
	workers = 4
)

type grid [][]int64

func newGrid() grid {
	a := make(grid, n+1)
	for i := range a {
		a[i] = make([]int64, n+1)
	}
	for i := int64(1); i <= n; i++ {
		a[i][1] = 3*i + 1
		a[1][i] = i
	}
	return a
}

func serial() grid {
	a := newGrid()
	for i := 2; i <= n; i++ {
		for j := 2; j <= n; j++ {
			a[i][j] = a[i-1][j] + a[i][j-1]
		}
	}
	return a
}

func equal(x, y grid) bool {
	for i := range x {
		for j := range x[i] {
			if x[i][j] != y[i][j] {
				return false
			}
		}
	}
	return true
}

// pipeline runs rows as Doacross processes over process counters.
func pipeline() (grid, time.Duration) {
	a := newGrid()
	start := time.Now()
	core.Runner{X: 2 * workers, Procs: workers}.MustRun(n-1, func(lpid int64, p *core.Proc) {
		i := lpid + 1 // this process computes row I = lpid+1
		for k := int64(2); k <= n; k += g {
			end := k + g - 1
			if end > n {
				end = n
			}
			p.Wait(1, k) // row i-1 finished columns up to k+g-1
			for j := k; j <= end; j++ {
				a[i][j] = a[i-1][j] + a[i][j-1]
			}
			p.Mark(k)
		}
		p.Transfer()
	})
	return a, time.Since(start)
}

// wavefront computes anti-diagonal fronts separated by a PC butterfly
// barrier. Work inside a front is dealt round-robin to the workers.
func wavefront() (grid, time.Duration) {
	a := newGrid()
	b := barrier.NewPCButterfly(workers)
	start := time.Now()
	var wg sync.WaitGroup
	for pid := 0; pid < workers; pid++ {
		pid := pid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 4; s <= 2*n; s++ { // front: i+j = s
				c := 0
				for i := 2; i <= n; i++ {
					j := s - i
					if j < 2 || j > n {
						continue
					}
					if c%workers == pid {
						a[i][j] = a[i-1][j] + a[i][j-1]
					}
					c++
				}
				if err := b.Await(pid); err != nil {
					panic(err) // no watchdog armed: cannot happen
				}
			}
		}()
	}
	wg.Wait()
	return a, time.Since(start)
}

func main() {
	if w := workers & (workers - 1); w != 0 {
		fmt.Fprintln(os.Stderr, "workers must be a power of two for the butterfly barrier")
		os.Exit(2)
	}
	want := serial()

	pipeGrid, pipeTime := pipeline()
	if !equal(pipeGrid, want) {
		fmt.Println("MISMATCH: pipelined relaxation diverged from serial")
		os.Exit(1)
	}
	waveGrid, waveTime := wavefront()
	if !equal(waveGrid, want) {
		fmt.Println("MISMATCH: wavefront relaxation diverged from serial")
		os.Exit(1)
	}

	fronts := 2*n - 3
	fmt.Printf("relaxation %dx%d interior, %d workers\n", n-1, n-1, workers)
	fmt.Printf("async pipeline (PCs, G=%d): %v   sync points/process: %d\n", g, pipeTime, (n-2)/g+1)
	fmt.Printf("wavefront + butterfly barrier: %v   barrier episodes: %d\n", waveTime, fronts)
	fmt.Println("both match serial execution")
}
