// Nested Doacross (Example 2): execute the multiply-nested loop
//
//	DO I=1,N; DO J=1,M
//	  S1: A[I,J] = f(I,J)
//	  S2: B[I,J] = A[I,J-1] + 1
//	  S3: C[I,J] = B[I-1,J-1] * 2
//
// by implicitly coalescing the nest: each (I,J) becomes the process with
// linearized pid (I-1)*M + J, the dependences become lpid distances 1
// (S1->S2) and M+1 (S2->S3), and no loop-boundary tests are needed —
// exactly Fig 5.2b. Verified against serial execution.
//
//	go run ./examples/nested
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/csrd-repro/datasync/internal/core"
)

const (
	nI = 120
	nJ = 80
)

type mat [][]int64

func newMat() mat {
	m := make(mat, nI+1)
	for i := range m {
		m[i] = make([]int64, nJ+1)
	}
	return m
}

func setup() (a, b, c mat) {
	a, b, c = newMat(), newMat(), newMat()
	for i := 0; i <= nI; i++ {
		a[i][0] = -int64(i)
		b[i][0] = 7 * int64(i)
	}
	for j := 0; j <= nJ; j++ {
		b[0][j] = 7000 + int64(j)
	}
	return a, b, c
}

func body(a, b, c mat, i, j int64) {
	a[i][j] = i*100 + j
	b[i][j] = a[i][j-1] + 1
	c[i][j] = b[i-1][j-1] * 2
}

func serial() (mat, mat, mat) {
	a, b, c := setup()
	for i := int64(1); i <= nI; i++ {
		for j := int64(1); j <= nJ; j++ {
			body(a, b, c, i, j)
		}
	}
	return a, b, c
}

func main() {
	wantA, wantB, wantC := serial()

	a, b, c := setup()
	start := time.Now()
	core.Runner{X: 8, Procs: 4}.MustRun(nI*nJ, func(lpid int64, p *core.Proc) {
		// Decode the linearized pid; no boundary special cases anywhere.
		i := (lpid-1)/nJ + 1
		j := (lpid-1)%nJ + 1
		a[i][j] = i*100 + j // S1: source step 1
		p.Mark(1)
		p.Wait(1, 1) // S2 sinks S1 -flow(lpid distance 1)->
		b[i][j] = a[i][j-1] + 1
		p.Transfer()    // S2: last source (step 2)
		p.Wait(nJ+1, 2) // S3 sinks S2 -flow(lpid distance M+1)->
		c[i][j] = b[i-1][j-1] * 2
	})
	elapsed := time.Since(start)

	for i := 0; i <= nI; i++ {
		for j := 0; j <= nJ; j++ {
			if a[i][j] != wantA[i][j] || b[i][j] != wantB[i][j] || c[i][j] != wantC[i][j] {
				fmt.Printf("MISMATCH at (%d,%d)\n", i, j)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("coalesced %dx%d nest = %d processes, lpid distances 1 and %d\n",
		nI, nJ, nI*nJ, nJ+1)
	fmt.Println("all three arrays match serial execution (no boundary tests needed)")
	fmt.Printf("elapsed: %v\n", elapsed)
}
