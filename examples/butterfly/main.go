// Butterfly barrier (Example 4): time the three barrier algorithms of the
// paper's comparison over many rounds of real goroutine phases — the
// central counter barrier (atomic fetch&add plus polling on one cell), the
// Brooks flag-matrix butterfly, and the paper's process-counter butterfly
// (Fig 5.4: P variables, no atomic operations) — and verify the barrier
// property as they run.
//
//	go run ./examples/butterfly
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/barrier"
)

const (
	procs  = 8
	rounds = 2000
)

// run drives `rounds` phases over the given barrier and checks that no
// participant enters round r+1 before all reached round r.
func run(name string, await func(pid int) error) time.Duration {
	state := make([]atomic.Int64, procs)
	var violations atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		pid := pid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := int64(1); r <= rounds; r++ {
				for q := 0; q < procs; q++ {
					if state[q].Load() < r-1 {
						violations.Add(1)
					}
				}
				state[pid].Store(r)
				if err := await(pid); err != nil {
					fmt.Printf("MISMATCH: %s: %v\n", name, err)
					os.Exit(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if v := violations.Load(); v != 0 {
		fmt.Printf("MISMATCH: %s: %d barrier violations\n", name, v)
		os.Exit(1)
	}
	return elapsed
}

func main() {
	counter := barrier.NewCounter(procs)
	tCounter := run("counter", counter.Await)

	flags := barrier.NewFlags(procs)
	tFlags := run("flag butterfly", flags.Await)

	pc := barrier.NewPCButterfly(procs)
	tPC := run("PC butterfly", pc.Await)

	stages := barrier.Log2(procs)
	fmt.Printf("%d participants, %d rounds each\n\n", procs, rounds)
	fmt.Printf("%-28s %12s  %s\n", "algorithm", "elapsed", "sync variables")
	fmt.Printf("%-28s %12v  1 (shared counter, atomic adds)\n", "counter barrier", tCounter)
	fmt.Printf("%-28s %12v  %d (P*log2P flags, no atomics)\n", "Brooks butterfly", tFlags, procs*stages)
	fmt.Printf("%-28s %12v  %d (P process counters, no atomics)\n", "PC butterfly (paper)", tPC, procs)
	fmt.Println("\nall three maintained the barrier property")
}
