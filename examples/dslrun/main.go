// dslrun: the whole pipeline in one program — parse a Doacross loop written
// in the package lang mini-language, run the dependence analysis, print the
// enforced arcs, then execute the loop pipelined on real goroutines with
// folded process counters (codegen.RunRuntime), verified against serial
// execution.
//
//	go run ./examples/dslrun
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/lang"
)

const src = `
# A second-order recurrence feeding a smoothing pass.
DO I = 1, 4000
  S1: A[I] = A[I-2] + I        @3
  IF ODD(I) THEN
    S2: B[I+1] = A[I] + 1000   @2
  ELSE
    S3: B[I+1] = A[I] - 1000   @2
  END IF
  S4: C[I] = B[I] + A[I-1]     @2
END DO
`

func main() {
	w, err := lang.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse:", err)
		os.Exit(1)
	}
	g := w.Nest.LinearGraph()
	fmt.Printf("parsed %d statements over %d iterations\n", len(w.Nest.Stmts()), w.Nest.Iterations())
	fmt.Println("enforced dependences (branching body: deduplicated):")
	for _, a := range g.Deduped() {
		fmt.Printf("  %s -%s(%d)-> %s\n",
			g.Stmts[a.Src].Name, a.Kind, a.Dist[0], g.Stmts[a.Dst].Name)
	}

	start := time.Now()
	mem, err := codegen.RunRuntime(w, 8, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	c := mem.Lookup("C")
	fmt.Printf("executed on 4 goroutines with 8 folded PCs in %v\n", elapsed)
	fmt.Printf("serial-equivalence check: PASS\n")
	fmt.Printf("spot results: C[1]=%d C[2000]=%d C[4000]=%d\n",
		c.Get(1), c.Get(2000), c.Get(4000))
}
