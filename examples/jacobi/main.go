// Jacobi (the paper's PDE application of Example 5): P goroutines smooth a
// shared 1-D domain over many sweeps. Between sweeps each worker
// synchronizes ONLY with its two neighbors through per-worker process
// counters (step = completed sweep) — no global barrier — and the result is
// verified against serial execution, then timed against a barrier version.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/barrier"
)

const (
	workers = 8
	strip   = 2000
	sweeps  = 300
)

var n = workers * strip

// buffers: double buffering between sweeps; boundary cells at -1 and n are
// represented by index 0 and n+1 in a padded slice.
func initial() []int64 {
	u := make([]int64, n+2)
	for c := range u {
		u[c] = int64(c*c%53 + 2*c)
	}
	return u
}

func serial() []int64 {
	cur, nxt := initial(), initial()
	for s := 0; s < sweeps; s++ {
		for c := 1; c <= n; c++ {
			nxt[c] = (cur[c-1] + cur[c+1]) / 2
		}
		cur, nxt = nxt, cur
	}
	return cur
}

// neighborSync: per-worker sweep counters; worker w waits for w-1 and w+1
// to finish sweep s before starting sweep s+1.
func neighborSync() ([]int64, time.Duration) {
	cur, nxt := initial(), initial()
	bufs := [2][]int64{cur, nxt}
	pcs := make([]atomic.Int64, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo := w*strip + 1
			for s := 0; s < sweeps; s++ {
				src, dst := bufs[s%2], bufs[(s+1)%2]
				for c := lo; c < lo+strip; c++ {
					dst[c] = (src[c-1] + src[c+1]) / 2
				}
				pcs[w].Store(int64(s + 1))
				if s+1 < sweeps {
					// set_PC(s+1), then busy-wait only for the neighbors.
					for w > 0 && pcs[w-1].Load() < int64(s+1) {
						runtime.Gosched()
					}
					for w < workers-1 && pcs[w+1].Load() < int64(s+1) {
						runtime.Gosched()
					}
				}
			}
		}()
	}
	wg.Wait()
	return bufs[sweeps%2], time.Since(start)
}

// withBarrier: a full butterfly barrier between sweeps.
func withBarrier() ([]int64, time.Duration) {
	cur, nxt := initial(), initial()
	bufs := [2][]int64{cur, nxt}
	b := barrier.NewPCButterfly(workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo := w*strip + 1
			for s := 0; s < sweeps; s++ {
				src, dst := bufs[s%2], bufs[(s+1)%2]
				for c := lo; c < lo+strip; c++ {
					dst[c] = (src[c-1] + src[c+1]) / 2
				}
				if s+1 < sweeps {
					if err := b.Await(w); err != nil {
						panic(err) // no watchdog armed: cannot happen
					}
				}
			}
		}()
	}
	wg.Wait()
	return bufs[sweeps%2], time.Since(start)
}

func main() {
	want := serial()
	check := func(name string, got []int64) {
		for c := 1; c <= n; c++ {
			if got[c] != want[c] {
				fmt.Printf("MISMATCH (%s) at cell %d: %d vs %d\n", name, c, got[c], want[c])
				os.Exit(1)
			}
		}
	}
	nGrid, nTime := neighborSync()
	check("neighbor", nGrid)
	bGrid, bTime := withBarrier()
	check("barrier", bGrid)

	fmt.Printf("Jacobi: %d cells, %d sweeps, %d workers\n", n, sweeps, workers)
	fmt.Printf("neighbor-only PC sync: %v\n", nTime)
	fmt.Printf("butterfly barrier/sweep: %v\n", bTime)
	fmt.Println("both match serial execution")
}
