package sim

import "fmt"

// Recover configures deterministic ownership reclamation for halted
// processors: when a fault plan halts a processor, the machine waits
// AfterCycles of silence, then reclaims the dead processor's PC ownership —
// the transfer_PC handoff the paper's improved primitives license, since a
// PC names an iteration, not the processor running it. The orphan iteration
// resumes at the exact operation it halted on (nothing is re-executed, so
// read-modify-write accumulators are never double-applied) and the victim's
// unstarted chunk residue is folded back onto the live processors through
// the dispatch queue. The zero value disables recovery, leaving the
// halt-means-stall diagnosis of the fault layer unchanged.
type Recover struct {
	// AfterCycles is how many cycles a halted processor must stay silent
	// before its ownership is reclaimed; >= 1 arms recovery.
	AfterCycles int64 `json:"afterCycles,omitempty"`
	// MaxReclaims bounds reclamations per run (default 1). A stall that
	// persists past the budget is reported as recovery-exhausted.
	MaxReclaims int `json:"maxReclaims,omitempty"`
}

// Enabled reports whether recovery is armed. A disarmed Recover must be
// invisible: byte-identical cache canon and bit-identical simulation.
func (r Recover) Enabled() bool { return r.AfterCycles >= 1 }

func (r Recover) maxReclaims() int {
	if r.MaxReclaims > 0 {
		return r.MaxReclaims
	}
	return 1
}

// Check validates the recovery configuration.
func (r Recover) Check() error {
	if r.AfterCycles < 0 {
		return fmt.Errorf("sim: Recover.AfterCycles must be >= 0 (got %d)", r.AfterCycles)
	}
	if r.MaxReclaims < 0 {
		return fmt.Errorf("sim: Recover.MaxReclaims must be >= 0 (got %d; 0 means the default of 1)", r.MaxReclaims)
	}
	return nil
}

// Canon renders the armed recovery section for the cache canon key. Only
// called when Enabled: recovery changes scheduling, so a recovered run must
// content-address separately from a clean run of the same request.
func (r Recover) Canon() string {
	return fmt.Sprintf("after=%d;max=%d", r.AfterCycles, r.MaxReclaims)
}

// RecoveryReport is the cycle-exact record of one reclamation: who was
// quarantined, when ownership was reclaimed, which iteration resumed where,
// and how much pending work was folded back onto the live processors. It is
// a pure function of (config, plan, seed), so repeated runs produce
// deep-equal reports.
type RecoveryReport struct {
	// Recovered is true when the reclamation completed (the run finished
	// despite the halted processor).
	Recovered bool `json:"recovered"`
	// Proc is the quarantined processor.
	Proc int `json:"proc"`
	// HaltedAt is the cycle the victim went silent; ReclaimedAt the cycle
	// its PC ownership was forcibly reclaimed.
	HaltedAt    int64 `json:"haltedAt"`
	ReclaimedAt int64 `json:"reclaimedAt"`
	// Iteration is the orphan iteration the victim held mid-flight (0 when
	// it halted between iterations); ResumedOp the op index execution
	// resumed from.
	Iteration int64 `json:"iteration,omitempty"`
	ResumedOp int   `json:"resumedOp,omitempty"`
	// Reassigned counts the victim's unstarted chunk iterations folded back
	// onto live processors.
	Reassigned int64 `json:"reassigned,omitempty"`
	// Attempts is the number of reclamations performed.
	Attempts int `json:"attempts"`
	// CostCycles is the reclamation latency: cycles between the halt and
	// the reclaim (the quarantine window the run paid).
	CostCycles int64 `json:"costCycles"`
}

func (r *RecoveryReport) String() string {
	if r == nil {
		return "no recovery"
	}
	return fmt.Sprintf("reclaimed proc %d (halted at cycle %d, reclaimed at %d): resumed iteration %d at op %d, reassigned %d, attempts %d, cost %d cycles",
		r.Proc, r.HaltedAt, r.ReclaimedAt, r.Iteration, r.ResumedOp, r.Reassigned, r.Attempts, r.CostCycles)
}

// iterSpan is a confiscated chunk residue awaiting redistribution.
type iterSpan struct{ lo, hi int64 }

// scheduleReclaim quarantines a freshly-halted processor and schedules its
// ownership reclamation AfterCycles later (the lease the recovery layer
// grants a silent processor before declaring it dead).
func (m *Machine) scheduleReclaim(p *proc) {
	if p.reclaimScheduled || m.reclaims >= m.cfg.Recover.maxReclaims() {
		return
	}
	p.reclaimScheduled = true
	m.reclaims++
	m.post(m.now+m.cfg.Recover.AfterCycles, event{kind: evReclaim, p: p})
}

// reclaim forcibly takes the halted processor's PC ownership: the orphan
// iteration resumes on a recovery context (which inherits the victim's
// accounting slot — the quarantine window is charged as synchronization
// wait), and the victim's unstarted chunk residue joins the reassignment
// queue, served before fresh iterations so dispatch order stays
// non-decreasing (the deadlock-freedom requirement).
func (m *Machine) reclaim(p *proc) {
	rep := &RecoveryReport{
		Recovered:   true,
		Proc:        p.id,
		HaltedAt:    p.haltedAt,
		ReclaimedAt: m.now,
		Attempts:    m.reclaims,
		CostCycles:  m.now - p.haltedAt,
	}
	if p.chunkNext <= p.chunkEnd {
		rep.Reassigned = p.chunkEnd - p.chunkNext + 1
		m.reassigned = append(m.reassigned, iterSpan{p.chunkNext, p.chunkEnd})
		p.chunkNext, p.chunkEnd = 1, 0 // confiscated
	}
	if p.ip < len(p.ops) {
		rep.Iteration = p.iter
		rep.ResumedOp = p.ip
	}
	m.recovery = rep
	p.reclaimed = true
	p.waitSync += m.now - p.haltedAt
	m.step(p)
}
