package sim

import (
	"reflect"
	"strings"
	"testing"
)

func TestComputeSequenceTiming(t *testing.T) {
	m := New(Config{Processors: 1})
	stats, err := m.RunProcesses([][]Op{{
		Compute(5, nil, "a"),
		Compute(7, nil, "b"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 12 {
		t.Errorf("Cycles = %d, want 12", stats.Cycles)
	}
	if stats.Procs[0].Busy != 12 {
		t.Errorf("Busy = %d, want 12", stats.Procs[0].Busy)
	}
}

func TestExecRunsAtCompletionInOrder(t *testing.T) {
	m := New(Config{Processors: 2})
	var order []string
	mark := func(s string) func() { return func() { order = append(order, s) } }
	_, err := m.RunProcesses([][]Op{
		{Compute(5, mark("p0@5"), ""), Compute(5, mark("p0@10"), "")},
		{Compute(3, mark("p1@3"), ""), Compute(4, mark("p1@7"), "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "p1@3 p0@5 p1@7 p0@10"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("exec order = %q, want %q", got, want)
	}
}

func TestSelfSchedulingDistributesIterations(t *testing.T) {
	m := New(Config{Processors: 4})
	prog := func(iter int64) []Op { return []Op{Compute(10, nil, "")} }
	stats, err := m.RunLoop(20, prog)
	if err != nil {
		t.Fatal(err)
	}
	// 20 iterations of 10 cycles over 4 processors: perfect 50 cycles.
	if stats.Cycles != 50 {
		t.Errorf("Cycles = %d, want 50", stats.Cycles)
	}
	if stats.Iterations != 20 {
		t.Errorf("Iterations = %d, want 20", stats.Iterations)
	}
	if u := stats.Utilization(); u != 1.0 {
		t.Errorf("Utilization = %v, want 1.0", u)
	}
}

func TestSchedOverheadAccounted(t *testing.T) {
	m := New(Config{Processors: 1, SchedOverhead: 3})
	stats, err := m.RunLoop(4, func(int64) []Op { return []Op{Compute(10, nil, "")} })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 4*13 {
		t.Errorf("Cycles = %d, want 52", stats.Cycles)
	}
}

func TestRegisterVisibilityOwnWriteImmediate(t *testing.T) {
	// Writer's own wait sees the uncommitted value at once; another
	// processor only after the broadcast commits.
	m := New(Config{Processors: 2, BusLatency: 10, SyncOpCost: 0})
	v := m.NewRegVar("pc", 0)
	stats, err := m.RunProcesses([][]Op{
		{WriteVar(v, 1, ""), WaitGE(v, 1, "own"), Compute(1, nil, "")},
		{WaitGE(v, 1, "other"), Compute(1, nil, "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0: write at 0, own wait satisfied immediately, compute 0..1.
	// Proc 1: blocked until commit at 10, compute 10..11.
	if stats.Cycles != 11 {
		t.Errorf("Cycles = %d, want 11", stats.Cycles)
	}
	if ws := stats.Procs[1].WaitSync; ws != 10 {
		t.Errorf("proc1 WaitSync = %d, want 10", ws)
	}
	if ws := stats.Procs[0].WaitSync; ws != 0 {
		t.Errorf("proc0 WaitSync = %d, want 0", ws)
	}
}

func TestBusFIFOSerializesBroadcasts(t *testing.T) {
	// Two writes from different processors at time 0: second commit at 2*L.
	m := New(Config{Processors: 3, BusLatency: 5, SyncOpCost: 0})
	v1 := m.NewRegVar("a", 0)
	v2 := m.NewRegVar("b", 0)
	stats, err := m.RunProcesses([][]Op{
		{WriteVar(v1, 1, "")},
		{WriteVar(v2, 1, "")},
		{WaitGE(v1, 1, ""), WaitGE(v2, 1, "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 10 {
		t.Errorf("Cycles = %d, want 10 (two serialized broadcasts)", stats.Cycles)
	}
	if stats.BusBroadcasts != 2 {
		t.Errorf("BusBroadcasts = %d, want 2", stats.BusBroadcasts)
	}
}

func TestBusCoverageElidesSupersededWrite(t *testing.T) {
	// Proc 0 writes the same variable twice while another broadcast holds
	// the bus; with coverage the first write is covered by the second.
	run := func(coverage bool) Stats {
		m := New(Config{Processors: 2, BusLatency: 10, BusCoverage: coverage, SyncOpCost: 0})
		blockerVar := m.NewRegVar("blocker", 0)
		pc := m.NewRegVar("pc", 0)
		stats, err := m.RunProcesses([][]Op{
			{WriteVar(blockerVar, 1, "")}, // occupies the bus 0..10
			{Compute(1, nil, ""), WriteVar(pc, 1, ""), Compute(1, nil, ""), WriteVar(pc, 2, ""), WaitGE(pc, 2, "")},
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	with := run(true)
	without := run(false)
	if with.BusSaved != 1 || with.BusBroadcasts != 2 {
		t.Errorf("coverage: saved=%d tx=%d, want 1 and 2", with.BusSaved, with.BusBroadcasts)
	}
	if without.BusSaved != 0 || without.BusBroadcasts != 3 {
		t.Errorf("no coverage: saved=%d tx=%d, want 0 and 3", without.BusSaved, without.BusBroadcasts)
	}
	if with.Cycles >= without.Cycles {
		t.Errorf("coverage did not shorten run: %d vs %d", with.Cycles, without.Cycles)
	}
}

func TestCoverageStillDeliversFinalValue(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 10, BusCoverage: true, SyncOpCost: 0})
	blocker := m.NewRegVar("blocker", 0)
	pc := m.NewRegVar("pc", 0)
	stats, err := m.RunProcesses([][]Op{
		// The blocker write holds the bus 0..10, so pc=1 is still queued
		// when pc=5 is issued and gets covered by it.
		{WriteVar(blocker, 1, ""), WriteVar(pc, 1, ""), WriteVar(pc, 5, "")},
		{WaitGE(pc, 5, "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.VarValue(pc) != 5 {
		t.Errorf("pc = %d, want 5", m.VarValue(pc))
	}
	// The blocker broadcast plus one covering broadcast with value 5.
	if stats.BusBroadcasts != 2 || stats.BusSaved != 1 {
		t.Errorf("tx=%d saved=%d, want 2,1", stats.BusBroadcasts, stats.BusSaved)
	}
}

func TestZeroBusLatencyCommitsImmediately(t *testing.T) {
	m := New(Config{Processors: 2, SyncOpCost: 0})
	v := m.NewRegVar("v", 0)
	stats, err := m.RunProcesses([][]Op{
		{Compute(5, nil, ""), WriteVar(v, 1, "")},
		{WaitGE(v, 1, ""), Compute(2, nil, "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 7 {
		t.Errorf("Cycles = %d, want 7", stats.Cycles)
	}
	if stats.BusBroadcasts != 1 {
		t.Errorf("BusBroadcasts = %d, want 1", stats.BusBroadcasts)
	}
}

func TestModuleContentionSerializes(t *testing.T) {
	// 4 processors RMW the same module at time 0 with latency 3:
	// completions at 3, 6, 9, 12.
	m := New(Config{Processors: 4, MemLatency: 3})
	v := m.NewMemVar("ctr", 0, 0)
	inc := func(x int64) int64 { return x + 1 }
	progs := make([][]Op, 4)
	for i := range progs {
		progs[i] = []Op{RMW(v, inc, "")}
	}
	stats, err := m.RunProcesses(progs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 12 {
		t.Errorf("Cycles = %d, want 12", stats.Cycles)
	}
	if m.VarValue(v) != 4 {
		t.Errorf("ctr = %d, want 4", m.VarValue(v))
	}
	if stats.MaxModuleQueue != 4 {
		t.Errorf("MaxModuleQueue = %d, want 4", stats.MaxModuleQueue)
	}
	if stats.ModuleQueueWait != 0+3+6+9 {
		t.Errorf("ModuleQueueWait = %d, want 18", stats.ModuleQueueWait)
	}
}

func TestSeparateModulesDoNotContend(t *testing.T) {
	m := New(Config{Processors: 2, MemLatency: 3, Modules: 2})
	a := m.NewMemVar("a", 0, 0)
	b := m.NewMemVar("b", 1, 0)
	stats, err := m.RunProcesses([][]Op{
		{WriteVar(a, 1, "")},
		{WriteVar(b, 1, "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 3 {
		t.Errorf("Cycles = %d, want 3 (parallel modules)", stats.Cycles)
	}
}

func TestPollingWaitGeneratesModuleTraffic(t *testing.T) {
	m := New(Config{Processors: 2, MemLatency: 2})
	flag := m.NewMemVar("flag", 0, 0)
	stats, err := m.RunProcesses([][]Op{
		{Compute(9, nil, ""), WriteVar(flag, 1, "")},
		{WaitGE(flag, 1, "spin")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Polls == 0 {
		t.Error("expected busy-wait polls on memory variable")
	}
	// Each poll is a module access: polls + the single write.
	if stats.ModuleAccesses != stats.Polls+1 {
		t.Errorf("ModuleAccesses = %d, want polls+1 = %d", stats.ModuleAccesses, stats.Polls+1)
	}
	if stats.Procs[1].WaitSync == 0 {
		t.Error("poller accounted no WaitSync")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(Config{Processors: 1})
	v := m.NewRegVar("never", 0)
	_, err := m.RunProcesses([][]Op{{WaitGE(v, 1, "stuck")}})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
	if err != nil && !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock report should name the blocked op: %v", err)
	}
}

func TestLivelockCaughtByMaxCycles(t *testing.T) {
	// A polling wait that can never be satisfied spins forever; the cycle
	// cap turns that into an error instead of a hang.
	m := New(Config{Processors: 1, MaxCycles: 10_000})
	v := m.NewMemVar("never", 0, 0)
	_, err := m.RunProcesses([][]Op{{WaitGE(v, 1, "")}})
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Errorf("err = %v, want MaxCycles", err)
	}
}

func TestProducerConsumerValueFlows(t *testing.T) {
	// Semantics check: consumer must read the produced value, not zero.
	m := New(Config{Processors: 2, BusLatency: 4, SyncOpCost: 1})
	arr := m.Mem().Array("A", 0, 0)
	v := m.NewRegVar("pc", 0)
	var got int64 = -1
	_, err := m.RunProcesses([][]Op{
		{Compute(10, func() { arr.Set(0, 42) }, "produce"), WriteVar(v, 1, "")},
		{WaitGE(v, 1, ""), Compute(1, func() { got = arr.Get(0) }, "consume")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("consumer read %d, want 42", got)
	}
}

func TestRunLoopDeterministic(t *testing.T) {
	run := func() Stats {
		m := New(Config{Processors: 3, BusLatency: 2, SyncOpCost: 1, SchedOverhead: 1})
		v := m.NewRegVar("pc", 0)
		prog := func(iter int64) []Op {
			return []Op{
				WaitGE(v, iter-1, ""),
				Compute(3+iter%4, nil, ""),
				WriteVar(v, iter, ""),
			}
		}
		stats, err := m.RunLoop(30, prog)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic runs:\n%v\n%v", a, b)
	}
}

func TestExecSerial(t *testing.T) {
	mem := NewMem()
	arr := mem.Array("A", 0, 10)
	prog := func(iter int64) []Op {
		return []Op{
			WaitGE(0, 0, "ignored"),
			Compute(2, func() { arr.Set(iter, arr.Get(iter-1)+1) }, ""),
		}
	}
	total := ExecSerial(10, prog)
	if total != 20 {
		t.Errorf("serial cycles = %d, want 20", total)
	}
	if arr.Get(10) != 10 {
		t.Errorf("recurrence result = %d, want 10", arr.Get(10))
	}
}

func TestRunProcessesWrongCount(t *testing.T) {
	m := New(Config{Processors: 2})
	if _, err := m.RunProcesses([][]Op{{}}); err == nil {
		t.Error("mismatched program count accepted")
	}
}

func TestMachineSingleUse(t *testing.T) {
	m := New(Config{Processors: 1})
	if _, err := m.RunProcesses([][]Op{{}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second run did not panic")
		}
	}()
	m.RunProcesses([][]Op{{}})
}

func TestIdleAccounting(t *testing.T) {
	m := New(Config{Processors: 2})
	stats, err := m.RunProcesses([][]Op{
		{Compute(10, nil, "")},
		{Compute(4, nil, "")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Procs[1].Idle != 6 {
		t.Errorf("proc1 Idle = %d, want 6", stats.Procs[1].Idle)
	}
	if got := stats.Utilization(); got != 0.7 {
		t.Errorf("Utilization = %v, want 0.7", got)
	}
}

func TestRMWOnRegisterPanics(t *testing.T) {
	m := New(Config{Processors: 1})
	v := m.NewRegVar("r", 0)
	defer func() {
		if recover() == nil {
			t.Error("RMW on register did not panic")
		}
	}()
	m.RunProcesses([][]Op{{RMW(v, func(x int64) int64 { return x }, "")}})
}

func TestWriteVarIf(t *testing.T) {
	m := New(Config{Processors: 1, SyncOpCost: 0})
	v := m.NewRegVar("pc", 3)
	ge := func(min int64) func(int64) bool {
		return func(cur int64) bool { return cur >= min }
	}
	stats, err := m.RunProcesses([][]Op{{
		WriteVarIf(v, 10, ge(5), "skipped"), // 3 < 5: no write
		WriteVarIf(v, 10, ge(3), "taken"),   // 3 >= 3: writes 10
		WriteVarIf(v, 20, ge(10), "taken2"), // own write visible: 10 >= 10
	}})
	if err != nil {
		t.Fatal(err)
	}
	if m.VarValue(v) != 20 {
		t.Errorf("v = %d, want 20", m.VarValue(v))
	}
	if stats.BusBroadcasts != 2 {
		t.Errorf("BusBroadcasts = %d, want 2 (one skipped)", stats.BusBroadcasts)
	}
}

func TestMemDiff(t *testing.T) {
	a, b := NewMem(), NewMem()
	a.Array("A", 0, 3).Set(2, 7)
	b.Array("A", 0, 3).Set(2, 8)
	a.Grid("G", 0, 1, 0, 1)
	b.Grid("G", 0, 1, 0, 1).Set(1, 1, 9)
	a.SetScalar("s", 1)
	if d := a.Diff(b); !strings.Contains(d, "A[2]") || !strings.Contains(d, "G[1,1]") || !strings.Contains(d, "scalar s") {
		t.Errorf("Diff missing entries:\n%s", d)
	}
	c, d := NewMem(), NewMem()
	c.Array("A", 0, 3)
	d.Array("A", 0, 3)
	if diff := c.Diff(d); diff != "" {
		t.Errorf("identical mems differ: %s", diff)
	}
}

func TestArrayBounds(t *testing.T) {
	a := NewArray("A", -2, 5)
	a.Set(-2, 1)
	a.Set(5, 2)
	if a.Get(-2) != 1 || a.Get(5) != 2 || a.Len() != 8 {
		t.Error("array bounds arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	a.Get(6)
}

func TestGridBounds(t *testing.T) {
	g := NewGrid("G", 1, 3, 2, 4)
	g.Set(3, 4, 9)
	if g.Get(3, 4) != 9 || g.Len() != 9 {
		t.Error("grid arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range grid access did not panic")
		}
	}()
	g.Get(0, 2)
}

func TestChunkedDispatchCoversAllIterations(t *testing.T) {
	m := New(Config{Processors: 3, Dispatch: DispatchChunked, ChunkSize: 5, SchedOverhead: 2})
	seen := make(map[int64]int)
	stats, err := m.RunLoop(23, func(iter int64) []Op {
		return []Op{Compute(1, func() { seen[iter]++ }, "")}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 23 {
		t.Errorf("Iterations = %d, want 23", stats.Iterations)
	}
	for i := int64(1); i <= 23; i++ {
		if seen[i] != 1 {
			t.Errorf("iteration %d executed %d times", i, seen[i])
		}
	}
}

func TestChunkedDispatchAmortizesOverhead(t *testing.T) {
	run := func(d Dispatch) Stats {
		m := New(Config{Processors: 1, Dispatch: d, ChunkSize: 8, SchedOverhead: 4})
		stats, err := m.RunLoop(64, func(iter int64) []Op {
			return []Op{Compute(2, nil, "")}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	perIter := run(DispatchInOrder)
	chunked := run(DispatchChunked)
	// 64 dispatch overheads vs 8: 64*2+64*4 = 384 vs 64*2+8*4 = 160.
	if perIter.Cycles != 384 || chunked.Cycles != 160 {
		t.Errorf("cycles = %d (in-order), %d (chunked); want 384, 160",
			perIter.Cycles, chunked.Cycles)
	}
}

func TestReversedDispatchDeadlocksDependentLoop(t *testing.T) {
	// A flow dependence of distance 1 with reversed dispatch: both
	// processors hold late iterations whose sources never run.
	m := New(Config{Processors: 2, Dispatch: DispatchReversed})
	v := m.NewRegVar("chain", 0)
	_, err := m.RunLoop(10, func(iter int64) []Op {
		ops := []Op{}
		if iter > 1 {
			ops = append(ops, WaitGE(v, iter-1, "wait-pred"))
		}
		ops = append(ops, Compute(1, nil, ""), WriteVar(v, iter, "advance"))
		return ops
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("reversed dispatch of a dependent loop: err = %v, want deadlock", err)
	}
}

func TestReversedDispatchWorksForIndependentLoop(t *testing.T) {
	m := New(Config{Processors: 2, Dispatch: DispatchReversed})
	stats, err := m.RunLoop(10, func(iter int64) []Op {
		return []Op{Compute(3, nil, "")}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 10 {
		t.Errorf("Iterations = %d, want 10", stats.Iterations)
	}
}
