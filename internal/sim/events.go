package sim

// The event engine. Every scheduled action of the machine is one tagged
// event struct dispatched in Machine.exec — no per-event closures, no
// interface boxing through container/heap. Events are totally ordered by
// (time, sequence number), so the pop order is independent of the heap's
// internal shape: the 4-ary heap below pops exactly the sequence the old
// binary heap did, which is what lets the typed engine reproduce the
// closure engine's runs bit for bit.

// evKind tags one scheduled engine action.
type evKind uint8

const (
	// evStep resumes processor p at its current instruction pointer (used
	// for sync-op issue cost, scheduling overhead, stale-read re-checks and
	// waiter releases).
	evStep evKind = iota
	// evDispatch hands processor p its next self-scheduled iteration.
	evDispatch
	// evCompute completes compute op `op` on p: run semantics, record the
	// access batch, continue stepping.
	evCompute
	// evMemWrite completes a memory-module write of op on p: free the
	// module port, commit the value to v, wake pollers, continue stepping.
	evMemWrite
	// evRMW completes a memory-module read-modify-write of op on p.
	evRMW
	// evPoll completes one busy-wait probe of memory variable v by p.
	evPoll
	// evRelease performs a deferred (stale-read-lagged) release of waiter w
	// on register variable v.
	evRelease
	// evCommit commits bus entry e (zero-latency bus with an injected
	// broadcast delay).
	evCommit
	// evBusDone finishes e's broadcast: commit it, free the bus, start the
	// next queued broadcast.
	evBusDone
	// evDupCommit delivers an injected duplicate of value val to v.
	evDupCommit
	// evTornSecond lands the second half of a torn two-field commit of e;
	// val carries the intermediate word the first half exposed.
	evTornSecond
	// evReclaim reclaims halted processor p's PC ownership (recovery).
	evReclaim
)

// event is one scheduled engine action: a timestamp, a tie-breaking
// sequence number, the action kind, and the operands the kind needs. The
// operand fields form a small union — each kind reads only its own subset —
// so scheduling an event allocates nothing.
type event struct {
	t, seq int64
	kind   evKind
	p      *proc
	op     *Op
	v      *syncVar
	e      *busEntry
	w      *blockedWait
	val    int64
}

// eventBefore is the total event order: time, then issue sequence.
func eventBefore(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventQ is an inlined 4-ary min-heap of events. 4-ary halves the tree
// depth of a binary heap (fewer cache lines touched per push/pop on the
// drain loop's hot path) and needs no interface dispatch; the backing
// array is reused for the whole run.
type eventQ struct {
	a []event
}

func (q *eventQ) len() int { return len(q.a) }

func (q *eventQ) push(e event) {
	q.a = append(q.a, e)
	i := len(q.a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventBefore(&q.a[i], &q.a[parent]) {
			break
		}
		q.a[i], q.a[parent] = q.a[parent], q.a[i]
		i = parent
	}
}

func (q *eventQ) pop() event {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a[n] = event{} // clear pointers so popped operands aren't pinned
	q.a = q.a[:n]
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventBefore(&q.a[c], &q.a[best]) {
				best = c
			}
		}
		if !eventBefore(&q.a[best], &q.a[i]) {
			break
		}
		q.a[i], q.a[best] = q.a[best], q.a[i]
		i = best
	}
	return top
}

// post schedules ev at time t, stamping the global tie-break sequence.
func (m *Machine) post(t int64, ev event) {
	ev.t = t
	ev.seq = m.seq
	m.seq++
	m.events.push(ev)
}

// exec dispatches one popped event. The switch replaces the closure call of
// the old engine; each arm reproduces its closure's body exactly, in the
// same order, so runs are bit-identical to the pre-typed engine.
func (m *Machine) exec(ev *event) {
	switch ev.kind {
	case evStep:
		m.step(ev.p)

	case evDispatch:
		m.dispatch(ev.p)

	case evCompute:
		if ev.op.Exec != nil {
			ev.op.Exec()
		}
		m.recordAccess(ev.p, ev.op)
		m.step(ev.p)

	case evMemWrite:
		v := ev.v
		m.mods[v.module].jobs--
		if ev.op.Value > v.committed {
			v.committed = ev.op.Value
		}
		m.wake(v)
		if ev.op.Exec != nil {
			ev.op.Exec()
		}
		m.step(ev.p)

	case evRMW:
		v := ev.v
		m.mods[v.module].jobs--
		v.committed = ev.op.Apply(v.committed)
		m.recordSync(SyncEvent{Proc: ev.p.id, Iter: ev.p.iter, Kind: SyncSignal, Var: v.id, Value: v.committed, Tag: ev.op.Tag})
		m.wake(v)
		if ev.op.Exec != nil {
			ev.op.Exec()
		}
		m.step(ev.p)

	case evPoll:
		v := ev.v
		m.mods[v.module].jobs--
		if v.committed >= ev.op.Value {
			p := ev.p
			p.waitSync += m.now - p.blockedSince
			m.addTrace(p, p.blockedSince, m.now, TraceWait, ev.op.Tag)
			m.recordSync(SyncEvent{Proc: p.id, Iter: p.iter, Kind: SyncWaitDone, Var: v.id, Value: ev.op.Value, Tag: ev.op.Tag})
			if ev.op.Exec != nil {
				ev.op.Exec()
			}
			p.ip++
			m.step(p)
			return
		}
		m.poll(ev.p, v, ev.op)

	case evRelease:
		m.release(ev.v, ev.w)

	case evCommit:
		m.commit(ev.e)

	case evBusDone:
		m.commit(ev.e)
		m.busActive = false
		if m.busHead < len(m.busQueue) {
			m.busStart()
		}

	case evDupCommit:
		// The duplicate delivery lands after the original; monotone sync
		// variables must absorb it without effect.
		if ev.val > ev.v.committed {
			ev.v.committed = ev.val
		}
		m.wake(ev.v)

	case evTornSecond:
		// Second half of a torn commit: the variable holds exactly the
		// written word unless a later write already advanced past it.
		e := ev.e
		v, final := e.v, e.pe.val
		if v.committed == ev.val || final > v.committed {
			v.committed = final
		}
		m.removePend(v, e.pe)
		m.wake(v)
		m.freeEntry(e)

	case evReclaim:
		m.reclaim(ev.p)
	}
}

// Per-run freelists. The commit loop churns through pending writes, bus
// entries and blocked waiters at event rate; recycling them keeps the hot
// path allocation-free after warm-up. The machine is single-goroutine, so
// plain slices beat sync.Pool here (no per-P caches, no GC victimization).

func (m *Machine) allocPending(proc int, val int64) *pending {
	if n := len(m.pendFree); n > 0 {
		pe := m.pendFree[n-1]
		m.pendFree[n-1] = nil
		m.pendFree = m.pendFree[:n-1]
		pe.proc, pe.val = proc, val
		return pe
	}
	return &pending{proc: proc, val: val}
}

func (m *Machine) freePending(pe *pending) {
	m.pendFree = append(m.pendFree, pe)
}

func (m *Machine) allocEntry(v *syncVar, pe *pending, tag string) *busEntry {
	if n := len(m.entryFree); n > 0 {
		e := m.entryFree[n-1]
		m.entryFree[n-1] = nil
		m.entryFree = m.entryFree[:n-1]
		*e = busEntry{v: v, pe: pe, tag: tag}
		return e
	}
	return &busEntry{v: v, pe: pe, tag: tag}
}

func (m *Machine) freeEntry(e *busEntry) {
	*e = busEntry{}
	m.entryFree = append(m.entryFree, e)
}

func (m *Machine) allocWait(p *proc, min int64, tag string) *blockedWait {
	if n := len(m.waitFree); n > 0 {
		w := m.waitFree[n-1]
		m.waitFree[n-1] = nil
		m.waitFree = m.waitFree[:n-1]
		w.p, w.min, w.tag = p, min, tag
		return w
	}
	return &blockedWait{p: p, min: min, tag: tag}
}

func (m *Machine) freeWait(w *blockedWait) {
	w.p, w.tag = nil, ""
	m.waitFree = append(m.waitFree, w)
}
