package sim

import (
	"fmt"
	"sort"
	"strings"
)

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceCompute TraceKind = iota // useful work
	TraceWait                     // blocked in a busy-wait
	TraceService                  // blocked in memory-module service
)

func (k TraceKind) String() string {
	switch k {
	case TraceCompute:
		return "compute"
	case TraceWait:
		return "wait"
	case TraceService:
		return "service"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one recorded interval of a processor's life.
type TraceEvent struct {
	Proc       int
	Iter       int64
	Start, End int64
	Kind       TraceKind
	Tag        string
}

// EnableTrace turns on event recording; call before Run*.
func (m *Machine) EnableTrace() { m.tracing = true }

// Trace returns the recorded events sorted by (start, proc).
func (m *Machine) Trace() []TraceEvent {
	out := append([]TraceEvent(nil), m.traceEvents...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

func (m *Machine) addTrace(p *proc, start, end int64, kind TraceKind, tag string) {
	if !m.tracing || end <= start {
		return
	}
	m.traceEvents = append(m.traceEvents, TraceEvent{
		Proc: p.id, Iter: p.iter, Start: start, End: end, Kind: kind, Tag: tag,
	})
}

// TraceTimeline renders the trace as one text lane per processor, scaled to
// the given width: '#' compute, '.' busy-wait, '~' module service.
func TraceTimeline(events []TraceEvent, procs int, cycles int64, width int) string {
	if width < 10 {
		width = 10
	}
	if cycles < 1 {
		cycles = 1
	}
	lanes := make([][]byte, procs)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(" ", width))
	}
	glyph := map[TraceKind]byte{TraceCompute: '#', TraceWait: '.', TraceService: '~'}
	at := func(t int64) int {
		c := int(t * int64(width) / cycles)
		if c >= width {
			c = width - 1
		}
		return c
	}
	// Compute wins over waits when intervals share a cell.
	order := []TraceKind{TraceWait, TraceService, TraceCompute}
	for _, kind := range order {
		for _, e := range events {
			if e.Kind != kind || e.Proc >= procs {
				continue
			}
			for c := at(e.Start); c <= at(e.End-1); c++ {
				lanes[e.Proc][c] = glyph[kind]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "0%*s%d cycles\n", width-1, "", cycles)
	for i, lane := range lanes {
		fmt.Fprintf(&b, "P%-2d |%s|\n", i, lane)
	}
	b.WriteString("     # compute   . busy-wait   ~ module service\n")
	return b.String()
}
