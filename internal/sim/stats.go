package sim

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/fault"
)

// ProcStats is one processor's cycle accounting. Busy covers computation,
// synchronization-op issue and scheduling overhead; WaitSync is time blocked
// in busy-waits; WaitMem is time blocked in memory-module service (queueing
// included); Idle is time after the processor ran out of work.
type ProcStats struct {
	Busy, WaitSync, WaitMem, Idle int64
}

// Stats summarizes one simulation run.
type Stats struct {
	// Cycles is the makespan: time of the last event.
	Cycles int64
	// Procs is the per-processor accounting.
	Procs []ProcStats
	// SyncOps counts synchronization operations issued (each wait counted
	// once regardless of spin duration; each write/RMW once).
	SyncOps int64
	// BusBroadcasts is the number of broadcasts that used the sync bus;
	// BusSaved the number elided by the write-coverage optimization.
	BusBroadcasts, BusSaved int64
	// ModuleAccesses counts memory-module requests (incl. busy-wait polls);
	// ModuleQueueWait is total cycles requests spent queued; MaxModuleQueue
	// the peak module backlog (the hot-spot indicator).
	ModuleAccesses, ModuleQueueWait int64
	MaxModuleQueue                  int
	// Polls counts busy-wait probes of memory-resident variables.
	Polls int64
	// Iterations is the total number of processes executed.
	Iterations int64
	// Faults counts the faults actually injected by the run's fault plan
	// (all zero when no plan is active).
	Faults fault.Counts
	// Recovery is the cycle-exact report of the ownership reclamation the
	// run performed, nil when none happened (recovery disarmed, or armed
	// but never needed).
	Recovery *RecoveryReport
}

// BusyTotal sums busy cycles over processors.
func (s Stats) BusyTotal() int64 {
	var t int64
	for _, p := range s.Procs {
		t += p.Busy
	}
	return t
}

// WaitSyncTotal sums busy-wait cycles over processors.
func (s Stats) WaitSyncTotal() int64 {
	var t int64
	for _, p := range s.Procs {
		t += p.WaitSync
	}
	return t
}

// WaitMemTotal sums module-blocked cycles over processors.
func (s Stats) WaitMemTotal() int64 {
	var t int64
	for _, p := range s.Procs {
		t += p.WaitMem
	}
	return t
}

// Utilization is the fraction of processor-cycles spent busy.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 || len(s.Procs) == 0 {
		return 0
	}
	return float64(s.BusyTotal()) / (float64(s.Cycles) * float64(len(s.Procs)))
}

// Speedup relates a serial baseline to this run's makespan.
func (s Stats) Speedup(serialCycles int64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(serialCycles) / float64(s.Cycles)
}

// CheckConservation verifies the accounting identity the engine maintains:
// for every processor, Busy + WaitSync + WaitMem + Idle == Cycles. It
// returns a descriptive error on the first violation (nil when the
// accounting balances), and is used by the property tests to catch any
// interval the engine failed to attribute.
func (s Stats) CheckConservation() error {
	for i, p := range s.Procs {
		total := p.Busy + p.WaitSync + p.WaitMem + p.Idle
		if total != s.Cycles {
			return fmt.Errorf("sim: processor %d accounts %d cycles (busy %d + waitSync %d + waitMem %d + idle %d) of %d",
				i, total, p.Busy, p.WaitSync, p.WaitMem, p.Idle, s.Cycles)
		}
	}
	return nil
}

// String renders a compact single-run summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d procs=%d util=%.3f syncOps=%d busTx=%d(saved %d) modAcc=%d maxQ=%d",
		s.Cycles, len(s.Procs), s.Utilization(), s.SyncOps, s.BusBroadcasts, s.BusSaved,
		s.ModuleAccesses, s.MaxModuleQueue)
	return b.String()
}
