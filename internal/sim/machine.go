package sim

import (
	"fmt"
	"math"
	"strings"

	"github.com/csrd-repro/datasync/internal/fault"
)

// Config describes the simulated machine.
type Config struct {
	// Processors is the number of processors P (required, >= 1).
	Processors int
	// BusLatency is the cycles one synchronization-bus broadcast occupies
	// the bus. 0 means writes commit (become globally visible) at issue.
	BusLatency int64
	// BusCoverage enables the paper's section-6 optimization: an issued
	// write is dropped if a later write to the same variable from the same
	// processor arrives before the former gains bus access.
	BusCoverage bool
	// MemLatency is the service time of one memory-module request
	// (defaults to 1).
	MemLatency int64
	// Modules is the number of single-ported memory modules (defaults to 1).
	Modules int
	// SyncOpCost is the local issue cost of a synchronization operation
	// (a write issue, or a satisfied wait check). Taken literally; 0 is free.
	SyncOpCost int64
	// SchedOverhead is the dispatch cost per iteration under
	// self-scheduling (grabbing the next index from the work queue).
	SchedOverhead int64
	// DataLatency is the time for a statement's array writes to become
	// visible in shared memory. The paper's correctness requirement (1)
	// (section 2.2) demands that a dependence source signal completion only
	// after this point; code generators insert a commit phase of this
	// length between a writing statement and its publication.
	DataLatency int64
	// MaxCycles aborts the simulation if exceeded, catching livelock
	// (defaults to 100,000,000).
	MaxCycles int64
	// Dispatch selects the self-scheduling order (RunLoop only). The
	// folded process-counter protocol is deadlock-free only when
	// iterations are dispatched in non-decreasing order (DispatchInOrder,
	// DispatchChunked); DispatchReversed exists to demonstrate the
	// scheduling-order hazard the paper's reference [23] studies.
	Dispatch Dispatch
	// ChunkSize is the iterations per dispatch under DispatchChunked
	// (defaults to 4). The scheduling overhead is paid once per chunk.
	ChunkSize int64
	// FaultPlan injects deterministic faults at the sync-bus and
	// memory-module hooks (see package fault). The zero value injects
	// nothing and leaves the simulation bit-for-bit identical to a build
	// without the fault layer.
	FaultPlan fault.Plan
	// Recover arms deterministic ownership reclamation for processors the
	// fault plan halts: the machine quarantines a silent processor, waits
	// Recover.AfterCycles, then reclaims its PC ownership, resumes the
	// orphan iteration where it stopped and folds the victim's unstarted
	// chunk residue onto the live processors. The zero value disables
	// recovery and is invisible (bit-identical run, identical cache canon).
	Recover Recover
}

// Dispatch is a self-scheduling policy.
type Dispatch int

// Dispatch policies.
const (
	// DispatchInOrder hands out iterations 1, 2, 3, ... one at a time.
	DispatchInOrder Dispatch = iota
	// DispatchChunked hands out consecutive chunks of ChunkSize
	// iterations, each executed in order.
	DispatchChunked
	// DispatchReversed hands out iterations from the last down — an
	// unsafe order that deadlocks dependent loops when P processors all
	// hold late iterations whose sources were never dispatched.
	DispatchReversed
)

func (d Dispatch) String() string {
	switch d {
	case DispatchInOrder:
		return "in-order"
	case DispatchChunked:
		return "chunked"
	case DispatchReversed:
		return "reversed"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// Check validates the configuration. Zero values of MemLatency, Modules,
// MaxCycles and ChunkSize keep their documented defaults; everything else
// out of range is an input error, reported rather than panicked so services
// and CLIs can refuse a bad request without crashing the process.
func (c Config) Check() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("sim: Processors must be >= 1 (got %d)", c.Processors)
	case c.BusLatency < 0:
		return fmt.Errorf("sim: BusLatency must be >= 0 (got %d)", c.BusLatency)
	case c.MemLatency < 0:
		return fmt.Errorf("sim: MemLatency must be >= 0 (got %d; 0 means the default of 1)", c.MemLatency)
	case c.Modules < 0:
		return fmt.Errorf("sim: Modules must be >= 0 (got %d; 0 means the default of 1)", c.Modules)
	case c.SyncOpCost < 0:
		return fmt.Errorf("sim: SyncOpCost must be >= 0 (got %d)", c.SyncOpCost)
	case c.SchedOverhead < 0:
		return fmt.Errorf("sim: SchedOverhead must be >= 0 (got %d)", c.SchedOverhead)
	case c.DataLatency < 0:
		return fmt.Errorf("sim: DataLatency must be >= 0 (got %d)", c.DataLatency)
	case c.MaxCycles < 0:
		return fmt.Errorf("sim: MaxCycles must be >= 0 (got %d; 0 means the default of 100,000,000)", c.MaxCycles)
	case c.ChunkSize < 0:
		return fmt.Errorf("sim: ChunkSize must be >= 0 (got %d; 0 means the default of 4)", c.ChunkSize)
	case c.Dispatch != DispatchInOrder && c.Dispatch != DispatchChunked && c.Dispatch != DispatchReversed:
		return fmt.Errorf("sim: unknown Dispatch policy %d", int(c.Dispatch))
	}
	if err := c.FaultPlan.Check(); err != nil {
		return err
	}
	if c.FaultPlan.SlowFactor >= 2 && c.FaultPlan.SlowProc >= c.Processors {
		return fmt.Errorf("sim: fault slowProc %d out of range for %d processors", c.FaultPlan.SlowProc, c.Processors)
	}
	if c.FaultPlan.HaltAtCycle >= 1 && c.FaultPlan.HaltProc >= c.Processors {
		return fmt.Errorf("sim: fault haltProc %d out of range for %d processors", c.FaultPlan.HaltProc, c.Processors)
	}
	if err := c.Recover.Check(); err != nil {
		return err
	}
	if c.Recover.Enabled() && c.Processors < 2 {
		return fmt.Errorf("sim: recovery needs at least 2 processors (got %d): with a single processor there is nobody left to reclaim ownership for", c.Processors)
	}
	return nil
}

func (c Config) normalized() Config {
	if err := c.Check(); err != nil {
		panic(err) // direct library misuse; Run entry points call Check first
	}
	if c.MemLatency == 0 {
		c.MemLatency = 1
	}
	if c.Modules == 0 {
		c.Modules = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 100_000_000
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 4
	}
	return c
}

// pending is an issued-but-uncommitted register write.
type pending struct {
	proc int
	val  int64
}

type syncVar struct {
	id        VarID
	name      string
	res       Residence
	module    int
	committed int64
	pend      []*pending // register writes in flight (bus queue + active)
	waiters   []*blockedWait
	// minWait is the smallest threshold among waiters (valid only when
	// waiters is non-empty). A commit below it cannot release anyone, so
	// wake can skip the waiter scan entirely — the batching invariant that
	// makes value-advancing commits O(1) per syncVar.
	minWait int64
}

// addWaiter parks w on v, maintaining the minWait frontier.
func (v *syncVar) addWaiter(w *blockedWait) {
	if len(v.waiters) == 0 || w.min < v.minWait {
		v.minWait = w.min
	}
	v.waiters = append(v.waiters, w)
}

// visibleTo returns the value processor p observes: the committed value,
// merged with p's own in-flight writes (a processor always sees its own
// writes in its local register image).
func (v *syncVar) visibleTo(p int) int64 {
	val := v.committed
	for _, pe := range v.pend {
		if pe.proc == p && pe.val > val {
			val = pe.val
		}
	}
	return val
}

type blockedWait struct {
	p   *proc
	min int64
	tag string
}

type module struct {
	busyUntil int64
	jobs      int
	accesses  int64
	queueWait int64
	maxQueue  int
}

// enqueue admits one request at time now and returns its service interval.
func (mo *module) enqueue(now, latency int64) (start, end int64) {
	start = now
	if mo.busyUntil > start {
		start = mo.busyUntil
	}
	end = start + latency
	mo.busyUntil = end
	mo.accesses++
	mo.queueWait += start - now
	mo.jobs++
	if mo.jobs > mo.maxQueue {
		mo.maxQueue = mo.jobs
	}
	return start, end
}

type busEntry struct {
	v     *syncVar
	pe    *pending
	tag   string
	seen  bool  // started broadcasting (no longer coverable)
	extra int64 // injected extra bus-hold cycles (fault delay)
	torn  *tornSplit
	dup   bool // injected duplicate delivery
}

// tornSplit describes an injected torn two-field commit: which half of the
// packed word lands first and how long until the second half.
type tornSplit struct {
	lowBits    int
	window     int64
	ownerFirst bool
}

type procState int

const (
	stateRunning procState = iota
	stateBlocked
	stateDone
)

type proc struct {
	id           int
	ops          []Op
	ip           int
	iter         int64
	state        procState
	blockedSince int64
	finishedAt   int64
	busy         int64
	waitSync     int64
	waitMem      int64
	iterations   int64

	// chunked dispatch: remaining iterations of the held chunk
	chunkNext, chunkEnd int64

	// recovery: halted/haltedAt note the first halt detection (the
	// quarantine clock — distinct from blockedSince, which a preceding
	// wait-release may already have charged); reclaimScheduled marks a
	// pending reclaim event; reclaimed marks a revived execution context
	// whose halt check is permanently bypassed (the processor is dead, but
	// its orphaned work continues on the recovery context it became).
	halted           bool
	haltedAt         int64
	reclaimScheduled bool
	reclaimed        bool
}

// Machine is one simulation instance. Declare synchronization variables,
// then call RunLoop or RunProcesses exactly once.
type Machine struct {
	cfg  Config
	mem  *Mem
	vars []*syncVar
	mods []*module

	// busQueue[busHead:] are the broadcasts waiting for the bus. Dequeue
	// advances busHead (nil-ing the vacated slot) instead of reslicing, so
	// the backing array is reused once the queue drains empty.
	busQueue  []*busEntry
	busHead   int
	busActive bool

	events eventQ
	now    int64
	seq    int64

	// Per-run freelists for the commit loop's transient objects.
	pendFree  []*pending
	entryFree []*busEntry
	waitFree  []*blockedWait

	procs     []*proc
	program   Program
	nextIter  int64
	lastIter  int64
	selfSched bool
	ran       bool
	err       error

	busIssued int64
	busSaved  int64
	syncOps   int64
	polls     int64

	inj         *fault.Injector // nil unless cfg.FaultPlan injects simulator faults
	staleChecks int64           // deterministic coordinate for stale-read rolls

	// recovery state: confiscated chunk spans awaiting redistribution,
	// reclamations performed, and the report of the last one.
	reassigned []iterSpan
	reclaims   int
	recovery   *RecoveryReport

	tracing     bool
	traceEvents []TraceEvent

	syncTracing bool
	syncTrace   []SyncEvent
}

// New builds a machine with the given configuration.
func New(cfg Config) *Machine {
	m := &Machine{cfg: cfg.normalized(), mem: NewMem()}
	if m.cfg.FaultPlan.SimEnabled() {
		m.inj = fault.NewInjector(m.cfg.FaultPlan)
	}
	return m
}

// Config returns the (normalized) machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mem returns the machine's data memory, for building workload programs.
func (m *Machine) Mem() *Mem { return m.mem }

// NewRegVar declares a synchronization-register variable (broadcast on the
// sync bus) with the given initial value.
func (m *Machine) NewRegVar(name string, init int64) VarID {
	id := VarID(len(m.vars))
	m.vars = append(m.vars, &syncVar{id: id, name: name, res: Register, committed: init})
	return id
}

// NewMemVar declares a memory-resident synchronization variable in the
// given module.
func (m *Machine) NewMemVar(name string, mod int, init int64) VarID {
	if mod < 0 || mod >= m.cfg.Modules {
		panic(fmt.Sprintf("sim: module %d out of range [0,%d)", mod, m.cfg.Modules))
	}
	id := VarID(len(m.vars))
	m.vars = append(m.vars, &syncVar{id: id, name: name, res: Memory, module: mod, committed: init})
	return id
}

// VarValue returns a variable's committed value (for post-run assertions).
func (m *Machine) VarValue(v VarID) int64 { return m.vars[v].committed }

// RunLoop executes iterations 1..iters of the program on the machine's
// processors under in-order self-scheduling and returns the run statistics.
func (m *Machine) RunLoop(iters int64, prog Program) (Stats, error) {
	m.startRun()
	m.selfSched = true
	m.program = prog
	m.nextIter, m.lastIter = 1, iters
	if m.cfg.Dispatch == DispatchReversed {
		m.nextIter = iters
	}
	for _, p := range m.procs {
		m.post(0, event{kind: evDispatch, p: p})
	}
	return m.drain()
}

// RunProcesses executes exactly one fixed program per processor (no
// scheduling), as in the barrier and FFT experiments where process == processor.
func (m *Machine) RunProcesses(progs [][]Op) (Stats, error) {
	if len(progs) != m.cfg.Processors {
		return Stats{}, fmt.Errorf("sim: %d programs for %d processors", len(progs), m.cfg.Processors)
	}
	m.startRun()
	for i, p := range m.procs {
		p.ops = progs[i]
		p.iterations = 1
		m.post(0, event{kind: evStep, p: p})
	}
	return m.drain()
}

func (m *Machine) startRun() {
	if m.ran {
		panic("sim: Machine can run only once")
	}
	m.ran = true
	m.procs = make([]*proc, m.cfg.Processors)
	m.mods = make([]*module, m.cfg.Modules)
	for i := range m.mods {
		m.mods[i] = &module{}
	}
	for i := range m.procs {
		// chunkNext > chunkEnd marks "no chunk held".
		m.procs[i] = &proc{id: i, state: stateRunning, chunkNext: 1, chunkEnd: 0}
	}
}

func (m *Machine) drain() (Stats, error) {
	maxed := false
	for m.events.len() > 0 && m.err == nil {
		ev := m.events.pop()
		if ev.t > m.cfg.MaxCycles {
			maxed = true
			m.err = fmt.Errorf("sim: exceeded MaxCycles=%d (livelock?)", m.cfg.MaxCycles)
			break
		}
		m.now = ev.t
		m.exec(&ev)
	}
	if m.err == nil {
		if blocked := m.blockedReport(); blocked != "" {
			m.err = fmt.Errorf("sim: deadlock at cycle %d:\n%s", m.now, blocked)
		}
	}
	if m.err != nil && m.inj != nil {
		// Under an active fault plan a bare deadlock/livelock message is
		// not enough: wrap it in the structured stall diagnosis.
		m.err = m.stallError(m.err, maxed)
	}
	return m.collectStats(), m.err
}

func (m *Machine) blockedReport() string {
	var b strings.Builder
	for _, p := range m.procs {
		if p.state == stateBlocked {
			op := "?"
			if p.ip < len(p.ops) {
				op = m.describeOp(p.ops[p.ip])
			}
			fmt.Fprintf(&b, "  proc %d iter %d blocked since %d on %s\n", p.id, p.iter, p.blockedSince, op)
		}
	}
	return b.String()
}

func (m *Machine) describeOp(op Op) string {
	s := op.String()
	if int(op.Var) < len(m.vars) && (op.Kind == OpWait || op.Kind == OpWrite || op.Kind == OpRMW) {
		s += fmt.Sprintf(" [%s=%d]", m.vars[op.Var].name, m.vars[op.Var].committed)
	}
	return s
}

// dispatch hands the next loop iteration to an idle processor according to
// the configured self-scheduling policy.
func (m *Machine) dispatch(p *proc) {
	var it int64
	overhead := int64(0)
	switch m.cfg.Dispatch {
	case DispatchChunked:
		if p.chunkNext > p.chunkEnd {
			switch {
			case len(m.reassigned) > 0:
				// Confiscated residue of a reclaimed processor is served
				// before fresh chunks: those are the lowest-numbered pending
				// iterations, so redistribution keeps the dispatch order
				// non-decreasing (the deadlock-freedom requirement).
				span := m.reassigned[0]
				m.reassigned = m.reassigned[1:]
				p.chunkNext, p.chunkEnd = span.lo, span.hi
			case m.nextIter > m.lastIter:
				p.state = stateDone
				p.finishedAt = m.now
				return
			default:
				lo := m.nextIter
				hi := lo + m.cfg.ChunkSize - 1
				if hi > m.lastIter {
					hi = m.lastIter
				}
				m.nextIter = hi + 1
				p.chunkNext, p.chunkEnd = lo, hi
			}
			overhead = m.cfg.SchedOverhead // paid once per chunk
		}
		it = p.chunkNext
		p.chunkNext++
	case DispatchReversed:
		if m.nextIter < 1 {
			p.state = stateDone
			p.finishedAt = m.now
			return
		}
		it = m.nextIter
		m.nextIter--
		overhead = m.cfg.SchedOverhead
	default:
		if m.nextIter > m.lastIter {
			p.state = stateDone
			p.finishedAt = m.now
			return
		}
		it = m.nextIter
		m.nextIter++
		overhead = m.cfg.SchedOverhead
	}
	p.iter = it
	p.iterations++
	p.ops = m.program(it)
	p.ip = 0
	if overhead > 0 {
		p.busy += overhead
		m.post(m.now+overhead, event{kind: evStep, p: p})
		return
	}
	m.step(p)
}

// step advances a processor from the current time until it blocks,
// schedules a future event, or finishes.
func (m *Machine) step(p *proc) {
	if m.inj != nil && !p.reclaimed && m.inj.Halted(p.id, m.now) {
		// The processor is dead: it never executes another op. It stays
		// blocked so the drain-time diagnosis can name it and everything
		// transitively depending on it. With recovery armed, its PC
		// ownership is reclaimed AfterCycles later instead. A stray event
		// may re-step a halted processor; only the first halt sets the
		// quarantine clock.
		if !p.halted {
			p.halted = true
			p.haltedAt = m.now
			p.state = stateBlocked
			p.blockedSince = m.now
		}
		if m.cfg.Recover.Enabled() {
			m.scheduleReclaim(p)
		}
		return
	}
	p.state = stateRunning
	for {
		if p.ip >= len(p.ops) {
			if m.selfSched {
				m.dispatch(p)
				return
			}
			p.state = stateDone
			p.finishedAt = m.now
			return
		}
		op := &p.ops[p.ip]
		switch op.Kind {
		case OpCompute:
			p.ip++
			cycles := op.Cycles
			if m.inj != nil {
				cycles += m.inj.SlowExtra(p.id, op.Cycles)
			}
			p.busy += cycles
			if cycles == 0 {
				if op.Exec != nil {
					op.Exec()
				}
				m.recordAccess(p, op)
				continue
			}
			m.addTrace(p, m.now, m.now+cycles, TraceCompute, op.Tag)
			m.post(m.now+cycles, event{kind: evCompute, p: p, op: op})
			return

		case OpWrite:
			v := m.vars[op.Var]
			m.syncOps++
			// Signals are recorded at issue time: the writer's knowledge at
			// the moment of the write is the happens-before point a released
			// waiter inherits, and a local waiter may observe the write
			// before its broadcast commits.
			m.recordSync(SyncEvent{Proc: p.id, Iter: p.iter, Kind: SyncSignal, Var: v.id, Value: op.Value, Tag: op.Tag})
			if v.res == Register {
				m.busIssue(v, op.Value, p.id, op.Tag)
				if op.Exec != nil {
					op.Exec()
				}
				p.ip++
				p.busy += m.cfg.SyncOpCost
				if m.cfg.SyncOpCost > 0 {
					m.post(m.now+m.cfg.SyncOpCost, event{kind: evStep, p: p})
					return
				}
				continue
			}
			// Memory write: blocks through the module queue.
			_, end := m.mods[v.module].enqueue(m.now, m.memLatency(v.module, p.id))
			m.addTrace(p, m.now, end, TraceService, op.Tag)
			p.waitMem += end - m.now
			p.ip++
			p.state = stateBlocked
			p.blockedSince = m.now
			m.post(end, event{kind: evMemWrite, p: p, op: op, v: v})
			return

		case OpWait:
			v := m.vars[op.Var]
			m.syncOps++
			if v.visibleTo(p.id) >= op.Value {
				if m.inj != nil && v.res == Register {
					m.staleChecks++
					if d := m.inj.StaleRead(m.staleChecks, p.id, int64(v.id)); d > 0 {
						// The local register image lags the bus: the
						// processor keeps spinning on the stale value for d
						// cycles, then re-executes the wait.
						p.state = stateBlocked
						p.blockedSince = m.now
						p.waitSync += d
						m.addTrace(p, m.now, m.now+d, TraceWait, op.Tag)
						m.post(m.now+d, event{kind: evStep, p: p})
						return
					}
				}
				m.recordSync(SyncEvent{Proc: p.id, Iter: p.iter, Kind: SyncWaitDone, Var: v.id, Value: op.Value, Tag: op.Tag})
				if op.Exec != nil {
					op.Exec()
				}
				p.ip++
				p.busy += m.cfg.SyncOpCost
				if m.cfg.SyncOpCost > 0 {
					m.post(m.now+m.cfg.SyncOpCost, event{kind: evStep, p: p})
					return
				}
				continue
			}
			p.state = stateBlocked
			p.blockedSince = m.now
			if v.res == Register {
				// Spin on the local register image: woken by commit.
				v.addWaiter(m.allocWait(p, op.Value, op.Tag))
				return
			}
			// Poll through the memory module: each probe is a module access.
			m.poll(p, v, op)
			return

		case OpWriteIf:
			v := m.vars[op.Var]
			m.syncOps++
			if v.res != Register {
				panic(fmt.Sprintf("sim: conditional write on memory variable %s", v.name))
			}
			if op.Cond(v.visibleTo(p.id)) {
				m.recordSync(SyncEvent{Proc: p.id, Iter: p.iter, Kind: SyncSignal, Var: v.id, Value: op.Value, Tag: op.Tag})
				m.busIssue(v, op.Value, p.id, op.Tag)
			}
			if op.Exec != nil {
				op.Exec()
			}
			p.ip++
			p.busy += m.cfg.SyncOpCost
			if m.cfg.SyncOpCost > 0 {
				m.post(m.now+m.cfg.SyncOpCost, event{kind: evStep, p: p})
				return
			}
			continue

		case OpRMW:
			v := m.vars[op.Var]
			m.syncOps++
			if v.res != Memory {
				panic(fmt.Sprintf("sim: RMW on register variable %s", v.name))
			}
			_, end := m.mods[v.module].enqueue(m.now, m.memLatency(v.module, p.id))
			m.addTrace(p, m.now, end, TraceService, op.Tag)
			p.waitMem += end - m.now
			p.ip++
			p.state = stateBlocked
			p.blockedSince = m.now
			m.post(end, event{kind: evRMW, p: p, op: op, v: v})
			return

		default:
			panic(fmt.Sprintf("sim: unknown op kind %d", op.Kind))
		}
	}
}

// memLatency returns the service time for the next access to module mod,
// including any injected slow-bank delay.
func (m *Machine) memLatency(mod, procID int) int64 {
	lat := m.cfg.MemLatency
	if m.inj != nil {
		lat += m.inj.ModuleDelay(m.mods[mod].accesses, mod, procID)
	}
	return lat
}

// poll issues one busy-wait probe of a memory variable through its module.
func (m *Machine) poll(p *proc, v *syncVar, op *Op) {
	m.polls++
	_, end := m.mods[v.module].enqueue(m.now, m.memLatency(v.module, p.id))
	m.post(end, event{kind: evPoll, p: p, op: op, v: v})
}

// wake resumes register waiters whose condition a commit has satisfied. The
// minWait frontier makes the common case — a commit that advances the value
// but releases nobody — O(1): the waiter list is only scanned when the
// committed value actually crosses some waiter's threshold, so a same-cycle
// burst of commits touches each syncVar's waiters at most once per
// releasing commit. Survivors are filtered in place over v.waiters[:0] and
// the vacated tail is nil-ed so released waiters aren't pinned by the
// backing array.
func (m *Machine) wake(v *syncVar) {
	if len(v.waiters) == 0 || v.committed < v.minWait {
		return
	}
	kept := v.waiters[:0]
	newMin := int64(math.MaxInt64)
	for _, w := range v.waiters {
		if v.committed >= w.min {
			if m.inj != nil {
				m.staleChecks++
				if d := m.inj.StaleRead(m.staleChecks, w.p.id, int64(v.id)); d > 0 {
					// The waiter's local register image lags this commit:
					// it keeps spinning on the stale value for d cycles
					// before observing the release.
					m.post(m.now+d, event{kind: evRelease, v: v, w: w})
					continue
				}
			}
			m.release(v, w)
		} else {
			kept = append(kept, w)
			if w.min < newMin {
				newMin = w.min
			}
		}
	}
	tail := v.waiters[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	v.waiters = kept
	v.minWait = newMin
}

// release resumes one satisfied register waiter, charging the full blocked
// interval (including any injected stale-read lag) to WaitSync. The waiter
// has already left v.waiters (wake removed it), so its record is recycled
// here.
func (m *Machine) release(v *syncVar, w *blockedWait) {
	p := w.p
	p.waitSync += m.now - p.blockedSince
	m.addTrace(p, p.blockedSince, m.now, TraceWait, w.tag)
	m.recordSync(SyncEvent{Proc: p.id, Iter: p.iter, Kind: SyncWaitDone, Var: v.id, Value: w.min, Tag: w.tag})
	p.ip++
	m.post(m.now, event{kind: evStep, p: p})
	m.freeWait(w)
}

// busIssue posts a register write on the synchronization bus.
func (m *Machine) busIssue(v *syncVar, val int64, procID int, tag string) {
	seq := m.busIssued
	m.busIssued++
	if m.cfg.BusCoverage {
		// A queued-but-unstarted broadcast of the same variable from the
		// same processor is covered by this newer write.
		for _, e := range m.busQueue[m.busHead:] {
			if !e.seen && e.v == v && e.pe.proc == procID {
				e.pe.val = val
				e.tag = tag
				m.busSaved++
				return
			}
		}
	}
	pe := m.allocPending(procID, val)
	v.pend = append(v.pend, pe)
	e := m.allocEntry(v, pe, tag)
	if m.inj != nil {
		if m.inj.DropBroadcast(seq, procID, int64(v.id)) {
			// The broadcast is lost: the writer keeps its local image (the
			// pend entry) but no commit ever happens, so remote waiters on
			// this value starve. The drain-time diagnosis attributes the
			// resulting stall to this drop. The pend entry must outlive the
			// run (it IS the local image); only the bus entry is recycled.
			m.freeEntry(e)
			return
		}
		e.extra = m.inj.DelayBroadcast(seq, procID, int64(v.id))
		if lb, win, of, torn := m.inj.TornUpdate(seq, procID, int64(v.id)); torn {
			e.torn = &tornSplit{lowBits: lb, window: win, ownerFirst: of}
		} else {
			e.dup = m.inj.DupBroadcast(seq, procID, int64(v.id))
		}
	}
	if m.cfg.BusLatency == 0 {
		if e.extra > 0 {
			m.post(m.now+e.extra, event{kind: evCommit, e: e})
			return
		}
		m.commit(e)
		return
	}
	m.busQueue = append(m.busQueue, e)
	if !m.busActive {
		m.busStart()
	}
}

func (m *Machine) busStart() {
	e := m.busQueue[m.busHead]
	m.busQueue[m.busHead] = nil
	m.busHead++
	if m.busHead == len(m.busQueue) {
		m.busQueue = m.busQueue[:0]
		m.busHead = 0
	}
	e.seen = true
	m.busActive = true
	m.post(m.now+m.cfg.BusLatency+e.extra, event{kind: evBusDone, e: e})
}

// commit makes a register write globally visible and wakes waiters.
func (m *Machine) commit(e *busEntry) {
	if e.torn != nil {
		m.commitTorn(e)
		return
	}
	v, val := e.v, e.pe.val
	if val > v.committed {
		v.committed = val
	}
	m.removePend(v, e.pe)
	m.wake(v)
	if e.dup {
		// The duplicate delivery lands one cycle later; monotone sync
		// variables must absorb it without effect. The value rides in the
		// event itself, so the entry can be recycled now.
		m.post(m.now+1, event{kind: evDupCommit, v: v, val: val})
	}
	m.freeEntry(e)
}

// commitTorn commits an injected torn two-field <owner,step> update: one
// half of the packed word lands now, the other after the split window. The
// writer's pend entry is kept until the second half, so only remote images
// observe the intermediate value — as on a bus whose two-word write was
// split. Step-first tears are the order paper §6 proves safe; owner-first
// tears expose <newOwner, oldStep>, which can release waiters early and may
// even move the committed value downward when the second half lands.
func (m *Machine) commitTorn(e *busEntry) {
	v := e.v
	final := e.pe.val
	mask := int64(1)<<e.torn.lowBits - 1
	old := v.committed
	var first int64
	if e.torn.ownerFirst {
		first = (final &^ mask) | (old & mask) // new owner, stale step
	} else {
		first = (old &^ mask) | (final & mask) // stale owner, new step
	}
	if first > v.committed {
		v.committed = first
	}
	m.wake(v)
	// The second half (evTornSecond) carries the intermediate word in the
	// event and finds the final word through e.pe, which stays parked until
	// the split completes.
	m.post(m.now+e.torn.window, event{kind: evTornSecond, e: e, val: first})
}

// removePend unparks a committed write. visibleTo takes a max over pend, so
// order is irrelevant: swap-remove, and nil the vacated tail slot so the
// backing array doesn't pin the recycled entry.
func (m *Machine) removePend(v *syncVar, pe *pending) {
	for i, q := range v.pend {
		if q == pe {
			last := len(v.pend) - 1
			v.pend[i] = v.pend[last]
			v.pend[last] = nil
			v.pend = v.pend[:last]
			m.freePending(pe)
			return
		}
	}
}

func (m *Machine) collectStats() Stats {
	s := Stats{Cycles: m.now, SyncOps: m.syncOps, Polls: m.polls,
		BusBroadcasts: m.busIssued - m.busSaved, BusSaved: m.busSaved}
	s.Procs = make([]ProcStats, len(m.procs))
	for i, p := range m.procs {
		idle := int64(0)
		if p.state == stateDone {
			idle = m.now - p.finishedAt
		}
		s.Procs[i] = ProcStats{Busy: p.busy, WaitSync: p.waitSync, WaitMem: p.waitMem, Idle: idle}
		s.Iterations += p.iterations
	}
	for _, mo := range m.mods {
		s.ModuleAccesses += mo.accesses
		s.ModuleQueueWait += mo.queueWait
		if mo.maxQueue > s.MaxModuleQueue {
			s.MaxModuleQueue = mo.maxQueue
		}
	}
	if m.inj != nil {
		s.Faults = m.inj.Counts()
	}
	s.Recovery = m.recovery
	return s
}

// ExecSerial executes the program's compute semantics serially in iteration
// order (sync ops skipped) and returns total compute cycles — the serial
// baseline and the oracle for serial equivalence. By convention, workload
// semantics live only on OpCompute ops.
func ExecSerial(iters int64, prog Program) int64 {
	var total int64
	for i := int64(1); i <= iters; i++ {
		for _, op := range prog(i) {
			if op.Kind == OpCompute {
				total += op.Cycles
				if op.Exec != nil {
					op.Exec()
				}
			}
		}
	}
	return total
}
