package sim

import (
	"math/rand"
	"testing"
)

// randomTerminatingRun builds and runs a random producer-chain program
// whose waits are all eventually satisfied: processors increment a shared
// chain variable in turn, with random compute, sync and memory ops mixed
// in. It returns the run statistics.
func randomTerminatingRun(t *testing.T, rng *rand.Rand) Stats {
	t.Helper()
	p := 1 + rng.Intn(5)
	cfg := Config{
		Processors:  p,
		BusLatency:  int64(rng.Intn(4)),
		BusCoverage: rng.Intn(2) == 0,
		MemLatency:  int64(1 + rng.Intn(3)),
		Modules:     1 + rng.Intn(3),
		SyncOpCost:  int64(rng.Intn(2)),
	}
	m := New(cfg)
	chain := m.NewRegVar("chain", 0)
	memVar := m.NewMemVar("mem", 0, 0)
	progs := make([][]Op, p)
	// Processor k waits for chain >= k, does random work, sets chain k+1.
	for k := 0; k < p; k++ {
		var ops []Op
		if k > 0 {
			ops = append(ops, WaitGE(chain, int64(k), "chain-wait"))
		}
		for extra := rng.Intn(4); extra > 0; extra-- {
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, Compute(int64(rng.Intn(9)), nil, "work"))
			case 1:
				ops = append(ops, WriteVar(memVar, int64(k+1), "mem-write"))
			case 2:
				ops = append(ops, RMW(memVar, func(x int64) int64 { return x + 1 }, "mem-rmw"))
			}
		}
		ops = append(ops, WriteVar(chain, int64(k+1), "chain-advance"))
		progs[k] = ops
	}
	stats, err := m.RunProcesses(progs)
	if err != nil {
		t.Fatalf("random run failed: %v", err)
	}
	return stats
}

// TestCycleConservationProperty: every processor's time is fully accounted
// as busy, waiting or idle across random machines and programs.
func TestCycleConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		stats := randomTerminatingRun(t, rng)
		if err := stats.CheckConservation(); err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, stats)
		}
	}
}

// TestCycleConservationSelfScheduled: the identity also holds under
// self-scheduling with dispatch overhead and polling waits.
func TestCycleConservationSelfScheduled(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.Intn(4)
		cfg := Config{
			Processors:    p,
			BusLatency:    int64(rng.Intn(3)),
			MemLatency:    int64(1 + rng.Intn(3)),
			SyncOpCost:    int64(rng.Intn(2)),
			SchedOverhead: int64(rng.Intn(3)),
		}
		if rng.Intn(2) == 0 {
			cfg.Dispatch = DispatchChunked
			cfg.ChunkSize = int64(1 + rng.Intn(5))
		}
		m := New(cfg)
		v := m.NewRegVar("pc", 0)
		mv := m.NewMemVar("flag", 0, 0)
		n := int64(5 + rng.Intn(20))
		costs := make([]int64, n+1)
		for i := range costs {
			costs[i] = int64(1 + rng.Intn(7))
		}
		stats, err := m.RunLoop(n, func(iter int64) []Op {
			ops := []Op{
				WaitGE(v, iter-1, "pred"),
				Compute(costs[iter], nil, "body"),
				WriteVar(v, iter, "adv"),
			}
			if iter == n/2 {
				ops = append(ops, WriteVar(mv, 1, "flag-set"))
			}
			if iter == n { // polling wait on the memory flag
				ops = append(ops, WaitGE(mv, 1, "flag-poll"))
			}
			return ops
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := stats.CheckConservation(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
