// Package sim implements a deterministic discrete-event simulator of a
// small-scale shared-memory multiprocessor in the style the paper assumes
// (Alliant FX/8, Cray X-MP class): P processors, a dedicated synchronization
// bus that broadcasts synchronization-register writes to per-processor local
// images (section 6), and interleaved single-ported memory modules with FIFO
// service queues (for data-oriented keys and barrier hot-spot studies).
//
// Programs are sequences of Ops per process (loop iteration). Busy-waiting
// is the synchronization model throughout, per the paper: waits on
// synchronization registers spin on the local image (no traffic; the
// simulator wakes them event-driven when a broadcast commits), while waits
// on memory-resident variables generate polling traffic through the module
// queue — which is exactly what creates the hot spot a counter barrier
// suffers from.
//
// The simulator is deterministic: identical inputs produce identical cycle
// counts, so tests assert exact numbers. Statement semantics (Exec
// callbacks) run at op completion in global event order, which lets tests
// check serial equivalence: a synchronization scheme that fails to enforce
// a dependence produces different array contents than serial execution.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Array is a one-dimensional model array with inclusive bounds [Lo, Hi].
type Array struct {
	Name   string
	Lo, Hi int64
	vals   []int64
}

// NewArray allocates an array covering [lo, hi], zero-initialized.
func NewArray(name string, lo, hi int64) *Array {
	if hi < lo {
		panic(fmt.Sprintf("sim: array %s has empty range [%d,%d]", name, lo, hi))
	}
	return &Array{Name: name, Lo: lo, Hi: hi, vals: make([]int64, hi-lo+1)}
}

// Get reads element i; out-of-range access panics (workloads must allocate
// explicit margins, mirroring Fortran array declarations).
func (a *Array) Get(i int64) int64 {
	return a.vals[a.slot(i)]
}

// Set writes element i.
func (a *Array) Set(i, v int64) {
	a.vals[a.slot(i)] = v
}

func (a *Array) slot(i int64) int64 {
	if i < a.Lo || i > a.Hi {
		panic(fmt.Sprintf("sim: array %s index %d out of range [%d,%d]", a.Name, i, a.Lo, a.Hi))
	}
	return i - a.Lo
}

// Len returns the number of elements.
func (a *Array) Len() int64 { return a.Hi - a.Lo + 1 }

// Grid is a two-dimensional model array with inclusive bounds.
type Grid struct {
	Name           string
	Lo1, Hi1       int64
	Lo2, Hi2       int64
	vals           []int64
	cols, elements int64
}

// NewGrid allocates a grid covering [lo1,hi1] x [lo2,hi2], zero-initialized.
func NewGrid(name string, lo1, hi1, lo2, hi2 int64) *Grid {
	if hi1 < lo1 || hi2 < lo2 {
		panic(fmt.Sprintf("sim: grid %s has empty range", name))
	}
	cols := hi2 - lo2 + 1
	n := (hi1 - lo1 + 1) * cols
	return &Grid{Name: name, Lo1: lo1, Hi1: hi1, Lo2: lo2, Hi2: hi2,
		vals: make([]int64, n), cols: cols, elements: n}
}

// Get reads element (i,j).
func (g *Grid) Get(i, j int64) int64 { return g.vals[g.slot(i, j)] }

// Set writes element (i,j).
func (g *Grid) Set(i, j, v int64) { g.vals[g.slot(i, j)] = v }

func (g *Grid) slot(i, j int64) int64 {
	if i < g.Lo1 || i > g.Hi1 || j < g.Lo2 || j > g.Hi2 {
		panic(fmt.Sprintf("sim: grid %s index (%d,%d) out of range", g.Name, i, j))
	}
	return (i-g.Lo1)*g.cols + (j - g.Lo2)
}

// Len returns the number of elements.
func (g *Grid) Len() int64 { return g.elements }

// Mem is the model data memory: named arrays and grids plus a scalar pool.
// It is the workload state the serial-equivalence oracle compares.
type Mem struct {
	arrays  map[string]*Array
	grids   map[string]*Grid
	scalars map[string]int64
}

// NewMem returns an empty memory.
func NewMem() *Mem {
	return &Mem{
		arrays:  make(map[string]*Array),
		grids:   make(map[string]*Grid),
		scalars: make(map[string]int64),
	}
}

// Array declares (or returns the existing) array with the given bounds.
func (m *Mem) Array(name string, lo, hi int64) *Array {
	if a, ok := m.arrays[name]; ok {
		if a.Lo != lo || a.Hi != hi {
			panic(fmt.Sprintf("sim: array %s redeclared with different bounds", name))
		}
		return a
	}
	a := NewArray(name, lo, hi)
	m.arrays[name] = a
	return a
}

// Grid declares (or returns the existing) grid with the given bounds.
func (m *Mem) Grid(name string, lo1, hi1, lo2, hi2 int64) *Grid {
	if g, ok := m.grids[name]; ok {
		return g
	}
	g := NewGrid(name, lo1, hi1, lo2, hi2)
	m.grids[name] = g
	return g
}

// Lookup returns a previously declared array, or nil.
func (m *Mem) Lookup(name string) *Array { return m.arrays[name] }

// LookupGrid returns a previously declared grid, or nil.
func (m *Mem) LookupGrid(name string) *Grid { return m.grids[name] }

// SetScalar stores a named scalar.
func (m *Mem) SetScalar(name string, v int64) { m.scalars[name] = v }

// Scalar reads a named scalar (zero if unset).
func (m *Mem) Scalar(name string) int64 { return m.scalars[name] }

// AddScalar accumulates into a named scalar.
func (m *Mem) AddScalar(name string, v int64) { m.scalars[name] += v }

// Diff compares two memories and returns a human-readable description of
// the first differences found ("" when identical). Used by the
// serial-equivalence oracle.
func (m *Mem) Diff(other *Mem) string {
	var b strings.Builder
	const maxReport = 8
	reports := 0
	report := func(format string, args ...any) {
		if reports < maxReport {
			fmt.Fprintf(&b, format, args...)
		}
		reports++
	}
	for _, name := range sortedKeys(m.arrays) {
		a, oa := m.arrays[name], other.arrays[name]
		if oa == nil {
			report("array %s missing in other\n", name)
			continue
		}
		for i := a.Lo; i <= a.Hi; i++ {
			if a.Get(i) != oa.Get(i) {
				report("%s[%d]: %d vs %d\n", name, i, a.Get(i), oa.Get(i))
			}
		}
	}
	for _, name := range sortedKeys(m.grids) {
		g, og := m.grids[name], other.grids[name]
		if og == nil {
			report("grid %s missing in other\n", name)
			continue
		}
		for i := g.Lo1; i <= g.Hi1; i++ {
			for j := g.Lo2; j <= g.Hi2; j++ {
				if g.Get(i, j) != og.Get(i, j) {
					report("%s[%d,%d]: %d vs %d\n", name, i, j, g.Get(i, j), og.Get(i, j))
				}
			}
		}
	}
	for _, name := range sortedKeys(m.scalars) {
		if m.scalars[name] != other.scalars[name] {
			report("scalar %s: %d vs %d\n", name, m.scalars[name], other.scalars[name])
		}
	}
	if reports > maxReport {
		fmt.Fprintf(&b, "... and %d more differences\n", reports-maxReport)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
