package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/fault"
)

// TestRecoverHealsHaltedChain: the same halt that deadlocks the chain in
// TestFaultHaltDiagnosed completes when recovery is armed — the orphan
// iteration resumes where the dead processor stopped, the result is exact,
// and the report is cycle-accurate.
func TestRecoverHealsHaltedChain(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 1, SyncOpCost: 1,
		FaultPlan: fault.Plan{HaltProc: 0, HaltAtCycle: 5},
		Recover:   Recover{AfterCycles: 40}})
	v := m.NewRegVar("chain", 0)
	st, err := m.RunLoop(20, chainProg(v))
	if err != nil {
		t.Fatalf("recovery-armed run failed: %v", err)
	}
	if got := m.VarValue(v); got != 20 {
		t.Errorf("final chain value %d, want 20", got)
	}
	rep := st.Recovery
	if rep == nil || !rep.Recovered {
		t.Fatalf("no recovery report on a healed run: %+v", rep)
	}
	if rep.Proc != 0 {
		t.Errorf("reclaimed proc %d, want 0", rep.Proc)
	}
	if rep.CostCycles != 40 || rep.ReclaimedAt != rep.HaltedAt+40 {
		t.Errorf("quarantine window not AfterCycles: %+v", rep)
	}
	if rep.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", rep.Attempts)
	}
	if st.Faults.Halts != 1 {
		t.Errorf("halts = %d, want 1", st.Faults.Halts)
	}
	if err := st.CheckConservation(); err != nil {
		t.Errorf("conservation broken by recovery: %v", err)
	}
	if st.Iterations != 20 {
		t.Errorf("iterations = %d, want 20 (resume must not re-run work)", st.Iterations)
	}
}

// TestRecoverChunkedReassignsResidue: under chunked dispatch the victim dies
// holding a chunk; its unstarted residue must be folded onto live
// processors and every iteration still executes exactly once.
func TestRecoverChunkedReassignsResidue(t *testing.T) {
	m := New(Config{Processors: 4, BusLatency: 1, SyncOpCost: 1, SchedOverhead: 1,
		Dispatch: DispatchChunked, ChunkSize: 8,
		FaultPlan: fault.Plan{HaltProc: 1, HaltAtCycle: 6},
		Recover:   Recover{AfterCycles: 25}})
	v := m.NewRegVar("chain", 0)
	st, err := m.RunLoop(64, chainProg(v))
	if err != nil {
		t.Fatalf("chunked recovery failed: %v", err)
	}
	if got := m.VarValue(v); got != 64 {
		t.Errorf("final chain value %d, want 64", got)
	}
	rep := st.Recovery
	if rep == nil || !rep.Recovered {
		t.Fatal("no recovery report")
	}
	if rep.Reassigned == 0 {
		t.Errorf("victim held a chunk but nothing was reassigned: %+v", rep)
	}
	if st.Iterations != 64 {
		t.Errorf("iterations = %d, want 64", st.Iterations)
	}
	if err := st.CheckConservation(); err != nil {
		t.Errorf("conservation broken: %v", err)
	}
}

// TestRecoverDeterministic: recovery schedules are a pure function of
// (config, plan): repeated runs give deep-equal stats including the report.
func TestRecoverDeterministic(t *testing.T) {
	run := func() Stats {
		m := New(Config{Processors: 4, BusLatency: 1, SyncOpCost: 1, SchedOverhead: 1,
			Dispatch: DispatchChunked, ChunkSize: 4,
			FaultPlan: fault.Plan{Seed: 11, HaltProc: 2, HaltAtCycle: 9},
			Recover:   Recover{AfterCycles: 30}})
		v := m.NewRegVar("chain", 0)
		st, err := m.RunLoop(48, chainProg(v))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("recovered runs diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRecoverDisarmedInvisible: an armed Recover with no halt in the plan
// changes nothing, and a zero Recover leaves the halt diagnosis exactly as
// before (StallError, not recovery).
func TestRecoverDisarmedInvisible(t *testing.T) {
	run := func(cfg Config) Stats {
		m := New(cfg)
		v := m.NewRegVar("chain", 0)
		st, err := m.RunLoop(40, chainProg(v))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cfg := Config{Processors: 4, BusLatency: 1, SyncOpCost: 1}
	clean := run(cfg)
	cfg.Recover = Recover{AfterCycles: 10}
	armed := run(cfg)
	if !reflect.DeepEqual(clean, armed) {
		t.Errorf("recovery armed without a halt changed stats:\n%+v\nvs\n%+v", clean, armed)
	}

	// Zero Recover: the halt still deadlocks, with no recovery fields set.
	m := New(Config{Processors: 2, BusLatency: 1, SyncOpCost: 1,
		FaultPlan: fault.Plan{HaltProc: 0, HaltAtCycle: 5}})
	v := m.NewRegVar("chain", 0)
	_, err := m.RunLoop(20, chainProg(v))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.RecoveryArmed || se.Recovery != nil || se.RecoveryRefused != "" {
		t.Errorf("disarmed run reports recovery state: %+v", se)
	}
}

// TestRecoverRefusedOnUnreclaimableStall: recovery can only heal halts —
// ownership reclamation has nothing to reclaim from a dropped broadcast.
// The stall must still be diagnosed, now with an explicit refusal.
func TestRecoverRefusedOnUnreclaimableStall(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 1,
		FaultPlan: fault.Plan{Seed: 1, DropProb: 1},
		Recover:   Recover{AfterCycles: 10}})
	v := m.NewRegVar("chain", 0)
	_, err := m.RunLoop(4, chainProg(v))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !se.RecoveryArmed {
		t.Error("RecoveryArmed not set on an armed run")
	}
	if se.Recovery != nil {
		t.Errorf("nothing was reclaimable yet a report exists: %+v", se.Recovery)
	}
	if !strings.Contains(se.RecoveryRefused, "no reclaimable halted processor") {
		t.Errorf("refusal should say reclamation cannot heal a drop: %q", se.RecoveryRefused)
	}
	if !strings.Contains(err.Error(), "recovery refused") {
		t.Errorf("rendered error lost the refusal: %v", err)
	}
}

// TestRecoverRefusedWhenReclaimNeverFires: a reclamation scheduled past
// MaxCycles cannot heal the run; the livelock diagnosis must say so.
func TestRecoverRefusedWhenReclaimNeverFires(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 1, SyncOpCost: 1, MaxCycles: 500,
		FaultPlan: fault.Plan{HaltProc: 0, HaltAtCycle: 5},
		Recover:   Recover{AfterCycles: 5_000}})
	v := m.NewRegVar("chain", 0)
	_, err := m.RunLoop(20, chainProg(v))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !se.MaxCycles {
		t.Errorf("expected a cycle-cap stall: %v", err)
	}
	if !se.RecoveryArmed || !strings.Contains(se.RecoveryRefused, "before the reclamation") {
		t.Errorf("refusal should explain the unfired reclaim: %q", se.RecoveryRefused)
	}
}

// TestRecoverConfigCheck: recovery validation is an input error, and a
// single-processor recovery plan is refused up front — there is nobody to
// fold the orphaned work onto.
func TestRecoverConfigCheck(t *testing.T) {
	bad := []Config{
		{Processors: 2, Recover: Recover{AfterCycles: -1}},
		{Processors: 2, Recover: Recover{AfterCycles: 5, MaxReclaims: -2}},
		{Processors: 1, Recover: Recover{AfterCycles: 5}},
	}
	for i, cfg := range bad {
		if err := cfg.Check(); err == nil {
			t.Errorf("config %d passed Check", i)
		}
	}
	ok := Config{Processors: 2, Recover: Recover{AfterCycles: 5}}
	if err := ok.Check(); err != nil {
		t.Errorf("valid recovery config rejected: %v", err)
	}
}
