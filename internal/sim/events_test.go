package sim

import "testing"

// TestEventQOrdering checks the 4-ary heap pops events in strict (t, seq)
// order regardless of push order — the total order the engine's determinism
// rests on.
func TestEventQOrdering(t *testing.T) {
	var q eventQ
	x := uint64(0x9e3779b97f4a7c15)
	next := func() int64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int64(x % 997)
	}
	const n = 4000
	for i := 0; i < n; i++ {
		q.push(event{t: next(), seq: int64(i)})
	}
	if q.len() != n {
		t.Fatalf("len = %d, want %d", q.len(), n)
	}
	last := q.pop()
	for i := 1; i < n; i++ {
		e := q.pop()
		if eventBefore(&e, &last) {
			t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)", i, e.t, e.seq, last.t, last.seq)
		}
		last = e
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after draining, want 0", q.len())
	}
}

// TestRemovePendReleasesTailSlot pins the removePend fix: the vacated
// backing-array slot must not keep pointing at the removed *pending (the
// old append-shift delete pinned freed entries for the run's lifetime), and
// removed entries must reach the freelist for reuse.
func TestRemovePendReleasesTailSlot(t *testing.T) {
	m := New(Config{Processors: 3, BusLatency: 4, SyncOpCost: 1})
	v := m.NewRegVar("v", 0)
	_, err := m.RunProcesses([][]Op{
		{WriteVar(v, 1, "w1")},
		{WriteVar(v, 2, "w2")},
		{WriteVar(v, 3, "w3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := m.vars[v]
	if len(sv.pend) != 0 {
		t.Fatalf("%d pend entries after the run, want 0", len(sv.pend))
	}
	// Three broadcasts queued at once, so the backing array held >= 2
	// entries; every vacated slot must be nil.
	if cap(sv.pend) < 2 {
		t.Fatalf("pend backing capacity %d; the scenario should have queued concurrent writes", cap(sv.pend))
	}
	for i, pe := range sv.pend[:cap(sv.pend)] {
		if pe != nil {
			t.Errorf("pend backing slot %d still retains %+v", i, *pe)
		}
	}
	if len(m.pendFree) == 0 {
		t.Error("no pending entries reached the freelist")
	}
}

// TestWaiterDrainReleasesTailSlots pins the in-place waiter drain: after a
// commit releases waiters, the survivors are compacted over the old slots
// and the vacated tail is nil-ed, so the backing array does not retain
// released *blockedWait records.
func TestWaiterDrainReleasesTailSlots(t *testing.T) {
	m := New(Config{Processors: 4, BusLatency: 1, SyncOpCost: 1})
	v := m.NewRegVar("gate", 0)
	st, err := m.RunProcesses([][]Op{
		{Compute(3, nil, "work"), WriteVar(v, 3, "raise")},
		{WaitGE(v, 1, "w1")},
		{WaitGE(v, 2, "w2")},
		{WaitGE(v, 3, "w3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CheckConservation(); err != nil {
		t.Error(err)
	}
	sv := m.vars[v]
	if len(sv.waiters) != 0 {
		t.Fatalf("%d waiters after the run, want 0", len(sv.waiters))
	}
	if cap(sv.waiters) < 3 {
		t.Fatalf("waiter backing capacity %d, want >= 3 (all three waiters parked)", cap(sv.waiters))
	}
	for i, w := range sv.waiters[:cap(sv.waiters)] {
		if w != nil {
			t.Errorf("waiter backing slot %d still retains a released waiter (tag %q)", i, w.tag)
		}
	}
	if len(m.waitFree) == 0 {
		t.Error("no blockedWait records reached the freelist")
	}
}
