package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/fault"
)

// chainProg is a dependent loop: iteration i waits for its predecessor's
// signal, computes, then signals. The canonical victim for bus faults.
func chainProg(v VarID) Program {
	return func(iter int64) []Op {
		var ops []Op
		if iter > 1 {
			ops = append(ops, WaitGE(v, iter-1, "wait-pred"))
		}
		ops = append(ops, Compute(3, nil, "work"), WriteVar(v, iter, "signal"))
		return ops
	}
}

// TestFaultZeroPlanZeroEffect: a config whose plan only sets a seed (still
// disabled) produces DeepEqual stats to a plainly-configured run.
func TestFaultZeroPlanZeroEffect(t *testing.T) {
	run := func(cfg Config) Stats {
		m := New(cfg)
		v := m.NewRegVar("chain", 0)
		st, err := m.RunLoop(40, chainProg(v))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cfg := Config{Processors: 4, BusLatency: 1, SyncOpCost: 1, SchedOverhead: 1}
	clean := run(cfg)
	cfg.FaultPlan = fault.Plan{Seed: 42} // seed alone arms nothing
	seeded := run(cfg)
	if !reflect.DeepEqual(clean, seeded) {
		t.Errorf("unarmed plan changed stats:\n%+v\nvs\n%+v", clean, seeded)
	}
}

// TestFaultDropCausesDiagnosedDeadlock: dropping every broadcast starves
// the successor, and the stall is attributed to the drop.
func TestFaultDropCausesDiagnosedDeadlock(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 1,
		FaultPlan: fault.Plan{Seed: 1, DropProb: 1}})
	v := m.NewRegVar("chain", 0)
	st, err := m.RunLoop(4, chainProg(v))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("stall message lost the deadlock diagnosis: %v", err)
	}
	if !se.Explained {
		t.Errorf("drop-induced stall not explained: %v", err)
	}
	if !strings.Contains(se.Explanation, "dropped") {
		t.Errorf("explanation should name the drop: %q", se.Explanation)
	}
	if len(se.Blocked) == 0 || se.Blocked[0].Var != "chain" {
		t.Errorf("blocked report should name the awaited variable: %+v", se.Blocked)
	}
	if se.Faults.Drops == 0 || st.Faults.Drops != se.Faults.Drops {
		t.Errorf("drop counts inconsistent: stats %+v vs stall %+v", st.Faults, se.Faults)
	}
}

// TestFaultDelayKeepsResultAndDeterminism: delays slow the run but cannot
// change its outcome, and the same seed gives identical stats.
func TestFaultDelayKeepsResultAndDeterminism(t *testing.T) {
	run := func(plan fault.Plan) (Stats, int64) {
		m := New(Config{Processors: 4, BusLatency: 1, SyncOpCost: 1, FaultPlan: plan})
		v := m.NewRegVar("chain", 0)
		st, err := m.RunLoop(60, chainProg(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.CheckConservation(); err != nil {
			t.Errorf("conservation broken under delays: %v", err)
		}
		return st, m.VarValue(v)
	}
	clean, _ := run(fault.Plan{})
	plan := fault.Plan{Seed: 7, DelayProb: 0.4, DelayCycles: 6}
	a, va := run(plan)
	b, vb := run(plan)
	if !reflect.DeepEqual(a, b) || va != vb {
		t.Errorf("same seed, different runs:\n%+v\nvs\n%+v", a, b)
	}
	if a.Faults.Delays == 0 {
		t.Error("0.4 delay probability injected nothing over 60 iterations")
	}
	if va != 60 {
		t.Errorf("final chain value %d, want 60", va)
	}
	if a.Cycles <= clean.Cycles {
		t.Errorf("delays did not lengthen the run: %d vs clean %d", a.Cycles, clean.Cycles)
	}
}

// TestFaultDupHarmless: duplicated broadcasts of a monotone variable cannot
// change the outcome.
func TestFaultDupHarmless(t *testing.T) {
	m := New(Config{Processors: 4, BusLatency: 1,
		FaultPlan: fault.Plan{Seed: 5, DupProb: 0.5}})
	v := m.NewRegVar("chain", 0)
	st, err := m.RunLoop(50, chainProg(v))
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults.Dups == 0 {
		t.Error("no duplicates injected at 0.5 probability")
	}
	if got := m.VarValue(v); got != 50 {
		t.Errorf("final chain value %d, want 50", got)
	}
}

// TestFaultStaleReadAccounted: stale register images delay waits without
// breaking the outcome or the cycle accounting.
func TestFaultStaleReadAccounted(t *testing.T) {
	run := func(plan fault.Plan) Stats {
		m := New(Config{Processors: 4, BusLatency: 1, SyncOpCost: 1, FaultPlan: plan})
		v := m.NewRegVar("chain", 0)
		st, err := m.RunLoop(60, chainProg(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.CheckConservation(); err != nil {
			t.Errorf("conservation broken under stale reads: %v", err)
		}
		return st
	}
	clean := run(fault.Plan{})
	st := run(fault.Plan{Seed: 3, StaleProb: 0.5, StaleCycles: 5})
	if st.Faults.StaleReads == 0 {
		t.Fatal("no stale reads injected at 0.5 probability")
	}
	if st.WaitSyncTotal() <= clean.WaitSyncTotal() {
		t.Errorf("stale reads did not add wait time: %d vs %d",
			st.WaitSyncTotal(), clean.WaitSyncTotal())
	}
}

// TestFaultTornOrders is the §6 experiment in miniature, on raw packed
// <owner,step> words (20-bit step field, as in core). The variable holds
// <1,3>; the writer releases to <2,0>; the waiter needs <2,2> — a step
// owner 2 has not yet marked.
//
// Step-first tear: the intermediate is <1,0> (stale owner), which releases
// nobody; the waiter correctly stays blocked forever (deadlock here, since
// nobody ever marks step 2). Owner-first tear: the intermediate is <2,3> —
// new owner, stale step — which wrongly satisfies the <2,2> wait: a
// premature release, the hazard §6's store-order rule exists to prevent.
func TestFaultTornOrders(t *testing.T) {
	const step = int64(1) << 20
	pack := func(owner, s int64) int64 { return owner*step + s }
	run := func(order string) error {
		m := New(Config{Processors: 2, BusLatency: 1, MaxCycles: 10_000,
			FaultPlan: fault.Plan{TornProb: 1, TornOrder: order, TornWindow: 4}})
		v := m.NewRegVar("PC[0]", pack(1, 3))
		_, err := m.RunProcesses([][]Op{
			{WriteVar(v, pack(2, 0), "release")},
			{WaitGE(v, pack(2, 2), "wait-2-2")},
		})
		return err
	}
	if err := run(fault.StepFirst); err == nil {
		t.Error("step-first tear released a wait on an unmarked step")
	} else {
		var se *StallError
		if !errors.As(err, &se) {
			t.Errorf("step-first deadlock not a StallError: %v", err)
		}
	}
	if err := run(fault.OwnerFirst); err != nil {
		t.Errorf("owner-first tear should (wrongly) release the waiter, got: %v", err)
	}
}

// TestFaultHaltDiagnosed: a halted processor stalls the chain and the
// diagnosis names it.
func TestFaultHaltDiagnosed(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 1, SyncOpCost: 1,
		FaultPlan: fault.Plan{HaltProc: 0, HaltAtCycle: 5}})
	v := m.NewRegVar("chain", 0)
	_, err := m.RunLoop(20, chainProg(v))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !se.Explained || !strings.Contains(se.Explanation, "halted") {
		t.Errorf("halt not diagnosed: %v", err)
	}
	if se.Faults.Halts != 1 {
		t.Errorf("halts = %d, want 1", se.Faults.Halts)
	}
}

// TestFaultSlowProcessor: a slow processor lengthens the run but not its
// result; module delays behave likewise on memory-resident variables.
func TestFaultSlowProcessorAndModuleDelay(t *testing.T) {
	run := func(plan fault.Plan) Stats {
		m := New(Config{Processors: 4, BusLatency: 1, FaultPlan: plan})
		v := m.NewRegVar("chain", 0)
		st, err := m.RunLoop(40, chainProg(v))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	clean := run(fault.Plan{})
	slow := run(fault.Plan{SlowProc: 1, SlowFactor: 4})
	if slow.Faults.SlowOps == 0 || slow.Cycles <= clean.Cycles {
		t.Errorf("slow processor had no effect: %d vs %d (faults %+v)",
			slow.Cycles, clean.Cycles, slow.Faults)
	}

	// Module-delay path: a memory-resident flag polled through its module.
	m := New(Config{Processors: 2, MemLatency: 2,
		FaultPlan: fault.Plan{Seed: 9, ModuleDelayProb: 1, ModuleDelayCycles: 7}})
	f := m.NewMemVar("flag", 0, 0)
	st, err := m.RunProcesses([][]Op{
		{Compute(10, nil, "work"), WriteVar(f, 1, "set")},
		{WaitGE(f, 1, "poll")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults.ModuleDelays == 0 {
		t.Error("no module delays injected at probability 1")
	}
}

// TestFaultLivelockExplainedBySlowdown: when only slowdown faults are armed
// and the cycle cap fires, the diagnosis says so.
func TestFaultLivelockExplainedBySlowdown(t *testing.T) {
	m := New(Config{Processors: 1, MaxCycles: 5_000, MemLatency: 2,
		FaultPlan: fault.Plan{Seed: 2, ModuleDelayProb: 0.5, ModuleDelayCycles: 4}})
	v := m.NewMemVar("never", 0, 0)
	_, err := m.RunProcesses([][]Op{{WaitGE(v, 1, "stuck-poll")}})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !se.MaxCycles || !strings.Contains(err.Error(), "MaxCycles") {
		t.Errorf("cycle-cap stall not marked: %v", err)
	}
	if !se.Explained {
		t.Errorf("slowdown-only livelock should be explained: %v", err)
	}
}

// TestFaultConfigCheck: bad plans and out-of-range processor targets are
// input errors from Config.Check, not crashes.
func TestFaultConfigCheck(t *testing.T) {
	bad := []Config{
		{Processors: 2, FaultPlan: fault.Plan{DropProb: 2}},
		{Processors: 2, FaultPlan: fault.Plan{SlowProc: 5, SlowFactor: 2}},
		{Processors: 2, FaultPlan: fault.Plan{HaltProc: 2, HaltAtCycle: 1}},
	}
	for i, cfg := range bad {
		if err := cfg.Check(); err == nil {
			t.Errorf("config %d passed Check", i)
		}
	}
	ok := Config{Processors: 2, FaultPlan: fault.Plan{SlowProc: 1, SlowFactor: 2}}
	if err := ok.Check(); err != nil {
		t.Errorf("valid faulty config rejected: %v", err)
	}
}
