package sim

import "fmt"

// The synchronization trace is the dynamic-analysis feed of the machine: a
// totally ordered record of every synchronization-variable transition, every
// completed wait, and every shared-memory access (as declared by Op.Touch).
// The verify package replays it with vector clocks to find conflicting
// accesses unordered by happens-before, TSan-style.
//
// Events are appended in simulation-causal order: an event that releases
// another is always recorded first, so a replay may process the slice
// front to back without re-sorting.

// SyncKind classifies synchronization-trace events.
type SyncKind int

// Sync trace event kinds.
const (
	// SyncSignal is a synchronization-variable update, recorded at issue
	// time: the writer's knowledge at the moment of the write is the
	// happens-before point a released waiter inherits (a local waiter can
	// even observe a register write before its broadcast commits). RMWs are
	// recorded at module service, when their value exists; the performing
	// process is blocked in between, so its knowledge is unchanged.
	SyncSignal SyncKind = iota
	// SyncWaitDone is a completed busy-wait. Value is the wait threshold.
	SyncWaitDone
	// SyncAccess is a batch of shared-memory accesses performed by one
	// statement execution (the op's Touch list).
	SyncAccess
)

func (k SyncKind) String() string {
	switch k {
	case SyncSignal:
		return "signal"
	case SyncWaitDone:
		return "wait-done"
	case SyncAccess:
		return "access"
	}
	return fmt.Sprintf("SyncKind(%d)", int(k))
}

// SyncEvent is one synchronization-trace record.
type SyncEvent struct {
	Seq   int64 // position in causal order
	Time  int64 // simulation cycle of the event
	Proc  int   // processor that performed it
	Iter  int64 // iteration (lpid) the processor was running
	Kind  SyncKind
	Var   VarID       // SyncSignal / SyncWaitDone
	Value int64       // committed value / wait threshold
	Acc   []MemAccess // SyncAccess
	Tag   string
}

// EnableSyncTrace turns on synchronization-trace recording; call before
// Run*. Independent of EnableTrace (the timeline trace).
func (m *Machine) EnableSyncTrace() { m.syncTracing = true }

// SyncTraceEvents returns the recorded synchronization trace in causal
// order.
func (m *Machine) SyncTraceEvents() []SyncEvent {
	return append([]SyncEvent(nil), m.syncTrace...)
}

func (m *Machine) recordSync(e SyncEvent) {
	if !m.syncTracing {
		return
	}
	e.Seq = int64(len(m.syncTrace))
	e.Time = m.now
	m.syncTrace = append(m.syncTrace, e)
}

// recordAccess logs an op's Touch list at semantics time.
func (m *Machine) recordAccess(p *proc, op *Op) {
	if !m.syncTracing || len(op.Touch) == 0 {
		return
	}
	m.recordSync(SyncEvent{Proc: p.id, Iter: p.iter, Kind: SyncAccess, Acc: op.Touch, Tag: op.Tag})
}

// VarCount returns the number of declared synchronization variables.
func (m *Machine) VarCount() int { return len(m.vars) }

// VarName returns the declared name of a synchronization variable.
func (m *Machine) VarName(v VarID) string { return m.vars[v].name }
