package sim

import "fmt"

// VarID identifies a synchronization variable declared on a Machine.
type VarID int

// Residence says where a synchronization variable lives.
type Residence int

// Residences.
const (
	// Register variables live in per-processor synchronization-register
	// images kept coherent by the broadcast synchronization bus (process
	// counters, statement counters). A write is locally visible to its
	// writer at once and to other processors when its broadcast commits.
	// Busy-waits on registers spin on the local image: no traffic.
	Register Residence = iota
	// Memory variables live in a memory module (data-oriented keys,
	// barrier counters, full/empty bits). All operations, including every
	// poll of a busy-wait, pass through the module's FIFO service queue.
	Memory
)

// OpKind enumerates process operations.
type OpKind int

// Op kinds.
const (
	// OpCompute models useful work: Cycles of computation, with the
	// statement semantics (Exec) applied at completion.
	OpCompute OpKind = iota
	// OpWrite sets a synchronization variable to Value. Sync values are
	// monotonically non-decreasing by construction in every scheme here
	// (the paper relies on the same property in section 6). Writes are
	// posted: the processor continues after the local issue cost.
	OpWrite
	// OpWait blocks until the variable's visible value is >= Value.
	OpWait
	// OpRMW atomically applies Apply to a Memory variable (fetch&add class;
	// used by the counter barrier). The processor blocks until served.
	OpRMW
	// OpWriteIf writes Value to a Register variable only when Cond holds
	// for the locally visible value; otherwise it is a no-op (no bus
	// traffic). This models the improved mark_PC of Fig 4.3, which skips
	// the update when the process does not yet own its PC.
	OpWriteIf
)

// MemAccess names one shared-memory element an op touches, for race
// checking: the array, its coordinates, and whether the access writes.
// Ver distinguishes renamed single-assignment versions (instance-based
// storage); in-place schemes leave it 0.
type MemAccess struct {
	Array string
	Coord [2]int64
	Dims  int
	Ver   int64
	Write bool
}

func (a MemAccess) String() string {
	s := fmt.Sprintf("%s[%d", a.Array, a.Coord[0])
	if a.Dims == 2 {
		s += fmt.Sprintf(",%d", a.Coord[1])
	}
	s += "]"
	if a.Ver != 0 {
		s += fmt.Sprintf(".v%d", a.Ver)
	}
	return s
}

// Op is one step of a process program.
type Op struct {
	Kind   OpKind
	Cycles int64             // OpCompute duration
	Var    VarID             // sync-op target
	Value  int64             // OpWrite value / OpWait threshold
	Apply  func(int64) int64 // OpRMW update function
	Cond   func(int64) bool  // OpWriteIf guard over the visible value
	Exec   func()            // semantics, run at completion (any kind)
	Tag    string            // for traces and error messages

	// Touch lists the shared-memory elements whose accesses take effect
	// when Exec runs, for the happens-before race checkers. Optional.
	Touch []MemAccess
	// Post is the synchronization variable's value after this op completes,
	// as guaranteed by the scheme's protocol. OpWrite implies Post == Value;
	// OpRMW builders whose protocol serializes updates (e.g. ticketed key
	// increments) stamp it explicitly so static analysis can model them.
	// Valid iff HasPost.
	Post    int64
	HasPost bool
	// CondGE mirrors an OpWriteIf guard of the form "visible value >= CondGE"
	// (valid iff HasCondGE), so static analysis knows what the write's firing
	// implies. WriteVarIfGE sets it.
	CondGE    int64
	HasCondGE bool
}

func (o Op) String() string {
	switch o.Kind {
	case OpCompute:
		return fmt.Sprintf("compute(%d)%s", o.Cycles, tag(o.Tag))
	case OpWrite:
		return fmt.Sprintf("write(v%d=%d)%s", o.Var, o.Value, tag(o.Tag))
	case OpWait:
		return fmt.Sprintf("wait(v%d>=%d)%s", o.Var, o.Value, tag(o.Tag))
	case OpRMW:
		return fmt.Sprintf("rmw(v%d)%s", o.Var, tag(o.Tag))
	case OpWriteIf:
		return fmt.Sprintf("writeif(v%d=%d)%s", o.Var, o.Value, tag(o.Tag))
	}
	return fmt.Sprintf("op(%d)", int(o.Kind))
}

func tag(t string) string {
	if t == "" {
		return ""
	}
	return " " + t
}

// Compute returns a compute op.
func Compute(cycles int64, exec func(), tag string) Op {
	return Op{Kind: OpCompute, Cycles: cycles, Exec: exec, Tag: tag}
}

// WriteVar returns a posted synchronization write.
func WriteVar(v VarID, value int64, tag string) Op {
	return Op{Kind: OpWrite, Var: v, Value: value, Tag: tag}
}

// WaitGE returns a busy-wait until the variable reaches value.
func WaitGE(v VarID, value int64, tag string) Op {
	return Op{Kind: OpWait, Var: v, Value: value, Tag: tag}
}

// RMW returns an atomic read-modify-write on a memory variable.
func RMW(v VarID, apply func(int64) int64, tag string) Op {
	return Op{Kind: OpRMW, Var: v, Apply: apply, Tag: tag}
}

// RMWPost is RMW for protocols that serialize updates, stamping the value
// the variable is guaranteed to hold once the op completes (e.g. a ticketed
// increment performed only after the key reached the ticket). The stamp
// lets static verification model the op without executing it.
func RMWPost(v VarID, apply func(int64) int64, post int64, tag string) Op {
	return Op{Kind: OpRMW, Var: v, Apply: apply, Post: post, HasPost: true, Tag: tag}
}

// WriteVarIf returns a conditional register write: value is posted only when
// cond holds for the locally visible value at issue time.
func WriteVarIf(v VarID, value int64, cond func(int64) bool, tag string) Op {
	return Op{Kind: OpWriteIf, Var: v, Value: value, Cond: cond, Tag: tag}
}

// WriteVarIfGE is WriteVarIf with the guard "visible value >= min", declared
// structurally so static verification can reason about what a fired write
// implies (the improved mark_PC fires only once ownership has arrived).
func WriteVarIfGE(v VarID, value, min int64, tag string) Op {
	return Op{Kind: OpWriteIf, Var: v, Value: value,
		Cond:   func(cur int64) bool { return cur >= min },
		CondGE: min, HasCondGE: true, Tag: tag}
}

// Program yields the op sequence of one process (iteration). Iterations are
// numbered as 1-based lpids. Programs are materialized at dispatch time;
// branch outcomes may depend on the iteration number but not on runtime
// data (data-independent control flow, as in the paper's Example 3).
type Program func(iter int64) []Op
