package sim

import (
	"strings"
	"testing"
)

// TestConfigCheckBadFields exercises every field Check validates: each bad
// configuration must produce an error naming the offending field, not a
// panic.
func TestConfigCheckBadFields(t *testing.T) {
	good := Config{Processors: 4, BusLatency: 1, MemLatency: 2, Modules: 4,
		SyncOpCost: 1, SchedOverhead: 1}
	if err := good.Check(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero processors", func(c *Config) { c.Processors = 0 }, "Processors"},
		{"negative processors", func(c *Config) { c.Processors = -3 }, "Processors"},
		{"negative bus latency", func(c *Config) { c.BusLatency = -1 }, "BusLatency"},
		{"negative mem latency", func(c *Config) { c.MemLatency = -2 }, "MemLatency"},
		{"negative modules", func(c *Config) { c.Modules = -1 }, "Modules"},
		{"negative sync op cost", func(c *Config) { c.SyncOpCost = -1 }, "SyncOpCost"},
		{"negative sched overhead", func(c *Config) { c.SchedOverhead = -1 }, "SchedOverhead"},
		{"negative data latency", func(c *Config) { c.DataLatency = -1 }, "DataLatency"},
		{"negative max cycles", func(c *Config) { c.MaxCycles = -1 }, "MaxCycles"},
		{"negative chunk size", func(c *Config) { c.ChunkSize = -1 }, "ChunkSize"},
		{"unknown dispatch", func(c *Config) { c.Dispatch = Dispatch(42) }, "Dispatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mut(&cfg)
			err := cfg.Check()
			if err == nil {
				t.Fatalf("Check accepted %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name field %s", err, tc.want)
			}
		})
	}
}

// TestConfigCheckZeroDefaults confirms the documented zero-means-default
// fields stay valid and normalize to their defaults.
func TestConfigCheckZeroDefaults(t *testing.T) {
	cfg := Config{Processors: 1}
	if err := cfg.Check(); err != nil {
		t.Fatalf("zero-default config rejected: %v", err)
	}
	n := cfg.normalized()
	if n.MemLatency != 1 || n.Modules != 1 || n.MaxCycles != 100_000_000 || n.ChunkSize != 4 {
		t.Errorf("normalized defaults wrong: %+v", n)
	}
}
