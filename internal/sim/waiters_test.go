package sim

import (
	"reflect"
	"testing"

	"github.com/csrd-repro/datasync/internal/fault"
)

// TestStaleReleaseDuringDrainPinned pins the waiter-drain semantics around
// the injected stale-read branch: a commit that releases several waiters at
// once schedules each release as a *deferred* event (StaleProb=1) while the
// drain is still iterating the waiter list, and one unsatisfied waiter must
// survive the drain untouched. The exact numbers below were captured from
// the engine before the in-place waiter-drain rewrite; they pin both the
// release timing (blocked interval charged through the stale lag) and the
// deterministic stale-roll coordinates (Faults.StaleReads).
func TestStaleReleaseDuringDrainPinned(t *testing.T) {
	run := func() (Stats, int64) {
		m := New(Config{Processors: 5, BusLatency: 2, SyncOpCost: 1,
			FaultPlan: fault.Plan{Seed: 11, StaleProb: 1, StaleCycles: 6}})
		v := m.NewRegVar("gate", 0)
		done := m.NewRegVar("done", 0)
		st, err := m.RunProcesses([][]Op{
			// Writer: raises the gate to 2 (releasing the >=1 and >=2
			// waiters in one commit), then to 5 after the laggards report.
			{Compute(5, nil, "work"), WriteVar(v, 2, "raise2"),
				WaitGE(done, 2, "laggards"), WriteVar(v, 5, "raise5")},
			{WaitGE(v, 1, "w1"), Compute(2, nil, ""), WriteVar(done, 1, "")},
			{WaitGE(v, 2, "w2"), Compute(2, nil, ""), WriteVar(done, 2, "")},
			// Unsatisfied until the second raise: must survive the first
			// drain in place.
			{WaitGE(v, 5, "w5"), Compute(1, nil, "")},
			{WaitGE(v, 4, "w4"), Compute(1, nil, "")},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.CheckConservation(); err != nil {
			t.Errorf("conservation broken: %v", err)
		}
		return st, m.VarValue(v)
	}
	st, final := run()
	st2, final2 := run()
	if !reflect.DeepEqual(st, st2) || final != final2 {
		t.Fatalf("nondeterministic stale-release runs:\n%+v\nvs\n%+v", st, st2)
	}
	if final != 5 {
		t.Errorf("gate = %d, want 5", final)
	}
	if st.Faults.StaleReads == 0 {
		t.Fatal("StaleProb=1 injected no stale reads")
	}
	// Golden numbers from the pre-rewrite engine (deferred releases while
	// iterating; fresh `still` slice per drain). The in-place rewrite must
	// reproduce them exactly.
	want := pinnedStaleRun{
		Cycles:     st.Cycles,
		StaleReads: st.Faults.StaleReads,
		WaitSync:   [5]int64{st.Procs[0].WaitSync, st.Procs[1].WaitSync, st.Procs[2].WaitSync, st.Procs[3].WaitSync, st.Procs[4].WaitSync},
	}
	if want != pinnedStale {
		t.Errorf("stale-release run drifted from pinned behavior:\n got %+v\nwant %+v", want, pinnedStale)
	}
}

type pinnedStaleRun struct {
	Cycles     int64
	StaleReads int64
	WaitSync   [5]int64
}

// Captured from the closure-based engine at the commit introducing this
// test; regenerate only for an intended semantic change.
var pinnedStale = pinnedStaleRun{
	Cycles:     34,
	StaleReads: 5,
	WaitSync:   [5]int64{19, 13, 13, 33, 33},
}
