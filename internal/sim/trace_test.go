package sim

import (
	"strings"
	"testing"
)

func TestTraceRecordsComputeAndWait(t *testing.T) {
	m := New(Config{Processors: 2, BusLatency: 2, SyncOpCost: 0})
	m.EnableTrace()
	v := m.NewRegVar("v", 0)
	_, err := m.RunProcesses([][]Op{
		{Compute(10, nil, "produce"), WriteVar(v, 1, "pub")},
		{WaitGE(v, 1, "consume-wait"), Compute(3, nil, "consume")},
	})
	if err != nil {
		t.Fatal(err)
	}
	events := m.Trace()
	var kinds []TraceKind
	var sawWait *TraceEvent
	for i := range events {
		kinds = append(kinds, events[i].Kind)
		if events[i].Kind == TraceWait {
			sawWait = &events[i]
		}
	}
	if sawWait == nil {
		t.Fatalf("no wait event recorded: %+v", events)
	}
	if sawWait.Proc != 1 || sawWait.Start != 0 || sawWait.End != 12 {
		t.Errorf("wait event = %+v, want proc 1 span [0,12]", *sawWait)
	}
	if sawWait.Tag != "consume-wait" {
		t.Errorf("wait tag = %q", sawWait.Tag)
	}
	nCompute := 0
	for _, k := range kinds {
		if k == TraceCompute {
			nCompute++
		}
	}
	if nCompute != 2 {
		t.Errorf("compute events = %d, want 2", nCompute)
	}
}

func TestTraceRecordsModuleService(t *testing.T) {
	m := New(Config{Processors: 2, MemLatency: 4})
	m.EnableTrace()
	v := m.NewMemVar("c", 0, 0)
	inc := func(x int64) int64 { return x + 1 }
	_, err := m.RunProcesses([][]Op{
		{RMW(v, inc, "rmw0")},
		{RMW(v, inc, "rmw1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	services := 0
	for _, e := range m.Trace() {
		if e.Kind == TraceService {
			services++
			if e.End-e.Start < 4 {
				t.Errorf("service span too short: %+v", e)
			}
		}
	}
	if services != 2 {
		t.Errorf("service events = %d, want 2", services)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := New(Config{Processors: 1})
	if _, err := m.RunProcesses([][]Op{{Compute(5, nil, "")}}); err != nil {
		t.Fatal(err)
	}
	if len(m.Trace()) != 0 {
		t.Error("trace recorded without EnableTrace")
	}
}

func TestTraceTimelineRendering(t *testing.T) {
	events := []TraceEvent{
		{Proc: 0, Start: 0, End: 50, Kind: TraceCompute},
		{Proc: 1, Start: 0, End: 25, Kind: TraceWait},
		{Proc: 1, Start: 25, End: 50, Kind: TraceCompute},
		{Proc: 1, Start: 50, End: 60, Kind: TraceService},
	}
	out := TraceTimeline(events, 2, 60, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "#") {
		t.Errorf("P0 lane missing compute: %q", lines[1])
	}
	p1 := lines[2]
	if !strings.Contains(p1, ".") || !strings.Contains(p1, "~") || !strings.Contains(p1, "#") {
		t.Errorf("P1 lane missing glyphs: %q", p1)
	}
	// Wait precedes compute in the lane.
	if strings.Index(p1, ".") > strings.Index(p1, "#") {
		t.Errorf("P1 lane order wrong: %q", p1)
	}
	if TraceCompute.String() != "compute" || TraceWait.String() != "wait" || TraceService.String() != "service" {
		t.Error("TraceKind strings wrong")
	}
}
