package sim

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/fault"
)

// BlockedProc is one processor stuck at the moment a stall was detected.
type BlockedProc struct {
	Proc  int    `json:"proc"`
	Iter  int64  `json:"iter"`
	Since int64  `json:"since"`
	Op    string `json:"op"`
	// Var/Have/Want describe the unsatisfied wait when the blocking op is
	// one: the processor needs Var >= Want but observes Have.
	Var   string `json:"var,omitempty"`
	VarID VarID  `json:"varId,omitempty"`
	Have  int64  `json:"have,omitempty"`
	Want  int64  `json:"want,omitempty"`
	wait  bool
}

// StallError is the structured diagnosis the simulator returns instead of a
// bare deadlock/livelock message when a fault plan is active: which
// processors are blocked on what, what was injected, and whether an
// injected fault explains the stall. The underlying message is preserved
// verbatim, so callers matching on "deadlock"/"MaxCycles" keep working.
type StallError struct {
	// Cycle is the simulated time the stall was detected.
	Cycle int64 `json:"cycle"`
	// MaxCycles marks a blown cycle cap (livelock) rather than a deadlock.
	MaxCycles bool `json:"maxCycles,omitempty"`
	// Blocked lists the stuck processors, lowest id first.
	Blocked []BlockedProc `json:"blocked,omitempty"`
	// Faults is what the plan actually injected before the stall.
	Faults fault.Counts `json:"faults"`
	// Explained is true when an injected fault accounts for the stall;
	// Explanation says how. An unexplained stall under an active plan
	// means the scheme itself (or the plan's premise) is suspect.
	Explained   bool   `json:"explained"`
	Explanation string `json:"explanation,omitempty"`
	// RecoveryArmed is true when the run had ownership reclamation enabled
	// and still stalled; RecoveryRefused says why recovery could not heal
	// this stall (no reclaimable halted processor, budget exhausted, or the
	// run ended before the reclaim fired). Recovery carries the report of a
	// reclamation that did happen before the residual stall.
	RecoveryArmed   bool            `json:"recoveryArmed,omitempty"`
	RecoveryRefused string          `json:"recoveryRefused,omitempty"`
	Recovery        *RecoveryReport `json:"recovery,omitempty"`

	msg string
}

func (e *StallError) Error() string {
	var b strings.Builder
	b.WriteString(e.msg)
	fmt.Fprintf(&b, "\ninjected faults: %s", e.Faults)
	if e.Explained {
		fmt.Fprintf(&b, "\ndiagnosis: %s", e.Explanation)
	} else {
		b.WriteString("\ndiagnosis: no injected fault explains this stall")
	}
	if e.Recovery != nil {
		fmt.Fprintf(&b, "\nrecovery: %s", e.Recovery)
	}
	if e.RecoveryRefused != "" {
		fmt.Fprintf(&b, "\nrecovery refused: %s", e.RecoveryRefused)
	}
	return b.String()
}

// stallError wraps a drain-time deadlock/livelock into the structured
// diagnosis. Attribution order: a halted processor explains any stall; a
// dropped broadcast of a variable somebody is blocked on explains that
// wait; pure slowdown faults explain a blown cycle cap.
func (m *Machine) stallError(base error, maxed bool) error {
	e := &StallError{Cycle: m.now, MaxCycles: maxed, Faults: m.inj.Counts(), msg: base.Error()}
	for _, p := range m.procs {
		if p.state != stateBlocked {
			continue
		}
		bp := BlockedProc{Proc: p.id, Iter: p.iter, Since: p.blockedSince, Op: "?"}
		if p.ip < len(p.ops) {
			op := p.ops[p.ip]
			bp.Op = m.describeOp(op)
			if op.Kind == OpWait && int(op.Var) < len(m.vars) {
				v := m.vars[op.Var]
				bp.Var, bp.VarID = v.name, v.id
				bp.Have, bp.Want = v.visibleTo(p.id), op.Value
				bp.wait = true
			}
		}
		e.Blocked = append(e.Blocked, bp)
	}
	plan := m.inj.Plan()
	e.RecoveryArmed = m.cfg.Recover.Enabled()
	e.Recovery = m.recovery
	switch {
	case m.inj.HaltActive() && m.recovery == nil:
		e.Explained = true
		e.Explanation = fmt.Sprintf("processor %d was halted at cycle %d by the fault plan",
			plan.HaltProc, plan.HaltAtCycle)
		if e.RecoveryArmed {
			// A pending reclaim event keeps the heap non-empty, so a halt
			// can only outlive armed recovery by blowing the cycle cap
			// before the reclaim fires (or by halting a processor nobody
			// ever steps again).
			e.RecoveryRefused = fmt.Sprintf("the run ended before the reclamation scheduled %d cycles after the halt could fire", m.cfg.Recover.AfterCycles)
		}
	default:
		for _, bp := range e.Blocked {
			if !bp.wait {
				continue
			}
			if n := m.inj.VarDropped(int64(bp.VarID)); n > 0 {
				e.Explained = true
				e.Explanation = fmt.Sprintf("%d broadcast(s) of %s were dropped; proc %d needs %s >= %d but sees %d",
					n, bp.Var, bp.Proc, bp.Var, bp.Want, bp.Have)
				break
			}
		}
		if !e.Explained && maxed && plan.SlowsCycles() {
			e.Explained = true
			e.Explanation = "injected delays lengthened the run past MaxCycles"
		}
	}
	if e.RecoveryArmed && e.RecoveryRefused == "" {
		switch {
		case e.Recovery != nil:
			e.RecoveryRefused = fmt.Sprintf("the reclamation budget (%d) is spent; the residual stall has another cause", m.cfg.Recover.maxReclaims())
		default:
			e.RecoveryRefused = "no reclaimable halted processor explains this stall; ownership reclamation cannot heal it"
		}
	}
	return e
}
