// Package deps implements data dependence analysis for loop nests with
// affine array subscripts, following section 2 of Su & Yew (ISCA 1989).
//
// The analysis computes flow (read-after-write), anti (write-after-read) and
// output (write-after-write) dependences between the statements of a loop
// body, together with their constant dependence distances. Dependences whose
// distance is not a compile-time constant are reported with Known=false; the
// synchronization schemes in this repository only enforce constant-distance
// dependences, which is exactly the class the paper treats ("constant-
// distance dependence occurs very frequently in numerical programs").
//
// The package also implements the two graph simplifications the paper uses:
//
//   - loop-independent dependences (distance zero, source textually before
//     the sink) need no synchronization because statements of one iteration
//     execute sequentially within a process (the dashed lines of Fig 2.1);
//   - a cross-iteration dependence is redundant if it is covered by a path
//     of other dependences whose distances sum to exactly the same value
//     (the paper's observation that S1->S4 is covered by S1->S3 and S3->S4).
package deps

import (
	"fmt"
	"sort"
	"strings"

	"github.com/csrd-repro/datasync/internal/expr"
)

// Access distinguishes reads from writes.
type Access int

// Access kinds.
const (
	Read Access = iota
	Write
)

func (a Access) String() string {
	if a == Write {
		return "write"
	}
	return "read"
}

// Ref is a single array reference with affine subscripts, one per dimension.
type Ref struct {
	Array  string
	Index  []expr.Affine
	Access Access
}

// String renders the reference as, e.g., "A[I+3]".
func (r Ref) String() string {
	parts := make([]string, len(r.Index))
	for i, ix := range r.Index {
		parts[i] = ix.String()
	}
	return fmt.Sprintf("%s[%s]", r.Array, strings.Join(parts, ","))
}

// Stmt is one executable statement of a loop body. Reads and Writes are the
// array references it performs; scalar/private accesses need not be listed.
// Cost is the statement's execution time in simulator cycles.
type Stmt struct {
	Name   string
	Writes []Ref
	Reads  []Ref
	Cost   int64
}

// refs returns all references of the statement with Access set correctly.
func (s *Stmt) refs() []Ref {
	out := make([]Ref, 0, len(s.Writes)+len(s.Reads))
	for _, w := range s.Writes {
		w.Access = Write
		out = append(out, w)
	}
	for _, r := range s.Reads {
		r.Access = Read
		out = append(out, r)
	}
	return out
}

// Kind is the dependence type.
type Kind int

// Dependence kinds.
const (
	Flow   Kind = iota // read-after-write
	Anti               // write-after-read
	Output             // write-after-write
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// UnknownReason classifies why an arc's distance could not be proven
// constant — the boundary between the exact per-dimension solver and the
// conservative fallbacks (the "data dependence problems are easy only in
// restricted settings" point of Danicic et al.). ReasonExact marks arcs
// whose distance was solved exactly (Known=true).
type UnknownReason int

// Unknown-distance reasons.
const (
	// ReasonExact: the distance is a proven compile-time constant.
	ReasonExact UnknownReason = iota
	// ReasonCoupled: one subscript dimension mixes several index variables
	// (e.g. A[I+J]); the per-dimension solver cannot pin a unique distance.
	ReasonCoupled
	// ReasonSymbolic: an index variable appearing in the subscripts is left
	// unconstrained by the pair, so a whole family of distances — bounded
	// only by the (symbolic) iteration-space extent — can realize the
	// conflict.
	ReasonSymbolic
	// ReasonGCD: the subscripts have non-uniform variable parts and the GCD
	// test could not disprove an integer solution; a dependence at varying
	// distances may or may not exist.
	ReasonGCD
)

func (r UnknownReason) String() string {
	switch r {
	case ReasonExact:
		return "exact"
	case ReasonCoupled:
		return "coupled-subscripts"
	case ReasonSymbolic:
		return "symbolic-distance"
	case ReasonGCD:
		return "gcd-inconclusive"
	}
	return fmt.Sprintf("UnknownReason(%d)", int(r))
}

// Explain renders the reason as a human-readable clause for diagnostics.
func (r UnknownReason) Explain() string {
	switch r {
	case ReasonCoupled:
		return "a subscript couples several loop indexes, so no unique distance exists"
	case ReasonSymbolic:
		return "an index variable is unconstrained by the subscript pair, leaving a family of distances"
	case ReasonGCD:
		return "the GCD test cannot disprove a dependence between the non-uniform subscripts"
	}
	return "distance is a compile-time constant"
}

// Arc is one dependence: the statement at index Src must complete (its
// effect be visible) before the statement at index Dst executes, Dist
// iterations later.
type Arc struct {
	Src, Dst int     // indices into Graph.Stmts
	Kind     Kind    // flow, anti or output
	Dist     []int64 // distance vector, one entry per nest level; valid iff Known
	Known    bool    // distance is a compile-time constant
	SrcRef   Ref     // the access in Src giving rise to the dependence
	DstRef   Ref     // the access in Dst giving rise to the dependence

	// Reason records why the distance is not constant (ReasonExact iff
	// Known): the exact-vs-conservative boundary of the dependence test,
	// surfaced so tools report *why* an arc is unenforceable instead of a
	// bare "unknown".
	Reason UnknownReason

	// LoopIndep marks a zero-distance dependence within one iteration;
	// these are enforced for free by sequential execution of the body.
	LoopIndep bool
}

// scalarDist returns the linearized distance for depth-1 graphs.
func (a Arc) scalarDist() int64 { return a.Dist[0] }

// String renders the arc as, e.g., "S1 -flow(2)-> S2"; unknown-distance
// arcs carry their classification, e.g. "S1 -flow(?coupled-subscripts)-> S2".
func (a Arc) format(stmts []*Stmt) string {
	d := "?" + a.Reason.String()
	if a.Known {
		parts := make([]string, len(a.Dist))
		for i, v := range a.Dist {
			parts[i] = fmt.Sprintf("%d", v)
		}
		d = strings.Join(parts, ",")
	}
	suffix := ""
	if a.LoopIndep {
		suffix = " [loop-independent]"
	}
	return fmt.Sprintf("%s -%s(%s)-> %s%s", stmts[a.Src].Name, a.Kind, d, stmts[a.Dst].Name, suffix)
}

// Graph is the data dependence graph of one loop nest body.
type Graph struct {
	Stmts []*Stmt
	Depth int // nest depth the subscripts range over
	Arcs  []Arc
}

// Analyze builds the dependence graph for the given body statements, whose
// subscripts range over a nest of the given depth. Statements are taken in
// body (textual) order.
func Analyze(stmts []*Stmt, depth int) *Graph {
	g := &Graph{Stmts: stmts, Depth: depth}
	for ai, a := range stmts {
		for bi, b := range stmts {
			for _, r1 := range a.refs() {
				for _, r2 := range b.refs() {
					if r1.Access == Read && r2.Access == Read {
						continue
					}
					if r1.Array != r2.Array || len(r1.Index) != len(r2.Index) {
						continue
					}
					arc, ok := testPair(ai, bi, r1, r2, depth)
					if ok {
						g.Arcs = append(g.Arcs, arc)
					}
				}
			}
		}
	}
	sortArcs(g.Arcs)
	return g
}

// testPair decides whether the access r1 in statement index ai (at some
// iteration i) and r2 in statement bi (at iteration i+Delta) can touch the
// same element with a lexicographically non-negative Delta, making ai the
// source and bi the sink.
func testPair(ai, bi int, r1, r2 Ref, depth int) (Arc, bool) {
	kind := depKind(r1.Access, r2.Access)
	dist := make([]int64, depth)
	determined := make([]bool, depth)
	known := true
	reason := ReasonExact
	// conservative records the first (most specific) reason the distance
	// could not be pinned; later dimensions do not override it.
	conservative := func(r UnknownReason) {
		known = false
		if reason == ReasonExact {
			reason = r
		}
	}
	for d := range r1.Index {
		e1, e2 := r1.Index[d], r2.Index[d]
		// We need e1(i) == e2(i+Delta) for all i, i.e. identical variable
		// parts and sum_k coef2[k]*Delta[k] == const1-const2.
		varsEqual := true
		for k := 0; k < depth; k++ {
			if e1.Coef[k] != e2.Coef[k] {
				varsEqual = false
			}
		}
		if !varsEqual {
			// Non-uniform subscripts (e.g. A[2*I] vs A[I]): possible
			// dependence at varying distances. GCD test to rule it out.
			if gcdIndependent(e1, e2) {
				return Arc{}, false
			}
			conservative(ReasonGCD)
			continue
		}
		k, coef, ok := e2.SoleVar()
		diff := e1.Const - e2.Const
		if !ok {
			if e2.IsConst() {
				// Both sides constant in this dimension: must be equal.
				if diff != 0 {
					return Arc{}, false
				}
				continue
			}
			// More than one variable in the subscript (e.g. A[I+J]):
			// the per-dimension solver cannot pin a unique distance.
			conservative(ReasonCoupled)
			continue
		}
		if diff%coef != 0 {
			return Arc{}, false // no integer solution: independent
		}
		v := diff / coef
		if determined[k] && dist[k] != v {
			return Arc{}, false // inconsistent system: independent
		}
		dist[k], determined[k] = v, true
	}
	if known {
		// Index variables the subscript pair leaves unconstrained realize
		// the conflict at every distance along their axis — a family of
		// distances, not a constant. This includes refs that ignore an
		// index entirely (A[J] in an I/J nest, or the all-constant A[1]):
		// two instances differing only in the free index still touch the
		// same element, so assuming distance zero there would silently
		// drop real cross-iteration dependences.
		for k := 0; k < depth; k++ {
			if !determined[k] {
				conservative(ReasonSymbolic)
			}
		}
	}
	if !known {
		// Non-constant distance: instances may conflict in either
		// direction, so this orientation is reported whenever the source
		// could precede the sink — i.e. always, except the vacuous
		// same-statement same-ref pairing, which the (write, read) and
		// (read, write) orientations of the statement's own refs already
		// cover. Unknown arcs are reporting-only; the constant-distance
		// schemes refuse loops that have them.
		return Arc{Src: ai, Dst: bi, Kind: kind, Known: false, Reason: reason, SrcRef: r1, DstRef: r2}, true
	}
	switch lexSign(dist) {
	case -1:
		return Arc{}, false // reverse direction; found when testing (bi, ai)
	case 0:
		if ai >= bi {
			return Arc{}, false // same statement, or backward in body order
		}
		return Arc{Src: ai, Dst: bi, Kind: kind, Dist: dist, Known: true, LoopIndep: true, SrcRef: r1, DstRef: r2}, true
	default:
		return Arc{Src: ai, Dst: bi, Kind: kind, Dist: dist, Known: true, SrcRef: r1, DstRef: r2}, true
	}
}

func depKind(src, dst Access) Kind {
	switch {
	case src == Write && dst == Read:
		return Flow
	case src == Read && dst == Write:
		return Anti
	default:
		return Output
	}
}

// gcdIndependent applies the GCD test to one dimension pair with unequal
// variable parts: e1(i) - e2(j) == 0 must have an integer solution; if the
// gcd of all coefficients does not divide the constant difference, the
// references are independent in this dimension.
func gcdIndependent(e1, e2 expr.Affine) bool {
	var g int64
	for _, c := range e1.Coef {
		g = expr.GCD(g, c)
	}
	for _, c := range e2.Coef {
		g = expr.GCD(g, c)
	}
	diff := e1.Const - e2.Const
	if g == 0 {
		return diff != 0
	}
	return diff%g != 0
}

// lexSign returns the sign of the lexicographic comparison of v with zero.
func lexSign(v []int64) int {
	for _, x := range v {
		if x > 0 {
			return 1
		}
		if x < 0 {
			return -1
		}
	}
	return 0
}

func sortArcs(arcs []Arc) {
	sort.SliceStable(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Known != b.Known {
			return a.Known
		}
		if a.Known {
			for k := range a.Dist {
				if a.Dist[k] != b.Dist[k] {
					return a.Dist[k] < b.Dist[k]
				}
			}
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Reason < b.Reason
	})
}

// CrossArcs returns the known-distance, cross-iteration dependences — the
// ones that require explicit synchronization.
func (g *Graph) CrossArcs() []Arc {
	var out []Arc
	for _, a := range g.Arcs {
		if a.Known && !a.LoopIndep {
			out = append(out, a)
		}
	}
	return out
}

// UnknownArcs returns dependences whose distance is not constant.
func (g *Graph) UnknownArcs() []Arc {
	var out []Arc
	for _, a := range g.Arcs {
		if !a.Known {
			out = append(out, a)
		}
	}
	return out
}

// String renders the whole graph, one arc per line, in deterministic order.
func (g *Graph) String() string {
	var b strings.Builder
	for _, a := range g.Arcs {
		b.WriteString(a.format(g.Stmts))
		b.WriteByte('\n')
	}
	return b.String()
}

// StmtIndex returns the body index of the named statement, or -1.
func (g *Graph) StmtIndex(name string) int {
	for i, s := range g.Stmts {
		if s.Name == name {
			return i
		}
	}
	return -1
}
