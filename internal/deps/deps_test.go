package deps

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/expr"
)

// fig21 builds the loop of Fig 2.1:
//
//	DO I=1,N
//	  S1: A[I+3] = ...
//	  S2: ...    = A[I+1]
//	  S3: ...    = A[I+2]
//	  S4: A[I]   = ...
//	  S5: ...    = A[I-1]
//	END DO
func fig21() []*Stmt {
	ref := func(c int64) Ref { return Ref{Array: "A", Index: []expr.Affine{expr.Index(1, 0, c)}} }
	return []*Stmt{
		{Name: "S1", Writes: []Ref{ref(3)}, Cost: 1},
		{Name: "S2", Reads: []Ref{ref(1)}, Cost: 1},
		{Name: "S3", Reads: []Ref{ref(2)}, Cost: 1},
		{Name: "S4", Writes: []Ref{ref(0)}, Cost: 1},
		{Name: "S5", Reads: []Ref{ref(-1)}, Cost: 1},
	}
}

type wantArc struct {
	src, dst string
	kind     Kind
	dist     int64
}

func checkArcs(t *testing.T, g *Graph, arcs []Arc, want []wantArc) {
	t.Helper()
	if len(arcs) != len(want) {
		t.Fatalf("got %d arcs, want %d:\n%s", len(arcs), len(want), formatArcs(g, arcs))
	}
	for i, w := range want {
		a := arcs[i]
		if g.Stmts[a.Src].Name != w.src || g.Stmts[a.Dst].Name != w.dst ||
			a.Kind != w.kind || !a.Known || a.Dist[0] != w.dist {
			t.Errorf("arc %d = %s, want %s -%s(%d)-> %s",
				i, a.format(g.Stmts), w.src, w.kind, w.dist, w.dst)
		}
	}
}

func formatArcs(g *Graph, arcs []Arc) string {
	var b strings.Builder
	for _, a := range arcs {
		b.WriteString(a.format(g.Stmts))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFig21Graph reproduces Fig 2.1(b): the dependence graph of the
// five-statement loop, including the memory-based flow S1->S5 (distance 4)
// that the paper's figure omits because it is covered.
func TestFig21Graph(t *testing.T) {
	g := Analyze(fig21(), 1)
	checkArcs(t, g, g.CrossArcs(), []wantArc{
		{"S1", "S2", Flow, 2},
		{"S1", "S3", Flow, 1},
		{"S1", "S4", Output, 3},
		{"S1", "S5", Flow, 4},
		{"S2", "S4", Anti, 1},
		{"S3", "S4", Anti, 2},
		{"S4", "S5", Flow, 1},
	})
	if n := len(g.UnknownArcs()); n != 0 {
		t.Errorf("unknown arcs = %d, want 0", n)
	}
}

// TestFig21Enforced verifies the paper's covering observation: S1->S4
// (distance 3) is covered by S1->S3 (1) + S3->S4 (2), and the memory-based
// S1->S5 (4) is covered by the same path extended with S4->S5 (1).
func TestFig21Enforced(t *testing.T) {
	g := Analyze(fig21(), 1)
	checkArcs(t, g, g.Enforced(), []wantArc{
		{"S1", "S2", Flow, 2},
		{"S1", "S3", Flow, 1},
		{"S2", "S4", Anti, 1},
		{"S3", "S4", Anti, 2},
		{"S4", "S5", Flow, 1},
	})
}

// TestSelfDependence checks the first-order recurrence A[I] = A[I-1] + ...
func TestSelfDependence(t *testing.T) {
	s := &Stmt{
		Name:   "S1",
		Writes: []Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, 0)}}},
		Reads:  []Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, -1)}}},
	}
	g := Analyze([]*Stmt{s}, 1)
	checkArcs(t, g, g.CrossArcs(), []wantArc{{"S1", "S1", Flow, 1}})
	checkArcs(t, g, g.Enforced(), []wantArc{{"S1", "S1", Flow, 1}})
}

// TestLoopIndependent checks that same-iteration dependences are classified
// as loop-independent and excluded from enforcement.
func TestLoopIndependent(t *testing.T) {
	a := expr.Index(1, 0, 0)
	stmts := []*Stmt{
		{Name: "S1", Writes: []Ref{{Array: "A", Index: []expr.Affine{a}}}},
		{Name: "S2", Reads: []Ref{{Array: "A", Index: []expr.Affine{a}}}},
	}
	g := Analyze(stmts, 1)
	if len(g.Arcs) != 1 {
		t.Fatalf("got %d arcs, want 1:\n%s", len(g.Arcs), g)
	}
	arc := g.Arcs[0]
	if !arc.LoopIndep || arc.Kind != Flow || arc.Dist[0] != 0 {
		t.Errorf("arc = %s, want loop-independent flow(0)", arc.format(g.Stmts))
	}
	if len(g.Enforced()) != 0 {
		t.Error("loop-independent dependence should not be enforced")
	}
}

// TestIndependentRefs: accesses that can never touch the same element.
func TestIndependentRefs(t *testing.T) {
	stmts := []*Stmt{
		// A[2*I] = ...
		{Name: "S1", Writes: []Ref{{Array: "A", Index: []expr.Affine{expr.Scaled(1, 0, 2, 0)}}}},
		// ... = A[2*I+1]  (odd vs even: GCD test should prove independence)
		{Name: "S2", Reads: []Ref{{Array: "A", Index: []expr.Affine{expr.Scaled(1, 0, 2, 1)}}}},
	}
	g := Analyze(stmts, 1)
	if len(g.Arcs) != 0 {
		t.Errorf("got arcs for independent refs:\n%s", g)
	}
}

// TestDifferentArrays: no dependence between different arrays.
func TestDifferentArrays(t *testing.T) {
	stmts := []*Stmt{
		{Name: "S1", Writes: []Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, 0)}}}},
		{Name: "S2", Reads: []Ref{{Array: "B", Index: []expr.Affine{expr.Index(1, 0, 0)}}}},
	}
	if g := Analyze(stmts, 1); len(g.Arcs) != 0 {
		t.Errorf("got arcs across arrays:\n%s", g)
	}
}

// TestReadReadNoDependence: two reads never conflict.
func TestReadReadNoDependence(t *testing.T) {
	stmts := []*Stmt{
		{Name: "S1", Reads: []Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, 0)}}}},
		{Name: "S2", Reads: []Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, -1)}}}},
	}
	if g := Analyze(stmts, 1); len(g.Arcs) != 0 {
		t.Errorf("got arcs between reads:\n%s", g)
	}
}

// TestUnknownDistance: A[1] read against A[I] write has no constant distance.
func TestUnknownDistance(t *testing.T) {
	stmts := []*Stmt{
		{Name: "S1", Writes: []Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, 0)}}}},
		{Name: "S2", Reads: []Ref{{Array: "A", Index: []expr.Affine{expr.Const(1, 1)}}}},
	}
	g := Analyze(stmts, 1)
	// Both orientations are reported: the write may precede the constant
	// read (flow) and the read may precede a later write (anti).
	if n := len(g.UnknownArcs()); n != 2 {
		t.Fatalf("unknown arcs = %d, want 2:\n%s", n, g)
	}
	if len(g.CrossArcs()) != 0 {
		t.Errorf("unknown-distance arc leaked into CrossArcs:\n%s", g)
	}
}

// TestNestedDistanceVectors checks Example 2's nest:
//
//	DO I=1,N; DO J=1,M
//	  S1: A[I,J] = ...
//	  S2: B[I,J] = A[I,J-1] ...
//	  S3: ...    = B[I-1,J-1]
func ex2Stmts() []*Stmt {
	ix := func(ci, cj int64) []expr.Affine {
		return []expr.Affine{expr.Index(2, 0, ci), expr.Index(2, 1, cj)}
	}
	return []*Stmt{
		{Name: "S1", Writes: []Ref{{Array: "A", Index: ix(0, 0)}}, Cost: 1},
		{Name: "S2", Writes: []Ref{{Array: "B", Index: ix(0, 0)}}, Reads: []Ref{{Array: "A", Index: ix(0, -1)}}, Cost: 1},
		{Name: "S3", Reads: []Ref{{Array: "B", Index: ix(-1, -1)}}, Cost: 1},
	}
}

func TestNestedDistanceVectors(t *testing.T) {
	g := Analyze(ex2Stmts(), 2)
	cross := g.CrossArcs()
	if len(cross) != 2 {
		t.Fatalf("got %d cross arcs, want 2:\n%s", len(cross), g)
	}
	a0, a1 := cross[0], cross[1]
	if g.Stmts[a0.Src].Name != "S1" || g.Stmts[a0.Dst].Name != "S2" ||
		a0.Kind != Flow || a0.Dist[0] != 0 || a0.Dist[1] != 1 {
		t.Errorf("arc 0 = %s, want S1 -flow(0,1)-> S2", a0.format(g.Stmts))
	}
	if g.Stmts[a1.Src].Name != "S2" || g.Stmts[a1.Dst].Name != "S3" ||
		a1.Kind != Flow || a1.Dist[0] != 1 || a1.Dist[1] != 1 {
		t.Errorf("arc 1 = %s, want S2 -flow(1,1)-> S3", a1.format(g.Stmts))
	}
}

// TestLinearize reproduces Example 2's lpid distances: with inner extent M,
// (0,1) becomes 1 and (1,1) becomes M+1 (the paper's wait_PC(M+1, 2)).
func TestLinearize(t *testing.T) {
	const M = 5
	g := Analyze(ex2Stmts(), 2)
	lin := g.Linearize([]int64{3, M})
	cross := lin.CrossArcs()
	if len(cross) != 2 {
		t.Fatalf("got %d cross arcs after linearize, want 2:\n%s", len(cross), lin)
	}
	if d := cross[0].Dist[0]; d != 1 {
		t.Errorf("S1->S2 linearized distance = %d, want 1", d)
	}
	if d := cross[1].Dist[0]; d != M+1 {
		t.Errorf("S2->S3 linearized distance = %d, want %d", d, M+1)
	}
}

// TestLinearizeDropsUnrealizable: a lex-positive vector whose linearized
// distance is non-positive cannot link any two in-bounds iterations.
func TestLinearizeDropsUnrealizable(t *testing.T) {
	ix := func(ci, cj int64) []expr.Affine {
		return []expr.Affine{expr.Index(2, 0, ci), expr.Index(2, 1, cj)}
	}
	stmts := []*Stmt{
		{Name: "S1", Writes: []Ref{{Array: "A", Index: ix(0, 0)}}},
		{Name: "S2", Reads: []Ref{{Array: "A", Index: ix(-1, 5)}}}, // distance (1,-5)
	}
	g := Analyze(stmts, 2)
	if len(g.CrossArcs()) != 1 {
		t.Fatalf("want 1 cross arc pre-linearize:\n%s", g)
	}
	lin := g.Linearize([]int64{10, 3}) // 1*3 - 5 = -2: unrealizable
	if len(lin.CrossArcs()) != 0 {
		t.Errorf("unrealizable arc survived linearization:\n%s", lin)
	}
}

// TestEnforcedDedup merges arcs with equal (src,dst,distance): a statement
// reading the same element twice yields one enforced arc, not two.
func TestEnforcedDedup(t *testing.T) {
	i0 := expr.Index(1, 0, 0)
	i1 := expr.Index(1, 0, -1)
	s := &Stmt{
		Name:   "S1", // A[I] = A[I-1] + A[I-1]
		Writes: []Ref{{Array: "A", Index: []expr.Affine{i0}}},
		Reads: []Ref{
			{Array: "A", Index: []expr.Affine{i1}},
			{Array: "A", Index: []expr.Affine{i1}},
		},
	}
	g := Analyze([]*Stmt{s}, 1)
	if n := len(g.CrossArcs()); n != 2 {
		t.Fatalf("got %d cross arcs, want 2 (duplicate reads):\n%s", n, g)
	}
	checkArcs(t, g, g.Enforced(), []wantArc{{"S1", "S1", Flow, 1}})
}

// TestMutualCoverageViaBodyOrder documents a subtle sound elimination: for
// S1: A[I]=B[I-1]; S2: B[I]=A[I-1], the arc S1->S2 (flow, 1) is covered
// transitively by S1-(body)->S2@i, S2-(1)->S1@(i+1), S1-(body)->S2@(i+1),
// so exactly one of the two cross arcs remains enforced — and the remaining
// one must not also be removed (no unsound mutual elimination).
func TestMutualCoverageViaBodyOrder(t *testing.T) {
	i0 := expr.Index(1, 0, 0)
	i1 := expr.Index(1, 0, -1)
	stmts := []*Stmt{
		{Name: "S1", Writes: []Ref{{Array: "A", Index: []expr.Affine{i0}}}, Reads: []Ref{{Array: "B", Index: []expr.Affine{i1}}}},
		{Name: "S2", Writes: []Ref{{Array: "B", Index: []expr.Affine{i0}}}, Reads: []Ref{{Array: "A", Index: []expr.Affine{i1}}}},
	}
	g := Analyze(stmts, 1)
	if n := len(g.CrossArcs()); n != 2 {
		t.Fatalf("got %d cross arcs, want 2:\n%s", n, g)
	}
	checkArcs(t, g, g.Enforced(), []wantArc{{"S2", "S1", Flow, 1}})
}

// TestCoverageNotAppliedWhenSumDiffers: a path with a *smaller* total
// distance must not cover an arc (instances of a statement in different
// iterations are unordered in Doacross execution).
func TestCoverageNotAppliedWhenSumDiffers(t *testing.T) {
	ref := func(arr string, c int64) Ref {
		return Ref{Array: arr, Index: []expr.Affine{expr.Index(1, 0, c)}}
	}
	stmts := []*Stmt{
		// S1 writes A[I] and B[I+2]; S2 reads A[I-1] (flow d=1) and
		// B[I-1] (flow d=3). Path for d=3 via d=1 sums to 1 != 3.
		{Name: "S1", Writes: []Ref{ref("A", 0), ref("B", 2)}},
		{Name: "S2", Reads: []Ref{ref("A", -1), ref("B", -1)}},
	}
	g := Analyze(stmts, 1)
	enf := g.Enforced()
	if len(enf) != 2 {
		t.Fatalf("got %d enforced arcs, want 2 (no unsound covering):\n%s", len(enf), formatArcs(g, enf))
	}
}

// TestCoverageViaBodyOrder: an arc can be covered by a cross arc to an
// earlier statement followed by body-order into the sink.
func TestCoverageViaBodyOrder(t *testing.T) {
	ref := func(arr string, c int64) Ref {
		return Ref{Array: arr, Index: []expr.Affine{expr.Index(1, 0, c)}}
	}
	stmts := []*Stmt{
		// S1 writes A[I] and B[I]; S2 reads A[I-2]; S3 reads B[I-2].
		// S1->S3 flow(2) is covered by S1->S2 flow(2) + body edge S2->S3.
		{Name: "S1", Writes: []Ref{ref("A", 0), ref("B", 0)}},
		{Name: "S2", Reads: []Ref{ref("A", -2)}},
		{Name: "S3", Reads: []Ref{ref("B", -2)}},
	}
	g := Analyze(stmts, 1)
	enf := g.Enforced()
	checkArcs(t, g, enf, []wantArc{{"S1", "S2", Flow, 2}})
}

// TestStmtIndex exercises name lookup.
func TestStmtIndex(t *testing.T) {
	g := Analyze(fig21(), 1)
	if i := g.StmtIndex("S3"); i != 2 {
		t.Errorf("StmtIndex(S3) = %d, want 2", i)
	}
	if i := g.StmtIndex("nope"); i != -1 {
		t.Errorf("StmtIndex(nope) = %d, want -1", i)
	}
}

// TestGraphString smoke-tests deterministic rendering.
func TestGraphString(t *testing.T) {
	g := Analyze(fig21(), 1)
	s := g.String()
	if !strings.Contains(s, "S1 -flow(2)-> S2") || !strings.Contains(s, "S3 -anti(2)-> S4") {
		t.Errorf("graph rendering missing expected arcs:\n%s", s)
	}
	if s != g.String() {
		t.Error("String not deterministic")
	}
}

// randomLoop builds a random single-nest loop over small arrays.
func randomLoop(rng *rand.Rand, nStmts int) []*Stmt {
	arrays := []string{"A", "B", "C"}
	stmts := make([]*Stmt, nStmts)
	for i := range stmts {
		s := &Stmt{Name: fmt.Sprintf("S%d", i+1), Cost: 1}
		if rng.Intn(2) == 0 {
			s.Writes = []Ref{{Array: arrays[rng.Intn(len(arrays))],
				Index: []expr.Affine{expr.Index(1, 0, int64(rng.Intn(7)-3))}}}
		}
		for r := rng.Intn(3); r > 0; r-- {
			s.Reads = append(s.Reads, Ref{Array: arrays[rng.Intn(len(arrays))],
				Index: []expr.Affine{expr.Index(1, 0, int64(rng.Intn(7)-3))}})
		}
		stmts[i] = s
	}
	return stmts
}

// TestEnforcedSoundRandom: for random loops, every eliminated arc must have a
// covering exact-sum path over the kept arcs — verified independently here
// by re-running the path search against the final kept set.
func TestEnforcedSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		stmts := randomLoop(rng, 2+rng.Intn(5))
		g := Analyze(stmts, 1)
		enf := g.Enforced()
		kept := make(map[[3]int64]bool)
		for _, a := range enf {
			kept[[3]int64{int64(a.Src), int64(a.Dst), a.Dist[0]}] = true
		}
		// Every original cross arc must be either kept or covered by kept
		// arcs (sound elimination).
		for _, a := range dedupe(g.CrossArcs()) {
			key := [3]int64{int64(a.Src), int64(a.Dst), a.Dist[0]}
			if kept[key] {
				continue
			}
			if !pathExactSum(enf, len(stmts), a.Src, a.Dst, a.Dist[0]) {
				t.Fatalf("trial %d: eliminated arc %s has no covering path; enforced:\n%s\nall:\n%s",
					trial, a.format(g.Stmts), formatArcs(g, enf), g)
			}
		}
	}
}

func dedupe(arcs []Arc) []Arc {
	seen := make(map[[3]int64]bool)
	var out []Arc
	for _, a := range arcs {
		k := [3]int64{int64(a.Src), int64(a.Dst), a.Dist[0]}
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// pathExactSum is an independent re-implementation of the covering check
// used to cross-validate coveredBy.
func pathExactSum(arcs []Arc, nStmts, src, dst int, d int64) bool {
	type st struct {
		n int
		r int64
	}
	seen := map[st]bool{}
	var dfs func(n int, r int64, edges int) bool
	dfs = func(n int, r int64, edges int) bool {
		if n == dst && r == 0 && edges > 0 {
			return true
		}
		k := st{n, r}
		if seen[k] {
			return false
		}
		seen[k] = true
		for _, a := range arcs {
			if a.Src == n && a.Dist[0] <= r && dfs(a.Dst, r-a.Dist[0], edges+1) {
				return true
			}
		}
		for nx := n + 1; nx < nStmts; nx++ {
			if dfs(nx, r, edges+1) {
				return true
			}
		}
		return false
	}
	return dfs(src, d, 0)
}

// TestUnknownReasonClassification pins the classification of why an arc
// lands in UnknownArcs: coupled subscripts, an unconstrained (symbolic)
// index, and a GCD-inconclusive non-uniform pair each carry their reason.
func TestUnknownReasonClassification(t *testing.T) {
	cases := []struct {
		name   string
		w, r   expr.Affine
		depth  int
		reason UnknownReason
	}{
		// A[I+J] vs A[I+J-1]: one dimension couples two indexes.
		{"coupled", expr.Index(2, 0, 0).Add(expr.Index(2, 1, 0)),
			expr.Index(2, 0, -1).Add(expr.Index(2, 1, 0)), 2, ReasonCoupled},
		// A[I] vs A[I-1] in an I/J nest: J is unconstrained, so the
		// conflict realizes at (1, d2) for every d2 — a distance family.
		{"symbolic", expr.Index(2, 0, 0), expr.Index(2, 0, -1), 2, ReasonSymbolic},
		// A[I] write vs A[1] read: non-uniform variable parts; the GCD of
		// the coefficients divides the constant difference, so the test
		// cannot disprove a dependence.
		{"gcd-const", expr.Index(1, 0, 0), expr.Const(1, 1), 1, ReasonGCD},
		// A[2*I] vs A[I]: non-uniform coefficients, GCD cannot disprove.
		{"gcd", expr.Scaled(1, 0, 2, 0), expr.Index(1, 0, 0), 1, ReasonGCD},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stmts := []*Stmt{
				{Name: "S1", Writes: []Ref{{Array: "A", Index: []expr.Affine{tc.w}}}},
				{Name: "S2", Reads: []Ref{{Array: "A", Index: []expr.Affine{tc.r}}}},
			}
			g := Analyze(stmts, tc.depth)
			unknown := g.UnknownArcs()
			if len(unknown) == 0 {
				t.Fatalf("no unknown arcs:\n%s", g)
			}
			for _, a := range unknown {
				if a.Reason != tc.reason {
					t.Errorf("arc %s: reason = %s, want %s", a.format(stmts), a.Reason, tc.reason)
				}
				if a.Reason == ReasonExact {
					t.Errorf("unknown arc carries ReasonExact")
				}
			}
			for _, a := range g.CrossArcs() {
				if a.Reason != ReasonExact {
					t.Errorf("known arc %s carries reason %s", a.format(stmts), a.Reason)
				}
			}
		})
	}
}

// TestIgnoredIndexIsConservative pins the fix for a soundness hole: a ref
// that ignores an index variable entirely (A[J] in an I/J nest, or the
// all-constant A[1]) conflicts with itself at every distance along the free
// axis. The analysis must report that as an unknown-distance (symbolic)
// dependence — never as independence or a loop-independent arc.
func TestIgnoredIndexIsConservative(t *testing.T) {
	refJ := Ref{Array: "A", Index: []expr.Affine{expr.Index(2, 1, 0)}}
	stmts := []*Stmt{{Name: "S1", Writes: []Ref{refJ}, Reads: []Ref{refJ}}}
	g := Analyze(stmts, 2)
	if len(g.UnknownArcs()) == 0 {
		t.Fatalf("A[J] self-update in an I/J nest reported no unknown arcs:\n%s", g)
	}
	for _, a := range g.UnknownArcs() {
		if a.Reason != ReasonSymbolic {
			t.Errorf("arc %s: reason = %s, want %s", a.format(stmts), a.Reason, ReasonSymbolic)
		}
	}
	if n := len(g.CrossArcs()); n != 0 {
		t.Errorf("CrossArcs = %d, want 0 (no constant distance exists)", n)
	}

	refC := Ref{Array: "A", Index: []expr.Affine{expr.Const(1, 1)}}
	stmts = []*Stmt{{Name: "S1", Writes: []Ref{refC}, Reads: []Ref{refC}}}
	g = Analyze(stmts, 1)
	if len(g.UnknownArcs()) == 0 {
		t.Fatalf("A[1] self-update reported no unknown arcs:\n%s", g)
	}
}
