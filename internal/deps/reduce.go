package deps

import (
	"fmt"
	"sort"
)

// Linearize converts a depth-k dependence graph into the depth-1 graph of
// the coalesced (linearized) loop, as in Example 2 of the paper: the nest is
// executed as a single loop over the linearized process id
// lpid = (i1-l1)*N2*...*Nk + ... + (ik-lk) + 1, and each distance vector
// (d1,...,dk) becomes the scalar distance d1*N2*...*Nk + ... + dk.
//
// extents gives the iteration count of each nest level, outermost first.
// Arcs whose linearized distance is not positive have no realizable
// instances inside the iteration space and are dropped. Coalescing is
// conservative: near iteration-space boundaries the linearized dependence
// may link iterations that were independent in the nest (the paper's "extra
// dependences", dashed in Fig 5.2c); this costs some parallelism but removes
// all boundary tests.
func (g *Graph) Linearize(extents []int64) *Graph {
	if len(extents) != g.Depth {
		panic(fmt.Sprintf("deps: Linearize with %d extents on depth-%d graph", len(extents), g.Depth))
	}
	strides := make([]int64, g.Depth)
	s := int64(1)
	for k := g.Depth - 1; k >= 0; k-- {
		strides[k] = s
		s *= extents[k]
	}
	out := &Graph{Stmts: g.Stmts, Depth: 1}
	for _, a := range g.Arcs {
		na := a
		if a.Known {
			var d int64
			for k, v := range a.Dist {
				d += v * strides[k]
			}
			switch {
			case d > 0:
				na.Dist = []int64{d}
				na.LoopIndep = false
			case d == 0 && a.LoopIndep:
				na.Dist = []int64{0}
			default:
				continue // no realizable instance in the linear order
			}
		}
		out.Arcs = append(out.Arcs, na)
	}
	sortArcs(out.Arcs)
	return out
}

// Deduped returns the cross-iteration dependences with duplicate
// (src, dst, distance) arcs merged but no covering elimination. This is the
// correct enforcement set for bodies with conditional branches, where a
// covering path through a skipped statement would not be executed.
func (g *Graph) Deduped() []Arc {
	if g.Depth != 1 {
		panic("deps: Deduped requires a depth-1 graph; Linearize first")
	}
	seen := make(map[[3]int64]bool)
	var arcs []Arc
	for _, a := range g.CrossArcs() {
		key := [3]int64{int64(a.Src), int64(a.Dst), a.scalarDist()}
		if seen[key] {
			continue
		}
		seen[key] = true
		arcs = append(arcs, a)
	}
	return arcs
}

// Enforced returns the minimal set of cross-iteration dependences that must
// be synchronized, for a depth-1 graph of a straight-line body (every
// statement executes each iteration — a precondition of step 3's covering
// paths; use Deduped for branching bodies):
//
//  1. loop-independent and unknown-distance arcs are excluded (the former
//     need no synchronization; the latter cannot be enforced by
//     constant-distance schemes and are reported by UnknownArcs);
//  2. duplicate (src,dst,distance) arcs are merged;
//  3. an arc is removed when it is covered by a path of remaining arcs and
//     intra-iteration (body-order) edges whose distances sum to exactly the
//     arc's distance — e.g. S1-(3)->S4 is covered by S1-(1)->S3-(2)->S4.
//
// Processing is in decreasing distance order so that a covering path's
// components (each strictly shorter, or equal-distance but never mutually
// covering) are still present when an arc is tested.
func (g *Graph) Enforced() []Arc {
	if g.Depth != 1 {
		panic("deps: Enforced requires a depth-1 graph; Linearize first")
	}
	// sortArcs puts Flow first, so the representative of a merged group is
	// the flow arc if there is one.
	arcs := g.Deduped()
	// Decreasing distance; deterministic tie-break.
	order := make([]int, len(arcs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := arcs[order[x]], arcs[order[y]]
		if a.scalarDist() != b.scalarDist() {
			return a.scalarDist() > b.scalarDist()
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	removed := make([]bool, len(arcs))
	for _, i := range order {
		if coveredBy(arcs, removed, i) {
			removed[i] = true
		}
	}
	var out []Arc
	for i, a := range arcs {
		if !removed[i] {
			out = append(out, a)
		}
	}
	sortArcs(out)
	return out
}

// coveredBy reports whether arcs[self] is covered by an exact-sum path of
// the non-removed arcs (excluding self) plus zero-distance body-order edges.
type coverState struct {
	node int
	rem  int64
}

func coveredBy(arcs []Arc, removed []bool, self int) bool {
	target := arcs[self]
	d := target.scalarDist()
	nStmts := stmtCount(arcs, target)
	memo := make(map[coverState]bool)
	budget := 1 << 20 // conservative cap: on exhaustion keep the arc
	var search func(node int, rem int64, edges int) bool
	search = func(node int, rem int64, edges int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if node == target.Dst && rem == 0 && edges > 0 {
			return true
		}
		st := coverState{node, rem}
		if v, ok := memo[st]; ok {
			return v
		}
		memo[st] = false // cycle guard; cycles cannot help at same state
		found := false
		for i, a := range arcs {
			if i == self || removed[i] || a.Src != node || a.scalarDist() > rem {
				continue
			}
			if search(a.Dst, rem-a.scalarDist(), edges+1) {
				found = true
				break
			}
		}
		if !found {
			// Zero-distance body-order edges: node precedes any later
			// statement of the same iteration. Only useful as a hop to a
			// cross arc or to the target itself.
			for next := node + 1; next < nStmts; next++ {
				if search(next, rem, edges+1) {
					found = true
					break
				}
			}
		}
		memo[st] = found
		return found
	}
	return search(target.Src, d, 0)
}

func stmtCount(arcs []Arc, target Arc) int {
	max := target.Dst
	if target.Src > max {
		max = target.Src
	}
	for _, a := range arcs {
		if a.Src > max {
			max = a.Src
		}
		if a.Dst > max {
			max = a.Dst
		}
	}
	return max + 1
}
