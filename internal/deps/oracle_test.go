package deps

import (
	"math/rand"
	"testing"

	"github.com/csrd-repro/datasync/internal/expr"
)

// ---- Brute-force dependence oracle ----
//
// For small iteration spaces the dependence relation can be computed by
// enumeration: two access instances conflict when they touch the same
// element and at least one writes. Analyze must be complete (every
// conflicting ordered pair is implied by a reported arc at the right
// distance) and sound (every constant-distance arc is witnessed by at
// least one real conflict inside a large-enough space).

type instance struct {
	iter int64
	pos  int // statement body position
	ref  Ref
}

// enumerate lists every access instance over iterations 1..n.
func enumerate(stmts []*Stmt, n int64) []instance {
	var out []instance
	for i := int64(1); i <= n; i++ {
		for pos, s := range stmts {
			for _, r := range s.refs() {
				out = append(out, instance{iter: i, pos: pos, ref: r})
			}
		}
	}
	return out
}

func conflict(a, b instance) bool {
	if a.ref.Access == Read && b.ref.Access == Read {
		return false
	}
	if a.ref.Array != b.ref.Array || len(a.ref.Index) != len(b.ref.Index) {
		return false
	}
	for d := range a.ref.Index {
		if a.ref.Index[d].Eval([]int64{a.iter}) != b.ref.Index[d].Eval([]int64{b.iter}) {
			return false
		}
	}
	return true
}

// arcImplies reports whether some reported arc explains the ordered
// conflicting pair (a executes before b).
func arcImplies(g *Graph, a, b instance) bool {
	delta := b.iter - a.iter
	for _, arc := range g.Arcs {
		if arc.Src != a.pos || arc.Dst != b.pos {
			continue
		}
		if !arc.Known {
			return true // unknown-distance arcs conservatively cover the pair
		}
		if arc.Dist[0] == delta {
			return true
		}
	}
	return false
}

// TestAnalyzeCompleteBruteForce: every ordered conflicting instance pair in
// a random loop is implied by the analysis.
func TestAnalyzeCompleteBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 12
	for trial := 0; trial < 300; trial++ {
		stmts := randomLoop(rng, 1+rng.Intn(4))
		g := Analyze(stmts, 1)
		insts := enumerate(stmts, n)
		for _, a := range insts {
			for _, b := range insts {
				// Ordered pair: a strictly before b in serial execution.
				if a.iter > b.iter || (a.iter == b.iter && a.pos >= b.pos) {
					continue
				}
				if !conflict(a, b) {
					continue
				}
				if !arcImplies(g, a, b) {
					t.Fatalf("trial %d: conflict %s@%d(stmt %d) -> %s@%d(stmt %d) not implied\ngraph:\n%s",
						trial, a.ref, a.iter, a.pos, b.ref, b.iter, b.pos, g)
				}
			}
		}
	}
}

// TestAnalyzeSoundBruteForce: every constant-distance arc is witnessed by a
// real conflicting pair somewhere in a sufficiently large space.
func TestAnalyzeSoundBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n = 16
	for trial := 0; trial < 300; trial++ {
		stmts := randomLoop(rng, 1+rng.Intn(4))
		g := Analyze(stmts, 1)
		insts := enumerate(stmts, n)
		for _, arc := range g.Arcs {
			if !arc.Known {
				continue
			}
			witnessed := false
			for _, a := range insts {
				if witnessed {
					break
				}
				if a.pos != arc.Src {
					continue
				}
				for _, b := range insts {
					if b.pos != arc.Dst || b.iter-a.iter != arc.Dist[0] {
						continue
					}
					if conflict(a, b) {
						witnessed = true
						break
					}
				}
			}
			if !witnessed {
				t.Fatalf("trial %d: arc %s has no witness in 1..%d\ngraph:\n%s",
					trial, arc.format(g.Stmts), n, g)
			}
		}
	}
}

// TestAnalyzeCompleteScaled extends the oracle to scaled subscripts
// (2*I style), where the GCD test must not discard real conflicts.
func TestAnalyzeCompleteScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n = 12
	mkRef := func() Ref {
		return Ref{Array: "A", Index: []expr.Affine{
			expr.Scaled(1, 0, int64(1+rng.Intn(3)), int64(rng.Intn(7)-3))}}
	}
	for trial := 0; trial < 300; trial++ {
		var stmts []*Stmt
		for si := 0; si < 1+rng.Intn(3); si++ {
			s := &Stmt{Name: string(rune('A' + si))}
			if rng.Intn(2) == 0 {
				s.Writes = []Ref{mkRef()}
			}
			for r := rng.Intn(2); r >= 0; r-- {
				s.Reads = append(s.Reads, mkRef())
			}
			stmts = append(stmts, s)
		}
		g := Analyze(stmts, 1)
		insts := enumerate(stmts, n)
		for _, a := range insts {
			for _, b := range insts {
				if a.iter > b.iter || (a.iter == b.iter && a.pos >= b.pos) {
					continue
				}
				if !conflict(a, b) {
					continue
				}
				if !arcImplies(g, a, b) {
					t.Fatalf("trial %d: scaled conflict %s@%d -> %s@%d not implied\ngraph:\n%s",
						trial, a.ref, a.iter, b.ref, b.iter, g)
				}
			}
		}
	}
}
