// Package verify checks generated synchronization programs against the loop
// nest's dependence set — the correctness side of the paper's schemes.
//
// The static half (Static) takes the abstract synchronization program a
// scheme emits (codegen.ExtractSyncProgram) and constructs the
// happens-before relation its waits and signals induce over the iteration
// space, without running the machine. On that relation it checks that
//
//   - every cross-iteration dependence arc is ordered (an uncovered arc is
//     reported as a race with a concrete iteration-pair witness),
//   - loop-independent arcs keep body order within each iteration,
//   - no wait-for cycle exists (a cycle is reported as a deadlock with the
//     cycle as certificate),
//   - waits whose release is already implied transitively are flagged as
//     advisory notes, validating covering elimination.
//
// The construction is sound relative to per-variable signal discipline,
// which is itself checked rather than assumed: monotone single-chain values
// for written variables (every consecutive pair of signal values must be
// happens-before ordered, or guarded — the improved mark_PC fires only once
// ownership arrived), and exact counting for atomically incremented keys.
// Violations surface as hard findings instead of silently unsound edges.
//
// The dynamic half (Dynamic) replays a machine synchronization trace
// (sim.EnableSyncTrace) with vector clocks — iterations as threads,
// synchronization variables as the release/acquire points — and flags
// conflicting shared-memory accesses unordered by happens-before, in the
// FastTrack style of one last-write epoch plus a read map per location.
package verify

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Class categorizes a finding.
type Class int

// Finding classes. All are hard (verification failures) except
// RedundantWait, which is advisory.
const (
	// Race is a dependence arc instance not ordered by the synchronization.
	Race Class = iota
	// Deadlock is a wait-for cycle in the happens-before graph.
	Deadlock
	// UnreleasableWait is a wait no signal in the program can satisfy.
	UnreleasableWait
	// UnsoundRelease is a conditional release (mark_PC) not backed by an
	// ordered unconditional signal: if the conditional write does not fire,
	// nothing proves the waiter still sees the source's effects.
	UnsoundRelease
	// UnserializedSignals means a variable's signal values do not form a
	// happens-before chain, so wait release order is not well defined.
	UnserializedSignals
	// AmbiguousSignals means two iterations signal the same value on one
	// variable, so the releaser of a wait is not statically determined.
	AmbiguousSignals
	// Unanalyzable marks programs outside the static model: opaque atomic
	// ops, mixed write/increment variables, unknown-distance arcs.
	Unanalyzable
	// RedundantWait (advisory) marks a wait site all of whose instances are
	// already implied transitively by earlier waits.
	RedundantWait
)

func (c Class) String() string {
	switch c {
	case Race:
		return "race"
	case Deadlock:
		return "deadlock"
	case UnreleasableWait:
		return "unreleasable-wait"
	case UnsoundRelease:
		return "unsound-release"
	case UnserializedSignals:
		return "unserialized-signals"
	case AmbiguousSignals:
		return "ambiguous-signals"
	case Unanalyzable:
		return "unanalyzable"
	case RedundantWait:
		return "redundant-wait"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Advisory reports whether the class is informational rather than a
// verification failure.
func (c Class) Advisory() bool { return c == RedundantWait }

// MarshalJSON renders the class as its name.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// Finding is one verification result.
type Finding struct {
	Class   Class  `json:"class"`
	Summary string `json:"summary"`
	Detail  string `json:"detail,omitempty"`

	// Race witnesses: the arc, one concrete unordered iteration pair
	// (index vectors), and how many instance pairs failed in total.
	Arc     string  `json:"arc,omitempty"`
	SrcIter []int64 `json:"src_iter,omitempty"`
	DstIter []int64 `json:"dst_iter,omitempty"`
	Pairs   int64   `json:"pairs,omitempty"`

	Var   string   `json:"var,omitempty"`   // synchronization variable involved
	Site  string   `json:"site,omitempty"`  // normalized wait site (redundancy)
	Cycle []string `json:"cycle,omitempty"` // deadlock certificate
}

func (f Finding) String() string {
	s := fmt.Sprintf("[%s] %s", f.Class, f.Summary)
	if f.Detail != "" {
		s += "\n    " + strings.ReplaceAll(f.Detail, "\n", "\n    ")
	}
	if len(f.Cycle) > 0 {
		s += "\n    cycle: " + strings.Join(f.Cycle, " -> ")
	}
	return s
}

// Report is the result of one static verification run.
type Report struct {
	Workload   string `json:"workload"`
	Scheme     string `json:"scheme"`
	Iterations int64  `json:"iterations"` // full iteration space
	Analyzed   int64  `json:"analyzed"`   // iterations actually modeled
	Truncated  bool   `json:"truncated,omitempty"`

	Nodes        int   `json:"nodes"`
	Waits        int   `json:"waits"`
	Signals      int   `json:"signals"`
	Arcs         int   `json:"arcs"`
	PairsChecked int64 `json:"pairs_checked"`

	Findings []Finding `json:"findings"` // hard findings
	Notes    []Finding `json:"notes"`    // advisory findings
}

// OK reports whether verification passed (no hard findings).
func (r *Report) OK() bool { return len(r.Findings) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s under %s: %d/%d iterations, %d nodes, %d waits, %d signals\n",
		r.Workload, r.Scheme, r.Analyzed, r.Iterations, r.Nodes, r.Waits, r.Signals)
	fmt.Fprintf(&b, "dependence arcs: %d (%d instance pairs checked)\n", r.Arcs, r.PairsChecked)
	if r.Truncated {
		fmt.Fprintf(&b, "note: analysis window truncated to %d iterations\n", r.Analyzed)
	}
	if r.OK() {
		b.WriteString("PASS: every dependence arc is ordered by happens-before\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d finding(s)\n", len(r.Findings))
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	for _, f := range r.Notes {
		fmt.Fprintf(&b, "  note %s\n", f)
	}
	return b.String()
}

// Options tunes static verification.
type Options struct {
	// MaxIters caps the number of iterations materialized (0 = 512). Every
	// realizable arc instance inside the window is checked; if the window
	// truncates the iteration space the report says so.
	MaxIters int64
}

func (o Options) maxIters() int64 {
	if o.MaxIters > 0 {
		return o.MaxIters
	}
	return 512
}
