package verify_test

import (
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/verify"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// vetSchemes are the scheme configurations the verifier is exercised
// against, covering every shipped scheme family and both folded and
// unfolded variants.
func vetSchemes() []struct {
	name string
	sch  codegen.Scheme
} {
	return []struct {
		name string
		sch  codegen.Scheme
	}{
		{"process-x4", codegen.ProcessOriented{X: 4, Improved: true}},
		{"process-x1", codegen.ProcessOriented{X: 1, Improved: true}},
		{"process-basic-x4", codegen.ProcessOriented{X: 4, Improved: false}},
		{"statement", codegen.StatementOriented{}},
		{"statement-k2", codegen.StatementOriented{K: 2}},
		{"ref", codegen.RefBased{}},
		{"instance", codegen.NewInstanceBased()},
	}
}

func vetWorkloads() []*codegen.Workload {
	return []*codegen.Workload{
		workloads.Fig21(40, 4),
		workloads.Nested(10, 8, 4),
		workloads.Branchy(40, 4),
		workloads.Recurrence(60, 3, 4),
		workloads.Stencil(11, 4),
	}
}

// TestStaticCleanOnShippedSchemes is the core soundness-of-schemes check:
// every shipped scheme must verify clean (no hard findings) on every
// workload, with full iteration-space coverage.
func TestStaticCleanOnShippedSchemes(t *testing.T) {
	for _, w := range vetWorkloads() {
		for _, s := range vetSchemes() {
			sp, err := codegen.ExtractSyncProgram(w, s.sch)
			if err != nil {
				t.Fatalf("%s/%s: extract: %v", w.Name, s.name, err)
			}
			rep := verify.Static(sp, verify.Options{})
			if !rep.OK() {
				t.Errorf("%s/%s: hard findings:\n%s", w.Name, s.name, rep)
			}
			if rep.Truncated {
				t.Errorf("%s/%s: unexpectedly truncated", w.Name, s.name)
			}
			if rep.PairsChecked == 0 {
				t.Errorf("%s/%s: no arc instance pairs checked", w.Name, s.name)
			}
		}
	}
}

// TestStaticReportShape sanity-checks the counters and text rendering.
func TestStaticReportShape(t *testing.T) {
	w := workloads.Fig21(40, 4)
	sp, err := codegen.ExtractSyncProgram(w, codegen.ProcessOriented{X: 4, Improved: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Static(sp, verify.Options{})
	if rep.Waits == 0 || rep.Signals == 0 || rep.Arcs == 0 {
		t.Fatalf("empty counters: %+v", rep)
	}
	if got := rep.String(); !strings.Contains(got, "PASS") {
		t.Fatalf("report text should PASS:\n%s", got)
	}
}

// TestStaticDeadlock feeds a fabricated two-iteration program whose waits
// release each other in a cycle and expects a deadlock certificate.
func TestStaticDeadlock(t *testing.T) {
	w := workloads.Recurrence(2, 1, 1)
	sp := &codegen.SyncProgram{
		Workload: w,
		Scheme:   "fabricated-cycle",
		Iters:    2,
		VarNames: []string{"A", "B"},
		VarInit:  []int64{0, 0},
		At: func(iter int64) []codegen.SyncOp {
			if iter == 1 {
				return []codegen.SyncOp{
					{Kind: codegen.SyncWait, Var: 0, Value: 1, Tag: "wait A>=1 i=1"},
					{Kind: codegen.SyncStmt, Stmt: 0, Tag: "S1"},
					{Kind: codegen.SyncSignal, Var: 1, Value: 1, Tag: "signal B=1 i=1"},
				}
			}
			return []codegen.SyncOp{
				{Kind: codegen.SyncWait, Var: 1, Value: 1, Tag: "wait B>=1 i=2"},
				{Kind: codegen.SyncStmt, Stmt: 0, Tag: "S1"},
				{Kind: codegen.SyncSignal, Var: 0, Value: 1, Tag: "signal A=1 i=2"},
			}
		},
	}
	rep := verify.Static(sp, verify.Options{})
	if rep.OK() {
		t.Fatalf("cyclic program verified clean:\n%s", rep)
	}
	var dl *verify.Finding
	for i := range rep.Findings {
		if rep.Findings[i].Class == verify.Deadlock {
			dl = &rep.Findings[i]
			break
		}
	}
	if dl == nil {
		t.Fatalf("no deadlock finding:\n%s", rep)
	}
	if len(dl.Cycle) == 0 {
		t.Fatalf("deadlock finding lacks a cycle certificate: %+v", dl)
	}
}

// TestStaticRedundantWaitNotes: the statement-oriented scheme's awaits are
// transitively implied by the advance chain on straight-line nests — the
// verifier should note the redundancy (validating the paper's covering
// elimination) without failing the program.
func TestStaticRedundantWaitNotes(t *testing.T) {
	w := workloads.Fig21(40, 4)
	sp, err := codegen.ExtractSyncProgram(w, codegen.StatementOriented{})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Static(sp, verify.Options{})
	if !rep.OK() {
		t.Fatalf("statement scheme should verify clean:\n%s", rep)
	}
	if len(rep.Notes) == 0 {
		t.Fatalf("expected redundant-wait notes, got none:\n%s", rep)
	}
	for _, n := range rep.Notes {
		if n.Class != verify.RedundantWait {
			t.Errorf("unexpected note class %s: %+v", n.Class, n)
		}
		if !n.Class.Advisory() {
			t.Errorf("note class %s should be advisory", n.Class)
		}
	}
}

// TestStaticTruncation caps the window and checks the report says so.
func TestStaticTruncation(t *testing.T) {
	w := workloads.Recurrence(60, 3, 4)
	sp, err := codegen.ExtractSyncProgram(w, codegen.ProcessOriented{X: 4, Improved: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := verify.Static(sp, verify.Options{MaxIters: 20})
	if !rep.Truncated || rep.Analyzed != 20 {
		t.Fatalf("want truncated window of 20, got analyzed=%d truncated=%v", rep.Analyzed, rep.Truncated)
	}
	if !rep.OK() {
		t.Fatalf("truncated run should still verify:\n%s", rep)
	}
}
