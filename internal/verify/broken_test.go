package verify_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// breakScheme wraps a known-good scheme and rewrites the op stream each
// iteration emits. It is the verifier's negative fixture: sabotage the
// synchronization in a controlled way and both the static checker and the
// dynamic trace checker must catch the resulting race.
type breakScheme struct {
	codegen.Scheme
	label   string
	rewrite func(sim.Op) (sim.Op, bool) // replacement op, keep?
}

func (b breakScheme) Name() string { return b.Scheme.Name() + "+" + b.label }

func (b breakScheme) Instrument(m *sim.Machine, w *codegen.Workload) (sim.Program, codegen.Footprint, error) {
	prog, foot, err := b.Scheme.Instrument(m, w)
	if err != nil {
		return prog, foot, err
	}
	broken := func(iter int64) []sim.Op {
		ops := prog(iter)
		out := make([]sim.Op, 0, len(ops))
		for _, op := range ops {
			if rop, keep := b.rewrite(op); keep {
				out = append(out, rop)
			}
		}
		return out
	}
	return broken, foot, nil
}

// brokenWorkload is a distance-3 recurrence under X=2 PC folding: 2 does not
// divide 3, so the ownership-transfer chain orders only same-parity
// iterations and the dist-3 wait is the sole cross-parity ordering. Removing
// it (or pointing it at the wrong distance) is a genuine race, not one
// masked by transitive over-synchronization.
func brokenWorkload() *codegen.Workload { return workloads.Recurrence(60, 3, 4) }

func brokenBase() codegen.ProcessOriented { return codegen.ProcessOriented{X: 2, Improved: true} }

// dropWait3 removes every dist-3 wait from the program.
func dropWait3(op sim.Op) (sim.Op, bool) {
	return op, !strings.HasPrefix(op.Tag, "wait_PC(3,")
}

// stretchWait3 rewrites every dist-3 wait to distance 5. With X=2 the folded
// slot of iter-5 is the slot of iter-3, so only the awaited owner changes:
// the wait is satisfiable but guards the wrong source iteration, and no
// composition of +2 transfer edges and +5 wait edges spans a distance of 3.
func stretchWait3(op sim.Op) (sim.Op, bool) {
	if !strings.HasPrefix(op.Tag, "wait_PC(3,") {
		return op, true
	}
	var step, iter int64
	rest := strings.TrimPrefix(op.Tag, "wait_PC(3,")
	if _, err := fmt.Sscanf(rest, "%d) i=%d", &step, &iter); err != nil {
		panic("stretchWait3: unparseable tag " + op.Tag)
	}
	src := iter - 5
	tag := fmt.Sprintf("wait_PC(5,%d) i=%d", step, iter)
	if src < 1 {
		return sim.Compute(0, nil, tag+" noop"), true
	}
	return sim.WaitGE(op.Var, core.PC{Owner: src, Step: step}.Pack(), tag), true
}

func brokenVariants() []breakScheme {
	return []breakScheme{
		{Scheme: brokenBase(), label: "drop-wait", rewrite: dropWait3},
		{Scheme: brokenBase(), label: "wrong-dist", rewrite: stretchWait3},
	}
}

// TestStaticCatchesBrokenScheme: removing (or mis-aiming) the dist-3 wait
// must surface statically as an uncovered-arc race with a concrete
// iteration-pair witness exactly 3 apart.
func TestStaticCatchesBrokenScheme(t *testing.T) {
	for _, bs := range brokenVariants() {
		w := brokenWorkload()
		sp, err := codegen.ExtractSyncProgram(w, bs)
		if err != nil {
			t.Fatalf("%s: extract: %v", bs.label, err)
		}
		rep := verify.Static(sp, verify.Options{})
		if rep.OK() {
			t.Fatalf("%s: broken scheme verified clean:\n%s", bs.label, rep)
		}
		var race *verify.Finding
		for i := range rep.Findings {
			if rep.Findings[i].Class == verify.Race && strings.Contains(rep.Findings[i].Arc, "flow(3)") {
				race = &rep.Findings[i]
				break
			}
		}
		if race == nil {
			t.Fatalf("%s: no race finding on the flow(3) arc:\n%s", bs.label, rep)
		}
		if len(race.SrcIter) != 1 || len(race.DstIter) != 1 {
			t.Fatalf("%s: race lacks iteration-pair witness: %+v", bs.label, race)
		}
		if race.DstIter[0]-race.SrcIter[0] != 3 {
			t.Errorf("%s: witness pair %v -> %v is not 3 apart", bs.label, race.SrcIter, race.DstIter)
		}
		if race.Pairs == 0 {
			t.Errorf("%s: race reports zero failing instance pairs", bs.label)
		}
	}
}

// TestDynamicCatchesBrokenScheme: the same sabotage must be caught by the
// vector-clock checker on a real machine trace — conflicting accesses to
// some A[i] unordered by the observed synchronization. The run may or may
// not also fail serial equivalence (timing can mask the bug); the trace
// checker flags the race either way.
func TestDynamicCatchesBrokenScheme(t *testing.T) {
	cfg := sim.Config{Processors: 8, BusLatency: 1, MemLatency: 2, Modules: 4, SyncOpCost: 1, SchedOverhead: 1}
	for _, bs := range brokenVariants() {
		w := brokenWorkload()
		_, events, err := codegen.RunSyncTraced(w, bs, cfg)
		if len(events) == 0 {
			t.Fatalf("%s: no sync trace (err=%v)", bs.label, err)
		}
		rep := verify.Dynamic(events)
		if rep.OK() {
			t.Fatalf("%s: dynamic checker missed the race (run err=%v):\n%s", bs.label, err, rep)
		}
		found := false
		for _, r := range rep.Races {
			if strings.HasPrefix(r.Loc, "A[") && r.Iter-r.PrevIter == 3 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no race on A[] between iterations 3 apart:\n%s", bs.label, rep)
		}
	}
}

// TestDynamicCleanOnShippedSchemes replays every workload x scheme trace
// through the vector-clock checker: real executions of sound schemes must
// be race-free.
func TestDynamicCleanOnShippedSchemes(t *testing.T) {
	cfg := sim.Config{Processors: 8, BusLatency: 1, MemLatency: 2, Modules: 4, SyncOpCost: 1, SchedOverhead: 1}
	for _, w := range vetWorkloads() {
		for _, s := range vetSchemes() {
			res, events, err := codegen.RunSyncTraced(w, s.sch, cfg)
			if err != nil {
				t.Fatalf("%s/%s: run: %v", w.Name, s.name, err)
			}
			if len(events) == 0 {
				t.Fatalf("%s/%s: empty sync trace", w.Name, s.name)
			}
			rep := verify.Dynamic(events)
			if !rep.OK() {
				t.Errorf("%s/%s (speedup %.2f): dynamic races:\n%s", w.Name, s.name, res.Speedup(), rep)
			}
			if rep.Accesses == 0 {
				t.Errorf("%s/%s: trace carries no memory accesses", w.Name, s.name)
			}
		}
	}
}
