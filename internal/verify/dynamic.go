package verify

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/sim"
)

// DynRace is one dynamically detected race: two conflicting accesses to the
// same location, unordered by the happens-before relation of the observed
// execution.
type DynRace struct {
	Loc string `json:"loc"` // element, e.g. "A[7]" (".v2" for renamed copies)

	PrevIter  int64  `json:"prev_iter"`
	PrevStmt  string `json:"prev_stmt"`
	PrevWrite bool   `json:"prev_write"`

	Iter  int64  `json:"iter"`
	Stmt  string `json:"stmt"`
	Write bool   `json:"write"`

	Time int64 `json:"time"` // cycle of the second access
}

func (r DynRace) String() string {
	return fmt.Sprintf("%s: %s of %s (iter %d) unordered with %s of %s (iter %d) at cycle %d",
		r.Loc, rw(r.PrevWrite), r.PrevStmt, r.PrevIter, rw(r.Write), r.Stmt, r.Iter, r.Time)
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

// DynReport is the result of replaying one synchronization trace.
type DynReport struct {
	Events    int `json:"events"`
	Signals   int `json:"signals"`
	WaitsDone int `json:"waits_done"`
	Accesses  int `json:"accesses"`

	Races   []DynRace `json:"races"`
	Dropped int       `json:"dropped,omitempty"` // races beyond the report cap
}

// OK reports whether the execution was race-free.
func (r *DynReport) OK() bool { return len(r.Races) == 0 }

func (r *DynReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events (%d signals, %d waits, %d accesses)\n",
		r.Events, r.Signals, r.WaitsDone, r.Accesses)
	if r.OK() {
		b.WriteString("PASS: no conflicting accesses unordered by happens-before\n")
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL: %d race(s)\n", len(r.Races))
	for _, rc := range r.Races {
		fmt.Fprintf(&b, "  [race] %s\n", rc)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "  ... %d further race pair(s) suppressed\n", r.Dropped)
	}
	return b.String()
}

// maxDynRaces caps the distinct race pairs a report carries; replay still
// scans the whole trace and counts the overflow in Dropped.
const maxDynRaces = 100

type locKey struct {
	arr    string
	c0, c1 int64
	dims   int
	ver    int64
}

func (k locKey) String() string {
	a := sim.MemAccess{Array: k.arr, Coord: [2]int64{k.c0, k.c1}, Dims: k.dims, Ver: k.ver}
	return a.String()
}

type lastAccess struct {
	iter int64
	ep   int64
	stmt string
}

// locState is FastTrack-style per-location metadata: the last write epoch
// plus the last read epoch per iteration since that write.
type locState struct {
	hasW  bool
	write lastAccess
	reads map[int64]lastAccess
}

// Dynamic replays a machine synchronization trace with vector clocks and
// reports conflicting shared-memory accesses unordered by happens-before.
// Iterations are the threads; a signal publishes the writer's clock into
// the variable's accumulated release clock, and a completed wait acquires
// it. The trace is causally ordered (see sim.EnableSyncTrace), so a single
// forward pass suffices.
//
// Races are detected on the observed execution's synchronization order:
// an execution may produce serially equivalent memory contents and still
// race — the detector flags it regardless of outcome, which is what makes
// the check stronger than the simulator's serial-equivalence oracle.
func Dynamic(events []sim.SyncEvent) *DynReport {
	rep := &DynReport{Events: len(events)}
	clock := make(map[int64]map[int64]int64)        // iter -> acquired clock
	epoch := make(map[int64]int64)                  // iter -> own access epoch
	varClock := make(map[sim.VarID]map[int64]int64) // accumulated release clock
	locs := make(map[locKey]*locState)
	seen := make(map[string]bool) // race dedup by location + iteration pair

	cOf := func(i int64) map[int64]int64 {
		m := clock[i]
		if m == nil {
			m = make(map[int64]int64)
			clock[i] = m
		}
		return m
	}
	ordered := func(i int64, a lastAccess) bool {
		if a.iter == i {
			return true
		}
		return cOf(i)[a.iter] >= a.ep
	}
	report := func(e *sim.SyncEvent, k locKey, prev lastAccess, prevWrite, write bool) {
		key := fmt.Sprintf("%v|%d|%d", k, prev.iter, e.Iter)
		if seen[key] {
			return
		}
		seen[key] = true
		if len(rep.Races) >= maxDynRaces {
			rep.Dropped++
			return
		}
		rep.Races = append(rep.Races, DynRace{
			Loc:      k.String(),
			PrevIter: prev.iter, PrevStmt: prev.stmt, PrevWrite: prevWrite,
			Iter: e.Iter, Stmt: strings.TrimSuffix(e.Tag, ":commit"), Write: write,
			Time: e.Time,
		})
	}

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case sim.SyncSignal:
			rep.Signals++
			l := varClock[e.Var]
			if l == nil {
				l = make(map[int64]int64)
				varClock[e.Var] = l
			}
			for j, v := range cOf(e.Iter) {
				if v > l[j] {
					l[j] = v
				}
			}
			if ep := epoch[e.Iter]; ep > l[e.Iter] {
				l[e.Iter] = ep
			}
		case sim.SyncWaitDone:
			rep.WaitsDone++
			ci := cOf(e.Iter)
			for j, v := range varClock[e.Var] {
				if j != e.Iter && v > ci[j] {
					ci[j] = v
				}
			}
		case sim.SyncAccess:
			for _, a := range e.Acc {
				rep.Accesses++
				epoch[e.Iter]++
				k := locKey{arr: a.Array, c0: a.Coord[0], c1: a.Coord[1], dims: a.Dims, ver: a.Ver}
				st := locs[k]
				if st == nil {
					st = &locState{reads: make(map[int64]lastAccess)}
					locs[k] = st
				}
				cur := lastAccess{iter: e.Iter, ep: epoch[e.Iter], stmt: strings.TrimSuffix(e.Tag, ":commit")}
				if a.Write {
					if st.hasW && !ordered(e.Iter, st.write) {
						report(e, k, st.write, true, true)
					}
					for _, r := range st.reads {
						if !ordered(e.Iter, r) {
							report(e, k, r, false, true)
						}
					}
					st.hasW = true
					st.write = cur
					st.reads = make(map[int64]lastAccess)
				} else {
					if st.hasW && !ordered(e.Iter, st.write) {
						report(e, k, st.write, true, false)
					}
					st.reads[e.Iter] = cur
				}
			}
		}
	}
	return rep
}
