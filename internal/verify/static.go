package verify

import (
	"fmt"
	"regexp"
	"sort"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
)

// Static verifies a synchronization program against its nest's dependence
// set. It materializes the per-iteration programs, builds the
// happens-before graph (program order within an iteration, plus a release
// edge from each wait's releasing signal(s) to the wait), topologically
// sorts it (failure = deadlock certificate), computes a vector clock per
// node, and checks every realizable dependence-arc instance pair against
// the clocks. See the package comment for the soundness obligations that
// are checked along the way.
func Static(sp *codegen.SyncProgram, opt Options) *Report {
	rep := &Report{Workload: sp.Workload.Name, Scheme: sp.Scheme, Iterations: sp.Iters}
	w := sp.Iters
	if mx := opt.maxIters(); w > mx {
		w = mx
		rep.Truncated = true
	}
	rep.Analyzed = w

	c := &checker{sp: sp, rep: rep, w: w, findIdx: make(map[string]int),
		sigs: make(map[int][]sigRec), vinfo: make(map[int]*varInfo),
		relOf: make(map[int][]sigRec), relSucc: make(map[int][]int),
		sites: make(map[string]*siteStat)}
	c.materialize()
	c.classifyVars()
	c.buildReleases()
	if !c.sortAndClock() {
		return rep // cycle: clock-dependent checks are meaningless
	}
	c.checkObligations()
	c.checkChains()
	c.checkArcs()
	c.reportRedundant()
	return rep
}

// sigRec is one signal on a variable: node id, producing iteration,
// position within the iteration, and the signalled value.
type sigRec struct {
	id       int
	iter     int64
	k        int
	val      int64
	cond     bool
	guard    int64
	hasGuard bool
}

type waitRec struct {
	id   int
	iter int64
	k    int
	v    int
	t    int64
}

type varInfo struct {
	plain, accum, opaque bool
	bad                  bool // excluded from edge construction (reported)
}

type siteStat struct {
	total, redundant int
	sample           string
}

// obligation: the conditional releaser r must be in the past of fallback
// candidate cand, else a non-firing conditional leaves the wait unsound.
type obligation struct {
	v    int
	r    sigRec
	cand sigRec
}

type checker struct {
	sp  *codegen.SyncProgram
	rep *Report
	w   int64 // analyzed iterations

	evs      [][]codegen.SyncOp
	base     []int // node-id offset per iteration; base[i+1]-base[i] ops
	total    int
	iterOf   []int64
	kOf      []int32
	retain   []bool  // clock kept after processing (signal/stmt nodes)
	stmtNode [][]int // [iter][stmtPos] -> node id, -1 when not executed

	sigs    map[int][]sigRec
	waits   []waitRec
	vinfo   map[int]*varInfo
	relOf   map[int][]sigRec // wait node -> releasing signals
	relSucc map[int][]int    // signal node -> released wait nodes

	obls    []obligation
	oblSeen map[[2]int]bool

	clocks []map[int64]int32

	sites   map[string]*siteStat
	findIdx map[string]int // finding dedup key -> index in rep.Findings
}

func (c *checker) vname(v int) string { return c.sp.VarNames[v] }

func (c *checker) tagOf(id int) string {
	op := c.evs[c.iterOf[id]][c.kOf[id]]
	if op.Tag != "" {
		return op.Tag
	}
	return op.Kind.String()
}

// addHard appends a hard finding, deduplicating by key: repeated instances
// of the same defect (one per iteration) fold into a count.
func (c *checker) addHard(key string, f Finding) {
	if i, ok := c.findIdx[key]; ok {
		c.rep.Findings[i].Pairs++
		return
	}
	f.Pairs = 1
	c.findIdx[key] = len(c.rep.Findings)
	c.rep.Findings = append(c.rep.Findings, f)
}

func (c *checker) materialize() {
	nStmts := len(c.sp.Workload.Nest.Stmts())
	c.evs = make([][]codegen.SyncOp, c.w+1)
	c.base = make([]int, c.w+2)
	for i := int64(1); i <= c.w; i++ {
		c.evs[i] = c.sp.At(i)
		c.base[i+1] = c.base[i] + len(c.evs[i])
	}
	c.total = c.base[c.w+1]
	c.rep.Nodes = c.total
	c.iterOf = make([]int64, c.total)
	c.kOf = make([]int32, c.total)
	c.retain = make([]bool, c.total)
	c.stmtNode = make([][]int, c.w+1)
	for i := int64(1); i <= c.w; i++ {
		row := make([]int, nStmts)
		for s := range row {
			row[s] = -1
		}
		c.stmtNode[i] = row
		for k, op := range c.evs[i] {
			id := c.base[i] + k
			c.iterOf[id] = i
			c.kOf[id] = int32(k)
			switch op.Kind {
			case codegen.SyncStmt:
				row[op.Stmt] = id
				c.retain[id] = true
			case codegen.SyncSignal:
				c.rep.Signals++
				c.retain[id] = true
				c.sigs[op.Var] = append(c.sigs[op.Var], sigRec{
					id: id, iter: i, k: k, val: op.Value,
					cond: op.Conditional, guard: op.Guard, hasGuard: op.HasGuard})
				vi := c.info(op.Var)
				if op.Accum {
					vi.accum = true
				} else {
					vi.plain = true
				}
			case codegen.SyncWait:
				c.rep.Waits++
				c.waits = append(c.waits, waitRec{id: id, iter: i, k: k, v: op.Var, t: op.Value})
			case codegen.SyncOpaque:
				c.info(op.Var).opaque = true
			}
		}
	}
}

func (c *checker) info(v int) *varInfo {
	vi := c.vinfo[v]
	if vi == nil {
		vi = &varInfo{}
		c.vinfo[v] = vi
	}
	return vi
}

func (c *checker) classifyVars() {
	for _, ss := range c.sigs {
		ss := ss
		sort.Slice(ss, func(a, b int) bool {
			if ss[a].val != ss[b].val {
				return ss[a].val < ss[b].val
			}
			if ss[a].iter != ss[b].iter {
				return ss[a].iter < ss[b].iter
			}
			return ss[a].k < ss[b].k
		})
	}
	for v, vi := range c.vinfo {
		switch {
		case vi.opaque:
			vi.bad = true
			c.addHard(fmt.Sprintf("opaque|%d", v), Finding{
				Class: Unanalyzable, Var: c.vname(v),
				Summary: fmt.Sprintf("variable %s is updated by an atomic op without a protocol-guaranteed value; waits on it cannot be verified", c.vname(v)),
			})
		case vi.plain && vi.accum:
			vi.bad = true
			c.addHard(fmt.Sprintf("mixed|%d", v), Finding{
				Class: Unanalyzable, Var: c.vname(v),
				Summary: fmt.Sprintf("variable %s mixes plain writes and atomic increments; release semantics are undefined", c.vname(v)),
			})
		case vi.plain:
			ss := c.sigs[v]
			for j := 0; j+1 < len(ss); j++ {
				if ss[j].val == ss[j+1].val && ss[j].iter != ss[j+1].iter {
					vi.bad = true
					c.addHard(fmt.Sprintf("ambig|%d", v), Finding{
						Class: AmbiguousSignals, Var: c.vname(v),
						Summary: fmt.Sprintf("iterations %d and %d both signal %s=%d; wait releasers are not statically determined",
							ss[j].iter, ss[j+1].iter, c.vname(v), ss[j].val),
						Detail: fmt.Sprintf("%s / %s", c.tagOf(ss[j].id), c.tagOf(ss[j+1].id)),
					})
					break
				}
			}
		}
	}
}

func (c *checker) buildReleases() {
	c.oblSeen = make(map[[2]int]bool)
	for _, w := range c.waits {
		vi := c.info(w.v)
		if vi.bad {
			continue
		}
		init := c.sp.VarInit[w.v]
		ss := c.sigs[w.v]
		var rels []sigRec
		if vi.accum {
			// Counting semantics: the key counts completed increments, so
			// reaching t requires the t-init increments whose protocol
			// values are <= t — all of them, collectively.
			need := w.t - init
			if need <= 0 {
				continue // pre-satisfied
			}
			cnt := sort.Search(len(ss), func(i int) bool { return ss[i].val > w.t })
			if int64(cnt) < need {
				c.addHard(fmt.Sprintf("unrel|%d|%s", w.v, site(c.tagOf(w.id))), Finding{
					Class: UnreleasableWait, Var: c.vname(w.v),
					Summary: fmt.Sprintf("wait %s needs %d increments of %s but the program performs only %d at or below the threshold",
						c.tagOf(w.id), need, c.vname(w.v), cnt),
				})
				continue
			}
			if int64(cnt) > need {
				c.addHard(fmt.Sprintf("overcnt|%d|%s", w.v, site(c.tagOf(w.id))), Finding{
					Class: Unanalyzable, Var: c.vname(w.v),
					Summary: fmt.Sprintf("wait %s: %d increments can reach threshold %d of %s; which %d complete first is not determined",
						c.tagOf(w.id), cnt, w.t, c.vname(w.v), need),
				})
				continue
			}
			rels = ss[:cnt]
		} else {
			if init >= w.t {
				continue // pre-satisfied by the initial value
			}
			lo := sort.Search(len(ss), func(i int) bool { return ss[i].val >= w.t })
			if lo == len(ss) {
				c.addHard(fmt.Sprintf("unrel|%d|%s", w.v, site(c.tagOf(w.id))), Finding{
					Class: UnreleasableWait, Var: c.vname(w.v),
					Summary: fmt.Sprintf("no signal on %s ever reaches %d required by %s",
						c.vname(w.v), w.t, c.tagOf(w.id)),
				})
				continue
			}
			r := ss[lo]
			if r.cond {
				// The minimal candidate may not fire. Sound release still
				// holds if every later candidate through the first
				// unconditional one has r in its past: whichever signal
				// actually releases the wait then carries r's effects.
				j := lo + 1
				for j < len(ss) && ss[j].cond {
					j++
				}
				if j == len(ss) {
					c.addHard(fmt.Sprintf("condonly|%d|%s", w.v, site(c.tagOf(w.id))), Finding{
						Class: UnreleasableWait, Var: c.vname(w.v),
						Summary: fmt.Sprintf("wait %s can be released only by conditional signals that may never fire", c.tagOf(w.id)),
					})
					continue
				}
				if !c.oblSeen[[2]int{w.v, lo}] {
					c.oblSeen[[2]int{w.v, lo}] = true
					for m := lo + 1; m <= j; m++ {
						c.obls = append(c.obls, obligation{v: w.v, r: r, cand: ss[m]})
					}
				}
			}
			rels = ss[lo : lo+1]
		}
		c.relOf[w.id] = rels
		for _, r := range rels {
			c.relSucc[r.id] = append(c.relSucc[r.id], w.id)
		}
	}
}

// sortAndClock runs Kahn's algorithm over program-order and release edges,
// computing each node's vector clock as it is popped. Returns false (with a
// deadlock finding) if the graph has a cycle.
func (c *checker) sortAndClock() bool {
	indeg := make([]int32, c.total)
	for id := 0; id < c.total; id++ {
		if c.kOf[id] > 0 {
			indeg[id]++
		}
		indeg[id] += int32(len(c.relOf[id]))
	}
	queue := make([]int, 0, c.total)
	for id := 0; id < c.total; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	c.clocks = make([]map[int64]int32, c.total)
	done := make([]bool, c.total)
	processed := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done[id] = true
		processed++

		var cl map[int64]int32
		if c.kOf[id] == 0 {
			cl = make(map[int64]int32, 4)
		} else if pred := id - 1; c.retain[pred] {
			cl = make(map[int64]int32, len(c.clocks[pred])+2)
			for i, k := range c.clocks[pred] {
				cl[i] = k
			}
		} else {
			// A wait's clock has exactly one consumer (its program
			// successor): steal it instead of copying.
			cl = c.clocks[pred]
			c.clocks[pred] = nil
		}
		if rels := c.relOf[id]; len(rels) > 0 {
			redundant := true
			for _, r := range rels {
				if cl[r.iter] <= int32(r.k) {
					redundant = false
					break
				}
			}
			c.tallySite(id, redundant)
			for _, r := range rels {
				for i, k := range c.clocks[r.id] {
					if k > cl[i] {
						cl[i] = k
					}
				}
			}
		}
		// Clock entries count ordered prefix nodes (kOf+1), so a missing
		// entry (0) means "nothing of that iteration is ordered before" —
		// including its first node.
		if it := c.iterOf[id]; c.kOf[id]+1 > cl[it] {
			cl[it] = c.kOf[id] + 1
		}
		c.clocks[id] = cl

		if next := id + 1; next < c.base[c.iterOf[id]+1] {
			if indeg[next]--; indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
		for _, s := range c.relSucc[id] {
			if indeg[s]--; indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if processed == c.total {
		return true
	}
	c.reportCycle(done)
	return false
}

// reportCycle extracts one wait-for cycle from the unprocessed residue as a
// deadlock certificate: walk predecessors (which must themselves be
// unprocessed) until a node repeats.
func (c *checker) reportCycle(done []bool) {
	start := -1
	for id := 0; id < c.total; id++ {
		if !done[id] {
			start = id
			break
		}
	}
	pos := make(map[int]int)
	var path []int
	cur := start
	for {
		if p, ok := pos[cur]; ok {
			path = path[p:]
			break
		}
		pos[cur] = len(path)
		path = append(path, cur)
		next := -1
		if c.kOf[cur] > 0 && !done[cur-1] {
			next = cur - 1
		} else {
			for _, r := range c.relOf[cur] {
				if !done[r.id] {
					next = r.id
					break
				}
			}
		}
		cur = next // an unprocessed node always has an unprocessed predecessor
	}
	// path follows predecessor links; reverse for wait-for order.
	cycle := make([]string, 0, len(path)+1)
	for i := len(path) - 1; i >= 0; i-- {
		id := path[i]
		cycle = append(cycle, fmt.Sprintf("iter %d: %s", c.iterOf[id], c.tagOf(id)))
		if len(cycle) == 24 && i > 0 {
			cycle = append(cycle, fmt.Sprintf("... (%d more)", i))
			break
		}
	}
	c.rep.Findings = append(c.rep.Findings, Finding{
		Class:   Deadlock,
		Summary: fmt.Sprintf("wait-for cycle over %d synchronization operations", len(path)),
		Cycle:   cycle,
	})
}

func (c *checker) checkObligations() {
	for _, o := range c.obls {
		if c.clocks[o.cand.id][o.r.iter] > int32(o.r.k) {
			continue
		}
		c.addHard(fmt.Sprintf("unsound|%d|%d", o.v, o.r.id), Finding{
			Class: UnsoundRelease, Var: c.vname(o.v),
			Summary: fmt.Sprintf("conditional signal %s (iter %d) may not fire, and fallback releaser %s (iter %d) does not carry its effects",
				c.tagOf(o.r.id), o.r.iter, c.tagOf(o.cand.id), o.cand.iter),
		})
	}
}

// checkChains verifies the serialized-writer discipline the release rule
// relies on: consecutive signal values on a plain variable must be
// happens-before ordered (or the later one's firing guard must already
// imply the earlier value is visible).
func (c *checker) checkChains() {
	for v, ss := range c.sigs {
		if vi := c.info(v); vi.bad || vi.accum {
			continue
		}
		for j := 0; j+1 < len(ss); j++ {
			a, b := ss[j], ss[j+1]
			if a.val == b.val {
				continue // same iteration (cross-iteration dups already reported)
			}
			if a.iter == b.iter && a.k < b.k {
				continue
			}
			if b.hasGuard && b.guard >= a.val {
				continue // b fires only once a value >= a.val is visible
			}
			if c.clocks[b.id][a.iter] > int32(a.k) {
				continue
			}
			c.addHard(fmt.Sprintf("chain|%d", v), Finding{
				Class: UnserializedSignals, Var: c.vname(v),
				Summary: fmt.Sprintf("signals %s=%d (iter %d) and %s=%d (iter %d) are not happens-before ordered; release order on %s is undefined",
					c.vname(v), a.val, a.iter, c.vname(v), b.val, b.iter, c.vname(v)),
				Detail: fmt.Sprintf("%s / %s", c.tagOf(a.id), c.tagOf(b.id)),
			})
			break
		}
	}
}

// checkArcs verifies the nest's enforced dependence set against the
// happens-before clocks. Instances are enumerated from the depth-k graph,
// not the linearized one: coalescing conservatively adds boundary "extra
// dependences" (dashed in Fig 5.2c) that distance-based schemes enforce
// for free but element-based data-oriented schemes correctly do not — those
// pairs are no true dependence and must not be demanded of any scheme.
func (c *checker) checkArcs() {
	nest := c.sp.Workload.Nest
	g := nest.Analyze()
	stmts := g.Stmts
	for _, a := range g.UnknownArcs() {
		c.addHard(fmt.Sprintf("unk|%d|%d", a.Src, a.Dst), Finding{
			Class: Unanalyzable,
			Arc:   fmt.Sprintf("%s -%s(?%s)-> %s", stmts[a.Src].Name, a.Kind, a.Reason, stmts[a.Dst].Name),
			Summary: fmt.Sprintf("arc %s -%s-> %s has no compile-time distance (%s) and cannot be statically verified",
				stmts[a.Src].Name, a.Kind, stmts[a.Dst].Name, a.Reason),
			Detail: a.Reason.Explain(),
		})
	}
	seenCross := make(map[string]bool)
	for _, a := range g.Arcs {
		if !a.Known || a.LoopIndep {
			continue
		}
		if c.sp.Renamed && a.Kind != deps.Flow {
			continue // single-assignment storage: anti/output are vacuous
		}
		arcStr := fmt.Sprintf("%s -%s(%s)-> %s", stmts[a.Src].Name, a.Kind, distStr(a.Dist), stmts[a.Dst].Name)
		key := fmt.Sprintf("%d|%d|%v", a.Src, a.Dst, a.Dist)
		if seenCross[key] {
			continue
		}
		seenCross[key] = true
		c.rep.Arcs++
		var fails int64
		var wSrc, wDst int64
		for i := int64(1); i <= c.w; i++ {
			srcIdx := nest.IndexOf(i)
			idx := nest.IndexOf(i)
			ok := true
			for l, d := range a.Dist {
				idx[l] += d
				if idx[l] < nest.Indexes[l].Lo || idx[l] > nest.Indexes[l].Hi {
					ok = false
					break
				}
			}
			if !ok {
				continue // the sink falls outside the iteration space
			}
			j := nest.LpidOf(idx)
			if j > c.w {
				continue // beyond the (possibly truncated) window
			}
			sn := c.stmtNode[i][a.Src]
			dn := c.stmtNode[j][a.Dst]
			if sn < 0 || dn < 0 {
				continue // a branch skipped one endpoint: no instance
			}
			c.rep.PairsChecked++
			if c.clocks[dn][i] > c.kOf[sn] {
				continue
			}
			if c.sp.Renamed && c.flowKilled(g, a, i, j, srcIdx) {
				continue // the sink reads a later renamed version, not this write
			}
			if fails == 0 {
				wSrc, wDst = i, j
			}
			fails++
		}
		if fails > 0 {
			c.rep.Findings = append(c.rep.Findings, Finding{
				Class: Race, Arc: arcStr, Pairs: fails,
				SrcIter: nest.IndexOf(wSrc), DstIter: nest.IndexOf(wDst),
				Summary: fmt.Sprintf("dependence %s is not enforced: iteration %v's %s is unordered with iteration %v's %s (%d instance pairs)",
					arcStr, nest.IndexOf(wSrc), stmts[a.Src].Name, nest.IndexOf(wDst), stmts[a.Dst].Name, fails),
			})
		}
	}
	// Loop-independent arcs need body order within each iteration.
	seen := make(map[[2]int]bool)
	for _, a := range g.Arcs {
		if !a.Known || !a.LoopIndep || a.Src == a.Dst || seen[[2]int{a.Src, a.Dst}] {
			continue
		}
		seen[[2]int{a.Src, a.Dst}] = true
		for i := int64(1); i <= c.w; i++ {
			sn := c.stmtNode[i][a.Src]
			dn := c.stmtNode[i][a.Dst]
			if sn < 0 || dn < 0 || c.kOf[sn] < c.kOf[dn] {
				continue
			}
			c.addHard(fmt.Sprintf("li|%d|%d", a.Src, a.Dst), Finding{
				Class: Race,
				Arc:   fmt.Sprintf("%s -%s(0)-> %s", stmts[a.Src].Name, a.Kind, stmts[a.Dst].Name),
				Summary: fmt.Sprintf("loop-independent dependence %s -> %s violated: iteration %v executes them out of body order",
					stmts[a.Src].Name, stmts[a.Dst].Name, nest.IndexOf(i)),
				SrcIter: nest.IndexOf(i), DstIter: nest.IndexOf(i),
			})
			break
		}
	}
}

// flowKilled reports whether the flow-arc instance (src iteration i, sink
// iteration j) is superseded by another write to the same element strictly
// between the two accesses in serial order. Pairwise dependence analysis
// keeps such stale arcs (it has no kill analysis), and shared-storage
// schemes satisfy them transitively through the covering output arc; but
// under renamed single-assignment storage the sink reads the killing
// write's fresh version, so the stale write-to-read pair needs no ordering
// at all. Control flow is data-independent, so "the kill executes" is a
// static fact (stmtNode), not an approximation.
func (c *checker) flowKilled(g *deps.Graph, a deps.Arc, i, j int64, srcIdx []int64) bool {
	nest := c.sp.Workload.Nest
	elem := make([]int64, len(a.SrcRef.Index))
	for l, ix := range a.SrcRef.Index {
		elem[l] = ix.Eval(srcIdx)
	}
	for m := i; m <= j; m++ {
		mIdx := nest.IndexOf(m)
		for p, st := range g.Stmts {
			if c.stmtNode[m][p] < 0 {
				continue // branch skipped: the would-be kill never executes
			}
			if (m == i && p <= a.Src) || (m == j && p >= a.Dst) {
				continue // not strictly between source and sink
			}
			for _, wr := range st.Writes {
				if wr.Array != a.SrcRef.Array || len(wr.Index) != len(elem) {
					continue
				}
				hit := true
				for l, ix := range wr.Index {
					if ix.Eval(mIdx) != elem[l] {
						hit = false
						break
					}
				}
				if hit {
					return true
				}
			}
		}
	}
	return false
}

func distStr(dist []int64) string {
	s := ""
	for l, d := range dist {
		if l > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}

func (c *checker) tallySite(waitID int, redundant bool) {
	s := site(c.tagOf(waitID))
	st := c.sites[s]
	if st == nil {
		st = &siteStat{sample: c.tagOf(waitID)}
		c.sites[s] = st
	}
	st.total++
	if redundant {
		st.redundant++
	}
}

func (c *checker) reportRedundant() {
	keys := make([]string, 0, len(c.sites))
	for s := range c.sites {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	for _, s := range keys {
		st := c.sites[s]
		if st.redundant < st.total {
			continue
		}
		c.rep.Notes = append(c.rep.Notes, Finding{
			Class: RedundantWait, Site: s,
			Summary: fmt.Sprintf("all %d instances of wait site %q are already implied transitively (e.g. %s); the wait could be eliminated",
				st.total, s, st.sample),
		})
	}
}

// site normalizes a wait tag to its placement site by erasing the
// iteration-varying parts: "wait_PC(3,1) i=17" and "wait_PC(3,1) i=42" are
// the same site; "key:wait A[3]>=2" folds to "key:wait A[*]>=*".
var (
	siteIter = regexp.MustCompile(` i=-?\d+( noop)?$`)
	siteGE   = regexp.MustCompile(`>=-?\d+`)
	siteElem = regexp.MustCompile(`\[-?\d+(,-?\d+)*\]`)
	siteVer  = regexp.MustCompile(`\.v\d+(\.c\d+)?`)
)

func site(tag string) string {
	tag = siteIter.ReplaceAllString(tag, "")
	tag = siteGE.ReplaceAllString(tag, ">=*")
	tag = siteElem.ReplaceAllString(tag, "[*]")
	tag = siteVer.ReplaceAllString(tag, ".v*")
	return tag
}
