package fault

import (
	"math"
	"strings"
	"testing"
)

// TestZeroValueDisabled: the zero Plan injects nothing, and every decision
// method on its injector declines.
func TestZeroValueDisabled(t *testing.T) {
	var p Plan
	if p.Enabled() || p.SimEnabled() || p.StallsRuntime() {
		t.Fatal("zero plan must be disabled")
	}
	if err := p.Check(); err != nil {
		t.Fatalf("zero plan must check clean: %v", err)
	}
	in := NewInjector(p)
	for seq := int64(0); seq < 100; seq++ {
		if in.DropBroadcast(seq, 0, 1) || in.DupBroadcast(seq, 0, 1) {
			t.Fatal("zero plan injected a bus fault")
		}
		if in.DelayBroadcast(seq, 0, 1) != 0 || in.StaleRead(seq, 0, 1) != 0 || in.ModuleDelay(seq, 0, 0) != 0 {
			t.Fatal("zero plan injected a delay")
		}
		if _, _, _, torn := in.TornUpdate(seq, 0, 1); torn {
			t.Fatal("zero plan injected a torn update")
		}
	}
	if in.SlowExtra(0, 5) != 0 || in.Halted(0, 100) {
		t.Fatal("zero plan injected a processor fault")
	}
	if in.Counts() != (Counts{}) {
		t.Fatalf("zero plan counted faults: %+v", in.Counts())
	}
}

// TestScheduleDeterminism: two injectors with the same plan make identical
// decisions at identical sites regardless of query order.
func TestScheduleDeterminism(t *testing.T) {
	p := Plan{Seed: 42, DropProb: 0.1, DelayProb: 0.2, DelayCycles: 6, DupProb: 0.05}
	a, b := NewInjector(p), NewInjector(p)
	const n = 2000
	// Query a forward and b backward: decisions must match site-by-site.
	typeA := make([]bool, n)
	delayA := make([]int64, n)
	for seq := int64(0); seq < n; seq++ {
		typeA[seq] = a.DropBroadcast(seq, int(seq%4), seq%3)
		delayA[seq] = a.DelayBroadcast(seq, int(seq%4), seq%3)
	}
	for seq := int64(n - 1); seq >= 0; seq-- {
		if b.DropBroadcast(seq, int(seq%4), seq%3) != typeA[seq] {
			t.Fatalf("drop decision at seq %d depends on query order", seq)
		}
		if b.DelayBroadcast(seq, int(seq%4), seq%3) != delayA[seq] {
			t.Fatalf("delay decision at seq %d depends on query order", seq)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverge: %+v vs %+v", a.Counts(), b.Counts())
	}
}

// TestSeedChangesSchedule: a different seed gives a different schedule (with
// overwhelming probability at 2000 sites and 10% rate).
func TestSeedChangesSchedule(t *testing.T) {
	a := NewInjector(Plan{Seed: 1, DropProb: 0.1})
	b := NewInjector(Plan{Seed: 2, DropProb: 0.1})
	diff := 0
	for seq := int64(0); seq < 2000; seq++ {
		if a.DropBroadcast(seq, 0, 0) != b.DropBroadcast(seq, 0, 0) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical drop schedules")
	}
}

// TestRollRate: injection frequency tracks the configured probability.
func TestRollRate(t *testing.T) {
	p := Plan{Seed: 7, DropProb: 0.25}
	in := NewInjector(p)
	const n = 20000
	hits := 0
	for seq := int64(0); seq < n; seq++ {
		if in.DropBroadcast(seq, 0, 0) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Fatalf("drop rate %.3f, want ~0.25", rate)
	}
	if in.Counts().Drops != int64(hits) {
		t.Fatalf("counter %d != observed %d", in.Counts().Drops, hits)
	}
}

// TestSiteIndependence: drop and delay decisions at the same coordinates are
// decorrelated by the site-kind salt.
func TestSiteIndependence(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, DropProb: 0.5, DelayProb: 0.5})
	same, n := 0, 4000
	for seq := int64(0); seq < int64(n); seq++ {
		d := in.DropBroadcast(seq, 0, 0)
		y := in.DelayBroadcast(seq, 0, 0) != 0
		if d == y {
			same++
		}
	}
	frac := float64(same) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop/delay agreement %.3f, want ~0.5 (independent)", frac)
	}
}

func TestProcessorFaults(t *testing.T) {
	in := NewInjector(Plan{SlowProc: 2, SlowFactor: 3})
	if got := in.SlowExtra(2, 4); got != 8 {
		t.Errorf("SlowExtra(slow proc, 4 cycles) = %d, want 8", got)
	}
	if got := in.SlowExtra(1, 4); got != 0 {
		t.Errorf("SlowExtra(other proc) = %d, want 0", got)
	}
	if got := in.SlowExtra(2, 0); got != 0 {
		t.Errorf("SlowExtra(zero-cycle op) = %d, want 0", got)
	}

	h := NewInjector(Plan{HaltProc: 1, HaltAtCycle: 50})
	if h.Halted(1, 49) {
		t.Error("halted before HaltAtCycle")
	}
	if !h.Halted(1, 50) || !h.Halted(1, 51) {
		t.Error("not halted at/after HaltAtCycle")
	}
	if h.Halted(0, 100) {
		t.Error("wrong processor halted")
	}
	if h.Counts().Halts != 1 {
		t.Errorf("halts counted %d times, want once", h.Counts().Halts)
	}
}

func TestCheckRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{DropProb: -0.1},
		{DelayProb: 1.5},
		{DelayCycles: -1},
		{TornProb: 0.1, TornOrder: "sideways"},
		{TornLowBits: 63},
		{SlowProc: -1},
		{StallMillis: 10}, // needs StallIter
	}
	for i, p := range bad {
		if err := p.Check(); err == nil {
			t.Errorf("plan %d (%+v) passed Check", i, p)
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("drop=bus:0.01,delay=bus:0.05:6,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 42, DropProb: 0.01, DelayProb: 0.05, DelayCycles: 6}
	if p != want {
		t.Fatalf("ParseSpec = %+v, want %+v", p, want)
	}

	p, err = ParseSpec("torn=pc:1:owner-first:4,stall=iter3:250,slow=proc1:2,halt=proc0:100,mem=mod:0.5,stale=reg:0.2:9,dup=bus:0.3")
	if err != nil {
		t.Fatal(err)
	}
	want = Plan{TornProb: 1, TornOrder: OwnerFirst, TornWindow: 4,
		StallIter: 3, StallMillis: 250, SlowProc: 1, SlowFactor: 2,
		HaltProc: 0, HaltAtCycle: 100, ModuleDelayProb: 0.5,
		StaleProb: 0.2, StaleCycles: 9, DupProb: 0.3}
	if p != want {
		t.Fatalf("ParseSpec = %+v, want %+v", p, want)
	}

	for _, bad := range []string{
		"drop=0.01",          // missing target
		"drop=bus",           // missing probability
		"nonsense=bus:0.5",   // unknown key
		"drop=bus:2",         // out of range (caught by Check)
		"torn=pc:1:sideways", // bad order
		"stall=iter0:100",    // stall needs iter >= 1
		"seed",               // not key=value
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestCanonCoversEveryField(t *testing.T) {
	// Each single-field mutation must change the canon string, so a new
	// fault knob cannot silently alias cache entries.
	base := Plan{Seed: 1, DropProb: 0.1, DelayProb: 0.1, DelayCycles: 2,
		DupProb: 0.1, StaleProb: 0.1, StaleCycles: 3, TornProb: 0.1,
		TornOrder: StepFirst, TornWindow: 2, TornLowBits: 20,
		ModuleDelayProb: 0.1, ModuleDelayCycles: 2, SlowProc: 1,
		SlowFactor: 2, HaltProc: 1, HaltAtCycle: 9, StallIter: 1, StallMillis: 5}
	muts := []func(*Plan){
		func(p *Plan) { p.Seed = 2 },
		func(p *Plan) { p.DropProb = 0.2 },
		func(p *Plan) { p.DelayProb = 0.2 },
		func(p *Plan) { p.DelayCycles = 4 },
		func(p *Plan) { p.DupProb = 0.2 },
		func(p *Plan) { p.StaleProb = 0.2 },
		func(p *Plan) { p.StaleCycles = 4 },
		func(p *Plan) { p.TornProb = 0.2 },
		func(p *Plan) { p.TornOrder = OwnerFirst },
		func(p *Plan) { p.TornWindow = 4 },
		func(p *Plan) { p.TornLowBits = 10 },
		func(p *Plan) { p.ModuleDelayProb = 0.2 },
		func(p *Plan) { p.ModuleDelayCycles = 4 },
		func(p *Plan) { p.SlowProc = 2 },
		func(p *Plan) { p.SlowFactor = 3 },
		func(p *Plan) { p.HaltProc = 2 },
		func(p *Plan) { p.HaltAtCycle = 10 },
		func(p *Plan) { p.StallIter = 2 },
		func(p *Plan) { p.StallMillis = 6 },
	}
	ref := base.Canon()
	for i, mut := range muts {
		q := base
		mut(&q)
		if q.Canon() == ref {
			t.Errorf("mutation %d did not change Canon()", i)
		}
	}
}

func TestCountsString(t *testing.T) {
	if s := (Counts{}).String(); s != "none" {
		t.Errorf("empty Counts.String() = %q", s)
	}
	c := Counts{Drops: 2, Torn: 1}
	if s := c.String(); !strings.Contains(s, "drops=2") || !strings.Contains(s, "torn=1") {
		t.Errorf("Counts.String() = %q", s)
	}
	var tot Counts
	tot.Add(c)
	tot.Add(Counts{Delays: 3})
	if tot.Total() != 6 {
		t.Errorf("Total = %d, want 6", tot.Total())
	}
}
