// Package fault is a seeded, deterministic fault-injection layer for the
// synchronization-bus simulator and the concurrent runtime.
//
// A Plan describes which faults to inject and how often; it is plain data
// (JSON-serializable, comparable, zero value = no faults) so it can travel
// inside sim.Config, through the dsserve request vocabulary, and into the
// cache canon key. All randomness is a pure hash of (seed, site kind, site
// coordinates): whether broadcast #17 of variable 3 is dropped depends only
// on those numbers, never on wall-clock time, goroutine interleaving or
// GOMAXPROCS — so the same seed and plan reproduce the exact same fault
// schedule on every run, which is what makes a chaos failure debuggable.
//
// The package deliberately imports nothing from the rest of the repository:
// internal/sim and internal/core both consume it, so it must sit below both.
package fault

import (
	"fmt"
	"strings"
	"time"
)

// Torn-update store orders (paper §6): a two-field <owner,step> PC update
// that is not atomic is safe when the step half is stored before the owner
// half, and hazardous in the opposite order.
const (
	// StepFirst commits the step (low) half before the owner (high) half —
	// the order §6 proves safe, and the default.
	StepFirst = "step-first"
	// OwnerFirst commits the owner (high) half before the step (low) half —
	// the hazardous order, exposing <newOwner, oldStep> to waiters.
	OwnerFirst = "owner-first"
)

// Plan is a deterministic fault-injection plan. The zero value injects
// nothing. Probabilities are per eligible site in [0,1]; cycle counts are in
// simulated cycles. Fields gate on their "amount" so that a probability or
// duration of zero always means "off".
type Plan struct {
	// Seed selects the fault schedule; two runs with the same plan and seed
	// inject exactly the same faults at the same sites.
	Seed int64 `json:"seed,omitempty"`

	// DropProb is the probability a sync-bus broadcast is lost: the writer
	// keeps its local register image, but no other processor ever sees the
	// value.
	DropProb float64 `json:"dropProb,omitempty"`
	// DelayProb is the probability a broadcast holds the bus for
	// DelayCycles extra cycles before committing.
	DelayProb   float64 `json:"delayProb,omitempty"`
	DelayCycles int64   `json:"delayCycles,omitempty"` // default 8
	// DupProb is the probability a broadcast is delivered twice. Sync
	// variables are monotone, so duplication must be harmless; this probes
	// that claim.
	DupProb float64 `json:"dupProb,omitempty"`

	// StaleProb is the probability a satisfied register wait instead
	// observes a stale local image and keeps spinning for StaleCycles
	// before re-checking.
	StaleProb   float64 `json:"staleProb,omitempty"`
	StaleCycles int64   `json:"staleCycles,omitempty"` // default 4

	// TornProb is the probability a broadcast commits as a torn two-field
	// <owner,step> update: one half at commit time, the other TornWindow
	// cycles later, in TornOrder. TornLowBits is the width of the step
	// field in the packed word (default 20, matching core.StepBits).
	TornProb    float64 `json:"tornProb,omitempty"`
	TornOrder   string  `json:"tornOrder,omitempty"`   // step-first (default) or owner-first
	TornWindow  int64   `json:"tornWindow,omitempty"`  // default 1
	TornLowBits int     `json:"tornLowBits,omitempty"` // default 20

	// ModuleDelayProb is the probability one memory-module access takes
	// ModuleDelayCycles extra cycles (a slow DRAM bank).
	ModuleDelayProb   float64 `json:"moduleDelayProb,omitempty"`
	ModuleDelayCycles int64   `json:"moduleDelayCycles,omitempty"` // default 4

	// SlowFactor >= 2 multiplies every compute op on processor SlowProc by
	// that factor (a processor running hot or descheduled).
	SlowProc   int   `json:"slowProc,omitempty"`
	SlowFactor int64 `json:"slowFactor,omitempty"`

	// HaltAtCycle >= 1 stops processor HaltProc dead at that cycle: it
	// never executes another op, so everything depending on it stalls.
	HaltProc    int   `json:"haltProc,omitempty"`
	HaltAtCycle int64 `json:"haltAtCycle,omitempty"`

	// StallMillis > 0 makes the runtime iteration StallIter (1-based) hold
	// its process counter for that long before proceeding — the
	// never-released-PC experiment for core.Runner's watchdog.
	StallIter   int64 `json:"stallIter,omitempty"`
	StallMillis int64 `json:"stallMillis,omitempty"`
}

// Enabled reports whether the plan injects anything at all. A disabled plan
// must be indistinguishable from no plan: the simulator skips every hook and
// the cache canon key is byte-identical to one computed without the fault
// layer.
func (p Plan) Enabled() bool {
	return p.DropProb > 0 || p.DelayProb > 0 || p.DupProb > 0 ||
		p.StaleProb > 0 || p.TornProb > 0 || p.ModuleDelayProb > 0 ||
		p.SlowFactor >= 2 || p.HaltAtCycle >= 1 || p.StallMillis > 0
}

// SimEnabled reports whether any simulator-level fault is armed (everything
// except the runtime stall).
func (p Plan) SimEnabled() bool {
	return p.DropProb > 0 || p.DelayProb > 0 || p.DupProb > 0 ||
		p.StaleProb > 0 || p.TornProb > 0 || p.ModuleDelayProb > 0 ||
		p.SlowFactor >= 2 || p.HaltAtCycle >= 1
}

// StallsRuntime reports whether the runtime-stall fault is armed.
func (p Plan) StallsRuntime() bool { return p.StallMillis > 0 && p.StallIter >= 1 }

// Halts reports whether the processor-halt fault is armed — the one fault
// class ownership reclamation (sim.Config.Recover) can heal: a halted
// processor's PC is a transferable token, so a recovery layer can reclaim
// it, while drops and slowdowns have nothing to reclaim.
func (p Plan) Halts() bool { return p.HaltAtCycle >= 1 }

// StallDuration returns the armed runtime stall length.
func (p Plan) StallDuration() time.Duration {
	return time.Duration(p.StallMillis) * time.Millisecond
}

// Check validates the plan. It is called from sim.Config.Check so a bad
// fault spec is an input error, not a crash.
func (p Plan) Check() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"dropProb", p.DropProb}, {"delayProb", p.DelayProb}, {"dupProb", p.DupProb},
		{"staleProb", p.StaleProb}, {"tornProb", p.TornProb}, {"moduleDelayProb", p.ModuleDelayProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s must be in [0,1] (got %g)", pr.name, pr.v)
		}
	}
	cycles := []struct {
		name string
		v    int64
	}{
		{"delayCycles", p.DelayCycles}, {"staleCycles", p.StaleCycles},
		{"tornWindow", p.TornWindow}, {"moduleDelayCycles", p.ModuleDelayCycles},
		{"haltAtCycle", p.HaltAtCycle}, {"stallMillis", p.StallMillis},
		{"stallIter", p.StallIter}, {"slowFactor", p.SlowFactor},
	}
	for _, c := range cycles {
		if c.v < 0 {
			return fmt.Errorf("fault: %s must be >= 0 (got %d)", c.name, c.v)
		}
	}
	if p.TornOrder != "" && p.TornOrder != StepFirst && p.TornOrder != OwnerFirst {
		return fmt.Errorf("fault: tornOrder must be %q or %q (got %q)", StepFirst, OwnerFirst, p.TornOrder)
	}
	if p.TornLowBits < 0 || p.TornLowBits > 62 {
		return fmt.Errorf("fault: tornLowBits must be in [0,62] (got %d)", p.TornLowBits)
	}
	if p.SlowProc < 0 {
		return fmt.Errorf("fault: slowProc must be >= 0 (got %d)", p.SlowProc)
	}
	if p.HaltProc < 0 {
		return fmt.Errorf("fault: haltProc must be >= 0 (got %d)", p.HaltProc)
	}
	if p.StallMillis > 0 && p.StallIter < 1 {
		return fmt.Errorf("fault: stallMillis needs stallIter >= 1 (got %d)", p.StallIter)
	}
	return nil
}

// Defaults applied where a knob is armed but its amount was left zero.
func (p Plan) delayCycles() int64 {
	if p.DelayCycles > 0 {
		return p.DelayCycles
	}
	return 8
}

func (p Plan) staleCycles() int64 {
	if p.StaleCycles > 0 {
		return p.StaleCycles
	}
	return 4
}

func (p Plan) tornWindow() int64 {
	if p.TornWindow > 0 {
		return p.TornWindow
	}
	return 1
}

func (p Plan) tornLowBits() int {
	if p.TornLowBits > 0 {
		return p.TornLowBits
	}
	return 20 // core.StepBits; fault cannot import core (core imports sim imports fault)
}

func (p Plan) moduleDelayCycles() int64 {
	if p.ModuleDelayCycles > 0 {
		return p.ModuleDelayCycles
	}
	return 4
}

func (p Plan) tornOwnerFirst() bool { return p.TornOrder == OwnerFirst }

// Canon renders every field in a fixed order for the cache canon key. Only
// called for enabled plans — cache.RequestKey skips disabled plans entirely
// so clean runs keep their established content addresses.
func (p Plan) Canon() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	fmt.Fprintf(&b, ";drop=%g", p.DropProb)
	fmt.Fprintf(&b, ";delay=%g/%d", p.DelayProb, p.DelayCycles)
	fmt.Fprintf(&b, ";dup=%g", p.DupProb)
	fmt.Fprintf(&b, ";stale=%g/%d", p.StaleProb, p.StaleCycles)
	fmt.Fprintf(&b, ";torn=%g/%s/%d/%d", p.TornProb, p.TornOrder, p.TornWindow, p.TornLowBits)
	fmt.Fprintf(&b, ";mod=%g/%d", p.ModuleDelayProb, p.ModuleDelayCycles)
	fmt.Fprintf(&b, ";slow=%d/%d", p.SlowProc, p.SlowFactor)
	fmt.Fprintf(&b, ";halt=%d/%d", p.HaltProc, p.HaltAtCycle)
	fmt.Fprintf(&b, ";stall=%d/%d", p.StallIter, p.StallMillis)
	return b.String()
}

// Site kinds salt the hash so the drop decision at a site is independent of
// the delay decision at the same site.
const (
	siteDrop uint64 = iota + 1
	siteDelay
	siteDup
	siteStale
	siteTorn
	siteModule
)

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns a uniform float64 in [0,1) fully determined by the seed, the
// site kind and up to three site coordinates.
func (p Plan) roll(kind uint64, a, b, c int64) float64 {
	h := mix(uint64(p.Seed)) ^ mix(kind)
	h = mix(h ^ uint64(a))
	h = mix(h ^ uint64(b))
	h = mix(h ^ uint64(c))
	return float64(h>>11) / (1 << 53)
}
