package fault

// Seeded fault injection for the cluster's peer links.
//
// LinkPlan extends the package's determinism contract from the simulated
// sync bus to the real HTTP links between cluster nodes: every decision is
// a pure hash of (seed, site kind, src, dst, endpoint, attempt), never of
// wall-clock time or goroutine interleaving — so two runs with the same
// seed and the same request sequence inject exactly the same faults, which
// is what makes a distributed chaos failure debuggable. The one deliberate
// exception is partition episodes, which are windows in time by nature;
// their clock is injectable (NewLinkInjectorAt) so a probe harness can
// advance it by hand and keep even the partitions deterministic.
//
// Like the rest of the package, this file imports nothing from the
// repository: internal/cluster consumes it, so it must sit below it.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LinkPlan describes seeded faults for the directed links between cluster
// peers. The zero value injects nothing. Probabilities are per HTTP
// exchange (each retry attempt is its own exchange, with its own hash
// coordinate) in [0,1].
type LinkPlan struct {
	// Seed selects the fault schedule; same plan + seed + request sequence
	// means the same faults on every run.
	Seed int64 `json:"seed,omitempty"`

	// DropProb is the probability one peer exchange is lost: the request
	// never reaches the wire and the sender sees a transport error (which
	// the peer client retries like any other).
	DropProb float64 `json:"dropProb,omitempty"`
	// DelayProb is the probability an exchange is held DelayMS milliseconds
	// before being sent (default 25ms) — enough to skew probe and gossip
	// timing without tripping client timeouts on its own.
	DelayProb float64 `json:"delayProb,omitempty"`
	DelayMS   int64   `json:"delayMS,omitempty"`
	// DupProb is the probability an exchange is delivered twice. Peer
	// traffic is content-addressed and import-idempotent, so duplication
	// must be harmless; this probes that claim, exactly as the bus-level
	// DupProb probes monotone sync variables.
	DupProb float64 `json:"dupProb,omitempty"`

	// BlackHole lists directed links "src>dst" that never deliver — the
	// permanent, asymmetric partition (A cannot reach B while B still
	// reaches A) that gossip convergence must survive.
	BlackHole []string `json:"blackHole,omitempty"`

	// Partitions are named episodes: while active, any link that crosses an
	// island boundary is cut in the direction the deciding node sends.
	Partitions []PartitionEpisode `json:"partitions,omitempty"`
}

// PartitionEpisode is one named network partition with a start and heal
// time, measured from the injector's arming.
type PartitionEpisode struct {
	Name string `json:"name"`
	// Islands are the connected groups of member IDs. Members listed in no
	// island form one implicit final island — so a single listed island
	// {c} cuts c from everyone else.
	Islands [][]string `json:"islands"`
	// StartMS/HealMS bound the episode in milliseconds after arming;
	// HealMS 0 means the partition never heals.
	StartMS int64 `json:"startMS,omitempty"`
	HealMS  int64 `json:"healMS,omitempty"`
}

// Enabled reports whether the plan injects anything at all.
func (p LinkPlan) Enabled() bool {
	return p.DropProb > 0 || p.DelayProb > 0 || p.DupProb > 0 ||
		len(p.BlackHole) > 0 || len(p.Partitions) > 0
}

// Check validates the plan so a bad link-fault spec is an input error, not
// a surprise mid-chaos.
func (p LinkPlan) Check() error {
	probs := []struct {
		name string
		v    float64
	}{{"dropProb", p.DropProb}, {"delayProb", p.DelayProb}, {"dupProb", p.DupProb}}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: link %s must be in [0,1] (got %g)", pr.name, pr.v)
		}
	}
	if p.DelayMS < 0 {
		return fmt.Errorf("fault: link delayMS must be >= 0 (got %d)", p.DelayMS)
	}
	for _, bh := range p.BlackHole {
		src, dst, ok := strings.Cut(bh, ">")
		if !ok || src == "" || dst == "" {
			return fmt.Errorf("fault: black-hole link %q is not src>dst", bh)
		}
	}
	for _, ep := range p.Partitions {
		if ep.Name == "" {
			return fmt.Errorf("fault: partition episode without a name")
		}
		if len(ep.Islands) == 0 {
			return fmt.Errorf("fault: partition %q has no islands", ep.Name)
		}
		seen := map[string]bool{}
		for _, isl := range ep.Islands {
			if len(isl) == 0 {
				return fmt.Errorf("fault: partition %q has an empty island", ep.Name)
			}
			for _, id := range isl {
				if seen[id] {
					return fmt.Errorf("fault: partition %q lists member %q in two islands", ep.Name, id)
				}
				seen[id] = true
			}
		}
		if ep.StartMS < 0 {
			return fmt.Errorf("fault: partition %q startMS must be >= 0 (got %d)", ep.Name, ep.StartMS)
		}
		if ep.HealMS != 0 && ep.HealMS <= ep.StartMS {
			return fmt.Errorf("fault: partition %q heals at %dms, not after its start %dms", ep.Name, ep.HealMS, ep.StartMS)
		}
	}
	return nil
}

func (p LinkPlan) delayMS() int64 {
	if p.DelayMS > 0 {
		return p.DelayMS
	}
	return 25
}

// Link site kinds salt the per-link hash, offset away from the bus-level
// site kinds so the two schedules never alias.
const (
	linkSiteDrop uint64 = iota + 16
	linkSiteDelay
	linkSiteDup
)

// hashStr folds a string into the splitmix64 schedule (FNV-1a then the
// finalizer), so member IDs and endpoint paths become stable coordinates.
func hashStr(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix(h)
}

// linkRoll returns a uniform float64 in [0,1) fully determined by the
// seed, the site kind, the directed link, the endpoint and the attempt
// ordinal on that (link, endpoint).
func (p LinkPlan) linkRoll(kind uint64, src, dst, endpoint string, attempt int64) float64 {
	h := mix(uint64(p.Seed)) ^ mix(kind)
	h = mix(h ^ hashStr(src))
	h = mix(h ^ hashStr(dst))
	h = mix(h ^ hashStr(endpoint))
	h = mix(h ^ uint64(attempt))
	return float64(h>>11) / (1 << 53)
}

// LinkVerdict is the injector's decision for one peer exchange.
type LinkVerdict struct {
	// Cut: the link is severed (black hole or active partition) — fail
	// without touching the wire. Episode names the partition when one cut.
	Cut     bool
	Episode string
	// Drop: lose this exchange (transport error to the sender).
	Drop bool
	// Delay: hold the exchange this long before sending.
	Delay time.Duration
	// Dup: deliver the exchange twice.
	Dup bool
}

// LinkCounts snapshots the injected-fault counters by kind.
type LinkCounts struct {
	Drops      int64 `json:"drops"`
	Delays     int64 `json:"delays"`
	Dups       int64 `json:"dups"`
	BlackHoled int64 `json:"blackHoled"`
	Partition  int64 `json:"partition"`
}

// Total sums every injected fault.
func (c LinkCounts) Total() int64 {
	return c.Drops + c.Delays + c.Dups + c.BlackHoled + c.Partition
}

// Add returns the element-wise sum (aggregating per-node injectors).
func (c LinkCounts) Add(o LinkCounts) LinkCounts {
	return LinkCounts{
		Drops:      c.Drops + o.Drops,
		Delays:     c.Delays + o.Delays,
		Dups:       c.Dups + o.Dups,
		BlackHoled: c.BlackHoled + o.BlackHoled,
		Partition:  c.Partition + o.Partition,
	}
}

// episodeState is one partition episode with its island index precomputed.
type episodeState struct {
	name        string
	start, heal int64          // ms after arming; heal 0 = never
	island      map[string]int // member ID -> island ordinal
	implicit    int            // ordinal of the implicit island for unlisted members
}

func (e *episodeState) active(elapsedMS int64) bool {
	return elapsedMS >= e.start && (e.heal == 0 || elapsedMS < e.heal)
}

func (e *episodeState) ordinal(id string) int {
	if i, ok := e.island[id]; ok {
		return i
	}
	return e.implicit
}

// LinkInjector applies a LinkPlan to a stream of peer exchanges. It owns
// the per-(link, endpoint) attempt counters — the only state the schedule
// depends on — and the per-kind injected-fault counters.
type LinkInjector struct {
	plan      LinkPlan
	now       func() time.Time
	start     time.Time
	blackHole map[string]bool
	episodes  []episodeState

	mu       sync.Mutex
	attempts map[string]int64

	drops, delays, dups, blackholed, cuts atomic.Int64
}

// NewLinkInjector arms the plan against the wall clock.
func NewLinkInjector(p LinkPlan) *LinkInjector {
	return NewLinkInjectorAt(p, time.Now)
}

// NewLinkInjectorAt arms the plan against an injected clock, which decides
// partition-episode windows. Probe harnesses advance it by hand so even
// the time-windowed faults replay deterministically.
func NewLinkInjectorAt(p LinkPlan, now func() time.Time) *LinkInjector {
	in := &LinkInjector{
		plan:      p,
		now:       now,
		start:     now(),
		blackHole: make(map[string]bool, len(p.BlackHole)),
		attempts:  make(map[string]int64),
	}
	for _, bh := range p.BlackHole {
		in.blackHole[bh] = true
	}
	for _, ep := range p.Partitions {
		es := episodeState{
			name:   ep.Name,
			start:  ep.StartMS,
			heal:   ep.HealMS,
			island: make(map[string]int),
		}
		for i, isl := range ep.Islands {
			for _, id := range isl {
				es.island[id] = i
			}
		}
		es.implicit = len(ep.Islands)
		in.episodes = append(in.episodes, es)
	}
	return in
}

// Decide rolls the dice for one exchange on the directed link src->dst and
// advances that (link, endpoint)'s attempt ordinal. Cuts (black hole,
// partition) take precedence: a severed link has no probabilistic faults,
// it simply does not deliver.
func (in *LinkInjector) Decide(src, dst, endpoint string) LinkVerdict {
	site := src + ">" + dst + ":" + endpoint
	in.mu.Lock()
	attempt := in.attempts[site]
	in.attempts[site] = attempt + 1
	in.mu.Unlock()

	if in.blackHole[src+">"+dst] {
		in.blackholed.Add(1)
		return LinkVerdict{Cut: true}
	}
	elapsed := in.now().Sub(in.start).Milliseconds()
	for i := range in.episodes {
		ep := &in.episodes[i]
		if ep.active(elapsed) && ep.ordinal(src) != ep.ordinal(dst) {
			in.cuts.Add(1)
			return LinkVerdict{Cut: true, Episode: ep.name}
		}
	}

	var v LinkVerdict
	p := in.plan
	if p.DropProb > 0 && p.linkRoll(linkSiteDrop, src, dst, endpoint, attempt) < p.DropProb {
		in.drops.Add(1)
		v.Drop = true
		return v
	}
	if p.DelayProb > 0 && p.linkRoll(linkSiteDelay, src, dst, endpoint, attempt) < p.DelayProb {
		in.delays.Add(1)
		v.Delay = time.Duration(p.delayMS()) * time.Millisecond
	}
	if p.DupProb > 0 && p.linkRoll(linkSiteDup, src, dst, endpoint, attempt) < p.DupProb {
		in.dups.Add(1)
		v.Dup = true
	}
	return v
}

// Counts snapshots the injected-fault counters.
func (in *LinkInjector) Counts() LinkCounts {
	return LinkCounts{
		Drops:      in.drops.Load(),
		Delays:     in.delays.Load(),
		Dups:       in.dups.Load(),
		BlackHoled: in.blackholed.Load(),
		Partition:  in.cuts.Load(),
	}
}

// PartitionActive reports whether any partition episode is active at the
// injector's current clock (probe harnesses poll it across heal times).
func (in *LinkInjector) PartitionActive() bool {
	elapsed := in.now().Sub(in.start).Milliseconds()
	for i := range in.episodes {
		if in.episodes[i].active(elapsed) {
			return true
		}
	}
	return false
}

// ParseLinkSpec builds a LinkPlan from the comma-separated CLI
// mini-language used by dsserve -link-fault:
//
//	seed=42                         schedule seed (default 0)
//	drop=link:P                     drop each peer exchange with probability P
//	delay=link:P[:MS]               delay each exchange MS milliseconds with probability P (MS default 25)
//	dup=link:P                      deliver each exchange twice with probability P
//	blackhole=src>dst               sever the directed link src->dst permanently
//	partition=name:a+b/c[:S[:H]]    named episode: islands are +-joined member
//	                                IDs separated by /; unlisted members form
//	                                one implicit island; active from S ms
//	                                after boot until H ms (H 0 = forever)
//
// Example: 'seed=42,drop=link:0.05,partition=split:c/a+b:2000:8000'.
func ParseLinkSpec(spec string) (LinkPlan, error) {
	var p LinkPlan
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return LinkPlan{}, fmt.Errorf("fault: %q is not key=value", item)
		}
		if err := p.applyLinkSpecItem(key, val); err != nil {
			return LinkPlan{}, err
		}
	}
	if err := p.Check(); err != nil {
		return LinkPlan{}, err
	}
	return p, nil
}

func (p *LinkPlan) applyLinkSpecItem(key, val string) error {
	parts := strings.Split(val, ":")
	switch key {
	case "seed":
		return specInt(key, parts, 1, &p.Seed)
	case "drop":
		return specProb(key, "link", parts, &p.DropProb, nil)
	case "delay":
		return specProb(key, "link", parts, &p.DelayProb, &p.DelayMS)
	case "dup":
		return specProb(key, "link", parts, &p.DupProb, nil)
	case "blackhole":
		p.BlackHole = append(p.BlackHole, val)
		return nil
	case "partition":
		if len(parts) < 2 || len(parts) > 4 {
			return fmt.Errorf("fault: partition wants name:islands[:startMS[:healMS]] (got %q)", val)
		}
		ep := PartitionEpisode{Name: parts[0]}
		for _, isl := range strings.Split(parts[1], "/") {
			var members []string
			for _, id := range strings.Split(isl, "+") {
				if id != "" {
					members = append(members, id)
				}
			}
			ep.Islands = append(ep.Islands, members)
		}
		if len(parts) >= 3 {
			ms, err := strconv64(parts[2])
			if err != nil {
				return fmt.Errorf("fault: partition %q startMS %q: %v", ep.Name, parts[2], err)
			}
			ep.StartMS = ms
		}
		if len(parts) == 4 {
			ms, err := strconv64(parts[3])
			if err != nil {
				return fmt.Errorf("fault: partition %q healMS %q: %v", ep.Name, parts[3], err)
			}
			ep.HealMS = ms
		}
		p.Partitions = append(p.Partitions, ep)
		return nil
	default:
		return fmt.Errorf("fault: unknown link spec key %q", key)
	}
}

func strconv64(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
