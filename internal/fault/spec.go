package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a Plan from the comma-separated CLI mini-language used by
// dssim -fault:
//
//	seed=42               PRNG seed (default 0)
//	drop=bus:P            drop each broadcast with probability P
//	delay=bus:P[:C]       delay each broadcast C cycles with probability P (C default 8)
//	dup=bus:P             duplicate each broadcast with probability P
//	stale=reg:P[:C]       stale register read for C cycles with probability P (C default 4)
//	torn=pc:P[:order[:W]] torn <owner,step> update with probability P;
//	                      order is step-first (default) or owner-first, W the
//	                      split window in cycles (default 1)
//	mem=mod:P[:C]         delay a module access C cycles with probability P (C default 4)
//	slow=procN:F          multiply proc N's compute by factor F
//	halt=procN:C          halt proc N at cycle C
//	stall=iterN:MS        runtime: iteration N holds its PC for MS milliseconds
//
// Example: 'drop=bus:0.01,delay=bus:0.05:6,seed=42'.
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q is not key=value", item)
		}
		parts := strings.Split(val, ":")
		if err := p.applySpecItem(key, parts); err != nil {
			return Plan{}, err
		}
	}
	if err := p.Check(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func (p *Plan) applySpecItem(key string, parts []string) error {
	switch key {
	case "seed":
		return specInt(key, parts, 1, &p.Seed)
	case "drop":
		return specProb(key, "bus", parts, &p.DropProb, nil)
	case "delay":
		return specProb(key, "bus", parts, &p.DelayProb, &p.DelayCycles)
	case "dup":
		return specProb(key, "bus", parts, &p.DupProb, nil)
	case "stale":
		return specProb(key, "reg", parts, &p.StaleProb, &p.StaleCycles)
	case "torn":
		if len(parts) < 2 || len(parts) > 4 || parts[0] != "pc" {
			return fmt.Errorf("fault: torn wants pc:P[:order[:window]] (got %q)", strings.Join(parts, ":"))
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return fmt.Errorf("fault: torn probability %q: %v", parts[1], err)
		}
		p.TornProb = prob
		if len(parts) >= 3 {
			p.TornOrder = parts[2]
		}
		if len(parts) == 4 {
			w, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil {
				return fmt.Errorf("fault: torn window %q: %v", parts[3], err)
			}
			p.TornWindow = w
		}
		return nil
	case "mem":
		return specProb(key, "mod", parts, &p.ModuleDelayProb, &p.ModuleDelayCycles)
	case "slow":
		return specProcPair(key, parts, &p.SlowProc, &p.SlowFactor)
	case "halt":
		return specProcPair(key, parts, &p.HaltProc, &p.HaltAtCycle)
	case "stall":
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "iter") {
			return fmt.Errorf("fault: stall wants iterN:millis (got %q)", strings.Join(parts, ":"))
		}
		it, err := strconv.ParseInt(strings.TrimPrefix(parts[0], "iter"), 10, 64)
		if err != nil {
			return fmt.Errorf("fault: stall iteration %q: %v", parts[0], err)
		}
		ms, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return fmt.Errorf("fault: stall millis %q: %v", parts[1], err)
		}
		p.StallIter, p.StallMillis = it, ms
		return nil
	default:
		return fmt.Errorf("fault: unknown spec key %q", key)
	}
}

func specInt(key string, parts []string, n int, dst *int64) error {
	if len(parts) != n {
		return fmt.Errorf("fault: %s wants one value", key)
	}
	v, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("fault: %s value %q: %v", key, parts[0], err)
	}
	*dst = v
	return nil
}

// specProb parses target:P[:cycles] where target names the fault domain
// (documentation in the spec itself; cycles optional when dstCycles != nil).
func specProb(key, target string, parts []string, dstProb *float64, dstCycles *int64) error {
	maxParts := 2
	if dstCycles != nil {
		maxParts = 3
	}
	if len(parts) < 2 || len(parts) > maxParts || parts[0] != target {
		return fmt.Errorf("fault: %s wants %s:P%s (got %q)", key, target,
			map[bool]string{true: "[:cycles]", false: ""}[dstCycles != nil], strings.Join(parts, ":"))
	}
	prob, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("fault: %s probability %q: %v", key, parts[1], err)
	}
	*dstProb = prob
	if len(parts) == 3 {
		c, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("fault: %s cycles %q: %v", key, parts[2], err)
		}
		*dstCycles = c
	}
	return nil
}

// specProcPair parses procN:V.
func specProcPair(key string, parts []string, dstProc *int, dstVal *int64) error {
	if len(parts) != 2 || !strings.HasPrefix(parts[0], "proc") {
		return fmt.Errorf("fault: %s wants procN:value (got %q)", key, strings.Join(parts, ":"))
	}
	id, err := strconv.Atoi(strings.TrimPrefix(parts[0], "proc"))
	if err != nil {
		return fmt.Errorf("fault: %s processor %q: %v", key, parts[0], err)
	}
	v, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("fault: %s value %q: %v", key, parts[1], err)
	}
	*dstProc, *dstVal = id, v
	return nil
}
