package fault

import (
	"sync"
	"testing"
	"time"
)

// TestLinkInjectorDeterminism: two injectors with the same plan, fed the
// same exchange sequence, must make identical decisions and end with
// identical counts — the property that makes a distributed chaos failure
// replayable from its seed.
func TestLinkInjectorDeterminism(t *testing.T) {
	plan := LinkPlan{Seed: 42, DropProb: 0.3, DelayProb: 0.25, DelayMS: 1, DupProb: 0.2}
	drive := func() ([]LinkVerdict, LinkCounts) {
		in := NewLinkInjector(plan)
		var out []LinkVerdict
		for i := 0; i < 200; i++ {
			out = append(out, in.Decide("a", "b", "/run"))
			out = append(out, in.Decide("b", "a", "/sweep"))
			out = append(out, in.Decide("a", "c", "/healthz"))
		}
		return out, in.Counts()
	}
	v1, c1 := drive()
	v2, c2 := drive()
	if c1 != c2 {
		t.Fatalf("counts diverge across identical runs: %+v vs %+v", c1, c2)
	}
	if c1.Total() == 0 {
		t.Fatalf("600 exchanges at ~30%% fault rates injected nothing: %+v", c1)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("decision %d diverges: %+v vs %+v", i, v1[i], v2[i])
		}
	}

	// A different seed must produce a different schedule (overwhelmingly).
	other := plan
	other.Seed = 43
	ino := NewLinkInjector(other)
	diverged := false
	for i := 0; i < 200 && !diverged; i++ {
		if ino.Decide("a", "b", "/run") != v1[i*3] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical 200-exchange schedules")
	}
}

// TestLinkInjectorAttemptCoordinate: the attempt ordinal is part of the
// hash coordinate, so a retry of the same (link, endpoint) is a fresh roll
// — not a guaranteed repeat of the first attempt's fate.
func TestLinkInjectorAttemptCoordinate(t *testing.T) {
	plan := LinkPlan{Seed: 7, DropProb: 0.5}
	in := NewLinkInjector(plan)
	drops := 0
	for i := 0; i < 64; i++ {
		if in.Decide("a", "b", "/run").Drop {
			drops++
		}
	}
	if drops == 0 || drops == 64 {
		t.Fatalf("64 attempts at DropProb 0.5 dropped %d — the attempt ordinal is not feeding the hash", drops)
	}
}

// TestLinkInjectorBlackHole: a black-holed link is cut in exactly its
// direction, always, regardless of probabilities.
func TestLinkInjectorBlackHole(t *testing.T) {
	in := NewLinkInjector(LinkPlan{BlackHole: []string{"a>b"}})
	for i := 0; i < 10; i++ {
		if v := in.Decide("a", "b", "/healthz"); !v.Cut {
			t.Fatalf("black-holed a>b delivered on attempt %d", i)
		}
		if v := in.Decide("b", "a", "/healthz"); v.Cut {
			t.Fatalf("reverse link b>a cut by a>b black hole on attempt %d", i)
		}
	}
	if c := in.Counts(); c.BlackHoled != 10 {
		t.Errorf("BlackHoled = %d, want 10", c.BlackHoled)
	}
}

// TestLinkInjectorPartitionWindow: a partition episode cuts cross-island
// links only inside its [start, heal) window, keeps intra-island links
// alive throughout, and puts unlisted members in the implicit island.
func TestLinkInjectorPartitionWindow(t *testing.T) {
	plan := LinkPlan{Partitions: []PartitionEpisode{{
		Name:    "split",
		Islands: [][]string{{"c"}},
		StartMS: 1000,
		HealMS:  2000,
	}}}
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	in := NewLinkInjectorAt(plan, clock)
	cut := func(src, dst string) bool { return in.Decide(src, dst, "/run").Cut }

	if cut("a", "c") || cut("c", "a") {
		t.Fatal("partition active before its start time")
	}
	if in.PartitionActive() {
		t.Fatal("PartitionActive before start")
	}
	advance(1500 * time.Millisecond)
	if !cut("a", "c") || !cut("c", "b") {
		t.Fatal("cross-island link alive inside the partition window")
	}
	// a and b are both unlisted: same implicit island, never cut.
	if cut("a", "b") || cut("b", "a") {
		t.Fatal("intra-island link cut by the partition")
	}
	if !in.PartitionActive() {
		t.Fatal("PartitionActive false mid-window")
	}
	advance(1000 * time.Millisecond) // elapsed 2500ms: healed
	if cut("a", "c") || cut("c", "a") {
		t.Fatal("partition still cutting after its heal time")
	}
	if in.PartitionActive() {
		t.Fatal("PartitionActive after heal")
	}
	if c := in.Counts(); c.Partition != 2 {
		t.Errorf("Partition cuts = %d, want 2", c.Partition)
	}
}

// TestParseLinkSpec: the mini-language round-trips into the plan fields,
// and garbage is an input error.
func TestParseLinkSpec(t *testing.T) {
	p, err := ParseLinkSpec("seed=42,drop=link:0.05,delay=link:0.1:40,dup=link:0.02,blackhole=a>b,partition=split:c/a+b:2000:8000")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.DropProb != 0.05 || p.DelayProb != 0.1 || p.DelayMS != 40 || p.DupProb != 0.02 {
		t.Errorf("parsed plan %+v", p)
	}
	if len(p.BlackHole) != 1 || p.BlackHole[0] != "a>b" {
		t.Errorf("black hole = %v", p.BlackHole)
	}
	if len(p.Partitions) != 1 {
		t.Fatalf("partitions = %v", p.Partitions)
	}
	ep := p.Partitions[0]
	if ep.Name != "split" || ep.StartMS != 2000 || ep.HealMS != 8000 {
		t.Errorf("episode = %+v", ep)
	}
	if len(ep.Islands) != 2 || len(ep.Islands[0]) != 1 || ep.Islands[0][0] != "c" ||
		len(ep.Islands[1]) != 2 || ep.Islands[1][0] != "a" || ep.Islands[1][1] != "b" {
		t.Errorf("islands = %v", ep.Islands)
	}

	for _, bad := range []string{
		"drop=link:1.5",           // probability out of range
		"blackhole=ab",            // not src>dst
		"partition=:a/b",          // no name
		"partition=p:a/b:500:100", // heals before start
		"partition=p:a+b/a:0:100", // member in two islands
		"warp=link:0.5",           // unknown key
		"delay=bus:0.5",           // wrong target
	} {
		if _, err := ParseLinkSpec(bad); err == nil {
			t.Errorf("ParseLinkSpec(%q) accepted garbage", bad)
		}
	}
}
