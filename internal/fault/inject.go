package fault

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Counts is a snapshot of how many faults an Injector actually injected,
// by kind. It travels in sim.Stats and in stall reports, and feeds the
// dsserve_injected_faults_total metric.
type Counts struct {
	Drops        int64 `json:"drops,omitempty"`
	Delays       int64 `json:"delays,omitempty"`
	Dups         int64 `json:"dups,omitempty"`
	StaleReads   int64 `json:"staleReads,omitempty"`
	Torn         int64 `json:"torn,omitempty"`
	ModuleDelays int64 `json:"moduleDelays,omitempty"`
	SlowOps      int64 `json:"slowOps,omitempty"`
	Halts        int64 `json:"halts,omitempty"`
	Stalls       int64 `json:"stalls,omitempty"`
}

// Total is the number of injected faults across all kinds.
func (c Counts) Total() int64 {
	return c.Drops + c.Delays + c.Dups + c.StaleReads + c.Torn +
		c.ModuleDelays + c.SlowOps + c.Halts + c.Stalls
}

// String renders the non-zero kinds, or "none".
func (c Counts) String() string {
	var parts []string
	add := func(name string, v int64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("drops", c.Drops)
	add("delays", c.Delays)
	add("dups", c.Dups)
	add("staleReads", c.StaleReads)
	add("torn", c.Torn)
	add("moduleDelays", c.ModuleDelays)
	add("slowOps", c.SlowOps)
	add("halts", c.Halts)
	add("stalls", c.Stalls)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Add accumulates another snapshot (for service-level totals).
func (c *Counts) Add(o Counts) {
	c.Drops += o.Drops
	c.Delays += o.Delays
	c.Dups += o.Dups
	c.StaleReads += o.StaleReads
	c.Torn += o.Torn
	c.ModuleDelays += o.ModuleDelays
	c.SlowOps += o.SlowOps
	c.Halts += o.Halts
	c.Stalls += o.Stalls
}

// Injector applies a Plan and records what was actually injected. The
// decision methods are pure functions of their coordinates (plus the seed),
// so the schedule is reproducible; the injector itself only adds counting.
// Counters are atomic because core.Runner consults the injector from many
// goroutines; the simulator is single-threaded and pays nothing for it.
type Injector struct {
	plan Plan

	drops        atomic.Int64
	delays       atomic.Int64
	dups         atomic.Int64
	staleReads   atomic.Int64
	torn         atomic.Int64
	moduleDelays atomic.Int64
	slowOps      atomic.Int64
	halts        atomic.Int64
	stalls       atomic.Int64

	halted atomic.Bool

	mu         sync.Mutex
	droppedVar map[int64]int64 // varID -> dropped broadcasts, for stall diagnosis
}

// NewInjector builds an injector for a checked plan.
func NewInjector(p Plan) *Injector {
	return &Injector{plan: p, droppedVar: map[int64]int64{}}
}

// Plan returns the plan the injector applies.
func (in *Injector) Plan() Plan { return in.plan }

// Counts snapshots the injected-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Drops:        in.drops.Load(),
		Delays:       in.delays.Load(),
		Dups:         in.dups.Load(),
		StaleReads:   in.staleReads.Load(),
		Torn:         in.torn.Load(),
		ModuleDelays: in.moduleDelays.Load(),
		SlowOps:      in.slowOps.Load(),
		Halts:        in.halts.Load(),
		Stalls:       in.stalls.Load(),
	}
}

// DropBroadcast decides whether bus broadcast number seq (of variable varID,
// issued by proc) is lost, and records the loss for diagnosis.
func (in *Injector) DropBroadcast(seq int64, proc int, varID int64) bool {
	if in.plan.DropProb <= 0 || in.plan.roll(siteDrop, seq, int64(proc), varID) >= in.plan.DropProb {
		return false
	}
	in.drops.Add(1)
	in.mu.Lock()
	in.droppedVar[varID]++
	in.mu.Unlock()
	return true
}

// DelayBroadcast returns the extra cycles broadcast seq holds the bus (0 =
// no delay).
func (in *Injector) DelayBroadcast(seq int64, proc int, varID int64) int64 {
	if in.plan.DelayProb <= 0 || in.plan.roll(siteDelay, seq, int64(proc), varID) >= in.plan.DelayProb {
		return 0
	}
	in.delays.Add(1)
	return in.plan.delayCycles()
}

// DupBroadcast decides whether broadcast seq is delivered twice.
func (in *Injector) DupBroadcast(seq int64, proc int, varID int64) bool {
	if in.plan.DupProb <= 0 || in.plan.roll(siteDup, seq, int64(proc), varID) >= in.plan.DupProb {
		return false
	}
	in.dups.Add(1)
	return true
}

// StaleRead returns how many cycles a satisfied register wait (re-check
// number seq by proc on varID) instead sees a stale image (0 = fresh).
func (in *Injector) StaleRead(seq int64, proc int, varID int64) int64 {
	if in.plan.StaleProb <= 0 || in.plan.roll(siteStale, seq, int64(proc), varID) >= in.plan.StaleProb {
		return 0
	}
	in.staleReads.Add(1)
	return in.plan.staleCycles()
}

// TornUpdate decides whether broadcast seq commits as a torn two-field
// update and, if so, returns the split parameters.
func (in *Injector) TornUpdate(seq int64, proc int, varID int64) (lowBits int, window int64, ownerFirst bool, torn bool) {
	if in.plan.TornProb <= 0 || in.plan.roll(siteTorn, seq, int64(proc), varID) >= in.plan.TornProb {
		return 0, 0, false, false
	}
	in.torn.Add(1)
	return in.plan.tornLowBits(), in.plan.tornWindow(), in.plan.tornOwnerFirst(), true
}

// ModuleDelay returns the extra service cycles for module access seq on
// module mod issued by proc (0 = nominal).
func (in *Injector) ModuleDelay(seq int64, mod, proc int) int64 {
	if in.plan.ModuleDelayProb <= 0 || in.plan.roll(siteModule, seq, int64(mod), int64(proc)) >= in.plan.ModuleDelayProb {
		return 0
	}
	in.moduleDelays.Add(1)
	return in.plan.moduleDelayCycles()
}

// SlowExtra returns the extra busy cycles a compute op of the given cost
// pays on proc (0 for every other processor).
func (in *Injector) SlowExtra(proc int, cycles int64) int64 {
	if in.plan.SlowFactor < 2 || proc != in.plan.SlowProc || cycles == 0 {
		return 0
	}
	in.slowOps.Add(1)
	return cycles * (in.plan.SlowFactor - 1)
}

// Halted reports whether proc is halted at simulated time now. The first
// positive answer is counted once.
func (in *Injector) Halted(proc int, now int64) bool {
	if in.plan.HaltAtCycle < 1 || proc != in.plan.HaltProc || now < in.plan.HaltAtCycle {
		return false
	}
	if in.halted.CompareAndSwap(false, true) {
		in.halts.Add(1)
	}
	return true
}

// HaltActive reports whether the halt fault has fired.
func (in *Injector) HaltActive() bool { return in.halted.Load() }

// NoteStall counts one runtime stall injection.
func (in *Injector) NoteStall() { in.stalls.Add(1) }

// VarDropped returns how many broadcasts of varID were dropped — the basis
// for "the injected fault explains this stall".
func (in *Injector) VarDropped(varID int64) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.droppedVar[varID]
}

// SlowsCycles reports whether the plan injects any fault that only
// lengthens a run without blocking it (relevant when a run exceeds its
// cycle cap rather than deadlocking).
func (p Plan) SlowsCycles() bool {
	return p.DelayProb > 0 || p.StaleProb > 0 || p.ModuleDelayProb > 0 || p.SlowFactor >= 2
}
