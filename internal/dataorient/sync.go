package dataorient

import (
	"runtime"
	"strconv"
	"sync/atomic"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/sim"
)

// feTag renders the full/empty-bit tags ("<prefix><elem>.v<version>.c<copy>")
// without fmt: these are built once per planned access per sweep point, a
// measurable slice of sweep time.
func feTag(prefix string, e Elem, version int64, copyIdx int) string {
	b := make([]byte, 0, len(prefix)+len(e.Array)+24)
	b = append(b, prefix...)
	b = appendElem(b, e)
	b = append(b, ".v"...)
	b = strconv.AppendInt(b, version, 10)
	b = append(b, ".c"...)
	b = strconv.AppendInt(b, int64(copyIdx), 10)
	return string(b)
}

// SimKeys places one reference-based key per touched element into the
// machine's memory modules (elements are distributed round-robin, the way
// interleaved memory spreads an array), and builds the access protocol ops:
// poll until key >= ticket, access, increment.
type SimKeys struct {
	plan *Plan
	vars map[Elem]sim.VarID
}

// NewSimKeys declares the plan's keys on the machine.
func NewSimKeys(m *sim.Machine, p *Plan) *SimKeys {
	k := &SimKeys{plan: p, vars: make(map[Elem]sim.VarID, len(p.Order))}
	mods := m.Config().Modules
	for i, e := range p.Order {
		k.vars[e] = m.NewMemVar("key:"+e.String(), i%mods, 0)
	}
	return k
}

// Keys returns the number of keys declared.
func (k *SimKeys) Keys() int { return len(k.vars) }

// WaitOp polls the element's key until the access's ticket is reached.
func (k *SimKeys) WaitOp(a *Access) sim.Op {
	return k.WaitTicketOp(a.Elem, a.Ticket)
}

// WaitTicketOp polls the element's key until the given ticket is reached.
// Code generators that execute a whole statement as one atomic compute wait
// on the minimum ticket among the statement's accesses to the element (its
// accesses are consecutive in the element's serial order, so the later
// tickets differ only by the statement's own increments).
func (k *SimKeys) WaitTicketOp(e Elem, ticket int64) sim.Op {
	b := make([]byte, 0, len(e.Array)+32)
	b = append(b, "key:wait "...)
	b = appendElem(b, e)
	b = append(b, ">="...)
	b = strconv.AppendInt(b, ticket, 10)
	return sim.WaitGE(k.vars[e], ticket, string(b))
}

// IncOp increments the element's key after the access completes. The access
// executes only once the key has reached its ticket, so the post-increment
// value is statically a.Ticket+1 — stamped for the static verifier.
func (k *SimKeys) IncOp(a *Access) sim.Op {
	return sim.RMWPost(k.vars[a.Elem], func(x int64) int64 { return x + 1 },
		a.Ticket+1, string(appendElem(append(make([]byte, 0, len(a.Elem.Array)+20), "key:inc "...), a.Elem)))
}

// SimBits places the instance-based full/empty bits: one per consumable
// copy of each written version. Reads of initial data (epoch 0) have no
// bit and need no synchronization.
type SimBits struct {
	plan *Plan
	vars map[bitKey]sim.VarID
}

type bitKey struct {
	e       Elem
	version int64
	copyIdx int
}

// NewSimBits declares the plan's full/empty bits on the machine.
func NewSimBits(m *sim.Machine, p *Plan) *SimBits {
	b := &SimBits{plan: p, vars: make(map[bitKey]sim.VarID)}
	mods := m.Config().Modules
	i := 0
	for _, e := range p.Order {
		for _, a := range p.Elems[e] {
			if a.Kind != deps.Write {
				continue
			}
			copies := a.Readers
			if copies == 0 {
				copies = 1
			}
			for c := 0; c < copies; c++ {
				key := bitKey{e, a.Epoch + 1, c}
				b.vars[key] = m.NewMemVar(
					feTag("fe:", e, a.Epoch+1, c), i%mods, 0)
				i++
			}
		}
	}
	return b
}

// Bits returns the number of full/empty bits declared.
func (b *SimBits) Bits() int { return len(b.vars) }

// FillOps returns the writes that store a write access's copies and set
// their bits full — one memory write per copy, per the paper's
// "write N copies of data; set all keys to full".
func (b *SimBits) FillOps(a *Access) []sim.Op {
	if a.Kind != deps.Write {
		panic("dataorient: FillOps on a read access")
	}
	copies := a.Readers
	if copies == 0 {
		copies = 1
	}
	ops := make([]sim.Op, 0, copies)
	for c := 0; c < copies; c++ {
		v := b.vars[bitKey{a.Elem, a.Epoch + 1, c}]
		ops = append(ops, sim.WriteVar(v, 1, feTag("fe:fill ", a.Elem, a.Epoch+1, c)))
	}
	return ops
}

// ConsumeOp returns the poll that waits for the reader's own copy to be
// full. Reads of initial data need no wait and get a free no-op.
func (b *SimBits) ConsumeOp(a *Access) sim.Op {
	if a.Kind != deps.Read {
		panic("dataorient: ConsumeOp on a write access")
	}
	if a.Epoch == 0 {
		return sim.Compute(0, nil, "fe:init-data")
	}
	v := b.vars[bitKey{a.Elem, a.Epoch, a.CopyIdx}]
	return sim.WaitGE(v, 1, feTag("fe:consume ", a.Elem, a.Epoch, a.CopyIdx))
}

// VersionStore holds the renamed (single-assignment) storage of an
// instance-based execution: version 0 is the pre-loop value, version v the
// value stored by the element's v-th write.
type VersionStore struct {
	init func(Elem) int64
	m    map[Elem][]int64
}

// NewVersionStore builds a store over the given initial-value function.
func NewVersionStore(init func(Elem) int64) *VersionStore {
	return &VersionStore{init: init, m: make(map[Elem][]int64)}
}

// Get reads version epoch of element e.
func (s *VersionStore) Get(e Elem, epoch int64) int64 {
	if epoch == 0 {
		return s.init(e)
	}
	return s.m[e][epoch-1]
}

// Set stores version v (>= 1) of element e.
func (s *VersionStore) Set(e Elem, v int64, val int64) {
	if v < 1 {
		panic("dataorient: version must be >= 1")
	}
	vs := s.m[e]
	for int64(len(vs)) < v {
		vs = append(vs, 0)
	}
	vs[v-1] = val
	s.m[e] = vs
}

// Last returns the element's final value (last version, or the initial
// value if never written) — used to reconstruct the array after a renamed
// execution for comparison against serial in-place execution.
func (s *VersionStore) Last(e Elem) (int64, bool) {
	vs, ok := s.m[e]
	if !ok || len(vs) == 0 {
		return 0, false
	}
	return vs[len(vs)-1], true
}

// RuntimeKeys is the goroutine implementation of reference-based keys.
type RuntimeKeys struct {
	plan *Plan
	keys map[Elem]*atomic.Int64
}

// NewRuntimeKeys allocates one atomic key per planned element.
func NewRuntimeKeys(p *Plan) *RuntimeKeys {
	rk := &RuntimeKeys{plan: p, keys: make(map[Elem]*atomic.Int64, len(p.Order))}
	for _, e := range p.Order {
		rk.keys[e] = new(atomic.Int64)
	}
	return rk
}

// Acquire spins until the access's ticket is reached.
func (rk *RuntimeKeys) Acquire(a *Access) {
	k := rk.keys[a.Elem]
	for k.Load() < a.Ticket {
		runtime.Gosched()
	}
}

// Release increments the element's key after the access.
func (rk *RuntimeKeys) Release(a *Access) {
	rk.keys[a.Elem].Add(1)
}

// Key returns the current key value of an element (for tests).
func (rk *RuntimeKeys) Key(e Elem) int64 { return rk.keys[e].Load() }
