package dataorient

import (
	"sync"
	"testing"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
	"github.com/csrd-repro/datasync/internal/loop"
)

// fig21Nest is the loop of Fig 2.1 over I=1..n.
func fig21Nest(n int64) *loop.Nest {
	ref := func(c int64) deps.Ref {
		return deps.Ref{Array: "A", Index: []expr.Affine{expr.Index(1, 0, c)}}
	}
	return loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: n}},
		[]loop.Node{
			loop.S(&deps.Stmt{Name: "S1", Writes: []deps.Ref{ref(3)}, Cost: 1}),
			loop.S(&deps.Stmt{Name: "S2", Reads: []deps.Ref{ref(1)}, Cost: 1}),
			loop.S(&deps.Stmt{Name: "S3", Reads: []deps.Ref{ref(2)}, Cost: 1}),
			loop.S(&deps.Stmt{Name: "S4", Writes: []deps.Ref{ref(0)}, Cost: 1}),
			loop.S(&deps.Stmt{Name: "S5", Reads: []deps.Ref{ref(-1)}, Cost: 1}),
		},
	)
}

func elem(c int64) Elem { return Elem{Array: "A", Dims: 1, C: [3]int64{c, 0, 0}} }

// TestFig31aTickets reproduces Fig 3.1a: accesses to the element A[i+3]
// (for an interior i) get tickets 0 (S1 write), 1 and 1 (S3, S2 reads),
// 3 (S4 write), 4 (S5 read).
func TestFig31aTickets(t *testing.T) {
	const n = 20
	p := BuildPlan(fig21Nest(n))
	// Element A[10] (= i+3 for i=7): accessed by S1@7, S3@8, S2@9, S4@10, S5@11.
	seq := p.Elems[elem(10)]
	if len(seq) != 5 {
		t.Fatalf("A[10] has %d accesses, want 5", len(seq))
	}
	type want struct {
		lpid    int64
		stmtPos int
		kind    deps.Access
		ticket  int64
	}
	wants := []want{
		{7, 0, deps.Write, 0},  // S1
		{8, 2, deps.Read, 1},   // S3 reads A[I+2] at I=8
		{9, 1, deps.Read, 1},   // S2 reads A[I+1] at I=9
		{10, 3, deps.Write, 3}, // S4
		{11, 4, deps.Read, 4},  // S5 reads A[I-1] at I=11
	}
	for i, w := range wants {
		a := seq[i]
		if a.ID.Lpid != w.lpid || a.ID.StmtPos != w.stmtPos || a.Kind != w.kind || a.Ticket != w.ticket {
			t.Errorf("access %d = lpid=%d pos=%d %v ticket=%d, want %+v",
				i, a.ID.Lpid, a.ID.StmtPos, a.Kind, a.Ticket, w)
		}
	}
	if got := p.FinalKey(elem(10)); got != 5 {
		t.Errorf("final key = %d, want 5", got)
	}
}

// TestBoundaryElementsDifferentCounts shows the boundary problem the paper
// raises for data-oriented schemes: border elements have fewer accesses.
func TestBoundaryElementsDifferentCounts(t *testing.T) {
	const n = 20
	p := BuildPlan(fig21Nest(n))
	// A[0] is only read by S5@1: one access, ticket 0 (initial data).
	seq := p.Elems[elem(0)]
	if len(seq) != 1 || seq[0].Kind != deps.Read || seq[0].Ticket != 0 {
		t.Errorf("A[0] plan wrong: %+v", seq)
	}
	// A[4] = 1+3: written by S1@1, read by S3@2, S2@3, written by S4@4, read by S5@5.
	if got := p.FinalKey(elem(4)); got != 5 {
		t.Errorf("A[4] accesses = %d, want 5", got)
	}
	// A[N+3] is only written by S1@N.
	if got := p.FinalKey(elem(n + 3)); got != 1 {
		t.Errorf("A[N+3] accesses = %d, want 1", got)
	}
}

// TestEpochsAndCopies checks the instance-based renaming plan: each write
// opens a new version; readers between writes consume distinct copies.
func TestEpochsAndCopies(t *testing.T) {
	p := BuildPlan(fig21Nest(20))
	seq := p.Elems[elem(10)]
	s1, s3, s2, s4, s5 := seq[0], seq[1], seq[2], seq[3], seq[4]
	if s1.Epoch != 0 || s1.Readers != 2 {
		t.Errorf("S1 write: epoch=%d readers=%d, want 0,2", s1.Epoch, s1.Readers)
	}
	if s3.Epoch != 1 || s2.Epoch != 1 {
		t.Errorf("reads of version 1: epochs %d,%d", s3.Epoch, s2.Epoch)
	}
	if s3.CopyIdx == s2.CopyIdx {
		t.Error("two readers share a copy")
	}
	if s4.Epoch != 1 || s4.Readers != 1 {
		t.Errorf("S4 write: epoch=%d readers=%d, want 1,1", s4.Epoch, s4.Readers)
	}
	if s5.Epoch != 2 || s5.CopyIdx != 0 {
		t.Errorf("S5 read: epoch=%d copy=%d, want 2,0", s5.Epoch, s5.CopyIdx)
	}
}

func TestFootprint(t *testing.T) {
	const n = 20
	p := BuildPlan(fig21Nest(n))
	f := p.Footprint()
	// Touched elements: A[0..N+3] minus A[1+1=...]: S1 writes 4..N+3, S2
	// reads 2..N+1, S3 reads 3..N+2, S4 writes 1..N, S5 reads 0..N-1.
	// Union: 0..N+3 = N+4 elements.
	if f.Keys != n+4 {
		t.Errorf("Keys = %d, want %d", f.Keys, n+4)
	}
	if f.InitOps != f.Keys {
		t.Errorf("InitOps = %d, want %d", f.InitOps, f.Keys)
	}
	// Versions: one per write instance = 2N (S1 and S4 each write once per
	// iteration).
	if f.Versions != 2*n {
		t.Errorf("Versions = %d, want %d", f.Versions, 2*n)
	}
	if f.Copies < f.Versions {
		t.Errorf("Copies = %d < Versions = %d", f.Copies, f.Versions)
	}
	if f.Bits != f.Copies {
		t.Errorf("Bits = %d, want %d", f.Bits, f.Copies)
	}
}

// TestTicketOrderSound: replaying each element's accesses in any order
// consistent with tickets (writes exclusive, equal-ticket reads unordered)
// must equal serial order up to read permutations. Here we verify the
// structural invariants tickets must satisfy.
func TestTicketOrderSound(t *testing.T) {
	p := BuildPlan(fig21Nest(50))
	for _, e := range p.Order {
		seq := p.Elems[e]
		var count int64
		for i, a := range seq {
			switch a.Kind {
			case deps.Write:
				// A write's ticket equals the number of prior accesses:
				// it waits for all of them.
				if a.Ticket != count {
					t.Fatalf("%s access %d: write ticket %d, want %d", e, i, a.Ticket, count)
				}
			case deps.Read:
				// A read's ticket admits it after the preceding write
				// committed but concurrently with sibling reads.
				if a.Ticket > count {
					t.Fatalf("%s access %d: read ticket %d unreachable (count %d)", e, i, a.Ticket, count)
				}
			}
			count++
		}
	}
}

func TestVersionStore(t *testing.T) {
	s := NewVersionStore(func(e Elem) int64 { return 100 + e.C[0] })
	e := elem(3)
	if got := s.Get(e, 0); got != 103 {
		t.Errorf("initial = %d, want 103", got)
	}
	s.Set(e, 2, 55) // sparse store grows
	s.Set(e, 1, 44)
	if s.Get(e, 1) != 44 || s.Get(e, 2) != 55 {
		t.Error("version values wrong")
	}
	if v, ok := s.Last(e); !ok || v != 55 {
		t.Errorf("Last = %d,%v, want 55,true", v, ok)
	}
	if _, ok := s.Last(elem(9)); ok {
		t.Error("Last of never-written element should be false")
	}
}

// TestRuntimeKeysEnforceOrder drives the ref-based runtime protocol with
// goroutines on the Fig 2.1 loop and checks serial equivalence.
func TestRuntimeKeysEnforceOrder(t *testing.T) {
	const n = 120
	nest := fig21Nest(n)
	p := BuildPlan(nest)
	rk := NewRuntimeKeys(p)
	a := make([]int64, n+4+1) // A[0..N+3], slot i holds A[i]
	out := make([]int64, n+1)
	var wg sync.WaitGroup
	work := make(chan int64, n)
	for i := int64(1); i <= n; i++ {
		work <- i
	}
	close(work)
	get := func(id AccessID) *Access { return p.ByID[id] }
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// S1: A[I+3] = 10*i+3
				ac := get(AccessID{i, 0, 0})
				rk.Acquire(ac)
				a[i+3] = 10*i + 3
				rk.Release(ac)
				// S2: t2 = A[I+1]
				ac = get(AccessID{i, 1, 0})
				rk.Acquire(ac)
				t2 := a[i+1]
				rk.Release(ac)
				// S3: t3 = A[I+2]
				ac = get(AccessID{i, 2, 0})
				rk.Acquire(ac)
				t3 := a[i+2]
				rk.Release(ac)
				// S4: A[I] = t2 + t3
				ac = get(AccessID{i, 3, 0})
				rk.Acquire(ac)
				a[i] = t2 + t3
				rk.Release(ac)
				// S5: out[i] = A[I-1]
				ac = get(AccessID{i, 4, 0})
				rk.Acquire(ac)
				out[i] = a[i-1]
				rk.Release(ac)
			}
		}()
	}
	wg.Wait()
	// Serial oracle.
	wa := make([]int64, n+4+1)
	wout := make([]int64, n+1)
	for i := int64(1); i <= n; i++ {
		wa[i+3] = 10*i + 3
		t2, t3 := wa[i+1], wa[i+2]
		wa[i] = t2 + t3
		wout[i] = wa[i-1]
	}
	for i := range wa {
		if a[i] != wa[i] {
			t.Fatalf("A[%d] = %d, want %d", i, a[i], wa[i])
		}
	}
	for i := range wout {
		if out[i] != wout[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], wout[i])
		}
	}
	// Keys ended at their access counts.
	if rk.Key(elem(10)) != 5 {
		t.Errorf("final key A[10] = %d, want 5", rk.Key(elem(10)))
	}
}
