// Package dataorient implements the data-oriented synchronization schemes
// of section 3.1: one synchronization variable (key) per datum.
//
// Reference-based scheme (Cedar keys, Fig 3.1a): each array element carries
// a counter key; every access holds a statically assigned ticket, spins
// until key >= ticket, performs the access, and increments the key.
// Consecutive reads between two writes share a ticket and may proceed in
// any order.
//
// Instance-based scheme (HEP full/empty bits, Fig 3.1b): compile-time
// renaming gives every updated value a fresh location and full/empty bit,
// eliminating anti- and output dependences; a write stores one consumable
// copy per reader ("write N copies of data; set all keys to full"), and
// each reader waits on and consumes its own copy. Reads of initial data
// have no producer and need no synchronization.
//
// Both schemes require whole-iteration-space planning: the number of
// accesses per element is fixed per loop, differs at the iteration-space
// boundaries, and cannot be made uniform by linearization — which is the
// boundary-overhead argument of Example 2. Plan performs that planning; it
// is the compile-time work a data-oriented compiler must do.
package dataorient

import (
	"sort"
	"strconv"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/loop"
)

// Elem identifies one array element (up to 3 subscript dimensions).
type Elem struct {
	Array string
	Dims  int
	C     [3]int64
}

// appendElem renders e into b ("A[i,j]"). Element names appear in every op
// tag the data-oriented code generators build, which puts this on the sweep
// hot path — hence the append form rather than fmt.
func appendElem(b []byte, e Elem) []byte {
	b = append(b, e.Array...)
	b = append(b, '[')
	for d := 0; d < e.Dims; d++ {
		if d > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, e.C[d], 10)
	}
	return append(b, ']')
}

func (e Elem) String() string {
	return string(appendElem(make([]byte, 0, len(e.Array)+8), e))
}

// AccessID locates one reference instance: iteration (lpid), statement
// position in the flattened body, and the reference slot within the
// statement (writes first, then reads, each in declaration order).
type AccessID struct {
	Lpid    int64
	StmtPos int
	RefSlot int
}

// Access is one planned, synchronized array access.
type Access struct {
	ID   AccessID
	Elem Elem
	Kind deps.Access

	// Ticket is the reference-based order number (Fig 3.1a).
	Ticket int64

	// Epoch is the element's version this access touches: reads read
	// version Epoch (0 = initial data), a write creates version Epoch+1.
	Epoch int64
	// CopyIdx is, for reads, which consumable copy of the version this
	// reader takes; for writes, unused.
	CopyIdx int
	// Readers is, for writes, how many copies the instance-based scheme
	// stores; for reads, unused.
	Readers int
}

// Plan is the compile-time synchronization plan of one loop nest under the
// data-oriented schemes.
type Plan struct {
	Nest *loop.Nest
	// Elems lists every touched element's accesses in serial execution
	// order; Order lists elements deterministically.
	Elems map[Elem][]*Access
	Order []Elem
	// ByID resolves an access from its location, for code generation.
	ByID map[AccessID]*Access

	// arena chunk-allocates Access records: plan building touches every
	// reference of the whole iteration space, and one heap object per
	// access dominates BuildPlan's cost at sweep scale.
	arena []Access
}

func (p *Plan) newAccess(id AccessID, e Elem, kind deps.Access) *Access {
	if len(p.arena) == 0 {
		p.arena = make([]Access, 512)
	}
	a := &p.arena[0]
	p.arena = p.arena[1:]
	a.ID, a.Elem, a.Kind = id, e, kind
	return a
}

// BuildPlan enumerates the whole iteration space and assigns tickets,
// epochs and copies.
func BuildPlan(n *loop.Nest) *Plan {
	stmts := n.Stmts()
	pos := make(map[*deps.Stmt]int, len(stmts))
	refs := 0
	for i, s := range stmts {
		pos[s] = i
		refs += len(s.Reads) + len(s.Writes)
	}
	total := n.Iterations()
	// Presize for the branchless case (every statement every iteration);
	// branchy nests simply overshoot a little.
	est := int(total) * refs
	p := &Plan{Nest: n, Elems: make(map[Elem][]*Access), ByID: make(map[AccessID]*Access, est)}
	for lpid := int64(1); lpid <= total; lpid++ {
		idx := n.IndexOf(lpid)
		for _, s := range n.FlatBody(idx) {
			sp := pos[s]
			// Execution order within a statement: the right-hand side's
			// reads happen before the left-hand side's write (so a
			// statement like A[I] = f(A[I]) reads the old value). RefSlot
			// numbering stays writes-first (0..W-1), reads after — it is
			// an identifier, not an order.
			for k, r := range s.Reads {
				p.record(AccessID{lpid, sp, len(s.Writes) + k}, r, deps.Read, idx)
			}
			for k, w := range s.Writes {
				p.record(AccessID{lpid, sp, k}, w, deps.Write, idx)
			}
		}
	}
	p.assign()
	return p
}

func (p *Plan) record(id AccessID, r deps.Ref, kind deps.Access, idx []int64) {
	if len(r.Index) > 3 {
		panic("dataorient: more than 3 subscript dimensions")
	}
	e := Elem{Array: r.Array, Dims: len(r.Index)}
	for d, ix := range r.Index {
		e.C[d] = ix.Eval(idx)
	}
	a := p.newAccess(id, e, kind)
	p.Elems[e] = append(p.Elems[e], a)
	p.ByID[id] = a
}

// assign computes tickets (Fig 3.1a) and version epochs per element. The
// per-element access lists are already in serial execution order because
// BuildPlan scans iterations and body positions in order.
func (p *Plan) assign() {
	for e, seq := range p.Elems {
		var count, lastWriteTicket, writes int64
		lastWriteTicket = -1
		var readersOfEpoch []*Access
		closeEpoch := func(w *Access) {
			if w != nil {
				w.Readers = len(readersOfEpoch)
			}
			readersOfEpoch = readersOfEpoch[:0]
		}
		var lastWrite *Access
		for _, a := range seq {
			switch a.Kind {
			case deps.Write:
				closeEpoch(lastWrite)
				a.Ticket = count
				a.Epoch = writes // creates version writes+1
				lastWrite = a
				lastWriteTicket = count
				writes++
			case deps.Read:
				a.Ticket = lastWriteTicket + 1
				a.Epoch = writes // reads the most recent version
				a.CopyIdx = len(readersOfEpoch)
				readersOfEpoch = append(readersOfEpoch, a)
			}
			count++
		}
		closeEpoch(lastWrite)
		_ = e
	}
	p.Order = make([]Elem, 0, len(p.Elems))
	for e := range p.Elems {
		p.Order = append(p.Order, e)
	}
	sort.Slice(p.Order, func(i, j int) bool { return lessElem(p.Order[i], p.Order[j]) })
}

func lessElem(a, b Elem) bool {
	if a.Array != b.Array {
		return a.Array < b.Array
	}
	if a.Dims != b.Dims {
		return a.Dims < b.Dims
	}
	for d := 0; d < a.Dims; d++ {
		if a.C[d] != b.C[d] {
			return a.C[d] < b.C[d]
		}
	}
	return false
}

// Footprint summarizes the storage and initialization cost of the plan,
// the paper's main complaint about data-oriented schemes.
type Footprint struct {
	// Keys is the number of reference-based keys (one per touched element)
	// and InitOps the writes needed to initialize them.
	Keys, InitOps int64
	// Versions is the number of renamed locations the instance-based
	// scheme allocates; Copies the total consumable data copies written
	// (>= Versions); Bits the full/empty bits.
	Versions, Copies, Bits int64
}

// Footprint computes the plan's storage accounting.
func (p *Plan) Footprint() Footprint {
	var f Footprint
	f.Keys = int64(len(p.Elems))
	f.InitOps = f.Keys
	for _, e := range p.Order {
		for _, a := range p.Elems[e] {
			if a.Kind == deps.Write {
				f.Versions++
				c := int64(a.Readers)
				if c == 0 {
					c = 1
				}
				f.Copies += c
				f.Bits += c
			}
		}
	}
	return f
}

// FinalKey returns the key value element e holds after the loop (its total
// access count) — what a data-oriented runtime must reset before reuse.
func (p *Plan) FinalKey(e Elem) int64 { return int64(len(p.Elems[e])) }
