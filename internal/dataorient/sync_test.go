package dataorient

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/sim"
)

// TestSimKeysProtocol drives the Fig 3.1a key protocol for one element on
// a simulated machine: a writer, two unordered readers, a second writer.
func TestSimKeysProtocol(t *testing.T) {
	const n = 20
	plan := BuildPlan(fig21Nest(n))
	m := sim.New(sim.Config{Processors: 4, MemLatency: 2, Modules: 4, SyncOpCost: 0})
	keys := NewSimKeys(m, plan)
	if keys.Keys() != len(plan.Order) {
		t.Fatalf("Keys = %d, want %d", keys.Keys(), len(plan.Order))
	}
	// The five accesses to A[10] (see plan_test), one per processor where
	// possible; run them in adversarial order (late accesses first in
	// program position, correctness ensured by the key protocol alone).
	seq := plan.Elems[elem(10)]
	if len(seq) != 5 {
		t.Fatalf("A[10] accesses = %d", len(seq))
	}
	var order []int
	record := func(i int) sim.Op {
		return sim.Compute(1, func() { order = append(order, i) }, "access")
	}
	// Processor programs: p0 gets the two writes (in order), p1/p2 the
	// unordered readers, p3 the final read.
	progs := [][]sim.Op{
		{keys.WaitOp(seq[0]), record(0), keys.IncOp(seq[0]),
			keys.WaitOp(seq[3]), record(3), keys.IncOp(seq[3])},
		{keys.WaitOp(seq[1]), record(1), keys.IncOp(seq[1])},
		{keys.WaitOp(seq[2]), record(2), keys.IncOp(seq[2])},
		{keys.WaitOp(seq[4]), record(4), keys.IncOp(seq[4])},
	}
	if _, err := m.RunProcesses(progs); err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("executed %d accesses", len(order))
	}
	pos := make(map[int]int)
	for i, a := range order {
		pos[a] = i
	}
	// Write 0 first; reads 1,2 in any order before write 3; read 4 last.
	if pos[0] != 0 || pos[3] != 3 || pos[4] != 4 {
		t.Errorf("access order %v violates the ticket protocol", order)
	}
}

func TestSimKeysFinalValue(t *testing.T) {
	plan := BuildPlan(fig21Nest(10))
	m := sim.New(sim.Config{Processors: 1, MemLatency: 1, SyncOpCost: 0})
	keys := NewSimKeys(m, plan)
	seq := plan.Elems[elem(5)]
	var ops []sim.Op
	for _, a := range seq {
		ops = append(ops, keys.WaitOp(a), keys.IncOp(a))
	}
	if _, err := m.RunProcesses([][]sim.Op{ops}); err != nil {
		t.Fatal(err)
	}
	// The key ends at the total access count — what FinalKey predicts.
	want := plan.FinalKey(elem(5))
	if got := m.VarValue(keysVar(t, keys, elem(5))); got != want {
		t.Errorf("final key = %d, want %d", got, want)
	}
}

func keysVar(t *testing.T, k *SimKeys, e Elem) sim.VarID {
	t.Helper()
	v, ok := k.vars[e]
	if !ok {
		t.Fatalf("no key for %s", e)
	}
	return v
}

// TestSimBitsProtocol drives the instance-based full/empty protocol: the
// consumer waits for its copy; initial-data reads need no wait.
func TestSimBitsProtocol(t *testing.T) {
	plan := BuildPlan(fig21Nest(20))
	m := sim.New(sim.Config{Processors: 2, MemLatency: 2, Modules: 2, SyncOpCost: 0})
	bits := NewSimBits(m, plan)
	if bits.Bits() == 0 {
		t.Fatal("no bits declared")
	}
	seq := plan.Elems[elem(10)]
	write, read := seq[0], seq[1] // S1 write (2 copies), S3 read (copy 0 or 1)
	var consumedAt, filledAt int64 = -1, -1
	progs := [][]sim.Op{
		append([]sim.Op{sim.Compute(9, nil, "produce")},
			append(bits.FillOps(write), sim.Compute(1, func() { filledAt = 1 }, ""))...),
		{bits.ConsumeOp(read), sim.Compute(1, func() { consumedAt = 1 }, "consume")},
	}
	stats, err := m.RunProcesses(progs)
	if err != nil {
		t.Fatal(err)
	}
	if consumedAt != 1 || filledAt != 1 {
		t.Error("protocol did not complete")
	}
	// The consumer waited for the fill: at least the 9-cycle produce.
	if stats.Procs[1].WaitSync < 9 {
		t.Errorf("consumer WaitSync = %d, want >= 9", stats.Procs[1].WaitSync)
	}
	// FillOps wrote two copies (two module writes).
	if len(bits.FillOps(write)) != 2 {
		t.Errorf("FillOps = %d ops, want 2", len(bits.FillOps(write)))
	}
}

func TestConsumeInitialDataIsFree(t *testing.T) {
	plan := BuildPlan(fig21Nest(20))
	m := sim.New(sim.Config{Processors: 1})
	bits := NewSimBits(m, plan)
	// A[0] is read once (S5@1) from initial data: epoch 0, free no-op.
	a := plan.Elems[elem(0)][0]
	op := bits.ConsumeOp(a)
	if op.Kind != sim.OpCompute || op.Cycles != 0 {
		t.Errorf("ConsumeOp(initial) = %v, want free no-op", op)
	}
}

func TestSyncBuilderPanics(t *testing.T) {
	plan := BuildPlan(fig21Nest(10))
	m := sim.New(sim.Config{Processors: 1})
	bits := NewSimBits(m, plan)
	seq := plan.Elems[elem(5)]
	var w, r *Access
	for _, a := range seq {
		if a.Kind == deps.Write && w == nil {
			w = a
		}
		if a.Kind == deps.Read && r == nil {
			r = a
		}
	}
	for name, f := range map[string]func(){
		"FillOps(read)":    func() { bits.FillOps(r) },
		"ConsumeOp(write)": func() { bits.ConsumeOp(w) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestElemString(t *testing.T) {
	e := Elem{Array: "B", Dims: 2, C: [3]int64{3, -1, 0}}
	if s := e.String(); s != "B[3,-1]" {
		t.Errorf("String = %q", s)
	}
}
