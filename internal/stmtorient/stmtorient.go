// Package stmtorient implements the statement-oriented synchronization
// scheme of section 3.2 (Alliant FX/8 Advance/Await over a concurrency
// control bus): one statement counter (SC) per source statement, shared by
// all instances of that statement.
//
// Advance enforces a sequential order on the instances of one source
// statement: after process i executes source Sa it waits until SC[a]==i-1
// and then sets SC[a]=i, so SC[a]=i implies every process j<i has completed
// Sa. A sink checks Await(d, a): SC[a] >= i-d. This "horizontal" sharing is
// the scheme's weakness the paper contrasts with process counters: process
// i's advance waits on ALL earlier processes, so one delayed iteration
// stalls every later one (Example 1 / experiment E3), and a loop whose
// pipeline needs many sync points starves when physical SCs are few
// (experiment E6).
//
// Like the Alliant hardware, SCs here are synchronization registers
// broadcast on the bus (sim.Register) in the simulator, and atomic words at
// runtime. When more logical counters exist than physical SCs, logical
// counter c folds onto SC[c mod K]; the value discipline for shared SCs is
// the caller's contract via explicit sequence numbers.
package stmtorient

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"

	"github.com/csrd-repro/datasync/internal/sim"
)

// tagCSeq renders "<prefix><c><mid><seq>" — the Advance/Await tag shapes —
// without fmt; these are built per sync point per iteration on sweeps, and
// must stay byte-identical to the former fmt forms (they feed sync traces
// and cache canon).
func tagCSeq(prefix string, c int64, mid string, seq int64) string {
	b := make([]byte, 0, len(prefix)+len(mid)+40)
	b = append(b, prefix...)
	b = strconv.AppendInt(b, c, 10)
	b = append(b, mid...)
	b = strconv.AppendInt(b, seq, 10)
	return string(b)
}

// SimSCs is a folded set of K statement counters on a simulated machine.
// Counters start at 0; sequence numbers are 1-based (the paper initializes
// SC to k-1 when the first iteration is k; with 1-based iterations that is 0).
type SimSCs struct {
	K    int
	vars []sim.VarID
}

// NewSimSCs declares K statement counters on the machine.
func NewSimSCs(m *sim.Machine, k int) *SimSCs {
	if k < 1 {
		panic("stmtorient: need at least one SC")
	}
	s := &SimSCs{K: k, vars: make([]sim.VarID, k)}
	for i := 0; i < k; i++ {
		s.vars[i] = m.NewRegVar(fmt.Sprintf("SC[%d]", i), 0)
	}
	return s
}

// Var returns the physical register backing logical counter c.
func (s *SimSCs) Var(c int64) sim.VarID { return s.vars[int(c)%s.K] }

// AdvanceOps is Advance on logical counter c with the given 1-based
// sequence number: wait until the previous advance committed (SC >= seq-1;
// values never skip, so >= equals ==), then publish seq.
func (s *SimSCs) AdvanceOps(c, seq int64) []sim.Op {
	v := s.Var(c)
	return []sim.Op{
		sim.WaitGE(v, seq-1, tagCSeq("advance:wait c=", c, " seq=", seq)),
		sim.WriteVar(v, seq, tagCSeq("advance:set c=", c, " seq=", seq)),
	}
}

// AwaitOp is Await: wait until logical counter c has reached minSeq.
// Non-positive minSeq needs no wait and yields a free no-op compute.
func (s *SimSCs) AwaitOp(c, minSeq int64) sim.Op {
	if minSeq <= 0 {
		return sim.Compute(0, nil, "await:noop")
	}
	return sim.WaitGE(s.Var(c), minSeq, tagCSeq("await c=", c, " seq>=", minSeq))
}

// SCSet is the runtime (goroutine) statement-counter set.
type SCSet struct {
	k   int
	scs []atomic.Int64
}

// NewSCSet builds K runtime statement counters initialized to 0.
func NewSCSet(k int) *SCSet {
	if k < 1 {
		panic("stmtorient: need at least one SC")
	}
	return &SCSet{k: k, scs: make([]atomic.Int64, k)}
}

// K returns the number of physical counters.
func (s *SCSet) K() int { return s.k }

// Load returns the current value of the physical counter backing c.
func (s *SCSet) Load(c int64) int64 { return s.scs[int(c)%s.k].Load() }

// Advance publishes sequence number seq on logical counter c after its
// predecessor (seq-1) has been published.
func (s *SCSet) Advance(c, seq int64) {
	v := &s.scs[int(c)%s.k]
	for v.Load() < seq-1 {
		runtime.Gosched()
	}
	v.Store(seq)
}

// Await spins until logical counter c reaches minSeq (immediately true for
// non-positive minSeq).
func (s *SCSet) Await(c, minSeq int64) {
	if minSeq <= 0 {
		return
	}
	v := &s.scs[int(c)%s.k]
	for v.Load() < minSeq {
		runtime.Gosched()
	}
}
