package stmtorient

import (
	"sync"
	"testing"

	"github.com/csrd-repro/datasync/internal/sim"
)

func TestSimAdvanceAwaitFig32(t *testing.T) {
	// Two iterations of a single source statement (counter 0), Fig 3.2
	// protocol: process 2's sink awaits SC >= 2-1 before consuming.
	m := sim.New(sim.Config{Processors: 2, SyncOpCost: 0})
	scs := NewSimSCs(m, 1)
	a := m.Mem().Array("A", 0, 2)
	var got int64 = -1
	prog1 := append([]sim.Op{sim.Compute(5, func() { a.Set(1, 7) }, "S1@1")}, scs.AdvanceOps(0, 1)...)
	prog2 := []sim.Op{
		scs.AwaitOp(0, 1), // Await(1): source at distance 1
		sim.Compute(1, func() { got = a.Get(1) }, "S2@2"),
	}
	if _, err := m.RunProcesses([][]sim.Op{prog1, prog2}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("sink read %d, want 7", got)
	}
	if m.VarValue(scs.Var(0)) != 1 {
		t.Errorf("SC = %d, want 1", m.VarValue(scs.Var(0)))
	}
}

func TestSimAdvanceSerializesInstances(t *testing.T) {
	// The scheme's weakness: advances of the same statement are strictly
	// ordered. Process B, though independent, advances only after A.
	m := sim.New(sim.Config{Processors: 2, SyncOpCost: 0})
	scs := NewSimSCs(m, 1)
	slow := append([]sim.Op{sim.Compute(100, nil, "slow")}, scs.AdvanceOps(0, 1)...)
	fast := append([]sim.Op{sim.Compute(1, nil, "fast")}, scs.AdvanceOps(0, 2)...)
	stats, err := m.RunProcesses([][]sim.Op{slow, fast})
	if err != nil {
		t.Fatal(err)
	}
	// The fast process waits ~99 cycles for the slow one's advance.
	if stats.Procs[1].WaitSync < 90 {
		t.Errorf("fast process WaitSync = %d, want ~99 (serialized advance)", stats.Procs[1].WaitSync)
	}
}

func TestAwaitNoopForNonPositiveSeq(t *testing.T) {
	m := sim.New(sim.Config{Processors: 1})
	scs := NewSimSCs(m, 2)
	op := scs.AwaitOp(1, 0)
	if op.Kind != sim.OpCompute || op.Cycles != 0 {
		t.Errorf("AwaitOp(.,0) = %v, want free no-op", op)
	}
	if _, err := m.RunProcesses([][]sim.Op{{op}}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldingSharesPhysicalCounters(t *testing.T) {
	m := sim.New(sim.Config{Processors: 1})
	scs := NewSimSCs(m, 3)
	if scs.Var(0) != scs.Var(3) || scs.Var(1) != scs.Var(4) {
		t.Error("logical counters 0/3 and 1/4 should share physical SCs")
	}
	if scs.Var(0) == scs.Var(1) {
		t.Error("logical counters 0 and 1 should not share")
	}
}

func TestSCSetRuntimeChain(t *testing.T) {
	// Runtime Advance/Await on a distance-2 recurrence with one source
	// statement, 4 workers.
	const n = 200
	s := NewSCSet(1)
	a := make([]int64, n+1)
	work := make(chan int64, n)
	for i := int64(1); i <= n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s.Await(0, i-2) // await source instance i-2
				if i <= 2 {
					a[i] = i
				} else {
					a[i] = a[i-2] + 2
				}
				s.Advance(0, i)
			}
		}()
	}
	wg.Wait()
	for i := int64(1); i <= n; i++ {
		if a[i] != i {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], i)
		}
	}
	if s.Load(0) != n {
		t.Errorf("final SC = %d, want %d", s.Load(0), n)
	}
}

func TestSCSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSCSet(0) did not panic")
		}
	}()
	NewSCSet(0)
}

func TestSimSCsValidation(t *testing.T) {
	m := sim.New(sim.Config{Processors: 1})
	defer func() {
		if recover() == nil {
			t.Error("NewSimSCs(m, 0) did not panic")
		}
	}()
	NewSimSCs(m, 0)
}
