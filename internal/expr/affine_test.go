package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstAndIndex(t *testing.T) {
	c := Const(2, 7)
	if got := c.Eval([]int64{3, 4}); got != 7 {
		t.Errorf("Const eval = %d, want 7", got)
	}
	if !c.IsConst() {
		t.Error("Const should be IsConst")
	}
	ix := Index(2, 1, -1) // J-1
	if got := ix.Eval([]int64{10, 20}); got != 19 {
		t.Errorf("Index eval = %d, want 19", got)
	}
	if ix.IsConst() {
		t.Error("Index should not be IsConst")
	}
}

func TestScaled(t *testing.T) {
	s := Scaled(1, 0, 2, -1) // 2*I-1
	if got := s.Eval([]int64{5}); got != 9 {
		t.Errorf("Scaled eval = %d, want 9", got)
	}
}

func TestAddSub(t *testing.T) {
	a := Index(2, 0, 3) // I+3
	b := Index(2, 0, 1) // I+1
	d := a.Sub(b)       // 2
	if !d.IsConst() || d.Const != 2 {
		t.Errorf("Sub = %v, want constant 2", d)
	}
	sum := a.Add(b) // 2*I+4
	if got := sum.Eval([]int64{1, 0}); got != 6 {
		t.Errorf("Add eval = %d, want 6", got)
	}
}

func TestAddConst(t *testing.T) {
	a := Index(1, 0, 0)
	b := a.AddConst(5)
	if got := b.Eval([]int64{2}); got != 7 {
		t.Errorf("AddConst eval = %d, want 7", got)
	}
	// Original unchanged.
	if got := a.Eval([]int64{2}); got != 2 {
		t.Errorf("AddConst mutated receiver: eval = %d, want 2", got)
	}
}

func TestEqual(t *testing.T) {
	a := Index(2, 0, 3)
	b := Index(2, 0, 3)
	c := Index(2, 1, 3)
	if !a.Equal(b) {
		t.Error("identical expressions not Equal")
	}
	if a.Equal(c) {
		t.Error("different variables reported Equal")
	}
	if a.Equal(Index(1, 0, 3)) {
		t.Error("different arities reported Equal")
	}
}

func TestSoleVar(t *testing.T) {
	a := Scaled(3, 1, 4, 2)
	k, coef, ok := a.SoleVar()
	if !ok || k != 1 || coef != 4 {
		t.Errorf("SoleVar = (%d,%d,%v), want (1,4,true)", k, coef, ok)
	}
	if _, _, ok := Const(3, 5).SoleVar(); ok {
		t.Error("SoleVar of constant should be false")
	}
	two := Index(2, 0, 0).Add(Index(2, 1, 0))
	if _, _, ok := two.SoleVar(); ok {
		t.Error("SoleVar of two-variable expression should be false")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{Index(1, 0, 3), "I+3"},
		{Index(1, 0, -1), "I-1"},
		{Index(1, 0, 0), "I"},
		{Const(1, 4), "4"},
		{Const(1, 0), "0"},
		{Scaled(1, 0, 2, 0), "2*I"},
		{Scaled(1, 0, -1, 5), "-I+5"},
		{Scaled(2, 1, -3, -2), "-3*J-2"},
		{Index(2, 0, 0).Add(Index(2, 1, 1)), "I+J+1"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestEvalPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval with wrong arity did not panic")
		}
	}()
	Index(2, 0, 0).Eval([]int64{1})
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 8, 4}, {8, 12, 4}, {-12, 8, 4}, {12, -8, 4},
		{0, 5, 5}, {5, 0, 5}, {0, 0, 0}, {7, 13, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: (a+b) - b == a pointwise at random evaluation points.
func TestAddSubRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(c0a, c1a, ka, c0b, c1b, kb int8) bool {
		a := Affine{Coef: []int64{int64(c0a), int64(c1a)}, Const: int64(ka)}
		b := Affine{Coef: []int64{int64(c0b), int64(c1b)}, Const: int64(kb)}
		r := a.Add(b).Sub(b)
		if !r.Equal(a) {
			return false
		}
		idx := []int64{rng.Int63n(100), rng.Int63n(100)}
		return r.Eval(idx) == a.Eval(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eval distributes over Add.
func TestEvalLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(c0a, c1a, ka, c0b, c1b, kb int8) bool {
		a := Affine{Coef: []int64{int64(c0a), int64(c1a)}, Const: int64(ka)}
		b := Affine{Coef: []int64{int64(c0b), int64(c1b)}, Const: int64(kb)}
		idx := []int64{rng.Int63n(50) - 25, rng.Int63n(50) - 25}
		return a.Add(b).Eval(idx) == a.Eval(idx)+b.Eval(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GCD divides both arguments and any common divisor divides it.
func TestGCDProperty(t *testing.T) {
	f := func(a, b int16) bool {
		g := GCD(int64(a), int64(b))
		if a == 0 && b == 0 {
			return g == 0
		}
		if g <= 0 {
			return false
		}
		return int64(a)%g == 0 && int64(b)%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
