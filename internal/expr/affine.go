// Package expr provides affine expressions over loop index variables.
//
// The dependence analysis in this repository (package deps) handles exactly
// the class of subscripts the paper treats: affine expressions with constant
// coefficients, e.g. A[I+3], A[2*I-1], A[I, J-1]. An Affine value represents
//
//	c0 + c1*x1 + c2*x2 + ... + cn*xn
//
// where x1..xn are the index variables of the enclosing loop nest, outermost
// first.
package expr

import (
	"fmt"
	"strings"
)

// Affine is an affine expression over a loop nest's index variables.
// Coef[k] multiplies the k-th index variable (outermost first); Const is the
// additive constant. The zero value is the constant 0 over no variables.
type Affine struct {
	Coef  []int64
	Const int64
}

// Const returns the constant expression c over n index variables.
func Const(n int, c int64) Affine {
	return Affine{Coef: make([]int64, n), Const: c}
}

// Index returns the expression x_k + c over n index variables (k is
// zero-based, outermost first).
func Index(n, k int, c int64) Affine {
	a := Const(n, c)
	a.Coef[k] = 1
	return a
}

// Scaled returns the expression m*x_k + c over n index variables.
func Scaled(n, k int, m, c int64) Affine {
	a := Const(n, c)
	a.Coef[k] = m
	return a
}

// Arity reports the number of index variables the expression ranges over.
func (a Affine) Arity() int { return len(a.Coef) }

// Eval evaluates the expression at the given index vector. It panics if the
// vector length does not match the expression's arity; mixing expressions
// from different nests is a programming error, not an input error.
func (a Affine) Eval(idx []int64) int64 {
	if len(idx) != len(a.Coef) {
		panic(fmt.Sprintf("expr: Eval with %d indices on arity-%d expression", len(idx), len(a.Coef)))
	}
	v := a.Const
	for k, c := range a.Coef {
		v += c * idx[k]
	}
	return v
}

// Add returns a+b. Both must have the same arity.
func (a Affine) Add(b Affine) Affine {
	checkArity(a, b)
	out := Affine{Coef: make([]int64, len(a.Coef)), Const: a.Const + b.Const}
	for k := range a.Coef {
		out.Coef[k] = a.Coef[k] + b.Coef[k]
	}
	return out
}

// Sub returns a-b. Both must have the same arity.
func (a Affine) Sub(b Affine) Affine {
	checkArity(a, b)
	out := Affine{Coef: make([]int64, len(a.Coef)), Const: a.Const - b.Const}
	for k := range a.Coef {
		out.Coef[k] = a.Coef[k] - b.Coef[k]
	}
	return out
}

// AddConst returns the expression shifted by c.
func (a Affine) AddConst(c int64) Affine {
	out := a.clone()
	out.Const += c
	return out
}

// Equal reports whether a and b denote the same expression.
func (a Affine) Equal(b Affine) bool {
	if len(a.Coef) != len(b.Coef) || a.Const != b.Const {
		return false
	}
	for k := range a.Coef {
		if a.Coef[k] != b.Coef[k] {
			return false
		}
	}
	return true
}

// IsConst reports whether the expression has no variable part.
func (a Affine) IsConst() bool {
	for _, c := range a.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// SoleVar returns (k, coef, true) if exactly one index variable appears,
// where k is its position and coef its coefficient. Otherwise ok is false.
func (a Affine) SoleVar() (k int, coef int64, ok bool) {
	k = -1
	for i, c := range a.Coef {
		if c == 0 {
			continue
		}
		if k >= 0 {
			return 0, 0, false
		}
		k, coef = i, c
	}
	if k < 0 {
		return 0, 0, false
	}
	return k, coef, true
}

func (a Affine) clone() Affine {
	out := Affine{Coef: make([]int64, len(a.Coef)), Const: a.Const}
	copy(out.Coef, a.Coef)
	return out
}

func checkArity(a, b Affine) {
	if len(a.Coef) != len(b.Coef) {
		panic(fmt.Sprintf("expr: arity mismatch %d vs %d", len(a.Coef), len(b.Coef)))
	}
}

// String renders the expression using the provided conventional index names
// I, J, K, ... for the first variables and x4, x5, ... beyond that.
func (a Affine) String() string {
	return a.Format(defaultNames(len(a.Coef)))
}

// Format renders the expression with the given variable names.
func (a Affine) Format(names []string) string {
	var b strings.Builder
	first := true
	for k, c := range a.Coef {
		if c == 0 {
			continue
		}
		name := "?"
		if k < len(names) {
			name = names[k]
		}
		switch {
		case first && c == 1:
			b.WriteString(name)
		case first && c == -1:
			b.WriteString("-" + name)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, name)
		case c == 1:
			b.WriteString("+" + name)
		case c == -1:
			b.WriteString("-" + name)
		case c > 0:
			fmt.Fprintf(&b, "+%d*%s", c, name)
		default:
			fmt.Fprintf(&b, "-%d*%s", -c, name)
		}
		first = false
	}
	if first {
		return fmt.Sprintf("%d", a.Const)
	}
	if a.Const > 0 {
		fmt.Fprintf(&b, "+%d", a.Const)
	} else if a.Const < 0 {
		fmt.Fprintf(&b, "%d", a.Const)
	}
	return b.String()
}

func defaultNames(n int) []string {
	base := []string{"I", "J", "K", "L"}
	names := make([]string, n)
	for i := range names {
		if i < len(base) {
			names[i] = base[i]
		} else {
			names[i] = fmt.Sprintf("x%d", i+1)
		}
	}
	return names
}

// GCD returns the greatest common divisor of a and b (non-negative; GCD(0,0)=0).
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
