package barrier

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/sim"
)

func TestStages(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for p, want := range cases {
		if got := Stages(p); got != want {
			t.Errorf("Stages(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestSimDisseminationAnyP(t *testing.T) {
	for _, p := range []int{2, 3, 5, 6, 8, 12} {
		p := p
		simBarrierHolds(t, p, 5, func(m *sim.Machine) func(int, int64) []sim.Op {
			b := NewSimDissemination(m, sim.Memory)
			if b.Vars() != p*Stages(p) {
				t.Errorf("P=%d Vars = %d, want %d", p, b.Vars(), p*Stages(p))
			}
			return b.Ops
		})
	}
}

func TestSimDisseminationRegister(t *testing.T) {
	simBarrierHolds(t, 5, 4, func(m *sim.Machine) func(int, int64) []sim.Op {
		return NewSimDissemination(m, sim.Register).Ops
	})
}

func TestSimPCDisseminationAnyP(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 8, 11} {
		p := p
		simBarrierHolds(t, p, 5, func(m *sim.Machine) func(int, int64) []sim.Op {
			b := NewSimPCDissemination(m)
			if b.Vars() != p {
				t.Errorf("P=%d Vars = %d, want %d", p, b.Vars(), p)
			}
			return b.Ops
		})
	}
}

func TestRuntimeDisseminationAnyP(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 10} {
		b := NewDissemination(p)
		runtimeBarrierHolds(t, p, 30, b.Await)
	}
}

// TestPCDisseminationNoModuleTraffic: register-resident PCs keep the
// barrier off the memory modules entirely.
func TestPCDisseminationNoModuleTraffic(t *testing.T) {
	stats := simBarrierHolds(t, 6, 4, func(m *sim.Machine) func(int, int64) []sim.Op {
		return NewSimPCDissemination(m).Ops
	})
	if stats.ModuleAccesses != 0 {
		t.Errorf("PC dissemination produced %d module accesses", stats.ModuleAccesses)
	}
}
