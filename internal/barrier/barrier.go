// Package barrier implements the three barrier algorithms Example 4 of the
// paper compares:
//
//   - the counter barrier: one shared counter incremented atomically on
//     arrival and polled until all P processors have arrived — the polling
//     converges on one memory module and creates the hot spot;
//   - the Brooks butterfly barrier [6]: log2(P) pairwise stages over a
//     P x log2(P) flag matrix, no atomic operations, no hot spot;
//   - the paper's process-counter butterfly (Fig 5.4): the same
//     communication pattern over just P process counters — one per
//     processor, set_PC(i) then spin on PC[pid xor 2^(i-1)].step >= i —
//     needing "fewer synchronization variables and operations" than [6].
//
// All three exist as simulator op builders (for the hot-spot measurements
// of experiment E9) and as runtime implementations over goroutines.
// Rounds are monotone, so none of the implementations needs sense reversal.
package barrier

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/spin"
)

// Log2 returns log2(p) for a power of two, panicking otherwise (the
// butterfly pattern requires it; the paper notes the extension to other P
// needs only minor modification).
func Log2(p int) int {
	if p < 1 || p&(p-1) != 0 {
		panic(fmt.Sprintf("barrier: %d processors, need a power of two", p))
	}
	return bits.TrailingZeros(uint(p))
}

// ---- Simulator builders ----

// SimCounter is the counter barrier on a simulated machine: the counter
// lives in one memory module, arrivals are RMWs and the departure spin is
// polling traffic through the same module.
type SimCounter struct {
	v sim.VarID
	p int
}

// NewSimCounter places the barrier counter in the given module.
func NewSimCounter(m *sim.Machine, module int) *SimCounter {
	return &SimCounter{v: m.NewMemVar("barrier:count", module, 0), p: m.Config().Processors}
}

// Ops returns one processor's ops for the round-th barrier episode
// (rounds are 1-based): arrive, then poll until all P arrived.
func (b *SimCounter) Ops(round int64) []sim.Op {
	return []sim.Op{
		sim.RMW(b.v, func(x int64) int64 { return x + 1 }, fmt.Sprintf("barrier:arrive r%d", round)),
		sim.WaitGE(b.v, round*int64(b.p), fmt.Sprintf("barrier:depart r%d", round)),
	}
}

// Vars returns the number of synchronization variables used (always 1).
func (b *SimCounter) Vars() int { return 1 }

// SimFlags is the Brooks butterfly over a flag matrix. Flags may live in
// memory modules (spread round-robin, as on a machine without
// synchronization registers) or in broadcast registers.
type SimFlags struct {
	p, stages int
	flags     [][]sim.VarID // [stage][pid]
}

// NewSimFlags declares the P x log2(P) flag matrix.
func NewSimFlags(m *sim.Machine, res sim.Residence) *SimFlags {
	p := m.Config().Processors
	stages := Log2(p)
	b := &SimFlags{p: p, stages: stages}
	mods := m.Config().Modules
	for s := 0; s < stages; s++ {
		row := make([]sim.VarID, p)
		for pid := 0; pid < p; pid++ {
			name := fmt.Sprintf("bfly:f[%d][%d]", s, pid)
			if res == sim.Memory {
				row[pid] = m.NewMemVar(name, pid%mods, 0)
			} else {
				row[pid] = m.NewRegVar(name, 0)
			}
		}
		b.flags = append(b.flags, row)
	}
	return b
}

// Ops returns processor pid's ops for barrier round (1-based): per stage,
// publish own flag for the round, then wait for the partner's.
func (b *SimFlags) Ops(pid int, round int64) []sim.Op {
	var ops []sim.Op
	for s := 0; s < b.stages; s++ {
		partner := pid ^ (1 << s)
		ops = append(ops,
			sim.WriteVar(b.flags[s][pid], round, fmt.Sprintf("bfly:set p%d s%d r%d", pid, s, round)),
			sim.WaitGE(b.flags[s][partner], round, fmt.Sprintf("bfly:wait p%d s%d r%d", pid, s, round)),
		)
	}
	return ops
}

// Vars returns the number of synchronization variables used.
func (b *SimFlags) Vars() int { return b.p * b.stages }

// SimPCBarrier is the paper's Fig 5.4: one process counter per processor
// (a synchronization register; process == processor, so no folding and no
// ownership transfer), set_PC(i) then spin on the stage-i partner's step.
type SimPCBarrier struct {
	p, stages int
	pcs       []sim.VarID
}

// NewSimPCBarrier declares the P process counters.
func NewSimPCBarrier(m *sim.Machine) *SimPCBarrier {
	p := m.Config().Processors
	b := &SimPCBarrier{p: p, stages: Log2(p), pcs: make([]sim.VarID, p)}
	for pid := 0; pid < p; pid++ {
		b.pcs[pid] = m.NewRegVar(fmt.Sprintf("bfly:PC[%d]", pid), 0)
	}
	return b
}

// Ops returns processor pid's ops for barrier round (1-based). Stage
// numbering continues across rounds so the step stays monotone.
func (b *SimPCBarrier) Ops(pid int, round int64) []sim.Op {
	var ops []sim.Op
	base := (round - 1) * int64(b.stages)
	for s := 0; s < b.stages; s++ {
		step := base + int64(s) + 1
		partner := pid ^ (1 << s)
		ops = append(ops,
			sim.WriteVar(b.pcs[pid], step, fmt.Sprintf("pcbfly:set p%d i%d", pid, step)),
			sim.WaitGE(b.pcs[partner], step, fmt.Sprintf("pcbfly:wait p%d i%d", pid, step)),
		)
	}
	return ops
}

// Vars returns the number of synchronization variables used (P).
func (b *SimPCBarrier) Vars() int { return b.p }

// ---- Runtime implementations ----
//
// All runtime barriers spin through the shared tiered backoff of package
// spin (hot re-check → Gosched → capped parked sleep) instead of bare
// Gosched loops, and keep every per-participant flag on its own cache line:
// a participant publishing its arrival must not invalidate the line a
// neighbor is spinning on. Constructors take an optional spin.Config (e.g.
// to arm the livelock watchdog); the default tiers are spin.Defaults.

// spinCfg folds the optional trailing config argument of the constructors,
// normalized once here so the per-wait path never re-derives defaults.
func spinCfg(cfg []spin.Config) spin.Config {
	if len(cfg) > 0 {
		return cfg[0].Normalized()
	}
	return spin.Config{}.Normalized()
}

// StallError reports a barrier wait that outlived the armed watchdog
// deadline: the stuck participant, its round, and the underlying deadline
// diagnosis. It is returned, not panicked, so an injected stall inside a
// barrier degrades into an error the caller can report — the same shape
// core.Runner.Run uses for livelocked waits.
type StallError struct {
	PID   int
	Round int64
	Err   *spin.DeadlineError
}

func (e *StallError) Error() string {
	return fmt.Sprintf("barrier: participant %d stuck in round %d: %v", e.PID, e.Round, e.Err)
}

// Unwrap exposes the deadline error to errors.As/Is.
func (e *StallError) Unwrap() error { return e.Err }

// await spins cond under the barrier's backoff tiers, returning a
// *StallError when the watchdog deadline (if armed) passes: a deadlocked
// barrier fails diagnosably instead of hanging or crashing the process.
func await(cfg spin.Config, pid int, round int64, cond func() bool) error {
	if _, err := spin.Until(cfg, cond); err != nil {
		return &StallError{PID: pid, Round: round, Err: err.(*spin.DeadlineError)}
	}
	return nil
}

// Counter is the runtime counter barrier.
type Counter struct {
	p     int64
	cfg   spin.Config
	count atomic.Int64
	round []int64
}

// NewCounter builds a counter barrier for p participants.
func NewCounter(p int, cfg ...spin.Config) *Counter {
	if p < 1 {
		panic("barrier: need at least one participant")
	}
	return &Counter{p: int64(p), cfg: spinCfg(cfg), round: make([]int64, p)}
}

// Await blocks participant pid until all participants of the current round
// have arrived. It returns a *StallError when an armed watchdog expires.
func (b *Counter) Await(pid int) error {
	b.round[pid]++
	r := b.round[pid]
	b.count.Add(1)
	return await(b.cfg, pid, r, func() bool { return b.count.Load() >= r*b.p })
}

// Flags is the runtime Brooks butterfly barrier.
type Flags struct {
	p, stages int
	cfg       spin.Config
	flags     [][]spin.Padded // [stage][pid], one cache line per flag
	round     []int64
}

// NewFlags builds a butterfly barrier over flags for p participants
// (p must be a power of two).
func NewFlags(p int, cfg ...spin.Config) *Flags {
	stages := Log2(p)
	b := &Flags{p: p, stages: stages, cfg: spinCfg(cfg), round: make([]int64, p)}
	for s := 0; s < stages; s++ {
		b.flags = append(b.flags, make([]spin.Padded, p))
	}
	return b
}

// Await blocks participant pid until all participants arrive. It returns a
// *StallError when an armed watchdog expires.
func (b *Flags) Await(pid int) error {
	b.round[pid]++
	r := b.round[pid]
	for s := 0; s < b.stages; s++ {
		partner := pid ^ (1 << s)
		b.flags[s][pid].Store(r)
		flag := &b.flags[s][partner]
		if err := await(b.cfg, pid, r, func() bool { return flag.Load() >= r }); err != nil {
			return err
		}
	}
	return nil
}

// PCButterfly is the runtime process-counter butterfly of Fig 5.4.
type PCButterfly struct {
	p, stages int
	cfg       spin.Config
	pcs       []spin.Padded
	step      []int64
}

// NewPCButterfly builds the barrier for p participants (a power of two).
func NewPCButterfly(p int, cfg ...spin.Config) *PCButterfly {
	return &PCButterfly{p: p, stages: Log2(p), cfg: spinCfg(cfg),
		pcs: make([]spin.Padded, p), step: make([]int64, p)}
}

// Await blocks participant pid until all participants arrive: per stage,
// set_PC(step) then spin while PC[pid xor 2^(i-1)].step < step. It returns
// a *StallError when an armed watchdog expires.
func (b *PCButterfly) Await(pid int) error {
	for s := 0; s < b.stages; s++ {
		b.step[pid]++
		step := b.step[pid]
		b.pcs[pid].Store(step)
		pc := &b.pcs[pid^(1<<s)]
		if err := await(b.cfg, pid, step, func() bool { return pc.Load() >= step }); err != nil {
			return err
		}
	}
	return nil
}
