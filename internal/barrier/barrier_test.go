package barrier

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/spin"
)

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 64: 6}
	for p, want := range cases {
		if got := Log2(p); got != want {
			t.Errorf("Log2(%d) = %d, want %d", p, got, want)
		}
	}
	for _, bad := range []int{0, 3, 6, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Log2(%d) did not panic", bad)
				}
			}()
			Log2(bad)
		}()
	}
}

// simBarrierHolds runs `rounds` barrier episodes with skewed arrival times
// and verifies the barrier property via the semantics hooks: no processor
// starts episode r+1 before every processor finished episode r.
func simBarrierHolds(t *testing.T, p int, rounds int64, build func(m *sim.Machine) func(pid int, round int64) []sim.Op) sim.Stats {
	t.Helper()
	m := sim.New(sim.Config{Processors: p, BusLatency: 1, MemLatency: 2, Modules: p, SyncOpCost: 1})
	ops := build(m)
	finished := make([]int64, p)
	var violations int
	progs := make([][]sim.Op, p)
	for pid := 0; pid < p; pid++ {
		pid := pid
		var prog []sim.Op
		for r := int64(1); r <= rounds; r++ {
			r := r
			// Skewed work before the barrier; the check runs when the
			// processor begins the episode's work: all must have finished
			// the previous round.
			prog = append(prog, sim.Compute(int64(1+(pid*7+int(r)*3)%13), func() {
				for q := 0; q < p; q++ {
					if finished[q] < r-1 {
						violations++
					}
				}
				finished[pid] = r
			}, "work"))
			prog = append(prog, ops(pid, r)...)
		}
		progs[pid] = prog
	}
	stats, err := m.RunProcesses(progs)
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("%d barrier violations", violations)
	}
	return stats
}

func TestSimCounterBarrier(t *testing.T) {
	simBarrierHolds(t, 8, 5, func(m *sim.Machine) func(int, int64) []sim.Op {
		b := NewSimCounter(m, 0)
		if b.Vars() != 1 {
			t.Errorf("counter Vars = %d", b.Vars())
		}
		return func(pid int, round int64) []sim.Op { return b.Ops(round) }
	})
}

func TestSimFlagsBarrierMemory(t *testing.T) {
	simBarrierHolds(t, 8, 5, func(m *sim.Machine) func(int, int64) []sim.Op {
		b := NewSimFlags(m, sim.Memory)
		if b.Vars() != 8*3 {
			t.Errorf("flags Vars = %d, want 24", b.Vars())
		}
		return b.Ops
	})
}

func TestSimFlagsBarrierRegister(t *testing.T) {
	simBarrierHolds(t, 4, 4, func(m *sim.Machine) func(int, int64) []sim.Op {
		b := NewSimFlags(m, sim.Register)
		return b.Ops
	})
}

func TestSimPCBarrier(t *testing.T) {
	simBarrierHolds(t, 8, 5, func(m *sim.Machine) func(int, int64) []sim.Op {
		b := NewSimPCBarrier(m)
		if b.Vars() != 8 {
			t.Errorf("PC barrier Vars = %d, want 8", b.Vars())
		}
		return b.Ops
	})
}

// TestCounterHotSpot: the counter barrier's polling converges on one
// module; the butterfly's traffic is spread. The structural claim of E9.
func TestCounterHotSpot(t *testing.T) {
	p := 8
	run := func(build func(m *sim.Machine) func(int, int64) []sim.Op) sim.Stats {
		return simBarrierHolds(t, p, 3, build)
	}
	counter := run(func(m *sim.Machine) func(int, int64) []sim.Op {
		b := NewSimCounter(m, 0)
		return func(pid int, round int64) []sim.Op { return b.Ops(round) }
	})
	bfly := run(func(m *sim.Machine) func(int, int64) []sim.Op {
		return NewSimFlags(m, sim.Memory).Ops
	})
	if counter.MaxModuleQueue <= bfly.MaxModuleQueue {
		t.Errorf("hot spot not visible: counter maxQ=%d, butterfly maxQ=%d",
			counter.MaxModuleQueue, bfly.MaxModuleQueue)
	}
}

// runtimeBarrierHolds stresses a runtime barrier with goroutines.
func runtimeBarrierHolds(t *testing.T, p int, rounds int64, await func(pid int) error) {
	t.Helper()
	state := make([]atomic.Int64, p)
	var violations, stalls atomic.Int64
	var wg sync.WaitGroup
	for pid := 0; pid < p; pid++ {
		pid := pid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := int64(1); r <= rounds; r++ {
				for q := 0; q < p; q++ {
					if state[q].Load() < r-1 {
						violations.Add(1)
					}
				}
				state[pid].Store(r)
				if err := await(pid); err != nil {
					stalls.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d runtime barrier violations", v)
	}
	if s := stalls.Load(); s != 0 {
		t.Errorf("%d participants stalled (no watchdog armed)", s)
	}
}

func TestRuntimeCounter(t *testing.T) {
	b := NewCounter(8)
	runtimeBarrierHolds(t, 8, 50, b.Await)
}

func TestRuntimeFlags(t *testing.T) {
	b := NewFlags(8)
	runtimeBarrierHolds(t, 8, 50, b.Await)
}

func TestRuntimePCButterfly(t *testing.T) {
	b := NewPCButterfly(8)
	runtimeBarrierHolds(t, 8, 50, b.Await)
}

// TestRuntimeBarrierStallError: a missing participant under an armed
// watchdog turns into a *StallError naming the stuck PID and round, with a
// *spin.DeadlineError underneath — not a hang, not a panic.
func TestRuntimeBarrierStallError(t *testing.T) {
	cfg := spin.Config{HotSpins: 4, YieldSpins: 4,
		SleepMin: 50 * time.Microsecond, SleepMax: 200 * time.Microsecond,
		Watchdog: 30 * time.Millisecond}
	barriers := map[string]func(pid int) error{
		"counter":       NewCounter(2, cfg).Await,
		"flags":         NewFlags(2, cfg).Await,
		"pc-butterfly":  NewPCButterfly(2, cfg).Await,
		"dissemination": NewDissemination(3, cfg).Await,
	}
	for name, await := range barriers {
		err := await(0) // participant 1 (and 2) never arrive
		var se *StallError
		if !errors.As(err, &se) {
			t.Errorf("%s: err = %v, want *StallError", name, err)
			continue
		}
		if se.PID != 0 || se.Round != 1 {
			t.Errorf("%s: stalled PID %d round %d, want 0/1", name, se.PID, se.Round)
		}
		var de *spin.DeadlineError
		if !errors.As(err, &de) {
			t.Errorf("%s: StallError does not unwrap to *spin.DeadlineError", name)
		}
	}
}

func TestRuntimeSingleParticipant(t *testing.T) {
	// Degenerate barriers must not block or error.
	if err := NewCounter(1).Await(0); err != nil {
		t.Errorf("counter: %v", err)
	}
	if err := NewFlags(1).Await(0); err != nil {
		t.Errorf("flags: %v", err)
	}
	if err := NewPCButterfly(1).Await(0); err != nil {
		t.Errorf("PC butterfly: %v", err)
	}
}
