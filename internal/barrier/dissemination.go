package barrier

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/spin"
)

// The paper notes that "with a minor modification, b_barrier() can work
// even when P is not a power of 2 [11]" — reference [11] being Hensgen,
// Finkel and Manber's dissemination barrier. In round r, stage s, each
// participant signals participant (pid + 2^s) mod P and waits for the
// signal from (pid - 2^s) mod P, over ceil(log2 P) stages. Like the
// butterfly it needs no atomic operations; it uses P*ceil(log2 P) flags
// (or P process counters when the per-stage signals are folded into one
// monotone counter per participant, as SimPCDissemination does).

// Stages returns ceil(log2 p), the dissemination round count.
func Stages(p int) int {
	if p < 1 {
		panic("barrier: need at least one participant")
	}
	s := 0
	for 1<<s < p {
		s++
	}
	return s
}

// SimDissemination is the flag-matrix dissemination barrier on a simulated
// machine, valid for any P.
type SimDissemination struct {
	p, stages int
	flags     [][]sim.VarID // [stage][pid]: value = round signaled
}

// NewSimDissemination declares the flag matrix with the given residence.
func NewSimDissemination(m *sim.Machine, res sim.Residence) *SimDissemination {
	p := m.Config().Processors
	b := &SimDissemination{p: p, stages: Stages(p)}
	mods := m.Config().Modules
	for s := 0; s < b.stages; s++ {
		row := make([]sim.VarID, p)
		for pid := 0; pid < p; pid++ {
			name := fmt.Sprintf("diss:f[%d][%d]", s, pid)
			if res == sim.Memory {
				row[pid] = m.NewMemVar(name, pid%mods, 0)
			} else {
				row[pid] = m.NewRegVar(name, 0)
			}
		}
		b.flags = append(b.flags, row)
	}
	return b
}

// Ops returns processor pid's ops for barrier round (1-based).
func (b *SimDissemination) Ops(pid int, round int64) []sim.Op {
	var ops []sim.Op
	for s := 0; s < b.stages; s++ {
		to := (pid + (1 << s)) % b.p
		from := (pid - (1<<s)%b.p + b.p) % b.p
		ops = append(ops,
			sim.WriteVar(b.flags[s][to], round, fmt.Sprintf("diss:signal p%d->p%d s%d r%d", pid, to, s, round)),
			sim.WaitGE(b.flags[s][pid], round, fmt.Sprintf("diss:wait p%d<-p%d s%d r%d", pid, from, s, round)),
		)
	}
	return ops
}

// Vars returns the number of synchronization variables used.
func (b *SimDissemination) Vars() int { return b.p * b.stages }

// SimPCDissemination folds each participant's per-stage signals into one
// monotone process counter (step = completed global stage number), the
// PC-style variable economy of Fig 5.4 applied to the dissemination
// pattern: P variables for any P.
type SimPCDissemination struct {
	p, stages int
	pcs       []sim.VarID
}

// NewSimPCDissemination declares the P process counters.
func NewSimPCDissemination(m *sim.Machine) *SimPCDissemination {
	p := m.Config().Processors
	b := &SimPCDissemination{p: p, stages: Stages(p), pcs: make([]sim.VarID, p)}
	for pid := 0; pid < p; pid++ {
		b.pcs[pid] = m.NewRegVar(fmt.Sprintf("diss:PC[%d]", pid), 0)
	}
	return b
}

// Ops returns processor pid's ops for barrier round (1-based). A processor
// waits on the *sender's* PC reaching the global stage number: the sender
// at distance 2^s behind it must have completed stage s of this round.
func (b *SimPCDissemination) Ops(pid int, round int64) []sim.Op {
	var ops []sim.Op
	base := (round - 1) * int64(b.stages)
	for s := 0; s < b.stages; s++ {
		step := base + int64(s) + 1
		from := (pid - (1<<s)%b.p + b.p) % b.p
		ops = append(ops,
			sim.WriteVar(b.pcs[pid], step, fmt.Sprintf("dissPC:set p%d i%d", pid, step)),
			sim.WaitGE(b.pcs[from], step, fmt.Sprintf("dissPC:wait p%d<-p%d i%d", pid, from, step)),
		)
	}
	return ops
}

// Vars returns the number of synchronization variables used (P).
func (b *SimPCDissemination) Vars() int { return b.p }

// Dissemination is the runtime dissemination barrier for any P, spinning
// through the shared tiered backoff over cache-line-padded flags like the
// barriers in barrier.go.
type Dissemination struct {
	p, stages int
	cfg       spin.Config
	flags     [][]spin.Padded
	round     []int64
}

// NewDissemination builds the barrier for p participants (any p >= 1).
func NewDissemination(p int, cfg ...spin.Config) *Dissemination {
	stages := Stages(p)
	b := &Dissemination{p: p, stages: stages, cfg: spinCfg(cfg), round: make([]int64, p)}
	for s := 0; s < stages; s++ {
		b.flags = append(b.flags, make([]spin.Padded, p))
	}
	return b
}

// Await blocks participant pid until all participants arrive. It returns a
// *StallError when an armed watchdog expires.
func (b *Dissemination) Await(pid int) error {
	b.round[pid]++
	r := b.round[pid]
	for s := 0; s < b.stages; s++ {
		to := (pid + (1 << s)) % b.p
		b.flags[s][to].Store(r)
		flag := &b.flags[s][pid]
		if err := await(b.cfg, pid, r, func() bool { return flag.Load() >= r }); err != nil {
			return err
		}
	}
	return nil
}
