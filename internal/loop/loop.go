// Package loop provides the loop-nest intermediate representation shared by
// the dependence analysis, the synchronization code generators and the
// workloads: rectangular nests of DO loops with a straight-line or branching
// body of array statements.
//
// It also implements the iteration-space manipulations the paper uses:
// linearized process ids for coalesced nests (Example 2), inner-loop
// grouping (Example 1's G parameter) and anti-diagonal wavefront partitions
// (Fig 5.1c).
package loop

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/deps"
)

// Index describes one loop level: DO Name = Lo, Hi (step 1).
type Index struct {
	Name   string
	Lo, Hi int64
}

// Extent returns the number of iterations of the level.
func (ix Index) Extent() int64 {
	if ix.Hi < ix.Lo {
		return 0
	}
	return ix.Hi - ix.Lo + 1
}

// Node is a body element: either a statement or a conditional.
type Node interface{ isNode() }

// StmtNode wraps a single statement.
type StmtNode struct{ S *deps.Stmt }

func (StmtNode) isNode() {}

// IfNode is a two-armed conditional whose outcome depends only on the
// iteration indices (data-independent branches, as in Example 3; the
// dependence analysis treats both arms as executing, which is conservative
// and safe).
type IfNode struct {
	Name string
	Cond func(idx []int64) bool
	Then []Node
	Else []Node
}

func (IfNode) isNode() {}

// S is shorthand for wrapping a statement.
func S(s *deps.Stmt) Node { return StmtNode{S: s} }

// Nest is a rectangular loop nest with the given body.
type Nest struct {
	Indexes []Index
	Body    []Node
}

// New validates and builds a nest.
func New(indexes []Index, body []Node) (*Nest, error) {
	if len(indexes) == 0 {
		return nil, fmt.Errorf("loop: nest needs at least one index")
	}
	for _, ix := range indexes {
		if ix.Hi < ix.Lo {
			return nil, fmt.Errorf("loop: index %s has empty range [%d,%d]", ix.Name, ix.Lo, ix.Hi)
		}
	}
	n := &Nest{Indexes: indexes, Body: body}
	for _, s := range n.Stmts() {
		for _, r := range append(append([]deps.Ref{}, s.Writes...), s.Reads...) {
			for _, ix := range r.Index {
				if ix.Arity() != len(indexes) {
					return nil, fmt.Errorf("loop: statement %s reference %s has arity %d, nest depth %d",
						s.Name, r, ix.Arity(), len(indexes))
				}
			}
		}
	}
	return n, nil
}

// MustNew is New that panics on error, for statically known nests.
func MustNew(indexes []Index, body []Node) *Nest {
	n, err := New(indexes, body)
	if err != nil {
		panic(err)
	}
	return n
}

// Depth returns the nesting depth.
func (n *Nest) Depth() int { return len(n.Indexes) }

// Extents returns the per-level iteration counts, outermost first.
func (n *Nest) Extents() []int64 {
	out := make([]int64, len(n.Indexes))
	for i, ix := range n.Indexes {
		out[i] = ix.Extent()
	}
	return out
}

// Iterations returns the total number of iterations (the number of
// processes after full coalescing).
func (n *Nest) Iterations() int64 {
	total := int64(1)
	for _, e := range n.Extents() {
		total *= e
	}
	return total
}

// Stmts returns the body statements flattened in textual order, descending
// into both arms of conditionals.
func (n *Nest) Stmts() []*deps.Stmt {
	var out []*deps.Stmt
	var walk func(nodes []Node)
	walk = func(nodes []Node) {
		for _, node := range nodes {
			switch v := node.(type) {
			case StmtNode:
				out = append(out, v.S)
			case IfNode:
				walk(v.Then)
				walk(v.Else)
			}
		}
	}
	walk(n.Body)
	return out
}

// Analyze runs dependence analysis over the flattened body.
func (n *Nest) Analyze() *deps.Graph {
	return deps.Analyze(n.Stmts(), n.Depth())
}

// LinearGraph returns the dependence graph of the coalesced nest (scalar
// lpid distances), ready for Enforced().
func (n *Nest) LinearGraph() *deps.Graph {
	return n.Analyze().Linearize(n.Extents())
}

// LpidOf returns the 1-based linearized process id of an index vector, as
// in Example 2: for (i,j) over DO I=1,N / DO J=1,M it is (i-1)*M + j.
func (n *Nest) LpidOf(idx []int64) int64 {
	if len(idx) != len(n.Indexes) {
		panic(fmt.Sprintf("loop: LpidOf with %d indices on depth-%d nest", len(idx), len(n.Indexes)))
	}
	lpid := int64(0)
	for k, ix := range n.Indexes {
		off := idx[k] - ix.Lo
		if off < 0 || idx[k] > ix.Hi {
			panic(fmt.Sprintf("loop: index %s=%d out of range [%d,%d]", ix.Name, idx[k], ix.Lo, ix.Hi))
		}
		lpid = lpid*ix.Extent() + off
	}
	return lpid + 1
}

// IndexOf is the inverse of LpidOf: it decodes a 1-based lpid into an index
// vector.
func (n *Nest) IndexOf(lpid int64) []int64 {
	if lpid < 1 || lpid > n.Iterations() {
		panic(fmt.Sprintf("loop: lpid %d out of range [1,%d]", lpid, n.Iterations()))
	}
	rem := lpid - 1
	idx := make([]int64, len(n.Indexes))
	for k := len(n.Indexes) - 1; k >= 0; k-- {
		e := n.Indexes[k].Extent()
		idx[k] = n.Indexes[k].Lo + rem%e
		rem /= e
	}
	return idx
}

// FlatBody returns the executable node sequence for one iteration: body
// order with conditionals resolved against the given index vector. The
// returned statements are a subsequence of Stmts().
func (n *Nest) FlatBody(idx []int64) []*deps.Stmt {
	var out []*deps.Stmt
	var walk func(nodes []Node)
	walk = func(nodes []Node) {
		for _, node := range nodes {
			switch v := node.(type) {
			case StmtNode:
				out = append(out, v.S)
			case IfNode:
				if v.Cond(idx) {
					walk(v.Then)
				} else {
					walk(v.Else)
				}
			}
		}
	}
	walk(n.Body)
	return out
}

// HasBranches reports whether the body contains conditionals at any depth.
func (n *Nest) HasBranches() bool {
	var found bool
	var walk func(nodes []Node)
	walk = func(nodes []Node) {
		for _, node := range nodes {
			if v, ok := node.(IfNode); ok {
				found = true
				walk(v.Then)
				walk(v.Else)
			}
		}
	}
	walk(n.Body)
	return found
}

// AntiDiagonals partitions a depth-2 iteration space into wavefronts: all
// iterations with equal i+j land in the same front (Fig 5.1c). Iterations
// within one front are mutually independent for stencils whose distance
// vectors are (1,0) and (0,1).
func (n *Nest) AntiDiagonals() [][][]int64 {
	if n.Depth() != 2 {
		panic("loop: AntiDiagonals requires a depth-2 nest")
	}
	i0, j0 := n.Indexes[0], n.Indexes[1]
	minSum, maxSum := i0.Lo+j0.Lo, i0.Hi+j0.Hi
	fronts := make([][][]int64, 0, maxSum-minSum+1)
	for s := minSum; s <= maxSum; s++ {
		var front [][]int64
		for i := i0.Lo; i <= i0.Hi; i++ {
			j := s - i
			if j >= j0.Lo && j <= j0.Hi {
				front = append(front, []int64{i, j})
			}
		}
		if len(front) > 0 {
			fronts = append(fronts, front)
		}
	}
	return fronts
}

// GroupRanges splits the range [lo,hi] into consecutive groups of size g
// (the last group may be shorter): Example 1's grouping of G inner
// iterations per synchronization point.
func GroupRanges(lo, hi, g int64) [][2]int64 {
	if g < 1 {
		panic("loop: group size must be >= 1")
	}
	var out [][2]int64
	for s := lo; s <= hi; s += g {
		e := s + g - 1
		if e > hi {
			e = hi
		}
		out = append(out, [2]int64{s, e})
	}
	return out
}
