package loop

import (
	"testing"
	"testing/quick"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
)

func stmt1(name string, wc, rc int64) *deps.Stmt {
	return &deps.Stmt{
		Name:   name,
		Writes: []deps.Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, wc)}}},
		Reads:  []deps.Ref{{Array: "A", Index: []expr.Affine{expr.Index(1, 0, rc)}}},
		Cost:   1,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty index list accepted")
	}
	if _, err := New([]Index{{"I", 5, 4}}, nil); err == nil {
		t.Error("empty range accepted")
	}
	// Arity mismatch: depth-2 nest with depth-1 subscripts.
	s := stmt1("S1", 0, -1)
	if _, err := New([]Index{{"I", 1, 4}, {"J", 1, 4}}, []Node{S(s)}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestExtentsIterations(t *testing.T) {
	n := MustNew([]Index{{"I", 2, 10}, {"J", 1, 5}}, nil)
	e := n.Extents()
	if e[0] != 9 || e[1] != 5 {
		t.Errorf("Extents = %v, want [9 5]", e)
	}
	if n.Iterations() != 45 {
		t.Errorf("Iterations = %d, want 45", n.Iterations())
	}
}

func TestLpidRoundTrip(t *testing.T) {
	n := MustNew([]Index{{"I", 1, 3}, {"J", 1, 5}}, nil)
	// Example 2: lpid of (i,j) is (i-1)*M + j.
	if got := n.LpidOf([]int64{2, 3}); got != 8 {
		t.Errorf("LpidOf(2,3) = %d, want 8", got)
	}
	for lpid := int64(1); lpid <= n.Iterations(); lpid++ {
		idx := n.IndexOf(lpid)
		if back := n.LpidOf(idx); back != lpid {
			t.Errorf("round trip %d -> %v -> %d", lpid, idx, back)
		}
	}
}

func TestLpidRoundTripNonUnitLo(t *testing.T) {
	n := MustNew([]Index{{"I", 2, 6}, {"J", 3, 7}, {"K", 0, 2}}, nil)
	f := func(raw uint32) bool {
		lpid := int64(raw)%n.Iterations() + 1
		return n.LpidOf(n.IndexOf(lpid)) == lpid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLpidPanics(t *testing.T) {
	n := MustNew([]Index{{"I", 1, 3}}, nil)
	for _, bad := range []int64{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IndexOf(%d) did not panic", bad)
				}
			}()
			n.IndexOf(bad)
		}()
	}
}

func TestStmtsFlattensBranches(t *testing.T) {
	sa, sb, sc, sd := stmt1("Sa", 0, -1), stmt1("Sb", 1, 0), stmt1("Sc", 2, 1), stmt1("Sd", 3, 2)
	n := MustNew([]Index{{"I", 1, 10}}, []Node{
		S(sa),
		IfNode{
			Name: "C1",
			Cond: func(idx []int64) bool { return idx[0]%2 == 0 },
			Then: []Node{S(sb)},
			Else: []Node{S(sc)},
		},
		S(sd),
	})
	got := n.Stmts()
	want := []*deps.Stmt{sa, sb, sc, sd}
	if len(got) != len(want) {
		t.Fatalf("Stmts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Stmts[%d] = %s, want %s", i, got[i].Name, want[i].Name)
		}
	}
	if !n.HasBranches() {
		t.Error("HasBranches = false")
	}

	even := n.FlatBody([]int64{2})
	if len(even) != 3 || even[1] != sb {
		t.Errorf("FlatBody(even) took wrong arm: %v", names(even))
	}
	odd := n.FlatBody([]int64{3})
	if len(odd) != 3 || odd[1] != sc {
		t.Errorf("FlatBody(odd) took wrong arm: %v", names(odd))
	}
}

func names(ss []*deps.Stmt) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

func TestAntiDiagonals(t *testing.T) {
	n := MustNew([]Index{{"I", 2, 4}, {"J", 2, 4}}, nil)
	fronts := n.AntiDiagonals()
	// Sums 4..8: sizes 1,2,3,2,1.
	wantSizes := []int{1, 2, 3, 2, 1}
	if len(fronts) != len(wantSizes) {
		t.Fatalf("got %d fronts, want %d", len(fronts), len(wantSizes))
	}
	total := 0
	for f, front := range fronts {
		if len(front) != wantSizes[f] {
			t.Errorf("front %d size = %d, want %d", f, len(front), wantSizes[f])
		}
		for _, idx := range front {
			if idx[0]+idx[1] != int64(f)+4 {
				t.Errorf("front %d contains %v with wrong sum", f, idx)
			}
		}
		total += len(front)
	}
	if total != int(n.Iterations()) {
		t.Errorf("fronts cover %d iterations, want %d", total, n.Iterations())
	}
}

func TestGroupRanges(t *testing.T) {
	got := GroupRanges(2, 10, 4)
	want := [][2]int64{{2, 5}, {6, 9}, {10, 10}}
	if len(got) != len(want) {
		t.Fatalf("GroupRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Exact division, and g larger than the range.
	if g := GroupRanges(1, 8, 4); len(g) != 2 || g[1] != [2]int64{5, 8} {
		t.Errorf("exact division wrong: %v", g)
	}
	if g := GroupRanges(1, 3, 10); len(g) != 1 || g[0] != [2]int64{1, 3} {
		t.Errorf("oversized group wrong: %v", g)
	}
}

func TestLinearGraph(t *testing.T) {
	// Example 2 nest; see deps tests for the full vector check.
	ix := func(ci, cj int64) []expr.Affine {
		return []expr.Affine{expr.Index(2, 0, ci), expr.Index(2, 1, cj)}
	}
	s1 := &deps.Stmt{Name: "S1", Writes: []deps.Ref{{Array: "A", Index: ix(0, 0)}}, Cost: 1}
	s2 := &deps.Stmt{Name: "S2", Writes: []deps.Ref{{Array: "B", Index: ix(0, 0)}},
		Reads: []deps.Ref{{Array: "A", Index: ix(0, -1)}}, Cost: 1}
	s3 := &deps.Stmt{Name: "S3", Reads: []deps.Ref{{Array: "B", Index: ix(-1, -1)}}, Cost: 1}
	n := MustNew([]Index{{"I", 1, 4}, {"J", 1, 5}}, []Node{S(s1), S(s2), S(s3)})
	lin := n.LinearGraph()
	enf := lin.Enforced()
	if len(enf) != 2 {
		t.Fatalf("enforced arcs = %d, want 2:\n%s", len(enf), lin)
	}
	if enf[0].Dist[0] != 1 || enf[1].Dist[0] != 6 {
		t.Errorf("linearized distances = %d,%d, want 1,6", enf[0].Dist[0], enf[1].Dist[0])
	}
}
