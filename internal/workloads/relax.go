package workloads

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/loop"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/stmtorient"
)

// Relax is Example 1's simplified four-point relaxation
//
//	DO I=2,N; DO J=2,N
//	  S1: A[I,J] = A[I-1,J] + A[I,J-1]
//
// executed three ways: as a wavefront with a barrier between anti-diagonal
// fronts (Fig 5.1c), as an asynchronous pipeline where each outer iteration
// is a process synchronizing with its predecessor every G inner iterations
// through process counters (Fig 5.1b/d), and as the same pipeline over
// statement counters — which starves when the SCs are fewer than the
// pipeline's sync points.
type Relax struct {
	N    int64 // I and J range over 2..N
	Cost int64 // cycles per cell update
	G    int64 // inner iterations per synchronization point (pipeline)
}

// SetupGrid declares and initializes the relaxation grid with boundary
// values on row 1 and column 1.
func (r Relax) SetupGrid(mem *sim.Mem) *sim.Grid {
	a := mem.Grid("A", 1, r.N, 1, r.N)
	for i := int64(1); i <= r.N; i++ {
		a.Set(i, 1, 3*i+1)
		a.Set(1, i, i)
	}
	return a
}

// SerialMem runs the relaxation serially and returns the resulting memory
// and total compute cycles — the oracle and baseline.
func (r Relax) SerialMem() (*sim.Mem, int64) {
	mem := sim.NewMem()
	a := r.SetupGrid(mem)
	for i := int64(2); i <= r.N; i++ {
		for j := int64(2); j <= r.N; j++ {
			a.Set(i, j, a.Get(i-1, j)+a.Get(i, j-1))
		}
	}
	return mem, (r.N - 1) * (r.N - 1) * r.Cost
}

// cell returns the compute op for one cell update.
func (r Relax) cell(a *sim.Grid, i, j int64) sim.Op {
	return sim.Compute(r.Cost, func() {
		a.Set(i, j, a.Get(i-1, j)+a.Get(i, j-1))
	}, fmt.Sprintf("relax(%d,%d)", i, j))
}

// groups returns the inner-loop group boundaries.
func (r Relax) groups() [][2]int64 { return loop.GroupRanges(2, r.N, r.G) }

// SyncPoints returns the number of synchronization points between two
// consecutive processes of the pipeline — the paper's N-1 for G=1.
func (r Relax) SyncPoints() int64 { return int64(len(r.groups())) }

// PipelinedPC builds the process-oriented pipeline of Fig 5.1b on the
// machine: the outer loop is a Doacross over processes i=2..N (lpid i-1),
// each enclosing the serial inner loop, with wait_PC(1,k)/mark_PC(k) per
// group and transfer_PC at the end. Run it with m.RunLoop(r.N-1, prog).
func (r Relax) PipelinedPC(m *sim.Machine, x int) sim.Program {
	pcs := core.NewSimPCs(m, x)
	a := r.SetupGrid(m.Mem())
	groups := r.groups()
	return func(lpid int64) []sim.Op {
		i := lpid + 1 // process executes outer iteration I = lpid+1
		var ops []sim.Op
		for _, g := range groups {
			k, end := g[0], g[1]
			if lpid > 1 {
				// Wait until process i-1 completed the group ending at
				// end (it marks step k after finishing [k, k+G-1]).
				ops = append(ops, pcs.WaitPC(lpid, 1, k))
			}
			for j := k; j <= end; j++ {
				ops = append(ops, r.cell(a, i, j))
			}
			ops = append(ops, pcs.MarkPC(lpid, k))
		}
		ops = append(ops, pcs.TransferPCOps(lpid)...)
		return ops
	}
}

// PipelinedSC builds the same pipeline over K physical statement counters.
// Each sync point (group gi) is a logical counter folded onto SC[gi mod K].
// A shared SC must carry a single total order of advances; the only order
// that stays deadlock-free under in-order dispatch is process-major: all of
// process i's advances to the SC precede process i+1's. Consequently a
// process can enter a shared group only after its predecessor has passed
// the *last* group of that SC's class — with K < SyncPoints() the pipeline
// overlap collapses toward serial execution, which is Example 1's argument
// against statement-oriented synchronization; K >= SyncPoints() restores
// the dedicated-counter pipeline.
func (r Relax) PipelinedSC(m *sim.Machine, k int) sim.Program {
	scs := stmtorient.NewSimSCs(m, k)
	a := r.SetupGrid(m.Mem())
	groups := r.groups()
	// classCount[m] = number of groups folded onto SC m.
	classCount := make([]int64, k)
	for gi := range groups {
		classCount[gi%k]++
	}
	return func(lpid int64) []sim.Op {
		i := lpid + 1
		var ops []sim.Op
		for gi, g := range groups {
			cnt := classCount[gi%k]
			rank := int64(gi / k)
			if lpid > 1 {
				// Process i awaits process i-1's advance for this group:
				// its sequence number in the process-major order.
				ops = append(ops, scs.AwaitOp(int64(gi), (lpid-2)*cnt+rank+1))
			}
			for j := g[0]; j <= g[1]; j++ {
				ops = append(ops, r.cell(a, i, j))
			}
			ops = append(ops, scs.AdvanceOps(int64(gi), (lpid-1)*cnt+rank+1)...)
		}
		return ops
	}
}

// BarrierOps builds one barrier episode for the wavefront schedule.
type BarrierOps func(pid int, round int64) []sim.Op

// Wavefront builds the wavefront schedule of Fig 5.1c: per anti-diagonal
// front, processor pid computes every front cell whose rank ≡ pid (mod P),
// then all processors meet at a barrier. Run with m.RunProcesses.
func (r Relax) Wavefront(m *sim.Machine, barrier BarrierOps) [][]sim.Op {
	a := r.SetupGrid(m.Mem())
	p := m.Config().Processors
	nest := loop.MustNew([]loop.Index{
		{Name: "I", Lo: 2, Hi: r.N}, {Name: "J", Lo: 2, Hi: r.N}}, nil)
	fronts := nest.AntiDiagonals()
	progs := make([][]sim.Op, p)
	for pid := 0; pid < p; pid++ {
		var ops []sim.Op
		for f, front := range fronts {
			for c, idx := range front {
				if c%p == pid {
					ops = append(ops, r.cell(a, idx[0], idx[1]))
				}
			}
			ops = append(ops, barrier(pid, int64(f)+1)...)
		}
		progs[pid] = ops
	}
	return progs
}

// Fronts returns the number of wavefronts (= barrier episodes).
func (r Relax) Fronts() int64 { return 2*r.N - 3 }
