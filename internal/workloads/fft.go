package workloads

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/sim"
)

// FFT is Example 5: a butterfly-structured transform computed by P
// processors in log2(P) phases, where each phase exchanges data between
// partner pairs only. The paper's point is that no global barrier is
// needed: after BASIC_FFT in stage i a processor marks its own PC and
// waits only for the one processor whose data it will consume next.
//
// The transform computed is the Walsh–Hadamard transform over integers — it
// has exactly the FFT's butterfly dataflow (stage i combines elements whose
// processor ids differ in bit i) without needing complex arithmetic in the
// integer-valued simulator. Each processor owns Chunk elements; buffers are
// per-stage (single assignment across stages), so a stage reads only
// stage-1 data from itself and its stage partner.
type FFT struct {
	P     int   // processors (power of two)
	Chunk int64 // elements per processor
	Cost  int64 // cycles per element per stage
}

// Stages returns log2(P).
func (f FFT) Stages() int { return barrier.Log2(f.P) }

// Setup declares the per-stage value buffers VAL[stage][global element] and
// fills stage 0 with deterministic inputs.
func (f FFT) Setup(mem *sim.Mem) *sim.Grid {
	n := int64(f.P) * f.Chunk
	v := mem.Grid("VAL", 0, int64(f.Stages()), 0, n-1)
	for e := int64(0); e < n; e++ {
		v.Set(0, e, e*e%97+3*e)
	}
	return v
}

// SerialMem computes the transform serially: oracle and baseline cycles.
func (f FFT) SerialMem() (*sim.Mem, int64) {
	mem := sim.NewMem()
	v := f.Setup(mem)
	n := int64(f.P) * f.Chunk
	for s := 1; s <= f.Stages(); s++ {
		dist := int64(1<<(s-1)) * f.Chunk
		for e := int64(0); e < n; e++ {
			partnerE := e ^ dist
			if e < partnerE {
				v.Set(int64(s), e, v.Get(int64(s-1), e)+v.Get(int64(s-1), partnerE))
			} else {
				v.Set(int64(s), e, v.Get(int64(s-1), partnerE)-v.Get(int64(s-1), e))
			}
		}
	}
	return mem, int64(f.Stages()) * n * f.Cost
}

// stageOp builds processor pid's compute for one stage.
func (f FFT) stageOp(v *sim.Grid, pid, stage int) sim.Op {
	return sim.Compute(f.Chunk*f.Cost, func() {
		lo := int64(pid) * f.Chunk
		dist := int64(1<<(stage-1)) * f.Chunk
		for e := lo; e < lo+f.Chunk; e++ {
			partnerE := e ^ dist
			if e < partnerE {
				v.Set(int64(stage), e, v.Get(int64(stage-1), e)+v.Get(int64(stage-1), partnerE))
			} else {
				v.Set(int64(stage), e, v.Get(int64(stage-1), partnerE)-v.Get(int64(stage-1), e))
			}
		}
	}, fmt.Sprintf("fft p%d s%d", pid, stage))
}

// Pairwise builds the paper's fft() procedure: per stage, BASIC_FFT, then
// mark_PC(i), then spin on the *next* stage's partner — the processor whose
// stage-i output this processor consumes in stage i+1. One PC per
// processor, step = completed stage, no folding (process == processor).
func (f FFT) Pairwise(m *sim.Machine) [][]sim.Op {
	v := f.Setup(m.Mem())
	pcs := make([]sim.VarID, f.P)
	for pid := 0; pid < f.P; pid++ {
		pcs[pid] = m.NewRegVar(fmt.Sprintf("fftPC[%d]", pid), 0)
	}
	stages := f.Stages()
	progs := make([][]sim.Op, f.P)
	for pid := 0; pid < f.P; pid++ {
		var ops []sim.Op
		for s := 1; s <= stages; s++ {
			ops = append(ops, f.stageOp(v, pid, s))
			ops = append(ops, sim.WriteVar(pcs[pid], int64(s), fmt.Sprintf("fft:mark p%d s%d", pid, s)))
			if s < stages {
				next := pid ^ (1 << s) // stage s+1 partner (distance 2^s)
				ops = append(ops, sim.WaitGE(pcs[next], int64(s), fmt.Sprintf("fft:wait p%d s%d", pid, s)))
			}
		}
		progs[pid] = ops
	}
	return progs
}

// WithBarrier builds the conventional alternative: a full barrier between
// stages (as in the paper's reference [7]).
func (f FFT) WithBarrier(m *sim.Machine, b BarrierOps) [][]sim.Op {
	v := f.Setup(m.Mem())
	stages := f.Stages()
	progs := make([][]sim.Op, f.P)
	for pid := 0; pid < f.P; pid++ {
		var ops []sim.Op
		for s := 1; s <= stages; s++ {
			ops = append(ops, f.stageOp(v, pid, s))
			if s < stages {
				ops = append(ops, b(pid, int64(s))...)
			}
		}
		progs[pid] = ops
	}
	return progs
}
