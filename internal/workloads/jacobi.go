package workloads

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/sim"
)

// Jacobi is the paper's other Example 5 application: "the discretization
// method for solving partial differential equations [19], in which a
// process only needs to synchronize with processes computing its
// neighboring regions". P processors own contiguous strips of a 1-D domain
// and run Sweeps Jacobi smoothing sweeps; between sweeps a processor needs
// only its left and right neighbors' strips from the previous sweep — one
// process counter per processor (step = completed sweep) replaces a global
// barrier.
type Jacobi struct {
	P      int   // processors / strips
	Strip  int64 // cells per strip
	Sweeps int   // smoothing sweeps
	Cost   int64 // cycles per cell per sweep
}

// Cells returns the domain size.
func (j Jacobi) Cells() int64 { return int64(j.P) * j.Strip }

// Setup declares the per-sweep value buffers U[sweep][cell] with fixed
// boundary cells at both ends, filled with deterministic inputs.
func (j Jacobi) Setup(mem *sim.Mem) *sim.Grid {
	n := j.Cells()
	u := mem.Grid("U", 0, int64(j.Sweeps), -1, n)
	for c := int64(-1); c <= n; c++ {
		u.Set(0, c, (c*c)%53+2*c)
	}
	for s := int64(1); s <= int64(j.Sweeps); s++ {
		// Dirichlet boundaries stay fixed every sweep.
		u.Set(s, -1, u.Get(0, -1))
		u.Set(s, n, u.Get(0, n))
	}
	return u
}

// SerialMem runs the sweeps serially: the oracle and baseline cycles.
func (j Jacobi) SerialMem() (*sim.Mem, int64) {
	mem := sim.NewMem()
	u := j.Setup(mem)
	n := j.Cells()
	for s := 1; s <= j.Sweeps; s++ {
		for c := int64(0); c < n; c++ {
			u.Set(int64(s), c, (u.Get(int64(s-1), c-1)+u.Get(int64(s-1), c+1))/2)
		}
	}
	return mem, int64(j.Sweeps) * n * j.Cost
}

// sweepOp builds processor pid's compute for one sweep over its strip.
func (j Jacobi) sweepOp(u *sim.Grid, pid, sweep int) sim.Op {
	return sim.Compute(j.Strip*j.Cost, func() {
		lo := int64(pid) * j.Strip
		for c := lo; c < lo+j.Strip; c++ {
			u.Set(int64(sweep), c, (u.Get(int64(sweep-1), c-1)+u.Get(int64(sweep-1), c+1))/2)
		}
	}, fmt.Sprintf("jacobi p%d s%d", pid, sweep))
}

// NeighborSync builds the paper's regime: after sweep s a processor marks
// its own PC and waits only for its left and right neighbors to finish
// sweep s before starting sweep s+1. Run with m.RunProcesses.
func (j Jacobi) NeighborSync(m *sim.Machine) [][]sim.Op {
	u := j.Setup(m.Mem())
	pcs := make([]sim.VarID, j.P)
	for pid := 0; pid < j.P; pid++ {
		pcs[pid] = m.NewRegVar(fmt.Sprintf("jacPC[%d]", pid), 0)
	}
	progs := make([][]sim.Op, j.P)
	for pid := 0; pid < j.P; pid++ {
		var ops []sim.Op
		for s := 1; s <= j.Sweeps; s++ {
			ops = append(ops, j.sweepOp(u, pid, s))
			ops = append(ops, sim.WriteVar(pcs[pid], int64(s), fmt.Sprintf("jac:mark p%d s%d", pid, s)))
			if s < j.Sweeps {
				if pid > 0 {
					ops = append(ops, sim.WaitGE(pcs[pid-1], int64(s), fmt.Sprintf("jac:waitL p%d s%d", pid, s)))
				}
				if pid < j.P-1 {
					ops = append(ops, sim.WaitGE(pcs[pid+1], int64(s), fmt.Sprintf("jac:waitR p%d s%d", pid, s)))
				}
			}
		}
		progs[pid] = ops
	}
	return progs
}

// WithBarrier builds the conventional alternative: a global barrier
// between sweeps.
func (j Jacobi) WithBarrier(m *sim.Machine, b BarrierOps) [][]sim.Op {
	u := j.Setup(m.Mem())
	progs := make([][]sim.Op, j.P)
	for pid := 0; pid < j.P; pid++ {
		var ops []sim.Op
		for s := 1; s <= j.Sweeps; s++ {
			ops = append(ops, j.sweepOp(u, pid, s))
			if s < j.Sweeps {
				ops = append(ops, b(pid, int64(s))...)
			}
		}
		progs[pid] = ops
	}
	return progs
}
