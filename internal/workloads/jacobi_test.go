package workloads

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/sim"
)

func TestJacobiNeighborSyncMatchesSerial(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		j := Jacobi{P: p, Strip: 6, Sweeps: 7, Cost: 3}
		m := sim.New(sim.Config{Processors: p, BusLatency: 1, SyncOpCost: 1, Modules: p})
		if _, err := m.RunProcesses(j.NeighborSync(m)); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		want, _ := j.SerialMem()
		if diff := want.Diff(m.Mem()); diff != "" {
			t.Fatalf("P=%d neighbor-sync Jacobi diverged:\n%s", p, diff)
		}
	}
}

func TestJacobiWithBarrierMatchesSerial(t *testing.T) {
	j := Jacobi{P: 6, Strip: 5, Sweeps: 5, Cost: 3}
	m := sim.New(sim.Config{Processors: 6, BusLatency: 1, MemLatency: 2, SyncOpCost: 1, Modules: 1})
	b := barrier.NewSimCounter(m, 0)
	progs := j.WithBarrier(m, func(pid int, round int64) []sim.Op { return b.Ops(round) })
	if _, err := m.RunProcesses(progs); err != nil {
		t.Fatal(err)
	}
	want, _ := j.SerialMem()
	if diff := want.Diff(m.Mem()); diff != "" {
		t.Fatalf("barrier Jacobi diverged:\n%s", diff)
	}
}

// TestJacobiNeighborBeatsBarrier: local sync avoids the global wait chain —
// with skewed strips the barrier pays the slowest processor every sweep.
func TestJacobiNeighborBeatsBarrier(t *testing.T) {
	j := Jacobi{P: 8, Strip: 8, Sweeps: 8, Cost: 4}
	cfg := sim.Config{Processors: 8, BusLatency: 1, MemLatency: 2, SyncOpCost: 1, Modules: 1}

	mN := sim.New(cfg)
	nStats, err := mN.RunProcesses(j.NeighborSync(mN))
	if err != nil {
		t.Fatal(err)
	}
	mB := sim.New(cfg)
	b := barrier.NewSimCounter(mB, 0)
	bStats, err := mB.RunProcesses(j.WithBarrier(mB, func(pid int, round int64) []sim.Op { return b.Ops(round) }))
	if err != nil {
		t.Fatal(err)
	}
	if nStats.Cycles >= bStats.Cycles {
		t.Errorf("neighbor sync (%d cycles) not faster than barrier (%d)", nStats.Cycles, bStats.Cycles)
	}
	if nStats.ModuleAccesses != 0 {
		t.Errorf("neighbor sync used %d module accesses", nStats.ModuleAccesses)
	}
}
