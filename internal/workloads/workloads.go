// Package workloads provides the paper's example loops as executable
// workloads: the Fig 2.1 five-statement loop, the multiply-nested loop of
// Example 2, a branchy loop in the shape of Example 3, first-order
// recurrences, and a generator of random constant-distance loops for
// property testing. The relaxation pipeline of Example 1 and the FFT of
// Example 5 have their own builders (relax.go, fft.go) because their
// process structure — a Doacross loop enclosing a serial loop, and
// phase-structured processor-bound processes — is not a flat Doacross body.
package workloads

import (
	"fmt"
	"math/rand"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
	"github.com/csrd-repro/datasync/internal/loop"
	"github.com/csrd-repro/datasync/internal/sim"
)

// ref1 builds a depth-1 reference Array[I+c].
func ref1(array string, c int64) deps.Ref {
	return deps.Ref{Array: array, Index: []expr.Affine{expr.Index(1, 0, c)}}
}

// ref2 builds a depth-2 reference Array[I+ci, J+cj].
func ref2(array string, ci, cj int64) deps.Ref {
	return deps.Ref{Array: array, Index: []expr.Affine{expr.Index(2, 0, ci), expr.Index(2, 1, cj)}}
}

// Fig21 is the canonical loop of Fig 2.1:
//
//	DO I=1,N
//	  S1: A[I+3] = 10*I+3
//	  S2: t2     = A[I+1]
//	  S3: t3     = A[I+2]
//	  S4: A[I]   = t2+t3
//	  S5: OUT[I] = A[I-1]
//	END DO
//
// stmtCost is the compute cost of each statement (1 for unit experiments).
func Fig21(n, stmtCost int64) *codegen.Workload {
	s1 := &deps.Stmt{Name: "S1", Writes: []deps.Ref{ref1("A", 3)}, Cost: stmtCost}
	s2 := &deps.Stmt{Name: "S2", Reads: []deps.Ref{ref1("A", 1)}, Cost: stmtCost}
	s3 := &deps.Stmt{Name: "S3", Reads: []deps.Ref{ref1("A", 2)}, Cost: stmtCost}
	s4 := &deps.Stmt{Name: "S4", Writes: []deps.Ref{ref1("A", 0)}, Cost: stmtCost}
	s5 := &deps.Stmt{Name: "S5", Writes: []deps.Ref{ref1("OUT", 0)}, Reads: []deps.Ref{ref1("A", -1)}, Cost: stmtCost}
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: n}},
		[]loop.Node{loop.S(s1), loop.S(s2), loop.S(s3), loop.S(s4), loop.S(s5)},
	)
	return &codegen.Workload{
		Name: "fig2.1",
		Nest: nest,
		Sem: map[*deps.Stmt]codegen.Sem{
			s1: func(idx []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{10*idx[0] + 3}
			},
			s2: func(_ []int64, in []int64, locals map[string]int64) []int64 {
				locals["t2"] = in[0]
				return nil
			},
			s3: func(_ []int64, in []int64, locals map[string]int64) []int64 {
				locals["t3"] = in[0]
				return nil
			},
			s4: func(_ []int64, _ []int64, locals map[string]int64) []int64 {
				return []int64{locals["t2"] + locals["t3"]}
			},
			s5: func(_ []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0]}
			},
		},
		Setup: func(mem *sim.Mem) {
			a := mem.Array("A", 1-4, n+3)
			for i := a.Lo; i <= a.Hi; i++ {
				a.Set(i, 1000+i) // nonzero initial data exposes missed waits
			}
			mem.Array("OUT", 1, n)
		},
	}
}

// Nested is Example 2's multiply-nested Doacross loop:
//
//	DO I=1,N; DO J=1,M
//	  S1: A[I,J]   = I*100+J
//	  S2: B[I,J]   = A[I,J-1] + 1
//	  S3: OUT[I,J] = B[I-1,J-1] * 2
//
// Coalescing gives lpid distances 1 (S1->S2) and M+1 (S2->S3), the paper's
// wait_PC(1,1) and wait_PC(M+1,2).
func Nested(n, m, stmtCost int64) *codegen.Workload {
	s1 := &deps.Stmt{Name: "S1", Writes: []deps.Ref{ref2("A", 0, 0)}, Cost: stmtCost}
	s2 := &deps.Stmt{Name: "S2", Writes: []deps.Ref{ref2("B", 0, 0)}, Reads: []deps.Ref{ref2("A", 0, -1)}, Cost: stmtCost}
	s3 := &deps.Stmt{Name: "S3", Writes: []deps.Ref{ref2("OUT", 0, 0)}, Reads: []deps.Ref{ref2("B", -1, -1)}, Cost: stmtCost}
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: n}, {Name: "J", Lo: 1, Hi: m}},
		[]loop.Node{loop.S(s1), loop.S(s2), loop.S(s3)},
	)
	return &codegen.Workload{
		Name: "example2-nested",
		Nest: nest,
		Sem: map[*deps.Stmt]codegen.Sem{
			s1: func(idx []int64, _ []int64, _ map[string]int64) []int64 {
				return []int64{idx[0]*100 + idx[1]}
			},
			s2: func(_ []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0] + 1}
			},
			s3: func(_ []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0] * 2}
			},
		},
		Setup: func(mem *sim.Mem) {
			a := mem.Grid("A", 1, n, 0, m)
			b := mem.Grid("B", 0, n, 0, m)
			for i := a.Lo1; i <= a.Hi1; i++ {
				a.Set(i, 0, -i) // J=0 boundary column
			}
			for i := b.Lo1; i <= b.Hi1; i++ {
				b.Set(i, 0, 7*i)
			}
			for j := b.Lo2; j <= b.Hi2; j++ {
				b.Set(0, j, 7000+j)
			}
			mem.Grid("OUT", 1, n, 1, m)
		},
	}
}

// Branchy is an Example 3-shaped loop with a dependence source in each
// branch arm:
//
//	DO I=1,N
//	  S1: A[I+1] = I*3
//	  IF I odd THEN  S2: B[I+2] = A[I] + 1000
//	  ELSE           S3: B[I+2] = A[I] - 5
//	  S4: C[I] = B[I]
//	END DO
//
// Both arms write B[I+2], so S4 depends (distance 2) on whichever arm ran
// two iterations earlier; the untaken arm's step must still be published.
func Branchy(n, stmtCost int64) *codegen.Workload {
	s1 := &deps.Stmt{Name: "S1", Writes: []deps.Ref{ref1("A", 1)}, Cost: stmtCost}
	s2 := &deps.Stmt{Name: "S2", Writes: []deps.Ref{ref1("B", 2)}, Reads: []deps.Ref{ref1("A", 0)}, Cost: stmtCost}
	s3 := &deps.Stmt{Name: "S3", Writes: []deps.Ref{ref1("B", 2)}, Reads: []deps.Ref{ref1("A", 0)}, Cost: stmtCost}
	s4 := &deps.Stmt{Name: "S4", Writes: []deps.Ref{ref1("C", 0)}, Reads: []deps.Ref{ref1("B", 0)}, Cost: stmtCost}
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: n}},
		[]loop.Node{
			loop.S(s1),
			loop.IfNode{
				Name: "parity",
				Cond: func(idx []int64) bool { return idx[0]%2 == 1 },
				Then: []loop.Node{loop.S(s2)},
				Else: []loop.Node{loop.S(s3)},
			},
			loop.S(s4),
		},
	)
	return &codegen.Workload{
		Name: "example3-branchy",
		Nest: nest,
		Sem: map[*deps.Stmt]codegen.Sem{
			s1: func(idx []int64, _ []int64, _ map[string]int64) []int64 { return []int64{idx[0] * 3} },
			s2: func(_ []int64, in []int64, _ map[string]int64) []int64 { return []int64{in[0] + 1000} },
			s3: func(_ []int64, in []int64, _ map[string]int64) []int64 { return []int64{in[0] - 5} },
			s4: func(_ []int64, in []int64, _ map[string]int64) []int64 { return []int64{in[0]} },
		},
		Setup: func(mem *sim.Mem) {
			a := mem.Array("A", 1, n+1)
			b := mem.Array("B", 1, n+2)
			for i := a.Lo; i <= a.Hi; i++ {
				a.Set(i, 50+i)
			}
			for i := b.Lo; i <= b.Hi; i++ {
				b.Set(i, 90+i)
			}
			mem.Array("C", 1, n)
		},
	}
}

// SelfRMW is the read-modify-write shape that once broke the data-oriented
// plan ordering: each iteration updates a forward element in place and a
// later iteration consumes it.
//
//	S1: A[I+1] = A[I+1]*3 + I   (read and write of the same element)
//	S2: OUT[I] = A[I]
func SelfRMW(n, stmtCost int64) *codegen.Workload {
	s1 := &deps.Stmt{
		Name:   "S1",
		Writes: []deps.Ref{ref1("A", 1)},
		Reads:  []deps.Ref{ref1("A", 1)},
		Cost:   stmtCost,
	}
	s2 := &deps.Stmt{
		Name:   "S2",
		Writes: []deps.Ref{ref1("OUT", 0)},
		Reads:  []deps.Ref{ref1("A", 0)},
		Cost:   stmtCost,
	}
	nest := loop.MustNew([]loop.Index{{Name: "I", Lo: 1, Hi: n}},
		[]loop.Node{loop.S(s1), loop.S(s2)})
	return &codegen.Workload{
		Name: "self-rmw",
		Nest: nest,
		Sem: map[*deps.Stmt]codegen.Sem{
			s1: func(idx []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0]*3 + idx[0]}
			},
			s2: func(_ []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0]}
			},
		},
		Setup: func(mem *sim.Mem) {
			a := mem.Array("A", 1, n+1)
			for i := a.Lo; i <= a.Hi; i++ {
				a.Set(i, 7+i)
			}
			mem.Array("OUT", 1, n)
		},
	}
}

// Chain builds a loop with k independent recurrences, one per statement:
//
//	S_j: A_j[I] = A_j[I-1] + j     (j = 1..k)
//
// Every statement is a source of its own distance-1 flow dependence, so the
// statement-oriented scheme needs k counters for full pipelining while the
// process-oriented scheme still needs only X — the storage/performance
// crossover of E12.
func Chain(n int64, k int, stmtCost int64) *codegen.Workload {
	sem := make(map[*deps.Stmt]codegen.Sem)
	var nodes []loop.Node
	arr := func(j int) string { return fmt.Sprintf("A%d", j) }
	for j := 1; j <= k; j++ {
		s := &deps.Stmt{
			Name:   fmt.Sprintf("S%d", j),
			Writes: []deps.Ref{ref1(arr(j), 0)},
			Reads:  []deps.Ref{ref1(arr(j), -1)},
			Cost:   stmtCost,
		}
		jj := int64(j)
		sem[s] = func(_ []int64, in []int64, _ map[string]int64) []int64 {
			return []int64{in[0] + jj}
		}
		nodes = append(nodes, loop.S(s))
	}
	nest := loop.MustNew([]loop.Index{{Name: "I", Lo: 1, Hi: n}}, nodes)
	return &codegen.Workload{
		Name: fmt.Sprintf("chain(k=%d)", k),
		Nest: nest,
		Sem:  sem,
		Setup: func(mem *sim.Mem) {
			for j := 1; j <= k; j++ {
				a := mem.Array(arr(j), 0, n)
				a.Set(0, int64(100*j))
			}
		},
	}
}

// Stencil is the Example 1 relaxation as a generic depth-2 workload
// (A[I,J] = A[I-1,J] + A[I,J-1] over 2..N squared), usable both with full
// coalescing (ProcessOriented) and with outer pipelining (PipelinedOuter).
func Stencil(n, stmtCost int64) *codegen.Workload {
	s1 := &deps.Stmt{
		Name:   "S1",
		Writes: []deps.Ref{ref2("A", 0, 0)},
		Reads:  []deps.Ref{ref2("A", -1, 0), ref2("A", 0, -1)},
		Cost:   stmtCost,
	}
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 2, Hi: n}, {Name: "J", Lo: 2, Hi: n}},
		[]loop.Node{loop.S(s1)},
	)
	return &codegen.Workload{
		Name: "stencil",
		Nest: nest,
		Sem: map[*deps.Stmt]codegen.Sem{
			s1: func(_ []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0] + in[1]}
			},
		},
		Setup: func(mem *sim.Mem) {
			a := mem.Grid("A", 1, n, 1, n)
			for i := int64(1); i <= n; i++ {
				a.Set(i, 1, 3*i+1)
				a.Set(1, i, i)
			}
		},
	}
}

// Recurrence is the first-order-style recurrence A[I] = A[I-d] + I with
// configurable dependence distance d (the pipeline parallelism is d).
func Recurrence(n, d, stmtCost int64) *codegen.Workload {
	s1 := &deps.Stmt{Name: "S1", Writes: []deps.Ref{ref1("A", 0)}, Reads: []deps.Ref{ref1("A", -d)}, Cost: stmtCost}
	nest := loop.MustNew([]loop.Index{{Name: "I", Lo: 1, Hi: n}}, []loop.Node{loop.S(s1)})
	return &codegen.Workload{
		Name: fmt.Sprintf("recurrence(d=%d)", d),
		Nest: nest,
		Sem: map[*deps.Stmt]codegen.Sem{
			s1: func(idx []int64, in []int64, _ map[string]int64) []int64 {
				return []int64{in[0] + idx[0]}
			},
		},
		Setup: func(mem *sim.Mem) {
			a := mem.Array("A", 1-d, n)
			for i := a.Lo; i <= int64(0); i++ {
				a.Set(i, -i*11)
			}
		},
	}
}

// RandomBranchy wraps a random loop's middle statements in a parity branch,
// for property-testing the branch-covering publication rules: the two arms
// get distinct random statements, and a trailing statement reads what both
// arms write.
func RandomBranchy(rng *rand.Rand, n int64) *codegen.Workload {
	const margin = 4
	sem := make(map[*deps.Stmt]codegen.Sem)
	mkStmt := func(name, warr string, woff int64, rarr string, roff int64, k int64) *deps.Stmt {
		s := &deps.Stmt{
			Name:   name,
			Writes: []deps.Ref{ref1(warr, woff)},
			Reads:  []deps.Ref{ref1(rarr, roff)},
			Cost:   int64(1 + rng.Intn(3)),
		}
		sem[s] = func(idx []int64, in []int64, _ map[string]int64) []int64 {
			return []int64{in[0]*2 + idx[0] + k}
		}
		return s
	}
	off := func() int64 { return int64(rng.Intn(2*margin-1) - (margin - 1)) }
	s1 := mkStmt("S1", "A", off(), "B", off(), 11)
	sThen := mkStmt("S2", "B", 2, "A", off(), 23)
	sElse := mkStmt("S3", "B", 2, "A", off(), 37)
	s4 := mkStmt("S4", "C", 0, "B", off(), 41)
	nest := loop.MustNew([]loop.Index{{Name: "I", Lo: 1, Hi: n}}, []loop.Node{
		loop.S(s1),
		loop.IfNode{
			Name: "parity",
			Cond: func(idx []int64) bool { return idx[0]%2 == 0 },
			Then: []loop.Node{loop.S(sThen)},
			Else: []loop.Node{loop.S(sElse)},
		},
		loop.S(s4),
	})
	return &codegen.Workload{
		Name: "random-branchy",
		Nest: nest,
		Sem:  sem,
		Setup: func(mem *sim.Mem) {
			for ai, name := range []string{"A", "B", "C"} {
				a := mem.Array(name, 1-margin, n+margin)
				for i := a.Lo; i <= a.Hi; i++ {
					a.Set(i, int64(ai+1)*500+i)
				}
			}
		},
	}
}

// Random generates a random straight-line constant-distance loop over up to
// three arrays, for property testing: every scheme must produce the same
// memory as serial execution. Semantics are deterministic functions of the
// inputs and the iteration index.
func Random(rng *rand.Rand, n int64, nStmts int) *codegen.Workload {
	arrays := []string{"A", "B", "C"}
	const margin = 4
	var nodes []loop.Node
	sem := make(map[*deps.Stmt]codegen.Sem)
	for si := 0; si < nStmts; si++ {
		s := &deps.Stmt{Name: fmt.Sprintf("S%d", si+1), Cost: int64(1 + rng.Intn(4))}
		s.Writes = []deps.Ref{ref1(arrays[rng.Intn(len(arrays))], int64(rng.Intn(2*margin-1)-(margin-1)))}
		for r := rng.Intn(3); r > 0; r-- {
			s.Reads = append(s.Reads, ref1(arrays[rng.Intn(len(arrays))], int64(rng.Intn(2*margin-1)-(margin-1))))
		}
		k := int64(si + 1)
		sem[s] = func(idx []int64, in []int64, _ map[string]int64) []int64 {
			v := idx[0]*7 + k*13
			for _, x := range in {
				v += 3*x + 1
			}
			return []int64{v}
		}
		nodes = append(nodes, loop.S(s))
	}
	nest := loop.MustNew([]loop.Index{{Name: "I", Lo: 1, Hi: n}}, nodes)
	return &codegen.Workload{
		Name: fmt.Sprintf("random(%d stmts)", nStmts),
		Nest: nest,
		Sem:  sem,
		Setup: func(mem *sim.Mem) {
			for ai, name := range arrays {
				a := mem.Array(name, 1-margin, n+margin)
				for i := a.Lo; i <= a.Hi; i++ {
					a.Set(i, int64(ai+1)*1000+i)
				}
			}
		},
	}
}
