package workloads

import (
	"math/rand"
	"testing"

	"github.com/csrd-repro/datasync/internal/sim"
)

func TestFig21Shape(t *testing.T) {
	w := Fig21(40, 3)
	if w.Nest.Iterations() != 40 || len(w.Nest.Stmts()) != 5 {
		t.Fatalf("shape wrong: %d iters, %d stmts", w.Nest.Iterations(), len(w.Nest.Stmts()))
	}
	mem := sim.NewMem()
	w.Setup(mem)
	a := mem.Lookup("A")
	if a == nil || a.Lo != -3 || a.Hi != 43 {
		t.Fatalf("A bounds = %+v", a)
	}
	if a.Get(5) != 1005 {
		t.Errorf("initial A[5] = %d, want 1005", a.Get(5))
	}
	enforced := w.Nest.LinearGraph().Enforced()
	if len(enforced) != 5 {
		t.Errorf("enforced arcs = %d, want 5", len(enforced))
	}
	// Semantics: run iteration 1 by hand through the Sem closures.
	s1 := w.Nest.Stmts()[0]
	out := w.Sem[s1]([]int64{7}, nil, map[string]int64{})
	if len(out) != 1 || out[0] != 73 {
		t.Errorf("S1 semantics = %v, want [73]", out)
	}
}

func TestNestedShape(t *testing.T) {
	w := Nested(6, 4, 2)
	if w.Nest.Depth() != 2 || w.Nest.Iterations() != 24 {
		t.Fatal("nest shape wrong")
	}
	enf := w.Nest.LinearGraph().Enforced()
	if len(enf) != 2 || enf[0].Dist[0] != 1 || enf[1].Dist[0] != 5 {
		t.Fatalf("linearized distances wrong: %+v", enf)
	}
	mem := sim.NewMem()
	w.Setup(mem)
	if mem.LookupGrid("A") == nil || mem.LookupGrid("B") == nil || mem.LookupGrid("OUT") == nil {
		t.Error("grids not declared")
	}
}

func TestBranchyShape(t *testing.T) {
	w := Branchy(30, 1)
	if !w.Nest.HasBranches() {
		t.Fatal("no branches")
	}
	odd := w.Nest.FlatBody([]int64{3})
	even := w.Nest.FlatBody([]int64{4})
	if odd[1].Name != "S2" || even[1].Name != "S3" {
		t.Errorf("arm resolution wrong: %s / %s", odd[1].Name, even[1].Name)
	}
}

func TestStencilShape(t *testing.T) {
	w := Stencil(10, 2)
	g := w.Nest.Analyze()
	cross := g.CrossArcs()
	if len(cross) != 2 {
		t.Fatalf("stencil arcs = %d, want 2:\n%s", len(cross), g)
	}
	wantVecs := [][2]int64{{0, 1}, {1, 0}}
	for i, a := range cross {
		if a.Dist[0] != wantVecs[i][0] || a.Dist[1] != wantVecs[i][1] {
			t.Errorf("arc %d distance = (%d,%d), want %v", i, a.Dist[0], a.Dist[1], wantVecs[i])
		}
	}
}

func TestRecurrenceShape(t *testing.T) {
	w := Recurrence(20, 3, 1)
	enf := w.Nest.LinearGraph().Enforced()
	if len(enf) != 1 || enf[0].Dist[0] != 3 {
		t.Fatalf("recurrence arcs wrong: %+v", enf)
	}
	mem := sim.NewMem()
	w.Setup(mem)
	if mem.Lookup("A").Get(-1) != 11 {
		t.Errorf("boundary init wrong: %d", mem.Lookup("A").Get(-1))
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	w1 := Random(rand.New(rand.NewSource(5)), 20, 3)
	w2 := Random(rand.New(rand.NewSource(5)), 20, 3)
	s1, s2 := w1.Nest.Stmts(), w2.Nest.Stmts()
	if len(s1) != len(s2) {
		t.Fatal("different statement counts for same seed")
	}
	for i := range s1 {
		if s1[i].Writes[0].Array != s2[i].Writes[0].Array ||
			len(s1[i].Reads) != len(s2[i].Reads) || s1[i].Cost != s2[i].Cost {
			t.Fatalf("statement %d differs for same seed", i)
		}
	}
	m1, m2 := sim.NewMem(), sim.NewMem()
	w1.Setup(m1)
	w2.Setup(m2)
	if diff := m1.Diff(m2); diff != "" {
		t.Errorf("setups differ:\n%s", diff)
	}
}

func TestRandomBranchyShape(t *testing.T) {
	w := RandomBranchy(rand.New(rand.NewSource(9)), 25)
	if !w.Nest.HasBranches() || len(w.Nest.Stmts()) != 4 {
		t.Fatal("branchy shape wrong")
	}
}

func TestRelaxSerialOracle(t *testing.T) {
	r := Relax{N: 5, Cost: 1, G: 1}
	mem, cycles := r.SerialMem()
	if cycles != 16 {
		t.Errorf("serial cycles = %d, want 16", cycles)
	}
	a := mem.LookupGrid("A")
	// A[2][2] = A[1][2] + A[2][1] = 2 + 7 = 9.
	if got := a.Get(2, 2); got != 9 {
		t.Errorf("A[2,2] = %d, want 9", got)
	}
}

func TestFFTSerialIsWalshHadamard(t *testing.T) {
	f := FFT{P: 2, Chunk: 1, Cost: 1}
	mem, _ := f.SerialMem()
	v := mem.LookupGrid("VAL")
	x0, x1 := v.Get(0, 0), v.Get(0, 1)
	if v.Get(1, 0) != x0+x1 || v.Get(1, 1) != x0-x1 {
		t.Errorf("2-point WHT wrong: in (%d,%d) out (%d,%d)", x0, x1, v.Get(1, 0), v.Get(1, 1))
	}
}
