package workloads

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/sim"
)

func TestFFTPairwiseMatchesSerial(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		f := FFT{P: p, Chunk: 4, Cost: 3}
		m := sim.New(sim.Config{Processors: p, BusLatency: 1, SyncOpCost: 1, Modules: p})
		progs := f.Pairwise(m)
		if _, err := m.RunProcesses(progs); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		want, _ := f.SerialMem()
		if diff := want.Diff(m.Mem()); diff != "" {
			t.Fatalf("P=%d pairwise FFT diverged:\n%s", p, diff)
		}
	}
}

func TestFFTWithBarrierMatchesSerial(t *testing.T) {
	f := FFT{P: 8, Chunk: 4, Cost: 3}
	m := sim.New(sim.Config{Processors: 8, BusLatency: 1, MemLatency: 2, SyncOpCost: 1, Modules: 1})
	b := barrier.NewSimCounter(m, 0)
	progs := f.WithBarrier(m, func(pid int, round int64) []sim.Op { return b.Ops(round) })
	if _, err := m.RunProcesses(progs); err != nil {
		t.Fatal(err)
	}
	want, _ := f.SerialMem()
	if diff := want.Diff(m.Mem()); diff != "" {
		t.Fatalf("barrier FFT diverged:\n%s", diff)
	}
}

// TestFFTPairwiseBeatsBarrier is Example 5's claim: with skew-prone global
// barriers replaced by neighbor-only waits, total cycles drop.
func TestFFTPairwiseBeatsBarrier(t *testing.T) {
	f := FFT{P: 8, Chunk: 8, Cost: 5}
	cfg := sim.Config{Processors: 8, BusLatency: 1, MemLatency: 2, SyncOpCost: 1, Modules: 1}

	mPair := sim.New(cfg)
	pairStats, err := mPair.RunProcesses(f.Pairwise(mPair))
	if err != nil {
		t.Fatal(err)
	}
	mBar := sim.New(cfg)
	b := barrier.NewSimCounter(mBar, 0)
	barStats, err := mBar.RunProcesses(f.WithBarrier(mBar, func(pid int, round int64) []sim.Op { return b.Ops(round) }))
	if err != nil {
		t.Fatal(err)
	}
	if pairStats.Cycles >= barStats.Cycles {
		t.Errorf("pairwise (%d cycles) not faster than barrier (%d cycles)",
			pairStats.Cycles, barStats.Cycles)
	}
	// Pairwise sync needs no memory-module traffic at all (registers only).
	if pairStats.ModuleAccesses != 0 {
		t.Errorf("pairwise FFT produced %d module accesses", pairStats.ModuleAccesses)
	}
}

func TestFFTStages(t *testing.T) {
	if (FFT{P: 8}).Stages() != 3 {
		t.Error("Stages(8) != 3")
	}
	_, cycles := (FFT{P: 4, Chunk: 2, Cost: 7}).SerialMem()
	if cycles != 2*8*7 {
		t.Errorf("serial cycles = %d, want 112", cycles)
	}
}
