package workloads

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/sim"
)

func relaxCfg(p int) sim.Config {
	return sim.Config{Processors: p, BusLatency: 1, MemLatency: 2, Modules: p, SyncOpCost: 1, SchedOverhead: 1}
}

func checkRelax(t *testing.T, r Relax, m *sim.Machine, stats sim.Stats) {
	t.Helper()
	want, _ := r.SerialMem()
	if diff := want.Diff(m.Mem()); diff != "" {
		t.Fatalf("relaxation diverged from serial:\n%s", diff)
	}
	_ = stats
}

func TestRelaxPipelinedPCMatchesSerial(t *testing.T) {
	for _, g := range []int64{1, 3, 7} {
		for _, x := range []int{1, 2, 8} {
			r := Relax{N: 16, Cost: 4, G: g}
			m := sim.New(relaxCfg(4))
			prog := r.PipelinedPC(m, x)
			stats, err := m.RunLoop(r.N-1, prog)
			if err != nil {
				t.Fatalf("G=%d X=%d: %v", g, x, err)
			}
			checkRelax(t, r, m, stats)
		}
	}
}

func TestRelaxPipelinedSCMatchesSerial(t *testing.T) {
	r := Relax{N: 12, Cost: 4, G: 1}
	for _, k := range []int{1, 3, int(r.SyncPoints())} {
		m := sim.New(relaxCfg(4))
		prog := r.PipelinedSC(m, k)
		stats, err := m.RunLoop(r.N-1, prog)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		checkRelax(t, r, m, stats)
	}
}

func TestRelaxWavefrontMatchesSerial(t *testing.T) {
	r := Relax{N: 16, Cost: 4, G: 1}
	m := sim.New(relaxCfg(4))
	b := barrier.NewSimCounter(m, 0)
	progs := r.Wavefront(m, func(pid int, round int64) []sim.Op { return b.Ops(round) })
	stats, err := m.RunProcesses(progs)
	if err != nil {
		t.Fatal(err)
	}
	checkRelax(t, r, m, stats)
}

// TestPipelineBeatsWavefront is Example 1's claim: same parallel steps, but
// the asynchronous pipeline wastes fewer cycles than barriered wavefronts.
func TestPipelineBeatsWavefront(t *testing.T) {
	r := Relax{N: 24, Cost: 10, G: 1}
	p := 4

	mPipe := sim.New(relaxCfg(p))
	pipeStats, err := mPipe.RunLoop(r.N-1, r.PipelinedPC(mPipe, 2*p))
	if err != nil {
		t.Fatal(err)
	}
	checkRelax(t, r, mPipe, pipeStats)

	mWave := sim.New(relaxCfg(p))
	b := barrier.NewSimCounter(mWave, 0)
	waveStats, err := mWave.RunProcesses(r.Wavefront(mWave, func(pid int, round int64) []sim.Op { return b.Ops(round) }))
	if err != nil {
		t.Fatal(err)
	}
	checkRelax(t, r, mWave, waveStats)

	if pipeStats.Cycles >= waveStats.Cycles {
		t.Errorf("pipeline (%d cycles) not faster than wavefront+barrier (%d cycles)",
			pipeStats.Cycles, waveStats.Cycles)
	}
	if pipeStats.Utilization() <= waveStats.Utilization() {
		t.Errorf("pipeline utilization %.3f not better than wavefront %.3f",
			pipeStats.Utilization(), waveStats.Utilization())
	}
}

// TestGroupingReducesSyncOps: raising G divides the number of
// synchronization operations at a modest pipeline-delay cost.
func TestGroupingReducesSyncOps(t *testing.T) {
	var prevSync int64 = 1 << 60
	for _, g := range []int64{1, 3, 9} {
		r := Relax{N: 19, Cost: 4, G: g}
		m := sim.New(relaxCfg(4))
		stats, err := m.RunLoop(r.N-1, r.PipelinedPC(m, 8))
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		checkRelax(t, r, m, stats)
		if stats.SyncOps >= prevSync {
			t.Errorf("G=%d sync ops %d not fewer than previous %d", g, stats.SyncOps, prevSync)
		}
		prevSync = stats.SyncOps
	}
}

// TestSCStarvationWithFewCounters: with K << SyncPoints the SC pipeline
// degenerates toward serial; the PC pipeline with a handful of PCs does not.
func TestSCStarvationWithFewCounters(t *testing.T) {
	r := Relax{N: 20, Cost: 6, G: 1}
	p := 4

	mPC := sim.New(relaxCfg(p))
	pcStats, err := mPC.RunLoop(r.N-1, r.PipelinedPC(mPC, 2*p))
	if err != nil {
		t.Fatal(err)
	}
	mSC := sim.New(relaxCfg(p))
	scStats, err := mSC.RunLoop(r.N-1, r.PipelinedSC(mSC, 2))
	if err != nil {
		t.Fatal(err)
	}
	checkRelax(t, r, mSC, scStats)
	// The PC pipeline used 2P counters; the SC run had 2 of the N-1=19
	// sync points' counters and must be clearly slower.
	if scStats.Cycles < pcStats.Cycles*3/2 {
		t.Errorf("SC starvation not visible: SC %d cycles vs PC %d", scStats.Cycles, pcStats.Cycles)
	}
	// With enough SCs the schemes converge to similar pipelining.
	mSCFull := sim.New(relaxCfg(p))
	fullStats, err := mSCFull.RunLoop(r.N-1, r.PipelinedSC(mSCFull, int(r.SyncPoints())))
	if err != nil {
		t.Fatal(err)
	}
	checkRelax(t, r, mSCFull, fullStats)
	if fullStats.Cycles > pcStats.Cycles*13/10 {
		t.Errorf("dedicated SCs should pipeline comparably: SC-full %d vs PC %d", fullStats.Cycles, pcStats.Cycles)
	}
}

func TestRelaxAccounting(t *testing.T) {
	r := Relax{N: 10, Cost: 2, G: 4}
	if r.Fronts() != 17 {
		t.Errorf("Fronts = %d, want 17", r.Fronts())
	}
	if r.SyncPoints() != 3 { // groups [2,5] [6,9] [10,10]
		t.Errorf("SyncPoints = %d, want 3", r.SyncPoints())
	}
	_, cycles := r.SerialMem()
	if cycles != 9*9*2 {
		t.Errorf("serial cycles = %d, want 162", cycles)
	}
}
