package cache

// Determinism-as-refactor-oracle for the simulator's event engine.
//
// Every grid point below runs one workload x scheme pair under one machine
// configuration (clean, bus-coverage, seeded fault plans, armed recovery)
// and folds everything observable about the run into one SHA-256 digest:
// the cache canon key, the full Stats, the complete synchronization trace,
// and — for runs that stall — the error text. The golden digests were
// generated from the engine as of the PR that introduced this test
// (DSORACLE_PRINT=1 go test ./internal/cache -run EngineOracle prints a
// fresh table) and pin the engine's observable behavior bit-for-bit:
// any event-queue, pooling or batching change that perturbs event order,
// cycle accounting, fault schedules or recovery timing fails here first.
//
// The digests must also be independent of GOMAXPROCS: the simulator is
// single-goroutine, so host parallelism may never leak into a run.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

type oraclePoint struct {
	workload string
	build    func() *codegen.Workload
	scheme   string
	mk       func() codegen.Scheme
}

// oraclePoints mirrors the dsbench snapshot grid at a smaller iteration
// count: every flat workload under every iteration-level scheme, plus the
// nested workload under the pipelined-outer scheme.
func oraclePoints() []oraclePoint {
	flat := []struct {
		name  string
		build func() *codegen.Workload
	}{
		{"fig21", func() *codegen.Workload { return workloads.Fig21(40, 4) }},
		{"branchy", func() *codegen.Workload { return workloads.Branchy(40, 4) }},
		{"recurrence", func() *codegen.Workload { return workloads.Recurrence(40, 2, 4) }},
		{"stencil", func() *codegen.Workload { return workloads.Stencil(40, 4) }},
	}
	schemes := []struct {
		name string
		mk   func() codegen.Scheme
	}{
		{"process", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: true} }},
		{"process-basic", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: false} }},
		{"statement", func() codegen.Scheme { return codegen.StatementOriented{} }},
		{"ref", func() codegen.Scheme { return codegen.RefBased{} }},
		{"instance", func() codegen.Scheme { return codegen.NewInstanceBased() }},
	}
	var out []oraclePoint
	for _, w := range flat {
		for _, s := range schemes {
			out = append(out, oraclePoint{w.name, w.build, s.name, s.mk})
		}
	}
	out = append(out, oraclePoint{
		"nested",
		func() *codegen.Workload { return workloads.Nested(8, 6, 4) },
		"pipeline",
		func() codegen.Scheme { return codegen.PipelinedOuter{X: 8, G: 1} },
	})
	return out
}

// oracleConfigs covers the engine's scheduling paths: serialized bus,
// write coverage, zero-latency commits with injected delays/dups, a mixed
// fault plan (delay + stale + dup + slow module), broadcast drops (stalls),
// torn two-field commits, and a healed halt under chunked dispatch.
func oracleConfigs() []struct {
	name string
	cfg  sim.Config
} {
	base := sim.Config{Processors: 4, BusLatency: 1, MemLatency: 2, Modules: 4,
		SyncOpCost: 1, SchedOverhead: 1}
	coverage := base
	coverage.BusLatency = 8
	coverage.BusCoverage = true
	zerolat := sim.Config{Processors: 4, MemLatency: 1, Modules: 2,
		FaultPlan: fault.Plan{Seed: 21, DelayProb: 0.3, DelayCycles: 4, DupProb: 0.3}}
	faulty := base
	faulty.FaultPlan = fault.Plan{Seed: 7, DelayProb: 0.3, DelayCycles: 5,
		StaleProb: 0.3, StaleCycles: 4, DupProb: 0.2, ModuleDelayProb: 0.3, ModuleDelayCycles: 3}
	drop := base
	drop.MaxCycles = 50_000
	drop.FaultPlan = fault.Plan{Seed: 3, DropProb: 0.5}
	torn := base
	torn.MaxCycles = 50_000
	torn.FaultPlan = fault.Plan{Seed: 13, TornProb: 0.4, TornWindow: 3}
	heal := base
	heal.Dispatch = sim.DispatchChunked
	heal.ChunkSize = 4
	heal.FaultPlan = fault.Plan{Seed: 5, HaltProc: 1, HaltAtCycle: 60}
	heal.Recover = sim.Recover{AfterCycles: 30, MaxReclaims: 1}
	return []struct {
		name string
		cfg  sim.Config
	}{
		{"clean", base},
		{"coverage", coverage},
		{"zerolat", zerolat},
		{"faulty", faulty},
		{"drop", drop},
		{"torn", torn},
		{"heal", heal},
	}
}

// engineDigest runs one grid point and digests everything observable.
func engineDigest(t *testing.T, p oraclePoint, cfg sim.Config) string {
	t.Helper()
	w := p.build()
	sch := p.mk()
	res, trace, err := codegen.RunSyncTraced(w, sch, cfg)
	h := sha256.New()
	fmt.Fprintf(h, "key=%x\n", RequestKey(w, sch.Name(), cfg))
	if err != nil {
		fmt.Fprintf(h, "err=%s\n", err.Error())
	}
	stats, jerr := json.Marshal(res.Stats)
	if jerr != nil {
		t.Fatalf("marshal stats: %v", jerr)
	}
	fmt.Fprintf(h, "stats=%s\nserial=%d\ntrace[%d]\n", stats, res.SerialCycles, len(trace))
	for _, e := range trace {
		je, jerr := json.Marshal(e)
		if jerr != nil {
			t.Fatalf("marshal trace event: %v", jerr)
		}
		h.Write(je)
		h.Write([]byte("\n"))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func oracleDigests(t *testing.T) map[string]string {
	t.Helper()
	got := make(map[string]string)
	for _, c := range oracleConfigs() {
		for _, p := range oraclePoints() {
			got[p.workload+"/"+p.scheme+"@"+c.name] = engineDigest(t, p, c.cfg)
		}
	}
	return got
}

// TestEngineOracle pins the engine's observable behavior against the golden
// digests at GOMAXPROCS 1, 4 and 8. Regenerate goldens with
// DSORACLE_PRINT=1 go test ./internal/cache -run EngineOracle -v
// only when an engine change is *intended* to alter observable behavior.
func TestEngineOracle(t *testing.T) {
	if os.Getenv("DSORACLE_PRINT") != "" {
		got := oracleDigests(t)
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("\t%q: %q,\n", n, got[n])
		}
		t.Skip("printed fresh goldens")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gmp := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", gmp), func(t *testing.T) {
			runtime.GOMAXPROCS(gmp)
			got := oracleDigests(t)
			if len(got) != len(engineGoldens) {
				t.Errorf("grid has %d points, goldens cover %d", len(got), len(engineGoldens))
			}
			for name, d := range got {
				want, ok := engineGoldens[name]
				if !ok {
					t.Errorf("%s: no golden digest (regenerate with DSORACLE_PRINT=1)", name)
					continue
				}
				if d != want {
					t.Errorf("%s: digest %s, golden %s — engine behavior changed", name, d, want)
				}
			}
		})
	}
}

// engineGoldens: generated with DSORACLE_PRINT=1 from the pre-refactor
// closure-based engine; the typed-event engine must reproduce every digest.
var engineGoldens = map[string]string{
	"branchy/instance@clean":            "00647a7474da3ebf",
	"branchy/instance@coverage":         "650b9179a0501be4",
	"branchy/instance@drop":             "6118250451eebc6e",
	"branchy/instance@faulty":           "26eaf3e9137c63ee",
	"branchy/instance@heal":             "ff81a5f4dd9d9677",
	"branchy/instance@torn":             "7a444e14119be680",
	"branchy/instance@zerolat":          "d0c2ec3c050c0675",
	"branchy/process-basic@clean":       "bb40378cb8921b71",
	"branchy/process-basic@coverage":    "fe8209c05fa75eb8",
	"branchy/process-basic@drop":        "5cc14768d6f17db1",
	"branchy/process-basic@faulty":      "e07d48aaeb602a64",
	"branchy/process-basic@heal":        "52faaf5af36868cc",
	"branchy/process-basic@torn":        "74cc1da14f15e0d2",
	"branchy/process-basic@zerolat":     "028a0311f42fb8eb",
	"branchy/process@clean":             "7718e4b5d1383156",
	"branchy/process@coverage":          "3c5cc19d91d4f8fb",
	"branchy/process@drop":              "87b19f6ff849f137",
	"branchy/process@faulty":            "b7acb080798378c4",
	"branchy/process@heal":              "a489a68409a9ea02",
	"branchy/process@torn":              "9cf24e06ef905165",
	"branchy/process@zerolat":           "ec1efbe7b1e5d289",
	"branchy/ref@clean":                 "4a3d7d1ee0fe4e30",
	"branchy/ref@coverage":              "ca6fe4d6ea2b7dcc",
	"branchy/ref@drop":                  "66634c6fb068bdc2",
	"branchy/ref@faulty":                "dcaba05d3972ed6c",
	"branchy/ref@heal":                  "8d929097eecbfcca",
	"branchy/ref@torn":                  "552e73657fe73dcb",
	"branchy/ref@zerolat":               "1605faad75a404eb",
	"branchy/statement@clean":           "478881be7bceb127",
	"branchy/statement@coverage":        "75ff986b1674b2d2",
	"branchy/statement@drop":            "929c267748d09fef",
	"branchy/statement@faulty":          "2d1de19cab75801b",
	"branchy/statement@heal":            "9094d4d729c37be3",
	"branchy/statement@torn":            "57e3d05aff77528f",
	"branchy/statement@zerolat":         "691d14867511b7be",
	"fig21/instance@clean":              "2111833fff80acde",
	"fig21/instance@coverage":           "c82f0716a9050b4f",
	"fig21/instance@drop":               "9de32811b4effa9b",
	"fig21/instance@faulty":             "8f220770db547e8f",
	"fig21/instance@heal":               "9900493792b5f372",
	"fig21/instance@torn":               "aacc5bf2d111005d",
	"fig21/instance@zerolat":            "bb7b0c62ab1f4dff",
	"fig21/process-basic@clean":         "ef1b2c3df5d214b7",
	"fig21/process-basic@coverage":      "c7e5a7f5b053f8c4",
	"fig21/process-basic@drop":          "b55063c3890392b1",
	"fig21/process-basic@faulty":        "5ce98974d8b3b2a4",
	"fig21/process-basic@heal":          "789c4fb973e7ea5b",
	"fig21/process-basic@torn":          "69f1a52bbbf8ed16",
	"fig21/process-basic@zerolat":       "2d051f9355fff7b7",
	"fig21/process@clean":               "324e6d4df1fbcfb3",
	"fig21/process@coverage":            "85cb4c6e7d599875",
	"fig21/process@drop":                "76da10c7cb48f303",
	"fig21/process@faulty":              "05da095749ee5e82",
	"fig21/process@heal":                "f7e84b34b8825f13",
	"fig21/process@torn":                "54e517bf8dfc249e",
	"fig21/process@zerolat":             "0f784cf31644d39e",
	"fig21/ref@clean":                   "20a8715c92714fe0",
	"fig21/ref@coverage":                "5b852ffd27f0f476",
	"fig21/ref@drop":                    "f611f1c602029009",
	"fig21/ref@faulty":                  "954fb19e940ca648",
	"fig21/ref@heal":                    "953b6552c240591b",
	"fig21/ref@torn":                    "062ec50a72ce940b",
	"fig21/ref@zerolat":                 "3edcf8977bb5560e",
	"fig21/statement@clean":             "b8aac346547c5d5a",
	"fig21/statement@coverage":          "a4855661e8857fe5",
	"fig21/statement@drop":              "dc13b8688617cac0",
	"fig21/statement@faulty":            "c4dc40d9d8c7ab58",
	"fig21/statement@heal":              "fe3e0f7a9a680b34",
	"fig21/statement@torn":              "96f32b6434dc3749",
	"fig21/statement@zerolat":           "c1bc54d917369f2d",
	"nested/pipeline@clean":             "70f3d009062a16d1",
	"nested/pipeline@coverage":          "1dd9f8366626fad8",
	"nested/pipeline@drop":              "37323c8d94408c6d",
	"nested/pipeline@faulty":            "63938fec67de77a9",
	"nested/pipeline@heal":              "8852bc24135b96b9",
	"nested/pipeline@torn":              "c97f76fbfa1698c4",
	"nested/pipeline@zerolat":           "fd6453087f2af0c3",
	"recurrence/instance@clean":         "f30e75f7d7ddb869",
	"recurrence/instance@coverage":      "0a6fa79b411e85cf",
	"recurrence/instance@drop":          "f6ec2e33e4788b6f",
	"recurrence/instance@faulty":        "6ea7c57e965e2abd",
	"recurrence/instance@heal":          "b143f6dce0865e2d",
	"recurrence/instance@torn":          "7a1e859fdd4083ac",
	"recurrence/instance@zerolat":       "e476eaf8e1e7b009",
	"recurrence/process-basic@clean":    "3110defeb57cdc16",
	"recurrence/process-basic@coverage": "83fe62ac2570b3ec",
	"recurrence/process-basic@drop":     "f557fb06381cd095",
	"recurrence/process-basic@faulty":   "92512fc1aa049d89",
	"recurrence/process-basic@heal":     "2e41b54d558d16cc",
	"recurrence/process-basic@torn":     "34a5143eb303ed64",
	"recurrence/process-basic@zerolat":  "4ecb1761feb8c877",
	"recurrence/process@clean":          "a2f7e70cf0252363",
	"recurrence/process@coverage":       "11e6218edb2d66f2",
	"recurrence/process@drop":           "b06fd5ef6c1cc6d9",
	"recurrence/process@faulty":         "fac0940d2980a8b3",
	"recurrence/process@heal":           "3589603df316a926",
	"recurrence/process@torn":           "e439a4050f99c0ce",
	"recurrence/process@zerolat":        "d7ecdfe9fe0f669e",
	"recurrence/ref@clean":              "005d0b19c5d3a01d",
	"recurrence/ref@coverage":           "6a923316e19ca349",
	"recurrence/ref@drop":               "0b8896e790da9de4",
	"recurrence/ref@faulty":             "b7c09970996dec21",
	"recurrence/ref@heal":               "f1eec8fe6aaf78b2",
	"recurrence/ref@torn":               "8503cff06ffaf2ee",
	"recurrence/ref@zerolat":            "94645ca61f855fd1",
	"recurrence/statement@clean":        "4150e9f07d6d46d7",
	"recurrence/statement@coverage":     "d90b5b5ce3bf977b",
	"recurrence/statement@drop":         "3f83c2dccdc986e9",
	"recurrence/statement@faulty":       "c96ec26d557a8352",
	"recurrence/statement@heal":         "96915df128d2acf8",
	"recurrence/statement@torn":         "51dbd34796741329",
	"recurrence/statement@zerolat":      "9ef944c90c30b902",
	"stencil/instance@clean":            "826bb39893dcaeef",
	"stencil/instance@coverage":         "c542f333b4a6f109",
	"stencil/instance@drop":             "41b03200be3fadb3",
	"stencil/instance@faulty":           "04ab50c4acc96377",
	"stencil/instance@heal":             "cee0d49a3957b7ee",
	"stencil/instance@torn":             "59d597dfb802f9be",
	"stencil/instance@zerolat":          "1fb0d362a13bc7fc",
	"stencil/process-basic@clean":       "d844fe8e3463a479",
	"stencil/process-basic@coverage":    "9617faf4f754cd07",
	"stencil/process-basic@drop":        "f3feb38cc98e3973",
	"stencil/process-basic@faulty":      "f43d911f59d01707",
	"stencil/process-basic@heal":        "4dc9ef9e02d7fde7",
	"stencil/process-basic@torn":        "8534ff84174d26bb",
	"stencil/process-basic@zerolat":     "827965efad247fb9",
	"stencil/process@clean":             "bc6b4cb15bd7720e",
	"stencil/process@coverage":          "8d5fedcbc78e8ce8",
	"stencil/process@drop":              "933d881ef7a80d7d",
	"stencil/process@faulty":            "d00590827d4735a3",
	"stencil/process@heal":              "ba0e62e046862751",
	"stencil/process@torn":              "781b612fcad7a1a2",
	"stencil/process@zerolat":           "6fb5c397ac4b17f9",
	"stencil/ref@clean":                 "9888abd538fcf076",
	"stencil/ref@coverage":              "1516905470198dde",
	"stencil/ref@drop":                  "9a3fa0c4d182b680",
	"stencil/ref@faulty":                "ed6262c33fc10101",
	"stencil/ref@heal":                  "5076e89ba058a5b2",
	"stencil/ref@torn":                  "9f9472d1a74af3b5",
	"stencil/ref@zerolat":               "f6e334f664069e88",
	"stencil/statement@clean":           "994d813d72d486f2",
	"stencil/statement@coverage":        "0f88aff83ed38da5",
	"stencil/statement@drop":            "aed8e407ad97a0b6",
	"stencil/statement@faulty":          "5ec49174b0f609cf",
	"stencil/statement@heal":            "f860b72628615364",
	"stencil/statement@torn":            "66f009b909fe506e",
	"stencil/statement@zerolat":         "fca6b59c2a455f9f",
}
