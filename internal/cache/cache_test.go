package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func keyOf(s string) Key {
	var k Key
	copy(k[:], s)
	return k
}

func TestDoStoresAndHits(t *testing.T) {
	c := New(4)
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }

	v, hit, err := c.Do(keyOf("a"), fn)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do(keyOf("a"), fn)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		i := i
		c.Do(keyOf(fmt.Sprintf("k%d", i)), func() (any, error) { return i, nil })
	}
	if _, ok := c.Get(keyOf("k0")); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := c.Get(keyOf("k2")); !ok {
		t.Error("k2 should be present")
	}
	if st := c.Snapshot(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats %+v, want 1 eviction / 2 entries", st)
	}

	// Touching k1 promotes it: inserting k3 must evict k2, not k1.
	c.Get(keyOf("k1"))
	c.Do(keyOf("k3"), func() (any, error) { return 3, nil })
	if _, ok := c.Get(keyOf("k1")); !ok {
		t.Error("recently used k1 evicted before k2")
	}
	if _, ok := c.Get(keyOf("k2")); ok {
		t.Error("k2 should have been evicted after k1 was touched")
	}
}

// TestSingleflightDedup: concurrent identical requests run the computation
// exactly once and all observe its result.
func TestSingleflightDedup(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	gate := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(keyOf("hot"), func() (any, error) {
				calls.Add(1)
				<-gate // hold every other goroutine in the dedup path
				return "answer", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("computation ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "answer" {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	st := c.Snapshot()
	if st.Dedups+st.Hits != waiters-1 {
		t.Errorf("stats %+v: %d waiters should have been served without computing", st, waiters-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	fail := func() (any, error) { calls++; return nil, boom }

	if _, _, err := c.Do(keyOf("e"), fail); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, _, err := c.Do(keyOf("e"), fail); !errors.Is(err, boom) {
		t.Fatalf("want boom on retry, got %v", err)
	}
	if calls != 2 {
		t.Errorf("failed computation cached: ran %d times, want 2", calls)
	}
	v, hit, err := c.Do(keyOf("e"), func() (any, error) { return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Errorf("recovery run: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines over a
// small key space; run under -race this checks the locking discipline.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(fmt.Sprintf("k%d", (g+i)%6))
				v, _, err := c.Do(k, func() (any, error) { return (g + i) % 6, nil })
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				_ = v
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("cache grew past capacity: %d entries", c.Len())
	}
}

// TestParseKeyRoundTrip: ParseKey inverts String exactly and rejects
// malformed hex and wrong lengths.
func TestParseKeyRoundTrip(t *testing.T) {
	k := keyOf("round-trip")
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("ParseKey(String) = %v, %v; want the original key", got, err)
	}
	for _, bad := range []string{"", "zz", "abcd", k.String() + "00", "g" + k.String()[1:]} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed input", bad)
		}
	}
}

// TestPeekDoesNotTouchStats: Peek observes without moving LRU order or
// counting a hit/miss — observation must not distort effectiveness stats.
func TestPeekDoesNotTouchStats(t *testing.T) {
	c := New(2)
	c.Put(keyOf("a"), 1)
	c.Put(keyOf("b"), 2)

	if v, ok := c.Peek(keyOf("a")); !ok || v.(int) != 1 {
		t.Fatalf("Peek(a) = %v, %v", v, ok)
	}
	if _, ok := c.Peek(keyOf("absent")); ok {
		t.Fatal("Peek found an absent key")
	}
	st := c.Snapshot()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek counted hits/misses: %+v", st)
	}

	// "a" was peeked but not touched: it is still the LRU tail, so a third
	// insert evicts it, not "b".
	c.Put(keyOf("c"), 3)
	if _, ok := c.Peek(keyOf("a")); ok {
		t.Error("peeked key was promoted to recently-used")
	}
	if _, ok := c.Peek(keyOf("b")); !ok {
		t.Error("recently-stored key was evicted instead of the peeked one")
	}
}

// TestPutOverwritesAndRange: Put stores directly (the handoff/replication
// path), overwrites in place, and Range walks a most-recent-first snapshot
// that tolerates concurrent mutation from the callback.
func TestPutOverwritesAndRange(t *testing.T) {
	c := New(4)
	c.Put(keyOf("x"), 1)
	c.Put(keyOf("y"), 2)
	c.Put(keyOf("x"), 10) // overwrite, also moves x to the front

	var got []any
	var first Key
	i := 0
	c.Range(func(k Key, v any) {
		if i == 0 {
			first = k
		}
		i++
		got = append(got, v)
		c.Put(keyOf(fmt.Sprintf("from-range-%d", i)), i) // reentrant: must not deadlock
	})
	if len(got) != 2 {
		t.Fatalf("Range visited %d entries, want 2", len(got))
	}
	if first != keyOf("x") {
		t.Error("Range did not walk most-recently-used first")
	}
	if v, ok := c.Peek(keyOf("x")); !ok || v.(int) != 10 {
		t.Errorf("Put overwrite: Peek(x) = %v, %v, want 10", v, ok)
	}
	if c.Len() != 4 {
		t.Errorf("cache holds %d entries after reentrant puts, want 4 (capacity)", c.Len())
	}
}

// TestRangeConcurrentWithPut: Range's snapshot protects readers from the
// in-place value overwrite Put performs (race detector coverage).
func TestRangeConcurrentWithPut(t *testing.T) {
	c := New(8)
	for i := 0; i < 8; i++ {
		c.Put(keyOf(fmt.Sprintf("k%d", i)), i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Put(keyOf(fmt.Sprintf("k%d", i%8)), i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Range(func(k Key, v any) { _ = v.(int) })
		}
	}()
	wg.Wait()
}
