package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func keyOf(s string) Key {
	var k Key
	copy(k[:], s)
	return k
}

func TestDoStoresAndHits(t *testing.T) {
	c := New(4)
	calls := 0
	fn := func() (any, error) { calls++; return 42, nil }

	v, hit, err := c.Do(keyOf("a"), fn)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do(keyOf("a"), fn)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		i := i
		c.Do(keyOf(fmt.Sprintf("k%d", i)), func() (any, error) { return i, nil })
	}
	if _, ok := c.Get(keyOf("k0")); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := c.Get(keyOf("k2")); !ok {
		t.Error("k2 should be present")
	}
	if st := c.Snapshot(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats %+v, want 1 eviction / 2 entries", st)
	}

	// Touching k1 promotes it: inserting k3 must evict k2, not k1.
	c.Get(keyOf("k1"))
	c.Do(keyOf("k3"), func() (any, error) { return 3, nil })
	if _, ok := c.Get(keyOf("k1")); !ok {
		t.Error("recently used k1 evicted before k2")
	}
	if _, ok := c.Get(keyOf("k2")); ok {
		t.Error("k2 should have been evicted after k1 was touched")
	}
}

// TestSingleflightDedup: concurrent identical requests run the computation
// exactly once and all observe its result.
func TestSingleflightDedup(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	gate := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(keyOf("hot"), func() (any, error) {
				calls.Add(1)
				<-gate // hold every other goroutine in the dedup path
				return "answer", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("computation ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "answer" {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	st := c.Snapshot()
	if st.Dedups+st.Hits != waiters-1 {
		t.Errorf("stats %+v: %d waiters should have been served without computing", st, waiters-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	fail := func() (any, error) { calls++; return nil, boom }

	if _, _, err := c.Do(keyOf("e"), fail); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, _, err := c.Do(keyOf("e"), fail); !errors.Is(err, boom) {
		t.Fatalf("want boom on retry, got %v", err)
	}
	if calls != 2 {
		t.Errorf("failed computation cached: ran %d times, want 2", calls)
	}
	v, hit, err := c.Do(keyOf("e"), func() (any, error) { return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Errorf("recovery run: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines over a
// small key space; run under -race this checks the locking discipline.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(fmt.Sprintf("k%d", (g+i)%6))
				v, _, err := c.Do(k, func() (any, error) { return (g + i) % 6, nil })
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				_ = v
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("cache grew past capacity: %d entries", c.Len())
	}
}
