package cache

import (
	"crypto/sha256"
	"fmt"
	"io"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
	"github.com/csrd-repro/datasync/internal/loop"
	"github.com/csrd-repro/datasync/internal/sim"
)

// canonVersion prefixes every canonical encoding. Bump it whenever the
// encoding or the meaning of any encoded field changes, so stale entries
// from an older canonical form can never be served.
const canonVersion = "dsserve-canon-v1"

// RequestKey is the content address of one evaluation request: a canonical
// hash of the workload's program AST, the scheme descriptor, the simulator
// configuration, and any extra discriminators (e.g. the verification mode).
//
// Canonicalization covers everything the deterministic simulator's output
// depends on: loop index names and bounds, the body tree (statement names,
// costs, and affine read/write references; branch node names and both
// arms), the scheme's parameterized name (schemes render their parameters
// into Name(), e.g. "process(X=8,improved)"), and every Config field.
// Statement semantics are functions and cannot be hashed directly, but they
// are determined by the workload identity the AST encodes: builtin
// workloads bind semantics to their (named) statement structure, and
// .do-file workloads derive semantics from exactly the parsed AST.
func RequestKey(w *codegen.Workload, scheme string, cfg sim.Config, extra ...string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", canonVersion)
	writeWorkload(h, w)
	fmt.Fprintf(h, "scheme\x00%s\x00", scheme)
	writeConfig(h, cfg)
	for _, e := range extra {
		fmt.Fprintf(h, "extra\x00%s\x00", e)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// CompileKey is the content address of one Go-source compile request (the
// /compile endpoint and the dsgo CLI). The frontend is deterministic, so
// the source bytes fully determine the lowered workloads and diagnostics;
// the key therefore hashes the raw source (length-prefixed), the labeling
// filename (it appears in diagnostic positions), the canonical
// parameterized scheme names, and the machine configuration, under its own
// "compile" section so a compile address can never collide with a run or
// verify address for related content.
func CompileKey(filename string, src []byte, schemes []string, cfg sim.Config) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00compile\x00", canonVersion)
	fmt.Fprintf(h, "file\x00%s\x00", filename)
	fmt.Fprintf(h, "src[%d]\x00", len(src))
	h.Write(src)
	fmt.Fprintf(h, "\x00schemes[%d]\x00", len(schemes))
	for _, s := range schemes {
		fmt.Fprintf(h, "%s\x00", s)
	}
	writeConfig(h, cfg)
	var k Key
	h.Sum(k[:0])
	return k
}

func writeWorkload(h io.Writer, w *codegen.Workload) {
	fmt.Fprintf(h, "workload\x00%s\x00depth=%d\x00", w.Name, w.Nest.Depth())
	for _, ix := range w.Nest.Indexes {
		fmt.Fprintf(h, "index\x00%s\x00%d\x00%d\x00", ix.Name, ix.Lo, ix.Hi)
	}
	writeBody(h, w.Nest.Body)
}

func writeBody(h io.Writer, body []loop.Node) {
	fmt.Fprintf(h, "body[%d]\x00", len(body))
	for _, n := range body {
		switch v := n.(type) {
		case loop.StmtNode:
			writeStmt(h, v.S)
		case loop.IfNode:
			// Branch predicates are functions; the node name is their
			// canonical identity (builders name branches by condition).
			fmt.Fprintf(h, "if\x00%s\x00", v.Name)
			writeBody(h, v.Then)
			fmt.Fprintf(h, "else\x00")
			writeBody(h, v.Else)
		default:
			fmt.Fprintf(h, "node?%T\x00", n)
		}
	}
}

func writeStmt(h io.Writer, s *deps.Stmt) {
	fmt.Fprintf(h, "stmt\x00%s\x00cost=%d\x00", s.Name, s.Cost)
	writeRefs(h, "w", s.Writes)
	writeRefs(h, "r", s.Reads)
}

func writeRefs(h io.Writer, kind string, refs []deps.Ref) {
	fmt.Fprintf(h, "%s[%d]\x00", kind, len(refs))
	for _, r := range refs {
		fmt.Fprintf(h, "%s\x00", r.Array)
		for _, a := range r.Index {
			writeAffine(h, a)
		}
	}
}

func writeAffine(h io.Writer, a expr.Affine) {
	fmt.Fprintf(h, "aff(%d", a.Const)
	for _, c := range a.Coef {
		fmt.Fprintf(h, ",%d", c)
	}
	fmt.Fprintf(h, ")\x00")
}

// writeConfig encodes every Config field explicitly: adding a field to
// sim.Config (or a knob to fault.Plan) without extending this encoding is
// caught by TestRequestKeyCoversConfig.
func writeConfig(h io.Writer, c sim.Config) {
	fmt.Fprintf(h, "config\x00P=%d bus=%d cov=%v mem=%d mod=%d sync=%d sched=%d data=%d max=%d disp=%d chunk=%d\x00",
		c.Processors, c.BusLatency, c.BusCoverage, c.MemLatency, c.Modules,
		c.SyncOpCost, c.SchedOverhead, c.DataLatency, c.MaxCycles, int(c.Dispatch), c.ChunkSize)
	// The fault plan is appended only when armed: a disabled plan leaves
	// the encoding byte-identical to the pre-fault format, so clean runs
	// keep their established content addresses, while any armed plan gets
	// its own address and can never poison a clean entry.
	if c.FaultPlan.Enabled() {
		fmt.Fprintf(h, "fault\x00%s\x00", c.FaultPlan.Canon())
	}
	// Likewise the recovery section: a recovered run schedules differently
	// from a clean run, so an armed Recover must address its own entry —
	// while a disarmed one hashes identically to the pre-recovery format.
	if c.Recover.Enabled() {
		fmt.Fprintf(h, "recover\x00%s\x00", c.Recover.Canon())
	}
}
