// Package cache provides the content-addressed result cache behind dsserve.
//
// The deterministic simulator makes exact result caching possible: two
// requests with the same canonical content — program AST, synchronization
// scheme, machine configuration — provably produce the same measurements,
// so a cache entry is not an approximation but the answer. Keys are SHA-256
// hashes of a canonical encoding (canon.go); the store is a bounded LRU
// with singleflight-style deduplication so concurrent identical requests
// compute once and share the result.
package cache

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
)

// Key is a content address: the SHA-256 of a canonical request encoding.
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex rendering String produces. The cluster layer's
// cache-transfer protocol carries keys this way (entries travel as JSON),
// and the receiver needs the binary key back to place the entry on the ring.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("cache: parse key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("cache: parse key %q: %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Ring returns the key's coordinate on a 64-bit consistent-hash ring: the
// first 8 bytes of the SHA-256 content address, big-endian. The canonical
// hash is uniform over the key space, so the prefix is a uniform ring
// position — the property that makes the content-addressed cache an exact
// sharding unit for the cluster layer.
func (k Key) Ring() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Dedups    int64 `json:"dedups"` // waits piggybacked on an in-flight computation
	Evictions int64 `json:"evictions"`
}

type entry struct {
	key Key
	val any
}

// call is one in-flight computation other requesters can wait on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded LRU result cache with singleflight deduplication.
// The zero value is not usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[Key]*list.Element
	flight   map[Key]*call

	hits, misses, dedups, evictions int64
}

// New builds a cache holding at most capacity entries (capacity < 1 means 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[Key]*list.Element),
		flight:   make(map[Key]*call),
	}
}

// Get returns the cached value for the key, if present, marking it recently
// used. It does not wait for in-flight computations.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Do returns the cached value for the key, computing it with fn on a miss.
// Concurrent Do calls for the same key run fn once: later callers block
// until the first completes and share its result. hit reports whether the
// caller avoided running fn itself (a stored entry or a deduplicated wait).
// Errors are returned to every waiter but never cached, so a failed
// computation can be retried.
func (c *Cache) Do(k Key, fn func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).val, true, nil
	}
	if fl, ok := c.flight[k]; ok {
		c.dedups++
		c.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	c.misses++
	fl := &call{done: make(chan struct{})}
	c.flight[k] = fl
	c.mu.Unlock()

	fl.val, fl.err = fn()

	c.mu.Lock()
	delete(c.flight, k)
	if fl.err == nil {
		c.store(k, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, false, fl.err
}

// Peek returns the cached value for the key without touching the LRU order
// or the hit/miss counters. The cluster layer uses it for replica-hit
// accounting and cache export: observation must not distort effectiveness
// statistics or recency.
func (c *Cache) Peek(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Put stores a value directly, bypassing singleflight. Handed-off and
// replicated entries arrive this way: the value was computed (and content-
// addressed) elsewhere, so there is nothing to deduplicate. An existing
// entry is overwritten — determinism makes any two values under one key
// semantically identical.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(k, v)
}

// Range calls f for every stored entry, most recently used first, over a
// snapshot taken under the lock (f itself runs without it, so it may call
// back into the cache). In-flight computations are not included.
func (c *Cache) Range(f func(k Key, v any)) {
	c.mu.Lock()
	snap := make([]entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		snap = append(snap, *el.Value.(*entry))
	}
	c.mu.Unlock()
	for _, e := range snap {
		f(e.key, e.val)
	}
}

// store inserts a value under the lock, evicting the LRU tail past capacity.
func (c *Cache) store(k Key, v any) {
	if el, ok := c.byKey[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[k] = c.ll.PushFront(&entry{key: k, val: v})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.evictions++
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Snapshot returns the current effectiveness counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Dedups:    c.dedups,
		Evictions: c.evictions,
	}
}
