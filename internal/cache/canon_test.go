package cache

import (
	"reflect"
	"testing"

	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

var canonCfg = sim.Config{Processors: 8, BusLatency: 1, MemLatency: 2,
	Modules: 8, SyncOpCost: 1, SchedOverhead: 1}

// TestRequestKeyStable: rebuilding the same workload must produce the same
// key — content addressing, not pointer identity.
func TestRequestKeyStable(t *testing.T) {
	k1 := RequestKey(workloads.Fig21(40, 4), "process(X=8,improved)", canonCfg)
	k2 := RequestKey(workloads.Fig21(40, 4), "process(X=8,improved)", canonCfg)
	if k1 != k2 {
		t.Errorf("identical requests hash differently: %s vs %s", k1, k2)
	}
}

// TestRequestKeySensitivity: every component of the request must reach the
// hash — workload shape, parameters, scheme, each config field, extras.
func TestRequestKeySensitivity(t *testing.T) {
	base := func() Key {
		return RequestKey(workloads.Fig21(40, 4), "ref", canonCfg)
	}
	k0 := base()

	variants := map[string]Key{
		"workload kind":   RequestKey(workloads.Recurrence(40, 2, 4), "ref", canonCfg),
		"workload extent": RequestKey(workloads.Fig21(41, 4), "ref", canonCfg),
		"statement cost":  RequestKey(workloads.Fig21(40, 5), "ref", canonCfg),
		"scheme":          RequestKey(workloads.Fig21(40, 4), "process(X=8,improved)", canonCfg),
		"extra":           RequestKey(workloads.Fig21(40, 4), "ref", canonCfg, "mode=verify"),
	}
	cfgMuts := map[string]func(*sim.Config){
		"Processors":    func(c *sim.Config) { c.Processors = 4 },
		"BusLatency":    func(c *sim.Config) { c.BusLatency = 2 },
		"BusCoverage":   func(c *sim.Config) { c.BusCoverage = true },
		"MemLatency":    func(c *sim.Config) { c.MemLatency = 3 },
		"Modules":       func(c *sim.Config) { c.Modules = 2 },
		"SyncOpCost":    func(c *sim.Config) { c.SyncOpCost = 0 },
		"SchedOverhead": func(c *sim.Config) { c.SchedOverhead = 2 },
		"DataLatency":   func(c *sim.Config) { c.DataLatency = 1 },
		"MaxCycles":     func(c *sim.Config) { c.MaxCycles = 12345 },
		"Dispatch":      func(c *sim.Config) { c.Dispatch = sim.DispatchChunked },
		"ChunkSize":     func(c *sim.Config) { c.ChunkSize = 8 },
		"FaultPlan":     func(c *sim.Config) { c.FaultPlan = fault.Plan{DropProb: 0.01} },
		"Recover":       func(c *sim.Config) { c.Recover = sim.Recover{AfterCycles: 100} },
	}
	// Armed recovery sections must separate from each other too.
	recoverMuts := map[string]func(*sim.Recover){
		"AfterCycles": func(r *sim.Recover) { r.AfterCycles = 200 },
		"MaxReclaims": func(r *sim.Recover) { r.MaxReclaims = 3 },
	}
	baseRecover := sim.Recover{AfterCycles: 100, MaxReclaims: 1}
	for name, mut := range recoverMuts {
		cfg := canonCfg
		cfg.Recover = baseRecover
		mut(&cfg.Recover)
		variants["recover."+name] = RequestKey(workloads.Fig21(40, 4), "ref", cfg)
	}
	{
		cfg := canonCfg
		cfg.Recover = baseRecover
		variants["recover.base"] = RequestKey(workloads.Fig21(40, 4), "ref", cfg)
	}
	// Armed fault plans must be distinguished from each other too: any
	// single-knob change to an enabled plan is a different address.
	faultMuts := map[string]func(*fault.Plan){
		"Seed":        func(p *fault.Plan) { p.Seed = 99 },
		"DropProb":    func(p *fault.Plan) { p.DropProb = 0.02 },
		"DelayProb":   func(p *fault.Plan) { p.DelayProb = 0.5 },
		"DelayCycles": func(p *fault.Plan) { p.DelayCycles = 16 },
		"TornOrder":   func(p *fault.Plan) { p.TornOrder = fault.OwnerFirst },
		"StallMillis": func(p *fault.Plan) { p.StallIter = 1; p.StallMillis = 9 },
	}
	basePlan := fault.Plan{Seed: 1, DropProb: 0.01, DelayProb: 0.1, DelayCycles: 8, TornProb: 0.1}
	for name, mut := range faultMuts {
		cfg := canonCfg
		cfg.FaultPlan = basePlan
		mut(&cfg.FaultPlan)
		variants["fault."+name] = RequestKey(workloads.Fig21(40, 4), "ref", cfg)
	}
	{
		cfg := canonCfg
		cfg.FaultPlan = basePlan
		variants["fault.base"] = RequestKey(workloads.Fig21(40, 4), "ref", cfg)
	}
	for name, mut := range cfgMuts {
		cfg := canonCfg
		mut(&cfg)
		variants["config."+name] = RequestKey(workloads.Fig21(40, 4), "ref", cfg)
	}

	seen := map[Key]string{k0: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, k)
		}
		seen[k] = name
	}
	if k0 != base() {
		t.Error("base key not reproducible")
	}
}

// TestRequestKeyCoversConfig pins the field counts of sim.Config and of its
// fault.Plan / sim.Recover sub-structs: when a field (or knob) is added,
// this fails until writeConfig / the Canon methods (and the sensitivity
// tables above) are extended, keeping the canonical encoding exhaustive.
func TestRequestKeyCoversConfig(t *testing.T) {
	if n := reflect.TypeOf(sim.Config{}).NumField(); n != 13 {
		t.Errorf("sim.Config has %d fields; update cache.writeConfig and this test (encodes 13)", n)
	}
	if n := reflect.TypeOf(fault.Plan{}).NumField(); n != 19 {
		t.Errorf("fault.Plan has %d fields; update fault.Plan.Canon and this test (encodes 19)", n)
	}
	if n := reflect.TypeOf(sim.Recover{}).NumField(); n != 2 {
		t.Errorf("sim.Recover has %d fields; update sim.Recover.Canon and this test (encodes 2)", n)
	}
}

// TestDisabledPlanKeepsCleanKey: an explicitly-zero fault plan must hash to
// the same address as no plan at all — faults off is provably zero-effect
// on the cache.
func TestDisabledPlanKeepsCleanKey(t *testing.T) {
	plain := RequestKey(workloads.Fig21(40, 4), "ref", canonCfg)
	cfg := canonCfg
	cfg.FaultPlan = fault.Plan{}
	if k := RequestKey(workloads.Fig21(40, 4), "ref", cfg); k != plain {
		t.Errorf("zero fault plan changed the key: %s vs %s", k, plain)
	}
	// A seed alone does not arm the plan, so it must not change the key
	// either (nothing is injected; the run is identical).
	cfg.FaultPlan = fault.Plan{Seed: 42}
	if k := RequestKey(workloads.Fig21(40, 4), "ref", cfg); k != plain {
		t.Errorf("unarmed seeded plan changed the key: %s vs %s", k, plain)
	}
	// A zero Recover is disarmed; a MaxReclaims tweak alone does not arm it
	// (AfterCycles >= 1 is the arming condition). Recovered runs hash
	// identically to clean runs exactly when the recovery section is off.
	cfg = canonCfg
	cfg.Recover = sim.Recover{}
	if k := RequestKey(workloads.Fig21(40, 4), "ref", cfg); k != plain {
		t.Errorf("zero Recover changed the key: %s vs %s", k, plain)
	}
	cfg.Recover = sim.Recover{MaxReclaims: 2}
	if k := RequestKey(workloads.Fig21(40, 4), "ref", cfg); k != plain {
		t.Errorf("unarmed Recover changed the key: %s vs %s", k, plain)
	}
}

// TestRequestKeyBranches: branch structure (names, arm contents) must be
// part of the address.
func TestRequestKeyBranches(t *testing.T) {
	k1 := RequestKey(workloads.Branchy(40, 4), "ref", canonCfg)
	k2 := RequestKey(workloads.Branchy(40, 4), "ref", canonCfg)
	k3 := RequestKey(workloads.Branchy(41, 4), "ref", canonCfg)
	if k1 != k2 {
		t.Error("branchy workload key unstable")
	}
	if k1 == k3 {
		t.Error("branchy extent not hashed")
	}
}

// TestCompileKey: the compile address is deterministic and sensitive to
// every input — source bytes, labeling filename, scheme selection (and its
// order), and machine configuration — and lives in its own canon section so
// it can never collide with a RequestKey.
func TestCompileKey(t *testing.T) {
	src := []byte("package p\nfunc f(a []int) {\n\tfor i := 1; i < 9; i++ {\n\t\ta[i] = a[i-1]\n\t}\n}\n")
	schemes := []string{"process(X=8,improved)", "ref"}
	base := CompileKey("k.go", src, schemes, canonCfg)
	if base != CompileKey("k.go", src, schemes, canonCfg) {
		t.Error("identical compile requests hash differently")
	}
	variants := map[string]Key{
		"source":       CompileKey("k.go", append([]byte(nil), append(src, ' ')...), schemes, canonCfg),
		"filename":     CompileKey("other.go", src, schemes, canonCfg),
		"schemes":      CompileKey("k.go", src, []string{"ref"}, canonCfg),
		"scheme order": CompileKey("k.go", src, []string{"ref", "process(X=8,improved)"}, canonCfg),
		"config":       CompileKey("k.go", src, schemes, func() sim.Config { c := canonCfg; c.Processors = 4; return c }()),
	}
	for what, k := range variants {
		if k == base {
			t.Errorf("changing %s did not change the compile key", what)
		}
	}
}
