package lang

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
	"github.com/csrd-repro/datasync/internal/loop"
	"github.com/csrd-repro/datasync/internal/sim"
)

// ---- Expression AST with executable semantics ----

type env struct {
	idx    []int64
	in     []int64
	locals map[string]int64
}

type exprNode interface{ eval(e *env) int64 }

type numExpr int64

func (n numExpr) eval(*env) int64 { return int64(n) }

type indexExpr int

func (k indexExpr) eval(e *env) int64 { return e.idx[k] }

type localExpr string

func (l localExpr) eval(e *env) int64 { return e.locals[string(l)] }

// refExpr reads the statement's slot-th array read value (bound by codegen).
type refExpr struct{ slot int }

func (r refExpr) eval(e *env) int64 { return e.in[r.slot] }

type binExpr struct {
	op   byte
	l, r exprNode
}

func (b binExpr) eval(e *env) int64 {
	lv, rv := b.l.eval(e), b.r.eval(e)
	switch b.op {
	case '+':
		return lv + rv
	case '-':
		return lv - rv
	case '*':
		return lv * rv
	}
	panic("lang: unknown operator")
}

// ---- Parser ----

type parser struct {
	toks    []token
	pos     int
	indexes []loop.Index
	stmtSeq int
	sem     map[*deps.Stmt]codegen.Sem
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) skipNL() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("line %d: expected %q, got %s", t.line, s, t)
	}
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("line %d: expected %s, got %s", t.line, kw, t)
	}
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) indexOf(name string) int {
	for k, ix := range p.indexes {
		if strings.EqualFold(ix.Name, name) {
			return k
		}
	}
	return -1
}

// Parse parses a loop program and returns an executable workload. Array
// elements are initialized deterministically from the array name and
// coordinates, so two schemes over the same source see identical inputs.
func Parse(src string) (*codegen.Workload, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sem: make(map[*deps.Stmt]codegen.Sem)}
	p.skipNL()
	for p.atKeyword("DO") {
		if err := p.parseDoHeader(); err != nil {
			return nil, err
		}
		p.skipNL()
	}
	if len(p.indexes) == 0 {
		return nil, fmt.Errorf("lang: program must start with a DO header")
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	for range p.indexes {
		if err := p.expectKeyword("END"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("DO"); err != nil {
			return nil, err
		}
		p.skipNL()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after END DO: %s", p.peek())
	}
	nest, err := loop.New(p.indexes, body)
	if err != nil {
		return nil, err
	}
	w := &codegen.Workload{Name: "dsl", Nest: nest, Sem: p.sem}
	w.Setup = DefaultSetup(nest)
	return w, nil
}

// parseDoHeader parses "DO I = lo, hi".
func (p *parser) parseDoHeader() error {
	if err := p.expectKeyword("DO"); err != nil {
		return err
	}
	name := p.next()
	if name.kind != tokIdent {
		return fmt.Errorf("line %d: expected index name, got %s", name.line, name)
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	lo, err := p.parseInt()
	if err != nil {
		return err
	}
	if err := p.expectPunct(","); err != nil {
		return err
	}
	hi, err := p.parseInt()
	if err != nil {
		return err
	}
	if hi < lo {
		return fmt.Errorf("lang: DO %s = %d, %d is empty", name.text, lo, hi)
	}
	p.indexes = append(p.indexes, loop.Index{Name: strings.ToUpper(name.text), Lo: lo, Hi: hi})
	return nil
}

func (p *parser) parseInt() (int64, error) {
	neg := false
	if t := p.peek(); t.kind == tokPunct && t.text == "-" {
		p.pos++
		neg = true
	}
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("line %d: expected number, got %s", t.line, t)
	}
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}

// parseBody parses statements and IF blocks until END or ELSE.
func (p *parser) parseBody() ([]loop.Node, error) {
	var nodes []loop.Node
	for {
		p.skipNL()
		switch {
		case p.peek().kind == tokEOF, p.atKeyword("END"), p.atKeyword("ELSE"):
			return nodes, nil
		case p.atKeyword("IF"):
			n, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, loop.S(s))
		}
	}
}

// parseIf parses IF cond THEN body [ELSE body] END IF.
func (p *parser) parseIf() (loop.Node, error) {
	if err := p.expectKeyword("IF"); err != nil {
		return nil, err
	}
	cond, name, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("THEN"); err != nil {
		return nil, err
	}
	thenBody, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	var elseBody []loop.Node
	if p.atKeyword("ELSE") {
		p.pos++
		elseBody, err = p.parseBody()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IF"); err != nil {
		return nil, err
	}
	return loop.IfNode{Name: name, Cond: cond, Then: thenBody, Else: elseBody}, nil
}

// parseCond parses ODD(I), EVEN(I), or I <cmp> number.
func (p *parser) parseCond() (func(idx []int64) bool, string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, "", fmt.Errorf("line %d: expected condition, got %s", t.line, t)
	}
	upper := strings.ToUpper(t.text)
	if upper == "ODD" || upper == "EVEN" {
		if err := p.expectPunct("("); err != nil {
			return nil, "", err
		}
		v := p.next()
		k := p.indexOf(v.text)
		if v.kind != tokIdent || k < 0 {
			return nil, "", fmt.Errorf("line %d: %s needs a loop index, got %s", v.line, upper, v)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, "", err
		}
		want := int64(1)
		if upper == "EVEN" {
			want = 0
		}
		name := fmt.Sprintf("%s(%s)", upper, strings.ToUpper(v.text))
		return func(idx []int64) bool {
			m := idx[k] % 2
			if m < 0 {
				m += 2
			}
			return m == want
		}, name, nil
	}
	k := p.indexOf(t.text)
	if k < 0 {
		return nil, "", fmt.Errorf("line %d: unknown index %q in condition", t.line, t.text)
	}
	cmp := p.next()
	if cmp.kind != tokCompare {
		return nil, "", fmt.Errorf("line %d: expected comparison, got %s", cmp.line, cmp)
	}
	rhs, err := p.parseInt()
	if err != nil {
		return nil, "", err
	}
	name := fmt.Sprintf("%s%s%d", strings.ToUpper(t.text), cmp.text, rhs)
	op := cmp.text
	return func(idx []int64) bool {
		v := idx[k]
		switch op {
		case "<":
			return v < rhs
		case "<=":
			return v <= rhs
		case ">":
			return v > rhs
		case ">=":
			return v >= rhs
		case "==":
			return v == rhs
		case "!=":
			return v != rhs
		}
		return false
	}, name, nil
}

// parseStmt parses "[label:] lhs = expr [@cost]".
func (p *parser) parseStmt() (*deps.Stmt, error) {
	first := p.next()
	if first.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected statement, got %s", first.line, first)
	}
	label := ""
	lhsName := first.text
	if t := p.peek(); t.kind == tokPunct && t.text == ":" {
		p.pos++
		label = first.text
		lhs := p.next()
		if lhs.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected assignment target, got %s", lhs.line, lhs)
		}
		lhsName = lhs.text
	}
	p.stmtSeq++
	if label == "" {
		label = fmt.Sprintf("S%d", p.stmtSeq)
	}
	st := &deps.Stmt{Name: label, Cost: 1}

	// LHS: array reference or scalar local.
	var writeLocal string
	if t := p.peek(); t.kind == tokPunct && t.text == "[" {
		ref, err := p.parseRefIndices(lhsName)
		if err != nil {
			return nil, err
		}
		st.Writes = []deps.Ref{ref}
	} else {
		if p.indexOf(lhsName) >= 0 {
			return nil, fmt.Errorf("lang: cannot assign to loop index %s", lhsName)
		}
		writeLocal = lhsName
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr(st)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokPunct && t.text == "@" {
		p.pos++
		cost, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if cost < 0 {
			return nil, fmt.Errorf("lang: negative cost on %s", label)
		}
		st.Cost = cost
	}
	if t := p.peek(); t.kind != tokNewline && t.kind != tokEOF {
		return nil, p.errf("unexpected %s after statement %s", t, label)
	}
	isWrite := len(st.Writes) > 0
	local := writeLocal
	p.sem[st] = func(idx []int64, in []int64, locals map[string]int64) []int64 {
		v := rhs.eval(&env{idx: idx, in: in, locals: locals})
		if isWrite {
			return []int64{v}
		}
		locals[local] = v
		return nil
	}
	return st, nil
}

// parseRefIndices parses "[aff, aff, ...]" for the named array.
func (p *parser) parseRefIndices(array string) (deps.Ref, error) {
	if err := p.expectPunct("["); err != nil {
		return deps.Ref{}, err
	}
	var subs []expr.Affine
	for {
		a, err := p.parseAffine()
		if err != nil {
			return deps.Ref{}, err
		}
		subs = append(subs, a)
		t := p.next()
		if t.kind == tokPunct && t.text == "]" {
			break
		}
		if !(t.kind == tokPunct && t.text == ",") {
			return deps.Ref{}, fmt.Errorf("line %d: expected , or ] in subscript, got %s", t.line, t)
		}
	}
	if len(subs) > 2 {
		return deps.Ref{}, fmt.Errorf("lang: array %s has %d subscripts; at most 2 supported", array, len(subs))
	}
	return deps.Ref{Array: strings.ToUpper(array), Index: subs}, nil
}

// parseAffine parses an affine combination of loop indexes and constants.
func (p *parser) parseAffine() (expr.Affine, error) {
	depth := len(p.indexes)
	out := expr.Const(depth, 0)
	sign := int64(1)
	for {
		t := p.next()
		switch {
		case t.kind == tokNumber:
			c := t.num
			// Optional "* IDENT" after a coefficient.
			if nt := p.peek(); nt.kind == tokPunct && nt.text == "*" {
				p.pos++
				v := p.next()
				k := p.indexOf(v.text)
				if v.kind != tokIdent || k < 0 {
					return out, fmt.Errorf("line %d: expected loop index after %d*, got %s", v.line, c, v)
				}
				out = out.Add(expr.Scaled(depth, k, sign*c, 0))
			} else {
				out = out.AddConst(sign * c)
			}
		case t.kind == tokIdent:
			k := p.indexOf(t.text)
			if k < 0 {
				return out, fmt.Errorf("line %d: unknown index %q in subscript", t.line, t.text)
			}
			out = out.Add(expr.Scaled(depth, k, sign, 0))
		default:
			return out, fmt.Errorf("line %d: unexpected %s in subscript", t.line, t)
		}
		nt := p.peek()
		if nt.kind == tokPunct && (nt.text == "+" || nt.text == "-") {
			sign = 1
			if nt.text == "-" {
				sign = -1
			}
			p.pos++
			continue
		}
		return out, nil
	}
}

// parseExpr parses the right-hand side: terms joined by + and - (with *
// binding tighter), where a term is a number, a loop index, a local scalar,
// or an array reference (which becomes a read of the statement).
func (p *parser) parseExpr(st *deps.Stmt) (exprNode, error) {
	left, err := p.parseTerm(st)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.pos++
			right, err := p.parseTerm(st)
			if err != nil {
				return nil, err
			}
			left = binExpr{op: t.text[0], l: left, r: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseTerm(st *deps.Stmt) (exprNode, error) {
	left, err := p.parseFactor(st)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && t.text == "*" {
			p.pos++
			right, err := p.parseFactor(st)
			if err != nil {
				return nil, err
			}
			left = binExpr{op: '*', l: left, r: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseFactor(st *deps.Stmt) (exprNode, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return numExpr(t.num), nil
	case t.kind == tokPunct && t.text == "-":
		inner, err := p.parseFactor(st)
		if err != nil {
			return nil, err
		}
		return binExpr{op: '-', l: numExpr(0), r: inner}, nil
	case t.kind == tokPunct && t.text == "(":
		inner, err := p.parseExpr(st)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokIdent:
		if nt := p.peek(); nt.kind == tokPunct && nt.text == "[" {
			ref, err := p.parseRefIndices(t.text)
			if err != nil {
				return nil, err
			}
			slot := len(st.Reads)
			st.Reads = append(st.Reads, ref)
			return refExpr{slot: slot}, nil
		}
		if k := p.indexOf(t.text); k >= 0 {
			return indexExpr(k), nil
		}
		return localExpr(t.text), nil
	default:
		return nil, fmt.Errorf("line %d: unexpected %s in expression", t.line, t)
	}
}

// DefaultSetup builds a Setup that declares every referenced array with
// bounds inferred from the subscripts over the iteration space (affine
// subscripts reach their extrema at the corner index vectors), initialized
// deterministically from name and coordinates. It is shared with the Go
// frontend so a .do program and its Go-source twin see identical inputs.
func DefaultSetup(n *loop.Nest) func(mem *sim.Mem) {
	type bounds struct {
		dims     int
		min, max [2]int64
	}
	const huge = int64(1) << 62
	all := make(map[string]*bounds)
	corners := cornerVectors(n)
	for _, s := range n.Stmts() {
		for _, r := range append(append([]deps.Ref{}, s.Writes...), s.Reads...) {
			b := all[r.Array]
			if b == nil {
				b = &bounds{dims: len(r.Index), min: [2]int64{huge, huge}, max: [2]int64{-huge, -huge}}
				all[r.Array] = b
			}
			for d, sub := range r.Index {
				for _, idx := range corners {
					v := sub.Eval(idx)
					if v < b.min[d] {
						b.min[d] = v
					}
					if v > b.max[d] {
						b.max[d] = v
					}
				}
			}
		}
	}
	return func(mem *sim.Mem) {
		for name, b := range all {
			nameV := int64(0)
			for _, ch := range name {
				nameV = nameV*31 + int64(ch)
			}
			if b.dims == 1 {
				a := mem.Array(name, b.min[0], b.max[0])
				for i := a.Lo; i <= a.Hi; i++ {
					a.Set(i, nameV%1000+13*i)
				}
			} else {
				g := mem.Grid(name, b.min[0], b.max[0], b.min[1], b.max[1])
				for i := g.Lo1; i <= g.Hi1; i++ {
					for j := g.Lo2; j <= g.Hi2; j++ {
						g.Set(i, j, nameV%1000+13*i+7*j)
					}
				}
			}
		}
	}
}

// cornerVectors returns the 2^depth corner index vectors of the space.
func cornerVectors(n *loop.Nest) [][]int64 {
	depth := n.Depth()
	out := make([][]int64, 0, 1<<depth)
	for mask := 0; mask < 1<<depth; mask++ {
		idx := make([]int64, depth)
		for k, ix := range n.Indexes {
			if mask&(1<<k) != 0 {
				idx[k] = ix.Hi
			} else {
				idx[k] = ix.Lo
			}
		}
		out = append(out, idx)
	}
	return out
}
