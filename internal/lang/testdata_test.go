package lang

import (
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/sim"
)

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestTestdataProgramsUnderAllSchemes parses every .do program under
// testdata and runs it under every applicable scheme on the simulator plus
// the runtime executor, each checked for serial equivalence.
func TestTestdataProgramsUnderAllSchemes(t *testing.T) {
	files, err := filepath.Glob("testdata/*.do")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	cfg := sim.Config{Processors: 4, BusLatency: 1, MemLatency: 2, Modules: 4, SyncOpCost: 1}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			parse := func() *codegen.Workload {
				w, err := Parse(string(src))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				return w
			}
			schemes := []codegen.Scheme{
				codegen.ProcessOriented{X: 4, Improved: true},
				codegen.ProcessOriented{X: 2, Improved: false},
				codegen.StatementOriented{},
				codegen.StatementOriented{K: 1},
				codegen.RefBased{},
				codegen.NewInstanceBased(),
			}
			for _, sch := range schemes {
				if _, err := codegen.Run(parse(), sch, cfg); err != nil {
					t.Errorf("%s: %v", sch.Name(), err)
				}
			}
			w := parse()
			if w.Nest.Depth() == 2 {
				if _, err := codegen.Run(parse(), codegen.PipelinedOuter{X: 4, G: 2}, cfg); err != nil {
					t.Errorf("pipeline: %v", err)
				}
				if _, err := codegen.RunRuntimePipelined(parse(), 4, 3, 2); err != nil {
					t.Errorf("pipeline runtime: %v", err)
				}
			}
			if _, err := codegen.RunRuntime(parse(), 4, 3); err != nil {
				t.Errorf("runtime: %v", err)
			}
		})
	}
}

// FuzzParse: the parser must return errors, never panic, on arbitrary
// input; accepted programs must produce a valid nest. Seeded with every
// shipped testdata program plus hand-picked near-miss inputs.
func FuzzParse(f *testing.F) {
	files, err := filepath.Glob("testdata/*.do")
	if err != nil || len(files) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, fn := range files {
		b, err := os.ReadFile(fn)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	seeds := []string{
		"DO I = 1, 9\n A[I] = A[I-1]\nEND DO",
		"DO I = 1, 4\nDO J = 1, 4\n A[I,J] = A[I-1,J]\nEND DO\nEND DO",
		"DO I = 1, 9\nIF ODD(I) THEN\nA[I]=1\nELSE\nA[I]=2\nEND IF\nEND DO",
		"DO I = 1, 9\n S: t = A[2*I-1] + (3*I) @5\nEND DO",
		"DO I = -3, 3\n A[I] = I\nEND DO",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			return
		}
		w, err := Parse(src)
		if err != nil {
			return
		}
		if w.Nest == nil || w.Nest.Iterations() < 1 {
			t.Fatalf("accepted program with invalid nest: %q", src)
		}
		// Dependence analysis must accept any parsed nest without panicking
		// (its cost depends on reference counts, not loop extents).
		if g := w.Nest.Analyze(); g == nil {
			t.Fatalf("Analyze returned nil graph for: %q", src)
		}
		// Setup must not panic either — but skip giant iteration spaces or
		// subscripts, whose (legitimate) array allocation would stall the
		// fuzzer on multi-gigabyte makes.
		if w.Nest.Iterations() > 10_000 {
			return
		}
		for _, s := range w.Nest.Stmts() {
			for _, r := range append(append([]deps.Ref{}, s.Writes...), s.Reads...) {
				for _, ix := range r.Index {
					if abs64(ix.Const) > 10_000 {
						return
					}
					for _, c := range ix.Coef {
						if abs64(c) > 10_000 {
							return
						}
					}
				}
			}
		}
		mem := sim.NewMem()
		w.Setup(mem)
	})
}
