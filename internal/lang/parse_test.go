package lang

import (
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/sim"
)

const fig21Src = `
# The loop of Fig 2.1.
DO I = 1, 40
  S1: A[I+3] = I*10 + 3
  S2: t2 = A[I+1]
  S3: t3 = A[I+2]
  S4: A[I] = t2 + t3
  S5: OUT[I] = A[I-1]
END DO
`

func TestParseFig21Graph(t *testing.T) {
	w, err := Parse(fig21Src)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Nest.Analyze()
	cross := g.CrossArcs()
	if len(cross) != 7 {
		t.Fatalf("cross arcs = %d, want 7:\n%s", len(cross), g)
	}
	enforced := g.Linearize(w.Nest.Extents()).Enforced()
	if len(enforced) != 5 {
		t.Fatalf("enforced arcs = %d, want 5", len(enforced))
	}
	// The statement names survive.
	if w.Nest.Stmts()[3].Name != "S4" {
		t.Errorf("statement 3 named %s", w.Nest.Stmts()[3].Name)
	}
}

func TestParsedWorkloadRunsUnderSchemes(t *testing.T) {
	cfg := sim.Config{Processors: 4, BusLatency: 1, MemLatency: 2, Modules: 4, SyncOpCost: 1}
	schemes := []codegen.Scheme{
		codegen.ProcessOriented{X: 4, Improved: true},
		codegen.StatementOriented{},
		codegen.RefBased{},
		codegen.NewInstanceBased(),
	}
	for _, sch := range schemes {
		w, err := Parse(fig21Src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codegen.Run(w, sch, cfg); err != nil {
			t.Errorf("%s: %v", sch.Name(), err)
		}
	}
}

func TestParseNested(t *testing.T) {
	src := `
DO I = 1, 6
DO J = 1, 5
  A[I,J] = I*100 + J @3
  B[I,J] = A[I,J-1] + 1
  OUT[I,J] = B[I-1,J-1] * 2
END DO
END DO
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if w.Nest.Depth() != 2 || w.Nest.Iterations() != 30 {
		t.Fatalf("nest shape wrong: depth %d iters %d", w.Nest.Depth(), w.Nest.Iterations())
	}
	if w.Nest.Stmts()[0].Cost != 3 {
		t.Errorf("cost suffix not applied: %d", w.Nest.Stmts()[0].Cost)
	}
	enforced := w.Nest.LinearGraph().Enforced()
	if len(enforced) != 2 || enforced[0].Dist[0] != 1 || enforced[1].Dist[0] != 6 {
		t.Fatalf("linearized distances wrong: %+v", enforced)
	}
	if _, err := codegen.Run(w, codegen.ProcessOriented{X: 4, Improved: true},
		sim.Config{Processors: 3, BusLatency: 1, SyncOpCost: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestParseBranches(t *testing.T) {
	src := `
DO I = 1, 30
  A[I+1] = I*3
  IF ODD(I) THEN
    B[I+2] = A[I] + 1000
  ELSE
    B[I+2] = A[I] - 5
  END IF
  C[I] = B[I]
END DO
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Nest.HasBranches() {
		t.Fatal("branches not detected")
	}
	odd := w.Nest.FlatBody([]int64{3})
	even := w.Nest.FlatBody([]int64{4})
	if len(odd) != 3 || len(even) != 3 || odd[1] == even[1] {
		t.Fatalf("branch arms not resolved: odd=%d even=%d", len(odd), len(even))
	}
	for _, sch := range []codegen.Scheme{
		codegen.ProcessOriented{X: 2, Improved: true},
		codegen.StatementOriented{},
		codegen.RefBased{},
	} {
		w, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codegen.Run(w, sch,
			sim.Config{Processors: 3, BusLatency: 1, MemLatency: 2, Modules: 2, SyncOpCost: 1}); err != nil {
			t.Errorf("%s: %v", sch.Name(), err)
		}
	}
}

func TestParseComparisons(t *testing.T) {
	src := `
DO I = 1, 10
  IF I <= 5 THEN
    A[I] = 1
  ELSE
    A[I] = 2
  END IF
END DO
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lo := w.Nest.FlatBody([]int64{5})
	hi := w.Nest.FlatBody([]int64{6})
	if lo[0] == hi[0] {
		t.Error("comparison condition not discriminating")
	}
}

func TestParseScaledSubscripts(t *testing.T) {
	src := `
DO I = 1, 10
  A[2*I] = I
  t = A[2*I-2]
END DO
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	arcs := w.Nest.Analyze().CrossArcs()
	if len(arcs) != 1 || arcs[0].Dist[0] != 1 || arcs[0].Kind != deps.Flow {
		t.Fatalf("scaled subscript dependence wrong: %+v", arcs)
	}
}

func TestParseExpressionSemantics(t *testing.T) {
	src := `
DO I = 1, 4
  A[I] = (I + 2) * 3 - -1
END DO
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMem()
	w.Setup(mem)
	prog := func(iter int64) []sim.Op { return nil }
	_ = prog
	// Run serially through codegen with a single processor.
	if _, err := codegen.Run(w, codegen.ProcessOriented{X: 1, Improved: true},
		sim.Config{Processors: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                   // no DO
		"DO I = 1, 0\nA[I]=1\nEND DO",        // empty range
		"DO I = 1, 5\nA[J]=1\nEND DO",        // unknown index
		"DO I = 1, 5\nA[I]=1",                // missing END DO
		"DO I = 1, 5\nI = 3\nEND DO",         // assign to index
		"DO I = 1, 5\nA[I] = $\nEND DO",      // bad character
		"DO I = 1, 5\nA[I,J,I]= 1\nEND DO",   // too many dims / unknown J
		"DO I = 1, 5\nIF ODD(I)\nEND DO",     // missing THEN
		"DO I = 1, 5\nA[I] = 1 2\nEND DO",    // trailing junk
		"DO I = 1, 5\nA[I] = 1 @-2\nEND DO",  // negative cost
		"DO I = 1, 5\nA[I]=1\nEND DO\nextra", // trailing input
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid program:\n%s", src)
		}
	}
}

func TestParseSetupBounds(t *testing.T) {
	w, err := Parse(fig21Src)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMem()
	w.Setup(mem)
	a := mem.Lookup("A")
	if a == nil || a.Lo != 0 || a.Hi != 43 {
		t.Fatalf("A bounds = %+v, want [0,43]", a)
	}
	out := mem.Lookup("OUT")
	if out == nil || out.Lo != 1 || out.Hi != 40 {
		t.Fatalf("OUT bounds wrong: %+v", out)
	}
	// Initial values are deterministic.
	mem2 := sim.NewMem()
	w.Setup(mem2)
	if diff := mem.Diff(mem2); diff != "" {
		t.Errorf("Setup not deterministic:\n%s", diff)
	}
}

func TestLexLineNumbersInErrors(t *testing.T) {
	_, err := Parse("DO I = 1, 5\nA[I] = ^\nEND DO")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}
