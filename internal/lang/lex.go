// Package lang implements a small textual language for the Fortran-style
// DO loops the paper analyzes, so loops can be fed to the dependence
// analyzer and the synchronization code generators without writing Go:
//
//	DO I = 1, 100
//	  S1: A[I+3] = I*10 + 3
//	  S2: t2 = A[I+1]
//	  S3: t3 = A[I+2]
//	  S4: A[I] = t2 + t3
//	  S5: OUT[I] = A[I-1]
//	END DO
//
// Nested loops stack DO headers; conditionals use IF ODD(I) THEN ... ELSE
// ... END IF (also EVEN(I) and comparisons like I < 10). A statement cost
// in simulator cycles may be given with a trailing @N. Parsed programs
// carry executable semantics: Parse returns a codegen.Workload whose
// statements evaluate their right-hand sides over int64 model arrays.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokPunct // single-rune punctuation or operator
	tokCompare
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex splits the input into tokens. Comments run from '#' to end of line.
// Newlines are significant (they terminate statements).
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokKind, text string, num int64) {
		toks = append(toks, token{kind: k, text: text, num: num, line: line})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\\n", 0)
			line++
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			var n int64
			for _, d := range src[i:j] {
				n = n*10 + int64(d-'0')
			}
			emit(tokNumber, src[i:j], n)
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			emit(tokIdent, src[i:j], 0)
			i = j
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			op := src[i:j]
			if op == "=" {
				emit(tokPunct, "=", 0)
			} else {
				emit(tokCompare, op, 0)
			}
			i = j
		case strings.ContainsRune("[](),:+-*@", rune(c)):
			emit(tokPunct, string(c), 0)
			i++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	emit(tokEOF, "", 0)
	return toks, nil
}
