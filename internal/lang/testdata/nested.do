# Example 2: multiply-nested Doacross, coalesced to lpid distances 1 and M+1.
DO I = 1, 10
DO J = 1, 8
  S1: A[I,J] = I*100 + J     @3
  S2: B[I,J] = A[I,J-1] + 1  @2
  S3: C[I,J] = B[I-1,J-1]*2  @2
END DO
END DO
