# The canonical loop of Fig 2.1 (Su & Yew, ISCA 1989).
DO I = 1, 60
  S1: A[I+3] = I*10 + 3  @2
  S2: t2 = A[I+1]
  S3: t3 = A[I+2]
  S4: A[I] = t2 + t3     @2
  S5: OUT[I] = A[I-1]
END DO
