# Example 3: dependence sources inside branches.
DO I = 1, 50
  S1: A[I+1] = I*3
  IF ODD(I) THEN
    S2: B[I+2] = A[I] + 1000
  ELSE
    S3: B[I+2] = A[I] - 5
  END IF
  S4: C[I] = B[I]
END DO
