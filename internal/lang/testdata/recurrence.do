# Third-order recurrence: three independent chains pipeline.
DO I = 1, 80
  S1: A[I] = A[I-3] + 2*I - 1  @4
END DO
