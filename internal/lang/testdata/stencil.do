# Example 1's four-point relaxation as a 2-deep nest.
DO I = 2, 12
DO J = 2, 12
  S1: A[I,J] = A[I-1,J] + A[I,J-1]  @3
END DO
END DO
