package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
)

// latencyBounds are the histogram bucket upper bounds, in seconds.
var latencyBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

type histogram struct {
	counts [len0 + 1]int64 // one per bound, plus +Inf
	sum    float64
	n      int64
}

const len0 = 8 // len(latencyBounds); fixed so histogram is an array

func (h *histogram) observe(sec float64) {
	i := sort.SearchFloat64s(latencyBounds, sec)
	h.counts[i]++
	h.sum += sec
	h.n++
}

// Metrics is the observability surface: request counters by route and
// status, and per-scheme job latency histograms, rendered in the Prometheus
// text exposition format together with pool and cache gauges.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // "route|code" -> count
	jobLat   map[string]*histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]int64),
		jobLat:   make(map[string]*histogram),
	}
}

// ObserveRequest counts one finished HTTP request.
func (m *Metrics) ObserveRequest(route string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	m.mu.Unlock()
}

// ObserveJob records one executed (non-cached) job's latency under its
// scheme name.
func (m *Metrics) ObserveJob(scheme string, d time.Duration) {
	m.mu.Lock()
	h := m.jobLat[scheme]
	if h == nil {
		h = &histogram{}
		m.jobLat[scheme] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// Resilience carries the circuit-breaker, fault-injection and recovery
// gauges into Render.
type Resilience struct {
	BreakerState   BreakerState
	BreakerOpens   int64
	WatchdogTrips  int64
	InjectedFaults int64
	// RecoveredRuns counts runs completed via ownership reclamation;
	// RecoveryCost totals the quarantine cycles those recoveries charged.
	RecoveredRuns int64
	RecoveryCost  int64
}

// Render writes the exposition text: pool gauges, cache counters, breaker
// and fault-injection state, request totals and latency histograms, with
// label sets sorted for deterministic output.
func (m *Metrics) Render(w io.Writer, pool *Pool, cs cache.Stats, res Resilience) {
	fmt.Fprintf(w, "# HELP dsserve_queue_depth Jobs waiting for a worker.\n# TYPE dsserve_queue_depth gauge\ndsserve_queue_depth %d\n", pool.QueueDepth())
	fmt.Fprintf(w, "# TYPE dsserve_queue_capacity gauge\ndsserve_queue_capacity %d\n", pool.QueueCap())
	fmt.Fprintf(w, "# HELP dsserve_jobs_inflight Jobs currently executing.\n# TYPE dsserve_jobs_inflight gauge\ndsserve_jobs_inflight %d\n", pool.InFlight())
	fmt.Fprintf(w, "# TYPE dsserve_workers gauge\ndsserve_workers %d\n", pool.Workers())
	fmt.Fprintf(w, "# TYPE dsserve_jobs_completed_total counter\ndsserve_jobs_completed_total %d\n", pool.Completed())

	fmt.Fprintf(w, "# TYPE dsserve_cache_entries gauge\ndsserve_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# HELP dsserve_cache_hits_total Requests answered from the content-addressed cache.\n# TYPE dsserve_cache_hits_total counter\ndsserve_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE dsserve_cache_misses_total counter\ndsserve_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP dsserve_cache_dedups_total Concurrent identical requests that piggybacked on an in-flight computation.\n# TYPE dsserve_cache_dedups_total counter\ndsserve_cache_dedups_total %d\n", cs.Dedups)
	fmt.Fprintf(w, "# TYPE dsserve_cache_evictions_total counter\ndsserve_cache_evictions_total %d\n", cs.Evictions)

	fmt.Fprintf(w, "# HELP dsserve_breaker_state Circuit breaker state: 0 closed, 1 half-open, 2 open.\n# TYPE dsserve_breaker_state gauge\ndsserve_breaker_state %d\n", int(res.BreakerState))
	fmt.Fprintf(w, "# TYPE dsserve_breaker_opens_total counter\ndsserve_breaker_opens_total %d\n", res.BreakerOpens)
	fmt.Fprintf(w, "# HELP dsserve_watchdog_trips_total Stall-class job failures (diagnosed deadlocks and livelocks).\n# TYPE dsserve_watchdog_trips_total counter\ndsserve_watchdog_trips_total %d\n", res.WatchdogTrips)
	fmt.Fprintf(w, "# HELP dsserve_injected_faults_total Faults the simulator injected across all executed runs.\n# TYPE dsserve_injected_faults_total counter\ndsserve_injected_faults_total %d\n", res.InjectedFaults)
	fmt.Fprintf(w, "# HELP dsserve_recovered_runs_total Runs completed via PC ownership reclamation after a processor halt.\n# TYPE dsserve_recovered_runs_total counter\ndsserve_recovered_runs_total %d\n", res.RecoveredRuns)
	fmt.Fprintf(w, "# HELP dsserve_recovery_cost_cycles_total Quarantine cycles charged by recoveries (halt detection to reclamation).\n# TYPE dsserve_recovery_cost_cycles_total counter\ndsserve_recovery_cost_cycles_total %d\n", res.RecoveryCost)

	m.mu.Lock()
	defer m.mu.Unlock()

	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# TYPE dsserve_requests_total counter\n")
	for _, k := range keys {
		route, code := k, ""
		if i := strings.LastIndexByte(k, '|'); i >= 0 {
			route, code = k[:i], k[i+1:]
		}
		fmt.Fprintf(w, "dsserve_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}

	schemes := make([]string, 0, len(m.jobLat))
	for s := range m.jobLat {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	fmt.Fprintf(w, "# HELP dsserve_job_latency_seconds Executed job latency by scheme (cache hits excluded).\n# TYPE dsserve_job_latency_seconds histogram\n")
	for _, s := range schemes {
		h := m.jobLat[s]
		cum := int64(0)
		for i, b := range latencyBounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "dsserve_job_latency_seconds_bucket{scheme=%q,le=\"%g\"} %d\n", s, b, cum)
		}
		cum += h.counts[len0]
		fmt.Fprintf(w, "dsserve_job_latency_seconds_bucket{scheme=%q,le=\"+Inf\"} %d\n", s, cum)
		fmt.Fprintf(w, "dsserve_job_latency_seconds_sum{scheme=%q} %g\n", s, h.sum)
		fmt.Fprintf(w, "dsserve_job_latency_seconds_count{scheme=%q} %d\n", s, h.n)
	}
}
