package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation worker count (default 4).
	Workers int
	// QueueCap is the job queue capacity (default 64). A full queue answers
	// 429 with a Retry-After hint.
	QueueCap int
	// JobTimeout bounds one job's context (default 30s).
	JobTimeout time.Duration
	// CacheSize is the result cache capacity in entries (default 1024).
	CacheSize int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// BreakerThreshold is how many consecutive stall-class failures
	// (diagnosed deadlocks/livelocks under a fault plan) open the circuit
	// breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds load before
	// admitting a half-open trial (default 5s).
	BreakerCooldown time.Duration
	// Logger receives structured request logs (default: slog.Default).
	Logger *slog.Logger
	// HealthInfo, when set, contributes extra fields to the /healthz body
	// (the cluster layer reports node ID, ring version and peer liveness
	// through it). Keys that collide with the built-in fields are ignored.
	HealthInfo func() map[string]any
	// MetricsAppend, when set, writes extra Prometheus exposition text after
	// the built-in metrics (the cluster layer appends peer-forward, steal
	// and tenant-shed counters through it).
	MetricsAppend func(w io.Writer)
	// OnCacheFill, when set, is called once per fresh cache fill (a computed
	// result, not a hit) with the portable encoding of the stored entry. It
	// must be cheap: the cluster layer enqueues the entry for asynchronous
	// K-successor replication and returns.
	OnCacheFill func(key cache.Key, e CacheEntry)
	// Degraded, when set, lets an embedding layer mark the node unhealthy:
	// when it returns true, /healthz answers 503 with status "degraded" and
	// the returned reason (the cluster layer reports a majority of peers
	// demoted this way, so load balancers stop routing to a minority
	// partition). Draining takes precedence.
	Degraded func() (bool, string)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 30 * time.Second
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Server evaluates synchronization programs over the bounded pool with the
// content-addressed cache in front.
type Server struct {
	opts     Options
	pool     *Pool
	cache    *cache.Cache
	metrics  *Metrics
	breaker  *Breaker
	log      *slog.Logger
	draining atomic.Bool

	// watchdogTrips counts stall-class job failures (diagnosed deadlocks
	// and livelocks); injectedFaults totals the faults the simulator
	// actually injected across runs; recoveredRuns counts runs that
	// completed only because ownership reclamation healed a halted
	// processor, and recoveryCost totals the quarantine cycles those
	// recoveries charged. All feed /metrics.
	watchdogTrips  atomic.Int64
	injectedFaults atomic.Int64
	recoveredRuns  atomic.Int64
	recoveryCost   atomic.Int64

	// simRun executes one simulation; tests substitute it to model slow or
	// failing jobs deterministically.
	simRun func(w *codegen.Workload, sch codegen.Scheme, cfg sim.Config) (codegen.Result, error)
}

// NewServer builds a Server and starts its worker pool.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:    opts,
		pool:    NewPool(opts.Workers, opts.QueueCap, opts.JobTimeout),
		cache:   cache.New(opts.CacheSize),
		metrics: NewMetrics(),
		breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		log:     opts.Logger,
		simRun:  codegen.Run,
	}
}

// Breaker exposes the circuit breaker (for introspection and tests).
func (s *Server) Breaker() *Breaker { return s.breaker }

// Pool exposes the worker pool (for drain and introspection).
func (s *Server) Pool() *Pool { return s.pool }

// Drain marks the server draining (healthz turns 503), stops accepting
// jobs, and waits for queued and in-flight jobs to finish or ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.Drain(ctx)
}

// Handler returns the routed HTTP handler with request logging attached.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /verify", s.handleVerify)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logged(mux)
}

// ---- request/response types ----

// RunRequest asks for one simulation: workload x scheme x machine.
type RunRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Scheme   SchemeSpec   `json:"scheme"`
	Config   ConfigSpec   `json:"config"`
}

// RunResponse is one measured run. Cached reports whether the result came
// from the content-addressed cache (including a singleflight piggyback);
// Key is the canonical content address.
type RunResponse struct {
	Workload     string            `json:"workload"`
	Scheme       string            `json:"scheme"`
	Key          string            `json:"key"`
	Cached       bool              `json:"cached"`
	SerialCycles int64             `json:"serialCycles"`
	Cycles       int64             `json:"cycles"`
	Speedup      float64           `json:"speedup"`
	Utilization  float64           `json:"utilization"`
	SyncOps      int64             `json:"syncOps"`
	WaitSync     int64             `json:"waitSyncCycles"`
	BusTx        int64             `json:"busBroadcasts"`
	BusSaved     int64             `json:"busSaved"`
	ModuleAcc    int64             `json:"moduleAccesses"`
	Polls        int64             `json:"polls"`
	Foot         codegen.Footprint `json:"footprint"`
	// Recovered reports that the run completed only because ownership
	// reclamation healed a halted processor; Recovery carries the report.
	Recovered bool                `json:"recovered,omitempty"`
	Recovery  *sim.RecoveryReport `json:"recovery,omitempty"`
	Stats     sim.Stats           `json:"stats"`
}

// VerifyRequest asks for a dsvet verdict on one workload x scheme pair.
type VerifyRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Scheme   SchemeSpec   `json:"scheme"`
	Config   ConfigSpec   `json:"config"`
	// Dynamic additionally executes the pair and replays the sync trace
	// through the vector-clock checker.
	Dynamic  bool  `json:"dynamic,omitempty"`
	MaxIters int64 `json:"maxIters,omitempty"`
}

// VerifyResponse carries the static (and optionally dynamic) reports.
type VerifyResponse struct {
	Workload string            `json:"workload"`
	Scheme   string            `json:"scheme"`
	Key      string            `json:"key"`
	Cached   bool              `json:"cached"`
	OK       bool              `json:"ok"`
	Static   *verify.Report    `json:"static"`
	Dynamic  *verify.DynReport `json:"dynamic,omitempty"`
	RunError string            `json:"runError,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- canonical content addresses ----
//
// These are the single source of request identity, shared by the handlers
// (cache addressing) and the cluster router (ownership): a request's canon
// key decides both where its result is cached and which node owns it, so
// the two can never disagree.

// RunKey computes the canonical content address of a run request.
func RunKey(req RunRequest) (cache.Key, error) {
	wl, err := req.Workload.Build()
	if err != nil {
		return cache.Key{}, err
	}
	sch, err := req.Scheme.Build()
	if err != nil {
		return cache.Key{}, err
	}
	return cache.RequestKey(wl, sch.Name(), req.Config.SimConfig()), nil
}

// VerifyKey computes the canonical content address of a verify request: the
// run address extended with the verification-mode discriminator.
func VerifyKey(req VerifyRequest) (cache.Key, error) {
	wl, err := req.Workload.Build()
	if err != nil {
		return cache.Key{}, err
	}
	sch, err := req.Scheme.Build()
	if err != nil {
		return cache.Key{}, err
	}
	return cache.RequestKey(wl, sch.Name(), req.Config.SimConfig(),
		fmt.Sprintf("mode=verify dynamic=%v maxIters=%d", req.Dynamic, req.MaxIters)), nil
}

// CompileRequestKey computes the canonical content address of a compile
// request (defaults applied, scheme selection canonicalized to built names).
func CompileRequestKey(req CompileRequest) (cache.Key, error) {
	filename := req.Filename
	if filename == "" {
		filename = "input.go"
	}
	names, err := compileSchemeNames(req.Schemes)
	if err != nil {
		return cache.Key{}, err
	}
	return cache.CompileKey(filename, []byte(req.Source), names, req.Config.SimConfig()), nil
}

// ---- evaluation ----

// runResult is the cache value for /run: everything except the per-request
// Cached/Key decoration.
type runResult struct {
	resp RunResponse
}

// evalRun answers one run request through cache, singleflight and pool.
// wait selects the backpressure policy: false returns ErrQueueFull to the
// caller (turned into 429); true retries until ctx expires (sweep points).
func (s *Server) evalRun(ctx context.Context, wl *codegen.Workload, sspec SchemeSpec, cfg sim.Config) (RunResponse, bool, error) {
	sch, err := sspec.Build()
	if err != nil {
		return RunResponse{}, false, err
	}
	if err := cfg.Check(); err != nil {
		return RunResponse{}, false, err
	}
	if ok, retryAfter := s.breaker.Allow(); !ok {
		return RunResponse{}, false, &breakerError{retryAfter: retryAfter}
	}
	key := cache.RequestKey(wl, sch.Name(), cfg)
	v, hit, err := s.cache.Do(key, func() (any, error) {
		return s.executeRun(ctx, wl, sspec, cfg)
	})
	s.notifyFill(key, v, hit, err)
	if err != nil {
		return RunResponse{}, false, err
	}
	resp := v.(*runResult).resp
	resp.Cached = hit
	resp.Key = key.String()
	if hit {
		// A cache hit never reaches executeRun's outcome observer, but it
		// is still a served request: without this a half-open trial that
		// lands on the cache would leave the trial slot occupied forever.
		s.breaker.Success()
	}
	return resp, hit, nil
}

// executeRun runs one simulation on the pool and packages the measurements.
func (s *Server) executeRun(ctx context.Context, wl *codegen.Workload, sspec SchemeSpec, cfg sim.Config) (*runResult, error) {
	type outcome struct {
		res codegen.Result
		err error
	}
	done := make(chan outcome, 1)
	submit := s.pool.Submit
	if _, patient := ctx.Value(ctxKeyPatient{}).(struct{}); patient {
		submit = func(fn func(context.Context)) error { return s.pool.SubmitWait(ctx, fn) }
	}
	err := submit(func(jobCtx context.Context) {
		if jobCtx.Err() != nil {
			done <- outcome{err: fmt.Errorf("service: job expired in queue: %w", jobCtx.Err())}
			return
		}
		start := time.Now()
		// A fresh scheme per execution: instance-based schemes carry
		// per-run renamed storage.
		sch, err := sspec.Build()
		if err != nil {
			done <- outcome{err: err}
			return
		}
		res, err := s.simRun(wl, sch, cfg)
		if err == nil {
			s.metrics.ObserveJob(sch.Name(), time.Since(start))
		}
		s.observeOutcome(res, err)
		done <- outcome{res: res, err: err}
	})
	if err != nil {
		return nil, err
	}
	select {
	case o := <-done:
		if o.err != nil {
			return nil, o.err
		}
		st := o.res.Stats
		return &runResult{resp: RunResponse{
			Workload:     wl.Name,
			Scheme:       o.res.Scheme,
			SerialCycles: o.res.SerialCycles,
			Cycles:       st.Cycles,
			Speedup:      o.res.Speedup(),
			Utilization:  st.Utilization(),
			SyncOps:      st.SyncOps,
			WaitSync:     st.WaitSyncTotal(),
			BusTx:        st.BusBroadcasts,
			BusSaved:     st.BusSaved,
			ModuleAcc:    st.ModuleAccesses,
			Polls:        st.Polls,
			Foot:         o.res.Foot,
			Recovered:    st.Recovery != nil && st.Recovery.Recovered,
			Recovery:     st.Recovery,
			Stats:        st,
		}}, nil
	case <-ctx.Done():
		// The job keeps running (it is MaxCycles-bounded) and its result
		// will not be cached; the request gives up now.
		return nil, fmt.Errorf("service: request cancelled while awaiting job: %w", ctx.Err())
	}
}

// observeOutcome feeds one executed job into the breaker and fault
// counters: a stall-class failure (a diagnosed deadlock/livelock under an
// active fault plan) is a breaker failure; a completed run is a success.
// A recovered run is a completed run — the stall was healed, the service
// is serving — so it keeps the circuit closed and counts toward the
// recovery gauges. Other errors — bad specs, organic deadlocks — leave the
// circuit alone: they say nothing about service health.
func (s *Server) observeOutcome(res codegen.Result, err error) {
	var se *sim.StallError
	switch {
	case errors.As(err, &se):
		s.watchdogTrips.Add(1)
		s.injectedFaults.Add(se.Faults.Total())
		s.breaker.Failure()
	case err == nil:
		s.injectedFaults.Add(res.Stats.Faults.Total())
		if rec := res.Stats.Recovery; rec != nil && rec.Recovered {
			s.recoveredRuns.Add(1)
			s.recoveryCost.Add(rec.CostCycles)
		}
		s.breaker.Success()
	}
}

// breakerError carries the remaining cooldown into the 503 Retry-After
// header; it unwraps to ErrBreakerOpen.
type breakerError struct{ retryAfter time.Duration }

func (e *breakerError) Error() string { return ErrBreakerOpen.Error() }
func (e *breakerError) Unwrap() error { return ErrBreakerOpen }

// ctxKeyPatient marks contexts whose submissions should wait out a full
// queue instead of failing fast (sweep fan-out).
type ctxKeyPatient struct{}

func patientCtx(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKeyPatient{}, struct{}{})
}

// ---- handlers ----

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	wl, err := req.Workload.Build()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	resp, _, err := s.evalRun(r.Context(), wl, req.Scheme, req.Config.SimConfig())
	if err != nil {
		s.evalError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !req.Scheme.Verifiable() {
		s.httpError(w, http.StatusBadRequest,
			fmt.Errorf("scheme %q is not statically verifiable (outer-loop pipelining is outside the iteration-indexed happens-before model)", req.Scheme.Name))
		return
	}
	wl, err := req.Workload.Build()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := req.Scheme.Build(); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Config.SimConfig().Check(); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	key, err := VerifyKey(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	v, hit, err := s.cache.Do(key, func() (any, error) {
		return s.executeVerify(r.Context(), wl, req)
	})
	s.notifyFill(key, v, hit, err)
	if err != nil {
		s.evalError(w, err)
		return
	}
	resp := *v.(*VerifyResponse)
	resp.Cached = hit
	resp.Key = key.String()
	s.writeJSON(w, http.StatusOK, resp)
}

// executeVerify runs the static (and optionally dynamic) checkers on the pool.
func (s *Server) executeVerify(ctx context.Context, wl *codegen.Workload, req VerifyRequest) (*VerifyResponse, error) {
	type outcome struct {
		resp *VerifyResponse
		err  error
	}
	done := make(chan outcome, 1)
	err := s.pool.Submit(func(jobCtx context.Context) {
		if jobCtx.Err() != nil {
			done <- outcome{err: fmt.Errorf("service: job expired in queue: %w", jobCtx.Err())}
			return
		}
		sch, err := req.Scheme.Build()
		if err != nil {
			done <- outcome{err: err}
			return
		}
		sp, err := codegen.ExtractSyncProgram(wl, sch)
		if err != nil {
			done <- outcome{err: err}
			return
		}
		resp := &VerifyResponse{
			Workload: wl.Name,
			Scheme:   sp.Scheme,
			Static:   verify.Static(sp, verify.Options{MaxIters: req.MaxIters}),
		}
		resp.OK = resp.Static.OK()
		if req.Dynamic {
			// A broken scheme may deadlock or fail serial equivalence; the
			// trace recorded up to that point is still replayed.
			fresh, err := req.Scheme.Build()
			if err != nil {
				done <- outcome{err: err}
				return
			}
			_, events, rerr := codegen.RunSyncTraced(wl, fresh, req.Config.SimConfig())
			if rerr != nil {
				resp.RunError = OneLine(rerr)
				resp.OK = false
			}
			resp.Dynamic = verify.Dynamic(events)
			if !resp.Dynamic.OK() {
				resp.OK = false
			}
		}
		done <- outcome{resp: resp}
	})
	if err != nil {
		return nil, err
	}
	select {
	case o := <-done:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("service: request cancelled while awaiting job: %w", ctx.Err())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":  "ok",
		"workers": s.pool.Workers(),
		"queue":   s.pool.QueueDepth(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		body = map[string]any{"status": "draining"}
		code = http.StatusServiceUnavailable
	} else if s.opts.Degraded != nil {
		if deg, reason := s.opts.Degraded(); deg {
			body["status"] = "degraded"
			body["reason"] = reason
			code = http.StatusServiceUnavailable
		}
	}
	if s.opts.HealthInfo != nil {
		for k, v := range s.opts.HealthInfo() {
			if _, taken := body[k]; !taken {
				body[k] = v
			}
		}
	}
	s.writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Render(w, s.pool, s.cache.Snapshot(), Resilience{
		BreakerState:   s.breaker.State(),
		BreakerOpens:   s.breaker.Opens(),
		WatchdogTrips:  s.watchdogTrips.Load(),
		InjectedFaults: s.injectedFaults.Load(),
		RecoveredRuns:  s.recoveredRuns.Load(),
		RecoveryCost:   s.recoveryCost.Load(),
	})
	if s.opts.MetricsAppend != nil {
		s.opts.MetricsAppend(w)
	}
}

// ---- plumbing ----

// decode parses a JSON body strictly; unknown fields are an input error so
// a typo'd parameter fails loudly instead of silently taking a default.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// evalError maps evaluation failures to HTTP: backpressure to 429 +
// Retry-After, cancellation to 503, everything else to 400 (the request
// described an unrunnable job: bad spec, deadlocking scheme, livelock cap).
func (s *Server) evalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds()+0.5)))
		s.httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrBreakerOpen):
		ra := s.opts.RetryAfter
		var be *breakerError
		if errors.As(err, &be) && be.retryAfter > 0 {
			ra = be.retryAfter
		}
		// Ceil to a whole second: a sub-second cooldown must not render 0.
		w.Header().Set("Retry-After", strconv.Itoa(int((ra+time.Second-1)/time.Second)))
		s.httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDraining):
		s.httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.httpError(w, http.StatusServiceUnavailable, err)
	default:
		s.httpError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, errorResponse{Error: OneLine(err)})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// logged wraps the mux with structured request logging and request metrics.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		route := r.URL.Path
		s.metrics.ObserveRequest(route, sw.code)
		s.log.Info("request",
			"method", r.Method,
			"route", route,
			"status", sw.code,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"queue", s.pool.QueueDepth(),
			"inflight", s.pool.InFlight(),
		)
	})
}
