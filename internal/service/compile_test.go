package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

const compileSrc = `package p

func kernel(a, b []int) {
	for i := 1; i < 30; i++ {
		a[i] = a[i-1] + i
		b[i] = a[i] * 2
	}
}
`

// TestCompileEndpoint: /compile lowers a canonical loop, reports its
// dependence graph and a measurement per scheme, verifies the verifiable
// schemes, and serves the identical repeat from cache.
func TestCompileEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	req := CompileRequest{Filename: "kernel.go", Source: compileSrc, Config: ConfigSpec{P: 4}}

	var first, second CompileResponse
	resp, body := post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &first)
	if first.Cached {
		t.Error("first request reported cached")
	}
	if len(first.Loops) != 1 || len(first.Rejected) != 0 {
		t.Fatalf("loops=%d rejected=%d, want 1 and 0: %s", len(first.Loops), len(first.Rejected), body)
	}
	lp := first.Loops[0]
	if lp.Workload != "kernel" || lp.Depth != 1 || lp.Iterations != 29 {
		t.Errorf("loop identity: %+v", lp)
	}
	if !strings.Contains(lp.Graph, "S1 -flow(1)-> S1") {
		t.Errorf("graph missing recurrence arc:\n%s", lp.Graph)
	}
	if len(lp.Schemes) != len(SchemeNames()) {
		t.Errorf("schemes = %d, want all %d", len(lp.Schemes), len(SchemeNames()))
	}
	for _, cs := range lp.Schemes {
		if cs.Scheme == "pipeline(X=8,G=1)" {
			if cs.Error == "" {
				t.Errorf("pipeline should refuse a depth-1 nest")
			}
			continue
		}
		if cs.Error != "" {
			t.Errorf("%s refused: %s", cs.Scheme, cs.Error)
			continue
		}
		if cs.VerifyOK == nil || !*cs.VerifyOK {
			t.Errorf("%s not statically verified: %+v", cs.Scheme, cs)
		}
		if cs.Cycles <= 0 || cs.SerialCycles <= 0 {
			t.Errorf("%s implausible measurement: %+v", cs.Scheme, cs)
		}
	}

	resp, body = post(t, ts, "/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &second)
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	if first.Key == "" || first.Key != second.Key {
		t.Errorf("keys diverge: %q vs %q", first.Key, second.Key)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "dsserve_cache_hits_total 1") {
		t.Errorf("metrics missing compile cache hit:\n%s", mbody)
	}
}

// TestCompileRejection: source with no lowerable loops is a 400 whose error
// field is the first positioned diagnostic, with the full rejection list
// attached.
func TestCompileRejection(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1})
	src := "package p\n\nfunc f(a []int, n int) {\n\tfor i := 0; i < n; i++ {\n\t\ta[i] = i\n\t}\n}\n"
	resp, body := post(t, ts, "/compile", CompileRequest{Filename: "sym.go", Source: src})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
	}
	var out struct {
		Error string `json:"error"`
		CompileResponse
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(out.Error, "sym.go:4:") || !strings.Contains(out.Error, "symbolic-bound") {
		t.Errorf("error lacks position or reason code: %q", out.Error)
	}
	if len(out.Rejected) != 1 || out.Rejected[0].Code != "symbolic-bound" {
		t.Errorf("rejected list: %+v", out.Rejected)
	}
}

// TestCompileBadInputs: structural errors are 400 before any evaluation.
func TestCompileBadInputs(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  CompileRequest
	}{
		{"empty source", CompileRequest{}},
		{"unknown scheme", CompileRequest{Source: compileSrc, Schemes: []SchemeSpec{{Name: "nope"}}}},
		{"bad config", CompileRequest{Source: compileSrc, Config: ConfigSpec{P: -1}}},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, "/compile", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}
}

// TestCompileSourceHard: the gating predicate trips on rejections and on
// verification findings, and stays clean on a fully-lowered file even when
// one scheme refuses the shape.
func TestCompileSourceHard(t *testing.T) {
	clean, err := CompileSource("k.go", []byte(compileSrc), nil, ConfigSpec{P: 4})
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	if clean.Hard() {
		t.Errorf("clean outcome reported hard: %+v", clean)
	}
	rej, err := CompileSource("k.go", []byte("package p\nfunc f(a []float64) {\n\tfor i := 0; i < 5; i++ {\n\t\ta[i] = 1\n\t}\n}\n"), nil, ConfigSpec{})
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	if !rej.Hard() {
		t.Errorf("rejected outcome not hard: %+v", rej)
	}
}
