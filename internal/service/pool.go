package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity — the backpressure signal the HTTP layer turns into 429 +
// Retry-After instead of unbounded goroutine growth.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// Pool is a bounded worker pool: a fixed number of workers consuming a
// fixed-capacity queue. Every simulation and verification job the service
// executes goes through it, which bounds concurrent simulator memory and
// keeps overload explicit (ErrQueueFull) rather than implicit (collapse).
type Pool struct {
	mu       sync.RWMutex // guards draining vs. queue close
	draining bool
	jobs     chan func(context.Context)
	workers  int
	timeout  time.Duration
	wg       sync.WaitGroup

	inflight  atomic.Int64
	completed atomic.Int64
}

// NewPool starts workers goroutines consuming a queue of capacity queueCap.
// jobTimeout bounds each job's context (0 = no deadline): a job that waited
// in the queue past its deadline observes a cancelled context and should
// not start expensive work.
func NewPool(workers, queueCap int, jobTimeout time.Duration) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	p := &Pool{
		jobs:    make(chan func(context.Context), queueCap),
		workers: workers,
		timeout: jobTimeout,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.jobs {
		p.inflight.Add(1)
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if p.timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, p.timeout)
		}
		fn(ctx)
		cancel()
		p.inflight.Add(-1)
		p.completed.Add(1)
	}
}

// Submit enqueues a job without blocking. It returns ErrQueueFull when the
// queue is at capacity and ErrDraining after Drain has begun. The job's
// context carries the pool's per-job timeout, measured from the moment a
// worker picks the job up.
func (p *Pool) Submit(fn func(context.Context)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.jobs <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// SubmitWait is Submit with patience: on a full queue it retries with a
// short pause until accepted or ctx expires. The sweep engine uses it so a
// large grid shares the pool with interactive traffic instead of failing or
// bypassing the bound.
func (p *Pool) SubmitWait(ctx context.Context, fn func(context.Context)) error {
	for {
		err := p.Submit(fn)
		if err == nil || errors.Is(err, ErrDraining) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Drain stops accepting jobs and waits until every queued and in-flight job
// has finished, or ctx expires. It is idempotent.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.jobs)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth is the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueCap is the queue capacity.
func (p *Pool) QueueCap() int { return cap(p.jobs) }

// Workers is the worker count.
func (p *Pool) Workers() int { return p.workers }

// InFlight is the number of jobs currently executing.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Completed is the number of jobs finished since start.
func (p *Pool) Completed() int64 { return p.completed.Load() }
