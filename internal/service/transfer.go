package service

import (
	"encoding/json"
	"fmt"

	"github.com/csrd-repro/datasync/internal/cache"
)

// CacheEntry is one result-cache entry in portable form: the hex content
// address, a kind tag naming the stored value's type, and the value's JSON
// encoding. Because every cached value is itself served to clients as JSON,
// this round-trip is exact for everything a response can contain — an
// imported entry re-serves byte-identical response bodies (only the
// per-request Cached/Key decoration differs, and that is recomputed per
// request on both sides). The cluster layer streams entries this way for
// drain warm-handoff and K-successor replication.
type CacheEntry struct {
	Key  string          `json:"key"`
	Kind string          `json:"kind"` // "run" | "verify" | "compile"
	Body json.RawMessage `json:"body"`
}

// encodeCacheValue renders one stored cache value portably. ok=false means
// the value is not a transferable kind (nothing stores such values today;
// the guard keeps a future cache user from being mis-shipped).
func encodeCacheValue(k cache.Key, v any) (CacheEntry, bool) {
	var kind string
	var payload any
	switch t := v.(type) {
	case *runResult:
		kind, payload = "run", t.resp
	case *VerifyResponse:
		kind, payload = "verify", t
	case *CompileOutcome:
		kind, payload = "compile", t
	default:
		return CacheEntry{}, false
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return CacheEntry{}, false
	}
	return CacheEntry{Key: k.String(), Kind: kind, Body: body}, true
}

// ExportCache snapshots every transferable cache entry, most recently used
// first (so a deadline-bounded handoff ships the hottest entries first).
func (s *Server) ExportCache() []CacheEntry {
	var out []CacheEntry
	s.cache.Range(func(k cache.Key, v any) {
		if e, ok := encodeCacheValue(k, v); ok {
			out = append(out, e)
		}
	})
	return out
}

// ImportCacheEntry decodes a portable entry and stores it in the result
// cache under its content address. The import changes cache provenance
// only: a later request for the key answers Cached:true with the same
// response bytes the exporting node would have served.
func (s *Server) ImportCacheEntry(e CacheEntry) error {
	k, err := cache.ParseKey(e.Key)
	if err != nil {
		return err
	}
	var v any
	switch e.Kind {
	case "run":
		var resp RunResponse
		if err := json.Unmarshal(e.Body, &resp); err != nil {
			return fmt.Errorf("service: import run entry %s: %w", e.Key, err)
		}
		v = &runResult{resp: resp}
	case "verify":
		var resp VerifyResponse
		if err := json.Unmarshal(e.Body, &resp); err != nil {
			return fmt.Errorf("service: import verify entry %s: %w", e.Key, err)
		}
		// Strip any per-request decoration the exporter carried; it is
		// recomputed per request.
		resp.Cached, resp.Key = false, ""
		v = &resp
	case "compile":
		var out CompileOutcome
		if err := json.Unmarshal(e.Body, &out); err != nil {
			return fmt.Errorf("service: import compile entry %s: %w", e.Key, err)
		}
		v = &out
	default:
		return fmt.Errorf("service: import entry %s: unknown kind %q", e.Key, e.Kind)
	}
	s.cache.Put(k, v)
	return nil
}

// RangeCacheKeys calls f for every cached key, most recently used first.
// The anti-entropy scan walks ownership this way without exporting bodies
// it may never need to push.
func (s *Server) RangeCacheKeys(f func(cache.Key)) {
	s.cache.Range(func(k cache.Key, _ any) { f(k) })
}

// ExportCacheEntry encodes the single entry stored under k (ok=false for
// absent keys and non-transferable values).
func (s *Server) ExportCacheEntry(k cache.Key) (CacheEntry, bool) {
	v, ok := s.cache.Peek(k)
	if !ok {
		return CacheEntry{}, false
	}
	return encodeCacheValue(k, v)
}

// CacheHas reports whether the result cache holds the key, without
// touching recency or the hit/miss counters (replica-hit accounting).
func (s *Server) CacheHas(k cache.Key) bool {
	_, ok := s.cache.Peek(k)
	return ok
}

// notifyFill feeds a freshly computed (not hit, not errored) cache entry
// to the OnCacheFill hook, portably encoded. Hook implementations must be
// cheap — the cluster layer enqueues the entry for asynchronous
// replication and returns.
func (s *Server) notifyFill(k cache.Key, v any, hit bool, err error) {
	if err != nil || hit || s.opts.OnCacheFill == nil {
		return
	}
	if e, ok := encodeCacheValue(k, v); ok {
		s.opts.OnCacheFill(k, e)
	}
}
