package service

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/csrd-repro/datasync/internal/cache"
	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// These tests pin the invariant the content-addressed result cache relies
// on: the simulator is deterministic, so {program AST, scheme, config}
// content-addresses an exact result. Two halves: the canonical hash must be
// byte-identical across repeated construction, and the measured RunStats
// must be identical across repeated runs — under different GOMAXPROCS
// settings, since the service runs simulations concurrently on the pool.

var detCfg = sim.Config{Processors: 6, BusLatency: 1, MemLatency: 2,
	Modules: 6, SyncOpCost: 1, SchedOverhead: 1}

type detPair struct {
	name   string
	build  func() *codegen.Workload
	scheme func() codegen.Scheme
}

func detPairs() []detPair {
	return []detPair{
		{"fig21/process", func() *codegen.Workload { return workloads.Fig21(40, 4) },
			func() codegen.Scheme { return codegen.ProcessOriented{X: 4, Improved: true} }},
		{"recurrence/ref", func() *codegen.Workload { return workloads.Recurrence(40, 2, 4) },
			func() codegen.Scheme { return codegen.RefBased{} }},
		{"nested/instance", func() *codegen.Workload { return workloads.Nested(8, 5, 4) },
			func() codegen.Scheme { return codegen.NewInstanceBased() }},
	}
}

// TestDeterminismHashAndStatsAcrossGOMAXPROCS: same request, byte-identical
// key and deep-equal RunStats at GOMAXPROCS 1, 4 and 8.
func TestDeterminismHashAndStatsAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, pair := range detPairs() {
		var refKey cache.Key
		var refStats *sim.Stats
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			w := pair.build()
			sch := pair.scheme()
			key := cache.RequestKey(w, sch.Name(), detCfg)
			if refStats == nil {
				refKey = key
			} else if key != refKey {
				t.Errorf("%s: key differs at GOMAXPROCS=%d: %s vs %s", pair.name, procs, key, refKey)
			}
			res, err := codegen.Run(w, sch, detCfg)
			if err != nil {
				t.Fatalf("%s at GOMAXPROCS=%d: %v", pair.name, procs, err)
			}
			if refStats == nil {
				st := res.Stats
				refStats = &st
			} else if !reflect.DeepEqual(*refStats, res.Stats) {
				t.Errorf("%s: RunStats diverge at GOMAXPROCS=%d:\n%+v\nvs\n%+v",
					pair.name, procs, *refStats, res.Stats)
			}
		}
	}
}

// TestDeterminismRepeatedRuns: many repetitions at a fixed GOMAXPROCS give
// identical measurements — no hidden map-iteration or timing dependence.
func TestDeterminismRepeatedRuns(t *testing.T) {
	for _, pair := range detPairs() {
		var ref *codegen.Result
		for i := 0; i < 5; i++ {
			res, err := codegen.Run(pair.build(), pair.scheme(), detCfg)
			if err != nil {
				t.Fatalf("%s run %d: %v", pair.name, i, err)
			}
			if ref == nil {
				ref = &res
				continue
			}
			if !reflect.DeepEqual(ref.Stats, res.Stats) {
				t.Errorf("%s: run %d stats diverge:\n%+v\nvs\n%+v", pair.name, i, ref.Stats, res.Stats)
			}
			if ref.SerialCycles != res.SerialCycles || ref.Foot != res.Foot {
				t.Errorf("%s: run %d result metadata diverges", pair.name, i)
			}
		}
	}
}

// TestEmptyFaultPlanZeroEffect: a fault plan with no armed fault (even one
// carrying a seed) must be invisible — byte-identical cache key and
// deep-equal stats against the clean config. This is the guarantee that
// lets clean traffic keep hitting pre-fault cache entries.
func TestEmptyFaultPlanZeroEffect(t *testing.T) {
	pair := detPairs()[0]
	cleanKey := cache.RequestKey(pair.build(), pair.scheme().Name(), detCfg)
	cleanRes, err := codegen.Run(pair.build(), pair.scheme(), detCfg)
	if err != nil {
		t.Fatal(err)
	}

	seeded := detCfg
	seeded.FaultPlan = fault.Plan{Seed: 42} // a seed alone arms nothing
	if seeded.FaultPlan.Enabled() {
		t.Fatal("seed-only plan reports Enabled")
	}
	if key := cache.RequestKey(pair.build(), pair.scheme().Name(), seeded); key != cleanKey {
		t.Errorf("seed-only plan changed the cache key: %s vs %s", key, cleanKey)
	}
	res, err := codegen.Run(pair.build(), pair.scheme(), seeded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cleanRes.Stats, res.Stats) {
		t.Errorf("seed-only plan changed the stats:\n%+v\nvs\n%+v", cleanRes.Stats, res.Stats)
	}
}

// TestFaultDeterminismAcrossGOMAXPROCS: an armed seeded plan produces the
// identical fault schedule — same injected-fault counts, same cycles, same
// whole Stats — across GOMAXPROCS settings, and addresses a cache entry
// distinct from the clean one. Fault schedules are a pure function of
// (seed, site, coordinates), never of host scheduling.
func TestFaultDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	pair := detPairs()[0]
	faulty := detCfg
	faulty.FaultPlan = fault.Plan{Seed: 7, DropProb: 0.02, DelayProb: 0.3, DelayCycles: 4,
		StaleProb: 0.1, StaleCycles: 3}
	cleanKey := cache.RequestKey(pair.build(), pair.scheme().Name(), detCfg)

	var refKey cache.Key
	var refStats *sim.Stats
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		key := cache.RequestKey(pair.build(), pair.scheme().Name(), faulty)
		if key == cleanKey {
			t.Fatal("armed plan shares the clean cache key")
		}
		res, err := codegen.Run(pair.build(), pair.scheme(), faulty)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if res.Stats.Faults.Total() == 0 {
			t.Fatalf("GOMAXPROCS=%d: no faults landed: %+v", procs, res.Stats.Faults)
		}
		if refStats == nil {
			refKey, refStats = key, &res.Stats
			continue
		}
		if key != refKey {
			t.Errorf("faulty key differs at GOMAXPROCS=%d", procs)
		}
		if !reflect.DeepEqual(*refStats, res.Stats) {
			t.Errorf("fault schedule diverges at GOMAXPROCS=%d:\n%+v\nvs\n%+v",
				procs, *refStats, res.Stats)
		}
	}
}

// TestDisarmedRecoverZeroEffect: a disarmed Recover (even with a
// MaxReclaims budget set) must be invisible — byte-identical cache key and
// deep-equal stats against the clean config. Recovered runs may share
// addresses with clean runs only when recovery cannot have happened.
func TestDisarmedRecoverZeroEffect(t *testing.T) {
	pair := detPairs()[0]
	cleanKey := cache.RequestKey(pair.build(), pair.scheme().Name(), detCfg)
	cleanRes, err := codegen.Run(pair.build(), pair.scheme(), detCfg)
	if err != nil {
		t.Fatal(err)
	}

	disarmed := detCfg
	disarmed.Recover = sim.Recover{MaxReclaims: 3} // no AfterCycles: disarmed
	if disarmed.Recover.Enabled() {
		t.Fatal("budget-only Recover reports Enabled")
	}
	if key := cache.RequestKey(pair.build(), pair.scheme().Name(), disarmed); key != cleanKey {
		t.Errorf("disarmed Recover changed the cache key: %s vs %s", key, cleanKey)
	}
	res, err := codegen.Run(pair.build(), pair.scheme(), disarmed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cleanRes.Stats, res.Stats) {
		t.Errorf("disarmed Recover changed the stats:\n%+v\nvs\n%+v", cleanRes.Stats, res.Stats)
	}
}

// TestRecoveredRunDeterministicAcrossGOMAXPROCS: a halt + armed recovery
// yields the identical recovery schedule — same report, same whole Stats —
// across repeats and GOMAXPROCS settings, at a cache address distinct from
// both the clean and the halt-only configs. Reclamation is planned in
// simulated cycles, never host time.
func TestRecoveredRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	pair := detPairs()[1] // recurrence/ref: the halt blocks the chain
	halted := detCfg
	halted.FaultPlan = fault.Plan{HaltProc: 1, HaltAtCycle: 50}
	recovered := halted
	recovered.Recover = sim.Recover{AfterCycles: 40}
	cleanKey := cache.RequestKey(pair.build(), pair.scheme().Name(), detCfg)
	haltKey := cache.RequestKey(pair.build(), pair.scheme().Name(), halted)

	var refKey cache.Key
	var refStats *sim.Stats
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			key := cache.RequestKey(pair.build(), pair.scheme().Name(), recovered)
			if key == cleanKey || key == haltKey {
				t.Fatal("armed recovery shares a clean/halt-only cache key")
			}
			res, err := codegen.Run(pair.build(), pair.scheme(), recovered)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d rep %d: %v", procs, rep, err)
			}
			rec := res.Stats.Recovery
			if rec == nil || !rec.Recovered {
				t.Fatalf("GOMAXPROCS=%d rep %d: run did not recover", procs, rep)
			}
			if rec.Proc != 1 || rec.CostCycles != 40 {
				t.Errorf("GOMAXPROCS=%d rep %d: report %+v, want proc 1 at cost 40", procs, rep, rec)
			}
			if refStats == nil {
				refKey, refStats = key, &res.Stats
				continue
			}
			if key != refKey {
				t.Errorf("recovered key differs at GOMAXPROCS=%d", procs)
			}
			if !reflect.DeepEqual(*refStats, res.Stats) {
				t.Errorf("recovery schedule diverges at GOMAXPROCS=%d rep %d:\n%+v\nvs\n%+v",
					procs, rep, *refStats, res.Stats)
			}
		}
	}
}

// TestKeyDistinguishesPairs: no two of the canonical pairs share a key
// (content addressing must separate what the service can serve).
func TestKeyDistinguishesPairs(t *testing.T) {
	seen := map[cache.Key]string{}
	for _, pair := range detPairs() {
		k := cache.RequestKey(pair.build(), pair.scheme().Name(), detCfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s share key %s", pair.name, prev, k)
		}
		seen[k] = pair.name
	}
}
