package service

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (mapped to 503 + Retry-After) while the
// circuit breaker is shedding load after repeated watchdog-class failures.
var ErrBreakerOpen = errors.New("service: circuit breaker open (repeated stalls); retry later")

// Breaker is a three-state circuit breaker over stall-class job failures
// (simulator deadlocks/livelocks diagnosed under a fault plan, runtime
// watchdog trips). Consecutive failures open it; while open every request
// is refused immediately with a Retry-After hint; after the cooldown one
// trial request probes the half-open state and its outcome closes or
// re-opens the circuit.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	failures int
	state    BreakerState
	openedAt time.Time
	trial    bool // a half-open probe is in flight
	opens    int64
}

// BreakerState enumerates the circuit states.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// NewBreaker builds a closed breaker opening after threshold consecutive
// failures and cooling down for the given duration.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. When refused, retryAfter is
// the remaining cooldown. In the half-open state exactly one caller at a
// time is admitted as the trial probe.
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
			return false, rem
		}
		b.state = BreakerHalfOpen
		b.trial = false
		fallthrough
	default: // half-open
		if b.trial {
			return false, b.cooldown
		}
		b.trial = true
		return true, 0
	}
}

// Success records a completed job: it closes a half-open circuit and resets
// the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.trial = false
	b.state = BreakerClosed
}

// Failure records a stall-class job failure: threshold consecutive ones
// open the circuit, and a failed half-open trial re-opens it immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.failures = 0
		b.trial = false
	}
}

// State returns the current circuit state (cooldown expiry is observed
// lazily by Allow, so an expired open circuit still reports open here).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
