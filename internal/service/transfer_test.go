package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/csrd-repro/datasync/internal/cache"
)

func transferTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := NewServer(Options{Workers: 2, Logger: quiet})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestCacheExportImportByteIdentity: an entry exported from one server and
// imported into another re-serves byte-identical response bodies — the
// property that makes drain handoff and replication pure cache-provenance
// moves. Covered for /run and /verify.
func TestCacheExportImportByteIdentity(t *testing.T) {
	a, ha := transferTestServer(t)
	b, hb := transferTestServer(t)

	runReq := RunRequest{
		Workload: WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   SchemeSpec{Name: "process", X: 4},
		Config:   ConfigSpec{P: 4},
	}
	verifyReq := VerifyRequest{
		Workload: runReq.Workload,
		Scheme:   runReq.Scheme,
		Config:   runReq.Config,
	}

	// Fill on A, then record the canonical cached bytes (Cached:true).
	if code, body := postJSON(t, ha.URL+"/run", runReq); code != http.StatusOK {
		t.Fatalf("fill /run: %d %s", code, body)
	}
	_, cachedRun := postJSON(t, ha.URL+"/run", runReq)
	if code, body := postJSON(t, ha.URL+"/verify", verifyReq); code != http.StatusOK {
		t.Fatalf("fill /verify: %d %s", code, body)
	}
	_, cachedVerify := postJSON(t, ha.URL+"/verify", verifyReq)

	entries := a.ExportCache()
	if len(entries) != 2 {
		t.Fatalf("exported %d entries, want 2 (run + verify)", len(entries))
	}
	kinds := map[string]bool{}
	for _, e := range entries {
		if err := b.ImportCacheEntry(e); err != nil {
			t.Fatalf("import %s entry: %v", e.Kind, err)
		}
		kinds[e.Kind] = true
	}
	if !kinds["run"] || !kinds["verify"] {
		t.Fatalf("exported kinds %v, want run and verify", kinds)
	}

	// B answers from the imported entries: cache hits, identical bytes.
	code, gotRun := postJSON(t, hb.URL+"/run", runReq)
	if code != http.StatusOK {
		t.Fatalf("/run on importer: %d %s", code, gotRun)
	}
	if !bytes.Equal(gotRun, cachedRun) {
		t.Errorf("imported /run bytes differ:\nexporter: %s\nimporter: %s", cachedRun, gotRun)
	}
	var rr RunResponse
	if err := json.Unmarshal(gotRun, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Cached {
		t.Error("importer recomputed a handed-off run entry")
	}

	code, gotVerify := postJSON(t, hb.URL+"/verify", verifyReq)
	if code != http.StatusOK {
		t.Fatalf("/verify on importer: %d %s", code, gotVerify)
	}
	if !bytes.Equal(gotVerify, cachedVerify) {
		t.Errorf("imported /verify bytes differ:\nexporter: %s\nimporter: %s", cachedVerify, gotVerify)
	}

	// CacheHas sees the imported entries without disturbing stats.
	for _, e := range entries {
		k, err := cache.ParseKey(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !b.CacheHas(k) {
			t.Errorf("CacheHas(%s) = false after import", e.Key)
		}
	}
}

// TestImportCacheEntryRejects: malformed keys, bodies and unknown kinds
// are errors, not panics or silent corruption.
func TestImportCacheEntryRejects(t *testing.T) {
	s, _ := transferTestServer(t)

	cases := []CacheEntry{
		{Key: "zz", Kind: "run", Body: json.RawMessage(`{}`)},
		{Key: "abcd", Kind: "run", Body: json.RawMessage(`{}`)}, // wrong length
		{Key: validTestKey(), Kind: "alien", Body: json.RawMessage(`{}`)},
		{Key: validTestKey(), Kind: "run", Body: json.RawMessage(`{not json`)},
		{Key: validTestKey(), Kind: "verify", Body: json.RawMessage(`[]`)},
	}
	for i, e := range cases {
		if err := s.ImportCacheEntry(e); err == nil {
			t.Errorf("case %d (%s/%s) imported without error", i, e.Key, e.Kind)
		}
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("rejected imports left %d cache entries", n)
	}
}

func validTestKey() string {
	var k cache.Key
	return k.String()
}

// TestOnCacheFillHook: the hook fires once per fresh fill with the
// portable encoding, and never on hits.
func TestOnCacheFillHook(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	var mu sync.Mutex
	var fills []CacheEntry
	s := NewServer(Options{Workers: 2, Logger: quiet, OnCacheFill: func(k cache.Key, e CacheEntry) {
		mu.Lock()
		fills = append(fills, e)
		mu.Unlock()
	}})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	runReq := RunRequest{
		Workload: WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   SchemeSpec{Name: "process", X: 4},
		Config:   ConfigSpec{P: 4},
	}
	postJSON(t, hs.URL+"/run", runReq)
	postJSON(t, hs.URL+"/run", runReq) // hit: no second fill

	mu.Lock()
	defer mu.Unlock()
	if len(fills) != 1 {
		t.Fatalf("OnCacheFill fired %d times for one fill + one hit, want 1", len(fills))
	}
	if fills[0].Kind != "run" || len(fills[0].Body) == 0 {
		t.Errorf("fill entry = %+v, want a run entry with a body", fills[0])
	}
}
