package service

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"github.com/csrd-repro/datasync/internal/cache"
)

// maxSweepPoints caps one sweep request's grid: large studies should be
// split into several requests rather than monopolizing the pool.
const maxSweepPoints = 1024

// SweepGrid is the parameter grid to fan out: the cross product of every
// non-empty dimension. An empty dimension holds the base request's value.
type SweepGrid struct {
	X          []int   `json:"x,omitempty"`          // folded process counters
	P          []int   `json:"p,omitempty"`          // processors
	Chunk      []int64 `json:"chunk,omitempty"`      // self-scheduling chunk size
	G          []int64 `json:"g,omitempty"`          // pipeline grouping
	BusLatency []int64 `json:"busLatency,omitempty"` // sync-bus broadcast latency
}

// SweepRequest asks for a parameter study: one workload x scheme family
// evaluated over the grid, answered with every point plus the Pareto front
// of cycles vs. synchronization traffic.
type SweepRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Scheme   SchemeSpec   `json:"scheme"`
	Config   ConfigSpec   `json:"config"`
	Grid     SweepGrid    `json:"grid"`
	// Points, when non-empty, overrides Grid with an explicit point list.
	// The cluster coordinator dispatches owner-aligned sub-grids this way:
	// an arbitrary subset of a cross-product grid is not itself a
	// cross-product, so sub-grids travel as the points they contain.
	Points []GridSel `json:"points,omitempty"`
}

// GridSel selects one fully resolved sweep point.
type GridSel struct {
	X          int   `json:"x"`
	P          int   `json:"p"`
	Chunk      int64 `json:"chunk"`
	G          int64 `json:"g,omitempty"`
	HasG       bool  `json:"hasG,omitempty"` // whether G overrides the base scheme's grouping
	BusLatency int64 `json:"busLatency"`
}

// SweepPoint is one evaluated grid point. SyncTraffic is the run's total
// synchronization fabric load: sync-bus broadcasts plus busy-wait memory
// polls (the two media a scheme's sync operations travel on).
type SweepPoint struct {
	X           int     `json:"x"`
	P           int     `json:"p"`
	Chunk       int64   `json:"chunk"`
	G           int64   `json:"g,omitempty"`
	BusLatency  int64   `json:"busLatency"`
	Scheme      string  `json:"scheme"`
	Cached      bool    `json:"cached"`
	Cycles      int64   `json:"cycles"`
	SyncTraffic int64   `json:"syncTraffic"`
	SyncOps     int64   `json:"syncOps"`
	Speedup     float64 `json:"speedup"`
	Error       string  `json:"error,omitempty"`
}

// SweepResponse reports every point (grid order) and the Pareto front
// (ascending cycles). Points that failed to run carry an Error and are
// excluded from the front.
type SweepResponse struct {
	Workload  string       `json:"workload"`
	Evaluated int          `json:"evaluated"`
	Failed    int          `json:"failed"`
	CacheHits int          `json:"cacheHits"`
	Points    []SweepPoint `json:"points"`
	Pareto    []SweepPoint `json:"pareto"`
}

// gridPoint is one expanded parameter combination.
type gridPoint struct {
	x, p             int
	chunk, g, busLat int64
	hasG             bool
}

// expandPoints resolves the request's point set: the explicit Points list
// when present, otherwise the grid cross product.
func expandPoints(req SweepRequest) ([]gridPoint, error) {
	if len(req.Points) > 0 {
		if len(req.Points) > maxSweepPoints {
			return nil, fmt.Errorf("sweep has %d explicit points, max %d — split the study", len(req.Points), maxSweepPoints)
		}
		points := make([]gridPoint, len(req.Points))
		for i, sel := range req.Points {
			points[i] = gridPoint{x: sel.X, p: sel.P, chunk: sel.Chunk, g: sel.G, busLat: sel.BusLatency, hasG: sel.HasG}
		}
		return points, nil
	}
	return req.Grid.expand(req)
}

// expand builds the cross product, substituting base values for empty
// dimensions.
func (g SweepGrid) expand(base SweepRequest) ([]gridPoint, error) {
	xs := g.X
	if len(xs) == 0 {
		xs = []int{base.Scheme.X}
	}
	ps := g.P
	if len(ps) == 0 {
		ps = []int{base.Config.P}
	}
	chunks := g.Chunk
	if len(chunks) == 0 {
		chunks = []int64{base.Config.Chunk}
	}
	gs := g.G
	hasG := len(gs) > 0
	if !hasG {
		gs = []int64{base.Scheme.G}
	}
	lats := g.BusLatency
	if len(lats) == 0 {
		var b int64 = 1
		if base.Config.BusLatency != nil {
			b = *base.Config.BusLatency
		}
		lats = []int64{b}
	}
	total := len(xs) * len(ps) * len(chunks) * len(gs) * len(lats)
	if total > maxSweepPoints {
		return nil, fmt.Errorf("sweep grid has %d points, max %d — split the study", total, maxSweepPoints)
	}
	points := make([]gridPoint, 0, total)
	for _, x := range xs {
		for _, p := range ps {
			for _, c := range chunks {
				for _, gg := range gs {
					for _, l := range lats {
						points = append(points, gridPoint{x: x, p: p, chunk: c, g: gg, busLat: l, hasG: hasG})
					}
				}
			}
		}
	}
	return points, nil
}

// pointSpecs resolves one grid point into the scheme and config specs its
// run is evaluated (and content-addressed) under.
func pointSpecs(req SweepRequest, gp gridPoint) (SchemeSpec, ConfigSpec) {
	sspec := req.Scheme
	sspec.X = gp.x
	if gp.hasG {
		sspec.G = gp.g
	}
	cspec := req.Config
	cspec.P = gp.p
	cspec.Chunk = gp.chunk
	lat := gp.busLat
	cspec.BusLatency = &lat
	return sspec, cspec
}

// SweepPointKeys expands a sweep request into its explicit point list (grid
// order) together with each point's canonical content address. The cluster
// coordinator uses it to shard a sweep by cache ownership: a point's key
// decides both where its result lives and which node owns evaluating it.
func SweepPointKeys(req SweepRequest) ([]GridSel, []cache.Key, error) {
	wl, err := req.Workload.Build()
	if err != nil {
		return nil, nil, err
	}
	points, err := expandPoints(req)
	if err != nil {
		return nil, nil, err
	}
	sels := make([]GridSel, len(points))
	keys := make([]cache.Key, len(points))
	for i, gp := range points {
		sels[i] = GridSel{X: gp.x, P: gp.p, Chunk: gp.chunk, G: gp.g, HasG: gp.hasG, BusLatency: gp.busLat}
		sspec, cspec := pointSpecs(req, gp)
		sch, err := sspec.Build()
		if err != nil {
			return nil, nil, err
		}
		keys[i] = cache.RequestKey(wl, sch.Name(), cspec.SimConfig())
	}
	return sels, keys, nil
}

// EvalSweep evaluates one sweep request on this server's pool and cache.
// It is the engine behind POST /sweep and the per-node execution step of
// the cluster's work-stealing sweep dispatch. The returned error covers
// only an unbuildable request; per-point failures ride in the points.
func (s *Server) EvalSweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	wl, err := req.Workload.Build()
	if err != nil {
		return nil, err
	}
	if _, err := req.Scheme.Build(); err != nil {
		return nil, err
	}
	points, err := expandPoints(req)
	if err != nil {
		return nil, err
	}

	// Fan the grid across the pool. The caller's goroutine is not a pool
	// worker, so waiting for a queue slot (SubmitWait via patientCtx)
	// cannot deadlock the pool; interactive /run traffic keeps its
	// fail-fast 429 behaviour while a sweep patiently shares capacity.
	ctx = patientCtx(ctx)
	resp := &SweepResponse{Workload: wl.Name, Points: make([]SweepPoint, len(points))}
	var wg sync.WaitGroup
	for i, gp := range points {
		i, gp := i, gp
		sspec, cspec := pointSpecs(req, gp)

		pt := SweepPoint{X: gp.x, P: cspec.SimConfig().Processors, Chunk: gp.chunk, BusLatency: gp.busLat}
		if gp.hasG {
			pt.G = gp.g
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr, _, err := s.evalRun(ctx, wl, sspec, cspec.SimConfig())
			if err != nil {
				pt.Error = OneLine(err)
			} else {
				pt.Scheme = rr.Scheme
				pt.Cached = rr.Cached
				pt.Cycles = rr.Cycles
				pt.SyncTraffic = rr.BusTx + rr.Polls
				pt.SyncOps = rr.SyncOps
				pt.Speedup = rr.Speedup
			}
			resp.Points[i] = pt
		}()
	}
	wg.Wait()

	for _, p := range resp.Points {
		if p.Error != "" {
			resp.Failed++
			continue
		}
		resp.Evaluated++
		if p.Cached {
			resp.CacheHits++
		}
	}
	resp.Pareto = ParetoFront(resp.Points)
	return resp, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, err := s.EvalSweep(r.Context(), req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, *resp)
}

// ParetoFront returns the non-dominated successful points, minimizing
// (Cycles, SyncTraffic), sorted by ascending cycles. A point is dominated
// when another is no worse on both axes and strictly better on one.
func ParetoFront(points []SweepPoint) []SweepPoint {
	ok := make([]SweepPoint, 0, len(points))
	for _, p := range points {
		if p.Error == "" {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].Cycles != ok[j].Cycles {
			return ok[i].Cycles < ok[j].Cycles
		}
		return ok[i].SyncTraffic < ok[j].SyncTraffic
	})
	var front []SweepPoint
	bestTraffic := int64(-1)
	for _, p := range ok {
		if bestTraffic == -1 || p.SyncTraffic < bestTraffic {
			front = append(front, p)
			bestTraffic = p.SyncTraffic
		}
	}
	return front
}
