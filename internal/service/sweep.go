package service

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// maxSweepPoints caps one sweep request's grid: large studies should be
// split into several requests rather than monopolizing the pool.
const maxSweepPoints = 1024

// SweepGrid is the parameter grid to fan out: the cross product of every
// non-empty dimension. An empty dimension holds the base request's value.
type SweepGrid struct {
	X          []int   `json:"x,omitempty"`          // folded process counters
	P          []int   `json:"p,omitempty"`          // processors
	Chunk      []int64 `json:"chunk,omitempty"`      // self-scheduling chunk size
	G          []int64 `json:"g,omitempty"`          // pipeline grouping
	BusLatency []int64 `json:"busLatency,omitempty"` // sync-bus broadcast latency
}

// SweepRequest asks for a parameter study: one workload x scheme family
// evaluated over the grid, answered with every point plus the Pareto front
// of cycles vs. synchronization traffic.
type SweepRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Scheme   SchemeSpec   `json:"scheme"`
	Config   ConfigSpec   `json:"config"`
	Grid     SweepGrid    `json:"grid"`
}

// SweepPoint is one evaluated grid point. SyncTraffic is the run's total
// synchronization fabric load: sync-bus broadcasts plus busy-wait memory
// polls (the two media a scheme's sync operations travel on).
type SweepPoint struct {
	X           int     `json:"x"`
	P           int     `json:"p"`
	Chunk       int64   `json:"chunk"`
	G           int64   `json:"g,omitempty"`
	BusLatency  int64   `json:"busLatency"`
	Scheme      string  `json:"scheme"`
	Cached      bool    `json:"cached"`
	Cycles      int64   `json:"cycles"`
	SyncTraffic int64   `json:"syncTraffic"`
	SyncOps     int64   `json:"syncOps"`
	Speedup     float64 `json:"speedup"`
	Error       string  `json:"error,omitempty"`
}

// SweepResponse reports every point (grid order) and the Pareto front
// (ascending cycles). Points that failed to run carry an Error and are
// excluded from the front.
type SweepResponse struct {
	Workload  string       `json:"workload"`
	Evaluated int          `json:"evaluated"`
	Failed    int          `json:"failed"`
	CacheHits int          `json:"cacheHits"`
	Points    []SweepPoint `json:"points"`
	Pareto    []SweepPoint `json:"pareto"`
}

// gridPoint is one expanded parameter combination.
type gridPoint struct {
	x, p             int
	chunk, g, busLat int64
	hasG             bool
}

// expand builds the cross product, substituting base values for empty
// dimensions.
func (g SweepGrid) expand(base SweepRequest) ([]gridPoint, error) {
	xs := g.X
	if len(xs) == 0 {
		xs = []int{base.Scheme.X}
	}
	ps := g.P
	if len(ps) == 0 {
		ps = []int{base.Config.P}
	}
	chunks := g.Chunk
	if len(chunks) == 0 {
		chunks = []int64{base.Config.Chunk}
	}
	gs := g.G
	hasG := len(gs) > 0
	if !hasG {
		gs = []int64{base.Scheme.G}
	}
	lats := g.BusLatency
	if len(lats) == 0 {
		var b int64 = 1
		if base.Config.BusLatency != nil {
			b = *base.Config.BusLatency
		}
		lats = []int64{b}
	}
	total := len(xs) * len(ps) * len(chunks) * len(gs) * len(lats)
	if total > maxSweepPoints {
		return nil, fmt.Errorf("sweep grid has %d points, max %d — split the study", total, maxSweepPoints)
	}
	points := make([]gridPoint, 0, total)
	for _, x := range xs {
		for _, p := range ps {
			for _, c := range chunks {
				for _, gg := range gs {
					for _, l := range lats {
						points = append(points, gridPoint{x: x, p: p, chunk: c, g: gg, busLat: l, hasG: hasG})
					}
				}
			}
		}
	}
	return points, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	wl, err := req.Workload.Build()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := req.Scheme.Build(); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	points, err := req.Grid.expand(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}

	// Fan the grid across the pool. The handler goroutine is not a pool
	// worker, so waiting for a queue slot (SubmitWait via patientCtx)
	// cannot deadlock the pool; interactive /run traffic keeps its
	// fail-fast 429 behaviour while a sweep patiently shares capacity.
	ctx := patientCtx(r.Context())
	resp := SweepResponse{Workload: wl.Name, Points: make([]SweepPoint, len(points))}
	var wg sync.WaitGroup
	for i, gp := range points {
		i, gp := i, gp
		sspec := req.Scheme
		sspec.X = gp.x
		if gp.hasG {
			sspec.G = gp.g
		}
		cspec := req.Config
		cspec.P = gp.p
		cspec.Chunk = gp.chunk
		lat := gp.busLat
		cspec.BusLatency = &lat

		pt := SweepPoint{X: gp.x, P: cspec.SimConfig().Processors, Chunk: gp.chunk, BusLatency: gp.busLat}
		if gp.hasG {
			pt.G = gp.g
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr, _, err := s.evalRun(ctx, wl, sspec, cspec.SimConfig())
			if err != nil {
				pt.Error = OneLine(err)
			} else {
				pt.Scheme = rr.Scheme
				pt.Cached = rr.Cached
				pt.Cycles = rr.Cycles
				pt.SyncTraffic = rr.BusTx + rr.Polls
				pt.SyncOps = rr.SyncOps
				pt.Speedup = rr.Speedup
			}
			resp.Points[i] = pt
		}()
	}
	wg.Wait()

	for _, p := range resp.Points {
		if p.Error != "" {
			resp.Failed++
			continue
		}
		resp.Evaluated++
		if p.Cached {
			resp.CacheHits++
		}
	}
	resp.Pareto = ParetoFront(resp.Points)
	s.writeJSON(w, http.StatusOK, resp)
}

// ParetoFront returns the non-dominated successful points, minimizing
// (Cycles, SyncTraffic), sorted by ascending cycles. A point is dominated
// when another is no worse on both axes and strictly better on one.
func ParetoFront(points []SweepPoint) []SweepPoint {
	ok := make([]SweepPoint, 0, len(points))
	for _, p := range points {
		if p.Error == "" {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].Cycles != ok[j].Cycles {
			return ok[i].Cycles < ok[j].Cycles
		}
		return ok[i].SyncTraffic < ok[j].SyncTraffic
	})
	var front []SweepPoint
	bestTraffic := int64(-1)
	for _, p := range ok {
		if bestTraffic == -1 || p.SyncTraffic < bestTraffic {
			front = append(front, p)
			bestTraffic = p.SyncTraffic
		}
	}
	return front
}
