package service

import (
	"fmt"
	"io"
	"strings"
)

// OneLine collapses an error into a single-line diagnostic: internal
// newlines (deadlock reports, memory diffs) become "; " so CLI stderr and
// structured log fields stay one record per failure.
func OneLine(err error) string {
	if err == nil {
		return ""
	}
	s := strings.TrimSpace(err.Error())
	s = strings.ReplaceAll(s, "\r\n", "\n")
	parts := strings.Split(s, "\n")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	return strings.Join(parts, "; ")
}

// Fatal writes "tool: message" (one line) to w — the shared CLI error
// renderer for dssim and dsserve. The caller decides the exit code.
func Fatal(w io.Writer, tool string, err error) {
	fmt.Fprintf(w, "%s: %s\n", tool, OneLine(err))
}
