package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a small retrying JSON client for dsserve. Backpressure answers
// (429 queue-full, 503 breaker-open/draining) and transport errors are
// retried with capped exponential backoff plus jitter; a Retry-After header
// overrides the computed delay. Everything else is returned to the caller
// on the first attempt.
type Client struct {
	// Base is the server address, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per request (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Header, when set, is added to every request. The cluster layer uses
	// it for the peer protocol: the shared peer token, the forwarded flag
	// and the sending node's attribution ride here.
	Header http.Header
	// Transport, when set, overrides the HTTP transport for this client's
	// exchanges (a shallow copy of HTTP gets it, so a shared http.Client is
	// never mutated). The cluster layer hangs its seeded link-fault
	// injector here: every peer exchange — forwards, sweep dispatches,
	// handoff, replication — then crosses the same chaos schedule.
	Transport http.RoundTripper
	// OnRetry, when set, observes each retry decision (smoke scripts log it).
	OnRetry func(attempt int, delay time.Duration, cause string)
}

func (c *Client) withDefaults() Client {
	out := *c
	if out.HTTP == nil {
		out.HTTP = http.DefaultClient
	}
	if out.Transport != nil {
		hc := *out.HTTP
		hc.Transport = out.Transport
		out.HTTP = &hc
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 5
	}
	if out.BaseDelay <= 0 {
		out.BaseDelay = 100 * time.Millisecond
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 2 * time.Second
	}
	return out
}

// StatusError is a terminal non-200 HTTP answer: the server responded, the
// response just wasn't success. Callers that must branch on the code — the
// cluster's sweep coordinator treating a 409 ring-skew reject as "re-plan"
// rather than "peer dead" — unwrap it with errors.As.
type StatusError struct {
	Path string
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %s: %d %s", e.Path, e.Code, e.Msg)
}

// PostJSON posts in to path and decodes the 200 response into out,
// retrying retryable failures as configured.
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	cl := c.withDefaults()
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := cl.post(ctx, path, body)
		var retry bool
		var retryAfter time.Duration
		switch {
		case err != nil:
			lastErr, retry = err, true
		case resp.code == http.StatusOK:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(resp.body, out); err != nil {
				return fmt.Errorf("client: decode response: %w", err)
			}
			return nil
		case resp.code == http.StatusTooManyRequests || resp.code == http.StatusServiceUnavailable:
			lastErr = &StatusError{Path: path, Code: resp.code, Msg: resp.message()}
			retry, retryAfter = true, resp.retryAfter
		default:
			return &StatusError{Path: path, Code: resp.code, Msg: resp.message()}
		}
		if !retry || attempt >= cl.MaxAttempts {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt, lastErr)
		}
		delay := cl.backoff(attempt)
		if retryAfter > 0 {
			delay = retryAfter
		}
		if cl.OnRetry != nil {
			cl.OnRetry(attempt, delay, lastErr.Error())
		}
		if err := sleepCtx(ctx, delay); err != nil {
			return err
		}
	}
}

// sleepCtx sleeps for delay unless ctx ends first: a canceled request must
// return promptly even mid-backoff (a server-driven Retry-After can park a
// retry for many seconds), and the timer is stopped rather than left to
// fire into a dead select.
func sleepCtx(ctx context.Context, delay time.Duration) error {
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: cancelled while backing off: %w", ctx.Err())
	}
}

// backoff is BaseDelay*2^(attempt-1) capped at MaxDelay, with half-width
// jitter so synchronized retriers spread out.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.BaseDelay << (attempt - 1)
	if d > c.MaxDelay || d <= 0 {
		d = c.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// clientResp is one decoded HTTP exchange.
type clientResp struct {
	code       int
	body       []byte
	header     http.Header
	retryAfter time.Duration
}

// message extracts the server's error string, falling back to raw body.
func (r clientResp) message() string {
	var e errorResponse
	if json.Unmarshal(r.body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(r.body))
}

func (c *Client) post(ctx context.Context, path string, body []byte) (clientResp, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return clientResp{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range c.Header {
		req.Header[k] = vs
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return clientResp{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return clientResp{}, err
	}
	out := clientResp{code: resp.StatusCode, body: data, header: resp.Header}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		out.retryAfter = parseRetryAfter(ra, time.Now())
	}
	return out, nil
}

// PostRaw posts pre-encoded JSON and relays whatever the server answers —
// status, body and headers — without interpreting HTTP status codes.
// Only transport errors are retried (the server is unreachable, not
// answering); any HTTP response, including 4xx/5xx, belongs to the caller
// verbatim. The cluster layer forwards requests to their owning node this
// way: the owner's answer (a 429 with Retry-After as much as a 200) is the
// answer, while an unreachable owner — after the configured attempts — is
// a node-loss signal the forwarder heals around.
func (c *Client) PostRaw(ctx context.Context, path string, body []byte) (status int, respBody []byte, header http.Header, err error) {
	cl := c.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := cl.post(ctx, path, body)
		if err == nil {
			return resp.code, resp.body, resp.header, nil
		}
		lastErr = err
		if attempt >= cl.MaxAttempts {
			return 0, nil, nil, fmt.Errorf("client: giving up after %d attempts: %w", attempt, lastErr)
		}
		delay := cl.backoff(attempt)
		if cl.OnRetry != nil {
			cl.OnRetry(attempt, delay, lastErr.Error())
		}
		if err := sleepCtx(ctx, delay); err != nil {
			return 0, nil, nil, err
		}
	}
}

// maxRetryAfter caps server-driven backoff: a far-future HTTP-date (or an
// absurd delta) must not park the client for hours.
const maxRetryAfter = 30 * time.Second

// parseRetryAfter interprets a Retry-After value per RFC 9110 §10.2.3:
// either non-negative delta-seconds or an HTTP-date (any format
// http.ParseTime accepts). Garbage, negative deltas and past dates yield 0
// — no override, the computed backoff applies; anything beyond
// maxRetryAfter is clamped to it.
func parseRetryAfter(ra string, now time.Time) time.Duration {
	var d time.Duration
	if sec, err := strconv.Atoi(ra); err == nil {
		if sec < 0 {
			return 0
		}
		d = time.Duration(sec) * time.Second
	} else if t, err := http.ParseTime(ra); err == nil {
		d = t.Sub(now)
	} else {
		return 0
	}
	if d <= 0 {
		return 0
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// Run posts one run request.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var resp RunResponse
	if err := c.PostJSON(ctx, "/run", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SweepAll evaluates an arbitrarily large sweep grid by splitting it into
// server-acceptable sub-grids (<= maxSweepPoints each), posting them
// sequentially through the retrying path, and merging the answers with the
// Pareto front recomputed over the full point set.
func (c *Client) SweepAll(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	subs := splitSweep(req, maxSweepPoints)
	merged := &SweepResponse{}
	for _, sub := range subs {
		var resp SweepResponse
		if err := c.PostJSON(ctx, "/sweep", sub, &resp); err != nil {
			return nil, err
		}
		merged.Workload = resp.Workload
		merged.Evaluated += resp.Evaluated
		merged.Failed += resp.Failed
		merged.CacheHits += resp.CacheHits
		merged.Points = append(merged.Points, resp.Points...)
	}
	merged.Pareto = ParetoFront(merged.Points)
	return merged, nil
}

// gridSize is the number of points the grid expands to (empty dimensions
// contribute one point each, holding the base request's value).
func gridSize(g SweepGrid) int {
	dim := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	return dim(len(g.X)) * dim(len(g.P)) * dim(len(g.Chunk)) * dim(len(g.G)) * dim(len(g.BusLatency))
}

// splitSweep halves the longest grid dimension until every sub-request fits
// the server's point cap. Grid order within each dimension is preserved.
// An explicit point list splits by slicing instead.
func splitSweep(req SweepRequest, limit int) []SweepRequest {
	if pts := req.Points; len(pts) > 0 {
		var subs []SweepRequest
		for start := 0; start < len(pts); start += limit {
			sub := req
			sub.Points = pts[start:min(start+limit, len(pts))]
			subs = append(subs, sub)
		}
		return subs
	}
	if gridSize(req.Grid) <= limit {
		return []SweepRequest{req}
	}
	a, b := req, req
	switch g := req.Grid; {
	case len(g.X) >= len(g.P) && len(g.X) >= len(g.Chunk) && len(g.X) >= len(g.G) && len(g.X) >= len(g.BusLatency):
		a.Grid.X, b.Grid.X = g.X[:len(g.X)/2], g.X[len(g.X)/2:]
	case len(g.P) >= len(g.Chunk) && len(g.P) >= len(g.G) && len(g.P) >= len(g.BusLatency):
		a.Grid.P, b.Grid.P = g.P[:len(g.P)/2], g.P[len(g.P)/2:]
	case len(g.Chunk) >= len(g.G) && len(g.Chunk) >= len(g.BusLatency):
		a.Grid.Chunk, b.Grid.Chunk = g.Chunk[:len(g.Chunk)/2], g.Chunk[len(g.Chunk)/2:]
	case len(g.G) >= len(g.BusLatency):
		a.Grid.G, b.Grid.G = g.G[:len(g.G)/2], g.G[len(g.G)/2:]
	default:
		a.Grid.BusLatency, b.Grid.BusLatency = g.BusLatency[:len(g.BusLatency)/2], g.BusLatency[len(g.BusLatency)/2:]
	}
	return append(splitSweep(a, limit), splitSweep(b, limit)...)
}
