package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
)

func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

// TestRunAllPairs: the service answers /run for every workload x scheme
// pair (pipeline on its depth-2 workload), each checked for a sane payload.
func TestRunAllPairs(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 4})
	flat := []string{"process", "process-basic", "statement", "ref", "instance"}
	workloadSpecs := []WorkloadSpec{
		{Name: "fig21", N: 24},
		{Name: "nested", N: 6, M: 4},
		{Name: "branchy", N: 24},
		{Name: "recurrence", N: 24, D: 2},
		{Name: "stencil", N: 6},
	}
	for _, wspec := range workloadSpecs {
		for _, scheme := range flat {
			req := RunRequest{Workload: wspec, Scheme: SchemeSpec{Name: scheme, X: 4}, Config: ConfigSpec{P: 4}}
			resp, body := post(t, ts, "/run", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", wspec.Name, scheme, resp.StatusCode, body)
			}
			var rr RunResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Fatalf("%s/%s: decode: %v", wspec.Name, scheme, err)
			}
			if rr.Cycles <= 0 || rr.SerialCycles <= 0 || rr.Key == "" {
				t.Errorf("%s/%s: implausible result %+v", wspec.Name, scheme, rr)
			}
		}
	}
	// Pipeline needs a depth-2 nest.
	resp, body := post(t, ts, "/run", RunRequest{
		Workload: WorkloadSpec{Name: "nested", N: 6, M: 4},
		Scheme:   SchemeSpec{Name: "pipeline", X: 4, G: 2},
		Config:   ConfigSpec{P: 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nested/pipeline: status %d: %s", resp.StatusCode, body)
	}
}

// TestRunCacheHit: a repeated identical request is served from cache, the
// hit shows in the response and in /metrics, and the measurements match.
func TestRunCacheHit(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	req := RunRequest{Workload: WorkloadSpec{Name: "fig21", N: 30},
		Scheme: SchemeSpec{Name: "process", X: 4}, Config: ConfigSpec{P: 4}}

	var first, second RunResponse
	resp, body := post(t, ts, "/run", req)
	if resp.StatusCode != 200 {
		t.Fatalf("first: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &first)
	if first.Cached {
		t.Error("first request reported cached")
	}
	resp, body = post(t, ts, "/run", req)
	if resp.StatusCode != 200 {
		t.Fatalf("second: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &second)
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	if first.Key != second.Key || first.Cycles != second.Cycles || first.SyncOps != second.SyncOps {
		t.Errorf("cached result diverges: %+v vs %+v", first, second)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "dsserve_cache_hits_total 1") {
		t.Errorf("metrics missing cache hit:\n%s", mbody)
	}
	if !strings.Contains(string(mbody), `dsserve_requests_total{route="/run",code="200"} 2`) {
		t.Errorf("metrics missing request counts:\n%s", mbody)
	}
	if !strings.Contains(string(mbody), "dsserve_job_latency_seconds_count") {
		t.Errorf("metrics missing job latency histogram:\n%s", mbody)
	}
}

// TestBadRequests: spec and config errors are 400 with a one-line error.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body any
	}{
		{"unknown scheme", RunRequest{Workload: WorkloadSpec{Name: "fig21"}, Scheme: SchemeSpec{Name: "quantum"}}},
		{"unknown workload", RunRequest{Workload: WorkloadSpec{Name: "nope"}, Scheme: SchemeSpec{Name: "ref"}}},
		{"bad config", RunRequest{Workload: WorkloadSpec{Name: "fig21"}, Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: -2}}},
		{"unparsable program", RunRequest{Workload: WorkloadSpec{Source: "DO I=1,N garbage"}, Scheme: SchemeSpec{Name: "ref"}}},
		{"unknown field", map[string]any{"workload": map[string]any{"name": "fig21"}, "shceme": map[string]any{}}},
		{"pipeline on depth-1", RunRequest{Workload: WorkloadSpec{Name: "fig21"}, Scheme: SchemeSpec{Name: "pipeline"}}},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, "/run", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: bad error payload %s", tc.name, body)
		}
		if strings.Contains(er.Error, "\n") {
			t.Errorf("%s: error not one line: %q", tc.name, er.Error)
		}
	}
}

// TestVerifyEndpoint: /verify returns a clean static report for a correct
// pair, caches it, and rejects the pipeline scheme.
func TestVerifyEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	req := VerifyRequest{Workload: WorkloadSpec{Name: "fig21", N: 20},
		Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: 4}, Dynamic: true}

	resp, body := post(t, ts, "/verify", req)
	if resp.StatusCode != 200 {
		t.Fatalf("verify: %d %s", resp.StatusCode, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !vr.OK || vr.Static == nil || vr.Dynamic == nil {
		t.Errorf("verify result: %+v", vr)
	}
	if vr.Cached {
		t.Error("first verify reported cached")
	}
	resp, body = post(t, ts, "/verify", req)
	json.Unmarshal(body, &vr)
	if !vr.Cached {
		t.Error("second identical verify not cached")
	}

	resp, body = post(t, ts, "/verify", VerifyRequest{Workload: WorkloadSpec{Name: "nested"},
		Scheme: SchemeSpec{Name: "pipeline"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pipeline verify: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// TestBackpressure429: with one worker, no queue slack and a slow
// simulation, concurrent distinct requests must see 429 + Retry-After
// rather than queue growth.
func TestBackpressure429(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1, QueueCap: 1, RetryAfter: 2 * time.Second})
	gate := make(chan struct{})
	var once sync.Once
	running := make(chan struct{})
	s.simRun = func(w *codegen.Workload, sch codegen.Scheme, cfg sim.Config) (codegen.Result, error) {
		once.Do(func() { close(running) })
		<-gate
		return codegen.Run(w, sch, cfg)
	}

	// Occupy the worker, then fill the queue, then overflow — distinct
	// requests (different N) so the cache cannot absorb them.
	results := make(chan int, 8)
	headers := make(chan string, 8)
	var wg sync.WaitGroup
	launch := func(n int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts, "/run", RunRequest{Workload: WorkloadSpec{Name: "fig21", N: n},
				Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: 2}})
			results <- resp.StatusCode
			headers <- resp.Header.Get("Retry-After")
		}()
	}
	launch(10)
	<-running  // worker busy
	launch(11) // queue slot
	// Give request 11 a moment to occupy the queue slot.
	time.Sleep(50 * time.Millisecond)
	launch(12) // must overflow
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(results)
	close(headers)

	var got429 bool
	for code := range results {
		if code == http.StatusTooManyRequests {
			got429 = true
		}
	}
	if !got429 {
		t.Fatal("no request observed 429 under a saturated queue")
	}
	var retryAfterSeen bool
	for h := range headers {
		if h != "" {
			retryAfterSeen = true
			if h != "2" {
				t.Errorf("Retry-After = %q, want \"2\"", h)
			}
		}
	}
	if !retryAfterSeen {
		t.Error("429 response missing Retry-After header")
	}
}

// TestSingleflightConcurrentIdentical: concurrent identical /run requests
// execute the simulation once; the others piggyback.
func TestSingleflightConcurrentIdentical(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 4, QueueCap: 16})
	var runs, once = 0, sync.Mutex{}
	inner := s.simRun
	s.simRun = func(w *codegen.Workload, sch codegen.Scheme, cfg sim.Config) (codegen.Result, error) {
		once.Lock()
		runs++
		once.Unlock()
		time.Sleep(20 * time.Millisecond) // widen the dedup window
		return inner(w, sch, cfg)
	}
	req := RunRequest{Workload: WorkloadSpec{Name: "fig21", N: 16},
		Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: 2}}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts, "/run", req)
			if resp.StatusCode != 200 {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	if runs != 1 {
		t.Errorf("simulation ran %d times for identical concurrent requests, want 1", runs)
	}
}

// TestHealthzAndDrain: healthz is 200 while serving and 503 once draining;
// draining finishes in-flight jobs.
func TestHealthzAndDrain(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: status %d, want 503", resp.StatusCode)
	}
	rresp, body := post(t, ts, "/run", RunRequest{Workload: WorkloadSpec{Name: "fig21", N: 99},
		Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: 2}})
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run while draining: status %d, want 503 (%s)", rresp.StatusCode, body)
	}
}

// TestDoSourceProgram: inline .do source runs and is content-addressed —
// the same program text from "different files" shares one cache entry.
func TestDoSourceProgram(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	src := "DO I = 1, 30\n  S1: A[I] = A[I-2] + 1\nEND DO\n"
	req := RunRequest{Workload: WorkloadSpec{Source: src}, Scheme: SchemeSpec{Name: "process", X: 4},
		Config: ConfigSpec{P: 4}}
	resp, body := post(t, ts, "/run", req)
	if resp.StatusCode != 200 {
		t.Fatalf("source run: %d %s", resp.StatusCode, body)
	}
	var first RunResponse
	json.Unmarshal(body, &first)
	resp, body = post(t, ts, "/run", req)
	var second RunResponse
	json.Unmarshal(body, &second)
	if !second.Cached || second.Key != first.Key {
		t.Errorf("identical source not cache-hit: %+v vs %+v", first, second)
	}
}
