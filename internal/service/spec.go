// Package service implements dsserve: an HTTP JSON service that evaluates
// synchronization programs on the deterministic simulator and verifies them
// with the happens-before checkers, behind a bounded worker pool with queue
// backpressure and a content-addressed result cache.
//
// The package also owns the request vocabulary — WorkloadSpec, SchemeSpec,
// ConfigSpec — which the CLIs (cmd/dssim) share, so "unknown scheme" means
// the same thing and renders the same diagnostic everywhere.
package service

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/lang"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// WorkloadSpec names a workload: either a built-in generator with its
// parameters, or inline .do source. Zero-valued parameters take the listed
// defaults.
type WorkloadSpec struct {
	// Name selects a built-in workload: fig21, nested, branchy, recurrence,
	// stencil. Ignored when Source is set.
	Name string `json:"name,omitempty"`
	// Source is a program in the .do loop language; it overrides Name.
	Source string `json:"source,omitempty"`

	N    int64 `json:"n,omitempty"`    // iterations / outer extent / grid size (default 40)
	M    int64 `json:"m,omitempty"`    // inner extent, nested workload (default 8)
	D    int64 `json:"d,omitempty"`    // dependence distance, recurrence (default 2)
	Cost int64 `json:"cost,omitempty"` // statement cost in cycles (default 4)
}

// WorkloadNames lists the built-in workload names Build accepts.
func WorkloadNames() []string {
	return []string{"fig21", "nested", "branchy", "recurrence", "stencil"}
}

// Build materializes the workload.
func (s WorkloadSpec) Build() (*codegen.Workload, error) {
	n, m, d, cost := s.N, s.M, s.D, s.Cost
	if n <= 0 {
		n = 40
	}
	if m <= 0 {
		m = 8
	}
	if d <= 0 {
		d = 2
	}
	if cost <= 0 {
		cost = 4
	}
	if s.Source != "" {
		w, err := lang.Parse(s.Source)
		if err != nil {
			return nil, fmt.Errorf("parse program: %w", err)
		}
		return w, nil
	}
	switch s.Name {
	case "fig21":
		return workloads.Fig21(n, cost), nil
	case "nested":
		return workloads.Nested(n, m, cost), nil
	case "branchy":
		return workloads.Branchy(n, cost), nil
	case "recurrence":
		return workloads.Recurrence(n, d, cost), nil
	case "stencil":
		return workloads.Stencil(n, cost), nil
	case "":
		return nil, fmt.Errorf("workload: name or source required (built-ins: %v)", WorkloadNames())
	}
	return nil, fmt.Errorf("unknown workload %q (built-ins: %v)", s.Name, WorkloadNames())
}

// SchemeSpec names a synchronization scheme with its parameters.
type SchemeSpec struct {
	// Name: process, process-basic, pipeline, statement, ref, instance.
	Name string `json:"name"`
	X    int    `json:"x,omitempty"` // folded process counters (default 8)
	K    int    `json:"k,omitempty"` // statement counters (0 = one per source)
	G    int64  `json:"g,omitempty"` // pipeline grouping (default 1)
}

// SchemeNames lists the scheme names Build accepts.
func SchemeNames() []string {
	return []string{"process", "process-basic", "pipeline", "statement", "ref", "instance"}
}

// Build returns a fresh scheme instance. Fresh matters: the instance-based
// scheme carries per-run renamed storage, so scheme values must never be
// shared between runs.
func (s SchemeSpec) Build() (codegen.Scheme, error) {
	x := s.X
	if x <= 0 {
		x = 8
	}
	g := s.G
	if g <= 0 {
		g = 1
	}
	switch s.Name {
	case "process":
		return codegen.ProcessOriented{X: x, Improved: true}, nil
	case "process-basic":
		return codegen.ProcessOriented{X: x, Improved: false}, nil
	case "pipeline":
		return codegen.PipelinedOuter{X: x, G: g}, nil
	case "statement":
		return codegen.StatementOriented{K: s.K}, nil
	case "ref":
		return codegen.RefBased{}, nil
	case "instance":
		return codegen.NewInstanceBased(), nil
	case "":
		return nil, fmt.Errorf("scheme: name required (one of %v)", SchemeNames())
	}
	return nil, fmt.Errorf("unknown scheme %q (one of %v)", s.Name, SchemeNames())
}

// Verifiable reports whether the scheme is in scope for the static
// happens-before verifier (the pipelined-outer scheme's processes are
// outer-loop slices, which the iteration-indexed model does not cover).
func (s SchemeSpec) Verifiable() bool { return s.Name != "pipeline" }

// ConfigSpec describes the simulated machine. Zero values take the listed
// defaults; negative values are rejected by sim.Config.Check.
type ConfigSpec struct {
	P          int    `json:"p,omitempty"`          // processors (default 8)
	BusLatency *int64 `json:"busLatency,omitempty"` // sync-bus broadcast latency (default 1)
	Coverage   bool   `json:"coverage,omitempty"`   // write-coverage optimization
	MemLatency int64  `json:"memLatency,omitempty"` // memory-module latency (default 2)
	Modules    int    `json:"modules,omitempty"`    // memory modules (default: one per processor)
	SyncOpCost *int64 `json:"syncOpCost,omitempty"` // sync-op issue cost (default 1)
	SchedCost  *int64 `json:"schedCost,omitempty"`  // per-dispatch overhead (default 1)
	DataLat    int64  `json:"dataLatency,omitempty"`
	Chunk      int64  `json:"chunk,omitempty"` // >1 selects chunked self-scheduling
	MaxCycles  int64  `json:"maxCycles,omitempty"`
	// Fault, when set, arms the deterministic fault plan for this run.
	// Faulty runs hash to their own cache addresses (the plan is part of
	// the canonical key), so they never poison clean entries.
	Fault *fault.Plan `json:"fault,omitempty"`
	// Recover, when set and armed, lets the simulator reclaim a halted
	// processor's PC ownership and fold its pending iterations onto live
	// processors instead of diagnosing a stall. Armed recovery is part of
	// the canonical cache key; disarmed recovery hashes like no recovery.
	Recover *sim.Recover `json:"recover,omitempty"`
}

// SimConfig resolves the spec into a simulator configuration (defaults
// applied; validity is checked by the run entry points via Config.Check).
func (c ConfigSpec) SimConfig() sim.Config {
	p := c.P
	if p == 0 {
		p = 8
	}
	mods := c.Modules
	if mods == 0 {
		mods = p
	}
	deref := func(v *int64, def int64) int64 {
		if v == nil {
			return def
		}
		return *v
	}
	cfg := sim.Config{
		Processors:    p,
		BusLatency:    deref(c.BusLatency, 1),
		BusCoverage:   c.Coverage,
		MemLatency:    c.MemLatency,
		Modules:       mods,
		SyncOpCost:    deref(c.SyncOpCost, 1),
		SchedOverhead: deref(c.SchedCost, 1),
		DataLatency:   c.DataLat,
		MaxCycles:     c.MaxCycles,
	}
	if cfg.MemLatency == 0 {
		cfg.MemLatency = 2
	}
	if c.Chunk > 1 {
		cfg.Dispatch = sim.DispatchChunked
		cfg.ChunkSize = c.Chunk
	}
	if c.Fault != nil {
		cfg.FaultPlan = *c.Fault
	}
	if c.Recover != nil {
		cfg.Recover = *c.Recover
	}
	return cfg
}
