package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/sim"
)

// TestRunWithFaultSpec: /run accepts a fault plan; the faulty run succeeds
// under delays, reports its injected-fault counts, and hashes to a cache
// address distinct from the clean run's.
func TestRunWithFaultSpec(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	clean := RunRequest{Workload: WorkloadSpec{Name: "fig21", N: 24},
		Scheme: SchemeSpec{Name: "process", X: 4}, Config: ConfigSpec{P: 4}}
	faulty := clean
	faulty.Config.Fault = &fault.Plan{Seed: 7, DelayProb: 0.3, DelayCycles: 4}

	resp, body := post(t, ts, "/run", clean)
	if resp.StatusCode != 200 {
		t.Fatalf("clean run: %d %s", resp.StatusCode, body)
	}
	var cr RunResponse
	json.Unmarshal(body, &cr)

	resp, body = post(t, ts, "/run", faulty)
	if resp.StatusCode != 200 {
		t.Fatalf("faulty run: %d %s", resp.StatusCode, body)
	}
	var fr RunResponse
	json.Unmarshal(body, &fr)
	if fr.Key == cr.Key {
		t.Error("faulty run shares the clean run's cache address")
	}
	if fr.Stats.Faults.Delays == 0 {
		t.Errorf("faulty run reports no injected delays: %+v", fr.Stats.Faults)
	}
	if cr.Stats.Faults.Total() != 0 {
		t.Errorf("clean run reports injected faults: %+v", cr.Stats.Faults)
	}

	// Identical faulty request: cache hit on the faulty address.
	resp, body = post(t, ts, "/run", faulty)
	var fr2 RunResponse
	json.Unmarshal(body, &fr2)
	if !fr2.Cached || fr2.Key != fr.Key {
		t.Errorf("faulty rerun not cached: %+v", fr2)
	}

	mbody := getMetrics(t, ts.URL)
	if !strings.Contains(mbody, "dsserve_injected_faults_total") ||
		strings.Contains(mbody, "dsserve_injected_faults_total 0\n") {
		t.Errorf("metrics missing injected-fault count:\n%s", mbody)
	}
}

// TestBreakerOpensAndRecovers: repeated stall-class failures (total drops
// deadlock every run) open the breaker, subsequent requests shed with 503 +
// Retry-After, and after the cooldown a clean trial closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond})
	stallReq := func(n int64) RunRequest {
		return RunRequest{Workload: WorkloadSpec{Name: "recurrence", N: n, D: 2},
			Scheme: SchemeSpec{Name: "process", X: 4},
			Config: ConfigSpec{P: 4, Fault: &fault.Plan{Seed: 1, DropProb: 1}}}
	}
	// Two distinct stalling runs (distinct N so the cache cannot absorb
	// them) reach the threshold.
	for i := int64(0); i < 2; i++ {
		resp, body := post(t, ts, "/run", stallReq(20+i))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("stalling run %d: status %d, want 400 (%s)", i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "deadlock") {
			t.Errorf("stall response lost the diagnosis: %s", body)
		}
	}
	// The circuit is open: even a clean request is shed.
	cleanReq := RunRequest{Workload: WorkloadSpec{Name: "fig21", N: 30},
		Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: 4}}
	resp, body := post(t, ts, "/run", cleanReq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 503 missing Retry-After")
	}
	mbody := getMetrics(t, ts.URL)
	if !strings.Contains(mbody, "dsserve_breaker_state 2") {
		t.Errorf("metrics do not show the open breaker:\n%s", mbody)
	}
	if !strings.Contains(mbody, "dsserve_breaker_opens_total 1") {
		t.Errorf("metrics missing breaker open count:\n%s", mbody)
	}
	if !strings.Contains(mbody, "dsserve_watchdog_trips_total 2") {
		t.Errorf("metrics missing watchdog trips:\n%s", mbody)
	}

	// After the cooldown the half-open trial admits one request; its
	// success closes the circuit for everyone.
	time.Sleep(150 * time.Millisecond)
	resp, body = post(t, ts, "/run", cleanReq)
	if resp.StatusCode != 200 {
		t.Fatalf("half-open trial: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	resp, body = post(t, ts, "/run", RunRequest{Workload: WorkloadSpec{Name: "fig21", N: 31},
		Scheme: SchemeSpec{Name: "ref"}, Config: ConfigSpec{P: 4}})
	if resp.StatusCode != 200 {
		t.Fatalf("recovered breaker: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(getMetrics(t, ts.URL), "dsserve_breaker_state 0") {
		t.Error("metrics do not show the recovered breaker")
	}
}

// TestRunRecoversFromHalt: a halt that deadlocks the run without recovery
// completes with recovered:true when a Recover spec is armed; the breaker
// stays closed (a healed stall is a served request, not a failure) and the
// recovery counters reach /metrics.
func TestRunRecoversFromHalt(t *testing.T) {
	srv, ts := testServer(t, Options{Workers: 2, BreakerThreshold: 2})
	req := RunRequest{Workload: WorkloadSpec{Name: "recurrence", N: 24, D: 2},
		Scheme: SchemeSpec{Name: "process", X: 4},
		Config: ConfigSpec{P: 4, Fault: &fault.Plan{HaltProc: 1, HaltAtCycle: 50}}}

	// Without recovery the halt is a diagnosed stall: 400, naming the halt.
	resp, body := post(t, ts, "/run", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unrecovered halt: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "halted") {
		t.Errorf("halt diagnosis missing from %s", body)
	}

	// With recovery armed the same run completes and reports the repair.
	req.Config.Recover = &sim.Recover{AfterCycles: 30}
	resp, body = post(t, ts, "/run", req)
	if resp.StatusCode != 200 {
		t.Fatalf("recovery-armed run: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	var rr RunResponse
	json.Unmarshal(body, &rr)
	if !rr.Recovered || rr.Recovery == nil {
		t.Fatalf("run did not report recovery: %+v", rr)
	}
	if rr.Recovery.Proc != 1 || rr.Recovery.CostCycles != 30 {
		t.Errorf("report = %+v, want proc 1 reclaimed at cost 30", rr.Recovery)
	}

	// The healed stall is a breaker success: still closed, counters visible.
	if st := srv.Breaker().State(); st != BreakerClosed {
		t.Errorf("breaker state %v after a healed stall, want closed", st)
	}
	mbody := getMetrics(t, ts.URL)
	if !strings.Contains(mbody, "dsserve_recovered_runs_total 1") {
		t.Errorf("metrics missing recovered-run count:\n%s", mbody)
	}
	if !strings.Contains(mbody, "dsserve_recovery_cost_cycles_total 30") {
		t.Errorf("metrics missing recovery cost:\n%s", mbody)
	}

	// Identical recovered request: a cache hit on the recovery-armed address.
	resp, body = post(t, ts, "/run", req)
	var rr2 RunResponse
	json.Unmarshal(body, &rr2)
	if !rr2.Cached || !rr2.Recovered {
		t.Errorf("recovered rerun not cached with its report: %+v", rr2)
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(b)
}
