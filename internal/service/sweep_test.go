package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestSweepEndpoint: a small X x P x busLatency grid over the Fig 2.1 loop
// answers with every point and a sane Pareto front.
func TestSweepEndpoint(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 4, QueueCap: 8})
	req := SweepRequest{
		Workload: WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   SchemeSpec{Name: "process"},
		Config:   ConfigSpec{},
		Grid: SweepGrid{
			X:          []int{2, 4, 8},
			P:          []int{2, 4},
			BusLatency: []int64{1, 4},
		},
	}
	resp, body := post(t, ts, "/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sr.Points) != 12 {
		t.Fatalf("got %d points, want 12", len(sr.Points))
	}
	if sr.Failed != 0 || sr.Evaluated != 12 {
		t.Errorf("evaluated=%d failed=%d, want 12/0 (points: %+v)", sr.Evaluated, sr.Failed, sr.Points)
	}
	if len(sr.Pareto) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The front must be sorted by cycles and strictly improving on traffic.
	for i := 1; i < len(sr.Pareto); i++ {
		if sr.Pareto[i].Cycles < sr.Pareto[i-1].Cycles {
			t.Errorf("front not sorted by cycles: %+v", sr.Pareto)
		}
		if sr.Pareto[i].SyncTraffic >= sr.Pareto[i-1].SyncTraffic {
			t.Errorf("front point %d not improving on traffic: %+v", i, sr.Pareto)
		}
	}
	// No front point may be dominated by any evaluated point.
	for _, f := range sr.Pareto {
		for _, p := range sr.Points {
			if p.Error != "" {
				continue
			}
			if p.Cycles <= f.Cycles && p.SyncTraffic <= f.SyncTraffic &&
				(p.Cycles < f.Cycles || p.SyncTraffic < f.SyncTraffic) {
				t.Errorf("front point %+v dominated by %+v", f, p)
			}
		}
	}
}

// TestSweepUsesCache: sweeping after /run on an overlapping point reuses
// the cached result; a repeated sweep is all cache hits.
func TestSweepUsesCache(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2, QueueCap: 8})
	req := SweepRequest{
		Workload: WorkloadSpec{Name: "recurrence", N: 24},
		Scheme:   SchemeSpec{Name: "process"},
		Grid:     SweepGrid{X: []int{2, 4}},
	}
	resp, body := post(t, ts, "/sweep", req)
	if resp.StatusCode != 200 {
		t.Fatalf("first sweep: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts, "/sweep", req)
	if resp.StatusCode != 200 {
		t.Fatalf("second sweep: %d %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	json.Unmarshal(body, &sr)
	if sr.CacheHits != len(sr.Points) {
		t.Errorf("repeat sweep: %d/%d cache hits, want all", sr.CacheHits, len(sr.Points))
	}
}

// TestSweepGridCap: an oversized grid is rejected up front.
func TestSweepGridCap(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1})
	big := make([]int, 40)
	for i := range big {
		big[i] = i + 1
	}
	lats := make([]int64, 40)
	for i := range lats {
		lats[i] = int64(i + 1)
	}
	resp, body := post(t, ts, "/sweep", SweepRequest{
		Workload: WorkloadSpec{Name: "fig21"},
		Scheme:   SchemeSpec{Name: "process"},
		Grid:     SweepGrid{X: big, P: big, BusLatency: lats},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized grid: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// TestParetoFront exercises the dominance logic directly.
func TestParetoFront(t *testing.T) {
	pts := []SweepPoint{
		{Cycles: 100, SyncTraffic: 50},
		{Cycles: 120, SyncTraffic: 30},
		{Cycles: 110, SyncTraffic: 60}, // dominated by (100,50)
		{Cycles: 100, SyncTraffic: 70}, // dominated by (100,50)
		{Cycles: 90, SyncTraffic: 90},
		{Cycles: 200, SyncTraffic: 10},
		{Cycles: 150, SyncTraffic: 30, Error: "x"}, // failed: excluded
	}
	front := ParetoFront(pts)
	want := [][2]int64{{90, 90}, {100, 50}, {120, 30}, {200, 10}}
	if len(front) != len(want) {
		t.Fatalf("front %+v, want %v", front, want)
	}
	for i, w := range want {
		if front[i].Cycles != w[0] || front[i].SyncTraffic != w[1] {
			t.Errorf("front[%d] = (%d,%d), want %v", i, front[i].Cycles, front[i].SyncTraffic, w)
		}
	}
}
