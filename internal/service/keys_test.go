package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestExportedKeysMatchServer: the exported canonical-key functions — the
// cluster router's ownership oracle — must compute exactly the addresses
// the handlers cache under. Drift here would split a request's cache home
// from its routing home.
func TestExportedKeysMatchServer(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})

	runReq := RunRequest{
		Workload: WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   SchemeSpec{Name: "process", X: 4},
		Config:   ConfigSpec{P: 4},
	}
	resp, body := post(t, ts, "/run", runReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run: %d %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	key, err := RunKey(runReq)
	if err != nil {
		t.Fatal(err)
	}
	if key.String() != rr.Key {
		t.Errorf("RunKey = %s, server cached under %s", key, rr.Key)
	}

	verReq := VerifyRequest{
		Workload: runReq.Workload,
		Scheme:   runReq.Scheme,
		Config:   runReq.Config,
		Dynamic:  true,
	}
	resp, body = post(t, ts, "/verify", verReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/verify: %d %s", resp.StatusCode, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	vkey, err := VerifyKey(verReq)
	if err != nil {
		t.Fatal(err)
	}
	if vkey.String() != vr.Key {
		t.Errorf("VerifyKey = %s, server cached under %s", vkey, vr.Key)
	}
	if vkey == key {
		t.Error("verify key collides with run key; the mode discriminator is lost")
	}

	compReq := CompileRequest{
		Source: "package p\nfunc k(a []int) {\n\tfor i := 1; i < 20; i++ {\n\t\ta[i] = a[i-1] + i\n\t}\n}\n",
		Config: ConfigSpec{P: 4},
	}
	resp, body = post(t, ts, "/compile", compReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compile: %d %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	ckey, err := CompileRequestKey(compReq)
	if err != nil {
		t.Fatal(err)
	}
	if ckey.String() != cr.Key {
		t.Errorf("CompileRequestKey = %s, server cached under %s", ckey, cr.Key)
	}
}

// TestSweepPointsEquivalence: a sweep dispatched as explicit points (the
// cluster's sub-grid form) must measure exactly what the same sweep
// measures as a cross-product grid — the determinism argument that makes
// cluster-wide sweeps byte-identical to single-node ones.
func TestSweepPointsEquivalence(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 4})

	base := SweepRequest{
		Workload: WorkloadSpec{Name: "fig21", N: 24},
		Scheme:   SchemeSpec{Name: "process"},
		Config:   ConfigSpec{},
		Grid:     SweepGrid{X: []int{2, 4}, P: []int{2, 4}, Chunk: []int64{1, 2}},
	}
	sels, keys, err := SweepPointKeys(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 8 || len(keys) != 8 {
		t.Fatalf("expanded %d sels / %d keys, want 8", len(sels), len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k.String()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d distinct point keys of 8: points must address distinct cache entries", len(seen))
	}

	gridResp, err := s.EvalSweep(t.Context(), base)
	if err != nil {
		t.Fatal(err)
	}
	ptsReq := base
	ptsReq.Grid = SweepGrid{}
	ptsReq.Points = sels
	// A fresh server so no point arrives via the first sweep's cache.
	s2, _ := testServer(t, Options{Workers: 4})
	ptsResp, err := s2.EvalSweep(t.Context(), ptsReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(ptsResp.Points) != len(gridResp.Points) {
		t.Fatalf("points form evaluated %d points, grid form %d", len(ptsResp.Points), len(gridResp.Points))
	}
	for i := range gridResp.Points {
		a, b := gridResp.Points[i], ptsResp.Points[i]
		a.Cached, b.Cached = false, false
		if a != b {
			t.Errorf("point %d differs: grid %+v vs points %+v", i, a, b)
		}
	}
	if len(gridResp.Pareto) != len(ptsResp.Pareto) {
		t.Errorf("Pareto fronts differ: %d vs %d points", len(gridResp.Pareto), len(ptsResp.Pareto))
	}
}
