package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesBackpressure: 503s with Retry-After are retried until
// the server recovers; the final answer comes through.
func TestClientRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(errorResponse{Error: "breaker open"})
			return
		}
		json.NewEncoder(w).Encode(RunResponse{Cycles: 42})
	}))
	defer ts.Close()

	var retries int
	c := Client{Base: ts.URL, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		OnRetry: func(int, time.Duration, string) { retries++ }}
	var resp RunResponse
	if err := c.PostJSON(context.Background(), "/run", RunRequest{}, &resp); err != nil {
		t.Fatalf("retrying client gave up: %v", err)
	}
	if resp.Cycles != 42 {
		t.Errorf("cycles = %d, want 42", resp.Cycles)
	}
	if calls.Load() != 3 || retries != 2 {
		t.Errorf("calls = %d retries = %d, want 3/2", calls.Load(), retries)
	}
}

// TestClientGivesUpAndFailsFast: persistent 503 exhausts MaxAttempts; a
// 400 is terminal on the first attempt.
func TestClientGivesUpAndFailsFast(t *testing.T) {
	var calls atomic.Int64
	code := http.StatusServiceUnavailable
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(errorResponse{Error: "nope"})
	}))
	defer ts.Close()

	c := Client{Base: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	if err := c.PostJSON(context.Background(), "/run", RunRequest{}, nil); err == nil {
		t.Fatal("client succeeded against a permanently unavailable server")
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}

	calls.Store(0)
	code = http.StatusBadRequest
	if err := c.PostJSON(context.Background(), "/run", RunRequest{}, nil); err == nil {
		t.Fatal("client retried a 400")
	}
	if calls.Load() != 1 {
		t.Errorf("400 took %d attempts, want 1 (not retryable)", calls.Load())
	}
}

// TestParseRetryAfter: both RFC 9110 Retry-After forms are honored —
// delta-seconds and HTTP-date — with garbage and past dates falling back to
// the computed backoff (0) and oversized values clamped.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"3", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"9999999", maxRetryAfter}, // delta clamped
		{now.Add(7 * time.Second).Format(http.TimeFormat), 7 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0},              // past date
		{now.Add(2 * time.Hour).Format(http.TimeFormat), maxRetryAfter}, // date clamped
		{now.Add(5 * time.Second).Format(time.RFC850), 5 * time.Second}, // obsolete RFC 850 form
		{"soon", 0},
		{"", 0},
		{"3.5", 0}, // delta-seconds is an integer; fractions are malformed
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestClientHonorsHTTPDateRetryAfter: a 503 whose Retry-After is an
// HTTP-date (not delta-seconds) still drives the retry delay end to end.
func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// A date ~now: parses to <= 0 → no override, fast test.
			w.Header().Set("Retry-After", time.Now().UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(errorResponse{Error: "draining"})
			return
		}
		json.NewEncoder(w).Encode(RunResponse{Cycles: 7})
	}))
	defer ts.Close()

	c := Client{Base: ts.URL, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	var resp RunResponse
	if err := c.PostJSON(context.Background(), "/run", RunRequest{}, &resp); err != nil {
		t.Fatalf("client gave up: %v", err)
	}
	if resp.Cycles != 7 || calls.Load() != 2 {
		t.Errorf("cycles = %d calls = %d, want 7/2", resp.Cycles, calls.Load())
	}
}

// TestClientCancelDuringBackoff: a context canceled while the client sleeps
// out a backoff (here a server-driven 20s Retry-After) must abort the sleep
// promptly instead of parking for the full delay — the regression this pins
// is a bare time.Sleep in the retry loop.
func TestClientCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "20")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(errorResponse{Error: "breaker open"})
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	backingOff := make(chan struct{})
	c := Client{Base: ts.URL, MaxAttempts: 3,
		OnRetry: func(int, time.Duration, string) { close(backingOff) }}
	done := make(chan error, 1)
	go func() { done <- c.PostJSON(ctx, "/run", RunRequest{}, nil) }()

	<-backingOff // the client is now inside the 20s backoff sleep
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("cancellation took %v to unblock the backoff", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked 5s after cancellation mid-backoff")
	}
}

// TestClientPostRawRelaysStatus: PostRaw hands back any HTTP answer
// verbatim — a 400 is data, not a retryable failure — while transport
// errors are retried and eventually surfaced.
func TestClientPostRawRelaysStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if got := r.Header.Get("X-DSServe-Peer-Token"); got != "s3cret" {
			t.Errorf("peer token header = %q, want s3cret", got)
		}
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"tenant over quota"}`))
	}))
	defer ts.Close()

	c := Client{Base: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond,
		Header: http.Header{"X-Dsserve-Peer-Token": {"s3cret"}}}
	code, body, hdr, err := c.PostRaw(context.Background(), "/run", []byte(`{}`))
	if err != nil {
		t.Fatalf("PostRaw: %v", err)
	}
	if code != http.StatusTooManyRequests || calls.Load() != 1 {
		t.Errorf("code = %d calls = %d, want 429 on the single attempt", code, calls.Load())
	}
	if hdr.Get("Retry-After") != "7" {
		t.Errorf("Retry-After = %q, want relayed 7", hdr.Get("Retry-After"))
	}
	if want := "tenant over quota"; !bytes.Contains(body, []byte(want)) {
		t.Errorf("body %q does not relay %q", body, want)
	}

	ts.Close() // now unreachable: transport errors retry, then surface
	calls.Store(0)
	if _, _, _, err := c.PostRaw(context.Background(), "/run", []byte(`{}`)); err == nil {
		t.Fatal("PostRaw succeeded against a closed server")
	}
}

// TestSplitSweepPoints: an explicit point list splits by slicing.
func TestSplitSweepPoints(t *testing.T) {
	req := SweepRequest{}
	for i := 0; i < 25; i++ {
		req.Points = append(req.Points, GridSel{X: i + 1, P: 4, Chunk: 1, BusLatency: 1})
	}
	subs := splitSweep(req, 10)
	if len(subs) != 3 {
		t.Fatalf("split into %d sub-requests, want 3", len(subs))
	}
	total := 0
	for _, sub := range subs {
		total += len(sub.Points)
	}
	if total != 25 {
		t.Errorf("split covers %d points, want 25", total)
	}
}

// TestSplitSweep: oversized grids split along the longest dimension into
// server-acceptable pieces covering every point exactly once.
func TestSplitSweep(t *testing.T) {
	var xs []int
	for i := 0; i < 50; i++ {
		xs = append(xs, i+1)
	}
	req := SweepRequest{Grid: SweepGrid{X: xs, P: []int{2, 4, 8}, Chunk: []int64{1, 4}}}
	if got := gridSize(req.Grid); got != 300 {
		t.Fatalf("gridSize = %d, want 300", got)
	}
	subs := splitSweep(req, 64)
	total := 0
	seen := map[int]bool{}
	for _, sub := range subs {
		n := gridSize(sub.Grid)
		if n > 64 {
			t.Errorf("sub-grid has %d points, cap 64", n)
		}
		total += n
		for _, x := range sub.Grid.X {
			seen[x] = true
		}
	}
	if total != 300 {
		t.Errorf("split covers %d points, want 300", total)
	}
	if len(seen) != 50 {
		t.Errorf("split lost X values: %d of 50 present", len(seen))
	}
}

// TestClientSweepAll: an oversized grid is served by multiple /sweep posts
// and merged with a recomputed Pareto front.
func TestClientSweepAll(t *testing.T) {
	var posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode sub-sweep: %v", err)
		}
		resp := SweepResponse{Workload: "fake"}
		for _, x := range req.Grid.X {
			resp.Evaluated++
			// A pure trade-off curve: every point is non-dominated, so the
			// merged front must span every sub-grid.
			resp.Points = append(resp.Points, SweepPoint{
				X: x, Cycles: int64(x), SyncTraffic: int64(1_000_000 - x)})
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	grid := SweepGrid{}
	for i := 0; i < 2*maxSweepPoints; i++ {
		grid.X = append(grid.X, i+1)
	}
	c := Client{Base: ts.URL, BaseDelay: time.Millisecond}
	resp, err := c.SweepAll(context.Background(), SweepRequest{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	if posts.Load() < 2 {
		t.Errorf("oversized sweep used %d posts, want >= 2", posts.Load())
	}
	if resp.Evaluated != 2*maxSweepPoints || len(resp.Points) != 2*maxSweepPoints {
		t.Errorf("merged %d/%d points, want %d", resp.Evaluated, len(resp.Points), 2*maxSweepPoints)
	}
	// The front must be computed over the union: on a pure trade-off curve
	// every point is non-dominated, so a front computed per sub-grid and
	// concatenated would look the same — but one taken from only the last
	// sub-response would not. Require full coverage in cycle order.
	if len(resp.Pareto) != 2*maxSweepPoints {
		t.Errorf("merged Pareto front has %d points, want %d", len(resp.Pareto), 2*maxSweepPoints)
	} else if resp.Pareto[0].X != 1 || resp.Pareto[len(resp.Pareto)-1].X != 2*maxSweepPoints {
		t.Errorf("front endpoints %d..%d, want 1..%d",
			resp.Pareto[0].X, resp.Pareto[len(resp.Pareto)-1].X, 2*maxSweepPoints)
	}
}
