package service

import (
	"testing"
	"time"
)

// testClock is an injectable manual clock.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time { return c.t }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &testClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

// TestBreakerOpensAfterThreshold: consecutive failures open the circuit;
// an intervening success resets the count.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success() // resets
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open after 3 consecutive failures")
	}
	if ok, ra := b.Allow(); ok || ra <= 0 {
		t.Errorf("open breaker admitted a request (ok=%v retryAfter=%v)", ok, ra)
	}
	if b.Opens() != 1 {
		t.Errorf("opens = %d, want 1", b.Opens())
	}
}

// TestBreakerHalfOpenTrial: after the cooldown exactly one probe is
// admitted; its success closes the circuit, its failure re-opens it.
func TestBreakerHalfOpenTrial(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	b.Failure()
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request")
	}
	clk.t = clk.t.Add(2 * time.Minute)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooled-down breaker refused the trial probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A second concurrent caller must wait for the trial's verdict.
	if ok, _ := b.Allow(); ok {
		t.Error("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Error("successful trial did not close the circuit")
	}
	if ok, _ := b.Allow(); !ok {
		t.Error("closed breaker refused a request")
	}

	// Re-open, cool down, fail the trial: straight back to open.
	b.Failure()
	clk.t = clk.t.Add(2 * time.Minute)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second trial refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Error("failed trial did not re-open the circuit")
	}
	if b.Opens() != 3 {
		t.Errorf("opens = %d, want 3", b.Opens())
	}
}

// TestBreakerStateStrings: the metric legend matches the states.
func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerHalfOpen.String() != "half-open" ||
		BreakerOpen.String() != "open" {
		t.Error("breaker state strings wrong")
	}
}
