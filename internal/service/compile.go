package service

import (
	"context"
	"fmt"
	"net/http"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/frontend"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
)

// CompileRequest asks the service to lower Go source through the frontend
// and evaluate every accepted loop nest under the requested schemes.
type CompileRequest struct {
	// Filename labels diagnostic positions (default "input.go").
	Filename string `json:"filename,omitempty"`
	// Source is the Go source text to lower.
	Source string `json:"source"`
	// Schemes to place and measure; empty selects every scheme.
	Schemes []SchemeSpec `json:"schemes,omitempty"`
	Config  ConfigSpec   `json:"config"`
}

// CompileScheme is one scheme's outcome on one lowered loop: either a
// refusal (Error) or a measured, statically verified placement.
type CompileScheme struct {
	Scheme string `json:"scheme"`
	// Error reports a scheme that refused the loop (unknown-distance arcs,
	// wrong nest shape); the other fields are then zero.
	Error        string            `json:"error,omitempty"`
	SerialCycles int64             `json:"serialCycles,omitempty"`
	Cycles       int64             `json:"cycles,omitempty"`
	Speedup      float64           `json:"speedup,omitempty"`
	SyncOps      int64             `json:"syncOps,omitempty"`
	WaitSync     int64             `json:"waitSyncCycles,omitempty"`
	BusTx        int64             `json:"busBroadcasts,omitempty"`
	Foot         codegen.Footprint `json:"footprint"`
	// VerifyOK is the static happens-before verdict; nil when the scheme is
	// outside the static model (outer-loop pipelining).
	VerifyOK *bool `json:"verifyOk,omitempty"`
	Findings int   `json:"findings,omitempty"`
}

// CompileLoop is one accepted loop nest: its dependence analysis and the
// per-scheme synchronization comparison. Unknown lists the conservative
// (unproven) dependence arcs with their classification — distinct from the
// proven distance-vector arcs rendered in Graph.
type CompileLoop struct {
	Workload   string            `json:"workload"`
	Pos        frontend.Position `json:"pos"`
	Depth      int               `json:"depth"`
	Iterations int64             `json:"iterations"`
	Graph      string            `json:"graph"`
	Unknown    []string          `json:"unknown,omitempty"`
	Schemes    []CompileScheme   `json:"schemes"`
}

// CompileOutcome is the cacheable part of a compile evaluation.
type CompileOutcome struct {
	Loops    []CompileLoop         `json:"loops"`
	Rejected []frontend.Diagnostic `json:"rejected"`
}

// CompileResponse decorates the outcome with its content address.
type CompileResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	CompileOutcome
}

// Hard reports whether the outcome should fail a gating caller: any
// rejected candidate, any static verification finding, or a loop that no
// requested scheme could synchronize.
func (o *CompileOutcome) Hard() bool {
	if len(o.Rejected) > 0 {
		return true
	}
	for _, lp := range o.Loops {
		allRefused := len(lp.Schemes) > 0
		for _, cs := range lp.Schemes {
			if cs.Error == "" {
				allRefused = false
			}
			if cs.VerifyOK != nil && !*cs.VerifyOK {
				return true
			}
		}
		if allRefused {
			return true
		}
	}
	return false
}

// CompileSource is the engine shared by the /compile endpoint and the dsgo
// CLI: lower the source, analyze each accepted nest, and for every
// requested scheme place synchronization, verify it statically (when the
// scheme is in the static model), and measure a run. Scheme refusals are
// per-scheme data, not errors; the returned error covers only an invalid
// machine configuration.
func CompileSource(filename string, src []byte, specs []SchemeSpec, cfg ConfigSpec) (*CompileOutcome, error) {
	simCfg := cfg.SimConfig()
	if err := simCfg.Check(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		for _, name := range SchemeNames() {
			specs = append(specs, SchemeSpec{Name: name})
		}
	}
	res := frontend.Lower(filename, src)
	out := &CompileOutcome{Rejected: res.Rejected}
	for _, lp := range res.Loops {
		g := lp.Workload.Nest.Analyze()
		cl := CompileLoop{
			Workload:   lp.Workload.Name,
			Pos:        lp.Pos,
			Depth:      lp.Workload.Nest.Depth(),
			Iterations: lp.Workload.Nest.Iterations(),
			Graph:      g.String(),
		}
		for _, a := range g.UnknownArcs() {
			cl.Unknown = append(cl.Unknown, fmt.Sprintf("%s -%s(?%s)-> %s (%s vs %s: %s)",
				g.Stmts[a.Src].Name, a.Kind, a.Reason, g.Stmts[a.Dst].Name,
				a.SrcRef, a.DstRef, a.Reason.Explain()))
		}
		for _, spec := range specs {
			cl.Schemes = append(cl.Schemes, compileScheme(lp.Workload, spec, simCfg))
		}
		out.Loops = append(out.Loops, cl)
	}
	return out, nil
}

func compileScheme(w *codegen.Workload, spec SchemeSpec, cfg sim.Config) CompileScheme {
	sch, err := spec.Build()
	if err != nil {
		return CompileScheme{Scheme: spec.Name, Error: OneLine(err)}
	}
	cs := CompileScheme{Scheme: sch.Name()}
	if spec.Verifiable() {
		sp, err := codegen.ExtractSyncProgram(w, sch)
		if err != nil {
			cs.Error = OneLine(err)
			return cs
		}
		rep := verify.Static(sp, verify.Options{})
		ok := rep.OK()
		cs.VerifyOK = &ok
		cs.Findings = len(rep.Findings)
	}
	// A fresh scheme instance for the measured run: the instance-based
	// scheme carries per-run renamed storage.
	fresh, err := spec.Build()
	if err != nil {
		cs.Error = OneLine(err)
		return cs
	}
	r, err := codegen.Run(w, fresh, cfg)
	if err != nil {
		cs.Error = OneLine(err)
		return cs
	}
	cs.SerialCycles = r.SerialCycles
	cs.Cycles = r.Stats.Cycles
	cs.Speedup = r.Speedup()
	cs.SyncOps = r.Stats.SyncOps
	cs.WaitSync = r.Stats.WaitSyncTotal()
	cs.BusTx = r.Stats.BusBroadcasts
	cs.Foot = r.Foot
	return cs
}

// compileSchemeNames canonicalizes the scheme selection for the content
// address: built, parameterized names (defaults applied), so two spellings
// of the same selection share an address.
func compileSchemeNames(specs []SchemeSpec) ([]string, error) {
	if len(specs) == 0 {
		for _, name := range SchemeNames() {
			specs = append(specs, SchemeSpec{Name: name})
		}
	}
	names := make([]string, len(specs))
	for i, spec := range specs {
		sch, err := spec.Build()
		if err != nil {
			return nil, err
		}
		names[i] = sch.Name()
	}
	return names, nil
}

// handleCompile serves POST /compile: content-addressed through the cache
// (its own "compile" canon section), evaluated as a single pool job. A
// request that lowers zero loops is an input error: 400 with the first
// positioned diagnostic in the error field plus the full rejection list.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("compile: source required"))
		return
	}
	filename := req.Filename
	if filename == "" {
		filename = "input.go"
	}
	if err := req.Config.SimConfig().Check(); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	key, err := CompileRequestKey(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	v, hit, err := s.cache.Do(key, func() (any, error) {
		return s.executeCompile(r.Context(), filename, req)
	})
	s.notifyFill(key, v, hit, err)
	if err != nil {
		s.evalError(w, err)
		return
	}
	resp := CompileResponse{Key: key.String(), Cached: hit, CompileOutcome: *v.(*CompileOutcome)}
	if len(resp.Loops) == 0 {
		msg := "compile: no lowerable loops in source"
		if len(resp.Rejected) > 0 {
			msg = resp.Rejected[0].String()
		}
		s.writeJSON(w, http.StatusBadRequest, struct {
			Error string `json:"error"`
			CompileResponse
		}{Error: msg, CompileResponse: resp})
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// executeCompile runs the whole compile (lowering plus every loop x scheme
// evaluation) as one bounded pool job.
func (s *Server) executeCompile(ctx context.Context, filename string, req CompileRequest) (*CompileOutcome, error) {
	type outcome struct {
		out *CompileOutcome
		err error
	}
	done := make(chan outcome, 1)
	err := s.pool.Submit(func(jobCtx context.Context) {
		if jobCtx.Err() != nil {
			done <- outcome{err: fmt.Errorf("service: job expired in queue: %w", jobCtx.Err())}
			return
		}
		out, err := CompileSource(filename, []byte(req.Source), req.Schemes, req.Config)
		done <- outcome{out: out, err: err}
	})
	if err != nil {
		return nil, err
	}
	select {
	case o := <-done:
		return o.out, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("service: request cancelled while awaiting job: %w", ctx.Err())
	}
}
