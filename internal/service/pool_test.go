package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBackpressure: with one busy worker and a queue of one, the third
// submission must fail with ErrQueueFull — deterministically, because the
// first job blocks on a gate we control.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1, 0)
	gate := make(chan struct{})
	running := make(chan struct{})

	if err := p.Submit(func(context.Context) { close(running); <-gate }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-running // worker is now occupied
	if err := p.Submit(func(context.Context) {}); err != nil {
		t.Fatalf("second submit (fills queue): %v", err)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: got %v, want ErrQueueFull", err)
	}

	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := p.Completed(); got != 2 {
		t.Errorf("completed %d jobs, want 2", got)
	}
}

// TestPoolDrainWaitsForJobs: Drain must complete queued and in-flight work
// before returning, and reject new submissions immediately.
func TestPoolDrainWaitsForJobs(t *testing.T) {
	p := NewPool(2, 8, 0)
	var done atomic.Int64
	for i := 0; i < 6; i++ {
		if err := p.Submit(func(context.Context) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := done.Load(); got != 6 {
		t.Errorf("drain returned with %d/6 jobs finished", got)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: got %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := p.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestPoolSubmitWait: a patient submission parks until capacity frees up
// instead of failing, and honours context cancellation.
func TestPoolSubmitWait(t *testing.T) {
	p := NewPool(1, 1, 0)
	gate := make(chan struct{})
	running := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(running); <-gate }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-running
	if err := p.Submit(func(context.Context) {}); err != nil {
		t.Fatalf("second submit (fills queue): %v", err)
	}

	accepted := make(chan error, 1)
	go func() {
		accepted <- p.SubmitWait(context.Background(), func(context.Context) {})
	}()
	select {
	case err := <-accepted:
		t.Fatalf("SubmitWait returned %v while pool was full", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-accepted; err != nil {
		t.Fatalf("SubmitWait after capacity freed: %v", err)
	}

	// Cancellation while full.
	p2 := NewPool(1, 1, 0)
	running2 := make(chan struct{})
	gate2 := make(chan struct{})
	defer close(gate2)
	p2.Submit(func(context.Context) { close(running2); <-gate2 })
	<-running2
	if err := p2.Submit(func(context.Context) {}); err != nil {
		t.Fatalf("fill queue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p2.SubmitWait(ctx, func(context.Context) {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled SubmitWait: got %v, want DeadlineExceeded", err)
	}
}

// TestPoolJobTimeoutContext: a job picked up after sitting in a queue gets
// a live context bounded by the pool timeout.
func TestPoolJobTimeoutContext(t *testing.T) {
	p := NewPool(1, 1, 50*time.Millisecond)
	got := make(chan error, 1)
	if err := p.Submit(func(ctx context.Context) {
		_, hasDeadline := ctx.Deadline()
		if !hasDeadline {
			got <- errors.New("job context has no deadline")
			return
		}
		got <- ctx.Err()
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := <-got; err != nil {
		t.Fatalf("job context: %v", err)
	}
}
