// Package spin provides the shared waiting strategy of the runtime layer:
// tiered adaptive backoff (hot spin → cooperative yield → parked sleep with
// capped exponential backoff), an optional livelock watchdog, and
// cache-line-padded atomic counters.
//
// The paper's section 6 rejects context switching for medium-grain wait_PC
// spins; the tiers keep the common short wait on the cheap hot path (a bare
// re-check of the condition) while long waits progressively yield the
// processor, so the scheme stays live on a single-core host without turning
// every stalled waiter into a scheduler hot spot. SynCron-style hierarchical
// backoff is what makes counter-based synchronization scale past a handful
// of cores; this package is the software rendition of that idea.
package spin

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// CacheLine is the assumed coherence granularity in bytes.
const CacheLine = 64

// Padded is an atomic.Int64 alone on its cache line: a []Padded places
// consecutive counters exactly CacheLine bytes apart, so waiters spinning on
// adjacent slots never invalidate each other's lines (no false sharing).
type Padded struct {
	atomic.Int64
	_ [CacheLine - 8]byte
}

// Config tunes the backoff tiers. The zero value of a field selects its
// default (see Defaults); a negative count disables that tier. Watchdog 0
// disables the deadline.
type Config struct {
	// HotSpins is how many times the caller re-checks its condition
	// back-to-back (tier 1) before starting to yield. Pause is free in
	// this tier: the re-check itself is the spin.
	HotSpins int
	// YieldSpins is how many runtime.Gosched calls (tier 2) precede the
	// sleeping tier.
	YieldSpins int
	// SleepMin and SleepMax bound tier 3's parked sleeps; the sleep doubles
	// per pause from SleepMin up to the SleepMax cap.
	SleepMin time.Duration
	SleepMax time.Duration
	// Watchdog, when positive, bounds one wait: a waiter still unsatisfied
	// this long after entering the sleeping tier gets a *DeadlineError
	// from Pause instead of hanging silently.
	Watchdog time.Duration
}

// Defaults returns the default backoff tiers: 64 hot re-checks, 128 yields,
// then 2µs..512µs capped exponential sleeps, no watchdog. On an effectively
// serial host (one CPU, or GOMAXPROCS=1) the hot tier is disabled (-1):
// nothing can change the awaited condition while this goroutine monopolizes
// the processor, so bare re-checks only delay the writer's turn to run.
func Defaults() Config {
	hot := 64
	if runtime.NumCPU() == 1 || runtime.GOMAXPROCS(0) == 1 {
		hot = -1
	}
	return Config{HotSpins: hot, YieldSpins: 128, SleepMin: 2 * time.Microsecond, SleepMax: 512 * time.Microsecond}
}

// Normalized returns c with every zero field replaced by its default, so
// the result round-trips through New without consulting Defaults again.
// Long-lived waiters (counter sets, barriers) normalize their Config once
// at construction: Defaults reads GOMAXPROCS, which takes a scheduler
// lock — too expensive for the per-wait path.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.HotSpins != 0 && c.YieldSpins != 0 && c.SleepMin > 0 && c.SleepMax != 0 {
		// Fully specified (or already normalized): skip the Defaults call.
		if c.SleepMax < c.SleepMin {
			c.SleepMax = c.SleepMin
		}
		return c
	}
	d := Defaults()
	if c.HotSpins == 0 {
		c.HotSpins = d.HotSpins
	}
	if c.YieldSpins == 0 {
		c.YieldSpins = d.YieldSpins
	}
	if c.SleepMin <= 0 {
		c.SleepMin = d.SleepMin
	}
	if c.SleepMax == 0 {
		c.SleepMax = d.SleepMax
	}
	if c.SleepMax < c.SleepMin {
		c.SleepMax = c.SleepMin
	}
	return c
}

// DeadlineError reports a wait that exceeded the watchdog deadline.
type DeadlineError struct {
	Waited time.Duration // time since the wait entered the sleeping tier
	Spins  int           // total pauses taken
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("spin: wait exceeded watchdog deadline after %v (%d spins)", e.Waited, e.Spins)
}

// Backoff is the per-wait tier state. Create one per contended wait with
// New; it is not safe for concurrent use.
type Backoff struct {
	cfg   Config
	spins int
	sleep time.Duration
	start time.Time
}

// New returns a Backoff at the start of tier 1, with zero Config fields
// replaced by their defaults.
func New(cfg Config) Backoff { return Backoff{cfg: cfg.withDefaults()} }

// Spins returns how many pauses this wait has taken so far.
func (b *Backoff) Spins() int { return b.spins }

// Pause takes one backoff step in the current tier and advances the tier
// state. It returns a *DeadlineError once the watchdog deadline has passed,
// nil otherwise.
func (b *Backoff) Pause() error {
	b.spins++
	switch {
	case b.spins <= b.cfg.HotSpins:
		// Tier 1: the caller's condition re-check is the spin.
	case b.spins <= b.cfg.HotSpins+b.cfg.YieldSpins:
		runtime.Gosched()
	default:
		if b.sleep == 0 {
			b.sleep = b.cfg.SleepMin
			b.start = time.Now()
		} else if b.sleep < b.cfg.SleepMax {
			b.sleep *= 2
			if b.sleep > b.cfg.SleepMax {
				b.sleep = b.cfg.SleepMax
			}
		}
		time.Sleep(b.sleep)
		if w := b.cfg.Watchdog; w > 0 {
			if waited := time.Since(b.start); waited > w {
				return &DeadlineError{Waited: waited, Spins: b.spins}
			}
		}
	}
	return nil
}

// Until spins cond to true under cfg's tiers and returns the number of
// pauses taken. It returns a *DeadlineError (with the same pause count) if
// the watchdog deadline passes first.
func Until(cfg Config, cond func() bool) (int, error) {
	if cond() {
		return 0, nil
	}
	b := New(cfg)
	for {
		if err := b.Pause(); err != nil {
			return b.spins, err
		}
		if cond() {
			return b.spins, nil
		}
	}
}
