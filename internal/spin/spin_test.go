package spin

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

func TestPaddedLayout(t *testing.T) {
	if got := unsafe.Sizeof(Padded{}); got != CacheLine {
		t.Errorf("sizeof(Padded) = %d, want %d", got, CacheLine)
	}
	// Consecutive slice elements must sit exactly one cache line apart, so
	// no two counters can ever share a line (whatever the base alignment).
	s := make([]Padded, 4)
	d := uintptr(unsafe.Pointer(&s[1])) - uintptr(unsafe.Pointer(&s[0]))
	if d != CacheLine {
		t.Errorf("element stride = %d, want %d", d, CacheLine)
	}
}

func TestPaddedIsAtomic(t *testing.T) {
	var p Padded
	p.Store(7)
	if p.Add(3) != 10 || p.Load() != 10 {
		t.Error("Padded does not behave as atomic.Int64")
	}
}

func TestDefaultsNormalization(t *testing.T) {
	c := Config{}.withDefaults()
	d := Defaults()
	if c != d {
		t.Errorf("zero Config normalized to %+v, want %+v", c, d)
	}
	// Explicitly disabled tiers survive normalization.
	c = Config{HotSpins: -1, YieldSpins: -1}.withDefaults()
	if c.HotSpins != -1 || c.YieldSpins != -1 {
		t.Errorf("disabled tiers overwritten: %+v", c)
	}
	// SleepMax below SleepMin is clamped up.
	c = Config{SleepMin: time.Millisecond, SleepMax: time.Microsecond}.withDefaults()
	if c.SleepMax != c.SleepMin {
		t.Errorf("SleepMax = %v, want clamped to %v", c.SleepMax, c.SleepMin)
	}
}

func TestBackoffTierProgression(t *testing.T) {
	b := New(Config{HotSpins: 3, YieldSpins: 2, SleepMin: time.Microsecond, SleepMax: 4 * time.Microsecond})
	for i := 1; i <= 8; i++ {
		if err := b.Pause(); err != nil {
			t.Fatalf("pause %d: %v", i, err)
		}
	}
	if b.Spins() != 8 {
		t.Errorf("Spins = %d, want 8", b.Spins())
	}
	// After 3 hot + 2 yield pauses, 3 sleeping pauses doubled 1µs -> 4µs cap.
	if b.sleep != 4*time.Microsecond {
		t.Errorf("sleep = %v, want capped at 4µs", b.sleep)
	}
}

func TestUntilImmediate(t *testing.T) {
	spins, err := Until(Config{}, func() bool { return true })
	if spins != 0 || err != nil {
		t.Errorf("Until(true) = %d, %v", spins, err)
	}
}

func TestUntilSpinsToCondition(t *testing.T) {
	var n atomic.Int64
	spins, err := Until(Config{HotSpins: 2, YieldSpins: 2}, func() bool { return n.Add(1) >= 5 })
	if err != nil {
		t.Fatal(err)
	}
	if spins != 4 {
		t.Errorf("spins = %d, want 4", spins)
	}
}

func TestWatchdogTrips(t *testing.T) {
	cfg := Config{HotSpins: 1, YieldSpins: 1, SleepMin: 50 * time.Microsecond,
		SleepMax: 100 * time.Microsecond, Watchdog: 2 * time.Millisecond}
	_, err := Until(cfg, func() bool { return false })
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlineError", err)
	}
	if de.Waited < cfg.Watchdog || de.Spins == 0 {
		t.Errorf("deadline error %+v inconsistent with %v watchdog", de, cfg.Watchdog)
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	// A satisfied-late wait under the default config must not error.
	var n atomic.Int64
	if _, err := Until(Defaults(), func() bool { return n.Add(1) > 300 }); err != nil {
		t.Fatal(err)
	}
}
