// Package codegen places synchronization operations into Doacross loop
// bodies: given a workload (a loop nest with statement semantics) and a
// synchronization scheme, it produces the per-iteration op programs the
// machine simulator executes — the role a concurrentizing compiler plays in
// the paper (section 5, "it can be incorporated into a concurrentizing
// compiler using algorithms similar to [18]").
//
// Multiply-nested loops are implicitly coalesced: iterations are numbered
// by linearized process id and dependence distances are linearized
// (Example 2), so every scheme below works on a depth-1 view.
//
// Run executes a workload under a scheme and verifies serial equivalence:
// the machine's memory after the parallel run must equal memory after
// serial execution, which fails loudly if a scheme misses a dependence.
package codegen

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/loop"
	"github.com/csrd-repro/datasync/internal/sim"
)

// Sem is one statement's semantics: given the iteration's index vector, the
// values of the statement's Reads (in declaration order) and the
// iteration's scratch locals, it returns the values for the statement's
// Writes (in declaration order). Locals carry intra-iteration temporaries
// (like t2, t3 in Fig 2.1) between statements; each iteration gets a fresh
// map.
type Sem func(idx []int64, in []int64, locals map[string]int64) []int64

// Workload is a loop nest with executable semantics.
type Workload struct {
	Name string
	Nest *loop.Nest
	// Sem gives each body statement its semantics. Statements without an
	// entry must have no Writes.
	Sem map[*deps.Stmt]Sem
	// Setup declares and initializes the arrays the semantics touch.
	Setup func(mem *sim.Mem)
	// CostOf, when set, overrides statement costs per iteration — used by
	// the delayed-iteration experiments (one long-running instance).
	CostOf func(s *deps.Stmt, idx []int64) int64
}

// cost returns the statement's compute cost at the given iteration.
func (w *Workload) cost(s *deps.Stmt, idx []int64) int64 {
	if w.CostOf != nil {
		return w.CostOf(s, idx)
	}
	return s.Cost
}

// Footprint is a scheme's synchronization-variable cost, the paper's
// primary comparison axis.
type Footprint struct {
	// SyncVars is the number of synchronization variables used.
	SyncVars int
	// InitOps is the number of operations needed to initialize them.
	InitOps int64
	// StorageWords is total synchronization storage including renamed data
	// copies (instance-based).
	StorageWords int64
}

// Scheme instruments a workload for one synchronization discipline.
type Scheme interface {
	Name() string
	// Instrument declares the scheme's variables on the machine and
	// returns the iteration program plus the scheme's footprint.
	Instrument(m *sim.Machine, w *Workload) (sim.Program, Footprint, error)
	// Finalize runs after the simulation; schemes with renamed storage
	// fold their versions back into the machine memory here.
	Finalize(mem *sim.Mem)
}

// Result is one measured scheme run.
type Result struct {
	Scheme       string
	Stats        sim.Stats
	Foot         Footprint
	SerialCycles int64
}

// Speedup is the serial-to-parallel cycle ratio.
func (r Result) Speedup() float64 { return r.Stats.Speedup(r.SerialCycles) }

// Run executes the workload under the scheme on a machine with the given
// configuration, checks serial equivalence, and returns the measurements.
func Run(w *Workload, sch Scheme, cfg sim.Config) (Result, error) {
	res, _, err := run(w, sch, cfg, false, false)
	return res, err
}

// RunTraced is Run with event tracing enabled; it additionally returns the
// recorded per-processor timeline.
func RunTraced(w *Workload, sch Scheme, cfg sim.Config) (Result, []sim.TraceEvent, error) {
	res, m, err := run(w, sch, cfg, true, false)
	if m == nil {
		return res, nil, err
	}
	return res, m.Trace(), err
}

// RunSyncTraced is Run with synchronization-event recording enabled; it
// additionally returns the machine's sync trace (signals, released waits and
// memory accesses in causal order) for the dynamic happens-before checker.
func RunSyncTraced(w *Workload, sch Scheme, cfg sim.Config) (Result, []sim.SyncEvent, error) {
	res, m, err := run(w, sch, cfg, false, true)
	if m == nil {
		return res, nil, err
	}
	return res, m.SyncTraceEvents(), err
}

func run(w *Workload, sch Scheme, cfg sim.Config, trace, syncTrace bool) (Result, *sim.Machine, error) {
	if err := cfg.Check(); err != nil {
		return Result{}, nil, fmt.Errorf("codegen: invalid machine configuration: %w", err)
	}
	// Serial oracle on a private memory.
	serialMem := sim.NewMem()
	w.Setup(serialMem)
	serialProg := w.serialProgram(serialMem)
	serialCycles := sim.ExecSerial(w.Nest.Iterations(), serialProg)

	m := sim.New(cfg)
	if trace {
		m.EnableTrace()
	}
	if syncTrace {
		m.EnableSyncTrace()
	}
	w.Setup(m.Mem())
	prog, foot, err := sch.Instrument(m, w)
	if err != nil {
		return Result{}, nil, fmt.Errorf("codegen: instrument %s: %w", sch.Name(), err)
	}
	// Most schemes run one process per (coalesced) iteration; schemes that
	// pipeline an outer loop report their own process count.
	iters := w.Nest.Iterations()
	if pc, ok := sch.(interface{ Processes(*Workload) int64 }); ok {
		iters = pc.Processes(w)
	}
	stats, err := m.RunLoop(iters, prog)
	if err != nil {
		// The machine still carries whatever trace it recorded before the
		// failure; return it so the dynamic checker can examine the run.
		return Result{}, m, fmt.Errorf("codegen: %s on %s: %w", sch.Name(), w.Name, err)
	}
	sch.Finalize(m.Mem())
	if diff := serialMem.Diff(m.Mem()); diff != "" {
		return Result{}, m, fmt.Errorf("codegen: %s on %s violates serial equivalence:\n%s", sch.Name(), w.Name, diff)
	}
	return Result{Scheme: sch.Name(), Stats: stats, Foot: foot, SerialCycles: serialCycles}, m, nil
}

// serialProgram builds the pure-compute program bound to the given memory.
func (w *Workload) serialProgram(mem *sim.Mem) sim.Program {
	hint := 0
	return func(iter int64) []sim.Op {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		ops := make([]sim.Op, 0, hint)
		for _, s := range w.Nest.FlatBody(idx) {
			ops = append(ops, sim.Compute(w.cost(s, idx), w.execInPlace(mem, idx, s, locals), s.Name))
		}
		if len(ops) > hint {
			hint = len(ops)
		}
		return ops
	}
}

// execInPlace is the normal (un-renamed) binding: reads and writes go
// directly to the memory arrays.
func (w *Workload) execInPlace(mem *sim.Mem, idx []int64, s *deps.Stmt, locals map[string]int64) func() {
	sem := w.Sem[s]
	if sem == nil {
		if len(s.Writes) > 0 {
			panic(fmt.Sprintf("codegen: statement %s writes but has no semantics", s.Name))
		}
		return nil
	}
	return func() {
		in := make([]int64, len(s.Reads))
		for k, r := range s.Reads {
			in[k] = readRef(mem, r, idx)
		}
		out := sem(idx, in, locals)
		if len(out) != len(s.Writes) {
			panic(fmt.Sprintf("codegen: statement %s semantics returned %d values for %d writes",
				s.Name, len(out), len(s.Writes)))
		}
		for k, wr := range s.Writes {
			writeRef(mem, wr, idx, out[k])
		}
	}
}

func readRef(mem *sim.Mem, r deps.Ref, idx []int64) int64 {
	switch len(r.Index) {
	case 1:
		a := mem.Lookup(r.Array)
		if a == nil {
			panic("codegen: array not declared in Setup: " + r.Array)
		}
		return a.Get(r.Index[0].Eval(idx))
	case 2:
		g := mem.LookupGrid(r.Array)
		if g == nil {
			panic("codegen: grid not declared in Setup: " + r.Array)
		}
		return g.Get(r.Index[0].Eval(idx), r.Index[1].Eval(idx))
	default:
		panic(fmt.Sprintf("codegen: %d-dimensional reference unsupported", len(r.Index)))
	}
}

func writeRef(mem *sim.Mem, r deps.Ref, idx []int64, v int64) {
	switch len(r.Index) {
	case 1:
		mem.Lookup(r.Array).Set(r.Index[0].Eval(idx), v)
	case 2:
		mem.LookupGrid(r.Array).Set(r.Index[0].Eval(idx), r.Index[1].Eval(idx), v)
	default:
		panic(fmt.Sprintf("codegen: %d-dimensional reference unsupported", len(r.Index)))
	}
}

// appendComputeOps appends the op(s) for one statement execution: the
// compute itself and, when the machine models a data-write latency and the
// statement writes shared arrays, a commit phase after which the written
// values become visible — the paper's requirement (1): a source may signal
// only after its effect can be observed. The statement semantics run at the
// end of the last op, so a scheme that published before the commit phase
// would let a consumer read stale values and fail serial equivalence. The
// op carrying the semantics is stamped with the statement's concrete
// element accesses for the happens-before race checkers. Appending into the
// caller's program slice (instead of returning a fresh one) keeps the
// per-iteration instrumenters to one ops allocation each.
func appendComputeOps(ops []sim.Op, m *sim.Machine, w *Workload, idx []int64, s *deps.Stmt, locals map[string]int64) []sim.Op {
	exec := w.execInPlace(m.Mem(), idx, s, locals)
	lat := m.Config().DataLatency
	if lat <= 0 || len(s.Writes) == 0 {
		op := sim.Compute(w.cost(s, idx), exec, s.Name)
		op.Touch = stmtTouches(s, idx)
		return append(ops, op)
	}
	op := sim.Compute(lat, exec, s.Name+":commit")
	op.Touch = stmtTouches(s, idx)
	return append(ops, sim.Compute(w.cost(s, idx), nil, s.Name), op)
}

// stmtTouches lists the concrete shared-memory elements one execution of
// the statement accesses at the given iteration.
func stmtTouches(s *deps.Stmt, idx []int64) []sim.MemAccess {
	out := make([]sim.MemAccess, 0, len(s.Writes)+len(s.Reads))
	for _, r := range s.Reads {
		out = append(out, refTouch(r, idx, false, 0))
	}
	for _, w := range s.Writes {
		out = append(out, refTouch(w, idx, true, 0))
	}
	return out
}

func refTouch(r deps.Ref, idx []int64, write bool, ver int64) sim.MemAccess {
	a := sim.MemAccess{Array: r.Array, Dims: len(r.Index), Ver: ver, Write: write}
	for d := 0; d < len(r.Index) && d < 2; d++ {
		a.Coord[d] = r.Index[d].Eval(idx)
	}
	return a
}

// stmtPositions maps statements to their flattened body positions.
func stmtPositions(n *loop.Nest) map[*deps.Stmt]int {
	stmts := n.Stmts()
	pos := make(map[*deps.Stmt]int, len(stmts))
	for i, s := range stmts {
		pos[s] = i
	}
	return pos
}
