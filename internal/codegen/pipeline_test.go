package codegen_test

import (
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// TestPipelinedOuterStencil: the generic outer pipeline on the Example 1
// stencil matches serial execution across X, G and P.
func TestPipelinedOuterStencil(t *testing.T) {
	for _, g := range []int64{1, 3, 8} {
		for _, x := range []int{1, 2, 8} {
			for _, p := range []int{1, 3, 4} {
				res, err := codegen.Run(workloads.Stencil(18, 4),
					codegen.PipelinedOuter{X: x, G: g}, cfg(p))
				if err != nil {
					t.Fatalf("G=%d X=%d P=%d: %v", g, x, p, err)
				}
				if res.Stats.Iterations != 17 {
					t.Errorf("G=%d: processes = %d, want 17 (one per outer iteration)",
						g, res.Stats.Iterations)
				}
			}
		}
	}
}

// TestPipelinedOuterNested: Example 2's nest runs pipelined (outer Doacross)
// as an alternative to full coalescing, and both match serial execution.
func TestPipelinedOuterNested(t *testing.T) {
	res, err := codegen.Run(workloads.Nested(12, 10, 4),
		codegen.PipelinedOuter{X: 8, G: 1}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	coal, err := codegen.Run(workloads.Nested(12, 10, 4),
		codegen.ProcessOriented{X: 8, Improved: true}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// Pipelining synchronizes once per inner iteration instead of once per
	// statement instance: fewer sync ops.
	if res.Stats.SyncOps >= coal.Stats.SyncOps {
		t.Errorf("pipeline sync ops %d not fewer than coalesced %d",
			res.Stats.SyncOps, coal.Stats.SyncOps)
	}
}

// TestPipelinedOuterGroupingReducesSync: raising G divides publications.
func TestPipelinedOuterGroupingReducesSync(t *testing.T) {
	var prev int64 = 1 << 60
	for _, g := range []int64{1, 4, 16} {
		res, err := codegen.Run(workloads.Stencil(20, 4),
			codegen.PipelinedOuter{X: 8, G: g}, cfg(4))
		if err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		if res.Stats.BusBroadcasts >= prev {
			t.Errorf("G=%d broadcasts %d not fewer than previous %d", g, res.Stats.BusBroadcasts, prev)
		}
		prev = res.Stats.BusBroadcasts
	}
}

// TestPipelinedOuterMatchesHandBuilt: the generic scheme and the hand-built
// Fig 5.1b program produce comparable pipelines on the same machine.
func TestPipelinedOuterMatchesHandBuilt(t *testing.T) {
	r := workloads.Relax{N: 20, Cost: 6, G: 1}

	mHand := sim.New(cfg(4))
	handStats, err := mHand.RunLoop(r.N-1, r.PipelinedPC(mHand, 8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := codegen.Run(workloads.Stencil(r.N, r.Cost),
		codegen.PipelinedOuter{X: 8, G: 1}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// Same compute volume, same schedule shape: within 25% of each other.
	lo, hi := handStats.Cycles*3/4, handStats.Cycles*5/4
	if res.Stats.Cycles < lo || res.Stats.Cycles > hi {
		t.Errorf("generic pipeline %d cycles vs hand-built %d: outside 25%%",
			res.Stats.Cycles, handStats.Cycles)
	}
}

// TestPipelinedOuterRejectsBadShapes: depth-1 nests and unknown distances
// are refused with clear errors.
func TestPipelinedOuterRejectsBadShapes(t *testing.T) {
	m := sim.New(cfg(2))
	w := workloads.Fig21(10, 1)
	w.Setup(m.Mem())
	_, _, err := codegen.PipelinedOuter{X: 2, G: 1}.Instrument(m, w)
	if err == nil || !strings.Contains(err.Error(), "depth-2") {
		t.Errorf("depth-1 nest accepted: %v", err)
	}
}
