package codegen

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/expr"
	"github.com/csrd-repro/datasync/internal/loop"
)

// The fixtures share one dependence shape: S1 -flow(1)-> S2 -flow(1)-> S3
// plus the composite S1 -flow(2)-> S3, where the long arc is covered by the
// exact-sum path through S2. The straight-line variant may eliminate it;
// the branchy variant, where S2 sits in a conditionally skipped arm, must
// not — for iterations that skip S2 the covering path neither waits nor
// publishes, so eliminating the long arc would leave S3 unsynchronized.

func coverStmts() (s1, s2, s3 *deps.Stmt) {
	r := func(arr string, off int64) deps.Ref {
		return deps.Ref{Array: arr, Index: []expr.Affine{expr.Index(1, 0, off)}}
	}
	s1 = &deps.Stmt{Name: "S1", Writes: []deps.Ref{r("A", 0)}, Cost: 1}
	s2 = &deps.Stmt{Name: "S2", Writes: []deps.Ref{r("B", 0)}, Reads: []deps.Ref{r("A", -1)}, Cost: 1}
	s3 = &deps.Stmt{Name: "S3", Writes: []deps.Ref{r("C", 0)}, Reads: []deps.Ref{r("B", -1), r("A", -2)}, Cost: 1}
	return
}

func arcSet(arcs []deps.Arc, stmts []*deps.Stmt) map[string]bool {
	set := make(map[string]bool)
	for _, a := range arcs {
		set[stmts[a.Src].Name+"->"+stmts[a.Dst].Name] = true
	}
	return set
}

// TestCoveringEliminationStraightLine: with every statement executing each
// iteration, the covered composite arc is eliminated from the enforced set.
func TestCoveringEliminationStraightLine(t *testing.T) {
	s1, s2, s3 := coverStmts()
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: 20}},
		[]loop.Node{loop.S(s1), loop.S(s2), loop.S(s3)},
	)
	di, err := analyzeWorkload(&Workload{Name: "cover-straight", Nest: nest})
	if err != nil {
		t.Fatal(err)
	}
	set := arcSet(di.enforced, nest.Stmts())
	if !set["S1->S2"] || !set["S2->S3"] {
		t.Fatalf("covering path arcs missing from enforced set: %v", set)
	}
	if set["S1->S3"] {
		t.Fatalf("S1->S3 should be covered by S1->S2->S3, got enforced set %v", set)
	}
}

// TestCoveringBypassedForBranchyNest: the same dependence shape with S2
// inside a branch arm must keep the composite arc — covering elimination is
// bypassed entirely (dedup only) because the covering path runs through a
// statement that is skipped on some iterations.
func TestCoveringBypassedForBranchyNest(t *testing.T) {
	s1, s2, s3 := coverStmts()
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: 20}},
		[]loop.Node{
			loop.S(s1),
			loop.IfNode{
				Name: "parity",
				Cond: func(idx []int64) bool { return idx[0]%2 == 0 },
				Then: []loop.Node{loop.S(s2)},
			},
			loop.S(s3),
		},
	)
	if !nest.HasBranches() {
		t.Fatal("fixture should report branches")
	}
	di, err := analyzeWorkload(&Workload{Name: "cover-branchy", Nest: nest})
	if err != nil {
		t.Fatal(err)
	}
	set := arcSet(di.enforced, nest.Stmts())
	for _, want := range []string{"S1->S2", "S2->S3", "S1->S3"} {
		if !set[want] {
			t.Errorf("dedup-only enforced set lost %s: %v", want, set)
		}
	}
	// Dedup still applies: one arc per (src, dst, distance).
	seen := make(map[[3]int64]int)
	for _, a := range di.enforced {
		seen[[3]int64{int64(a.Src), int64(a.Dst), a.Dist[0]}]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("arc %v appears %d times in dedup-only set", k, n)
		}
	}
}

// TestCoveringBypassEvenWhenPathAvoidsBranch: bypass is per-nest, not
// per-arc. Even a composite arc whose covering path uses only statements
// outside any branch keeps its sync when the body has branches — the
// conservative rule the schemes rely on.
func TestCoveringBypassEvenWhenPathAvoidsBranch(t *testing.T) {
	s1, s2, s3 := coverStmts()
	extra := &deps.Stmt{Name: "S4", Writes: []deps.Ref{{Array: "D",
		Index: []expr.Affine{expr.Index(1, 0, 0)}}}, Cost: 1}
	nest := loop.MustNew(
		[]loop.Index{{Name: "I", Lo: 1, Hi: 20}},
		[]loop.Node{
			loop.S(s1), loop.S(s2), loop.S(s3),
			loop.IfNode{
				Name: "tail",
				Cond: func(idx []int64) bool { return idx[0]%3 == 0 },
				Then: []loop.Node{loop.S(extra)},
			},
		},
	)
	di, err := analyzeWorkload(&Workload{Name: "cover-branchy-tail", Nest: nest})
	if err != nil {
		t.Fatal(err)
	}
	set := arcSet(di.enforced, nest.Stmts())
	if !set["S1->S3"] {
		t.Errorf("branchy nest must keep S1->S3 even though its covering path avoids the branch: %v", set)
	}
}
