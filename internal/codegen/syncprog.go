package codegen

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/sim"
)

// This file exposes the synchronization program a scheme emits in an
// analyzable form: a per-iteration sequence of abstract waits, signals and
// statement executions over the scheme's synchronization variables. The
// verify package consumes it to construct the happens-before relation the
// sync ops induce over the whole iteration space — without running the
// machine — and to check it against the nest's dependence set.

// SyncOpKind classifies abstract synchronization-program steps.
type SyncOpKind int

// Abstract step kinds.
const (
	// SyncStmt is the execution point of one body statement: the moment its
	// reads and writes take effect. Stmt is the flattened body position.
	SyncStmt SyncOpKind = iota
	// SyncWait blocks until Var's visible value reaches Value.
	SyncWait
	// SyncSignal publishes Value on Var. Conditional signals (the improved
	// mark_PC) may or may not fire at run time.
	SyncSignal
	// SyncOpaque is an op the translation cannot model statically (an RMW
	// without a protocol-guaranteed post value). Its presence makes
	// verification of waits on its variable inconclusive.
	SyncOpaque
)

func (k SyncOpKind) String() string {
	switch k {
	case SyncStmt:
		return "stmt"
	case SyncWait:
		return "wait"
	case SyncSignal:
		return "signal"
	case SyncOpaque:
		return "opaque"
	}
	return fmt.Sprintf("SyncOpKind(%d)", int(k))
}

// SyncOp is one abstract step of an iteration's synchronization program.
type SyncOp struct {
	Kind        SyncOpKind
	Var         int   // SyncWait / SyncSignal / SyncOpaque
	Value       int64 // wait threshold / signalled value
	Conditional bool  // SyncSignal that may not fire (mark_PC)
	// Guard, valid iff HasGuard, is the visible value a Conditional signal's
	// firing implies ("fires only when visible >= Guard"): the improved
	// mark_PC updates the step only once ownership has arrived.
	Guard    int64
	HasGuard bool
	// Accum marks a SyncSignal produced by an atomic increment (ticketed
	// keys): the variable counts completed accesses, so a wait for value t
	// is released by the t earliest increments collectively, not by any
	// single write reaching t.
	Accum bool
	Stmt  int // SyncStmt: flattened body position
	Tag   string
}

// SyncProgram is a scheme's emitted synchronization program over a
// workload, materializable per iteration.
type SyncProgram struct {
	Workload *Workload
	Scheme   string
	Iters    int64
	VarNames []string
	VarInit  []int64
	// Renamed marks schemes with single-assignment (renamed) data storage:
	// every write creates a fresh version, so anti- and output dependences
	// are vacuous and only flow arcs need enforcement (section 3.1,
	// instance-based).
	Renamed bool
	// At returns iteration iter's abstract step sequence (1-based lpids).
	At func(iter int64) []SyncOp
}

// ExtractSyncProgram instruments the workload under the scheme on a
// throwaway machine and returns the abstract synchronization program. The
// machine is never run; op side effects (statement semantics) never
// execute.
func ExtractSyncProgram(w *Workload, sch Scheme) (*SyncProgram, error) {
	m := sim.New(sim.Config{Processors: 1})
	w.Setup(m.Mem())
	prog, _, err := sch.Instrument(m, w)
	if err != nil {
		return nil, fmt.Errorf("codegen: extract sync program: %w", err)
	}
	iters := w.Nest.Iterations()
	if pc, ok := sch.(interface{ Processes(*Workload) int64 }); ok {
		iters = pc.Processes(w)
	}
	sp := &SyncProgram{
		Workload: w,
		Scheme:   sch.Name(),
		Iters:    iters,
		VarNames: make([]string, m.VarCount()),
		VarInit:  make([]int64, m.VarCount()),
	}
	for v := 0; v < m.VarCount(); v++ {
		sp.VarNames[v] = m.VarName(sim.VarID(v))
		sp.VarInit[v] = m.VarValue(sim.VarID(v))
	}
	if rs, ok := sch.(interface{ RenamedStorage() bool }); ok {
		sp.Renamed = rs.RenamedStorage()
	}
	stmtPos := make(map[string]int)
	for i, s := range w.Nest.Stmts() {
		stmtPos[s.Name] = i
	}
	sp.At = func(iter int64) []SyncOp {
		return translateOps(prog(iter), stmtPos)
	}
	return sp, nil
}

// translateOps maps one iteration's simulator ops onto abstract steps. The
// execution point of a statement is its last compute op carrying the
// statement's tag (the commit op under a data-write latency).
func translateOps(ops []sim.Op, stmtPos map[string]int) []SyncOp {
	last := make(map[string]int) // stmt name -> index of its execution op
	for i, op := range ops {
		if op.Kind != sim.OpCompute {
			continue
		}
		name := strings.TrimSuffix(op.Tag, ":commit")
		if _, ok := stmtPos[name]; ok {
			last[name] = i
		}
	}
	out := make([]SyncOp, 0, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case sim.OpCompute:
			name := strings.TrimSuffix(op.Tag, ":commit")
			if pos, ok := stmtPos[name]; ok && last[name] == i {
				out = append(out, SyncOp{Kind: SyncStmt, Stmt: pos, Tag: name})
			}
		case sim.OpWait:
			out = append(out, SyncOp{Kind: SyncWait, Var: int(op.Var), Value: op.Value, Tag: op.Tag})
		case sim.OpWrite:
			out = append(out, SyncOp{Kind: SyncSignal, Var: int(op.Var), Value: op.Value, Tag: op.Tag})
		case sim.OpWriteIf:
			out = append(out, SyncOp{Kind: SyncSignal, Var: int(op.Var), Value: op.Value,
				Conditional: true, Guard: op.CondGE, HasGuard: op.HasCondGE, Tag: op.Tag})
		case sim.OpRMW:
			if op.HasPost {
				out = append(out, SyncOp{Kind: SyncSignal, Var: int(op.Var), Value: op.Post, Accum: true, Tag: op.Tag})
			} else {
				out = append(out, SyncOp{Kind: SyncOpaque, Var: int(op.Var), Tag: op.Tag})
			}
		}
	}
	return out
}
