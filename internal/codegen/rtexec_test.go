package codegen_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/expr"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// TestRunRuntimeFig21 executes the canonical loop on real goroutines via
// the full analysis + placement path.
func TestRunRuntimeFig21(t *testing.T) {
	for _, cfg := range []struct{ x, procs int }{{1, 2}, {4, 4}, {8, 3}} {
		if _, err := codegen.RunRuntime(workloads.Fig21(300, 1), cfg.x, cfg.procs); err != nil {
			t.Errorf("X=%d procs=%d: %v", cfg.x, cfg.procs, err)
		}
	}
}

// TestRunRuntimeNested runs the coalesced Example 2 nest on goroutines.
func TestRunRuntimeNested(t *testing.T) {
	if _, err := codegen.RunRuntime(workloads.Nested(20, 15, 1), 8, 4); err != nil {
		t.Fatal(err)
	}
}

// TestRunRuntimeBranchy runs the Example 3 loop on goroutines: covering
// marks must keep every path live under real concurrency.
func TestRunRuntimeBranchy(t *testing.T) {
	if _, err := codegen.RunRuntime(workloads.Branchy(200, 1), 4, 4); err != nil {
		t.Fatal(err)
	}
}

// TestRunRuntimeRandom is the runtime-side property test: random loops,
// real goroutines, exact serial equivalence.
func TestRunRuntimeRandom(t *testing.T) {
	trials := 15
	if testing.Short() {
		trials = 4
	}
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < trials; trial++ {
		n := int64(30 + rng.Intn(80))
		nStmts := 1 + rng.Intn(5)
		x := 1 + rng.Intn(8)
		procs := 1 + rng.Intn(6)
		seed := rng.Int63()
		w := workloads.Random(rand.New(rand.NewSource(seed)), n, nStmts)
		if _, err := codegen.RunRuntime(w, x, procs); err != nil {
			t.Fatalf("trial %d (seed %d n=%d stmts=%d X=%d procs=%d): %v",
				trial, seed, n, nStmts, x, procs, err)
		}
	}
}

// TestRunRuntimePipelinedStencil: Example 1's pipeline on goroutines.
func TestRunRuntimePipelinedStencil(t *testing.T) {
	for _, g := range []int64{1, 4} {
		if _, err := codegen.RunRuntimePipelined(workloads.Stencil(30, 1), 8, 4, g); err != nil {
			t.Errorf("G=%d: %v", g, err)
		}
	}
}

// TestRunRuntimePipelinedNested: outer pipelining of Example 2's nest.
func TestRunRuntimePipelinedNested(t *testing.T) {
	if _, err := codegen.RunRuntimePipelined(workloads.Nested(25, 20, 1), 4, 4, 2); err != nil {
		t.Fatal(err)
	}
}

// TestRunRuntimePipelinedRejectsDepth1 propagates shape errors.
func TestRunRuntimePipelinedRejectsDepth1(t *testing.T) {
	if _, err := codegen.RunRuntimePipelined(workloads.Fig21(10, 1), 2, 2, 1); err == nil {
		t.Error("depth-1 workload accepted")
	}
}

// TestUnknownDistanceRejected: a loop with a non-constant dependence
// distance cannot be instrumented by the constant-distance schemes.
func TestUnknownDistanceRejected(t *testing.T) {
	w := workloads.Fig21(10, 1)
	// Corrupt S5 to read A[1] (constant subscript) so the write A[I]
	// creates an unknown-distance dependence.
	s5 := w.Nest.Stmts()[4]
	s5.Reads[0].Index[0] = expr.Const(1, 1)
	for _, sch := range []codegen.Scheme{
		codegen.ProcessOriented{X: 2, Improved: true},
		codegen.StatementOriented{},
	} {
		if _, err := codegen.Run(w, sch, cfg(2)); err == nil ||
			!strings.Contains(err.Error(), "constant distance") {
			t.Errorf("%s: err = %v, want constant-distance rejection", sch.Name(), err)
		}
	}
	if _, err := codegen.RunRuntime(w, 2, 2); err == nil {
		t.Error("runtime executor accepted unknown-distance workload")
	}
}

// TestRunRuntimeReturnsMemory: the returned memory holds the results.
func TestRunRuntimeReturnsMemory(t *testing.T) {
	mem, err := codegen.RunRuntime(workloads.Fig21(50, 1), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := mem.Lookup("OUT")
	if out == nil {
		t.Fatal("OUT array missing")
	}
	// OUT[1] = A[0] initial = 1000+0.
	if got := out.Get(1); got != 1000 {
		t.Errorf("OUT[1] = %d, want 1000", got)
	}
}

type codegenWorkload = codegen.Workload

// TestRunRuntimeStatementMatrix: the statement-oriented runtime executor
// across workloads and counter budgets.
func TestRunRuntimeStatementMatrix(t *testing.T) {
	for _, k := range []int{0, 1, 2} {
		if _, err := codegen.RunRuntimeStatement(workloads.Fig21(200, 1), k, 4); err != nil {
			t.Errorf("fig21 K=%d: %v", k, err)
		}
		if _, err := codegen.RunRuntimeStatement(workloads.Branchy(120, 1), k, 3); err != nil {
			t.Errorf("branchy K=%d: %v", k, err)
		}
	}
	if _, err := codegen.RunRuntimeStatement(workloads.Nested(15, 12, 1), 0, 4); err != nil {
		t.Errorf("nested: %v", err)
	}
}

// TestRunRuntimeRefBasedMatrix: the key-protocol runtime executor.
func TestRunRuntimeRefBasedMatrix(t *testing.T) {
	for _, w := range []func() *codegenWorkload{
		func() *codegenWorkload { return workloads.Fig21(150, 1) },
		func() *codegenWorkload { return workloads.Branchy(100, 1) },
		func() *codegenWorkload { return workloads.Nested(12, 10, 1) },
		func() *codegenWorkload { return workloads.SelfRMW(80, 1) },
	} {
		if _, err := codegen.RunRuntimeRefBased(w(), 4); err != nil {
			t.Error(err)
		}
	}
}

// TestAllRuntimeExecutorsRandom: process, statement and ref-based runtime
// executors over random loops.
func TestAllRuntimeExecutorsRandom(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < trials; trial++ {
		n := int64(30 + rng.Intn(60))
		nStmts := 1 + rng.Intn(4)
		procs := 1 + rng.Intn(5)
		seed := rng.Int63()
		mk := func() *codegenWorkload { return workloads.Random(rand.New(rand.NewSource(seed)), n, nStmts) }
		if _, err := codegen.RunRuntime(mk(), 4, procs); err != nil {
			t.Fatalf("trial %d process: %v", trial, err)
		}
		if _, err := codegen.RunRuntimeStatement(mk(), 0, procs); err != nil {
			t.Fatalf("trial %d statement: %v", trial, err)
		}
		if _, err := codegen.RunRuntimeRefBased(mk(), procs); err != nil {
			t.Fatalf("trial %d ref-based: %v", trial, err)
		}
	}
}
