package codegen

import (
	"fmt"
	"sort"

	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/sim"
)

// PipelinedOuter generalizes Example 1's asynchronous pipelining to any
// depth-2 nest: the outer loop becomes the Doacross (one process per outer
// iteration), the inner loop runs serially inside each process, and a
// process publishes its inner progress on its process counter every G
// inner iterations. A dependence with distance vector (d1, d2), d1 >= 1,
// becomes wait_PC(d1, j-d2-lo2+1) — "process i-d1 has finished inner
// iteration j-d2" — while (0, d2) dependences are enforced for free by the
// serial inner loop. Compared to full coalescing (ProcessOriented), this
// trades sync operations for granularity exactly as Fig 5.1 describes.
type PipelinedOuter struct {
	X int   // folded process counters
	G int64 // inner iterations per publication (grouping)
}

// Name implements Scheme.
func (s PipelinedOuter) Name() string {
	return fmt.Sprintf("pipeline(X=%d,G=%d)", s.X, s.G)
}

// Finalize implements Scheme.
func (PipelinedOuter) Finalize(*sim.Mem) {}

// Processes reports one process per outer iteration.
func (PipelinedOuter) Processes(w *Workload) int64 {
	return w.Nest.Indexes[0].Extent()
}

// pipelineArcs validates the nest and returns the cross-outer dependences.
func pipelineArcs(w *Workload) ([]deps.Arc, error) {
	if w.Nest.Depth() != 2 {
		return nil, fmt.Errorf("pipelined-outer needs a depth-2 nest, got depth %d", w.Nest.Depth())
	}
	g := w.Nest.Analyze()
	if unknown := g.UnknownArcs(); len(unknown) > 0 {
		return nil, fmt.Errorf("%d dependences without constant distance (%s)",
			len(unknown), describeUnknown(unknown))
	}
	var arcs []deps.Arc
	for _, a := range g.CrossArcs() {
		if a.Dist[0] < 0 || (a.Dist[0] == 0 && a.Dist[1] <= 0) {
			return nil, fmt.Errorf("arc %d->%d has non-forward distance (%d,%d)",
				a.Src, a.Dst, a.Dist[0], a.Dist[1])
		}
		if a.Dist[0] >= 1 {
			arcs = append(arcs, a) // (0,d2) arcs are serial-inner-enforced
		}
	}
	return arcs, nil
}

// Instrument implements Scheme. The returned program is indexed by the
// outer iteration's 1-based rank (use with Processes, as Run does).
func (s PipelinedOuter) Instrument(m *sim.Machine, w *Workload) (sim.Program, Footprint, error) {
	arcs, err := pipelineArcs(w)
	if err != nil {
		return nil, Footprint{}, fmt.Errorf("codegen: %w", err)
	}
	g := s.G
	if g < 1 {
		g = 1
	}
	pcs := core.NewSimPCs(m, s.X)
	outer, inner := w.Nest.Indexes[0], w.Nest.Indexes[1]
	foot := Footprint{SyncVars: s.X, InitOps: int64(s.X), StorageWords: int64(s.X)}
	// Distinct outer distances, ascending, for deterministic wait order.
	var dists []int64
	seen := map[int64]bool{}
	for _, a := range arcs {
		if !seen[a.Dist[0]] {
			seen[a.Dist[0]] = true
			dists = append(dists, a.Dist[0])
		}
	}
	sort.Slice(dists, func(x, y int) bool { return dists[x] < dists[y] })

	hint := 0
	prog := func(lpid int64) []sim.Op {
		i := outer.Lo + lpid - 1
		ops := make([]sim.Op, 0, hint)
		sinceMark := int64(0)
		for j := inner.Lo; j <= inner.Hi; j++ {
			idx := []int64{i, j}
			// One wait per distinct outer distance: the maximum inner
			// progress any arc requires of process lpid-d1 at this j.
			need := map[int64]int64{}
			for _, a := range arcs {
				d1, d2 := a.Dist[0], a.Dist[1]
				if lpid-d1 < 1 {
					continue // source process before the loop start
				}
				srcJ := j - d2
				if srcJ < inner.Lo || srcJ > inner.Hi {
					continue // source instance outside the space
				}
				prog := srcJ - inner.Lo + 1
				if prog > need[d1] {
					need[d1] = prog
				}
			}
			for _, d1 := range dists {
				if p, ok := need[d1]; ok {
					ops = append(ops, pcs.WaitPC(lpid, d1, p))
				}
			}
			locals := make(map[string]int64)
			for _, st := range w.Nest.FlatBody(idx) {
				ops = appendComputeOps(ops, m, w, idx, st, locals)
			}
			sinceMark++
			if sinceMark == g && j < inner.Hi {
				ops = append(ops, pcs.MarkPC(lpid, j-inner.Lo+1))
				sinceMark = 0
			}
		}
		ops = append(ops, pcs.TransferPCOps(lpid)...)
		if len(ops) > hint {
			hint = len(ops)
		}
		return ops
	}
	return prog, foot, nil
}
