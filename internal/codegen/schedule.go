package codegen

import (
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/loop"
)

// The process-oriented synchronization placement, independent of whether
// the result runs on the simulator or on goroutines: a per-iteration
// schedule of waits, statement executions, step publications and the
// ownership transfer.

type actionKind int

const (
	actWait     actionKind = iota // wait_PC(dist, step)
	actStmt                       // execute a statement
	actPublish                    // set_PC/mark_PC(step)
	actTransfer                   // transfer_PC / get_PC+release_PC
)

type action struct {
	kind actionKind
	dist int64 // actWait
	step int64 // actWait, actPublish
	stmt *deps.Stmt
}

// transferAtEnd reports whether ownership must be passed at the body end
// (the statically last source statement sits inside a branch, Example 3).
func (di *depInfo) transferAtEnd(n *loop.Nest) bool {
	return di.lastSrc >= 0 && !topLevelStmt(n, di.lastSrc, di)
}

// schedule builds the iteration's action list: sink waits before each
// statement (skipping sources before the loop start), publications after
// each source statement, covering publications for skipped branch arms,
// and exactly one transfer per iteration that has any source.
func (di *depInfo) schedule(n *loop.Nest, iter int64) []action {
	idx := n.IndexOf(iter)
	endTransfer := di.transferAtEnd(n)
	var acts []action
	publish := func(step int64, isLast bool) {
		if isLast {
			acts = append(acts, action{kind: actTransfer})
			return
		}
		acts = append(acts, action{kind: actPublish, step: step})
	}
	cover := func(nodes []loop.Node) {
		if max := di.maxSourceStep(nodes); max > 0 {
			// Covering publication for skipped sources: a waiter on any of
			// their steps must still be released (Fig 5.3).
			publish(max, false)
		}
	}
	var walk func(nodes []loop.Node)
	walk = func(nodes []loop.Node) {
		for _, node := range nodes {
			switch v := node.(type) {
			case loop.StmtNode:
				p := di.pos[v.S]
				for _, a := range di.incoming[p] {
					d := a.Dist[0]
					if iter-d >= 1 {
						acts = append(acts, action{kind: actWait, dist: d, step: di.step[a.Src]})
					}
				}
				acts = append(acts, action{kind: actStmt, stmt: v.S})
				if step, ok := di.step[p]; ok {
					publish(step, p == di.lastSrc && !endTransfer)
				}
			case loop.IfNode:
				if v.Cond(idx) {
					walk(v.Then)
					cover(v.Else)
				} else {
					cover(v.Then) // publish early: steps below the arm's own
					walk(v.Else)
				}
			}
		}
	}
	walk(n.Body)
	if endTransfer {
		acts = append(acts, action{kind: actTransfer})
	}
	return acts
}
