package codegen

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/dataorient"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/loop"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/stmtorient"
)

// depInfo is the per-workload dependence summary every scheme shares.
type depInfo struct {
	pos      map[*deps.Stmt]int
	enforced []deps.Arc         // linearized, minimal
	incoming map[int][]deps.Arc // by sink position
	sources  []int              // source positions, ascending
	step     map[int]int64      // source position -> step number (1-based)
	lastSrc  int                // position of the statically last source; -1 if none
}

func analyzeWorkload(w *Workload) (depInfo, error) {
	lin := w.Nest.LinearGraph()
	if unknown := lin.UnknownArcs(); len(unknown) > 0 {
		return depInfo{}, fmt.Errorf("%d dependences without constant distance (%s); constant-distance schemes cannot enforce them",
			len(unknown), describeUnknown(unknown))
	}
	// Covering elimination assumes every statement executes each iteration;
	// with branches only deduplication is sound (a covering path through a
	// skipped arm would neither wait nor publish).
	enforced := lin.Enforced()
	if w.Nest.HasBranches() {
		enforced = lin.Deduped()
	}
	di := depInfo{
		pos:      stmtPositions(w.Nest),
		enforced: enforced,
		incoming: make(map[int][]deps.Arc),
		step:     make(map[int]int64),
		lastSrc:  -1,
	}
	isSource := make(map[int]bool)
	for _, a := range di.enforced {
		di.incoming[a.Dst] = append(di.incoming[a.Dst], a)
		isSource[a.Src] = true
	}
	for p := 0; p < len(w.Nest.Stmts()); p++ {
		if isSource[p] {
			di.sources = append(di.sources, p)
			di.step[p] = int64(len(di.sources))
			di.lastSrc = p
		}
	}
	return di, nil
}

// describeUnknown summarizes unknown-distance arcs by their classified
// reason, e.g. "1 coupled-subscripts, 2 gcd-inconclusive".
func describeUnknown(arcs []deps.Arc) string {
	counts := make(map[deps.UnknownReason]int)
	for _, a := range arcs {
		counts[a.Reason]++
	}
	var parts []string
	for _, r := range []deps.UnknownReason{deps.ReasonCoupled, deps.ReasonSymbolic, deps.ReasonGCD} {
		if n := counts[r]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, r))
		}
	}
	return strings.Join(parts, ", ")
}

// maxSourceStep returns the highest step among sources inside the nodes
// (recursively); 0 if none.
func (di *depInfo) maxSourceStep(nodes []loop.Node) int64 {
	var max int64
	var walk func([]loop.Node)
	walk = func(ns []loop.Node) {
		for _, n := range ns {
			switch v := n.(type) {
			case loop.StmtNode:
				if s, ok := di.step[di.pos[v.S]]; ok && s > max {
					max = s
				}
			case loop.IfNode:
				walk(v.Then)
				walk(v.Else)
			}
		}
	}
	walk(nodes)
	return max
}

// topLevelStmt reports whether the flattened position belongs to a
// top-level (unconditioned) statement of the body.
func topLevelStmt(n *loop.Nest, pos int, di *depInfo) bool {
	for _, node := range n.Body {
		if v, ok := node.(loop.StmtNode); ok && di.pos[v.S] == pos {
			return true
		}
	}
	return false
}

// ---- Process-oriented scheme (section 4) ----

// ProcessOriented is the paper's scheme: X folded process counters, with
// either the basic primitives of Fig 4.2a (get/set/release) or the improved
// primitives of Fig 4.3 (mark/transfer).
type ProcessOriented struct {
	X        int
	Improved bool
}

// Name implements Scheme.
func (s ProcessOriented) Name() string {
	if s.Improved {
		return fmt.Sprintf("process(X=%d,improved)", s.X)
	}
	return fmt.Sprintf("process(X=%d,basic)", s.X)
}

// Finalize implements Scheme (no renamed storage).
func (ProcessOriented) Finalize(*sim.Mem) {}

// Instrument implements Scheme.
func (s ProcessOriented) Instrument(m *sim.Machine, w *Workload) (sim.Program, Footprint, error) {
	di, err := analyzeWorkload(w)
	if err != nil {
		return nil, Footprint{}, err
	}
	pcs := core.NewSimPCs(m, s.X)
	foot := Footprint{SyncVars: s.X, InitOps: int64(s.X), StorageWords: int64(s.X)}

	// hint remembers the largest program built so far, so later iterations
	// allocate their ops slice once. Safe: each run instruments its own
	// scheme, and the machine calls prog sequentially.
	hint := 0
	prog := func(iter int64) []sim.Op {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		ops := make([]sim.Op, 0, hint)
		gotPC := false
		needOwn := func() {
			if !s.Improved && !gotPC {
				ops = append(ops, pcs.GetPC(iter))
				gotPC = true
			}
		}
		for _, a := range di.schedule(w.Nest, iter) {
			switch a.kind {
			case actWait:
				ops = append(ops, pcs.WaitPC(iter, a.dist, a.step))
			case actStmt:
				ops = appendComputeOps(ops, m, w, idx, a.stmt, locals)
			case actPublish:
				if s.Improved {
					ops = append(ops, pcs.MarkPC(iter, a.step))
				} else {
					needOwn()
					ops = append(ops, pcs.SetPC(iter, a.step))
				}
			case actTransfer:
				needOwn()
				ops = append(ops, pcs.TransferPCOps(iter)...)
			}
		}
		if len(ops) > hint {
			hint = len(ops)
		}
		return ops
	}
	return prog, foot, nil
}

// ---- Statement-oriented scheme (section 3.2) ----

// StatementOriented is the Alliant-style Advance/Await scheme: one
// statement counter per source statement, folded onto K physical counters.
// Folded counters are advanced once per iteration, after the last member
// statement of the group — the sound but parallelism-losing discipline a
// compiler must adopt when SCs are scarce.
type StatementOriented struct {
	// K is the number of physical statement counters; 0 means one per
	// source statement.
	K int
}

// Name implements Scheme.
func (s StatementOriented) Name() string {
	if s.K == 0 {
		return "statement"
	}
	return fmt.Sprintf("statement(K=%d)", s.K)
}

// Finalize implements Scheme.
func (StatementOriented) Finalize(*sim.Mem) {}

// scGrouping folds the loop's source statements onto k physical statement
// counters and decides where each group's advance is emitted: after its
// last member when that member is unconditioned, otherwise at the body end
// (the all-paths rule of Example 3).
type scGrouping struct {
	k            int
	group        map[int]int64 // source pos -> physical SC
	lastOfGroup  map[int]bool  // positions carrying a group's advance
	advanceAtEnd bool
}

func buildSCGrouping(di *depInfo, w *Workload, k int) scGrouping {
	if k == 0 || k > len(di.sources) {
		k = len(di.sources)
	}
	if k == 0 {
		k = 1 // loop without sources still needs a valid SC set
	}
	g := scGrouping{
		k:           k,
		group:       make(map[int]int64, len(di.sources)),
		lastOfGroup: make(map[int]bool),
	}
	lastPosOfGroup := make(map[int64]int)
	for ord, p := range di.sources {
		c := int64(ord % k)
		g.group[p] = c
		lastPosOfGroup[c] = p
	}
	for _, p := range lastPosOfGroup {
		if topLevelStmt(w.Nest, p, di) {
			g.lastOfGroup[p] = true
		} else {
			g.advanceAtEnd = true
		}
	}
	return g
}

// Instrument implements Scheme.
func (s StatementOriented) Instrument(m *sim.Machine, w *Workload) (sim.Program, Footprint, error) {
	di, err := analyzeWorkload(w)
	if err != nil {
		return nil, Footprint{}, err
	}
	sg := buildSCGrouping(&di, w, s.K)
	k := sg.k
	scs := stmtorient.NewSimSCs(m, k)
	group, lastOfGroup, advanceAtEnd := sg.group, sg.lastOfGroup, sg.advanceAtEnd
	foot := Footprint{SyncVars: k, InitOps: int64(k), StorageWords: int64(k)}

	hint := 0
	prog := func(iter int64) []sim.Op {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		ops := make([]sim.Op, 0, hint)
		advanced := make([]bool, k)
		var walk func(nodes []loop.Node)
		walk = func(nodes []loop.Node) {
			for _, node := range nodes {
				switch v := node.(type) {
				case loop.StmtNode:
					p := di.pos[v.S]
					for _, a := range di.incoming[p] {
						d := a.Dist[0]
						ops = append(ops, scs.AwaitOp(group[a.Src], iter-d))
					}
					ops = appendComputeOps(ops, m, w, idx, v.S, locals)
					if g, ok := group[p]; ok && lastOfGroup[p] && !advanced[g] {
						ops = append(ops, scs.AdvanceOps(g, iter)...)
						advanced[g] = true
					}
				case loop.IfNode:
					// Advances are emitted at static positions regardless
					// of the branch outcome (the all-paths rule of
					// Example 3), so arms only contribute their computes
					// and awaits; group advances whose last member hides
					// inside an arm are deferred to the body end.
					if v.Cond(idx) {
						walk(v.Then)
					} else {
						walk(v.Else)
					}
				}
			}
		}
		walk(w.Nest.Body)
		if advanceAtEnd {
			for g := int64(0); g < int64(k); g++ {
				if !advanced[g] {
					ops = append(ops, scs.AdvanceOps(g, iter)...)
					advanced[g] = true
				}
			}
		}
		return ops
	}
	return prog, foot, nil
}

// ---- Data-oriented schemes (section 3.1) ----

// RefBased is the reference-based (Cedar key) scheme: one key per element,
// ticketed accesses through the memory modules.
type RefBased struct{}

// Name implements Scheme.
func (RefBased) Name() string { return "data(ref-based)" }

// Finalize implements Scheme.
func (RefBased) Finalize(*sim.Mem) {}

// Instrument implements Scheme.
func (RefBased) Instrument(m *sim.Machine, w *Workload) (sim.Program, Footprint, error) {
	plan := dataorient.BuildPlan(w.Nest)
	keys := dataorient.NewSimKeys(m, plan)
	f := plan.Footprint()
	foot := Footprint{SyncVars: int(f.Keys), InitOps: f.InitOps, StorageWords: f.Keys}
	di := stmtPositions(w.Nest)

	// Scratch buffers reused across iterations (prog is called sequentially
	// by the machine and nothing below escapes the call); a statement's
	// reference count is small, so a linear scan replaces the per-statement
	// dedup map. First-seen element order is preserved exactly.
	var (
		accs    []*dataorient.Access
		order   []dataorient.Elem
		tickets []int64
	)
	hint := 0
	prog := func(iter int64) []sim.Op {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		ops := make([]sim.Op, 0, hint)
		for _, s := range w.Nest.FlatBody(idx) {
			p := di[s]
			nRefs := len(s.Writes) + len(s.Reads)
			accs = accs[:0]
			for slot := 0; slot < nRefs; slot++ {
				accs = append(accs, plan.ByID[dataorient.AccessID{Lpid: iter, StmtPos: p, RefSlot: slot}])
			}
			// The statement executes as one atomic compute, so per element
			// the wait condition is the minimum ticket among the
			// statement's own accesses (a statement reading and writing
			// the same element must not wait on its own increment).
			order, tickets = order[:0], tickets[:0]
			for _, a := range accs {
				seen := false
				for j, e := range order {
					if e == a.Elem {
						if a.Ticket < tickets[j] {
							tickets[j] = a.Ticket
						}
						seen = true
						break
					}
				}
				if !seen {
					order = append(order, a.Elem)
					tickets = append(tickets, a.Ticket)
				}
			}
			for j, e := range order {
				ops = append(ops, keys.WaitTicketOp(e, tickets[j]))
			}
			ops = appendComputeOps(ops, m, w, idx, s, locals)
			for _, a := range accs {
				ops = append(ops, keys.IncOp(a))
			}
		}
		if len(ops) > hint {
			hint = len(ops)
		}
		return ops
	}
	return prog, foot, nil
}

// InstanceBased is the instance-based (HEP full/empty) scheme: renamed
// single-assignment storage with consumable reader copies. It is stateful
// (the renamed storage lives between Instrument and Finalize); build one
// per run with NewInstanceBased.
type InstanceBased struct {
	plan *dataorient.Plan
	vs   *dataorient.VersionStore
}

// NewInstanceBased returns a fresh instance-based scheme.
func NewInstanceBased() *InstanceBased { return &InstanceBased{} }

// Name implements Scheme.
func (*InstanceBased) Name() string { return "data(instance-based)" }

// RenamedStorage reports that the scheme writes every value to a fresh
// renamed location, making anti- and output dependences vacuous.
func (*InstanceBased) RenamedStorage() bool { return true }

// Instrument implements Scheme.
func (ib *InstanceBased) Instrument(m *sim.Machine, w *Workload) (sim.Program, Footprint, error) {
	plan := dataorient.BuildPlan(w.Nest)
	bits := dataorient.NewSimBits(m, plan)
	f := plan.Footprint()
	foot := Footprint{
		SyncVars:     int(f.Bits),
		InitOps:      f.Bits,
		StorageWords: f.Bits + f.Copies,
	}
	// Initial values come from a pristine copy of the workload memory.
	initMem := sim.NewMem()
	w.Setup(initMem)
	vs := dataorient.NewVersionStore(func(e dataorient.Elem) int64 { return readElem(initMem, e) })
	ib.plan, ib.vs = plan, vs
	di := stmtPositions(w.Nest)

	hint := 0
	prog := func(iter int64) []sim.Op {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		ops := make([]sim.Op, 0, hint)
		for _, s := range w.Nest.FlatBody(idx) {
			s := s
			p := di[s]
			writeAccs := make([]*dataorient.Access, len(s.Writes))
			readAccs := make([]*dataorient.Access, len(s.Reads))
			for k := range s.Writes {
				writeAccs[k] = plan.ByID[dataorient.AccessID{Lpid: iter, StmtPos: p, RefSlot: k}]
			}
			for k := range s.Reads {
				readAccs[k] = plan.ByID[dataorient.AccessID{Lpid: iter, StmtPos: p, RefSlot: len(s.Writes) + k}]
			}
			for _, a := range readAccs {
				ops = append(ops, bits.ConsumeOp(a))
			}
			sem := w.Sem[s]
			exec := func() {
				in := make([]int64, len(readAccs))
				for k, a := range readAccs {
					in[k] = vs.Get(a.Elem, a.Epoch)
				}
				if sem == nil {
					return
				}
				out := sem(idx, in, locals)
				for k, a := range writeAccs {
					vs.Set(a.Elem, a.Epoch+1, out[k])
				}
			}
			// Renamed storage is single-assignment: race checking sees each
			// (element, version) as its own location, so the renaming's
			// elimination of anti/output conflicts is visible to the checker.
			touches := make([]sim.MemAccess, 0, len(readAccs)+len(writeAccs))
			for _, a := range readAccs {
				touches = append(touches, accessTouch(a.Elem, a.Epoch, false))
			}
			for _, a := range writeAccs {
				touches = append(touches, accessTouch(a.Elem, a.Epoch+1, true))
			}
			if lat := m.Config().DataLatency; lat > 0 && len(writeAccs) > 0 {
				// Renamed copies also take DataLatency to land before the
				// full/empty bits may be set (requirement (1)).
				commit := sim.Compute(lat, exec, s.Name+":commit")
				commit.Touch = touches
				ops = append(ops, sim.Compute(w.cost(s, idx), nil, s.Name), commit)
			} else {
				op := sim.Compute(w.cost(s, idx), exec, s.Name)
				op.Touch = touches
				ops = append(ops, op)
			}
			for _, a := range writeAccs {
				ops = append(ops, bits.FillOps(a)...)
			}
		}
		if len(ops) > hint {
			hint = len(ops)
		}
		return ops
	}
	return prog, foot, nil
}

// Finalize folds the last version of every renamed element back into the
// machine memory so the serial-equivalence check can compare.
func (ib *InstanceBased) Finalize(mem *sim.Mem) {
	if ib.plan == nil {
		return
	}
	for _, e := range ib.plan.Order {
		if v, ok := ib.vs.Last(e); ok {
			writeElem(mem, e, v)
		}
	}
}

// accessTouch maps a planned data-oriented access onto a race-checker
// location, version-qualified for renamed storage.
func accessTouch(e dataorient.Elem, ver int64, write bool) sim.MemAccess {
	a := sim.MemAccess{Array: e.Array, Dims: e.Dims, Ver: ver, Write: write}
	for d := 0; d < e.Dims && d < 2; d++ {
		a.Coord[d] = e.C[d]
	}
	return a
}

func readElem(mem *sim.Mem, e dataorient.Elem) int64 {
	switch e.Dims {
	case 1:
		return mem.Lookup(e.Array).Get(e.C[0])
	case 2:
		return mem.LookupGrid(e.Array).Get(e.C[0], e.C[1])
	default:
		panic("codegen: unsupported element dimensionality")
	}
}

func writeElem(mem *sim.Mem, e dataorient.Elem, v int64) {
	switch e.Dims {
	case 1:
		mem.Lookup(e.Array).Set(e.C[0], v)
	case 2:
		mem.LookupGrid(e.Array).Set(e.C[0], e.C[1], v)
	default:
		panic("codegen: unsupported element dimensionality")
	}
}
