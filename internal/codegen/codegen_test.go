package codegen_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

func cfg(p int) sim.Config {
	return sim.Config{Processors: p, BusLatency: 1, MemLatency: 2, Modules: 4, SyncOpCost: 1, SchedOverhead: 1}
}

// allSchemes returns a fresh instance of each scheme (instance-based is
// stateful).
func allSchemes(x int) []codegen.Scheme {
	return []codegen.Scheme{
		codegen.ProcessOriented{X: x, Improved: true},
		codegen.ProcessOriented{X: x, Improved: false},
		codegen.StatementOriented{},
		codegen.RefBased{},
		codegen.NewInstanceBased(),
	}
}

// TestFig21AllSchemesSerialEquivalent is the central correctness matrix:
// every scheme, several machine shapes, one canonical loop.
func TestFig21AllSchemesSerialEquivalent(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for _, x := range []int{1, 2, 8} {
			for _, sch := range allSchemes(x) {
				w := workloads.Fig21(60, 3)
				res, err := codegen.Run(w, sch, cfg(p))
				if err != nil {
					t.Fatalf("P=%d X=%d %s: %v", p, x, sch.Name(), err)
				}
				if res.Stats.Iterations != 60 {
					t.Errorf("P=%d %s: ran %d iterations", p, sch.Name(), res.Stats.Iterations)
				}
			}
		}
	}
}

// TestFig42bProgramShape checks the generated process-oriented program for
// an interior iteration against the paper's transformed loop (Fig 4.2b):
// get_PC, set_PC(1), wait_PC(2,1), set_PC(2), wait_PC(1,1), set_PC(3),
// wait_PC(1,2), wait_PC(2,3), release, wait_PC(1,4), in statement order.
func TestFig42bProgramShape(t *testing.T) {
	w := workloads.Fig21(30, 1)
	m := sim.New(cfg(2))
	w.Setup(m.Mem())
	sch := codegen.ProcessOriented{X: 4, Improved: false}
	prog, foot, err := sch.Instrument(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if foot.SyncVars != 4 {
		t.Errorf("SyncVars = %d, want 4", foot.SyncVars)
	}
	var tags []string
	for _, op := range prog(10) {
		tags = append(tags, op.Tag)
	}
	got := strings.Join(tags, "; ")
	want := []string{
		"S1", "get_PC i=10", "set_PC(1) i=10",
		"wait_PC(2,1) i=10", "S2", "set_PC(2) i=10",
		"wait_PC(1,1) i=10", "S3", "set_PC(3) i=10",
		"wait_PC(1,2) i=10", "wait_PC(2,3) i=10", "S4",
		"transfer_PC:own i=10", "transfer_PC:release i=10",
		"wait_PC(1,4) i=10", "S5",
	}
	if got != strings.Join(want, "; ") {
		t.Errorf("program for iteration 10:\n got: %s\nwant: %s", got, strings.Join(want, "; "))
	}
}

// TestFig42bImprovedProgramShape checks the improved-primitive variant
// (Fig 4.3): marks replace sets and no get_PC is needed.
func TestFig42bImprovedProgramShape(t *testing.T) {
	w := workloads.Fig21(30, 1)
	m := sim.New(cfg(2))
	w.Setup(m.Mem())
	prog, _, err := codegen.ProcessOriented{X: 4, Improved: true}.Instrument(m, w)
	if err != nil {
		t.Fatal(err)
	}
	var tags []string
	for _, op := range prog(10) {
		tags = append(tags, op.Tag)
	}
	got := strings.Join(tags, "; ")
	want := "S1; mark_PC(1) i=10; wait_PC(2,1) i=10; S2; mark_PC(2) i=10; " +
		"wait_PC(1,1) i=10; S3; mark_PC(3) i=10; wait_PC(1,2) i=10; wait_PC(2,3) i=10; S4; " +
		"transfer_PC:own i=10; transfer_PC:release i=10; wait_PC(1,4) i=10; S5"
	if got != want {
		t.Errorf("improved program:\n got: %s\nwant: %s", got, want)
	}
}

// TestBoundaryIterationSkipsWaits: iteration 1 has no live sources, so the
// generated program contains no waits other than ownership.
func TestBoundaryIterationSkipsWaits(t *testing.T) {
	w := workloads.Fig21(30, 1)
	m := sim.New(cfg(2))
	w.Setup(m.Mem())
	prog, _, err := codegen.ProcessOriented{X: 4, Improved: true}.Instrument(m, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range prog(1) {
		if strings.HasPrefix(op.Tag, "wait_PC(") {
			t.Errorf("iteration 1 contains %s", op.Tag)
		}
	}
}

// TestNestedAllSchemes runs Example 2's coalesced nest under every scheme.
func TestNestedAllSchemes(t *testing.T) {
	for _, sch := range allSchemes(4) {
		w := workloads.Nested(8, 5, 2)
		if _, err := codegen.Run(w, sch, cfg(4)); err != nil {
			t.Errorf("%s: %v", sch.Name(), err)
		}
	}
}

// TestBranchyAllSchemes runs the Example 3 loop under every scheme; the
// branch-covering publications must keep every path live.
func TestBranchyAllSchemes(t *testing.T) {
	for _, p := range []int{2, 4} {
		for _, x := range []int{1, 2, 8} {
			for _, sch := range allSchemes(x) {
				w := workloads.Branchy(50, 2)
				if _, err := codegen.Run(w, sch, cfg(p)); err != nil {
					t.Errorf("P=%d X=%d %s: %v", p, x, sch.Name(), err)
				}
			}
		}
	}
}

// TestBranchyCoveringMarks: the taken arm publishes the untaken arm's step.
func TestBranchyCoveringMarks(t *testing.T) {
	w := workloads.Branchy(20, 1)
	m := sim.New(cfg(2))
	w.Setup(m.Mem())
	prog, _, err := codegen.ProcessOriented{X: 2, Improved: true}.Instrument(m, w)
	if err != nil {
		t.Fatal(err)
	}
	// Odd iteration: Then (S2, step 2) runs; Else (S3, step 3) skipped:
	// mark(2) from S2, then covering mark(3).
	oddTags := tags(prog(11))
	if !containsInOrder(oddTags, "S2", "mark_PC(2) i=11", "mark_PC(3) i=11", "S4") {
		t.Errorf("odd iteration misses covering mark: %v", oddTags)
	}
	// Even iteration: Else (S3) runs; Then (S2, step 2) skipped: covering
	// mark(2) is published early, before S3 executes (the paper's "added
	// as the first statement in branch B").
	evenTags := tags(prog(12))
	if !containsInOrder(evenTags, "mark_PC(2) i=12", "S3", "mark_PC(3) i=12", "S4") {
		t.Errorf("even iteration misses early covering mark: %v", evenTags)
	}
	// Transfer happens at body end on every path (last source is in a branch).
	for _, tg := range [][]string{oddTags, evenTags} {
		if !containsInOrder(tg, "S4", "transfer_PC:release") {
			t.Errorf("transfer not at body end: %v", tg)
		}
	}
}

func tags(ops []sim.Op) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.Tag
	}
	return out
}

func containsInOrder(tags []string, want ...string) bool {
	i := 0
	for _, tg := range tags {
		if i < len(want) && strings.HasPrefix(tg, want[i]) {
			i++
		}
	}
	return i == len(want)
}

// TestStatementFoldingSound: folding source statements onto fewer SCs must
// stay correct (it only loses parallelism).
func TestStatementFoldingSound(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		w := workloads.Fig21(50, 2)
		if _, err := codegen.Run(w, codegen.StatementOriented{K: k}, cfg(4)); err != nil {
			t.Errorf("K=%d: %v", k, err)
		}
	}
	for _, k := range []int{1, 2} {
		w := workloads.Branchy(40, 2)
		if _, err := codegen.Run(w, codegen.StatementOriented{K: k}, cfg(3)); err != nil {
			t.Errorf("branchy K=%d: %v", k, err)
		}
	}
}

// TestRecurrencePipelines: distance-d recurrences allow d-way pipelining;
// all schemes must be exact, and the process scheme's makespan must improve
// with d.
func TestRecurrencePipelines(t *testing.T) {
	var prev int64
	for _, d := range []int64{1, 2, 4} {
		w := workloads.Recurrence(64, d, 10)
		res, err := codegen.Run(w, codegen.ProcessOriented{X: 8, Improved: true}, cfg(4))
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if prev != 0 && res.Stats.Cycles >= prev {
			t.Errorf("d=%d cycles %d not faster than d/2's %d", d, res.Stats.Cycles, prev)
		}
		prev = res.Stats.Cycles
	}
}

// TestFootprints pins the synchronization-variable counts the comparison
// table (E4) reports: X for process-oriented, #sources for
// statement-oriented, #elements for ref-based keys, copies+bits for
// instance-based.
func TestFootprints(t *testing.T) {
	const n = 40
	run := func(sch codegen.Scheme) codegen.Footprint {
		w := workloads.Fig21(n, 1)
		res, err := codegen.Run(w, sch, cfg(4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Foot
	}
	if f := run(codegen.ProcessOriented{X: 8, Improved: true}); f.SyncVars != 8 {
		t.Errorf("process SyncVars = %d, want 8", f.SyncVars)
	}
	if f := run(codegen.StatementOriented{}); f.SyncVars != 4 {
		t.Errorf("statement SyncVars = %d, want 4 (S1..S4 are sources)", f.SyncVars)
	}
	// Ref-based: elements of A touched = [0 .. N+3] => N+4 keys, plus OUT
	// has N elements (each written once, no cross-iteration deps but still
	// keyed by the data-oriented discipline).
	if f := run(codegen.RefBased{}); f.SyncVars != 2*n+4 {
		t.Errorf("ref-based SyncVars = %d, want %d", f.SyncVars, 2*n+4)
	}
	// Instance-based: one bit per copy; A has 2N writes (S1,S4) with up to
	// 2 readers, OUT N writes with none.
	f := run(codegen.NewInstanceBased())
	if f.SyncVars <= 2*n {
		t.Errorf("instance-based SyncVars = %d, want > 2N", f.SyncVars)
	}
	if f.StorageWords <= int64(f.SyncVars) {
		t.Errorf("instance-based StorageWords = %d should exceed bit count %d", f.StorageWords, f.SyncVars)
	}
}

// TestRandomLoopsPropertyAllSchemes is the repository's core property test:
// for random constant-distance loops, machines and schemes, parallel
// execution equals serial execution.
func TestRandomLoopsPropertyAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		n := int64(20 + rng.Intn(40))
		nStmts := 1 + rng.Intn(5)
		p := 1 + rng.Intn(6)
		x := 1 + rng.Intn(8)
		seed := rng.Int63()
		// Randomize the machine too: write-commit latency and chunked
		// dispatch must never affect correctness.
		c := cfg(p)
		c.DataLatency = int64(rng.Intn(4))
		if rng.Intn(3) == 0 {
			c.Dispatch = sim.DispatchChunked
			c.ChunkSize = int64(1 + rng.Intn(5))
		}
		for _, sch := range allSchemes(x) {
			w := workloads.Random(rand.New(rand.NewSource(seed)), n, nStmts)
			res, err := codegen.Run(w, sch, c)
			if err != nil {
				t.Fatalf("trial %d (seed %d, n=%d stmts=%d P=%d X=%d lat=%d disp=%v) %s: %v",
					trial, seed, n, nStmts, p, x, c.DataLatency, c.Dispatch, sch.Name(), err)
			}
			if err := res.Stats.CheckConservation(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, sch.Name(), err)
			}
		}
	}
}

// TestRandomBranchyPropertyAllSchemes: random loops with parity branches,
// every scheme, serial equivalence. Branch covering must hold under any
// machine shape.
func TestRandomBranchyPropertyAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := int64(20 + rng.Intn(60))
		p := 1 + rng.Intn(5)
		x := 1 + rng.Intn(6)
		seed := rng.Int63()
		for _, sch := range allSchemes(x) {
			w := workloads.RandomBranchy(rand.New(rand.NewSource(seed)), n)
			if _, err := codegen.Run(w, sch, cfg(p)); err != nil {
				t.Fatalf("trial %d (seed %d, n=%d P=%d X=%d) %s: %v",
					trial, seed, n, p, x, sch.Name(), err)
			}
		}
		// And on real goroutines.
		w := workloads.RandomBranchy(rand.New(rand.NewSource(seed)), n)
		if _, err := codegen.RunRuntime(w, x, p); err != nil {
			t.Fatalf("trial %d runtime (seed %d): %v", trial, seed, err)
		}
	}
}

// TestSelfReadModifyWrite regresses the intra-statement access-order bug
// the random property test exposed: a statement that reads and writes the
// same element (A[I+1] = f(A[I+1])) must not wait on its own key increment
// under the ref-based scheme, and must read the previous version under the
// instance-based scheme.
func TestSelfReadModifyWrite(t *testing.T) {
	for _, x := range []int{1, 4} {
		for _, sch := range allSchemes(x) {
			w := workloads.SelfRMW(40, 2)
			if _, err := codegen.Run(w, sch, cfg(4)); err != nil {
				t.Errorf("X=%d %s: %v", x, sch.Name(), err)
			}
		}
	}
	if _, err := codegen.RunRuntime(workloads.SelfRMW(60, 1), 4, 3); err != nil {
		t.Errorf("runtime: %v", err)
	}
}

// TestDataLatencyStillCorrect models the paper's requirement (1): with a
// nonzero data-write latency, every scheme must publish only after the
// commit phase, or the serial-equivalence check fails.
func TestDataLatencyStillCorrect(t *testing.T) {
	c := cfg(4)
	c.DataLatency = 5
	for _, sch := range allSchemes(4) {
		w := workloads.Fig21(50, 3)
		res, err := codegen.Run(w, sch, c)
		if err != nil {
			t.Errorf("%s: %v", sch.Name(), err)
			continue
		}
		// The commit phases must lengthen the run vs zero latency.
		base, err := codegen.Run(workloads.Fig21(50, 3), sch, cfg(4))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Cycles <= base.Stats.Cycles {
			t.Errorf("%s: DataLatency did not lengthen the run (%d vs %d)",
				sch.Name(), res.Stats.Cycles, base.Stats.Cycles)
		}
	}
	if _, err := codegen.Run(workloads.Stencil(12, 3), codegen.PipelinedOuter{X: 4, G: 2}, c); err != nil {
		t.Errorf("pipeline: %v", err)
	}
}

// TestEarlySignalDetected is the failure-injection counterpart: a producer
// that signals before its commit phase lets the consumer read a stale
// value — the behavior requirement (1) forbids and our model exposes.
func TestEarlySignalDetected(t *testing.T) {
	m := sim.New(sim.Config{Processors: 2, SyncOpCost: 0})
	arr := m.Mem().Array("A", 0, 0)
	pc := m.NewRegVar("pc", 0)
	var got int64 = -1
	_, err := m.RunProcesses([][]sim.Op{
		{
			sim.Compute(10, nil, "S1"),
			sim.WriteVar(pc, 1, "signal-too-early"), // before the commit!
			sim.Compute(5, func() { arr.Set(0, 42) }, "S1:commit"),
		},
		{
			sim.WaitGE(pc, 1, "wait"),
			sim.Compute(1, func() { got = arr.Get(0) }, "S2"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == 42 {
		t.Fatal("early signal was not observable; the model cannot check requirement (1)")
	}
	if got != 0 {
		t.Fatalf("consumer read %d", got)
	}
}

// TestProcessX1StillCorrect: a single shared PC serializes ownership but
// must stay deadlock-free and exact under in-order self-scheduling.
func TestProcessX1StillCorrect(t *testing.T) {
	w := workloads.Fig21(40, 2)
	res, err := codegen.Run(w, codegen.ProcessOriented{X: 1, Improved: true}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 40 {
		t.Errorf("iterations = %d", res.Stats.Iterations)
	}
}

// TestImprovedReducesBroadcasts: mark_PC skips updates when ownership has
// not arrived, so the improved primitives never broadcast more than the
// basic ones (E5's direction).
func TestImprovedReducesBroadcasts(t *testing.T) {
	run := func(improved bool) sim.Stats {
		w := workloads.Fig21(80, 2)
		res, err := codegen.Run(w, codegen.ProcessOriented{X: 2, Improved: improved}, cfg(4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	imp := run(true)
	basic := run(false)
	if imp.BusBroadcasts > basic.BusBroadcasts {
		t.Errorf("improved broadcasts %d > basic %d", imp.BusBroadcasts, basic.BusBroadcasts)
	}
}
