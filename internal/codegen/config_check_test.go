package codegen_test

import (
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// TestRunRejectsInvalidConfig: Run must return the Config.Check error for a
// bad machine description instead of panicking in the simulator.
func TestRunRejectsInvalidConfig(t *testing.T) {
	w := workloads.Fig21(10, 1)
	for _, cfg := range []sim.Config{
		{Processors: 0},
		{Processors: 4, BusLatency: -1},
		{Processors: 4, MemLatency: -1},
		{Processors: 4, Modules: -2},
	} {
		_, err := codegen.Run(w, codegen.RefBased{}, cfg)
		if err == nil {
			t.Fatalf("Run accepted invalid config %+v", cfg)
		}
		if !strings.Contains(err.Error(), "invalid machine configuration") {
			t.Errorf("unexpected error for %+v: %v", cfg, err)
		}
	}
}
