package codegen_test

import (
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// tornConfig pins a schedule that can expose a torn transfer_PC: chunked
// dispatch places consecutive iterations on fixed processors, so a consumer
// sits blocked on the producer's PC while the two-field <owner,step> write
// is split on the bus. The workload must have an intermediate mark_PC (here
// fig 2.1, whose first statement is waited on at step 1): a single-statement
// loop publishes only through transfers, whose step field is always zero,
// making any tear invisible.
func tornConfig(order string) sim.Config {
	return sim.Config{Processors: 4, BusLatency: 1, Modules: 4, MemLatency: 2,
		Dispatch: sim.DispatchChunked, ChunkSize: 1,
		FaultPlan: fault.Plan{Seed: 9, TornProb: 1, TornOrder: order, TornWindow: 8}}
}

// TestTornStepFirstTolerated is the positive half of the paper's §6
// store-order argument: when every <owner,step> PC update is torn with the
// step half landing first, the intermediate value <oldOwner, newStep> can
// release nobody (waits compare the packed word, owner in the high bits),
// so the run completes, stays serially equivalent, and its synchronization
// trace replays race-free under the dynamic happens-before checker.
func TestTornStepFirstTolerated(t *testing.T) {
	w := workloads.Fig21(120, 4)
	res, events, err := codegen.RunSyncTraced(w,
		codegen.ProcessOriented{X: 2, Improved: true}, tornConfig(fault.StepFirst))
	if err != nil {
		t.Fatalf("step-first tear must be tolerated: %v", err)
	}
	if res.Stats.Faults.Torn == 0 {
		t.Fatal("no torn updates injected")
	}
	if rep := verify.Dynamic(events); !rep.OK() {
		t.Errorf("step-first tear produced races:\n%s", rep)
	}
}

// TestTornOwnerFirstFlagged is the negative half: the same tear with the
// owner half first exposes <newOwner, oldStep> — a mark left the step field
// at 1, so a consumer waiting on the new owner's first statement is
// released before that statement ran. On this configuration the premature
// reads happen to land on already-correct data, so the run passes the
// serial-equivalence oracle — which is exactly why the gate is the dsvet
// dynamic checker: the released consumer's accesses are unordered with the
// producer's in the happens-before replay, and must be flagged regardless
// of the data outcome.
func TestTornOwnerFirstFlagged(t *testing.T) {
	w := workloads.Fig21(120, 4)
	_, events, err := codegen.RunSyncTraced(w,
		codegen.ProcessOriented{X: 2, Improved: true}, tornConfig(fault.OwnerFirst))
	if err != nil {
		// Data corruption caught by the serial-equivalence oracle is also an
		// acceptable detection — the hazard did not pass silently.
		t.Logf("owner-first tear failed serial equivalence (detected): %v", err)
		return
	}
	rep := verify.Dynamic(events)
	if rep.OK() {
		t.Fatalf("owner-first tear passed the dynamic checker: the §6 hazard went undetected (%d events)", len(events))
	}
	t.Logf("dynamic checker flagged %d race(s); first: %s", len(rep.Races), rep.Races[0])
}

// TestTornOwnerFirstCorrupts drives the same tear into visible data
// corruption (larger chunks delay the producer further behind its released
// consumer), proving the premature release is not an artifact of the
// checker: the serial-equivalence oracle itself fails.
func TestTornOwnerFirstCorrupts(t *testing.T) {
	w := workloads.Fig21(120, 4)
	cfg := tornConfig(fault.OwnerFirst)
	cfg.ChunkSize = 2
	_, err := codegen.Run(w, codegen.ProcessOriented{X: 2, Improved: true}, cfg)
	if err == nil {
		t.Fatal("owner-first tear with lagging producers stayed serially equivalent")
	}
	t.Logf("detected: %v", err)

	// The identical machine under a step-first tear is clean — the
	// corruption is attributable to the store order alone.
	cfg = tornConfig(fault.StepFirst)
	cfg.ChunkSize = 2
	if _, err := codegen.Run(w, codegen.ProcessOriented{X: 2, Improved: true}, cfg); err != nil {
		t.Fatalf("step-first tear on the same machine must stay clean: %v", err)
	}
}
