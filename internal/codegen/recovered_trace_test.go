package codegen_test

import (
	"errors"
	"testing"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/verify"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// recoveredConfig halts a processor mid-run and arms recovery: without the
// Recover section the halt deadlocks the chain (asserted per scheme below),
// with it the run must complete and its trace must replay clean.
func recoveredConfig() sim.Config {
	// MaxCycles is far above any recovered run's length but keeps the
	// deliberately-unrecovered stall probes below from simulating the
	// 100M-cycle default worth of polling.
	return sim.Config{Processors: 4, BusLatency: 1, Modules: 4, MemLatency: 2,
		SyncOpCost: 1, SchedOverhead: 1, MaxCycles: 20_000,
		FaultPlan: fault.Plan{HaltProc: 1, HaltAtCycle: 40},
		Recover:   sim.Recover{AfterCycles: 30}}
}

// TestRecoveredTraceReplaysClean: for every scheme class, a run healed by
// ownership reclamation finishes serially equivalent, reports its recovery,
// and its synchronization trace passes the dynamic happens-before checker —
// the resumed iteration shares its iteration coordinate with the pre-halt
// prefix, so the vector-clock replay orders them like any clean execution.
func TestRecoveredTraceReplaysClean(t *testing.T) {
	schemes := []struct {
		name  string
		build func() codegen.Scheme
	}{
		{"process", func() codegen.Scheme { return codegen.ProcessOriented{X: 4, Improved: true} }},
		{"process-basic", func() codegen.Scheme { return codegen.ProcessOriented{X: 4, Improved: false} }},
		{"statement", func() codegen.Scheme { return codegen.StatementOriented{} }},
		{"ref", func() codegen.Scheme { return codegen.RefBased{} }},
		{"instance", func() codegen.Scheme { return codegen.NewInstanceBased() }},
	}
	w := workloads.Recurrence(40, 2, 4)
	for _, s := range schemes {
		// First establish the halt actually bites this scheme: without
		// recovery the run must stall (otherwise the recovered run below
		// proves nothing).
		bare := recoveredConfig()
		bare.Recover = sim.Recover{}
		_, _, err := codegen.RunSyncTraced(w, s.build(), bare)
		var se *sim.StallError
		if !errors.As(err, &se) {
			t.Fatalf("%s: unrecovered halt did not stall (err = %v); pick a biting halt cycle", s.name, err)
		}

		res, events, err := codegen.RunSyncTraced(w, s.build(), recoveredConfig())
		if err != nil {
			t.Fatalf("%s: recovery-armed run failed: %v", s.name, err)
		}
		rec := res.Stats.Recovery
		if rec == nil || !rec.Recovered {
			t.Fatalf("%s: run completed without reporting recovery", s.name)
		}
		if rec.Proc != 1 {
			t.Errorf("%s: reclaimed proc %d, want the halted proc 1", s.name, rec.Proc)
		}
		if rep := verify.Dynamic(events); !rep.OK() {
			t.Errorf("%s: recovered trace has races:\n%s", s.name, rep)
		}
	}
}
