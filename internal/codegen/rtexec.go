package codegen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/csrd-repro/datasync/internal/core"
	"github.com/csrd-repro/datasync/internal/dataorient"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/stmtorient"
)

// RunRuntime executes the workload as a Doacross on real goroutines using
// the process-oriented runtime primitives (core.PCSet) — the same
// synchronization placement the simulator-side ProcessOriented scheme
// computes, but with actual concurrency. It verifies serial equivalence
// and returns the resulting memory.
//
// This is the "library" path: a compiler front end (package lang, or a
// hand-built Workload) feeds the analysis, and the loop runs pipelined on
// threads with X folded process counters.
func RunRuntime(w *Workload, x, procs int) (*sim.Mem, error) {
	di, err := analyzeWorkload(w)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	mem := sim.NewMem()
	w.Setup(mem)

	_, err = core.Runner{X: x, Procs: procs}.Run(w.Nest.Iterations(), func(iter int64, p *core.Proc) {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		transferred := false
		for _, a := range di.schedule(w.Nest, iter) {
			switch a.kind {
			case actWait:
				p.Wait(a.dist, a.step)
			case actStmt:
				if exec := w.execInPlace(mem, idx, a.stmt, locals); exec != nil {
					exec()
				}
			case actPublish:
				p.Mark(a.step)
			case actTransfer:
				p.Transfer()
				transferred = true
			}
		}
		if !transferred {
			// Loops without any source statement still pass ownership so
			// the Runner's protocol completes.
			p.Transfer()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("codegen: runtime execution of %s: %w", w.Name, err)
	}

	serialMem := sim.NewMem()
	w.Setup(serialMem)
	sim.ExecSerial(w.Nest.Iterations(), w.serialProgram(serialMem))
	if diff := serialMem.Diff(mem); diff != "" {
		return nil, fmt.Errorf("codegen: runtime execution of %s violates serial equivalence:\n%s", w.Name, diff)
	}
	return mem, nil
}

// runWorkers self-schedules iterations 1..n over procs goroutines in
// non-decreasing order (the dispatch discipline every runtime scheme here
// relies on for liveness).
func runWorkers(n int64, procs int, body func(iter int64)) {
	if procs < 1 {
		procs = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// RunRuntimeStatement executes the workload on real goroutines under the
// statement-oriented scheme: k physical statement counters (0 = one per
// source statement) with the Advance/Await protocol, verified against
// serial execution.
func RunRuntimeStatement(w *Workload, k, procs int) (*sim.Mem, error) {
	di, err := analyzeWorkload(w)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	sg := buildSCGrouping(&di, w, k)
	scs := stmtorient.NewSCSet(sg.k)
	mem := sim.NewMem()
	w.Setup(mem)

	runWorkers(w.Nest.Iterations(), procs, func(iter int64) {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		advanced := make(map[int64]bool)
		for _, st := range w.Nest.FlatBody(idx) {
			p := di.pos[st]
			for _, a := range di.incoming[p] {
				scs.Await(sg.group[a.Src], iter-a.Dist[0])
			}
			if exec := w.execInPlace(mem, idx, st, locals); exec != nil {
				exec()
			}
			if g, ok := sg.group[p]; ok && sg.lastOfGroup[p] && !advanced[g] {
				scs.Advance(g, iter)
				advanced[g] = true
			}
		}
		// Advances are owed on every path, including for groups whose
		// last member hides in a skipped branch arm.
		for g := int64(0); g < int64(sg.k); g++ {
			if !advanced[g] && len(di.sources) > 0 {
				scs.Advance(g, iter)
				advanced[g] = true
			}
		}
	})

	serialMem := sim.NewMem()
	w.Setup(serialMem)
	sim.ExecSerial(w.Nest.Iterations(), w.serialProgram(serialMem))
	if diff := serialMem.Diff(mem); diff != "" {
		return nil, fmt.Errorf("codegen: statement runtime execution of %s violates serial equivalence:\n%s", w.Name, diff)
	}
	return mem, nil
}

// RunRuntimeRefBased executes the workload on real goroutines under the
// reference-based key scheme: one atomic key per element with ticketed
// accesses, verified against serial execution. A statement's accesses are
// grouped per element on the minimum ticket, matching the simulator-side
// code generator.
func RunRuntimeRefBased(w *Workload, procs int) (*sim.Mem, error) {
	plan := dataorient.BuildPlan(w.Nest)
	rk := dataorient.NewRuntimeKeys(plan)
	mem := sim.NewMem()
	w.Setup(mem)
	pos := stmtPositions(w.Nest)

	runWorkers(w.Nest.Iterations(), procs, func(iter int64) {
		idx := w.Nest.IndexOf(iter)
		locals := make(map[string]int64)
		for _, st := range w.Nest.FlatBody(idx) {
			p := pos[st]
			nRefs := len(st.Writes) + len(st.Reads)
			accs := make([]*dataorient.Access, nRefs)
			for slot := 0; slot < nRefs; slot++ {
				accs[slot] = plan.ByID[dataorient.AccessID{Lpid: iter, StmtPos: p, RefSlot: slot}]
			}
			minAcc := map[dataorient.Elem]*dataorient.Access{}
			for _, a := range accs {
				if cur, ok := minAcc[a.Elem]; !ok || a.Ticket < cur.Ticket {
					minAcc[a.Elem] = a
				}
			}
			for _, a := range minAcc {
				rk.Acquire(a)
			}
			if exec := w.execInPlace(mem, idx, st, locals); exec != nil {
				exec()
			}
			for _, a := range accs {
				rk.Release(a)
			}
		}
	})

	serialMem := sim.NewMem()
	w.Setup(serialMem)
	sim.ExecSerial(w.Nest.Iterations(), w.serialProgram(serialMem))
	if diff := serialMem.Diff(mem); diff != "" {
		return nil, fmt.Errorf("codegen: ref-based runtime execution of %s violates serial equivalence:\n%s", w.Name, diff)
	}
	return mem, nil
}

// RunRuntimePipelined executes a depth-2 workload on real goroutines with
// the outer loop as the Doacross and the inner loop serial inside each
// process, publishing inner progress every g inner iterations — the
// runtime counterpart of the PipelinedOuter scheme (Example 1's
// asynchronous pipelining). It verifies serial equivalence.
func RunRuntimePipelined(w *Workload, x, procs int, g int64) (*sim.Mem, error) {
	arcs, err := pipelineArcs(w)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	if g < 1 {
		g = 1
	}
	mem := sim.NewMem()
	w.Setup(mem)
	outer, inner := w.Nest.Indexes[0], w.Nest.Indexes[1]

	_, err = core.Runner{X: x, Procs: procs}.Run(outer.Extent(), func(lpid int64, p *core.Proc) {
		i := outer.Lo + lpid - 1
		sinceMark := int64(0)
		for j := inner.Lo; j <= inner.Hi; j++ {
			idx := []int64{i, j}
			for _, a := range arcs {
				d1, d2 := a.Dist[0], a.Dist[1]
				srcJ := j - d2
				if lpid-d1 < 1 || srcJ < inner.Lo || srcJ > inner.Hi {
					continue
				}
				p.Wait(d1, srcJ-inner.Lo+1)
			}
			locals := make(map[string]int64)
			for _, st := range w.Nest.FlatBody(idx) {
				if exec := w.execInPlace(mem, idx, st, locals); exec != nil {
					exec()
				}
			}
			sinceMark++
			if sinceMark == g && j < inner.Hi {
				p.Mark(j - inner.Lo + 1)
				sinceMark = 0
			}
		}
		p.Transfer()
	})
	if err != nil {
		return nil, fmt.Errorf("codegen: pipelined runtime execution of %s: %w", w.Name, err)
	}

	serialMem := sim.NewMem()
	w.Setup(serialMem)
	sim.ExecSerial(w.Nest.Iterations(), w.serialProgram(serialMem))
	if diff := serialMem.Diff(mem); diff != "" {
		return nil, fmt.Errorf("codegen: pipelined runtime execution of %s violates serial equivalence:\n%s", w.Name, diff)
	}
	return mem, nil
}
