package core

import (
	"strings"
	"testing"

	"github.com/csrd-repro/datasync/internal/sim"
)

func TestSimPCsBasicProtocol(t *testing.T) {
	m := sim.New(sim.Config{Processors: 2, SyncOpCost: 0})
	pcs := NewSimPCs(m, 2)
	if len(pcs.Vars()) != 2 {
		t.Fatalf("Vars = %d, want 2", len(pcs.Vars()))
	}
	// Process 1 on proc 0: get, set(1), release. Process 3 on proc 1:
	// waits for process 1's step 1, then gets ownership after release.
	progs := [][]sim.Op{
		{
			pcs.GetPC(1),
			sim.Compute(5, nil, "S1@1"),
			pcs.SetPC(1, 1),
			pcs.ReleasePC(1),
		},
		{
			pcs.WaitPC(3, 2, 1), // wait_PC(2,1): process 1 at step 1
			pcs.GetPC(3),
			sim.Compute(1, nil, "S1@3"),
			pcs.SetPC(3, 1),
			pcs.ReleasePC(3),
		},
	}
	if _, err := m.RunProcesses(progs); err != nil {
		t.Fatal(err)
	}
	// Slot 0 ended owned by process 5 (3+X).
	if got := Unpack(m.VarValue(pcs.Vars()[0])); got != (PC{5, 0}) {
		t.Errorf("final PC[0] = %v, want <5,0>", got)
	}
	// Slot 1 untouched: still owned by process 2.
	if got := Unpack(m.VarValue(pcs.Vars()[1])); got != (PC{2, 0}) {
		t.Errorf("final PC[1] = %v, want <2,0>", got)
	}
}

func TestSimPCsImprovedProtocol(t *testing.T) {
	m := sim.New(sim.Config{Processors: 2, BusLatency: 1, SyncOpCost: 0})
	pcs := NewSimPCs(m, 1)
	// Process 2's early mark (issued before ownership arrives) is skipped
	// without waiting; its transfer then blocks until process 1 releases.
	progs := [][]sim.Op{
		append([]sim.Op{
			sim.Compute(10, nil, "slow"),
			pcs.MarkPC(1, 1),
		}, pcs.TransferPCOps(1)...),
		append([]sim.Op{
			pcs.MarkPC(2, 1), // not owned yet at cycle 0: skipped
		}, pcs.TransferPCOps(2)...),
	}
	stats, err := m.RunProcesses(progs)
	if err != nil {
		t.Fatal(err)
	}
	if got := Unpack(m.VarValue(pcs.Vars()[0])); got != (PC{3, 0}) {
		t.Errorf("final PC[0] = %v, want <3,0>", got)
	}
	// Broadcasts: process 1's mark and release, process 2's release — the
	// skipped mark generated no bus traffic.
	if stats.BusBroadcasts != 3 {
		t.Errorf("BusBroadcasts = %d, want 3", stats.BusBroadcasts)
	}
}

func TestSimPCsTransferRequiresOwnership(t *testing.T) {
	m := sim.New(sim.Config{Processors: 1, SyncOpCost: 0})
	pcs := NewSimPCs(m, 1)
	// Process 2 transferring without process 1 ever releasing: deadlock,
	// detected by the machine.
	_, err := m.RunProcesses([][]sim.Op{pcs.TransferPCOps(2)})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestSimPCsWaitSatisfiedByOwnershipAdvance(t *testing.T) {
	m := sim.New(sim.Config{Processors: 1, SyncOpCost: 0})
	pcs := NewSimPCs(m, 2)
	// Process 1 releases; a waiter on process 1's step 7 (never marked)
	// must be satisfied by the ownership advance.
	ops := append(pcs.TransferPCOps(1), pcs.WaitPC(3, 2, 7))
	if _, err := m.RunProcesses([][]sim.Op{ops}); err != nil {
		t.Fatal(err)
	}
}

// TestSimPCsWaitBoundaryNoOp: wait_PC whose source precedes the first
// iteration (iter-dist < 1) must be a satisfied no-op, exactly as
// PCSet.Wait's guard — not a panic in Fold. This is the regression test for
// the boundary-wait bug: the seed code panicked here.
func TestSimPCsWaitBoundaryNoOp(t *testing.T) {
	m := sim.New(sim.Config{Processors: 1, SyncOpCost: 0})
	pcs := NewSimPCs(m, 2)
	ops := []sim.Op{
		pcs.WaitPC(1, 2, 1), // source iteration -1 does not exist
		pcs.WaitPC(2, 2, 3), // source iteration 0 does not exist
		pcs.WaitPC(3, 3, 1), // source iteration 0, dist == iter
	}
	ops = append(ops, pcs.TransferPCOps(1)...)
	stats, err := m.RunProcesses([][]sim.Op{ops})
	if err != nil {
		t.Fatal(err)
	}
	// The no-op waits must not poll any variable.
	if stats.Polls != 0 {
		t.Errorf("boundary waits polled %d times, want 0", stats.Polls)
	}
	if got := Unpack(m.VarValue(pcs.Vars()[0])); got != (PC{3, 0}) {
		t.Errorf("final PC[0] = %v, want <3,0>", got)
	}
}

// TestSimPCsWaitBoundaryInExpandedProgram mirrors how codegen emits waits:
// every early iteration of a distance-d dependence carries a boundary wait.
func TestSimPCsWaitBoundaryInExpandedProgram(t *testing.T) {
	m := sim.New(sim.Config{Processors: 2, BusLatency: 1, SyncOpCost: 1})
	pcs := NewSimPCs(m, 2)
	const n, dist = 4, 3
	progs := make([][]sim.Op, 2)
	for pid := 0; pid < 2; pid++ {
		for it := int64(1 + pid); it <= n; it += 2 {
			progs[pid] = append(progs[pid], pcs.WaitPC(it, dist, 1))
			progs[pid] = append(progs[pid], pcs.MarkPC(it, 1))
			progs[pid] = append(progs[pid], pcs.TransferPCOps(it)...)
		}
	}
	if _, err := m.RunProcesses(progs); err != nil {
		t.Fatal(err)
	}
}

func TestPCString(t *testing.T) {
	if s := (PC{7, 3}).String(); s != "<7,3>" {
		t.Errorf("String = %q", s)
	}
}

func TestSplitPCSetAccessors(t *testing.T) {
	s := NewSplitPCSet(3)
	if s.X() != 3 {
		t.Errorf("X = %d", s.X())
	}
	if got := s.Load(1); got != (PC{2, 0}) {
		t.Errorf("Load(1) = %v, want <2,0>", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSplitPCSet(0) did not panic")
		}
	}()
	NewSplitPCSet(0)
}
