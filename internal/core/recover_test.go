package core

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/fault"
)

// TestRecoverHealsStalledWorker: the same 60-second stall that aborts the
// run in TestRunnerStallFaultProducesReport completes under recovery — the
// supervisor reclaims the stalled iteration's ownership, re-executes it, and
// the run finishes promptly with an exact result and a report.
func TestRecoverHealsStalledWorker(t *testing.T) {
	const n = 16
	out := make([]int64, n)
	body := func(it int64, p *Proc) {
		p.Wait(1, 1)
		p.Mark(1)
		if !p.Revoked() {
			out[it-1] = it * 2
		}
		p.Transfer()
	}
	plan := &fault.Plan{StallIter: 5, StallMillis: 60_000}
	r := Runner{X: 4, Procs: 2, Chunk: 2, Spin: stallFastSpin,
		Watchdog: 25 * time.Millisecond, Fault: plan,
		Recover: true, RecoverAttempts: 6}
	start := time.Now()
	res, err := r.Run(n, body)
	if err != nil {
		t.Fatalf("recovery-armed run failed: %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("recovered run took %v; the fence should release the stall", el)
	}
	for i, v := range out {
		if v != int64(i+1)*2 {
			t.Errorf("out[%d] = %d, want %d", i, v, int64(i+1)*2)
		}
	}
	rep := res.Stats.Recovery
	if rep == nil || !rep.Recovered {
		t.Fatalf("no recovery report on a healed run: %+v", rep)
	}
	if rep.Attempts < 1 || len(rep.Reexecuted) == 0 || len(rep.Quarantined) == 0 {
		t.Errorf("report missing the repair: %+v", rep)
	}
	found := false
	for _, it := range rep.Reexecuted {
		if it == plan.StallIter {
			found = true
		}
	}
	if !found {
		t.Errorf("stalled iteration %d not among re-executed %v", plan.StallIter, rep.Reexecuted)
	}
	if rep.Elapsed <= 0 {
		t.Errorf("repair cost not measured: %+v", rep)
	}
}

// TestRecoverExhaustedNamesSlot: an organic livelock (a wait on the
// iteration's own unmarked step) cannot be healed by reclamation — the
// re-execution stalls on the very same wait. The run must terminate with a
// structured exhaustion error naming the unreclaimable slot.
func TestRecoverExhaustedNamesSlot(t *testing.T) {
	r := Runner{X: 2, Procs: 2, Spin: stallFastSpin,
		Watchdog: 20 * time.Millisecond, Recover: true, RecoverAttempts: 3}
	start := time.Now()
	res, err := r.Run(4, func(i int64, p *Proc) {
		p.Wait(0, 1) // own unmarked step: guaranteed livelock
		p.Transfer()
	})
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("exhausted run took %v; it must terminate", el)
	}
	var re *RecoveryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RecoveryExhaustedError", err)
	}
	if re.Slot < 0 || re.Slot >= 2 {
		t.Errorf("slot %d out of range", re.Slot)
	}
	if re.Want.Step != 1 {
		t.Errorf("want = %v, expected step 1 (the unmarked step)", re.Want)
	}
	if re.Reason == "" {
		t.Error("exhaustion reason empty")
	}
	var we *WaitError
	if !errors.As(err, &we) {
		t.Error("exhaustion error does not unwrap to the failed wait")
	}
	if res.Stats.Recovery == nil || res.Stats.Recovery.Recovered {
		t.Errorf("failed recovery must attach a non-recovered report: %+v", res.Stats.Recovery)
	}
}

// TestRecoverProtocolViolationStructured: a body that never transfers ends
// the run with the structured protocol-violation error (satellite: services
// classify it apart from stalls), carrying iteration, slot and final state.
func TestRecoverProtocolViolationStructured(t *testing.T) {
	_, err := Runner{X: 2, Procs: 2}.Run(4, func(i int64, p *Proc) {
		p.Mark(1) // no Transfer: protocol violation
	})
	var pv *ProtocolViolationError
	if !errors.As(err, &pv) {
		t.Fatalf("err = %v, want *ProtocolViolationError", err)
	}
	if pv.Iter < 1 || pv.Iter > 4 {
		t.Errorf("violating iteration %d out of range", pv.Iter)
	}
	if pv.Final.Owner != pv.Iter {
		t.Errorf("final owner %v inconsistent with iteration %d", pv.Final, pv.Iter)
	}
	want := "never transferred its PC"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Errorf("message %q lost the canonical text %q", got, want)
	}
	// A stall is a different class entirely.
	var se *StallError
	if errors.As(err, &se) {
		t.Error("protocol violation must not classify as a stall")
	}
}

// TestRecoverRaceStress halts a pseudo-randomly chosen iteration mid-run at
// GOMAXPROCS 1, 4 and 8 (seeded: the schedule of trips varies, the outcome
// must not). Run with -race this validates the lease protocol: exactly one
// writer per iteration, fence raises strictly ordered before re-execution.
func TestRecoverRaceStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(41))

	const n = 48
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			stall := 2 + rng.Int63n(n-2) // in [2, n-1]: a successor exists to trip
			out := make([]int64, n)
			body := func(it int64, p *Proc) {
				p.Wait(1, 1)
				p.Mark(1)
				if !p.Revoked() {
					out[it-1] = it
				}
				p.Transfer()
			}
			plan := &fault.Plan{StallIter: stall, StallMillis: 60_000}
			res, err := Runner{X: 8, Procs: 4, Chunk: 3, Spin: stallFastSpin,
				Watchdog: 25 * time.Millisecond, Fault: plan,
				Recover: true, RecoverAttempts: 8}.Run(n, body)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d stall=%d: %v", procs, stall, err)
			}
			for i, v := range out {
				if v != int64(i+1) {
					t.Errorf("GOMAXPROCS=%d stall=%d: out[%d] = %d, want %d", procs, stall, i, v, i+1)
				}
			}
			if res.Stats.Recovery == nil || !res.Stats.Recovery.Recovered {
				t.Errorf("GOMAXPROCS=%d stall=%d: run did not report recovery", procs, stall)
			}
		}
	}
}

// TestRecoverOffUnchanged: with Recover unset the stall path is exactly the
// pre-recovery behavior — *StallError, no report.
func TestRecoverOffUnchanged(t *testing.T) {
	plan := &fault.Plan{StallIter: 3, StallMillis: 60_000}
	res, err := Runner{X: 4, Procs: 2, Spin: stallFastSpin,
		Watchdog: 25 * time.Millisecond, Fault: plan}.Run(8, stallChainBody)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if res.Stats.Recovery != nil {
		t.Errorf("recovery report on a non-recovery run: %+v", res.Stats.Recovery)
	}
}
