package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []PC{
		{0, 0}, {1, 0}, {1, 1}, {7, 19}, {MaxOwner, MaxStep}, {1 << 30, 3},
	}
	for _, p := range cases {
		if got := Unpack(p.Pack()); got != p {
			t.Errorf("Unpack(Pack(%v)) = %v", p, got)
		}
	}
}

func TestPackOrderMatchesLexicographic(t *testing.T) {
	f := func(o1, o2 uint16, s1, s2 uint8) bool {
		p := PC{Owner: int64(o1), Step: int64(s1)}
		q := PC{Owner: int64(o2), Step: int64(s2)}
		return (p.Pack() >= q.Pack()) == p.GE(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackRangeChecks(t *testing.T) {
	for _, p := range []PC{{-1, 0}, {0, -1}, {MaxOwner + 1, 0}, {0, MaxStep + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pack(%v) did not panic", p)
				}
			}()
			p.Pack()
		}()
	}
}

func TestGE(t *testing.T) {
	cases := []struct {
		p, q PC
		want bool
	}{
		{PC{2, 0}, PC{1, 9}, true}, // higher owner dominates any step
		{PC{1, 9}, PC{2, 0}, false},
		{PC{3, 4}, PC{3, 4}, true},
		{PC{3, 5}, PC{3, 4}, true},
		{PC{3, 3}, PC{3, 4}, false},
	}
	for _, c := range cases {
		if got := c.p.GE(c.q); got != c.want {
			t.Errorf("%v.GE(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestFold(t *testing.T) {
	// Processes i, X+i, 2X+i share PC[(i-1) mod X].
	if Fold(1, 4) != 0 || Fold(4, 4) != 3 || Fold(5, 4) != 0 || Fold(9, 4) != 0 {
		t.Error("Fold mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Fold(0) did not panic")
		}
	}()
	Fold(0, 4)
}

// TestFoldValidatesX: a non-positive X must produce Fold's own diagnostic,
// not the runtime's bare integer-divide-by-zero panic.
func TestFoldValidatesX(t *testing.T) {
	for _, x := range []int{0, -1, -8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Fold(1, %d) did not panic", x)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "physical PCs") {
					t.Errorf("Fold(1, %d) panicked with %v, want the core diagnostic", x, r)
				}
			}()
			Fold(1, x)
		}()
	}
	// The iter check still fires first (and Fold(0, 0) must not divide).
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "must be >= 1") {
				t.Errorf("Fold(0, 0) panicked with %v, want the iteration diagnostic", r)
			}
		}()
		Fold(0, 0)
	}()
}

func TestInitialPC(t *testing.T) {
	// The paper: initially PC[i] = <i, 0> for 1 <= i <= X.
	for slot := 0; slot < 5; slot++ {
		p := InitialPC(slot)
		if p.Owner != int64(slot)+1 || p.Step != 0 {
			t.Errorf("InitialPC(%d) = %v", slot, p)
		}
	}
}

func TestFoldSharing(t *testing.T) {
	f := func(rawIter uint16, rawX uint8) bool {
		iter := int64(rawIter) + 1
		x := int(rawX)%16 + 1
		// iter and iter+X share a slot; iter and iter+1 do so only if X==1.
		if Fold(iter, x) != Fold(iter+int64(x), x) {
			return false
		}
		if x > 1 && Fold(iter, x) == Fold(iter+1, x) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
