package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/spin"
)

// Ownership reclamation for the concurrent runtime.
//
// The paper's improved primitives make a PC a transferable token: <owner,step>
// names an iteration, never the worker executing it. That licenses recovery —
// when a worker stops advancing its iteration's PC, the supervisor may revoke
// the worker's lease on every iteration it still holds, re-execute the orphan
// on a healthy goroutine, and let the protocol continue as if the dead worker
// had simply been slow to transfer. The reclaimed store sequence is exactly
// the one the victim would have issued (marks ascending within the owner,
// then one transfer to <owner+X, 0>), so the lexicographic <owner,step> order
// every waiter relies on is preserved.
//
// Mechanics: every primitive call in a recovery-enabled run flows through a
// per-worker view. A watchdog trip inside a view does not abort the run;
// instead the view reports the stalled wait to the supervisor, which
//   1. re-checks the slot (the stall may have healed while the reporter
//      waited for the supervisor lock),
//   2. identifies the culprit iteration — the slot's current owner, which by
//      the protocol has not transferred — and the live worker whose claimed
//      chunk contains it,
//   3. raises that worker's revocation fence at the culprit: every op the
//      zombie issues for iterations at or past the fence is dropped, and the
//      worker exits at its next checkpoint,
//   4. re-executes the culprit and the confiscated chunk residue inline on
//      the reporting worker (skipping iterations that already transferred),
//   5. lets the reporter retry its wait with a fresh watchdog budget.
// Attempts are bounded; when the budget is spent (or no live worker claims
// the culprit) the run aborts with a *RecoveryExhaustedError naming the
// unreclaimable slot.
//
// The fence closes the zombie's store window at op granularity: an op whose
// fence check passed immediately before the fence was raised can still land.
// The runtime's own stall fault parks before the body, so driven scenarios
// never hit that window; bodies that must be bulletproof against it should
// write idempotently per iteration or consult Proc.Revoked before their
// side effects.

// DefaultRecoverWatchdog bounds a single wait when Runner.Recover is set
// without an explicit watchdog — recovery cannot act on a stall it never
// hears about.
const DefaultRecoverWatchdog = 250 * time.Millisecond

// DefaultRecoverAttempts is the reclamation budget when Runner.RecoverAttempts
// is zero.
const DefaultRecoverAttempts = 4

// fenceLive marks an unrevoked worker: every iteration is below the fence.
const fenceLive = int64(math.MaxInt64)

// RecoveryReport describes what the supervisor did to finish the run:
// which slots had ownership reclaimed, which iterations were re-executed or
// reassigned from confiscated chunks, who was quarantined, and the wall-clock
// cost of the repairs.
type RecoveryReport struct {
	// Recovered is true when every reclamation succeeded and the run
	// completed; false on a report attached to an exhaustion error.
	Recovered bool `json:"recovered"`
	// Attempts counts reclamations performed.
	Attempts int `json:"attempts"`
	// ReclaimedSlots lists the PC slots whose ownership was reclaimed, in
	// repair order.
	ReclaimedSlots []int `json:"reclaimedSlots,omitempty"`
	// Reexecuted lists the culprit iterations run again on a healthy worker.
	Reexecuted []int64 `json:"reexecuted,omitempty"`
	// Reassigned counts confiscated chunk-residue iterations executed by
	// repairs beyond the culprits themselves.
	Reassigned int64 `json:"reassigned,omitempty"`
	// Quarantined lists the workers whose leases were revoked.
	Quarantined []int `json:"quarantined,omitempty"`
	// Elapsed is the total wall-clock time spent inside repairs.
	Elapsed time.Duration `json:"elapsed"`
}

// RecoveryExhaustedError is returned when recovery was armed but could not
// heal the run: the reclamation budget is spent, or the stalled slot's
// culprit iteration has no live claimant to reclaim it from. The partial
// report shows what was reclaimed before giving up.
type RecoveryExhaustedError struct {
	// Slot is the unreclaimable PC slot; Have/Want its observed and needed
	// <owner,step> at the final failed wait.
	Slot int `json:"slot"`
	Have PC  `json:"have"`
	Want PC  `json:"want"`
	// Attempts is how many reclamations were performed before giving up.
	Attempts int `json:"attempts"`
	// Reason says why no further reclamation was possible.
	Reason string `json:"reason"`
	// Report is the partial recovery report (Recovered false).
	Report *RecoveryReport `json:"report,omitempty"`
	// Cause is the wait whose repair was refused.
	Cause *WaitError `json:"-"`
}

func (e *RecoveryExhaustedError) Error() string {
	return fmt.Sprintf("core: recovery gave up after %d reclamation(s): slot %d unreclaimable (have %v, want >= %v): %s",
		e.Attempts, e.Slot, e.Have, e.Want, e.Reason)
}

// Unwrap exposes the failed wait to errors.As/Is.
func (e *RecoveryExhaustedError) Unwrap() error {
	if e.Cause == nil {
		return nil
	}
	return e.Cause
}

// workerClaim publishes what a worker currently holds. lo/hi are written
// under the supervisor lock (so the repair scan always sees a consistent
// chunk); cur advances lock-free as the worker moves through it.
type workerClaim struct {
	lo, hi int64
	cur    atomic.Int64
}

// repairSpan is an iteration range currently being re-executed by a repair.
type repairSpan struct{ lo, hi int64 }

type supervisor struct {
	set  CounterSet
	x    int64
	body func(it int64, p *Proc)
	max  int

	claims []workerClaim
	fences []atomic.Int64

	aborted atomic.Bool

	mu       sync.Mutex
	abortErr *RecoveryExhaustedError
	attempts int
	spans    []*repairSpan
	report   RecoveryReport
}

func newSupervisor(set CounterSet, x int, body func(int64, *Proc), procs, max int) *supervisor {
	sv := &supervisor{set: set, x: int64(x), body: body, max: max,
		claims: make([]workerClaim, procs), fences: make([]atomic.Int64, procs)}
	for w := range sv.fences {
		sv.fences[w].Store(fenceLive)
	}
	return sv
}

func (sv *supervisor) fence(w int) int64 { return sv.fences[w].Load() }

// claimChunk publishes a worker's next chunk under the lock, refusing when
// the worker has been quarantined or the run aborted — serializing the claim
// against fence raises closes the window where a freshly-quarantined zombie
// could grab (and then silently drop) new work.
func (sv *supervisor) claimChunk(w int, next *atomic.Int64, chunk, n int64) (lo, hi int64, ok bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.aborted.Load() || sv.fences[w].Load() != fenceLive {
		return 0, 0, false
	}
	hi = next.Add(chunk)
	lo = hi - chunk + 1
	if lo > n {
		return 0, 0, false
	}
	if hi > n {
		hi = n
	}
	sv.claims[w].lo, sv.claims[w].hi = lo, hi
	sv.claims[w].cur.Store(lo)
	return lo, hi, true
}

// abortLocked records the run's terminal recovery failure and panics with
// it. Callers hold sv.mu.
func (sv *supervisor) abortLocked(we *WaitError, have PC, reason string) {
	rep := sv.report
	err := &RecoveryExhaustedError{Slot: we.Slot, Have: have, Want: we.Want,
		Attempts: sv.attempts, Reason: reason, Report: &rep, Cause: we}
	sv.abortErr = err
	sv.aborted.Store(true)
	sv.mu.Unlock()
	panic(err)
}

// repair handles one tripped wait. It either heals the stall (reclaiming
// ownership and re-executing the culprit's remaining claim inline on the
// calling goroutine), observes that a concurrent repair already covers it,
// or panics with the run's *RecoveryExhaustedError. own is the span the
// caller is itself re-executing (nil for plain workers): a culprit inside
// the caller's own span means the repair cannot make progress on its own
// reclaimed work, which is terminal.
func (sv *supervisor) repair(we *WaitError, own *repairSpan) {
	sv.mu.Lock()
	if sv.abortErr != nil {
		err := sv.abortErr
		sv.mu.Unlock()
		panic(err)
	}
	// Healed while the reporter waited for the lock (a finished repair, or
	// the stalled worker limping forward on its own)?
	have := sv.set.Load(we.Slot)
	if have.Pack() >= we.Want.Pack() {
		sv.mu.Unlock()
		return
	}
	// The culprit is the slot's current owner: by the protocol that
	// iteration has not transferred, and everything later on this slot —
	// including the reporter — is stuck behind it.
	culprit := have.Owner
	for _, sp := range sv.spans {
		if sp.lo <= culprit && culprit <= sp.hi {
			if sp == own {
				sv.abortLocked(we, have, fmt.Sprintf(
					"re-execution of reclaimed iteration %d is itself stalled; the claim cannot be healed", culprit))
			}
			// Another repair is re-executing it; let the reporter retry its
			// wait with a fresh watchdog budget.
			sv.mu.Unlock()
			return
		}
	}
	// Find the worker whose claimed chunk still holds the culprit. A worker
	// already fenced above the culprit is re-quarantined deeper: its fence
	// lowers to the culprit and the new span stops where the earlier one
	// begins, so concurrent repairs never share an iteration.
	victim := -1
	var reHi int64
	for w := range sv.claims {
		c := &sv.claims[w]
		f := sv.fences[w].Load()
		if c.cur.Load() <= culprit && culprit <= c.hi && culprit < f {
			victim = w
			reHi = c.hi
			if f != fenceLive && f-1 < reHi {
				reHi = f - 1
			}
			break
		}
	}
	if victim < 0 {
		sv.abortLocked(we, have, fmt.Sprintf("no live worker claims iteration %d; nothing to reclaim", culprit))
	}
	if sv.attempts >= sv.max {
		sv.abortLocked(we, have, fmt.Sprintf("the reclamation budget (%d) is spent", sv.max))
	}
	sv.attempts++
	sv.fences[victim].Store(culprit)
	sp := &repairSpan{lo: culprit, hi: reHi}
	sv.spans = append(sv.spans, sp)
	sv.report.Attempts = sv.attempts
	sv.report.ReclaimedSlots = append(sv.report.ReclaimedSlots, we.Slot)
	sv.report.Quarantined = append(sv.report.Quarantined, victim)
	sv.mu.Unlock()

	// Re-execute the orphan and the confiscated residue in order on this
	// goroutine, with an unrevocable view carrying the span: nested stalls
	// report back here recursively, so a transitive chain of dead owners
	// heals one hop per attempt. Iterations that already transferred (the
	// victim beat the fence to the finish) are skipped — ownership
	// serializes per-slot stores, so a completed iteration must never be
	// re-run.
	start := time.Now()
	view := &recView{sv: sv, w: -1, span: sp}
	var reexec []int64
	var reassigned int64
	for it := sp.lo; it <= sp.hi; it++ {
		if sv.set.Load(Fold(it, int(sv.x))).Owner > it {
			continue
		}
		sv.body(it, &Proc{s: view, iter: it})
		if it == culprit {
			reexec = append(reexec, it)
		} else {
			reassigned++
		}
	}
	sv.mu.Lock()
	sv.report.Reexecuted = append(sv.report.Reexecuted, reexec...)
	sv.report.Reassigned += reassigned
	sv.report.Elapsed += time.Since(start)
	for i, s := range sv.spans {
		if s == sp {
			sv.spans = append(sv.spans[:i], sv.spans[i+1:]...)
			break
		}
	}
	sv.mu.Unlock()
}

// finish returns the report (nil when nothing was reclaimed) and the abort
// error, if the run gave up.
func (sv *supervisor) finish() (*RecoveryReport, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	var rep *RecoveryReport
	if sv.attempts > 0 || sv.abortErr != nil {
		r := sv.report
		r.Recovered = sv.abortErr == nil
		rep = &r
	}
	if sv.abortErr != nil {
		return rep, sv.abortErr
	}
	return rep, nil
}

// recView is the per-worker CounterSet view of a recovery-enabled run:
// ops from a revoked lease are dropped, and a tripped wait is routed to the
// supervisor for repair instead of aborting the run. w is -1 for a repair
// executor, whose lease is never revoked and whose active span travels with
// the view.
type recView struct {
	sv   *supervisor
	w    int
	span *repairSpan
}

func (v *recView) revoked(iter int64) bool {
	return v.w >= 0 && iter >= v.sv.fences[v.w].Load()
}

func (v *recView) X() int           { return v.sv.set.X() }
func (v *recView) Load(slot int) PC { return v.sv.set.Load(slot) }

func (v *recView) Wait(iter, dist, step int64) {
	if v.revoked(iter) {
		return
	}
	v.guard(iter, func() { v.sv.set.Wait(iter, dist, step) })
}

func (v *recView) Mark(iter, step int64) {
	if v.revoked(iter) {
		return
	}
	v.sv.set.Mark(iter, step)
}

func (v *recView) Transfer(iter int64) {
	if v.revoked(iter) {
		return
	}
	v.guard(iter, func() { v.sv.set.Transfer(iter) })
}

// guard runs one potentially-blocking primitive, converting watchdog trips
// into repair requests and retrying the op once the supervisor has dealt
// with the stall (the retry gets a fresh watchdog budget). An op whose lease
// was revoked while it was blocked is dropped rather than retried.
func (v *recView) guard(iter int64, op func()) {
	for {
		we := tripOf(op)
		if we == nil {
			return
		}
		if v.revoked(iter) {
			return
		}
		v.sv.repair(we, v.span)
	}
}

// tripOf invokes op and converts a *WaitError panic into a return value;
// any other panic propagates.
func tripOf(op func()) (we *WaitError) {
	defer func() {
		if e := recover(); e != nil {
			w, ok := e.(*WaitError)
			if !ok {
				panic(e)
			}
			we = w
		}
	}()
	op()
	return nil
}

// Revoked reports whether this iteration's execution lost its lease to the
// recovery supervisor: another worker owns (or already finished) the
// iteration, so the body should suppress its side effects. Always false
// outside recovery-enabled runs.
func (p *Proc) Revoked() bool {
	if v, ok := p.s.(*recView); ok {
		return v.revoked(p.iter)
	}
	return false
}

// runRecover is Run with the ownership-reclamation supervisor in the loop.
// The defaulted parameters are those Run already resolved.
func (r Runner) runRecover(n int64, body func(it int64, p *Proc), procs, x int,
	chunk int64, cfg spin.Config, m *Metrics, mk func(int, Options) CounterSet) (*RunResult, error) {
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = DefaultRecoverWatchdog
	}
	maxAttempts := r.RecoverAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultRecoverAttempts
	}
	set := mk(x, Options{Spin: cfg, Metrics: m})
	sv := newSupervisor(set, x, body, procs, maxAttempts)

	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				// The supervisor recorded the abort before panicking; the
				// worker just stops. Anything else is a real bug.
				if e := recover(); e != nil {
					if _, ok := e.(*RecoveryExhaustedError); ok {
						return
					}
					panic(e)
				}
			}()
			view := &recView{sv: sv, w: w}
			for {
				lo, hi, ok := sv.claimChunk(w, &next, chunk, n)
				if !ok {
					return
				}
				for it := lo; it <= hi; it++ {
					if sv.aborted.Load() || sv.fence(w) <= it {
						return
					}
					sv.claims[w].cur.Store(it)
					if r.Fault != nil && r.Fault.StallsRuntime() && it == r.Fault.StallIter {
						// Hold this iteration hostage — until the stall
						// duration passes, the run aborts, or the supervisor
						// revokes this worker's lease.
						deadline := time.Now().Add(r.Fault.StallDuration())
						for time.Now().Before(deadline) && !sv.aborted.Load() && sv.fence(w) > it {
							time.Sleep(time.Millisecond)
						}
						// Revoked or aborted while parked: never run the
						// body, so the repair's re-execution is the only
						// writer this iteration ever has.
						if sv.aborted.Load() || sv.fence(w) <= it {
							return
						}
					}
					body(it, &Proc{s: view, iter: it})
				}
				sv.claims[w].cur.Store(hi + 1)
			}
		}()
	}
	wg.Wait()

	res := &RunResult{Set: set, Stats: RunStats{
		Iterations: n, Procs: procs, X: x, Chunk: int(chunk),
		Elapsed: time.Since(start), Metrics: m.Snapshot(),
	}}
	rep, err := sv.finish()
	res.Stats.Recovery = rep
	if err != nil {
		return res, err
	}
	if err := checkTransfers(set, n, x); err != nil {
		return res, err
	}
	return res, nil
}
