package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/csrd-repro/datasync/internal/fault"
)

// StallReport is the structured diagnosis Runner.Run builds when one or more
// watchdog-equipped waits livelock: which PC value was needed but never
// published, who was transitively blocked on it, and — when a fault plan was
// active — whether the injected fault explains the stall.
type StallReport struct {
	// Culprit is the <owner,step> the earliest stalled wait needed: the
	// value that was never marked or transferred.
	Culprit PC
	// Slot is the physical PC slot the culprit value lives in.
	Slot int
	// Observed is the last value the stalled waiter saw in that slot.
	Observed PC
	// Op is the primitive that stalled on the culprit ("wait_PC", "get_PC",
	// "transfer_PC").
	Op string
	// Blocked lists the iterations whose waits tripped the watchdog,
	// ascending: everything transitively starved by the culprit before the
	// run aborted.
	Blocked []int64
	// Trips is the total number of watchdog trips (>= len(Blocked); one
	// iteration can trip only once since the trip abandons its worker).
	Trips int
	// FaultInjected records whether a runtime stall fault was armed for
	// this run; FaultExplains whether that fault accounts for the culprit
	// (the stalled iteration maps to the culprit slot and had not yet
	// released ownership to the waited-for owner).
	FaultInjected bool
	FaultExplains bool
}

// String renders the report in the multi-line style of the service layer's
// diagnosis blocks.
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall report: %s needed PC[%d] >= %v, last saw %v",
		r.Op, r.Slot, r.Culprit, r.Observed)
	if len(r.Blocked) > 0 {
		fmt.Fprintf(&b, "\nblocked iterations (%d trips):", r.Trips)
		for _, it := range r.Blocked {
			fmt.Fprintf(&b, " %d", it)
		}
	}
	switch {
	case r.FaultExplains:
		b.WriteString("\ndiagnosis: the injected stall fault held this PC; the stall is expected")
	case r.FaultInjected:
		b.WriteString("\ndiagnosis: a stall fault was armed but does not explain this slot; suspect the program")
	default:
		b.WriteString("\ndiagnosis: no fault was injected; suspect a missing mark/transfer in the program")
	}
	return b.String()
}

// StallError wraps the first (lowest-Want, hence deterministic) *WaitError
// of an aborted run together with the aggregate report. It unwraps to the
// *WaitError — and through it to the *spin.DeadlineError — so existing
// errors.As callers keep working.
type StallError struct {
	Report StallReport
	first  *WaitError
}

func (e *StallError) Error() string {
	return e.first.Error() + "\n" + e.Report.String()
}

// Unwrap exposes the underlying wait error to errors.As/Is.
func (e *StallError) Unwrap() error { return e.first }

// buildStallError folds every tripped wait into one report. The culprit is
// the trip with the smallest needed PC value (lexicographic <owner,step>):
// the earliest link of the starved dependence chain, stable across worker
// scheduling.
func buildStallError(trips []*WaitError, x int, plan *fault.Plan) *StallError {
	culprit := trips[0]
	for _, tr := range trips[1:] {
		if tr.Want.Pack() < culprit.Want.Pack() {
			culprit = tr
		}
	}
	seen := map[int64]bool{}
	var blocked []int64
	for _, tr := range trips {
		if !seen[tr.Iter] {
			seen[tr.Iter] = true
			blocked = append(blocked, tr.Iter)
		}
	}
	sort.Slice(blocked, func(i, j int) bool { return blocked[i] < blocked[j] })
	rep := StallReport{
		Culprit:  culprit.Want,
		Slot:     culprit.Slot,
		Observed: culprit.Last,
		Op:       culprit.Op,
		Blocked:  blocked,
		Trips:    len(trips),
	}
	if plan != nil && plan.StallsRuntime() {
		rep.FaultInjected = true
		rep.FaultExplains = Fold(plan.StallIter, x) == culprit.Slot &&
			culprit.Want.Owner >= plan.StallIter
	}
	return &StallError{Report: rep, first: culprit}
}
