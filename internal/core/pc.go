// Package core implements the paper's contribution: the process-oriented
// data synchronization scheme of Su & Yew (ISCA 1989), section 4.
//
// Each process (loop iteration) is assigned one synchronization variable,
// the process counter (PC), holding the pair <owner, step> ordered
// lexicographically. The PC is written only by its current owner: the step
// advances as the process completes each of its source statements, and
// completing the last source statement transfers ownership to process
// owner+X, where X is the number of physical PCs the loop is folded onto
// (processes i, i+X, i+2X, ... share PC[i mod X]).
//
// The package provides the paper's primitives in two forms:
//
//   - op builders over the machine simulator (SimPCs), used by the
//     measurement experiments — both the basic set_PC/release_PC/get_PC set
//     of Fig 4.2a and the improved load_index/mark_PC/transfer_PC set of
//     Fig 4.3;
//   - real concurrent implementations over goroutines and atomics (PCSet,
//     Runner), usable as a library for pipelined Doacross execution,
//     including the split-field variant whose non-atomic two-field updates
//     section 6 argues are safe.
package core

import "fmt"

// StepBits is the width of the step field in a packed PC. A step counts
// source statements within one iteration, so 20 bits is far beyond any
// realistic loop body; owners get the remaining 43 bits.
const StepBits = 20

// MaxStep is the largest representable step.
const MaxStep = 1<<StepBits - 1

// MaxOwner is the largest representable owner (process id).
const MaxOwner = 1<<43 - 1

// PC is a process counter value: the pair <owner, step> with lexicographic
// order, exactly as defined in Fig 4.2a of the paper.
type PC struct {
	Owner int64 // process id (1-based lpid) currently owning the counter
	Step  int64 // source statements the owner has completed
}

// Pack encodes the PC into a single int64 such that integer order equals
// lexicographic <owner, step> order.
func (p PC) Pack() int64 {
	if p.Owner < 0 || p.Owner > MaxOwner {
		panic(fmt.Sprintf("core: owner %d out of range", p.Owner))
	}
	if p.Step < 0 || p.Step > MaxStep {
		panic(fmt.Sprintf("core: step %d out of range", p.Step))
	}
	return p.Owner<<StepBits | p.Step
}

// Unpack decodes a packed PC.
func Unpack(v int64) PC {
	return PC{Owner: v >> StepBits, Step: v & MaxStep}
}

// GE reports p >= q in lexicographic order.
func (p PC) GE(q PC) bool {
	if p.Owner != q.Owner {
		return p.Owner > q.Owner
	}
	return p.Step >= q.Step
}

// String renders the PC as "<owner,step>".
func (p PC) String() string { return fmt.Sprintf("<%d,%d>", p.Owner, p.Step) }

// Fold maps a 1-based iteration number onto its PC slot, the paper's
// "i mod X" with slots numbered 0..X-1.
func Fold(iter int64, x int) int {
	if iter < 1 {
		panic(fmt.Sprintf("core: iteration %d must be >= 1", iter))
	}
	if x < 1 {
		panic(fmt.Sprintf("core: folded onto %d physical PCs, need at least 1", x))
	}
	return int((iter - 1) % int64(x))
}

// InitialPC is the value PC[slot] starts with: owned by the first process
// folded onto the slot, at step 0 (the paper's "initially PC[i] = <i,0>").
func InitialPC(slot int) PC { return PC{Owner: int64(slot) + 1, Step: 0} }
