package core

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"github.com/csrd-repro/datasync/internal/spin"
)

// CounterSet abstracts a folded set of process counters so executors can run
// over either representation: the packed single-word PCSet or the §6
// split-field SplitPCSet. Wait/Mark/Transfer are the improved primitives of
// Fig 4.3 (wait_PC / mark_PC / transfer_PC) keyed by the 1-based iteration.
type CounterSet interface {
	// X returns the number of physical process counters.
	X() int
	// Load returns a sound snapshot of PC[slot].
	Load(slot int) PC
	// Wait blocks until process iter-dist has completed source statement
	// step; waits on sources before the first iteration return immediately.
	Wait(iter, dist, step int64)
	// Mark publishes step if ownership has already reached iter.
	Mark(iter, step int64)
	// Transfer acquires ownership if necessary and passes the PC to iter+X.
	Transfer(iter int64)
}

var (
	_ CounterSet = (*PCSet)(nil)
	_ CounterSet = (*SplitPCSet)(nil)
)

// Options configure a counter-set implementation.
type Options struct {
	// Spin tunes the backoff tiers (and watchdog) of every wait; the zero
	// value selects spin.Defaults.
	Spin spin.Config
	// Metrics, when non-nil, receives per-slot instrumentation. It must
	// have been built for at least X slots.
	Metrics *Metrics
}

// histBuckets is the wait-cycle histogram size: bucket 0 counts waits
// satisfied on the fast path (zero pauses), bucket k >= 1 counts waits that
// took [2^(k-1), 2^k) backoff pauses, with the last bucket open-ended.
const histBuckets = 18

// Metrics is the opt-in instrumentation of the runtime layer: per-slot wait
// and spin-iteration counts, ownership hand-off counts, and a global
// wait-cycle histogram. All counters are updated with atomics and padded so
// enabling metrics does not reintroduce the false sharing the padded PC
// storage removes. A nil *Metrics is valid and records nothing.
type Metrics struct {
	slots []slotCounters
	hist  [histBuckets]atomic.Uint64
}

type slotCounters struct {
	waits    atomic.Uint64 // wait operations resolved against this slot
	spins    atomic.Uint64 // total backoff pauses across those waits
	handoffs atomic.Uint64 // ownership transfers out of this slot
	_        [spin.CacheLine - 24]byte
}

// NewMetrics builds a collector for x slots.
func NewMetrics(x int) *Metrics {
	if x < 1 {
		panic("core: metrics need at least one slot")
	}
	return &Metrics{slots: make([]slotCounters, x)}
}

func histBucket(spins int) int {
	b := bits.Len(uint(spins))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func (m *Metrics) noteWait(slot, spins int) {
	if m == nil {
		return
	}
	c := &m.slots[slot]
	c.waits.Add(1)
	c.spins.Add(uint64(spins))
	m.hist[histBucket(spins)].Add(1)
}

func (m *Metrics) noteHandoff(slot int) {
	if m == nil {
		return
	}
	m.slots[slot].handoffs.Add(1)
}

// SlotStats is a snapshot of one slot's counters.
type SlotStats struct {
	Waits     uint64 // wait operations resolved against the slot
	SpinIters uint64 // total backoff pauses across those waits
	Handoffs  uint64 // ownership transfers out of the slot
}

// MetricsSnapshot is a point-in-time copy of a Metrics collector.
type MetricsSnapshot struct {
	Slots []SlotStats
	// WaitHist[0] counts contention-free waits; WaitHist[k] counts waits
	// that took [2^(k-1), 2^k) pauses (last bucket open-ended).
	WaitHist []uint64
}

// Snapshot copies the current counter values. Safe to call while waiters
// are still running; the copy is per-counter consistent.
func (m *Metrics) Snapshot() *MetricsSnapshot {
	if m == nil {
		return nil
	}
	s := &MetricsSnapshot{Slots: make([]SlotStats, len(m.slots)), WaitHist: make([]uint64, histBuckets)}
	for k := range m.slots {
		c := &m.slots[k]
		s.Slots[k] = SlotStats{Waits: c.waits.Load(), SpinIters: c.spins.Load(), Handoffs: c.handoffs.Load()}
	}
	for b := range m.hist {
		s.WaitHist[b] = m.hist[b].Load()
	}
	return s
}

// Totals sums the per-slot counters.
func (s *MetricsSnapshot) Totals() SlotStats {
	var t SlotStats
	for _, c := range s.Slots {
		t.Waits += c.Waits
		t.SpinIters += c.SpinIters
		t.Handoffs += c.Handoffs
	}
	return t
}

// String renders the snapshot as a small per-slot table plus the wait-cycle
// histogram (empty buckets elided).
func (s *MetricsSnapshot) String() string {
	var b strings.Builder
	t := s.Totals()
	fmt.Fprintf(&b, "waits=%d spinIters=%d handoffs=%d\n", t.Waits, t.SpinIters, t.Handoffs)
	fmt.Fprintf(&b, "%-6s %10s %10s %10s\n", "slot", "waits", "spinIters", "handoffs")
	for k, c := range s.Slots {
		fmt.Fprintf(&b, "%-6d %10d %10d %10d\n", k, c.Waits, c.SpinIters, c.Handoffs)
	}
	b.WriteString("wait-pause histogram:\n")
	for k, n := range s.WaitHist {
		if n == 0 {
			continue
		}
		switch {
		case k == 0:
			fmt.Fprintf(&b, "  fast path      %10d\n", n)
		case k == histBuckets-1:
			fmt.Fprintf(&b, "  >=%-7d      %10d\n", 1<<(k-1), n)
		default:
			fmt.Fprintf(&b, "  %7d-%-7d %8d\n", 1<<(k-1), 1<<k-1, n)
		}
	}
	return b.String()
}
