package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/spin"
)

// stallFastSpin keeps stall tests quick: tiny tiers, short watchdog.
var stallFastSpin = spin.Config{HotSpins: 1, YieldSpins: 1,
	SleepMin: 50 * time.Microsecond, SleepMax: 200 * time.Microsecond}

// stallChainBody is the canonical dependent loop: wait for the predecessor's
// first statement, mark, transfer.
func stallChainBody(it int64, p *Proc) {
	p.Wait(1, 1)
	p.Mark(1)
	p.Transfer()
}

// TestRunnerStallFaultProducesReport: an injected stall of iteration 3
// trips the watchdog of its successors and the resulting StallReport names
// the held <owner,step>, attributes it to the fault, and the run still
// terminates (the stall releases once a watchdog fires).
func TestRunnerStallFaultProducesReport(t *testing.T) {
	plan := &fault.Plan{StallIter: 3, StallMillis: 60_000}
	r := Runner{X: 4, Procs: 2, Spin: stallFastSpin,
		Watchdog: 25 * time.Millisecond, Fault: plan}
	start := time.Now()
	_, err := r.Run(8, stallChainBody)
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("stalled run took %v; the trip should release the stall", el)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	rep := se.Report
	if rep.Culprit.Owner != 3 || rep.Culprit.Step != 1 {
		t.Errorf("culprit = %v, want <3,1> (the stalled iteration's unmarked step)", rep.Culprit)
	}
	if rep.Slot != Fold(3, 4) {
		t.Errorf("culprit slot = %d, want Fold(3,4)=%d", rep.Slot, Fold(3, 4))
	}
	if !rep.FaultInjected || !rep.FaultExplains {
		t.Errorf("stall not attributed to the injected fault: %+v", rep)
	}
	if len(rep.Blocked) == 0 || rep.Blocked[0] != 4 {
		t.Errorf("blocked iterations %v, want leading 4 (the direct successor)", rep.Blocked)
	}
	// The wrapped chain must stay intact for existing callers.
	var we *WaitError
	if !errors.As(err, &we) {
		t.Error("StallError does not unwrap to *WaitError")
	}
	var de *spin.DeadlineError
	if !errors.As(err, &de) {
		t.Error("StallError does not unwrap to *spin.DeadlineError")
	}
	if !strings.Contains(err.Error(), "stall report") {
		t.Errorf("error message lacks the report: %v", err)
	}
}

// TestRunnerStallReportDeterministic: the culprit naming is stable across
// runs and worker counts — the min-Want trip does not depend on scheduling.
func TestRunnerStallReportDeterministic(t *testing.T) {
	run := func(procs int) StallReport {
		plan := &fault.Plan{StallIter: 3, StallMillis: 60_000}
		_, err := Runner{X: 4, Procs: procs, Spin: stallFastSpin,
			Watchdog: 25 * time.Millisecond, Fault: plan}.Run(8, stallChainBody)
		var se *StallError
		if !errors.As(err, &se) {
			t.Fatalf("procs=%d: err = %v, want *StallError", procs, err)
		}
		return se.Report
	}
	a, b, c := run(2), run(2), run(4)
	for i, rep := range []StallReport{b, c} {
		if rep.Culprit != a.Culprit || rep.Slot != a.Slot || rep.Op != a.Op {
			t.Errorf("run %d: culprit %v slot %d op %q vs %v/%d/%q",
				i, rep.Culprit, rep.Slot, rep.Op, a.Culprit, a.Slot, a.Op)
		}
	}
}

// TestRunnerShortStallCompletes: a stall shorter than the watchdog only
// delays the run; no error, no report.
func TestRunnerShortStallCompletes(t *testing.T) {
	plan := &fault.Plan{StallIter: 2, StallMillis: 5}
	res, err := Runner{X: 4, Procs: 2, Spin: stallFastSpin,
		Watchdog: 2 * time.Second, Fault: plan}.Run(8, stallChainBody)
	if err != nil {
		t.Fatalf("short stall aborted the run: %v", err)
	}
	if res.Stats.Elapsed < 5*time.Millisecond {
		t.Errorf("stall not applied: elapsed %v", res.Stats.Elapsed)
	}
}

// TestRunnerStallWithoutFaultNotExplained: an organic livelock (no plan)
// yields a report that does NOT blame a fault.
func TestRunnerStallWithoutFaultNotExplained(t *testing.T) {
	_, err := Runner{X: 2, Procs: 2, Spin: stallFastSpin, Watchdog: 20 * time.Millisecond}.
		Run(4, func(i int64, p *Proc) {
			p.Wait(0, 1) // own unmarked step: guaranteed livelock
			p.Transfer()
		})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Report.FaultInjected || se.Report.FaultExplains {
		t.Errorf("fault blamed without a plan: %+v", se.Report)
	}
	if !strings.Contains(se.Report.String(), "no fault was injected") {
		t.Errorf("report diagnosis wrong: %s", se.Report)
	}
}
