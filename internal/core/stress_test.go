package core

import (
	"fmt"
	"runtime"
	"testing"
)

// chainBody is a two-recurrence Doacross body (distances 1 and 3) whose
// result exposes any premature wait release; wantChain is its oracle.
func chainBody(a, b []int64) func(i int64, p *Proc) {
	return func(i int64, p *Proc) {
		p.Wait(1, 1)
		if i > 1 {
			a[i] = a[i-1] + 1
		} else {
			a[i] = 1
		}
		p.Mark(1)
		p.Wait(3, 2)
		if i > 3 {
			b[i] = b[i-3] + a[i]
		} else {
			b[i] = a[i]
		}
		p.Transfer()
	}
}

func wantChain(n int64) ([]int64, []int64) {
	a := make([]int64, n+1)
	b := make([]int64, n+1)
	for i := int64(1); i <= n; i++ {
		if i > 1 {
			a[i] = a[i-1] + 1
		} else {
			a[i] = 1
		}
		if i > 3 {
			b[i] = b[i-3] + a[i]
		} else {
			b[i] = a[i]
		}
	}
	return a, b
}

// TestRunnerAcrossGOMAXPROCS drives both counter representations through
// the Runner under several GOMAXPROCS settings (notably 1, where liveness
// depends entirely on the backoff tiers yielding, and oversubscribed
// values). Run it with -race to check the memory-model claims on real
// hardware as well as in the interleaving model.
func TestRunnerAcrossGOMAXPROCS(t *testing.T) {
	const n = 250
	wa, wb := wantChain(n)
	sets := map[string]func(x int, o Options) CounterSet{
		"packed": nil, // Runner default
		"split":  SplitCounters,
	}
	for _, gmp := range []int{1, 2, 4, 8} {
		for name, mk := range sets {
			t.Run(fmt.Sprintf("gomaxprocs=%d/%s", gmp, name), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prev)
				a := make([]int64, n+1)
				b := make([]int64, n+1)
				res := Runner{X: 4, Procs: 6, Chunk: 3, NewSet: mk}.
					MustRun(n, chainBody(a, b))
				for i := int64(1); i <= n; i++ {
					if a[i] != wa[i] || b[i] != wb[i] {
						t.Fatalf("i=%d: a=%d/%d b=%d/%d", i, a[i], wa[i], b[i], wb[i])
					}
				}
				for k := 0; k < res.Set.X(); k++ {
					if owner := res.Set.Load(k).Owner; owner <= n {
						t.Errorf("slot %d final owner %d", k, owner)
					}
				}
			})
		}
	}
}

// TestSplitPCSetThroughRunnerStress is the long-haul version of the
// interface-driven split-field stress (skipped with -short).
func TestSplitPCSetThroughRunnerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 5000
	wa, wb := wantChain(n)
	for trial, cfg := range []Runner{
		{X: 1, Procs: 4, NewSet: SplitCounters},
		{X: 8, Procs: 8, Chunk: 5, NewSet: SplitCounters},
		{X: 3, Procs: 2, Chunk: 32, NewSet: SplitCounters, Metrics: true},
	} {
		a := make([]int64, n+1)
		b := make([]int64, n+1)
		res := cfg.MustRun(n, chainBody(a, b))
		for i := int64(1); i <= n; i++ {
			if a[i] != wa[i] || b[i] != wb[i] {
				t.Fatalf("trial %d i=%d: a=%d/%d b=%d/%d", trial, i, a[i], wa[i], b[i], wb[i])
			}
		}
		if m := res.Stats.Metrics; m != nil && m.Totals().Handoffs != n {
			t.Errorf("trial %d: handoffs = %d, want %d", trial, m.Totals().Handoffs, n)
		}
	}
}
