package core

import (
	"github.com/csrd-repro/datasync/internal/spin"
)

// SplitPCSet stores each process counter as two separately written words,
// implementing section 6's observation that the owner and step fields "need
// not be updated simultaneously" (halving the required bus width): the
// primitives are correct without any atomic read-modify-write or even an
// atomic two-field store, because
//
//   - each PC is written by exactly one process at a time, and
//   - waits release when the PC *exceeds* a value, and every torn read
//     observes either a current or an older-but-sound state.
//
// Two orderings matter — both proved necessary by the interleaving model
// checker in this package's tests:
//
//   - Transfer must store the step (0) before the owner (i+X): storing the
//     owner first would let a waiter pair the new owner with the previous
//     owner's stale step and release before the new owner completed
//     anything;
//   - symmetrically, Wait must load the owner before the step: loading the
//     step first can capture the previous owner's step, pair it with the
//     newly stored owner, and release prematurely. (The paper states reads
//     and updates may interleave freely, which is true, but the field read
//     order within one probe is constrained — a refinement the model
//     checker surfaces.)
//
// Both fields live on their own cache lines (spin.Padded), and all waits go
// through the shared tiered backoff, exactly as PCSet's.
type SplitPCSet struct {
	x      int64
	cfg    spin.Config
	m      *Metrics
	owners []spin.Padded
	steps  []spin.Padded
}

// NewSplitPCSet builds X split-field process counters initialized to
// <slot+1, 0> with the default waiting strategy and no metrics.
func NewSplitPCSet(x int) *SplitPCSet { return NewSplitPCSetOpts(x, Options{}) }

// NewSplitPCSetOpts builds X split-field process counters with explicit
// spin tiers and optional metrics collection.
func NewSplitPCSetOpts(x int, o Options) *SplitPCSet {
	if x < 1 {
		panic("core: need at least one PC")
	}
	s := &SplitPCSet{x: int64(x), cfg: o.Spin.Normalized(), m: o.Metrics,
		owners: make([]spin.Padded, x), steps: make([]spin.Padded, x)}
	for k := 0; k < x; k++ {
		s.owners[k].Store(int64(k) + 1)
	}
	return s
}

// X returns the number of physical PCs.
func (s *SplitPCSet) X() int { return int(s.x) }

// Load returns a (possibly torn, always sound) snapshot of PC[slot].
func (s *SplitPCSet) Load(slot int) PC {
	return PC{Owner: s.owners[slot].Load(), Step: s.steps[slot].Load()}
}

// satisfied probes one wait condition with the required field read order:
// owner first, then (only when needed) step.
func (s *SplitPCSet) satisfied(slot int, src, step int64) bool {
	o := s.owners[slot].Load()
	if o > src {
		return true
	}
	return o == src && s.steps[slot].Load() >= step
}

// Wait is wait_PC(dist, step): spin until the observed pair
// <owner, step> >= <iter-dist, step> lexicographically.
func (s *SplitPCSet) Wait(iter, dist, step int64) {
	src := iter - dist
	if src < 1 {
		return
	}
	slot := Fold(src, int(s.x))
	if s.satisfied(slot, src, step) {
		s.m.noteWait(slot, 0)
		return
	}
	b := spin.New(s.cfg)
	for !s.satisfied(slot, src, step) {
		if err := b.Pause(); err != nil {
			panic(&WaitError{Op: "wait_PC", Iter: iter, Slot: slot,
				Last: s.Load(slot), Want: PC{Owner: src, Step: step},
				Err: err.(*spin.DeadlineError)})
		}
	}
	s.m.noteWait(slot, b.Spins())
}

// Mark is mark_PC(step): update the step only when ownership has been
// transferred to this process.
func (s *SplitPCSet) Mark(iter, step int64) {
	slot := Fold(iter, int(s.x))
	if s.owners[slot].Load() >= iter {
		s.steps[slot].Store(step)
	}
}

// Transfer is transfer_PC(): acquire ownership, then release with the
// section-6 store order — step first, owner second.
func (s *SplitPCSet) Transfer(iter int64) {
	slot := Fold(iter, int(s.x))
	spins := 0
	if s.owners[slot].Load() < iter {
		b := spin.New(s.cfg)
		for s.owners[slot].Load() < iter {
			if err := b.Pause(); err != nil {
				panic(&WaitError{Op: "transfer_PC", Iter: iter, Slot: slot,
					Last: s.Load(slot), Want: PC{Owner: iter, Step: 0},
					Err: err.(*spin.DeadlineError)})
			}
		}
		spins = b.Spins()
	}
	s.m.noteWait(slot, spins)        // ownership acquisitions count as waits
	s.steps[slot].Store(0)           // step field first ...
	s.owners[slot].Store(iter + s.x) // ... then the owner field
	s.m.noteHandoff(slot)
}
