package core

import (
	"sync"
	"testing"
)

// ---- Exhaustive interleaving model of the split-field protocol (E11) ----
//
// The model serializes the writer-side stores of two successive owners of
// one PC slot (X=1): process 1 marks steps 1..K-1, transfers (two stores),
// then process 2 does the same. Between any two writer stores a waiter may
// load the owner field and, later, the step field (our wait_PC read order).
// The paper's claim (section 6) is that no such torn read releases a wait
// before its source process has actually completed the awaited source
// statement. The model verifies the claim for the paper's store order
// (step before owner in transfer_PC) and demonstrates that the opposite
// order is unsound — i.e. the model checker has teeth.

const (
	fieldOwner = iota
	fieldStep
)

type mEvent struct {
	isStore bool
	field   int
	val     int64
	// truth: process p has completed source statement s (recorded just
	// before the corresponding PC store — the latest sound position).
	p, s int64
}

func store(field int, val int64) mEvent { return mEvent{isStore: true, field: field, val: val} }
func truth(p, s int64) mEvent           { return mEvent{p: p, s: s} }

// writerTrace builds the serialized store/truth sequence for two owners of
// one slot with k source statements each; stepFirst selects transfer_PC's
// store order.
func writerTrace(k int64, stepFirst bool) []mEvent {
	var ev []mEvent
	emit := func(p int64, next int64) {
		for s := int64(1); s < k; s++ {
			ev = append(ev, truth(p, s), store(fieldStep, s))
		}
		ev = append(ev, truth(p, k)) // last source completed, then transfer
		if stepFirst {
			ev = append(ev, store(fieldStep, 0), store(fieldOwner, next))
		} else {
			ev = append(ev, store(fieldOwner, next), store(fieldStep, 0))
		}
	}
	emit(1, 2)
	emit(2, 3)
	return ev
}

// modelState computes owner/step values and the truth set after t events.
type modelState struct {
	owner, step []int64
	done        []map[[2]int64]bool
}

func replay(ev []mEvent) modelState {
	n := len(ev)
	st := modelState{
		owner: make([]int64, n+1),
		step:  make([]int64, n+1),
		done:  make([]map[[2]int64]bool, n+1),
	}
	st.owner[0], st.step[0] = 1, 0 // InitialPC(0) with X=1
	st.done[0] = map[[2]int64]bool{}
	for t, e := range ev {
		st.owner[t+1], st.step[t+1] = st.owner[t], st.step[t]
		m := make(map[[2]int64]bool, len(st.done[t]))
		for k := range st.done[t] {
			m[k] = true
		}
		if e.isStore {
			if e.field == fieldOwner {
				st.owner[t+1] = e.val
			} else {
				st.step[t+1] = e.val
			}
		} else {
			m[[2]int64{e.p, e.s}] = true
		}
		st.done[t+1] = m
	}
	return st
}

// violations enumerates all torn reads and returns how many release a wait
// for (src, step) before truth holds. ownerFirstRead selects the waiter's
// load order (our implementation loads owner first).
func violations(ev []mEvent, k int64, ownerFirstRead bool) int {
	st := replay(ev)
	n := len(ev)
	count := 0
	for src := int64(1); src <= 2; src++ {
		for s := int64(1); s <= k; s++ {
			for t1 := 0; t1 <= n; t1++ {
				for t2 := t1; t2 <= n; t2++ {
					var o, stp int64
					if ownerFirstRead {
						o, stp = st.owner[t1], st.step[t2]
					} else {
						stp, o = st.step[t1], st.owner[t2]
					}
					released := o > src || (o == src && stp >= s)
					if released && !st.done[t2][[2]int64{src, s}] {
						count++
					}
				}
			}
		}
	}
	return count
}

func TestSplitProtocolSafeWithPaperStoreOrder(t *testing.T) {
	for k := int64(1); k <= 4; k++ {
		ev := writerTrace(k, true)
		if v := violations(ev, k, true); v != 0 {
			t.Errorf("k=%d owner-first read: %d premature releases with step-first transfer", k, v)
		}
	}
}

func TestSplitProtocolUnsoundWithStepFirstRead(t *testing.T) {
	// A refinement the model checker surfaces beyond the paper's text: the
	// waiter's *read* order matters too. Reading the step field before the
	// owner field can pair the previous owner's stale step with the new
	// owner and release prematurely, even with the correct store order.
	// wait_PC must read owner first, then step (as SplitPCSet.Wait does).
	ev := writerTrace(2, true)
	if v := violations(ev, 2, false); v == 0 {
		t.Error("model checker found no violation for step-first reads")
	}
}

func TestSplitProtocolUnsoundWithOwnerFirstTransfer(t *testing.T) {
	// Regression guard on the model checker itself: with the stores of
	// transfer_PC swapped (owner before step), a waiter can pair the new
	// owner with the previous owner's stale step and release prematurely.
	ev := writerTrace(3, false)
	if v := violations(ev, 3, true); v == 0 {
		t.Error("model checker found no violation for the unsound store order")
	}
}

func TestSplitProtocolLiveness(t *testing.T) {
	// Every wait target is eventually satisfied at the end of the trace.
	k := int64(3)
	ev := writerTrace(k, true)
	st := replay(ev)
	n := len(ev)
	for src := int64(1); src <= 2; src++ {
		for s := int64(1); s <= k; s++ {
			o, stp := st.owner[n], st.step[n]
			if !(o > src || (o == src && stp >= s)) {
				t.Errorf("wait for <%d,%d> never satisfied", src, s)
			}
		}
	}
}

// ---- Concurrent stress of the real SplitPCSet ----

// TestSplitPCSetChainStress runs a first-order recurrence through the
// split-field primitives on real goroutines and checks the dataflow: a
// premature wait release would read a stale array element.
func TestSplitPCSetChainStress(t *testing.T) {
	const n, x, workers = 400, 4, 4
	s := NewSplitPCSet(x)
	a := make([]int64, n+1)
	var next chan int64 = make(chan int64, n)
	for i := int64(1); i <= n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.Wait(i, 1, 1) // flow dependence distance 1 on source step 1
				if i == 1 {
					a[1] = 1
				} else {
					a[i] = a[i-1] + 1
				}
				s.Mark(i, 1)
				s.Transfer(i)
			}
		}()
	}
	wg.Wait()
	if a[n] != n {
		t.Errorf("a[%d] = %d, want %d (dependence violated)", n, a[n], n)
	}
}
