package core

import (
	"fmt"
	"strconv"

	"github.com/csrd-repro/datasync/internal/sim"
)

// itag renders "<prefix><iter>". Primitive tags are built once per op per
// iteration, which makes them a measurable slice of sweep time — hence
// strconv over fmt. Output strings are identical to the former fmt forms
// (tags feed sync traces and cache canon, so they must not drift).
func itag(prefix string, iter int64) string {
	b := make([]byte, 0, len(prefix)+20)
	b = append(b, prefix...)
	b = strconv.AppendInt(b, iter, 10)
	return string(b)
}

// SimPCs binds a folded set of X process counters to synchronization
// registers of a simulated machine and builds the paper's primitives as
// simulator ops.
type SimPCs struct {
	X    int
	vars []sim.VarID
}

// NewSimPCs declares X process counters on the machine, initialized to
// <slot+1, 0> per the paper.
func NewSimPCs(m *sim.Machine, x int) *SimPCs {
	if x < 1 {
		panic("core: need at least one PC")
	}
	s := &SimPCs{X: x, vars: make([]sim.VarID, x)}
	for k := 0; k < x; k++ {
		s.vars[k] = m.NewRegVar(fmt.Sprintf("PC[%d]", k), InitialPC(k).Pack())
	}
	return s
}

// Vars exposes the underlying register ids (for direct inspection in tests).
func (s *SimPCs) Vars() []sim.VarID { return s.vars }

func (s *SimPCs) slot(iter int64) sim.VarID { return s.vars[Fold(iter, s.X)] }

// GetPC is the basic get_PC(): busy-wait for ownership of the proper PC,
// i.e. wait_PC(0, 0).
func (s *SimPCs) GetPC(iter int64) sim.Op {
	return sim.WaitGE(s.slot(iter), PC{Owner: iter, Step: 0}.Pack(),
		itag("get_PC i=", iter))
}

// SetPC is the basic set_PC(step): update the owned PC's step after
// completing a source statement.
func (s *SimPCs) SetPC(iter, step int64) sim.Op {
	b := make([]byte, 0, 32)
	b = append(b, "set_PC("...)
	b = strconv.AppendInt(b, step, 10)
	b = append(b, ") i="...)
	b = strconv.AppendInt(b, iter, 10)
	return sim.WriteVar(s.slot(iter), PC{Owner: iter, Step: step}.Pack(), string(b))
}

// ReleasePC is the basic release_PC(): pass the PC to process iter+X.
func (s *SimPCs) ReleasePC(iter int64) sim.Op {
	return sim.WriteVar(s.slot(iter), PC{Owner: iter + int64(s.X), Step: 0}.Pack(),
		itag("release_PC i=", iter))
}

// WaitPC is wait_PC(dist, step): spin until the source process iter-dist
// has completed its step-th source statement. Ownership having moved past
// iter-dist also satisfies the wait (lexicographic order), which is sound
// because ownership transfers only after the owner's last source statement.
// A source before the first iteration does not exist; such waits are
// satisfied immediately (a zero-cycle no-op), mirroring PCSet.Wait.
func (s *SimPCs) WaitPC(iter, dist, step int64) sim.Op {
	src := iter - dist
	b := make([]byte, 0, 48)
	b = append(b, "wait_PC("...)
	b = strconv.AppendInt(b, dist, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, step, 10)
	b = append(b, ") i="...)
	b = strconv.AppendInt(b, iter, 10)
	if src < 1 {
		b = append(b, " noop"...)
		return sim.Compute(0, nil, string(b))
	}
	return sim.WaitGE(s.slot(src), PC{Owner: src, Step: step}.Pack(), string(b))
}

// MarkPC is the improved mark_PC(step) of Fig 4.3: update the step only if
// this process already owns the PC (ownership has been transferred to it);
// otherwise proceed without waiting — the final transfer_PC will publish
// completion of all source statements at once.
func (s *SimPCs) MarkPC(iter, step int64) sim.Op {
	want := PC{Owner: iter, Step: step}.Pack()
	owned := PC{Owner: iter, Step: 0}.Pack()
	b := make([]byte, 0, 32)
	b = append(b, "mark_PC("...)
	b = strconv.AppendInt(b, step, 10)
	b = append(b, ") i="...)
	b = strconv.AppendInt(b, iter, 10)
	return sim.WriteVarIfGE(s.slot(iter), want, owned, string(b))
}

// TransferPCOps is transfer_PC(): acquire ownership if not yet owned, then
// pass the PC to the next owner. Two ops: a wait and the release write.
func (s *SimPCs) TransferPCOps(iter int64) []sim.Op {
	return []sim.Op{
		sim.WaitGE(s.slot(iter), PC{Owner: iter, Step: 0}.Pack(),
			itag("transfer_PC:own i=", iter)),
		sim.WriteVar(s.slot(iter), PC{Owner: iter + int64(s.X), Step: 0}.Pack(),
			itag("transfer_PC:release i=", iter)),
	}
}
