package core

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/csrd-repro/datasync/internal/spin"
)

func TestPCSetInitialState(t *testing.T) {
	s := NewPCSet(4)
	for k := 0; k < 4; k++ {
		if got := s.Load(k); got != InitialPC(k) {
			t.Errorf("PC[%d] = %v, want %v", k, got, InitialPC(k))
		}
	}
}

func TestPCSetBasicPrimitivesSingleThread(t *testing.T) {
	s := NewPCSet(2)
	// Process 1 owns PC[0] from the start.
	s.Get(1)
	s.Set(1, 1)
	if got := s.Load(0); got != (PC{1, 1}) {
		t.Errorf("after Set: %v", got)
	}
	s.Release(1)
	if got := s.Load(0); got != (PC{3, 0}) {
		t.Errorf("after Release: %v, want <3,0>", got)
	}
	// Process 3 now owns PC[0]; its Get returns immediately.
	s.Get(3)
	// Waits on released process 1 are satisfied at any step.
	s.Wait(3, 2, 5)
}

func TestPCSetMarkSkippedWhenNotOwned(t *testing.T) {
	s := NewPCSet(1)
	// Process 2 does not own PC[0] (owner is 1): Mark must be a no-op.
	s.Mark(2, 1)
	if got := s.Load(0); got != (PC{1, 0}) {
		t.Errorf("Mark by non-owner changed PC: %v", got)
	}
	// Process 1 owns it: Mark applies.
	s.Mark(1, 2)
	if got := s.Load(0); got != (PC{1, 2}) {
		t.Errorf("Mark by owner did not apply: %v", got)
	}
	// After process 1 transfers, process 2's Mark applies.
	s.Transfer(1)
	s.Mark(2, 1)
	if got := s.Load(0); got != (PC{2, 1}) {
		t.Errorf("Mark by new owner did not apply: %v", got)
	}
}

func TestWaitBeforeLoopStartReturns(t *testing.T) {
	s := NewPCSet(2)
	done := make(chan struct{})
	go func() {
		s.Wait(1, 3, 7) // source iteration -2 does not exist
		s.Wait(2, 2, 1) // source iteration 0 does not exist
		close(done)
	}()
	<-done
}

// fig21Run executes the loop of Fig 2.1 with the improved primitives, as in
// Fig 4.2b (mark/transfer variant), and returns the resulting arrays.
func fig21Run(t *testing.T, n int64, x, procs, chunk int) ([]int64, []int64) {
	t.Helper()
	a := make([]int64, n+4+1) // A[1-1 .. N+3]
	out := make([]int64, n+1) // S5 results per iteration
	f := func(i int64) int64 { return 10*i + 3 }
	r := Runner{X: x, Procs: procs, Chunk: chunk}
	r.MustRun(n, func(i int64, p *Proc) {
		a[i+3] = f(i) // S1 (source step 1)
		p.Mark(1)
		p.Wait(2, 1) // S2 sink of S1, distance 2
		t2 := a[i+1]
		p.Mark(2) // S2 is a source (anti S2->S4), step 2
		p.Wait(1, 1)
		t3 := a[i+2] // S3
		p.Mark(3)
		p.Wait(1, 2) // S4 sink of S2 (distance 1, step 2)
		p.Wait(2, 3) // S4 sink of S3 (distance 2, step 3)
		a[i] = t2 + t3
		p.Transfer()    // S4 is the last source (step 4)
		p.Wait(1, 4)    // S5 sink of S4
		out[i] = a[i-1] // S5
	})
	return a, out
}

// fig21Serial is the oracle.
func fig21Serial(n int64) ([]int64, []int64) {
	a := make([]int64, n+4+1)
	out := make([]int64, n+1)
	f := func(i int64) int64 { return 10*i + 3 }
	for i := int64(1); i <= n; i++ {
		a[i+3] = f(i)
		t2 := a[i+1]
		t3 := a[i+2]
		a[i] = t2 + t3
		out[i] = a[i-1]
	}
	return a, out
}

func TestRunnerFig21MatchesSerial(t *testing.T) {
	const n = 300
	wantA, wantOut := fig21Serial(n)
	for _, cfg := range []struct{ x, procs, chunk int }{
		{1, 2, 1}, {2, 4, 1}, {4, 4, 1}, {8, 3, 1}, {16, 8, 1},
		// Chunked in-order self-scheduling, including chunks larger than X
		// and chunks that do not divide n.
		{4, 4, 2}, {8, 4, 7}, {2, 3, 16},
	} {
		gotA, gotOut := fig21Run(t, n, cfg.x, cfg.procs, cfg.chunk)
		for i := range wantA {
			if gotA[i] != wantA[i] {
				t.Fatalf("X=%d P=%d C=%d: A[%d] = %d, want %d", cfg.x, cfg.procs, cfg.chunk, i, gotA[i], wantA[i])
			}
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("X=%d P=%d C=%d: out[%d] = %d, want %d", cfg.x, cfg.procs, cfg.chunk, i, gotOut[i], wantOut[i])
			}
		}
	}
}

func TestRunnerFinalOwnership(t *testing.T) {
	const n, x = 20, 4
	set := Runner{X: x, Procs: 3}.MustRun(n, func(i int64, p *Proc) {
		p.Transfer()
	}).Set
	// Slot k must end owned by the smallest owner > n congruent to k+1.
	for k := 0; k < x; k++ {
		got := set.Load(k).Owner
		if got <= n || Fold(got, x) != k {
			t.Errorf("slot %d final owner %d", k, got)
		}
	}
}

func TestRunnerBasicPrimitivesChain(t *testing.T) {
	// The basic Get/Set/Release protocol on a recurrence with distance 3.
	const n, x = 200, 4
	a := make([]int64, n+1)
	s := NewPCSet(x)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > n {
					return
				}
				s.Get(i)
				s.Wait(i, 3, 1) // wait_PC(3, 1): process i-3 at step 1
				if i <= 3 {
					a[i] = i
				} else {
					a[i] = a[i-3] + 10
				}
				s.Set(i, 1)
				s.Release(i)
			}
		}()
	}
	wg.Wait()
	for i := int64(1); i <= n; i++ {
		want := (i-1)/3*10 + (i-1)%3 + 1
		if i <= 3 {
			want = i
		}
		if a[i] != want {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], want)
		}
	}
}

func TestRunnerStressRandomChains(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := int64(100 + rng.Intn(200))
		x := 1 + rng.Intn(8)
		procs := 1 + rng.Intn(6)
		d1 := int64(1 + rng.Intn(4))
		d2 := int64(1 + rng.Intn(6))
		a := make([]int64, n+1)
		b := make([]int64, n+1)
		Runner{X: x, Procs: procs, Chunk: 1 + rng.Intn(4)}.MustRun(n, func(i int64, p *Proc) {
			p.Wait(d1, 1)
			if i-d1 >= 1 {
				a[i] = a[i-d1] + 1 // source step 1
			} else {
				a[i] = 1
			}
			p.Mark(1)
			p.Wait(d2, 2)
			if i-d2 >= 1 {
				b[i] = b[i-d2] + a[i] // source step 2 (last)
			} else {
				b[i] = a[i]
			}
			p.Transfer()
		})
		// Serial oracle.
		wa := make([]int64, n+1)
		wb := make([]int64, n+1)
		for i := int64(1); i <= n; i++ {
			if i-d1 >= 1 {
				wa[i] = wa[i-d1] + 1
			} else {
				wa[i] = 1
			}
			if i-d2 >= 1 {
				wb[i] = wb[i-d2] + wa[i]
			} else {
				wb[i] = wa[i]
			}
		}
		for i := int64(1); i <= n; i++ {
			if a[i] != wa[i] || b[i] != wb[i] {
				t.Fatalf("trial %d (n=%d x=%d p=%d d1=%d d2=%d): mismatch at %d: a=%d/%d b=%d/%d",
					trial, n, x, procs, d1, d2, i, a[i], wa[i], b[i], wb[i])
			}
		}
	}
}

func TestRunnerDefaults(t *testing.T) {
	var ran atomic.Int64
	res := Runner{}.MustRun(10, func(i int64, p *Proc) {
		ran.Add(1)
		p.Transfer()
	})
	if ran.Load() != 10 {
		t.Errorf("ran %d iterations, want 10", ran.Load())
	}
	if res.Set.X() != 2*runtime.GOMAXPROCS(0) {
		t.Errorf("default X = %d, want %d", res.Set.X(), 2*runtime.GOMAXPROCS(0))
	}
	if res.Stats.Chunk != 1 || res.Stats.Iterations != 10 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.Metrics != nil {
		t.Error("metrics collected without opt-in")
	}
}

func TestProcBinding(t *testing.T) {
	s := NewPCSet(2)
	p := s.Bind(1)
	if p.Iter() != 1 {
		t.Errorf("Iter = %d", p.Iter())
	}
	p.Mark(1)
	if got := s.Load(0); got != (PC{1, 1}) {
		t.Errorf("bound Mark did not apply: %v", got)
	}
	p.Transfer()
	if got := s.Load(0); got != (PC{3, 0}) {
		t.Errorf("bound Transfer did not apply: %v", got)
	}
}

// TestPCSetReusedAcrossLoops: process counters need no reinitialization
// between consecutive loops — ownership just keeps advancing (the paper's
// point against data-oriented schemes' per-loop key initialization). Two
// back-to-back Doacross loops share one PCSet; the second numbers its
// iterations N+1..2N.
func TestPCSetReusedAcrossLoops(t *testing.T) {
	const n, x, workers = 100, 4, 3
	s := NewPCSet(x)
	a := make([]int64, 2*n+1)
	runLoop := func(start, end int64) {
		var next atomic.Int64
		next.Store(start - 1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1)
					if i > end {
						return
					}
					s.Wait(i, 1, 1)
					if i == 1 {
						a[1] = 1
					} else {
						a[i] = a[i-1] + 1
					}
					s.Mark(i, 1)
					s.Transfer(i)
				}
			}()
		}
		wg.Wait()
	}
	runLoop(1, n)     // first loop: iterations 1..N
	runLoop(n+1, 2*n) // second loop reuses the PCs with no reset
	for i := int64(1); i <= 2*n; i++ {
		if a[i] != i {
			t.Fatalf("a[%d] = %d", i, a[i])
		}
	}
	for k := 0; k < x; k++ {
		if owner := s.Load(k).Owner; owner <= 2*n {
			t.Errorf("slot %d final owner %d, want > %d", k, owner, 2*n)
		}
	}
}

func TestRunnerErrorOnMissingTransfer(t *testing.T) {
	// A body that never transfers is a protocol violation; Run must report
	// it as an error (with the partial result attached), not panic.
	res, err := Runner{X: 2, Procs: 2}.Run(6, func(i int64, p *Proc) {})
	if err == nil {
		t.Fatal("Run with missing transfers returned nil error")
	}
	if res == nil || res.Set == nil {
		t.Fatal("Run did not attach the partial result to the error")
	}
	if !strings.Contains(err.Error(), "never transferred") {
		t.Errorf("err = %v", err)
	}
}

func TestMustRunPanicsOnProtocolViolation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun did not panic on a protocol violation")
		}
	}()
	Runner{X: 2, Procs: 2}.MustRun(4, func(i int64, p *Proc) {})
}

func TestRunnerWatchdogTurnsLivelockIntoError(t *testing.T) {
	// Every iteration waits on its own step (dist 0), which nobody ever
	// marks: a guaranteed livelock. The watchdog must abort the run with a
	// *WaitError instead of hanging forever.
	fast := spin.Config{HotSpins: 1, YieldSpins: 1,
		SleepMin: 50 * time.Microsecond, SleepMax: 200 * time.Microsecond}
	_, err := Runner{X: 2, Procs: 2, Spin: fast, Watchdog: 20 * time.Millisecond}.
		Run(4, func(i int64, p *Proc) {
			p.Wait(0, 1)
			p.Transfer()
		})
	var we *WaitError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WaitError", err)
	}
	if we.Op != "wait_PC" {
		t.Errorf("stalled op = %q, want wait_PC", we.Op)
	}
	var de *spin.DeadlineError
	if !errors.As(err, &de) {
		t.Errorf("WaitError does not unwrap to *spin.DeadlineError: %v", err)
	}
}

func TestRunnerMetrics(t *testing.T) {
	const n, x = 120, 4
	res := Runner{X: x, Procs: 3, Metrics: true}.MustRun(n, func(i int64, p *Proc) {
		p.Wait(1, 1)
		p.Mark(1)
		p.Transfer()
	})
	m := res.Stats.Metrics
	if m == nil {
		t.Fatal("Metrics not collected despite opt-in")
	}
	if len(m.Slots) != x {
		t.Fatalf("%d slot stats, want %d", len(m.Slots), x)
	}
	tot := m.Totals()
	// One hand-off per iteration, exactly.
	if tot.Handoffs != n {
		t.Errorf("handoffs = %d, want %d", tot.Handoffs, n)
	}
	// Each iteration issues one contended-or-not Wait (only n-1 reach a
	// real source) plus one ownership acquisition inside Transfer.
	if tot.Waits < n {
		t.Errorf("waits = %d, want >= %d", tot.Waits, n)
	}
	var histTotal uint64
	for _, c := range m.WaitHist {
		histTotal += c
	}
	if histTotal != tot.Waits {
		t.Errorf("histogram mass %d != total waits %d", histTotal, tot.Waits)
	}
	if s := res.Stats.String(); !strings.Contains(s, "handoffs") {
		t.Errorf("RunStats.String() missing metrics: %q", s)
	}
}

// TestRunnerSplitCounters drives the §6 split-field implementation through
// Runner via the CounterSet interface and checks the dataflow result.
func TestRunnerSplitCounters(t *testing.T) {
	const n = 300
	wantA, wantOut := fig21Serial(n)
	a := make([]int64, n+4+1)
	out := make([]int64, n+1)
	res := Runner{X: 4, Procs: 4, Chunk: 2, Metrics: true, NewSet: SplitCounters}.
		MustRun(n, func(i int64, p *Proc) {
			a[i+3] = 10*i + 3
			p.Mark(1)
			p.Wait(2, 1)
			t2 := a[i+1]
			p.Mark(2)
			p.Wait(1, 1)
			t3 := a[i+2]
			p.Mark(3)
			p.Wait(1, 2)
			p.Wait(2, 3)
			a[i] = t2 + t3
			p.Transfer()
			p.Wait(1, 4)
			out[i] = a[i-1]
		})
	if _, ok := res.Set.(*SplitPCSet); !ok {
		t.Fatalf("Runner used %T, want *SplitPCSet", res.Set)
	}
	for i := range wantA {
		if a[i] != wantA[i] {
			t.Fatalf("A[%d] = %d, want %d", i, a[i], wantA[i])
		}
	}
	for i := range wantOut {
		if out[i] != wantOut[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], wantOut[i])
		}
	}
	if tot := res.Stats.Metrics.Totals(); tot.Handoffs != n {
		t.Errorf("split handoffs = %d, want %d", tot.Handoffs, n)
	}
}

func TestNewProcBindsAnyCounterSet(t *testing.T) {
	for name, s := range map[string]CounterSet{
		"packed": NewPCSet(2),
		"split":  NewSplitPCSet(2),
	} {
		p := NewProc(s, 1)
		if p.Iter() != 1 {
			t.Errorf("%s: Iter = %d", name, p.Iter())
		}
		p.Mark(1)
		if got := s.Load(0); got != (PC{1, 1}) {
			t.Errorf("%s: Mark through interface did not apply: %v", name, got)
		}
		p.Transfer()
		if got := s.Load(0).Owner; got != 3 {
			t.Errorf("%s: Transfer through interface: owner %d, want 3", name, got)
		}
	}
}
