package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/csrd-repro/datasync/internal/fault"
	"github.com/csrd-repro/datasync/internal/spin"
)

// PCSet is a real concurrent implementation of a folded set of process
// counters, each packed into one atomic word on its own cache line (waiters
// on adjacent slots share nothing, so a neighbor's mark never invalidates a
// spinning reader's line). It implements both the basic primitives of
// Fig 4.2a (Get/Set/Release) and the improved primitives of Fig 4.3
// (Mark/Transfer); Bind plays the role of load_index.
//
// All waits busy-wait through the tiered backoff of package spin, per the
// paper's section 6 observation that context switching is too expensive for
// medium-grain synchronization: short waits stay on the hot re-check path,
// long ones yield and eventually park briefly (so the scheme remains live on
// a single-core host). An optional watchdog turns a livelocked wait into a
// diagnosable *WaitError panic instead of a silent hang.
type PCSet struct {
	x   int64
	cfg spin.Config
	m   *Metrics
	pcs []spin.Padded
}

// NewPCSet builds X process counters initialized to <slot+1, 0> with the
// default waiting strategy and no metrics.
func NewPCSet(x int) *PCSet { return NewPCSetOpts(x, Options{}) }

// NewPCSetOpts builds X process counters with explicit spin tiers and
// optional metrics collection.
func NewPCSetOpts(x int, o Options) *PCSet {
	if x < 1 {
		panic("core: need at least one PC")
	}
	s := &PCSet{x: int64(x), cfg: o.Spin.Normalized(), m: o.Metrics, pcs: make([]spin.Padded, x)}
	for k := 0; k < x; k++ {
		s.pcs[k].Store(InitialPC(k).Pack())
	}
	return s
}

// X returns the number of physical PCs.
func (s *PCSet) X() int { return int(s.x) }

// Load returns the current value of PC[slot].
func (s *PCSet) Load(slot int) PC { return Unpack(s.pcs[slot].Load()) }

// WaitError is the panic value raised when a wait outlives the configured
// watchdog deadline (spin.Config.Watchdog): a livelock diagnosis instead of
// a silent hang. Runner.Run converts it into an ordinary error return.
type WaitError struct {
	Op   string // which primitive stalled: "wait_PC", "get_PC", "transfer_PC"
	Iter int64  // the iteration issuing the wait
	Slot int    // the PC slot spun on
	Last PC     // last observed value of the slot
	Want PC     // the value the wait needed to reach
	Err  *spin.DeadlineError
}

func (e *WaitError) Error() string {
	return fmt.Sprintf("core: %s i=%d livelocked on slot %d: have %v, want >= %v (%v)",
		e.Op, e.Iter, e.Slot, e.Last, e.Want, e.Err)
}

// Unwrap exposes the underlying deadline error to errors.As/Is.
func (e *WaitError) Unwrap() error { return e.Err }

// waitSlot spins PC[slot] up to the packed value min under the backoff
// tiers, recording the wait in the metrics and panicking with a *WaitError
// on watchdog expiry. The primitives check the satisfied-and-unmetered case
// themselves before calling (they are interface-call targets, so an extra
// frame here is pure overhead on the uncontended path).
func (s *PCSet) waitSlot(op string, iter int64, slot int, min int64) {
	v := &s.pcs[slot]
	if v.Load() >= min {
		s.m.noteWait(slot, 0)
		return
	}
	b := spin.New(s.cfg)
	for v.Load() < min {
		if err := b.Pause(); err != nil {
			panic(&WaitError{Op: op, Iter: iter, Slot: slot,
				Last: Unpack(v.Load()), Want: Unpack(min), Err: err.(*spin.DeadlineError)})
		}
	}
	s.m.noteWait(slot, b.Spins())
}

// Wait is wait_PC(dist, step) for process iter: spin until process
// iter-dist has completed its step-th source statement. A source before the
// first iteration does not exist; such waits return immediately.
func (s *PCSet) Wait(iter, dist, step int64) {
	src := iter - dist
	if src < 1 {
		return
	}
	slot := Fold(src, int(s.x))
	min := PC{Owner: src, Step: step}.Pack()
	if s.m == nil && s.pcs[slot].Load() >= min {
		return
	}
	s.waitSlot("wait_PC", iter, slot, min)
}

// Get is get_PC(): wait for ownership (wait_PC(0,0)).
func (s *PCSet) Get(iter int64) {
	slot := Fold(iter, int(s.x))
	min := PC{Owner: iter, Step: 0}.Pack()
	if s.m == nil && s.pcs[slot].Load() >= min {
		return
	}
	s.waitSlot("get_PC", iter, slot, min)
}

// Set is set_PC(step): requires ownership (call Get first).
func (s *PCSet) Set(iter, step int64) {
	s.pcs[Fold(iter, int(s.x))].Store(PC{Owner: iter, Step: step}.Pack())
}

// Release is release_PC(): pass ownership to process iter+X.
func (s *PCSet) Release(iter int64) {
	slot := Fold(iter, int(s.x))
	s.pcs[slot].Store(PC{Owner: iter + s.x, Step: 0}.Pack())
	s.m.noteHandoff(slot)
}

// Mark is the improved mark_PC(step): update only when ownership has
// already been transferred to this process; otherwise proceed without
// waiting. Safe without an owned flag: once the PC shows owner >= iter it
// can only be advanced further by this process (or its successors after
// this process transfers), so re-checking is equivalent to caching.
func (s *PCSet) Mark(iter, step int64) {
	v := &s.pcs[Fold(iter, int(s.x))]
	if v.Load() >= (PC{Owner: iter, Step: 0}).Pack() {
		v.Store(PC{Owner: iter, Step: step}.Pack())
	}
}

// Transfer is transfer_PC(): acquire ownership if necessary, then pass the
// PC to the next owner. Must be called exactly once per iteration, after
// its last source statement.
func (s *PCSet) Transfer(iter int64) {
	slot := Fold(iter, int(s.x))
	min := PC{Owner: iter, Step: 0}.Pack()
	if s.m != nil || s.pcs[slot].Load() < min {
		s.waitSlot("transfer_PC", iter, slot, min)
	}
	// release_PC inlined to reuse slot (Fold is a non-trivial call).
	s.pcs[slot].Store(PC{Owner: iter + s.x, Step: 0}.Pack())
	s.m.noteHandoff(slot)
}

// Proc is a counter set bound to one iteration (the result of load_index):
// the primitives without the iteration argument. It works over any
// CounterSet implementation.
type Proc struct {
	s    CounterSet
	iter int64
}

// Bind is load_index(lpid): it fixes the iteration the primitives act for.
func (s *PCSet) Bind(iter int64) *Proc { return &Proc{s: s, iter: iter} }

// Bind is load_index(lpid) over the split-field representation.
func (s *SplitPCSet) Bind(iter int64) *Proc { return &Proc{s: s, iter: iter} }

// NewProc binds any CounterSet to one iteration.
func NewProc(s CounterSet, iter int64) *Proc { return &Proc{s: s, iter: iter} }

// Iter returns the bound iteration (lpid).
func (p *Proc) Iter() int64 { return p.iter }

// Wait is wait_PC(dist, step).
func (p *Proc) Wait(dist, step int64) { p.s.Wait(p.iter, dist, step) }

// Mark is mark_PC(step).
func (p *Proc) Mark(step int64) { p.s.Mark(p.iter, step) }

// Transfer is transfer_PC().
func (p *Proc) Transfer() { p.s.Transfer(p.iter) }

// Runner executes a Doacross loop on real goroutines with chunked in-order
// self-scheduling, the dynamic scheduling regime the paper assumes
// (sim.DispatchChunked is the simulator-side counterpart). Body receives
// the 1-based iteration number and its bound process counter; it must call
// Transfer exactly once (directly or via a wrapper).
type Runner struct {
	// X is the number of physical process counters (defaults to 2*Procs,
	// the paper's "small multiple of the number of processors").
	X int
	// Procs is the number of worker goroutines (defaults to GOMAXPROCS).
	Procs int
	// Chunk is how many consecutive iterations a worker claims per
	// dispatch (defaults to 1). Chunks are handed out in order and
	// executed in order within a worker, so all backward dependences stay
	// deadlock-free while dispatch overhead is amortized.
	Chunk int
	// Spin tunes the backoff tiers of every wait (zero = spin.Defaults).
	Spin spin.Config
	// Watchdog, when positive, bounds any single wait; it overrides
	// Spin.Watchdog. A tripped watchdog aborts the run with a *WaitError.
	Watchdog time.Duration
	// Metrics enables the per-slot instrumentation, surfaced in
	// RunStats.Metrics.
	Metrics bool
	// NewSet overrides the counter-set implementation; the default builds
	// the packed PCSet. Use SplitCounters for the §6 split-field variant.
	NewSet func(x int, o Options) CounterSet
	// Fault, when non-nil, applies the plan's runtime faults: the stall
	// fault (StallIter/StallMillis) holds one iteration's body for the
	// configured duration — or until a watchdog trips — so watchdog and
	// StallReport paths can be driven deterministically. Simulator-only
	// faults in the plan are ignored here.
	Fault *fault.Plan
	// Recover arms the ownership-reclamation supervisor: instead of
	// aborting the run, a tripped watchdog reclaims the stalled worker's PC
	// ownership (the transfer_PC handoff — a PC names an iteration, not the
	// worker running it), revokes the worker's lease, re-executes the
	// orphan iteration and its unstarted chunk residue on the reporting
	// worker, then retries the tripped wait. Requires a watchdog; when none
	// is set, DefaultRecoverWatchdog applies. Body may be re-executed for a
	// reclaimed iteration: its writes must be idempotent per iteration, or
	// guarded with Proc.Revoked.
	Recover bool
	// RecoverAttempts bounds reclamations per run (defaults to
	// DefaultRecoverAttempts). When spent, Run returns a
	// *RecoveryExhaustedError naming the unreclaimable slot.
	RecoverAttempts int
}

// SplitCounters is a Runner.NewSet factory selecting the split-field
// SplitPCSet representation.
func SplitCounters(x int, o Options) CounterSet { return NewSplitPCSetOpts(x, o) }

// RunStats describes one Run: its configuration, wall-clock time and, when
// Runner.Metrics is set, the waiter instrumentation.
type RunStats struct {
	Iterations int64
	Procs      int
	X          int
	Chunk      int
	Elapsed    time.Duration
	Metrics    *MetricsSnapshot // nil unless Runner.Metrics
	Recovery   *RecoveryReport  // nil unless Runner.Recover reclaimed ownership
}

// String renders a one-line summary plus the metrics tables when collected.
func (s RunStats) String() string {
	out := fmt.Sprintf("n=%d procs=%d X=%d chunk=%d elapsed=%v",
		s.Iterations, s.Procs, s.X, s.Chunk, s.Elapsed)
	if s.Metrics != nil {
		out += "\n" + s.Metrics.String()
	}
	return out
}

// RunResult is what a completed (or aborted) Run hands back: the counter
// set for final-state inspection and the run statistics.
type RunResult struct {
	Set   CounterSet
	Stats RunStats
}

// Run executes iterations 1..n of body and returns the counter set used
// plus run statistics. It returns an error — with the partial result for
// inspection — when a watchdog-equipped wait livelocks or when some
// iteration never transferred its PC (a protocol violation in body).
func (r Runner) Run(n int64, body func(it int64, p *Proc)) (*RunResult, error) {
	procs := r.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	x := r.X
	if x <= 0 {
		x = 2 * procs
	}
	chunk := int64(r.Chunk)
	if chunk < 1 {
		chunk = 1
	}
	cfg := r.Spin
	if r.Watchdog > 0 {
		cfg.Watchdog = r.Watchdog
	}
	var m *Metrics
	if r.Metrics {
		m = NewMetrics(x)
	}
	mk := r.NewSet
	if mk == nil {
		mk = func(x int, o Options) CounterSet { return NewPCSetOpts(x, o) }
	}
	if r.Recover {
		return r.runRecover(n, body, procs, x, chunk, cfg, m, mk)
	}
	set := mk(x, Options{Spin: cfg, Metrics: m})

	start := time.Now()
	var next atomic.Int64
	var mu sync.Mutex
	var trips []*WaitError
	var tripped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				// A watchdog trip abandons this worker's remaining
				// iterations; every other watchdog-equipped waiter then
				// trips in turn, so Run terminates with every trip
				// collected for the aggregate stall report.
				if e := recover(); e != nil {
					if we, ok := e.(*WaitError); ok {
						mu.Lock()
						trips = append(trips, we)
						mu.Unlock()
						tripped.Store(true)
						return
					}
					panic(e)
				}
			}()
			for {
				hi := next.Add(chunk)
				lo := hi - chunk + 1
				if lo > n {
					return
				}
				if hi > n {
					hi = n
				}
				for it := lo; it <= hi; it++ {
					if r.Fault != nil && r.Fault.StallsRuntime() && it == r.Fault.StallIter {
						// Hold this iteration's PC hostage: sleep in short
						// slices so a tripped watchdog elsewhere releases
						// the stall early and the run still terminates.
						deadline := time.Now().Add(r.Fault.StallDuration())
						for time.Now().Before(deadline) && !tripped.Load() {
							time.Sleep(time.Millisecond)
						}
					}
					body(it, &Proc{s: set, iter: it})
				}
			}
		}()
	}
	wg.Wait()
	res := &RunResult{Set: set, Stats: RunStats{
		Iterations: n, Procs: procs, X: x, Chunk: int(chunk),
		Elapsed: time.Since(start), Metrics: m.Snapshot(),
	}}
	if len(trips) > 0 {
		return res, buildStallError(trips, x, r.Fault)
	}
	// Every iteration must have transferred its PC exactly once; the final
	// owners are n+1 .. n+x in some slot order.
	if err := checkTransfers(set, n, x); err != nil {
		return res, err
	}
	return res, nil
}

// ProtocolViolationError reports a run that terminated with some iteration
// still owning its PC: body broke the transfer_PC contract (never called
// Transfer, or not exactly once). Distinct from a stall — the run finished,
// but its final counter state is wrong — so services and CLIs can classify
// it as a caller bug rather than a fault-induced livelock.
type ProtocolViolationError struct {
	// Iter is the iteration that still owns the slot.
	Iter int64 `json:"iter"`
	// Slot is the physical PC slot left behind.
	Slot int `json:"slot"`
	// Final is the slot's final <owner,step>.
	Final PC `json:"final"`
}

func (e *ProtocolViolationError) Error() string {
	return fmt.Sprintf("core: iteration %d never transferred its PC (slot %d ended at %v)",
		e.Iter, e.Slot, e.Final)
}

// checkTransfers verifies the post-run invariant that every slot's final
// owner is past n (each of the n iterations transferred exactly once).
func checkTransfers(set CounterSet, n int64, x int) error {
	for k := 0; k < x; k++ {
		if pc := set.Load(k); pc.Owner <= n {
			return &ProtocolViolationError{Iter: pc.Owner, Slot: k, Final: pc}
		}
	}
	return nil
}

// MustRun is Run for callers that treat a protocol violation as fatal: it
// panics on error instead of returning it.
func (r Runner) MustRun(n int64, body func(it int64, p *Proc)) *RunResult {
	res, err := r.Run(n, body)
	if err != nil {
		panic(err)
	}
	return res
}
