package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PCSet is a real concurrent implementation of a folded set of process
// counters, each packed into one atomic word. It implements both the basic
// primitives of Fig 4.2a (Get/Set/Release) and the improved primitives of
// Fig 4.3 (Mark/Transfer); Bind plays the role of load_index.
//
// All waits busy-wait with runtime.Gosched, per the paper's section 6
// observation that context switching is too expensive for medium-grain
// synchronization (and so the scheme remains live on a single-core host).
type PCSet struct {
	x   int64
	pcs []atomic.Int64
}

// NewPCSet builds X process counters initialized to <slot+1, 0>.
func NewPCSet(x int) *PCSet {
	if x < 1 {
		panic("core: need at least one PC")
	}
	s := &PCSet{x: int64(x), pcs: make([]atomic.Int64, x)}
	for k := 0; k < x; k++ {
		s.pcs[k].Store(InitialPC(k).Pack())
	}
	return s
}

// X returns the number of physical PCs.
func (s *PCSet) X() int { return int(s.x) }

// Load returns the current value of PC[slot].
func (s *PCSet) Load(slot int) PC { return Unpack(s.pcs[slot].Load()) }

func (s *PCSet) slot(iter int64) *atomic.Int64 { return &s.pcs[Fold(iter, int(s.x))] }

func spinUntil(v *atomic.Int64, min int64) {
	for v.Load() < min {
		runtime.Gosched()
	}
}

// Wait is wait_PC(dist, step) for process iter: spin until process
// iter-dist has completed its step-th source statement. A source before the
// first iteration does not exist; such waits return immediately.
func (s *PCSet) Wait(iter, dist, step int64) {
	src := iter - dist
	if src < 1 {
		return
	}
	spinUntil(s.slot(src), PC{Owner: src, Step: step}.Pack())
}

// Get is get_PC(): wait for ownership (wait_PC(0,0)).
func (s *PCSet) Get(iter int64) {
	spinUntil(s.slot(iter), PC{Owner: iter, Step: 0}.Pack())
}

// Set is set_PC(step): requires ownership (call Get first).
func (s *PCSet) Set(iter, step int64) {
	s.slot(iter).Store(PC{Owner: iter, Step: step}.Pack())
}

// Release is release_PC(): pass ownership to process iter+X.
func (s *PCSet) Release(iter int64) {
	s.slot(iter).Store(PC{Owner: iter + s.x, Step: 0}.Pack())
}

// Mark is the improved mark_PC(step): update only when ownership has
// already been transferred to this process; otherwise proceed without
// waiting. Safe without an owned flag: once the PC shows owner >= iter it
// can only be advanced further by this process (or its successors after
// this process transfers), so re-checking is equivalent to caching.
func (s *PCSet) Mark(iter, step int64) {
	v := s.slot(iter)
	if v.Load() >= (PC{Owner: iter, Step: 0}).Pack() {
		v.Store(PC{Owner: iter, Step: step}.Pack())
	}
}

// Transfer is transfer_PC(): acquire ownership if necessary, then pass the
// PC to the next owner. Must be called exactly once per iteration, after
// its last source statement.
func (s *PCSet) Transfer(iter int64) {
	s.Get(iter)
	s.Release(iter)
}

// Proc is a process counter set bound to one iteration (the result of
// load_index): the primitives without the iteration argument.
type Proc struct {
	s    *PCSet
	iter int64
}

// Bind is load_index(lpid): it fixes the iteration the primitives act for.
func (s *PCSet) Bind(iter int64) *Proc { return &Proc{s: s, iter: iter} }

// Iter returns the bound iteration (lpid).
func (p *Proc) Iter() int64 { return p.iter }

// Wait is wait_PC(dist, step).
func (p *Proc) Wait(dist, step int64) { p.s.Wait(p.iter, dist, step) }

// Mark is mark_PC(step).
func (p *Proc) Mark(step int64) { p.s.Mark(p.iter, step) }

// Transfer is transfer_PC().
func (p *Proc) Transfer() { p.s.Transfer(p.iter) }

// Runner executes a Doacross loop on real goroutines with in-order
// self-scheduling, the dynamic scheduling regime the paper assumes. Body
// receives the 1-based iteration number and its bound process counter; it
// must call Transfer exactly once (directly or via RunOrdered's wrapper).
type Runner struct {
	// X is the number of physical process counters (defaults to 2*Procs,
	// the paper's "small multiple of the number of processors").
	X int
	// Procs is the number of worker goroutines (defaults to GOMAXPROCS).
	Procs int
}

// Run executes iterations 1..n of body. It returns the PCSet used, whose
// final state tests may inspect.
func (r Runner) Run(n int64, body func(it int64, p *Proc)) *PCSet {
	procs := r.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	x := r.X
	if x <= 0 {
		x = 2 * procs
	}
	set := NewPCSet(x)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				it := next.Add(1)
				if it > n {
					return
				}
				body(it, set.Bind(it))
			}
		}()
	}
	wg.Wait()
	// Every iteration must have transferred its PC exactly once; the
	// final owners are n+1 .. n+x in some slot order.
	for k := 0; k < x; k++ {
		owner := Unpack(set.pcs[k].Load()).Owner
		if owner <= n {
			panic(fmt.Sprintf("core: iteration %d never transferred its PC", owner))
		}
	}
	return set
}
