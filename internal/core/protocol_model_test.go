package core

import (
	"fmt"
	"testing"
)

// ---- Exhaustive interleaving model of the folded improved protocol ----
//
// Four processes share X=2 process counters (folded) and execute
// the improved-primitive protocol for a distance-1, two-source loop:
//
//	wait(1, 1); work1; mark(1); work2; transfer
//
// The model explores EVERY interleaving of the processes' atomic steps
// (waits block; only enabled processes may step) and asserts:
//
//	(a) safety: a wait releases only after the awaited source statement's
//	    work has truly executed (or the source process does not exist);
//	(b) liveness: every interleaving reaches the final state — the folded
//	    protocol cannot deadlock under in-order process creation.

type mprocState struct {
	pc   int  // program counter within the protocol steps
	w1   bool // work1 done (truth for step 1)
	w2   bool // work2 done
	done bool
}

const (
	modelX     = 2 // folded counters
	modelProcs = 4 // processes sharing them
)

type mstate struct {
	pcVals [modelX]PC
	procs  [modelProcs]mprocState
}

func (s mstate) key() string { return fmt.Sprintf("%v", s) }

// protocol steps per process (iter = pid+1):
//
//	0: wait_PC(1,1)  — blocks until PC >= <iter-1, 1> (skip if iter == 1)
//	1: work1         — sets w1 (the source-step-1 truth)
//	2: mark_PC(1)    — writes <iter,1> iff owner >= iter
//	3: work2         — sets w2 (the last-source truth)
//	4: transfer_PC   — blocks until owner >= iter, then writes <iter+1, 0>
const protoSteps = 5

// enabled reports whether process pid can take its next step, and whether
// taking it would violate safety.
func stepProcess(s mstate, pid int) (next mstate, canStep bool, violation string) {
	p := s.procs[pid]
	iter := int64(pid) + 1
	own := Fold(iter, modelX)
	switch p.pc {
	case 0: // wait_PC(1,1)
		if iter == 1 {
			break // no source process: free
		}
		src := iter - 1
		slot := Fold(src, modelX)
		released := s.pcVals[slot].GE(PC{Owner: src, Step: 1})
		if !released {
			return s, false, ""
		}
		// Safety: the source's step-1 work must have happened, or the
		// source must have fully transferred (which implies it).
		if !s.procs[src-1].w1 {
			return s, false, fmt.Sprintf("P%d released by %v before P%d did work1", pid+1, s.pcVals[slot], src)
		}
	case 1:
		p.w1 = true
	case 2: // mark_PC(1): conditional on ownership
		if s.pcVals[own].Owner >= iter {
			s.pcVals[own] = PC{Owner: iter, Step: 1}
		}
	case 3:
		p.w2 = true
	case 4: // transfer_PC
		if s.pcVals[own].Owner < iter {
			return s, false, ""
		}
		s.pcVals[own] = PC{Owner: iter + int64(modelX), Step: 0}
		p.done = true
	}
	p.pc++
	s.procs[pid] = p
	return s, true, ""
}

func TestFoldedProtocolExhaustive(t *testing.T) {
	var start mstate
	for k := 0; k < modelX; k++ {
		start.pcVals[k] = InitialPC(k)
	}
	seen := map[string]bool{}
	var explore func(s mstate)
	deadlocks := 0
	finals := 0
	explore = func(s mstate) {
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		progressed := false
		allDone := true
		for pid := 0; pid < modelProcs; pid++ {
			if s.procs[pid].pc >= protoSteps {
				continue
			}
			allDone = false
			next, ok, violation := stepProcess(s, pid)
			if violation != "" {
				t.Fatalf("safety violation: %s (state %s)", violation, k)
			}
			if ok {
				progressed = true
				explore(next)
			}
		}
		if allDone {
			finals++
			for k := 0; k < modelX; k++ {
				wantOwner := int64(k) + 1
				for wantOwner <= modelProcs {
					wantOwner += modelX
				}
				if s.pcVals[k] != (PC{Owner: wantOwner, Step: 0}) {
					t.Fatalf("final PC[%d] = %v, want <%d,0>", k, s.pcVals[k], wantOwner)
				}
			}
			return
		}
		if !progressed {
			deadlocks++
			t.Fatalf("deadlock state: %s", k)
		}
	}
	explore(start)
	if finals == 0 {
		t.Fatal("no final state reached")
	}
	t.Logf("explored %d states, %d final, %d deadlocks", len(seen), finals, deadlocks)
}

// TestFoldedProtocolBrokenVariantCaught gives the model checker teeth: a
// compiler bug that publishes the step BEFORE executing the source
// statement (mark_PC placed ahead of work1) must be caught as a premature
// wait release.
func TestFoldedProtocolBrokenVariantCaught(t *testing.T) {
	var start mstate
	for k := 0; k < modelX; k++ {
		start.pcVals[k] = InitialPC(k)
	}
	seen := map[string]bool{}
	violated := false
	var explore func(s mstate)
	explore = func(s mstate) {
		if violated {
			return
		}
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		for pid := 0; pid < modelProcs; pid++ {
			p := s.procs[pid]
			if p.pc >= protoSteps {
				continue
			}
			iter := int64(pid) + 1
			own := Fold(iter, modelX)
			switch p.pc {
			case 1: // BUG: mark before the work it is supposed to signal
				ns := s
				if ns.pcVals[own].Owner >= iter {
					ns.pcVals[own] = PC{Owner: iter, Step: 1}
				}
				ns.procs[pid].pc++
				explore(ns)
			case 2: // the work happens after the publication
				ns := s
				ns.procs[pid].w1 = true
				ns.procs[pid].pc++
				explore(ns)
			default:
				ns, ok, violation := stepProcess(s, pid)
				if violation != "" {
					violated = true
					return
				}
				if ok {
					explore(ns)
				}
			}
		}
	}
	explore(start)
	if !violated {
		t.Fatal("publish-before-work bug escaped the model checker")
	}
}
