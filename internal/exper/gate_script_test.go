package exper

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestBenchGateScript exercises scripts/bench_gate.sh end to end against the
// committed BENCH_*.json baseline: an identical "fresh" snapshot must pass,
// and a doctored snapshot with every wall time inflated past the threshold
// must make the script exit non-zero. BENCH_GATE_FRESH substitutes the
// doctored file for the measurement step, so the test never re-runs the grid.
func TestBenchGateScript(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go run in -short mode")
	}
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(root, "scripts", "bench_gate.sh")
	if _, err := os.Stat(script); err != nil {
		t.Fatalf("gate script missing: %v", err)
	}
	baselines, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil || len(baselines) == 0 {
		t.Fatalf("no committed BENCH_*.json baseline (err=%v)", err)
	}
	data, err := os.ReadFile(baselines[len(baselines)-1])
	if err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	run := func(freshPath string) error {
		cmd := exec.Command("bash", script)
		cmd.Dir = root
		cmd.Env = append(os.Environ(),
			"BENCH_GATE_FRESH="+freshPath,
			"BENCH_GATE_OUT="+filepath.Join(dir, "delta.txt"),
			"GATE_PCT=10")
		out, err := cmd.CombinedOutput()
		t.Logf("bench_gate.sh output:\n%s", out)
		return err
	}

	// Identical snapshot: gate must pass.
	same := filepath.Join(dir, "same.json")
	if err := os.WriteFile(same, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(same); err != nil {
		t.Fatalf("gate failed on an identical snapshot: %v", err)
	}

	// Doctored snapshot: every point 25% slower (>10% threshold) — the
	// script must exit non-zero.
	for i := range snap.Records {
		snap.Records[i].WallNanos = snap.Records[i].WallNanos * 5 / 4
	}
	doctored, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "doctored.json")
	if err := os.WriteFile(bad, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(bad)
	if err == nil {
		t.Fatal("bench_gate.sh exited zero on a >10% doctored regression")
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("script did not run to a non-zero exit: %v", err)
	}
}
