package exper

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment end to end; each run
// internally checks serial equivalence, so a pass here means every claim
// measurement is backed by a correct execution.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.ID, tb.ID)
				}
				if out := tb.Render(); !strings.Contains(out, tb.ID) {
					t.Errorf("%s render missing header", tb.ID)
				}
			}
		})
	}
}

// TestE1CoversExpectedArcs pins the regenerated Fig 2.1 content.
func TestE1CoversExpectedArcs(t *testing.T) {
	tables, err := E1DependenceGraph()
	if err != nil {
		t.Fatal(err)
	}
	out := strings.Join(strings.Fields(tables[0].Render()), " ")
	for _, want := range []string{
		"S1 S2 flow 2",
		"S1 S4 output 3 A[I+3] A[I] covered (eliminated)",
		"S4 S5 flow 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
	out2 := strings.Join(strings.Fields(tables[1].Render()), " ")
	if !strings.Contains(out2, "wait_PC(2,1)") || !strings.Contains(out2, "wait_PC(1,4)") {
		t.Errorf("E1.2 missing wait parameters:\n%s", out2)
	}
}

// TestE2TicketsMatchFig31a pins the regenerated ticket column 0,1,1,3,4.
func TestE2TicketsMatchFig31a(t *testing.T) {
	tables, err := E2DataOriented()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, 5)
	for _, row := range tables[0].Rows {
		got = append(got, row[3])
	}
	want := []string{"0", "1", "1", "3", "4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("tickets = %v, want %v", got, want)
	}
}

// TestE3ShapeHolds: the statement-oriented penalty must exceed the
// process-oriented one (the central serialization claim).
func TestE3ShapeHolds(t *testing.T) {
	tables, err := E3StatementSerialization()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tables[0].Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("E3 claim violated: %s", n)
		}
	}
}

// TestTableRenderAlignment smoke-tests the renderer.
func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{ID: "T", Title: "x", Columns: []string{"a", "long-header"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("wide-cell-content", "y")
	tb.Note("footnote %d", 7)
	out := tb.Render()
	if !strings.Contains(out, "2.50") || !strings.Contains(out, "note: footnote 7") {
		t.Errorf("render wrong:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{ID: "T", Title: "x|y", Columns: []string{"a", "b"}}
	tb.AddRow("v|w", 3)
	tb.Note("n1")
	out := tb.Markdown()
	for _, want := range []string{"**[T] x|y**", "| a | b |", "|---|---|", "| v\\|w | 3 |", "*n1*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// parseCell finds the numeric cell for a row matched by substring.
func cellValue(t *testing.T, tb *Table, rowMatch string, col int) float64 {
	t.Helper()
	for _, row := range tb.Rows {
		joined := strings.Join(row, " ")
		if strings.Contains(joined, rowMatch) {
			var v float64
			if _, err := fmt.Sscanf(row[col], "%f", &v); err != nil {
				t.Fatalf("cell %q not numeric: %v", row[col], err)
			}
			return v
		}
	}
	t.Fatalf("no row matching %q in %s", rowMatch, tb.ID)
	return 0
}

// TestE6ShapeHolds guards Example 1's headline: the PC pipeline beats the
// counter-barrier wavefront, and SC starvation collapses the pipeline.
func TestE6ShapeHolds(t *testing.T) {
	tables, err := E6Relaxation()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	wave := cellValue(t, tb, "wavefront + counter", 1)
	pipe := cellValue(t, tb, "async pipeline, PCs", 1)
	starved := cellValue(t, tb, "K=2 of", 1)
	if pipe >= wave {
		t.Errorf("pipeline (%v) not faster than counter-barrier wavefront (%v)", pipe, wave)
	}
	if starved <= 2*pipe {
		t.Errorf("SC starvation not visible: %v vs %v", starved, pipe)
	}
}

// TestE9ShapeHolds guards Example 4: the counter barrier's hot spot grows
// with P while the PC butterfly generates no module traffic.
func TestE9ShapeHolds(t *testing.T) {
	tables, err := E9Barriers()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var counterQ []float64
	for _, row := range tb.Rows {
		if strings.Contains(row[1], "counter") {
			var v float64
			fmt.Sscanf(row[5], "%f", &v)
			counterQ = append(counterQ, v)
		}
		if strings.Contains(row[1], "PC butterfly") && row[4] != "0" {
			t.Errorf("PC butterfly row has module accesses: %v", row)
		}
	}
	for i := 1; i < len(counterQ); i++ {
		if counterQ[i] <= counterQ[i-1] {
			t.Errorf("counter max queue not growing with P: %v", counterQ)
		}
	}
}

// TestE10ShapeHolds guards Example 5: pairwise/neighbor sync beats the
// global barrier at every P, for both FFT and Jacobi.
func TestE10ShapeHolds(t *testing.T) {
	tables, err := E10FFT()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		for i := 0; i+1 < len(tb.Rows); i += 2 {
			var local, bar float64
			fmt.Sscanf(tb.Rows[i][2], "%f", &local)
			fmt.Sscanf(tb.Rows[i+1][2], "%f", &bar)
			if local >= bar {
				t.Errorf("%s P=%s: local sync (%v) not faster than barrier (%v)",
					tb.ID, tb.Rows[i][0], local, bar)
			}
		}
	}
}

// TestE12CrossoverShape guards the many-sources crossover: with k=16
// sources, the 4-counter statement scheme is at least 2x slower than the
// process scheme with 8 PCs.
func TestE12CrossoverShape(t *testing.T) {
	tables, err := E12Ablation()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[3]
	var proc16, folded16 float64
	for _, row := range tb.Rows {
		if row[0] != "16" {
			continue
		}
		var v float64
		fmt.Sscanf(row[3], "%f", &v)
		if strings.HasPrefix(row[1], "process") {
			proc16 = v
		}
		if row[1] == "statement(K=4)" {
			folded16 = v
		}
	}
	if proc16 == 0 || folded16 < 2*proc16 {
		t.Errorf("crossover not visible: process %v vs statement(K=4) %v", proc16, folded16)
	}
}

// TestE13ShapeHolds guards the dispatch-policy claims: reversed dispatch is
// reported as a detected deadlock, in-order completes.
func TestE13ShapeHolds(t *testing.T) {
	tables, err := E13Scheduling()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	sawDeadlock, sawCompleted := false, false
	for _, row := range tb.Rows {
		if row[0] == "reversed" && strings.Contains(row[5], "DEADLOCK") {
			sawDeadlock = true
		}
		if row[0] == "in-order" && strings.Contains(row[5], "completed") {
			sawCompleted = true
		}
	}
	if !sawDeadlock || !sawCompleted {
		t.Errorf("dispatch outcomes wrong:\n%s", tb.Render())
	}
}

// TestE14ShapeHolds: growing write-visibility latency must grow cycles
// monotonically for every scheme in the sweep.
func TestE14ShapeHolds(t *testing.T) {
	tables, err := E14DataLatency()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	prev := map[string]float64{}
	for _, row := range tb.Rows {
		var v float64
		fmt.Sscanf(row[2], "%f", &v)
		if p, ok := prev[row[1]]; ok && v <= p {
			t.Errorf("%s: cycles %v not above previous latency tier %v", row[1], v, p)
		}
		prev[row[1]] = v
	}
}
