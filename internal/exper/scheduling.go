package exper

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// E13Scheduling measures the interaction between self-scheduling order and
// the folded process-counter protocol, the concern of the paper's
// references [23,24]: in-order and chunked dispatch are deadlock-free for
// any X (ownership chains always reach a dispatched iteration); reversed
// dispatch deadlocks as soon as the processors fill up with iterations
// whose sources were never handed out — and the simulator detects it.
func E13Scheduling() ([]*Table, error) {
	const n, cost = 200, 6
	t := &Table{
		ID:      "E13.1",
		Title:   fmt.Sprintf("Self-scheduling policies (Fig 2.1 loop, N=%d, P=4, X=8)", n),
		Columns: []string{"dispatch", "chunk", "cycles", "speedup", "dispatch overhead paid", "outcome"},
	}
	type variant struct {
		name  string
		d     sim.Dispatch
		chunk int64
	}
	variants := []variant{
		{"in-order", sim.DispatchInOrder, 0},
		{"chunked", sim.DispatchChunked, 4},
		{"chunked", sim.DispatchChunked, 16},
		{"reversed", sim.DispatchReversed, 0},
	}
	for _, v := range variants {
		cfg := baseCfg(4)
		cfg.Dispatch = v.d
		cfg.ChunkSize = v.chunk
		res, err := codegen.Run(workloads.Fig21(n, cost),
			codegen.ProcessOriented{X: 8, Improved: true}, cfg)
		chunk := "-"
		if v.chunk > 0 {
			chunk = fmt.Sprintf("%d", v.chunk)
		}
		switch {
		case err == nil:
			dispatches := int64(n)
			if v.chunk > 0 {
				dispatches = (n + v.chunk - 1) / v.chunk
			}
			t.AddRow(v.name, chunk, res.Stats.Cycles, res.Speedup(),
				dispatches*cfg.SchedOverhead, "completed, serial-equivalent")
		case strings.Contains(err.Error(), "deadlock"):
			t.AddRow(v.name, chunk, "-", "-", "-", "DEADLOCK (detected)")
		default:
			return nil, err
		}
	}
	t.Note("the folded protocol needs iterations dispatched in non-decreasing order;")
	t.Note("chunking preserves that order and amortizes the dispatch overhead, but for")
	t.Note("this loop's distance-1/2 dependences it also serializes each chain inside one")
	t.Note("processor, destroying the pipeline — scheduling order matters, the point of [23].")
	return []*Table{t}, nil
}
