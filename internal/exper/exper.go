// Package exper implements the reproduction experiments E1..E12 indexed in
// DESIGN.md: each regenerates the content of one of the paper's figures or
// turns one of its comparative claims into a measurement on the simulated
// machine, and returns typed tables that cmd/dsbench renders (and
// EXPERIMENTS.md records).
package exper

import (
	"fmt"
	"strings"

	"github.com/csrd-repro/datasync/internal/sim"
)

// Table is one result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**[%s] %s**\n\n", t.ID, t.Title)
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + esc(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, cell := range row {
			b.WriteString(" " + esc(cell) + " |")
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Experiment is one runnable reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() ([]*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig 2.1: dependence graph and covering elimination", E1DependenceGraph},
		{"E2", "Fig 3.1: data-oriented schemes — tickets, copies, storage", E2DataOriented},
		{"E3", "Fig 3.2: statement-oriented serialization under a delayed iteration", E3StatementSerialization},
		{"E4", "Fig 4.1/4.2: process-oriented scheme and cross-scheme comparison", E4SchemeComparison},
		{"E5", "Fig 4.3/section 6: improved primitives and write coverage", E5ImprovedPrimitives},
		{"E6", "Fig 5.1 (Example 1): wavefront vs asynchronous pipelining; grouping G", E6Relaxation},
		{"E7", "Fig 5.2 (Example 2): coalesced nested loops and boundary handling", E7NestedLoop},
		{"E8", "Fig 5.3 (Example 3): dependence sources in branches", E8Branches},
		{"E9", "Fig 5.4 (Example 4): butterfly vs counter barrier (hot spot)", E9Barriers},
		{"E10", "Example 5: FFT phases with pairwise sync vs global barriers", E10FFT},
		{"E11", "Section 6: bus traffic, write coverage, non-atomic PC updates", E11Hardware},
		{"E12", "Ablations: X, P and the statement/process crossover", E12Ablation},
		{"E13", "Self-scheduling order: in-order, chunked, reversed (refs [23,24])", E13Scheduling},
		{"E14", "Requirement (1): signaling only after write visibility (section 2.2)", E14DataLatency},
	}
}

// baseCfg is the default simulated machine for the experiments: a small
// bus-based multiprocessor in the Alliant FX/8 class.
func baseCfg(p int) sim.Config {
	return sim.Config{
		Processors:    p,
		BusLatency:    1,
		BusCoverage:   false,
		MemLatency:    2,
		Modules:       p,
		SyncOpCost:    1,
		SchedOverhead: 1,
	}
}
