package exper

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/barrier"
	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/dataorient"
	"github.com/csrd-repro/datasync/internal/sim"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// relaxRun executes one relaxation variant and checks the result.
func relaxRun(r workloads.Relax, p int, build func(m *sim.Machine) (sim.Program, int64), procsMode func(m *sim.Machine) [][]sim.Op) (sim.Stats, error) {
	m := sim.New(baseCfg(p))
	var stats sim.Stats
	var err error
	if build != nil {
		prog, iters := build(m)
		stats, err = m.RunLoop(iters, prog)
	} else {
		stats, err = m.RunProcesses(procsMode(m))
	}
	if err != nil {
		return stats, err
	}
	want, _ := r.SerialMem()
	if diff := want.Diff(m.Mem()); diff != "" {
		return stats, fmt.Errorf("relaxation diverged:\n%s", diff)
	}
	return stats, nil
}

// E6Relaxation reproduces Example 1 (Fig 5.1): the wavefront-with-barrier
// schedule against asynchronous pipelining, the SC-starvation effect, and
// the G (grouping) sweep.
func E6Relaxation() ([]*Table, error) {
	const p = 4
	r := workloads.Relax{N: 40, Cost: 10, G: 1}
	serial := (r.N - 1) * (r.N - 1) * r.Cost

	t := &Table{
		ID:    "E6.1",
		Title: fmt.Sprintf("Relaxation N=%d, cost=%d, P=%d: schedules compared", r.N, r.Cost, p),
		Columns: []string{"schedule", "cycles", "speedup", "util", "sync ops", "bus tx",
			"module acc", "max module queue"},
	}
	add := func(name string, stats sim.Stats) {
		t.AddRow(name, stats.Cycles, stats.Speedup(serial), stats.Utilization(),
			stats.SyncOps, stats.BusBroadcasts, stats.ModuleAccesses, stats.MaxModuleQueue)
	}

	stats, err := relaxRun(r, p, nil, func(m *sim.Machine) [][]sim.Op {
		b := barrier.NewSimCounter(m, 0)
		return r.Wavefront(m, func(pid int, round int64) []sim.Op { return b.Ops(round) })
	})
	if err != nil {
		return nil, err
	}
	add("wavefront + counter barrier", stats)

	stats, err = relaxRun(r, p, nil, func(m *sim.Machine) [][]sim.Op {
		b := barrier.NewSimPCBarrier(m)
		return r.Wavefront(m, b.Ops)
	})
	if err != nil {
		return nil, err
	}
	add("wavefront + PC butterfly barrier", stats)

	stats, err = relaxRun(r, p, func(m *sim.Machine) (sim.Program, int64) {
		return r.PipelinedPC(m, 2*p), r.N - 1
	}, nil)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("async pipeline, PCs (X=%d)", 2*p), stats)

	for _, k := range []int{2, int(r.SyncPoints())} {
		k := k
		stats, err = relaxRun(r, p, func(m *sim.Machine) (sim.Program, int64) {
			return r.PipelinedSC(m, k), r.N - 1
		}, nil)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("async pipeline, SCs (K=%d of %d points)", k, r.SyncPoints()), stats)
	}
	t.Note("the pipeline and the wavefront execute the same parallel steps; the pipeline")
	t.Note("avoids the barrier's wait-for-last and hot-spot costs (the paper's Fig 5.1d).")
	t.Note("with K << N-1 sync points the statement-oriented pipeline degenerates toward serial.")

	t2 := &Table{
		ID:      "E6.2",
		Title:   "Grouping sweep: G inner iterations per synchronization point (PC pipeline)",
		Columns: []string{"G", "sync points", "cycles", "speedup", "sync ops", "bus tx"},
	}
	for _, g := range []int64{1, 2, 4, 8, 13, 39} {
		rg := workloads.Relax{N: r.N, Cost: r.Cost, G: g}
		stats, err := relaxRun(rg, p, func(m *sim.Machine) (sim.Program, int64) {
			return rg.PipelinedPC(m, 2*p), rg.N - 1
		}, nil)
		if err != nil {
			return nil, err
		}
		t2.AddRow(g, rg.SyncPoints(), stats.Cycles, stats.Speedup(serial), stats.SyncOps, stats.BusBroadcasts)
	}
	t2.Note("synchronization drops ~G-fold; too-large G serializes the pipeline (G=N-1 is serial).")
	return []*Table{t, t2}, nil
}

// E7NestedLoop reproduces Example 2 (Fig 5.2): implicit coalescing with
// linearized pids versus the data-oriented boundary problem.
func E7NestedLoop() ([]*Table, error) {
	const nI, nJ, cost = 12, 10, 4
	t := &Table{
		ID:      "E7.1",
		Title:   fmt.Sprintf("Coalesced nested loop (N=%d, M=%d, P=4): schemes compared", nI, nJ),
		Columns: []string{"scheme", "sync vars", "storage", "cycles", "speedup", "util"},
	}
	schemes := []codegen.Scheme{
		codegen.ProcessOriented{X: 8, Improved: true},
		codegen.PipelinedOuter{X: 8, G: 1},
		codegen.PipelinedOuter{X: 8, G: 4},
		codegen.StatementOriented{},
		codegen.RefBased{},
		codegen.NewInstanceBased(),
	}
	for _, sch := range schemes {
		res, err := codegen.Run(workloads.Nested(nI, nJ, cost), sch, baseCfg(4))
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Scheme, res.Foot.SyncVars, res.Foot.StorageWords,
			res.Stats.Cycles, res.Speedup(), res.Stats.Utilization())
	}
	t.Note("pipeline(X,G) keeps the outer loop as the Doacross (one process per row, the")
	t.Note("paper's Example 1 structure applied to Example 2) instead of full coalescing.")
	w := workloads.Nested(nI, nJ, cost)
	enf := w.Nest.LinearGraph().Enforced()
	for _, a := range enf {
		t.Note("linearized enforced arc: %s -> %s at lpid distance %d",
			w.Nest.Stmts()[a.Src].Name, w.Nest.Stmts()[a.Dst].Name, a.Dist[0])
	}

	// The boundary problem: per-element access counts are not uniform, so
	// data-oriented keys need boundary-aware initialization/tests, while
	// coalesced process counters see a uniform protocol.
	plan := dataorient.BuildPlan(w.Nest)
	counts := map[string]map[int64]int64{}
	for _, e := range plan.Order {
		m := counts[e.Array]
		if m == nil {
			m = map[int64]int64{}
			counts[e.Array] = m
		}
		m[plan.FinalKey(e)]++
	}
	t2 := &Table{
		ID:      "E7.2",
		Title:   "Boundary problem: distribution of per-element access counts (data-oriented)",
		Columns: []string{"array", "accesses per element", "elements"},
	}
	for _, arr := range []string{"A", "B", "OUT"} {
		for c := int64(1); c <= 4; c++ {
			if n := counts[arr][c]; n > 0 {
				t2.AddRow(arr, c, n)
			}
		}
	}
	t2.Note("interior and boundary elements are keyed differently; linearization cannot make")
	t2.Note("the counts uniform (the paper's argument in Example 2).")
	return []*Table{t, t2}, nil
}

// E8Branches reproduces Example 3 (Fig 5.3): sources inside branches, with
// the untaken arm's steps published on every path.
func E8Branches() ([]*Table, error) {
	const n, cost = 60, 4
	t := &Table{
		ID:      "E8.1",
		Title:   fmt.Sprintf("Branchy loop (N=%d, P=4): schemes compared", n),
		Columns: []string{"scheme", "sync vars", "cycles", "speedup"},
	}
	schemes := []codegen.Scheme{
		codegen.ProcessOriented{X: 8, Improved: true},
		codegen.ProcessOriented{X: 8, Improved: false},
		codegen.StatementOriented{},
		codegen.RefBased{},
		codegen.NewInstanceBased(),
	}
	for _, sch := range schemes {
		res, err := codegen.Run(workloads.Branchy(n, cost), sch, baseCfg(4))
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Scheme, res.Foot.SyncVars, res.Stats.Cycles, res.Speedup())
	}

	t2 := &Table{
		ID:      "E8.2",
		Title:   "Generated ops for an odd and an even iteration (process-oriented, improved)",
		Columns: []string{"iteration 11 (takes THEN)", "iteration 12 (takes ELSE)"},
	}
	w := workloads.Branchy(n, cost)
	m := sim.New(baseCfg(4))
	w.Setup(m.Mem())
	prog, _, err := codegen.ProcessOriented{X: 4, Improved: true}.Instrument(m, w)
	if err != nil {
		return nil, err
	}
	odd, even := prog(11), prog(12)
	for i := 0; i < len(odd) || i < len(even); i++ {
		var a, b string
		if i < len(odd) {
			a = odd[i].Tag
		}
		if i < len(even) {
			b = even[i].Tag
		}
		t2.AddRow(a, b)
	}
	t2.Note("the arm that runs also publishes the skipped arm's step (the covering mark),")
	t2.Note("and the ELSE path publishes the THEN step early — Fig 5.3's rule.")
	return []*Table{t, t2}, nil
}

// E9Barriers reproduces Example 4 (Fig 5.4): the counter barrier's hot spot
// against the butterfly barriers, and the synchronization-variable counts.
func E9Barriers() ([]*Table, error) {
	const rounds = 6
	t := &Table{
		ID:    "E9.1",
		Title: fmt.Sprintf("Barrier algorithms, %d rounds of skewed phases", rounds),
		Columns: []string{"P", "algorithm", "sync vars", "cycles", "module acc",
			"max module queue", "wait cycles"},
	}
	for _, p := range []int{2, 4, 8, 16} {
		type variant struct {
			name string
			vars int
			ops  func(m *sim.Machine) func(pid int, round int64) []sim.Op
		}
		variants := []variant{
			{"counter (one shared cell)", 1, func(m *sim.Machine) func(int, int64) []sim.Op {
				b := barrier.NewSimCounter(m, 0)
				return func(pid int, round int64) []sim.Op { return b.Ops(round) }
			}},
			{"Brooks butterfly (flag matrix)", p * barrier.Log2(p), func(m *sim.Machine) func(int, int64) []sim.Op {
				return barrier.NewSimFlags(m, sim.Memory).Ops
			}},
			{"PC butterfly (Fig 5.4)", p, func(m *sim.Machine) func(int, int64) []sim.Op {
				return barrier.NewSimPCBarrier(m).Ops
			}},
		}
		for _, v := range variants {
			m := sim.New(baseCfg(p))
			ops := v.ops(m)
			progs := make([][]sim.Op, p)
			for pid := 0; pid < p; pid++ {
				var prog []sim.Op
				for r := int64(1); r <= rounds; r++ {
					prog = append(prog, sim.Compute(int64(5+(pid*3+int(r)*7)%11), nil, "phase"))
					prog = append(prog, ops(pid, r)...)
				}
				progs[pid] = prog
			}
			stats, err := m.RunProcesses(progs)
			if err != nil {
				return nil, fmt.Errorf("P=%d %s: %w", p, v.name, err)
			}
			t.AddRow(p, v.name, v.vars, stats.Cycles, stats.ModuleAccesses,
				stats.MaxModuleQueue, stats.WaitSyncTotal())
		}
	}
	t.Note("the counter barrier funnels arrivals and departure polls through one module")
	t.Note("(hot spot, growing with P); the PC butterfly needs neither atomics nor module")
	t.Note("traffic and uses P variables against the flag matrix's P*log2(P).")

	// Non-power-of-two P: the paper notes the butterfly extends via [11]
	// (the dissemination barrier); the PC variable economy carries over.
	t2 := &Table{
		ID:      "E9.2",
		Title:   fmt.Sprintf("Non-power-of-two P (dissemination pattern, %d rounds)", rounds),
		Columns: []string{"P", "algorithm", "sync vars", "cycles", "module acc", "wait cycles"},
	}
	for _, p := range []int{3, 5, 6, 12} {
		type variant struct {
			name string
			vars int
			ops  func(m *sim.Machine) func(pid int, round int64) []sim.Op
		}
		variants := []variant{
			{"counter (one shared cell)", 1, func(m *sim.Machine) func(int, int64) []sim.Op {
				b := barrier.NewSimCounter(m, 0)
				return func(pid int, round int64) []sim.Op { return b.Ops(round) }
			}},
			{"dissemination (flag matrix)", p * barrier.Stages(p), func(m *sim.Machine) func(int, int64) []sim.Op {
				return barrier.NewSimDissemination(m, sim.Memory).Ops
			}},
			{"PC dissemination", p, func(m *sim.Machine) func(int, int64) []sim.Op {
				return barrier.NewSimPCDissemination(m).Ops
			}},
		}
		for _, v := range variants {
			m := sim.New(baseCfg(p))
			ops := v.ops(m)
			progs := make([][]sim.Op, p)
			for pid := 0; pid < p; pid++ {
				var prog []sim.Op
				for r := int64(1); r <= rounds; r++ {
					prog = append(prog, sim.Compute(int64(5+(pid*3+int(r)*7)%11), nil, "phase"))
					prog = append(prog, ops(pid, r)...)
				}
				progs[pid] = prog
			}
			stats, err := m.RunProcesses(progs)
			if err != nil {
				return nil, fmt.Errorf("P=%d %s: %w", p, v.name, err)
			}
			t2.AddRow(p, v.name, v.vars, stats.Cycles, stats.ModuleAccesses, stats.WaitSyncTotal())
		}
	}
	t2.Note("\"with a minor modification, b_barrier() can work even when P is not a power")
	t2.Note("of 2 [11]\" — the dissemination barrier; one PC per participant still suffices.")
	return []*Table{t, t2}, nil
}

// E10FFT reproduces Example 5: phases with local communication need no
// global barrier.
func E10FFT() ([]*Table, error) {
	t := &Table{
		ID:      "E10.1",
		Title:   "FFT-structured phases: pairwise PC sync vs a global barrier per stage",
		Columns: []string{"P", "variant", "cycles", "wait cycles", "module acc"},
	}
	for _, p := range []int{4, 8, 16} {
		f := workloads.FFT{P: p, Chunk: 8, Cost: 5}
		want, _ := f.SerialMem()

		mPair := sim.New(baseCfg(p))
		pairStats, err := mPair.RunProcesses(f.Pairwise(mPair))
		if err != nil {
			return nil, err
		}
		if diff := want.Diff(mPair.Mem()); diff != "" {
			return nil, fmt.Errorf("pairwise FFT P=%d diverged:\n%s", p, diff)
		}
		t.AddRow(p, "pairwise PC sync (paper)", pairStats.Cycles, pairStats.WaitSyncTotal(), pairStats.ModuleAccesses)

		mBar := sim.New(baseCfg(p))
		b := barrier.NewSimCounter(mBar, 0)
		barStats, err := mBar.RunProcesses(f.WithBarrier(mBar, func(pid int, round int64) []sim.Op { return b.Ops(round) }))
		if err != nil {
			return nil, err
		}
		if diff := want.Diff(mBar.Mem()); diff != "" {
			return nil, fmt.Errorf("barrier FFT P=%d diverged:\n%s", p, diff)
		}
		t.AddRow(p, "counter barrier per stage", barStats.Cycles, barStats.WaitSyncTotal(), barStats.ModuleAccesses)
	}
	t.Note("each stage's consumer waits only for its one partner; the barrier makes everyone")
	t.Note("wait for the slowest processor and pay the hot spot.")

	// The paper's second local-communication application: PDE discretization
	// sweeps where a process synchronizes only with its neighbors.
	t2 := &Table{
		ID:      "E10.2",
		Title:   "Jacobi PDE sweeps: neighbor-only PC sync vs a barrier per sweep",
		Columns: []string{"P", "variant", "cycles", "wait cycles", "module acc"},
	}
	for _, p := range []int{4, 8, 16} {
		j := workloads.Jacobi{P: p, Strip: 8, Sweeps: 8, Cost: 4}
		want, _ := j.SerialMem()

		mN := sim.New(baseCfg(p))
		nStats, err := mN.RunProcesses(j.NeighborSync(mN))
		if err != nil {
			return nil, err
		}
		if diff := want.Diff(mN.Mem()); diff != "" {
			return nil, fmt.Errorf("neighbor Jacobi P=%d diverged:\n%s", p, diff)
		}
		t2.AddRow(p, "neighbor PC sync (paper)", nStats.Cycles, nStats.WaitSyncTotal(), nStats.ModuleAccesses)

		mB := sim.New(baseCfg(p))
		b := barrier.NewSimCounter(mB, 0)
		bStats, err := mB.RunProcesses(j.WithBarrier(mB, func(pid int, round int64) []sim.Op { return b.Ops(round) }))
		if err != nil {
			return nil, err
		}
		if diff := want.Diff(mB.Mem()); diff != "" {
			return nil, fmt.Errorf("barrier Jacobi P=%d diverged:\n%s", p, diff)
		}
		t2.AddRow(p, "counter barrier per sweep", bStats.Cycles, bStats.WaitSyncTotal(), bStats.ModuleAccesses)
	}
	t2.Note("\"a process only needs to synchronize with processes computing its neighboring")
	t2.Note("regions\" — P process counters replace the global barrier entirely.")
	return []*Table{t, t2}, nil
}
