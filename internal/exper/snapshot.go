package exper

import (
	"fmt"
	"runtime"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// BenchRecord is one measured point of the benchmark snapshot: a workload x
// scheme x machine triple with the headline simulator measurements. The
// simulator is deterministic, so records from two builds of the same code
// are directly diffable.
type BenchRecord struct {
	Workload     string  `json:"workload"`
	Scheme       string  `json:"scheme"`
	Processors   int     `json:"processors"`
	Iterations   int64   `json:"iterations"`
	SerialCycles int64   `json:"serialCycles"`
	Cycles       int64   `json:"cycles"`
	Speedup      float64 `json:"speedup"`
	Utilization  float64 `json:"utilization"`
	SyncOps      int64   `json:"syncOps"`
	WaitSync     int64   `json:"waitSyncCycles"`
	BusTx        int64   `json:"busBroadcasts"`
	Polls        int64   `json:"polls"`
	SyncVars     int     `json:"syncVars"`
	StorageWords int64   `json:"storageWords"`
}

// BenchSnapshot is the machine-readable output of `dsbench -json`: a
// canonical workload x scheme grid measured on the base machine. CI uploads
// it as an artifact so perf movement between commits shows up as a JSON
// diff rather than a re-run.
type BenchSnapshot struct {
	Version string        `json:"version"`
	Go      string        `json:"go"`
	Records []BenchRecord `json:"records"`
}

// benchPair is one cell of the canonical grid. Scheme construction is
// deferred (mk) because the instance-based scheme is stateful and must be
// rebuilt per run.
type benchPair struct {
	workload string
	build    func() *codegen.Workload
	scheme   string
	mk       func() codegen.Scheme
}

// snapshotPairs is the canonical grid. Flat workloads run under every
// iteration-level scheme; the nested workload additionally exercises the
// pipelined-outer scheme (the only one defined for depth 2).
func snapshotPairs() []benchPair {
	flat := []struct {
		name  string
		build func() *codegen.Workload
	}{
		{"fig21", func() *codegen.Workload { return workloads.Fig21(120, 4) }},
		{"branchy", func() *codegen.Workload { return workloads.Branchy(120, 4) }},
		{"recurrence", func() *codegen.Workload { return workloads.Recurrence(120, 2, 4) }},
		{"stencil", func() *codegen.Workload { return workloads.Stencil(120, 4) }},
	}
	schemes := []struct {
		name string
		mk   func() codegen.Scheme
	}{
		{"process", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: true} }},
		{"process-basic", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: false} }},
		{"statement", func() codegen.Scheme { return codegen.StatementOriented{} }},
		{"ref", func() codegen.Scheme { return codegen.RefBased{} }},
		{"instance", func() codegen.Scheme { return codegen.NewInstanceBased() }},
	}
	var out []benchPair
	for _, w := range flat {
		for _, s := range schemes {
			out = append(out, benchPair{w.name, w.build, s.name, s.mk})
		}
	}
	out = append(out, benchPair{
		"nested",
		func() *codegen.Workload { return workloads.Nested(24, 12, 4) },
		"pipeline",
		func() codegen.Scheme { return codegen.PipelinedOuter{X: 8, G: 1} },
	})
	return out
}

// Snapshot measures the canonical grid at 4 and 8 processors on the base
// machine and returns the machine-readable snapshot.
func Snapshot() (*BenchSnapshot, error) {
	snap := &BenchSnapshot{Version: "dsbench-snapshot-v1", Go: runtime.Version()}
	for _, procs := range []int{4, 8} {
		for _, pair := range snapshotPairs() {
			res, err := codegen.Run(pair.build(), pair.mk(), baseCfg(procs))
			if err != nil {
				return nil, fmt.Errorf("snapshot %s/%s at P=%d: %w", pair.workload, pair.scheme, procs, err)
			}
			st := res.Stats
			snap.Records = append(snap.Records, BenchRecord{
				Workload:     pair.workload,
				Scheme:       pair.scheme,
				Processors:   procs,
				Iterations:   st.Iterations,
				SerialCycles: res.SerialCycles,
				Cycles:       st.Cycles,
				Speedup:      res.Speedup(),
				Utilization:  st.Utilization(),
				SyncOps:      st.SyncOps,
				WaitSync:     st.WaitSyncTotal(),
				BusTx:        st.BusBroadcasts,
				Polls:        st.Polls,
				SyncVars:     res.Foot.SyncVars,
				StorageWords: res.Foot.StorageWords,
			})
		}
	}
	return snap, nil
}
