package exper

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// SnapshotVersion identifies the snapshot schema. v2 added per-record wall
// times and the host calibration figure that makes cycle-throughput
// comparable across machines.
const SnapshotVersion = "dsbench-snapshot-v2"

// BenchRecord is one measured point of the benchmark snapshot: a workload x
// scheme x machine triple with the headline simulator measurements. The
// simulator is deterministic, so records from two builds of the same code
// are directly diffable.
type BenchRecord struct {
	Workload     string  `json:"workload"`
	Scheme       string  `json:"scheme"`
	Processors   int     `json:"processors"`
	Iterations   int64   `json:"iterations"`
	SerialCycles int64   `json:"serialCycles"`
	Cycles       int64   `json:"cycles"`
	Speedup      float64 `json:"speedup"`
	Utilization  float64 `json:"utilization"`
	SyncOps      int64   `json:"syncOps"`
	WaitSync     int64   `json:"waitSyncCycles"`
	BusTx        int64   `json:"busBroadcasts"`
	Polls        int64   `json:"polls"`
	SyncVars     int     `json:"syncVars"`
	StorageWords int64   `json:"storageWords"`
	// WallNanos is the best-of-repeats wall time of the whole simulate-and-
	// verify run of this point (0 in untimed snapshots). Simulated results
	// are deterministic; only this field varies between hosts.
	WallNanos int64 `json:"wallNanos,omitempty"`
}

// BenchSnapshot is the machine-readable output of `dsbench -json`: a
// canonical workload x scheme grid measured on the base machine. CI compares
// it against the committed BENCH_*.json baseline (scripts/bench_gate.sh) and
// uploads the delta table, so perf movement between commits is gated rather
// than merely archived.
type BenchSnapshot struct {
	Version string `json:"version"`
	Go      string `json:"go"`
	// CalibNanos is the best-of-3 wall time of a fixed, simulator-
	// independent arithmetic loop on the measuring host. Dividing a
	// snapshot's cycle throughput by the host's calibration throughput
	// cancels raw scalar speed, so baselines recorded on one machine gate
	// runs on another.
	CalibNanos int64         `json:"calibNanos,omitempty"`
	Records    []BenchRecord `json:"records"`
}

// Calibrate times the fixed reference loop (2^24 splitmix64 rounds): one
// untimed warmup round to settle CPU frequency scaling, then the best of 5
// timed rounds. The minimum is the host's unloaded speed — robust against
// noise spikes, which only ever make rounds slower.
func Calibrate() int64 {
	round := func() int64 {
		start := time.Now()
		x := uint64(0x9e3779b97f4a7c15)
		var acc uint64
		for i := 0; i < 1<<24; i++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
			z ^= z >> 27
			z *= 0x94d049bb133111eb
			acc += z ^ z>>31
		}
		calibSink = acc
		return time.Since(start).Nanoseconds()
	}
	round() // warmup
	best := int64(math.MaxInt64)
	for r := 0; r < 5; r++ {
		if d := round(); d < best {
			best = d
		}
	}
	return best
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// benchPair is one cell of the canonical grid. Scheme construction is
// deferred (mk) because the instance-based scheme is stateful and must be
// rebuilt per run.
type benchPair struct {
	workload string
	build    func() *codegen.Workload
	scheme   string
	mk       func() codegen.Scheme
}

// snapshotPairs is the canonical grid. Flat workloads run under every
// iteration-level scheme; the nested workload additionally exercises the
// pipelined-outer scheme (the only one defined for depth 2).
func snapshotPairs() []benchPair {
	flat := []struct {
		name  string
		build func() *codegen.Workload
	}{
		{"fig21", func() *codegen.Workload { return workloads.Fig21(120, 4) }},
		{"branchy", func() *codegen.Workload { return workloads.Branchy(120, 4) }},
		{"recurrence", func() *codegen.Workload { return workloads.Recurrence(120, 2, 4) }},
		{"stencil", func() *codegen.Workload { return workloads.Stencil(120, 4) }},
	}
	schemes := []struct {
		name string
		mk   func() codegen.Scheme
	}{
		{"process", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: true} }},
		{"process-basic", func() codegen.Scheme { return codegen.ProcessOriented{X: 8, Improved: false} }},
		{"statement", func() codegen.Scheme { return codegen.StatementOriented{} }},
		{"ref", func() codegen.Scheme { return codegen.RefBased{} }},
		{"instance", func() codegen.Scheme { return codegen.NewInstanceBased() }},
	}
	var out []benchPair
	for _, w := range flat {
		for _, s := range schemes {
			out = append(out, benchPair{w.name, w.build, s.name, s.mk})
		}
	}
	out = append(out, benchPair{
		"nested",
		func() *codegen.Workload { return workloads.Nested(24, 12, 4) },
		"pipeline",
		func() codegen.Scheme { return codegen.PipelinedOuter{X: 8, G: 1} },
	})
	return out
}

// Snapshot measures the canonical grid at 4 and 8 processors on the base
// machine and returns the machine-readable snapshot, timing each point once.
func Snapshot() (*BenchSnapshot, error) { return SnapshotTimed(1) }

// SnapshotTimed measures the canonical grid, running every point `repeats`
// times and recording the best wall time (simulated results must agree
// between repeats — the engine is deterministic, and a disagreement is
// reported as an error rather than averaged away).
func SnapshotTimed(repeats int) (*BenchSnapshot, error) {
	if repeats < 1 {
		repeats = 1
	}
	snap := &BenchSnapshot{Version: SnapshotVersion, Go: runtime.Version(), CalibNanos: Calibrate()}
	for _, procs := range []int{4, 8} {
		for _, pair := range snapshotPairs() {
			var rec BenchRecord
			best := int64(math.MaxInt64)
			for r := 0; r < repeats; r++ {
				start := time.Now()
				res, err := codegen.Run(pair.build(), pair.mk(), baseCfg(procs))
				wall := time.Since(start).Nanoseconds()
				if err != nil {
					return nil, fmt.Errorf("snapshot %s/%s at P=%d: %w", pair.workload, pair.scheme, procs, err)
				}
				if wall < best {
					best = wall
				}
				if r > 0 {
					if rec.Cycles != res.Stats.Cycles {
						return nil, fmt.Errorf("snapshot %s/%s at P=%d: nondeterministic cycles (%d then %d)",
							pair.workload, pair.scheme, procs, rec.Cycles, res.Stats.Cycles)
					}
					continue
				}
				st := res.Stats
				rec = BenchRecord{
					Workload:     pair.workload,
					Scheme:       pair.scheme,
					Processors:   procs,
					Iterations:   st.Iterations,
					SerialCycles: res.SerialCycles,
					Cycles:       st.Cycles,
					Speedup:      res.Speedup(),
					Utilization:  st.Utilization(),
					SyncOps:      st.SyncOps,
					WaitSync:     st.WaitSyncTotal(),
					BusTx:        st.BusBroadcasts,
					Polls:        st.Polls,
					SyncVars:     res.Foot.SyncVars,
					StorageWords: res.Foot.StorageWords,
				}
			}
			rec.WallNanos = best
			snap.Records = append(snap.Records, rec)
		}
	}
	return snap, nil
}
