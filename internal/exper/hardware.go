package exper

import (
	"fmt"

	"github.com/csrd-repro/datasync/internal/codegen"
	"github.com/csrd-repro/datasync/internal/deps"
	"github.com/csrd-repro/datasync/internal/workloads"
)

// E11Hardware measures the section-6 hardware claims: synchronization-bus
// traffic stays bounded by the useful work, write coverage trims broadcasts
// as bus latency grows, and (by reference to the model-checking tests) the
// two PC fields need no atomic joint update.
func E11Hardware() ([]*Table, error) {
	const n, cost = 96, 4
	t := &Table{
		ID:      "E11.1",
		Title:   "Sync-bus traffic vs useful work (Fig 2.1 loop, process-oriented)",
		Columns: []string{"primitives", "X", "statement executions", "bus tx", "tx per iteration", "tx per source stmt"},
	}
	for _, improved := range []bool{false, true} {
		for _, x := range []int{2, 8} {
			res, err := codegen.Run(workloads.Fig21(n, cost),
				codegen.ProcessOriented{X: x, Improved: improved}, baseCfg(4))
			if err != nil {
				return nil, err
			}
			name := "basic"
			if improved {
				name = "improved"
			}
			stmtExecs := int64(5 * n)
			t.AddRow(name, x, stmtExecs, res.Stats.BusBroadcasts,
				float64(res.Stats.BusBroadcasts)/float64(n),
				float64(res.Stats.BusBroadcasts)/float64(4*n))
		}
	}
	t.Note("a PC is updated at most once per source statement, so sync-bus traffic is no")
	t.Note("worse than the main data bus traffic (section 6). With small X ownership lags,")
	t.Note("so the improved mark_PC skips more updates and traffic drops below 1 per source.")

	t2 := &Table{
		ID:      "E11.2",
		Title:   "Write coverage vs bus latency (basic primitives, X=2)",
		Columns: []string{"bus latency", "bus tx (no coverage)", "bus tx (coverage)", "saved", "saved %"},
	}
	for _, lat := range []int64{1, 2, 4, 8} {
		cfgOff := baseCfg(4)
		cfgOff.BusLatency = lat
		resOff, err := codegen.Run(workloads.Fig21(n, cost),
			codegen.ProcessOriented{X: 2, Improved: false}, cfgOff)
		if err != nil {
			return nil, err
		}
		cfgOn := cfgOff
		cfgOn.BusCoverage = true
		resOn, err := codegen.Run(workloads.Fig21(n, cost),
			codegen.ProcessOriented{X: 2, Improved: false}, cfgOn)
		if err != nil {
			return nil, err
		}
		saved := resOn.Stats.BusSaved
		pct := 0.0
		if resOff.Stats.BusBroadcasts > 0 {
			pct = 100 * float64(saved) / float64(resOff.Stats.BusBroadcasts)
		}
		t2.AddRow(lat, resOff.Stats.BusBroadcasts, resOn.Stats.BusBroadcasts, saved, pct)
	}
	t2.Note("the slower the bus, the more queued writes a newer write to the same PC covers.")

	t3 := &Table{
		ID:      "E11.3",
		Title:   "Non-atomic two-field PC updates (verified by exhaustive interleaving model)",
		Columns: []string{"protocol variant", "verdict"},
	}
	t3.AddRow("transfer stores step then owner; wait reads owner then step", "safe (0 premature releases)")
	t3.AddRow("transfer stores owner first", "unsound (premature releases found)")
	t3.AddRow("wait reads step before owner", "unsound (premature releases found)")
	t3.Note("see internal/core: TestSplitProtocolSafeWithPaperStoreOrder and companions;")
	t3.Note("the read-order constraint is a refinement beyond the paper's section 6 text.")
	return []*Table{t, t2, t3}, nil
}

// E12Ablation sweeps the design parameters: the number of PCs (X), the
// processor count, and the statement/process crossover as the loop body
// grows more source statements.
func E12Ablation() ([]*Table, error) {
	const n, cost = 200, 6
	t := &Table{
		ID:      "E12.1",
		Title:   fmt.Sprintf("Speedup vs number of PCs (Fig 2.1 loop, N=%d, P=8)", n),
		Columns: []string{"X", "cycles", "speedup", "wait cycles"},
	}
	for _, x := range []int{1, 2, 4, 8, 16, 32} {
		res, err := codegen.Run(workloads.Fig21(n, cost),
			codegen.ProcessOriented{X: x, Improved: true}, baseCfg(8))
		if err != nil {
			return nil, err
		}
		t.AddRow(x, res.Stats.Cycles, res.Speedup(), res.Stats.WaitSyncTotal())
	}
	t.Note("X >= a small multiple of P suffices (the paper's hardware recommendation);")
	t.Note("X=1 serializes ownership transfer.")

	t2 := &Table{
		ID:      "E12.2",
		Title:   fmt.Sprintf("Speedup vs processors (X=2P, Fig 2.1 loop, N=%d)", n),
		Columns: []string{"P", "cycles", "speedup", "util"},
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := codegen.Run(workloads.Fig21(n, cost),
			codegen.ProcessOriented{X: 2 * p, Improved: true}, baseCfg(p))
		if err != nil {
			return nil, err
		}
		t2.AddRow(p, res.Stats.Cycles, res.Speedup(), res.Stats.Utilization())
	}
	t2.Note("the loop's dependence structure caps usable parallelism; extra processors idle.")

	t3 := &Table{
		ID:      "E12.3",
		Title:   "Statement vs process counters as iterations become non-uniform",
		Columns: []string{"workload", "scheme", "cycles", "speedup"},
	}
	for _, jitter := range []bool{false, true} {
		label := "uniform iterations"
		if jitter {
			label = "jittered iteration costs"
		}
		for _, sch := range []codegen.Scheme{
			codegen.ProcessOriented{X: 16, Improved: true},
			codegen.StatementOriented{},
		} {
			w := workloads.Fig21(n, cost)
			if jitter {
				w.CostOf = func(s *deps.Stmt, idx []int64) int64 {
					return cost + (idx[0]*2654435761)%17
				}
			}
			res, err := codegen.Run(w, sch, baseCfg(8))
			if err != nil {
				return nil, err
			}
			t3.AddRow(label, res.Scheme, res.Stats.Cycles, res.Speedup())
		}
	}
	t3.Note("with uniform iterations the schemes track each other; jitter hurts the")
	t3.Note("statement-oriented scheme more because advances serialize across iterations.")

	t4 := &Table{
		ID:      "E12.4",
		Title:   "Crossover: loops with many source statements (chain workload, N=96, P=4)",
		Columns: []string{"sources k", "scheme", "sync vars", "cycles", "speedup"},
	}
	for _, k := range []int{2, 4, 8, 16} {
		for _, sch := range []codegen.Scheme{
			codegen.ProcessOriented{X: 8, Improved: true},
			codegen.StatementOriented{},     // one SC per source: k counters
			codegen.StatementOriented{K: 4}, // register-limited machine
		} {
			res, err := codegen.Run(workloads.Chain(96, k, 3), sch, baseCfg(4))
			if err != nil {
				return nil, err
			}
			t4.AddRow(k, res.Scheme, res.Foot.SyncVars, res.Stats.Cycles, res.Speedup())
		}
	}
	t4.Note("the process scheme's variable count is independent of the body; the statement")
	t4.Note("scheme either grows its counters with k or folds and loses parallelism.")
	return []*Table{t, t2, t3, t4}, nil
}
